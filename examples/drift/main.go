// Workload drift: the paper's §6.8 scenario as an operational playbook. A
// WaZI index is built for one workload; traffic then shifts to a
// differently skewed distribution. The RebuildAdvisor (the paper's third
// future-work item) watches live queries, reports drift, and recommends a
// rebuild; the example rebuilds, persists the new index with Save, and
// restores it with Load as a deployment would.
//
// Run with:
//
//	go run ./examples/drift
package main

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	wazi "github.com/wazi-index/wazi"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Clustered data, as ever.
	var data []wazi.Point
	centers := []wazi.Point{{X: 0.2, Y: 0.25}, {X: 0.7, Y: 0.3}, {X: 0.5, Y: 0.75}}
	for len(data) < 80_000 {
		c := centers[rng.Intn(len(centers))]
		data = append(data, wazi.Point{
			X: clamp(c.X + rng.NormFloat64()*0.07),
			Y: clamp(c.Y + rng.NormFloat64()*0.07),
		})
	}

	mkWorkload := func(hot wazi.Point, n int) []wazi.Rect {
		qs := make([]wazi.Rect, n)
		for i := range qs {
			cx := clamp(hot.X + rng.NormFloat64()*0.04)
			cy := clamp(hot.Y + rng.NormFloat64()*0.04)
			const half = 0.01
			qs[i] = wazi.Rect{MinX: cx - half, MinY: cy - half, MaxX: cx + half, MaxY: cy + half}
		}
		return qs
	}
	morningTraffic := mkWorkload(wazi.Point{X: 0.7, Y: 0.3}, 3000)  // build-time workload
	eveningTraffic := mkWorkload(wazi.Point{X: 0.5, Y: 0.75}, 3000) // the drift target

	idx, err := wazi.NewWorkloadAware(data, morningTraffic, wazi.WithSeed(3))
	if err != nil {
		panic(err)
	}
	advisor := wazi.NewRebuildAdvisor(idx.Bounds(), morningTraffic, 1024, 0.5)

	serve := func(label string, qs []wazi.Rect) {
		idx.Stats().Reset()
		start := time.Now()
		for _, q := range qs {
			idx.RangeQuery(q)
			advisor.Observe(q)
		}
		fmt.Printf("%-28s %7.1f µs/query   drift=%.2f   rebuild=%v\n",
			label,
			float64(time.Since(start).Microseconds())/float64(len(qs)),
			advisor.Drift(), advisor.RebuildRecommended())
	}

	fmt.Println("phase 1: traffic matches the build workload")
	serve("morning traffic", morningTraffic[:1500])

	fmt.Println("phase 2: traffic shifts to the evening hotspot")
	serve("evening traffic (drifted)", eveningTraffic[:1500])

	if advisor.RebuildRecommended() {
		fmt.Println("\nadvisor recommends a rebuild; rebuilding offline for the new workload...")
		rebuilt, err := wazi.NewWorkloadAware(idx.Points(), eveningTraffic, wazi.WithSeed(4))
		if err != nil {
			panic(err)
		}

		// Persist the rebuilt index and deploy it via Load, as §6.5
		// suggests (build offline, serve long-lived).
		var snapshot bytes.Buffer
		if err := rebuilt.Save(&snapshot); err != nil {
			panic(err)
		}
		fmt.Printf("snapshot size: %.1f KiB\n", float64(snapshot.Len())/1024)
		deployed, err := wazi.Load(&snapshot)
		if err != nil {
			panic(err)
		}

		idx = deployed
		advisor = wazi.NewRebuildAdvisor(idx.Bounds(), eveningTraffic, 1024, 0.5)
		fmt.Println("\nphase 3: rebuilt index serving the new workload")
		serve("evening traffic (rebuilt)", eveningTraffic[1500:])
	}
}

func clamp(v float64) float64 { return math.Min(1, math.Max(0, v)) }
