// Quickstart: build a workload-aware Z-index over random points and run
// range, point, and kNN queries against it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	wazi "github.com/wazi-index/wazi"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A million points would work the same way; keep the quickstart quick.
	points := make([]wazi.Point, 50_000)
	for i := range points {
		points[i] = wazi.Point{X: rng.Float64(), Y: rng.Float64()}
	}

	// The anticipated workload: small rectangles concentrated around one
	// hotspot. In production this would come from your query logs.
	workload := make([]wazi.Rect, 500)
	for i := range workload {
		cx := 0.6 + rng.NormFloat64()*0.05
		cy := 0.4 + rng.NormFloat64()*0.05
		workload[i] = wazi.Rect{MinX: cx - 0.01, MinY: cy - 0.01, MaxX: cx + 0.01, MaxY: cy + 0.01}
	}

	idx, err := wazi.NewWorkloadAware(points, workload, wazi.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(idx.Describe())

	// Range query.
	box := wazi.Rect{MinX: 0.59, MinY: 0.39, MaxX: 0.61, MaxY: 0.41}
	hits := idx.RangeQuery(box)
	fmt.Printf("range %v -> %d points\n", box, len(hits))

	// Point query.
	fmt.Printf("point query for an indexed point: %v\n", idx.PointQuery(points[7]))

	// k nearest neighbours.
	nn := idx.KNN(wazi.Point{X: 0.6, Y: 0.4}, 3)
	fmt.Printf("3 nearest neighbours of (0.6, 0.4): %v\n", nn)

	// Updates.
	idx.Insert(wazi.Point{X: 0.605, Y: 0.405})
	fmt.Printf("after insert: %d points\n", idx.Len())

	// Access statistics accumulated so far.
	s := idx.Stats()
	fmt.Printf("stats: %d range queries, %d pages scanned, %d look-ahead jumps\n",
		s.RangeQueries, s.PagesScanned, s.LookaheadJumps)
}
