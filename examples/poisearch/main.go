// POI search: the scenario from the paper's introduction — a location-based
// service answering "what's around here?" range queries whose distribution
// is skewed toward popular areas and differs from the POI distribution
// itself.
//
// The example builds a clustered city-like dataset, a check-in-skewed
// workload, and compares the workload-aware index against the base Z-index
// on the metric the paper optimizes: points touched per query.
//
// Run with:
//
//	go run ./examples/poisearch
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	wazi "github.com/wazi-index/wazi"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// POIs cluster around four districts of different densities.
	districts := []struct {
		cx, cy, sd float64
		weight     int
	}{
		{0.25, 0.3, 0.05, 5}, // old town: dense
		{0.7, 0.25, 0.07, 3}, // harbor
		{0.45, 0.7, 0.06, 2}, // university
		{0.8, 0.8, 0.08, 1},  // suburbs
	}
	var pois []wazi.Point
	for len(pois) < 120_000 {
		d := districts[rng.Intn(len(districts))]
		if rng.Intn(6) >= d.weight {
			continue
		}
		p := wazi.Point{
			X: clamp(d.cx + rng.NormFloat64()*d.sd),
			Y: clamp(d.cy + rng.NormFloat64()*d.sd),
		}
		pois = append(pois, p)
	}

	// Check-ins concentrate on two nightlife spots, not on POI density. The
	// busiest one sits right at the city's median crossing — the worst case
	// for the base Z-index, whose root split lands exactly there (the
	// situation of Figure 1 in the paper).
	hotspots := []wazi.Point{medianOf(pois), {X: 0.68, Y: 0.3}}
	queries := make([]wazi.Rect, 4_000)
	for i := range queries {
		h := hotspots[0]
		if rng.Float64() < 0.3 {
			h = hotspots[1]
		}
		cx := clamp(h.X + rng.NormFloat64()*0.02)
		cy := clamp(h.Y + rng.NormFloat64()*0.02)
		const half = 0.005 // ~walking distance
		queries[i] = wazi.Rect{MinX: cx - half, MinY: cy - half, MaxX: cx + half, MaxY: cy + half}
	}
	train, eval := queries[:2000], queries[2000:]

	base, err := wazi.New(pois, wazi.WithoutSkipping())
	if err != nil {
		panic(err)
	}
	aware, err := wazi.NewWorkloadAware(pois, train, wazi.WithSeed(1))
	if err != nil {
		panic(err)
	}

	run := func(name string, idx *wazi.Index) {
		idx.Stats().Reset()
		start := time.Now()
		var results int
		buf := make([]wazi.Point, 0, 4096)
		for _, q := range eval {
			buf = idx.RangeQueryAppend(buf[:0], q)
			results += len(buf)
		}
		elapsed := time.Since(start)
		s := idx.Stats()
		fmt.Printf("%-18s %8.1f µs/query  %9d points touched  %8d results\n",
			name, float64(elapsed.Microseconds())/float64(len(eval)),
			s.PointsScanned, results)
	}
	fmt.Println("LBS range-query workload, 2000 evaluation queries:")
	run("base Z-index", base)
	run("WaZI", aware)

	// The "what's near me" feature: kNN around the busiest hotspot.
	nn := aware.KNN(hotspots[0], 5)
	fmt.Printf("\n5 POIs nearest the main hotspot %v:\n", hotspots[0])
	for _, p := range nn {
		fmt.Printf("  %v (%.4f away)\n", p, dist(p, hotspots[0]))
	}
}

func clamp(v float64) float64 { return math.Min(1, math.Max(0, v)) }

func dist(a, b wazi.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// medianOf returns the coordinate-wise median of pts.
func medianOf(pts []wazi.Point) wazi.Point {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return wazi.Point{X: xs[len(xs)/2], Y: ys[len(ys)/2]}
}
