// Sharded serving demo: partition points across per-shard WaZI indexes,
// serve parallel range queries lock-free, then drift the workload and watch
// the background control loop rebuild the affected shards workload-aware —
// with zero downtime for readers.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	wazi "github.com/wazi-index/wazi"
)

func hotspotWorkload(n int, cx, cy float64, seed int64) []wazi.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]wazi.Rect, n)
	for i := range qs {
		x := cx + rng.NormFloat64()*0.05
		y := cy + rng.NormFloat64()*0.05
		qs[i] = wazi.Rect{MinX: x - 0.01, MinY: y - 0.01, MaxX: x + 0.01, MaxY: y + 0.01}
	}
	return qs
}

func serve(s *wazi.Sharded, qs []wazi.Rect, goroutines int, d time.Duration) float64 {
	var done atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; !stop.Load(); i++ {
				_ = s.RangeQuery(qs[i%len(qs)])
				done.Add(1)
			}
		}(g * len(qs) / goroutines)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return float64(done.Load()) / d.Seconds()
}

func main() {
	rng := rand.New(rand.NewSource(42))
	points := make([]wazi.Point, 100_000)
	for i := range points {
		points[i] = wazi.Point{X: rng.Float64(), Y: rng.Float64()}
	}

	// Anticipated workload: a hotspot in the south-west.
	buildQs := hotspotWorkload(2000, 0.25, 0.25, 1)

	s, err := wazi.NewSharded(points, buildQs,
		wazi.WithShards(8),
		wazi.WithRebuildInterval(50*time.Millisecond),
		wazi.WithDriftWindow(512),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	fmt.Println(s.Describe())
	for i, info := range s.Shards() {
		fmt.Printf("  shard %d: %6d points, workload-aware=%v\n", i, info.Points, info.WorkloadAware)
	}

	// Phase 1: serve the anticipated distribution.
	qps := serve(s, buildQs, 8, time.Second)
	fmt.Printf("\nphase 1 (anticipated workload): %.0f queries/sec\n", qps)

	// Writes never block readers: insert while serving continues.
	for i := 0; i < 5000; i++ {
		s.Insert(wazi.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	fmt.Printf("after 5000 live inserts: %d points\n", s.Len())

	// Phase 2: traffic drifts to a hotspot in the north-east. The per-shard
	// advisors detect the shift; the control loop rebuilds drifted shards
	// with the recent query window and hot-swaps them in while queries keep
	// flowing.
	driftQs := hotspotWorkload(2000, 0.75, 0.75, 2)
	qps = serve(s, driftQs, 8, 2*time.Second)
	fmt.Printf("\nphase 2 (drifted workload): %.0f queries/sec\n", qps)
	fmt.Printf("rebuilds during drift: %d\n", s.Rebuilds())
	for i, info := range s.Shards() {
		fmt.Printf("  shard %d: %6d points, drift=%.2f, rebuilds=%d\n",
			i, info.Points, info.Drift, info.Rebuilds)
	}

	// Phase 3: the rebuilt layout now serves the drifted hotspot as its
	// anticipated workload.
	qps = serve(s, driftQs, 8, time.Second)
	fmt.Printf("\nphase 3 (after adaptation): %.0f queries/sec\n", qps)
	fmt.Println(s.Describe())
}
