package wazi_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	wazi "github.com/wazi-index/wazi"
)

// Deterministic tests for the online repartitioner: content preservation
// across a live migration, pinned-View routing against the retired plan,
// the imbalance advisor's trigger and non-trigger, epoch-numbered page
// files on the disk backend, and mid-migration snapshots. The concurrent
// interleavings are covered by TestShardedRepartitionSoak; the plan-level
// metamorphic properties live in internal/shard.

// uniformPoints spreads points evenly so partition shapes are controlled by
// the workload alone.
func uniformPoints(n int, seed int64) []wazi.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]wazi.Point, n)
	for i := range pts {
		pts[i] = wazi.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// hotspotWorkload generates n small range queries clustered around (cx, cy).
func hotspotWorkload(n int, cx, cy float64, seed int64) []wazi.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]wazi.Rect, n)
	for i := range qs {
		x := cx + rng.NormFloat64()*0.05
		y := cy + rng.NormFloat64()*0.05
		qs[i] = wazi.Rect{MinX: x - 0.03, MinY: y - 0.03, MaxX: x + 0.03, MaxY: y + 0.03}
	}
	return qs
}

// driftTo builds a Sharded trained on a head hotspot and drives a shifted
// tail hotspot through it, returning the tail queries.
func driftTo(t *testing.T, s *wazi.Sharded, seed int64) []wazi.Rect {
	t.Helper()
	tail := hotspotWorkload(2000, 0.85, 0.85, seed)
	for _, q := range tail {
		s.RangeQuery(q)
	}
	return tail
}

// dedicatedShards counts shards wholly contained in region with fewer than
// maxPts points — small shards the plan dedicated to that region. (MBR
// intersection is too weak a signal here: Z-order shards have wide,
// overlapping MBRs, so a cold continent-sized shard "intersects" every
// region.)
func dedicatedShards(s *wazi.Sharded, region wazi.Rect, maxPts int) int {
	n := 0
	for _, info := range s.Shards() {
		b := info.Bounds
		if info.Points > 0 && info.Points < maxPts &&
			b.MinX >= region.MinX && b.MinY >= region.MinY &&
			b.MaxX <= region.MaxX && b.MaxY <= region.MaxY {
			n++
		}
	}
	return n
}

// TestRepartitionRebalancesHotspot drives a shifted hotspot into a plan
// trained elsewhere and checks the migration actually rebalances: the hot
// region is covered by more, smaller shards afterwards, the epoch and
// counter advance, and every query still answers exactly.
func TestRepartitionRebalancesHotspot(t *testing.T) {
	pts := uniformPoints(12000, 1)
	head := hotspotWorkload(600, 0.15, 0.15, 2)
	s := newTestSharded(t, pts, head, wazi.WithShards(8), wazi.WithoutAutoRebuild(),
		wazi.WithIndexOptions(wazi.WithSeed(3)))
	tail := driftTo(t, s, 4)

	// The tail hotspot lives in the (0.7,0.7)-(1,1) corner; a rebalanced plan
	// dedicates small shards to it, the head-trained plan dedicates none.
	hot := wazi.Rect{MinX: 0.7, MinY: 0.7, MaxX: 1, MaxY: 1}
	before := dedicatedShards(s, hot, len(pts)/8)
	if !s.Repartition() {
		t.Fatal("Repartition declined to migrate under a fully shifted hotspot")
	}
	after := dedicatedShards(s, hot, len(pts)/8)
	if s.PlanEpoch() != 1 || s.Repartitions() != 1 {
		t.Fatalf("epoch/repartitions = %d/%d after one migration, want 1/1", s.PlanEpoch(), s.Repartitions())
	}
	if before != 0 || after < 2 {
		t.Errorf("hot corner not rebalanced: %d dedicated shards before, %d after (want 0 -> >=2)", before, after)
	}

	if s.Len() != len(pts) {
		t.Fatalf("migration changed Len: %d, want %d", s.Len(), len(pts))
	}
	for i, q := range append(append([]wazi.Rect{}, head[:100]...), tail[:100]...) {
		got := s.RangeQuery(q)
		want := bruteRange(pts, q)
		sortPts(got)
		sortPts(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits after migration, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d hit %d: %v, want %v", i, j, got[j], want[j])
			}
		}
		if c := s.RangeCount(q); c != len(want) {
			t.Fatalf("count %d: %d, want %d", i, c, len(want))
		}
	}
	for i := 0; i < len(pts); i += 97 {
		if !s.PointQuery(pts[i]) {
			t.Fatalf("point %v lost by migration", pts[i])
		}
	}
}

// TestRepartitionNoOpOnBalancedPlan: a plan already learned from the live
// workload has nothing to gain — Repartition must detect the Equal plan and
// decline rather than churn through a pointless migration.
func TestRepartitionNoOpOnBalancedPlan(t *testing.T) {
	pts := uniformPoints(6000, 11)
	s := newTestSharded(t, pts, nil, wazi.WithShards(6), wazi.WithoutAutoRebuild())
	// No queries observed: the re-learned plan is the count-balanced plan the
	// index was built with.
	if s.Repartition() {
		t.Fatal("Repartition migrated to an identical plan")
	}
	if s.PlanEpoch() != 0 || s.Repartitions() != 0 {
		t.Fatalf("no-op left epoch/repartitions at %d/%d, want 0/0", s.PlanEpoch(), s.Repartitions())
	}
}

// TestRepartitionViewPinnedAcrossMigration: a View taken before the swap
// keeps routing with the plan it was pinned to — every query type answers
// from the retired snapshot exactly as the live index answers from the new
// one while the data is unchanged.
func TestRepartitionViewPinnedAcrossMigration(t *testing.T) {
	pts := uniformPoints(8000, 21)
	head := hotspotWorkload(400, 0.2, 0.2, 22)
	s := newTestSharded(t, pts, head, wazi.WithShards(8), wazi.WithoutAutoRebuild())
	tail := driftTo(t, s, 23)

	v := s.View()
	if !s.Repartition() {
		t.Fatal("Repartition declined")
	}
	if v.Len() != s.Len() {
		t.Fatalf("pinned View Len %d, live Len %d", v.Len(), s.Len())
	}
	for _, q := range tail[:60] {
		got, want := v.RangeQuery(q), s.RangeQuery(q)
		sortPts(got)
		sortPts(want)
		if len(got) != len(want) {
			t.Fatalf("pinned View returned %d hits, live index %d", len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("pinned View hit %d = %v, live %v", j, got[j], want[j])
			}
		}
	}
	for i := 0; i < len(pts); i += 131 {
		if !v.PointQuery(pts[i]) {
			t.Fatalf("pinned View lost point %v (old-plan routing broken)", pts[i])
		}
	}
	// Writes after the swap are invisible to the pinned View but visible live.
	p := wazi.Point{X: 0.111, Y: 0.222}
	s.Insert(p)
	if v.PointQuery(p) {
		t.Fatal("pinned View sees a post-swap insert")
	}
	if !s.PointQuery(p) {
		t.Fatal("live index lost a post-swap insert")
	}
}

// TestCheckRepartitionAdvisor: the imbalance advisor fires on skewed load
// once enough queries accumulated, and stays quiet under balanced load or
// below the minimum sample size.
func TestCheckRepartitionAdvisor(t *testing.T) {
	pts := uniformPoints(8000, 31)
	head := hotspotWorkload(400, 0.15, 0.15, 32)
	build := func() *wazi.Sharded {
		return newTestSharded(t, pts, head, wazi.WithShards(8), wazi.WithoutAutoRebuild(),
			wazi.WithRepartitionMinLoad(500), wazi.WithRepartitionMaxSkew(2.5))
	}

	skewed := build()
	// Below the minimum sample the advisor must not judge, however skewed.
	for _, q := range hotspotWorkload(40, 0.85, 0.85, 33) {
		skewed.RangeQuery(q)
	}
	if skewed.CheckRepartition() {
		t.Fatal("advisor migrated on a sample below WithRepartitionMinLoad")
	}
	for _, q := range hotspotWorkload(2000, 0.85, 0.85, 34) {
		skewed.RangeQuery(q)
	}
	if !skewed.CheckRepartition() {
		t.Fatal("advisor ignored a fully skewed load vector")
	}
	if skewed.Repartitions() != 1 {
		t.Fatalf("advisor-triggered migrations = %d, want 1", skewed.Repartitions())
	}

	// Balanced case: a count-balanced plan under uniform load. (A
	// hotspot-trained plan under uniform load is genuinely skewed — its
	// dedicated hotspot shards idle — so the balanced baseline must pair a
	// plan with the load it was built for.)
	balanced := newTestSharded(t, pts, nil, wazi.WithShards(8), wazi.WithoutAutoRebuild(),
		wazi.WithRepartitionMinLoad(500), wazi.WithRepartitionMaxSkew(2.5))
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 3000; i++ {
		cx, cy := rng.Float64(), rng.Float64()
		balanced.RangeQuery(wazi.Rect{MinX: cx - 0.02, MinY: cy - 0.02, MaxX: cx + 0.02, MaxY: cy + 0.02})
	}
	if balanced.CheckRepartition() {
		t.Fatal("advisor migrated under balanced load")
	}
}

// TestRepartitionDiskEpochFiles: on the disk backend a migration writes the
// new plan's shards under the next epoch's page files, a subsequent save
// warm-starts onto them, and the retired epoch's files are swept at load.
func TestRepartitionDiskEpochFiles(t *testing.T) {
	dir := t.TempDir()
	pts := uniformPoints(6000, 41)
	head := hotspotWorkload(400, 0.2, 0.2, 42)
	s := newTestSharded(t, pts, head, wazi.WithShards(4), wazi.WithoutAutoRebuild(),
		wazi.WithIndexOptions(wazi.WithLeafSize(64), wazi.WithSeed(43)),
		wazi.WithShardedStorage(dir, 64))
	driftTo(t, s, 44)

	if !s.Repartition() {
		t.Fatal("Repartition declined")
	}
	if g, _ := filepath.Glob(filepath.Join(dir, "shard-e001-*.pages")); len(g) == 0 {
		t.Fatal("migration wrote no epoch-1 page files")
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := wazi.LoadSharded(bytes.NewReader(buf.Bytes()),
		wazi.WithShardedStorage(dir, 64), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pts) {
		t.Fatalf("warm start Len %d, want %d", re.Len(), len(pts))
	}
	if re.PlanEpoch() != 1 || re.Repartitions() != 1 {
		t.Fatalf("warm start epoch/repartitions = %d/%d, want 1/1", re.PlanEpoch(), re.Repartitions())
	}
	if g, _ := filepath.Glob(filepath.Join(dir, "shard-e000-*.pages")); len(g) != 0 {
		t.Fatalf("retired epoch-0 files survived the warm-start sweep: %v", g)
	}
	for i := 0; i < len(pts); i += 113 {
		if !re.PointQuery(pts[i]) {
			t.Fatalf("warm start lost point %v", pts[i])
		}
	}
}

// TestSaveMidMigration: a snapshot written while a migration is in flight
// records the migration target, still restores to the full serving state,
// and the restored instance is not migrating (its control loop re-learns).
func TestSaveMidMigration(t *testing.T) {
	pts := uniformPoints(4000, 51)
	head := hotspotWorkload(300, 0.2, 0.2, 52)
	s := newTestSharded(t, pts, head, wazi.WithShards(4), wazi.WithoutAutoRebuild())
	tail := hotspotWorkload(300, 0.8, 0.8, 53)

	s.ForceMigrationState(t, tail, 4)
	if !s.Migrating() {
		t.Fatal("ForceMigrationState did not mark the index migrating")
	}
	// Mid-migration writes: applied to the serving shards AND logged, so the
	// snapshot below must include them.
	extra := wazi.Point{X: 0.456, Y: 0.654}
	s.Insert(extra)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s.ClearMigrationState()

	re, err := wazi.LoadSharded(bytes.NewReader(buf.Bytes()), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Migrating() {
		t.Fatal("restored instance claims to be mid-migration")
	}
	if re.Len() != len(pts)+1 {
		t.Fatalf("restored Len %d, want %d", re.Len(), len(pts)+1)
	}
	if !re.PointQuery(extra) {
		t.Fatal("mid-migration insert lost across save/reload")
	}

	// A Save can also land in the migration's LEARN phase — in flight, no
	// target plan yet. That snapshot must restore too.
	s.ForceMigrationLearnPhase()
	var learn bytes.Buffer
	if err := s.Save(&learn); err != nil {
		t.Fatal(err)
	}
	s.ClearMigrationState()
	re2, err := wazi.LoadSharded(bytes.NewReader(learn.Bytes()), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatalf("snapshot saved during the learn phase does not restore: %v", err)
	}
	defer re2.Close()
	if re2.Len() != len(pts)+1 {
		t.Fatalf("learn-phase snapshot Len %d, want %d", re2.Len(), len(pts)+1)
	}
}
