package wazi

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The disk-backed concurrency soak: a Sharded index on page files under
// simultaneous readers, writers, drift-triggered background rebuilds, and
// snapshot saves — the full serving workload racing the storage engine.
// CI runs this package under -race, so the soak doubles as a data-race
// probe over the block cache, the retirement path, and attached saves.

// TestShardedDiskSoak is the always-on variant, sized to stay well under a
// second of wall clock beyond index construction.
func TestShardedDiskSoak(t *testing.T) {
	runShardedDiskSoak(t, 800*time.Millisecond)
}

// TestShardedDiskSoakLong runs the same soak several times longer; skipped
// under -short so quick iterations stay quick.
func TestShardedDiskSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short mode")
	}
	runShardedDiskSoak(t, 4*time.Second)
}

func runShardedDiskSoak(t *testing.T, dur time.Duration) {
	t.Helper()
	dir := t.TempDir()
	pts, qs := storageTestData(6000, 41)
	s, err := NewSharded(pts, qs[:100],
		WithShards(4),
		WithRebuildInterval(40*time.Millisecond),
		WithCompactThreshold(512),
		WithDriftWindow(256),
		WithIndexOptions(WithLeafSize(64), WithSeed(42)),
		WithShardedStorage(dir, 64))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, writes, saves atomic.Int64

	// Readers: range, count, point, and kNN traffic whose hotspot shifts
	// halfway through the soak, pushing the drift advisors over threshold.
	shifted := time.Now().Add(dur / 2)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				cx, cy := 0.2+rng.Float64()*0.1, 0.2+rng.Float64()*0.1
				if time.Now().After(shifted) {
					cx, cy = 0.8+rng.Float64()*0.1, 0.8+rng.Float64()*0.1
				}
				q := Rect{MinX: cx - 0.05, MinY: cy - 0.05, MaxX: cx + 0.05, MaxY: cy + 0.05}
				switch rng.Intn(4) {
				case 0:
					s.RangeQuery(q)
				case 1:
					s.RangeCount(q)
				case 2:
					s.PointQuery(pts[rng.Intn(len(pts))])
				default:
					s.KNN(Point{X: cx, Y: cy}, 8)
				}
				reads.Add(1)
			}
		}(int64(100 + r))
	}

	// Writers: each owns a disjoint key range, inserting fresh points and
	// deleting a fraction of its own inserts, so the expected final
	// contents are computable without cross-writer coordination.
	type writerState struct {
		mu   sync.Mutex
		live []Point
	}
	writers := make([]*writerState, 2)
	for w := range writers {
		ws := &writerState{}
		writers[w] = ws
		wg.Add(1)
		go func(w int, ws *writerState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Writer w's points live in x ∈ [2+w, 2.9+w): outside the
				// dataset's unit square, so they collide with nothing.
				if len(ws.live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(ws.live))
					p := ws.live[i]
					if !s.Delete(p) {
						t.Errorf("writer %d: Delete(%v) of a live point failed", w, p)
						return
					}
					ws.mu.Lock()
					ws.live[i] = ws.live[len(ws.live)-1]
					ws.live = ws.live[:len(ws.live)-1]
					ws.mu.Unlock()
				} else {
					p := Point{X: 2 + float64(w) + rng.Float64()*0.9, Y: rng.Float64()}
					s.Insert(p)
					ws.mu.Lock()
					ws.live = append(ws.live, p)
					ws.mu.Unlock()
				}
				writes.Add(1)
			}
		}(w, ws)
	}

	// Saver: attached snapshots racing rebuilds and writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(75 * time.Millisecond):
			}
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Errorf("concurrent Save: %v", err)
				return
			}
			saves.Add(1)
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("soak: %d reads, %d writes, %d saves, %d rebuilds",
		reads.Load(), writes.Load(), saves.Load(), s.Rebuilds())
	if saves.Load() == 0 || writes.Load() == 0 || reads.Load() == 0 {
		t.Fatal("soak exercised nothing")
	}
	if s.Rebuilds() == 0 {
		t.Error("soak triggered no background rebuilds; tune thresholds")
	}

	// Quiescent verification: the index holds exactly the initial data
	// plus every writer's surviving inserts.
	want := len(pts)
	for _, ws := range writers {
		want += len(ws.live)
	}
	if got := s.Len(); got != want {
		t.Fatalf("post-soak Len = %d, want %d", got, want)
	}
	for _, ws := range writers {
		for i := 0; i < len(ws.live); i += 7 {
			if !s.PointQuery(ws.live[i]) {
				t.Fatalf("surviving insert %v not found after soak", ws.live[i])
			}
		}
	}

	// A final snapshot must warm-start to identical contents.
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithShardedStorage(dir, 64), WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != want {
		t.Fatalf("warm-started Len = %d, want %d", re.Len(), want)
	}
}

// TestShardedRepartitionSoak races live plan migrations against everything
// else the serving layer does: mixed reads and writes, drift-triggered
// background rebuilds, attached snapshot saves — all on the disk backend,
// under -race in CI. The proof obligation is lost-write freedom: after the
// storm quiesces, a full scan of the index must checksum to exactly the
// initial data plus every surviving insert, whatever interleaving of
// migrations, rebuilds, and compactions occurred.
func TestShardedRepartitionSoak(t *testing.T) {
	dur := 1200 * time.Millisecond
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	dir := t.TempDir()
	pts, qs := storageTestData(6000, 61)
	s, err := NewSharded(pts, qs[:100],
		WithShards(6),
		WithRebuildInterval(40*time.Millisecond),
		WithCompactThreshold(512),
		WithDriftWindow(256),
		WithRepartitionMinLoad(512),
		WithRepartitionMaxSkew(2.0),
		WithIndexOptions(WithLeafSize(64), WithSeed(62)),
		WithShardedStorage(dir, 64))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, writes, saves atomic.Int64

	// Readers with a mid-soak hotspot shift: the drifted tail skews the
	// per-shard load vector, giving both the drift advisors and the
	// repartition advisor real work.
	shifted := time.Now().Add(dur / 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				cx, cy := 0.2+rng.Float64()*0.1, 0.2+rng.Float64()*0.1
				if time.Now().After(shifted) {
					cx, cy = 0.8+rng.Float64()*0.1, 0.8+rng.Float64()*0.1
				}
				q := Rect{MinX: cx - 0.05, MinY: cy - 0.05, MaxX: cx + 0.05, MaxY: cy + 0.05}
				switch rng.Intn(4) {
				case 0:
					s.RangeQuery(q)
				case 1:
					s.RangeCount(q)
				case 2:
					s.PointQuery(pts[rng.Intn(len(pts))])
				default:
					s.KNN(Point{X: cx, Y: cy}, 8)
				}
				reads.Add(1)
			}
		}(int64(300 + r))
	}

	// Writers own disjoint key ranges outside the dataset's unit square, so
	// the expected final multiset is computable without coordination.
	type writerState struct {
		mu   sync.Mutex
		live []Point
	}
	writers := make([]*writerState, 2)
	for w := range writers {
		ws := &writerState{}
		writers[w] = ws
		wg.Add(1)
		go func(w int, ws *writerState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if len(ws.live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(ws.live))
					p := ws.live[i]
					if !s.Delete(p) {
						t.Errorf("writer %d: Delete(%v) of a live point failed", w, p)
						return
					}
					ws.mu.Lock()
					ws.live[i] = ws.live[len(ws.live)-1]
					ws.live = ws.live[:len(ws.live)-1]
					ws.mu.Unlock()
				} else {
					p := Point{X: 2 + float64(w) + rng.Float64()*0.9, Y: rng.Float64()}
					s.Insert(p)
					ws.mu.Lock()
					ws.live = append(ws.live, p)
					ws.mu.Unlock()
				}
				writes.Add(1)
			}
		}(w, ws)
	}

	// Saver: attached snapshots racing migrations, rebuilds, and writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(90 * time.Millisecond):
			}
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Errorf("concurrent Save: %v", err)
				return
			}
			saves.Add(1)
		}
	}()

	// Repartitioner: forced migrations fired concurrently with everything
	// above (the advisor-gated path runs in the background loop as well).
	// The cadence leaves gaps between attempts — a Repartition call blocks
	// rebuilds for its whole scan, and the soak must exercise migrations
	// RACING rebuilds, not migrations starving them.
	var reparts atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(120 * time.Millisecond):
			}
			if s.Repartition() {
				reparts.Add(1)
			}
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if reparts.Load() == 0 {
		// Every concurrent attempt lost the race against a rebuild; migrate
		// once post-storm so the lost-write check still covers a migration.
		// The background loop is still running, so a single attempt can lose
		// to one last in-flight rebuild — retry briefly.
		migrated := false
		for try := 0; try < 40 && !migrated; try++ {
			migrated = s.Repartition() || s.Repartitions() > 0
			if !migrated {
				time.Sleep(25 * time.Millisecond)
			}
		}
		if !migrated {
			t.Fatal("no repartition completed, concurrently or quiesced")
		}
	}
	t.Logf("soak: %d reads, %d writes, %d saves, %d rebuilds, %d repartitions (epoch %d)",
		reads.Load(), writes.Load(), saves.Load(), s.Rebuilds(), s.Repartitions(), s.PlanEpoch())
	if saves.Load() == 0 || writes.Load() == 0 || reads.Load() == 0 {
		t.Fatal("soak exercised nothing")
	}

	// Lost-write freedom, proven by a full-scan checksum: the multiset
	// checksum of everything the index serves must equal the checksum of
	// the initial data plus every writer's surviving inserts.
	expected := append([]Point{}, pts...)
	for _, ws := range writers {
		expected = append(expected, ws.live...)
	}
	scan := s.RangeQuery(Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100})
	if got, want := MultisetChecksum(scan), MultisetChecksum(expected); got != want || len(scan) != len(expected) {
		reportMultisetDiff(t, scan, expected)
		t.Fatalf("post-soak full scan checksum %x over %d points, want %x over %d — writes lost or duplicated",
			got, len(scan), want, len(expected))
	}

	// And the migrated state must survive a save/warm-start cycle intact.
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	epoch := s.PlanEpoch()
	s.Close()
	re, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithShardedStorage(dir, 64), WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(expected) || re.PlanEpoch() != epoch {
		t.Fatalf("warm start: Len %d epoch %d, want %d / %d", re.Len(), re.PlanEpoch(), len(expected), epoch)
	}
}

// reportMultisetDiff logs which points differ between a scan and the
// expected contents, capped to keep failures readable.
func reportMultisetDiff(t *testing.T, scan, expected []Point) {
	t.Helper()
	counts := make(map[Point]int, len(expected))
	for _, p := range expected {
		counts[p]++
	}
	for _, p := range scan {
		counts[p]--
	}
	logged := 0
	for p, c := range counts {
		if c == 0 {
			continue
		}
		if logged == 20 {
			t.Log("... further diffs elided")
			break
		}
		if c > 0 {
			t.Logf("missing from scan: %v (x%d)", p, c)
		} else {
			t.Logf("unexpected in scan: %v (x%d)", p, -c)
		}
		logged++
	}
}
