package wazi

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/obs"
	"github.com/wazi-index/wazi/internal/shard"
	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/wal"
)

// Sharded is the serving-layer counterpart of Index: it partitions the data
// across N per-shard WaZI indexes with a workload-aware Z-order partitioner
// (hotspot regions get more, smaller shards), executes queries by parallel
// fan-out over only the shards whose bounds intersect the query, and adapts
// to workload drift by rebuilding drifted shards in the background and
// hot-swapping them in.
//
// The read data path is lock-free: every query loads an immutable snapshot
// through an atomic pointer, so writes, compactions, and rebuilds never
// block readers. (Drift monitoring is the one exception: each query takes
// a short per-shard mutex to update the advisor's histogram, and a sampled
// one for the recent-query ring.)
// Writes are serialized among themselves and land in small per-shard delta
// buffers (copy-on-write) that background compaction folds into the shard's
// index. This is the deployment model of §6.5 — build offline, serve online
// — extended with the zero-downtime adaptation the paper leaves as future
// work: each shard's RebuildAdvisor watches its observed queries, and once
// drift crosses the Figure 12 crossover threshold the shard is rebuilt with
// NewWorkloadAware on the recent query window and swapped in atomically.
type Sharded struct {
	snap atomic.Pointer[shardedSnapshot]
	mu   sync.Mutex // serializes writers, compactions, and snapshot swaps
	pool *shard.Pool
	opts shardedConfig

	// obs holds the hot-path instruments (fan-out, scan/rebuild/migration
	// latency, page reads); nil under WithoutObservability.
	obs *ShardedObs

	// Online repartitioning state (all guarded by mu). While a migration is
	// in flight, every write is applied to the serving (old-plan) snapshot
	// as usual AND appended to repartLog, which the migration replays onto
	// the new-plan shards — routed by the new plan — before the atomic plan
	// swap. repartTarget is the plan being migrated to, exposed for
	// observability and persisted by Save as the migration record.
	repartInFlight bool
	repartLog      []shardOp
	repartTarget   *shard.Plan
	// repartSeen holds the per-shard load totals at the last CheckRepartition
	// pass, so the advisor judges imbalance on load deltas, not lifetime sums.
	repartSeen []int64
	// repartFutile counts consecutive advisor-triggered migrations that
	// learned an Equal plan and no-opped. Each futile attempt costs a full
	// materialize (every page of every shard on the disk backend), so the
	// advisor backs off exponentially: a workload that is permanently
	// skewed but already optimally partitioned (e.g. every query on one
	// cell — some shard must own it) would otherwise re-learn and discard
	// the same plan every repartitionMinLoad queries forever.
	repartFutile int
	// planRef is the normalized histogram of the workload the serving plan
	// was learned from — the reference the plan-drift trigger compares the
	// aggregated live windows against. Nil when the plan was learned without
	// a workload (drift is then judged by imbalance alone).
	planRef []float64

	// Logical operation counters, maintained at this layer because shard
	// counters tally per-shard work, not per-caller operations.
	rangeQs      atomic.Int64
	pointQs      atomic.Int64
	knnQs        atomic.Int64
	inserts      atomic.Int64
	deletes      atomic.Int64
	rebuilds     atomic.Int64
	repartitions atomic.Int64

	// retired accumulates the final counters of shard indexes replaced by
	// compaction or rebuild, so aggregate Stats never move backwards.
	// Guarded by mu.
	retired Stats

	// retiredStores are page stores of disk-backed shard indexes replaced
	// by rebuilds. They stay open (with dropped caches) so that readers
	// still holding the old snapshot can finish, and their files stay on
	// disk so that a snapshot Saved concurrently with the rebuild remains
	// warm-startable; Close (or, past maxRetiredStores, garbage
	// collection) releases the descriptors and the next start's
	// stale-file sweep reclaims the files. Guarded by mu.
	retiredStores []io.Closer

	// Write-ahead log state (see sharded_wal.go). wal is set once during
	// construction and never replaced; walRecovering suppresses re-logging
	// while the startup replay drives ops through the public write path;
	// walBuf is the append scratch buffer (guarded by mu); lastSaveCut is
	// the log position the most recent Save captured, the only cut
	// TruncateWAL will truncate at.
	wal           *wal.WAL
	walRecovering bool
	walRecovered  wal.ReplayStats
	walBuf        []byte
	lastSaveCut   atomic.Uint64

	loop   chan struct{} // closed to stop the rebuild loop; nil when disabled
	kicked chan struct{} // nudges the loop when a backlog crosses the threshold
	wg     sync.WaitGroup
	closed bool
}

// shardedSnapshot is the immutable world a query runs against. The
// partition plan and the per-shard control blocks travel WITH the snapshot:
// an online repartition replaces plan, shards, and ctls in one atomic swap,
// so a reader (or a pinned View) always routes with the plan that matches
// the shard array it sees — old-plan readers keep routing against the old
// pair mid-migration, new-plan readers against the new. The ctl objects
// themselves are mutable (advisors, rings, load counters); only the slice
// and its pairing with the plan are immutable per snapshot.
type shardedSnapshot struct {
	plan   *shard.Plan
	shards []*shardSnap
	ctls   []*shardCtl
	// epoch counts completed repartitions; it versions the page-file
	// namespace so a migration's fresh shard files never collide with the
	// retiring plan's.
	epoch int
}

// shardSnap is one shard's immutable state: a built index (nil while the
// shard holds only buffered writes), the insert buffer, and delete
// tombstones. All three are copy-on-write: writers build a new shardSnap
// and swap the snapshot; readers never see a mutation.
type shardSnap struct {
	idx    *Index        // immutable once published; nil for an empty shard
	extra  []Point       // inserts not yet compacted into idx
	dead   map[Point]int // tombstoned multiset of deletes against idx
	deadN  int           // total tombstone count
	bounds Rect          // MBR of live contents (never shrinks on delete)
	empty  bool
	// occ is idx's occupancy bitmap (see sharded_occupancy.go); nil means
	// "assume anything" (no pruning). It describes idx only — the insert
	// buffer is covered by extraBounds, the MBR of extra (meaningful only
	// while extra is non-empty; it never shrinks on delete, which is
	// conservative for pruning).
	occ         *occupancy
	extraBounds Rect
}

// live returns the number of points the shard currently serves.
func (s *shardSnap) live() int {
	n := len(s.extra) - s.deadN
	if s.idx != nil {
		n += s.idx.Len()
	}
	return n
}

// backlog is the write-buffer pressure that triggers compaction.
func (s *shardSnap) backlog() int { return len(s.extra) + s.deadN }

// shardCtl is a shard's mutable control state. advisor is an atomic pointer
// because query paths observe into it while rebuilds replace it; the other
// fields are guarded by Sharded.mu.
type shardCtl struct {
	advisor    atomic.Pointer[RebuildAdvisor]
	recent     *queryRing
	rebuilding bool
	log        []shardOp // writes arriving while a rebuild is in flight
	rebuilds   int
	// gen numbers the shard's page-file generation under disk storage;
	// every rebuild writes a fresh file so readers of the old snapshot are
	// never invalidated.
	gen int
	// load counts queries this shard served (range/count fan-out targets and
	// point lookups). The repartition advisor reads the cross-shard load
	// vector to detect imbalance; a repartition resets it (fresh ctls).
	load atomic.Int64
}

// shardOp is one logged write, replayed onto a freshly rebuilt shard index
// before it is swapped in.
type shardOp struct {
	p   Point
	del bool
}

// queryRing is a thread-safe bounded ring of recently observed queries; its
// contents become the anticipated workload of a drift-triggered rebuild.
// Only one in ringSampleRate observations enters the mutex — the ring feeds
// rebuild workloads, where a sample is as good as the full stream, and the
// query hot path should shed shared-state traffic where it can.
type queryRing struct {
	tick   atomic.Uint64
	mu     sync.Mutex
	buf    []Rect
	next   int
	filled bool
}

const ringSampleRate = 4

func newQueryRing(n int) *queryRing { return &queryRing{buf: make([]Rect, n)} }

func (r *queryRing) add(q Rect) {
	if r.tick.Add(1)%ringSampleRate != 1 {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = q
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// preload seeds the ring with an already-sampled query window (a restored
// snapshot's), bypassing the live-path sampling.
func (r *queryRing) preload(qs []Rect) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, q := range qs {
		r.buf[r.next] = q
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
			r.filled = true
		}
	}
}

func (r *queryRing) snapshot() []Rect {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return append([]Rect(nil), r.buf...)
	}
	return append([]Rect(nil), r.buf[:r.next]...)
}

// shardedConfig collects ShardedOption values.
type shardedConfig struct {
	shards              int
	workers             int
	indexOpts           []Option
	driftThreshold      float64
	windowSize          int
	compactThreshold    int
	rebuildInterval     time.Duration
	autoRebuild         bool
	autoRepartition     bool
	repartitionMaxSkew  float64
	repartitionMinLoad  int
	repartitionMaxDrift float64
	storageDir          string
	cachePages          int
	noObs               bool
	walDir              string
	walSync             string
	walGroupWindow      time.Duration
	walSegmentBytes     int64
	walFS               wal.FS
}

// ShardedOption customizes NewSharded.
type ShardedOption func(*shardedConfig)

// WithShards sets the shard count (default: GOMAXPROCS, capped at 64).
func WithShards(n int) ShardedOption { return func(c *shardedConfig) { c.shards = n } }

// WithWorkers sets the fan-out worker-pool size (default: GOMAXPROCS).
func WithWorkers(n int) ShardedOption { return func(c *shardedConfig) { c.workers = n } }

// WithIndexOptions forwards options to every per-shard index build,
// including drift rebuilds.
func WithIndexOptions(opts ...Option) ShardedOption {
	return func(c *shardedConfig) { c.indexOpts = opts }
}

// WithDriftThreshold sets the per-shard drift level at which a rebuild
// triggers (default 0.6, the paper's Figure 12 crossover).
func WithDriftThreshold(t float64) ShardedOption {
	return func(c *shardedConfig) { c.driftThreshold = t }
}

// WithDriftWindow sets how many recent queries per shard inform drift
// detection and rebuild workloads (default 1024).
func WithDriftWindow(n int) ShardedOption { return func(c *shardedConfig) { c.windowSize = n } }

// WithCompactThreshold sets the per-shard write-buffer size (inserts plus
// tombstones) at which the buffer is compacted into the shard's index
// (default 1024).
func WithCompactThreshold(n int) ShardedOption {
	return func(c *shardedConfig) { c.compactThreshold = n }
}

// WithRebuildInterval sets how often the background control loop polls
// shards for drift and backlog (default 200ms).
func WithRebuildInterval(d time.Duration) ShardedOption {
	return func(c *shardedConfig) { c.rebuildInterval = d }
}

// WithoutAutoRebuild disables the background control loop. Compaction then
// happens synchronously on the writing goroutine, and drift rebuilds only
// when CheckRebuilds is called. Repartitioning likewise happens only when
// CheckRepartition or Repartition is called.
func WithoutAutoRebuild() ShardedOption { return func(c *shardedConfig) { c.autoRebuild = false } }

// WithoutAutoRepartition keeps the background control loop (drift rebuilds,
// compaction) but stops it from migrating to a new partition plan on its
// own; CheckRepartition and Repartition remain available to the caller.
// This is the "static plan" configuration of the repartition experiment.
func WithoutAutoRepartition() ShardedOption {
	return func(c *shardedConfig) { c.autoRepartition = false }
}

// WithRepartitionMaxSkew sets the cross-shard load imbalance (hottest
// shard's load as a multiple of the mean over loaded shards, see
// shard.Imbalance) beyond which the control loop re-learns the partition
// plan and migrates to it live (default 3.0). Lower values repartition more
// eagerly.
func WithRepartitionMaxSkew(s float64) ShardedOption {
	return func(c *shardedConfig) { c.repartitionMaxSkew = s }
}

// WithRepartitionMinLoad sets how many queries must have been served since
// the last repartition check before imbalance is judged (default 4096) —
// the advisor never migrates on a handful of samples.
func WithRepartitionMinLoad(n int) ShardedOption {
	return func(c *shardedConfig) { c.repartitionMinLoad = n }
}

// WithRepartitionMaxDrift sets the plan-drift level — total-variation
// distance between the observed global workload histogram and the serving
// plan's training workload — beyond which the control loop re-learns the
// plan even without load imbalance (default 0.25: clearly above the ~0.1
// sampling noise of two windows drawn from one distribution, and at the
// low edge of real shifts — hotspot-shift's rank reversal measures
// ~0.3 even through ring sampling).
func WithRepartitionMaxDrift(d float64) ShardedOption {
	return func(c *shardedConfig) { c.repartitionMaxDrift = d }
}

// WithShardedStorage puts every shard's leaf pages in a disk-resident page
// file under dir (one file per shard per rebuild generation), each fronted
// by a workload-aware block cache of cachePages pages (0 selects the
// default, 1024). Save then writes attached snapshots whose warm start
// adopts the existing page files instead of rewriting them, and stale
// generations are swept on the next cold or warm start. A disk-backed
// Sharded must not be queried after Close (which releases the page files),
// and a directory must not be shared by two live instances. See
// docs/STORAGE.md.
func WithShardedStorage(dir string, cachePages int) ShardedOption {
	return func(c *shardedConfig) {
		c.storageDir = dir
		c.cachePages = cachePages
	}
}

func (c *shardedConfig) fill() {
	procs := runtime.GOMAXPROCS(0)
	if c.shards <= 0 {
		c.shards = procs
		if c.shards > 64 {
			c.shards = 64
		}
	}
	if c.workers <= 0 {
		c.workers = procs
	}
	if c.driftThreshold <= 0 {
		c.driftThreshold = 0.6
	}
	if c.windowSize <= 0 {
		c.windowSize = 1024
	}
	if c.compactThreshold <= 0 {
		c.compactThreshold = 1024
	}
	if c.rebuildInterval <= 0 {
		c.rebuildInterval = 200 * time.Millisecond
	}
	if c.repartitionMaxSkew <= 0 {
		c.repartitionMaxSkew = 3.0
	}
	if c.repartitionMinLoad <= 0 {
		c.repartitionMinLoad = 4096
	}
	if c.repartitionMaxDrift <= 0 {
		c.repartitionMaxDrift = 0.25
	}
}

// NewSharded builds a sharded serving layer over points: the workload-aware
// partitioner assigns each point a shard, every non-empty shard gets its own
// WaZI index built with the slice of workload that intersects its bounds,
// and (unless disabled) a background goroutine starts watching for drift.
// Call Close when done to stop the background machinery.
func NewSharded(points []Point, workload []Rect, opts ...ShardedOption) (*Sharded, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	cfg := shardedConfig{autoRebuild: true, autoRepartition: true}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fill()

	if cfg.storageDir != "" {
		if err := os.MkdirAll(cfg.storageDir, 0o755); err != nil {
			return nil, fmt.Errorf("wazi: creating storage dir: %w", err)
		}
		// A cold build replaces every page file; files from a previous
		// process (including retired generations) are stale.
		sweepStalePageFiles(cfg.storageDir, nil)
	}
	plan := shard.Partition(points, workload, cfg.shards)
	s := &Sharded{opts: cfg}
	if !cfg.noObs {
		s.obs = newShardedObs()
	}
	s.planRef = queryHist(plan.Bounds(), workload)
	snap := &shardedSnapshot{plan: plan, shards: make([]*shardSnap, plan.NumShards()),
		ctls: make([]*shardCtl, plan.NumShards())}
	for i, group := range plan.Groups {
		ctl := &shardCtl{recent: newQueryRing(cfg.windowSize)}
		snap.ctls[i] = ctl
		if len(group) == 0 {
			snap.shards[i] = &shardSnap{empty: true}
			continue
		}
		bounds := geom.RectFromPoints(group)
		shardQs := intersectingQueries(workload, bounds)
		idx, err := buildShardIndex(group, shardQs, s.shardIndexOptions(0, i, 0))
		if err != nil {
			// Unwind the shards already built so an aborted cold start
			// leaks no page-file descriptors.
			for _, built := range snap.shards {
				if built != nil && built.idx != nil {
					built.idx.Close()
				}
			}
			return nil, fmt.Errorf("wazi: building shard %d: %w", i, err)
		}
		s.attachStoreObs(idx)
		snap.shards[i] = &shardSnap{idx: idx, bounds: idx.Bounds(),
			occ: buildOccupancy(group, idx.Bounds())}
		ctl.advisor.Store(NewRebuildAdvisor(idx.Bounds(), shardQs, cfg.windowSize, cfg.driftThreshold))
	}
	s.snap.Store(snap)
	s.pool = shard.NewPool(cfg.workers)
	// Replay any WAL tail before the background loop starts: a cold build
	// is deterministic in its inputs, so cold build + full replay recovers
	// every acknowledged write even without a snapshot.
	if err := s.initWAL(0); err != nil {
		s.pool.Close()
		for _, built := range snap.shards {
			if built.idx != nil {
				built.idx.Close()
			}
		}
		return nil, err
	}
	if cfg.autoRebuild {
		s.loop = make(chan struct{})
		s.kicked = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.rebuildLoop()
	}
	return s, nil
}

// buildShardIndex builds one shard's index, workload-aware when the shard
// has an anticipated workload.
func buildShardIndex(pts []Point, queries []Rect, opts []Option) (*Index, error) {
	if len(queries) > 0 {
		return NewWorkloadAware(pts, queries, opts...)
	}
	return New(pts, opts...)
}

// shardPageFile names shard i's generation-gen page file under plan epoch
// e. The epoch namespaces migrations: a repartition's fresh shard files can
// never collide with the retiring plan's, whatever the shard counts.
func shardPageFile(epoch, i, gen int) string {
	return fmt.Sprintf("shard-e%03d-%04d-g%06d.pages", epoch, i, gen)
}

// shardIndexOptions returns the per-shard build options: the configured
// index options plus, under disk storage, the shard's page-file placement.
func (s *Sharded) shardIndexOptions(epoch, i, gen int) []Option {
	if s.opts.storageDir == "" {
		return s.opts.indexOpts
	}
	opts := append([]Option(nil), s.opts.indexOpts...)
	return append(opts, WithStorage(Storage{
		Path:       filepath.Join(s.opts.storageDir, shardPageFile(epoch, i, gen)),
		CachePages: s.opts.cachePages,
	}))
}

// sweepStalePageFiles removes the page files in dir whose base name is not
// in keep — retired generations a previous process left behind.
func sweepStalePageFiles(dir string, keep map[string]bool) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.pages"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if !keep[filepath.Base(m)] {
			os.Remove(m)
		}
	}
}

// maxRetiredStores bounds how many replaced page stores the Sharded itself
// keeps referenced (and therefore closes deterministically at Close). A
// store evicted from this FIFO is NOT closed — a long-lived View may still
// fault pages through it — it is merely unreferenced, so once the last
// snapshot using it becomes unreachable, the os.File finalizer releases
// the descriptor. Descriptor usage is thus bounded by live readers plus
// this cap, never by total rebuild count.
const maxRetiredStores = 8

// retireIndexStore parks a replaced disk-backed shard index's page store:
// caches dropped (releasing memory), file descriptor kept open for readers
// still on the old snapshot, file left on disk for concurrently-saved
// snapshots. Close, the FIFO cap (via GC), and the next start's sweep
// reclaim them. Callers hold s.mu.
func (s *Sharded) retireIndexStore(idx *Index) {
	if ds, ok := idx.z.Store().(*storage.DiskStore); ok {
		ds.DropCaches()
		s.retiredStores = append(s.retiredStores, ds)
		if len(s.retiredStores) > maxRetiredStores {
			s.retiredStores = append([]io.Closer(nil), s.retiredStores[len(s.retiredStores)-maxRetiredStores:]...)
		}
	}
}

// discardIndexStorage releases a freshly built index that lost its reason
// to exist (the shard emptied during the rebuild), removing its page file.
func discardIndexStorage(idx *Index) {
	if ds, ok := idx.z.Store().(*storage.DiskStore); ok {
		path := ds.Path()
		ds.Close()
		os.Remove(path)
	}
}

func intersectingQueries(workload []Rect, bounds Rect) []Rect {
	var out []Rect
	for _, q := range workload {
		if q.Intersects(bounds) {
			out = append(out, q)
		}
	}
	return out
}

// Close stops the background control loop and the worker pool. For the
// RAM-resident default, queries issued after Close still work (fan-out
// degrades to inline execution) and writes remain valid, with compaction
// running synchronously on the writing goroutine once a shard's backlog
// overflows — as under WithoutAutoRebuild. Under WithShardedStorage, Close
// additionally releases every shard's page file (current and retired), so
// a disk-backed Sharded must not be used after Close.
func (s *Sharded) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.loop != nil {
		close(s.loop)
		s.wg.Wait()
	}
	s.closeWAL()
	s.pool.Close()
	if s.opts.storageDir != "" {
		s.mu.Lock()
		for _, ss := range s.snap.Load().shards {
			if ss.idx != nil {
				ss.idx.Close()
			}
		}
		for _, c := range s.retiredStores {
			c.Close()
		}
		s.retiredStores = nil
		s.mu.Unlock()
	}
}

// ---------------------------------------------------------------- queries

// RangeQuery returns all indexed points inside the closed rectangle r,
// fanning out to the shards whose bounds intersect r.
func (s *Sharded) RangeQuery(r Rect) []Point {
	s.rangeQs.Add(1)
	return s.rangeAppendFromSnap(nil, s.snap.Load(), r, nil)
}

// RangeQueryAppend appends the points inside r to dst and returns the
// extended slice — the buffer-reusing form of RangeQuery, symmetric with
// Index.RangeQueryAppend. Steady-state callers cycling a buffer through it
// allocate nothing: the fan-out runs on a pooled per-query arena.
func (s *Sharded) RangeQueryAppend(dst []Point, r Rect) []Point {
	s.rangeQs.Add(1)
	return s.rangeAppendFromSnap(dst, s.snap.Load(), r, nil)
}

// rangeFromSnap runs a range query against one pinned snapshot; View and
// the public query path share it. tr, when non-nil, receives per-shard
// scan spans and a page-I/O attribution span.
func (s *Sharded) rangeFromSnap(snap *shardedSnapshot, r Rect, tr *obs.QueryTrace) []Point {
	return s.rangeAppendFromSnap(nil, snap, r, tr)
}

func (s *Sharded) rangeAppendFromSnap(dst []Point, snap *shardedSnapshot, r Rect, tr *obs.QueryTrace) []Point {
	if done := s.traceIO(snap, tr); done != nil {
		defer done()
	}
	a := s.getArena(snap, tr)
	defer a.release()
	a.rectTargets(r)
	s.obs.observeFanout(len(snap.shards), len(a.targets))
	n := len(a.targets)
	if n == 0 {
		return dst
	}
	if n == 1 || s.pool.Inline() {
		// No parallelism to harvest: scan straight into dst, skipping the
		// per-target buffers and the merge copy.
		for _, si := range a.targets {
			t0, live := s.scanStart(tr)
			before := len(dst)
			dst = shardRange(snap.shards[si], r, dst)
			if live {
				s.endScan(tr, si, t0, len(dst)-before)
			}
		}
		return dst
	}
	a.ensure(n)
	s.pool.Run(n, a.rangeFn)
	total := 0
	for _, buf := range a.bufs {
		total += len(buf)
	}
	dst = slices.Grow(dst, total)
	for _, buf := range a.bufs {
		dst = append(dst, buf...)
	}
	return dst
}

// RangeCount returns the number of points inside r without materializing
// them.
func (s *Sharded) RangeCount(r Rect) int {
	s.rangeQs.Add(1)
	return s.countFromSnap(s.snap.Load(), r, nil)
}

// countFromSnap runs a range count against one pinned snapshot.
func (s *Sharded) countFromSnap(snap *shardedSnapshot, r Rect, tr *obs.QueryTrace) int {
	if done := s.traceIO(snap, tr); done != nil {
		defer done()
	}
	a := s.getArena(snap, tr)
	defer a.release()
	a.rectTargets(r)
	s.obs.observeFanout(len(snap.shards), len(a.targets))
	n := len(a.targets)
	total := 0
	switch {
	case n == 0:
	case n == 1 || s.pool.Inline():
		for _, si := range a.targets {
			t0, live := s.scanStart(tr)
			c := shardCount(snap.shards[si], r)
			if live {
				s.endScan(tr, si, t0, c)
			}
			total += c
		}
	default:
		a.ensure(n)
		s.pool.Run(n, a.countFn)
		for _, c := range a.counts {
			total += c
		}
	}
	return total
}

// mayContain reports whether the shard can possibly hold a point inside r:
// the index part must overlap an occupied cell, or the insert buffer's MBR
// must intersect r. False negatives are impossible — occupancy never
// clears bits and extraBounds never shrinks — so skipping a shard is
// always sound.
func (ss *shardSnap) mayContain(r Rect) bool {
	if ss.empty || !ss.bounds.Intersects(r) {
		return false
	}
	if ss.idx != nil && (ss.occ == nil || ss.occ.overlaps(r)) {
		return true
	}
	return len(ss.extra) > 0 && ss.extraBounds.Intersects(r)
}

// shardRange runs a range query against one immutable shard snapshot.
func shardRange(ss *shardSnap, r Rect, dst []Point) []Point {
	before := len(dst)
	if ss.idx != nil {
		dst = ss.idx.RangeQueryAppend(dst, r)
	}
	if ss.deadN > 0 {
		dst = filterDead(dst, before, ss.dead)
	}
	for _, p := range ss.extra {
		if r.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst
}

func shardCount(ss *shardSnap, r Rect) int {
	n := 0
	if ss.idx != nil {
		n = ss.idx.RangeCount(r)
		// Every tombstone refers to points present in the index (Delete
		// checks before tombstoning), so subtracting the in-rectangle
		// tombstones is exact — no need to materialize the result set.
		for p, c := range ss.dead {
			if r.Contains(p) {
				n -= c
			}
		}
	}
	for _, p := range ss.extra {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

// filterDead removes tombstoned occurrences from pts[from:], respecting
// multiset semantics: a tombstone count of c removes at most c copies.
func filterDead(pts []Point, from int, dead map[Point]int) []Point {
	var remaining map[Point]int
	out := pts[:from]
	for _, p := range pts[from:] {
		c, ok := dead[p]
		if !ok {
			out = append(out, p)
			continue
		}
		if remaining == nil {
			remaining = make(map[Point]int, len(dead))
			for k, v := range dead {
				remaining[k] = v
			}
			c = remaining[p]
		} else {
			c = remaining[p]
		}
		if c > 0 {
			remaining[p] = c - 1
			continue
		}
		out = append(out, p)
	}
	return out
}

// PointQuery reports whether a point equal to p is indexed. Z-order routing
// makes this a single-shard lookup.
func (s *Sharded) PointQuery(p Point) bool {
	s.pointQs.Add(1)
	return s.pointFromSnap(s.snap.Load(), p, nil)
}

// pointFromSnap runs a point query against one pinned snapshot, routing
// with the snapshot's own plan so a View pinned across a repartition stays
// consistent with the shard array it holds.
func (s *Sharded) pointFromSnap(snap *shardedSnapshot, p Point, tr *obs.QueryTrace) bool {
	if done := s.traceIO(snap, tr); done != nil {
		defer done()
	}
	i := snap.plan.Locate(p)
	t0, live := s.scanStart(tr)
	found := pointInShard(snap, i, p)
	if live {
		n := 0
		if found {
			n = 1
		}
		s.endScan(tr, i, t0, n)
	}
	return found
}

// pointInShard answers a point query against shard i of a snapshot.
func pointInShard(snap *shardedSnapshot, i int, p Point) bool {
	snap.ctls[i].load.Add(1)
	ss := snap.shards[i]
	if ss.empty {
		return false
	}
	for _, q := range ss.extra {
		if q == p {
			return true
		}
	}
	if ss.idx == nil {
		return false
	}
	if ss.deadN > 0 {
		if d := ss.dead[p]; d > 0 {
			// Some copies are tombstoned; survive only if the index holds more.
			return ss.idx.RangeCount(pointRect(p)) > d
		}
	}
	return ss.idx.PointQuery(p)
}

func pointRect(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// KNN returns the k points nearest to q, closest first: per-shard candidate
// sets are gathered by parallel fan-out and merged through a global
// bounded max-heap. Equidistant neighbours are ordered by (distance, X, Y),
// so the result is deterministic across shard layouts and backends.
func (s *Sharded) KNN(q Point, k int) []Point {
	s.knnQs.Add(1)
	return s.knnAppendFromSnap(nil, s.snap.Load(), q, k, nil)
}

// KNNAppend appends the k nearest neighbours of q to dst, nearest first —
// the buffer-reusing form of KNN, symmetric with Index.KNNAppend.
func (s *Sharded) KNNAppend(dst []Point, q Point, k int) []Point {
	s.knnQs.Add(1)
	return s.knnAppendFromSnap(dst, s.snap.Load(), q, k, nil)
}

// knnFromSnap runs a kNN query against one pinned snapshot.
func (s *Sharded) knnFromSnap(snap *shardedSnapshot, q Point, k int, tr *obs.QueryTrace) []Point {
	return s.knnAppendFromSnap(nil, snap, q, k, tr)
}

func (s *Sharded) knnAppendFromSnap(dst []Point, snap *shardedSnapshot, q Point, k int, tr *obs.QueryTrace) []Point {
	if k <= 0 {
		return dst
	}
	if done := s.traceIO(snap, tr); done != nil {
		defer done()
	}
	a := s.getArena(snap, tr)
	defer a.release()
	a.liveTargets()
	s.obs.observeFanout(len(snap.shards), len(a.targets))
	n := len(a.targets)
	if n == 0 {
		return dst
	}
	a.q, a.k = q, k
	a.ensure(n)
	if n == 1 || s.pool.Inline() {
		for ti := range a.targets {
			a.knnFn(ti)
		}
	} else {
		s.pool.Run(n, a.knnFn)
	}
	// Merge through a bounded max-heap on the arena's reusable buffer: the
	// root is the worst of the k best by the (distance, X, Y) total order,
	// so ties at the cut line resolve identically no matter which shard
	// produced them.
	h := a.heap[:0]
	for _, cs := range a.bufs {
		for _, p := range cs {
			h = geom.PushBounded(h, p, k, q)
		}
	}
	a.heap = h
	geom.SortByDistance(h, q)
	return append(dst, h...)
}

// shardKNNAppend appends one shard's k nearest candidates to q onto dst
// (the shard's true top-k all appear, ordered by (distance, X, Y) in the
// indexed part before insert-buffer replacement).
func shardKNNAppend(dst []Point, ss *shardSnap, q Point, k int) []Point {
	base := len(dst)
	if ss.idx != nil {
		// Tombstoned points may occupy top spots; over-fetch so k live
		// candidates survive the filter. KNNAppend returns them sorted, so
		// truncation keeps the nearest k.
		dst = ss.idx.KNNAppend(dst, q, k+ss.deadN)
		if ss.deadN > 0 {
			dst = filterDead(dst, base, ss.dead)
		}
		if len(dst)-base > k {
			dst = dst[:base+k]
		}
	}
	for _, p := range ss.extra {
		if len(dst)-base < k {
			dst = append(dst, p)
			continue
		}
		// Replace the current worst if p precedes it in the (distance, X, Y)
		// order.
		wi := base
		for i := base + 1; i < len(dst); i++ {
			if geom.DistLess(dst[wi], dst[i], q) {
				wi = i
			}
		}
		if geom.DistLess(p, dst[wi], q) {
			dst[wi] = p
		}
	}
	return dst
}

func distSq(a, b Point) float64 { return geom.DistSq(a, b) }

// ---------------------------------------------------------------- writes

// Insert adds p. The write lands in the owning shard's copy-on-write delta
// buffer; readers observe it on their next snapshot load, without blocking.
// During a live repartition the write additionally joins the migration log,
// which the migration replays — routed by the new plan — before its swap.
func (s *Sharded) Insert(p Point) {
	s.mu.Lock()
	snap := s.snap.Load()
	i := snap.plan.Locate(p)
	ss := snap.shards[i]
	ns := &shardSnap{
		idx:   ss.idx,
		extra: append(append(make([]Point, 0, len(ss.extra)+1), ss.extra...), p),
		dead:  ss.dead,
		deadN: ss.deadN,
		occ:   ss.occ,
	}
	if ss.empty {
		ns.bounds = pointRect(p)
	} else {
		ns.bounds = ss.bounds.ExtendPoint(p)
	}
	if len(ss.extra) == 0 {
		ns.extraBounds = pointRect(p)
	} else {
		ns.extraBounds = ss.extraBounds.ExtendPoint(p)
	}
	s.swapShard(snap, i, ns)
	s.inserts.Add(1)
	ctl := snap.ctls[i]
	if ctl.rebuilding {
		ctl.log = append(ctl.log, shardOp{p: p})
	}
	if s.repartInFlight {
		s.repartLog = append(s.repartLog, shardOp{p: p})
	}
	// Log under mu, right after the apply: sequence order then equals
	// apply order, so replay reproduces exactly this history.
	walSeq := s.walAppendLocked(p, false)
	overflow := !ctl.rebuilding && !s.repartInFlight && ns.backlog() >= s.opts.compactThreshold
	background := s.loop != nil && !s.closed
	s.mu.Unlock()
	s.walAck(walSeq)
	if overflow {
		if background {
			s.kick()
		} else {
			s.rebuildShard(i)
		}
	}
}

// Delete removes one point equal to p, reporting whether one was found.
// Deletes against the immutable shard index become tombstones that
// compaction later clears.
func (s *Sharded) Delete(p Point) bool {
	s.mu.Lock()
	snap := s.snap.Load()
	i := snap.plan.Locate(p)
	ss := snap.shards[i]
	ctl := snap.ctls[i]

	// A buffered insert is the cheapest thing to undo.
	for j, q := range ss.extra {
		if q == p {
			extra := append([]Point(nil), ss.extra[:j]...)
			extra = append(extra, ss.extra[j+1:]...)
			ns := &shardSnap{idx: ss.idx, extra: extra, dead: ss.dead, deadN: ss.deadN,
				bounds: ss.bounds, empty: ss.idx == nil && len(extra) == 0 && ss.deadN == 0,
				occ: ss.occ, extraBounds: ss.extraBounds}
			s.swapShard(snap, i, ns)
			s.deletes.Add(1)
			if ctl.rebuilding {
				ctl.log = append(ctl.log, shardOp{p: p, del: true})
			}
			if s.repartInFlight {
				s.repartLog = append(s.repartLog, shardOp{p: p, del: true})
			}
			walSeq := s.walAppendLocked(p, true)
			s.mu.Unlock()
			s.walAck(walSeq)
			return true
		}
	}
	if ss.idx == nil {
		s.mu.Unlock()
		return false
	}
	have := ss.idx.RangeCount(pointRect(p))
	if have <= ss.dead[p] {
		s.mu.Unlock()
		return false
	}
	dead := make(map[Point]int, len(ss.dead)+1)
	for k, v := range ss.dead {
		dead[k] = v
	}
	dead[p]++
	ns := &shardSnap{idx: ss.idx, extra: ss.extra, dead: dead, deadN: ss.deadN + 1,
		bounds: ss.bounds, occ: ss.occ, extraBounds: ss.extraBounds}
	s.swapShard(snap, i, ns)
	s.deletes.Add(1)
	if ctl.rebuilding {
		ctl.log = append(ctl.log, shardOp{p: p, del: true})
	}
	if s.repartInFlight {
		s.repartLog = append(s.repartLog, shardOp{p: p, del: true})
	}
	walSeq := s.walAppendLocked(p, true)
	overflow := !ctl.rebuilding && !s.repartInFlight && ns.backlog() >= s.opts.compactThreshold
	background := s.loop != nil && !s.closed
	s.mu.Unlock()
	s.walAck(walSeq)
	if overflow {
		if background {
			s.kick()
		} else {
			s.rebuildShard(i)
		}
	}
	return true
}

// swapShard publishes a snapshot identical to old except for shard i,
// keeping the plan/ctls/epoch pairing intact. Callers hold s.mu.
func (s *Sharded) swapShard(old *shardedSnapshot, i int, ns *shardSnap) {
	shards := append([]*shardSnap(nil), old.shards...)
	shards[i] = ns
	s.snap.Store(&shardedSnapshot{plan: old.plan, shards: shards, ctls: old.ctls, epoch: old.epoch})
}

func (s *Sharded) kick() {
	select {
	case s.kicked <- struct{}{}:
	default:
	}
}

// ------------------------------------------------------------- adaptation

// rebuildLoop is the background control loop: every interval (or sooner,
// when a writer signals backlog pressure) it scans the shards and rebuilds
// any that drifted or overflowed, then asks the plan advisor whether
// cross-shard load imbalance warrants re-learning the partition plan.
func (s *Sharded) rebuildLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.rebuildInterval)
	defer t.Stop()
	for {
		select {
		case <-s.loop:
			return
		case <-t.C:
		case <-s.kicked:
		}
		s.CheckRebuilds()
		if s.opts.autoRepartition {
			s.CheckRepartition()
		}
	}
}

// CheckRebuilds scans every shard and rebuilds those whose drift crossed
// the threshold or whose write backlog crossed the compaction threshold,
// hot-swapping each rebuilt index in. It returns the number of shards
// rebuilt. The background loop calls this periodically; tests and callers
// running WithoutAutoRebuild can call it directly.
func (s *Sharded) CheckRebuilds() int {
	n := 0
	snap := s.snap.Load()
	for i := range snap.ctls {
		ss := snap.shards[i]
		drifted := false
		if a := snap.ctls[i].advisor.Load(); a != nil {
			drifted = a.RebuildRecommended()
		}
		if drifted || ss.backlog() >= s.opts.compactThreshold {
			if s.rebuildShard(i) {
				n++
			}
		}
	}
	return n
}

// rebuildShard rebuilds shard i from its current live points with the
// recently observed queries as the anticipated workload, then swaps the
// result in. Readers are never blocked: the build runs without locks, and
// writes that arrive meanwhile are logged and replayed onto the new index
// before the swap. Reports whether a swap happened.
//
// Rebuilds and repartitions exclude each other: a rebuild never starts
// while a migration is in flight (checked here), and a migration never
// starts while any shard is rebuilding (checked in repartition). Both flags
// are guarded by s.mu, so the snapshot's plan/ctls pairing cannot change
// between this capture and the final swap.
func (s *Sharded) rebuildShard(i int) bool {
	s.mu.Lock()
	snap := s.snap.Load()
	if s.repartInFlight || s.closed || i >= len(snap.shards) {
		// i can exceed the shard count when a migration completed between
		// the caller observing a backlog and this call; the new plan's
		// control loop pass will pick up whatever pressure remains.
		s.mu.Unlock()
		return false
	}
	ctl := snap.ctls[i]
	if ctl.rebuilding {
		s.mu.Unlock()
		return false
	}
	ss := snap.shards[i]
	recent := ctl.recent.snapshot()
	gen := ctl.gen
	epoch := snap.epoch
	ctl.rebuilding = true
	ctl.log = nil
	s.mu.Unlock()

	rebuildStart := time.Now()

	// Materialize outside the mutex: every captured structure is immutable
	// copy-on-write, and for a disk-backed shard this reads all of its
	// pages — holding s.mu across that scan would stall every writer for
	// the duration. Writes landing from here on are logged (rebuilding is
	// set) and replayed onto the new index before the swap.
	pts := materialize(ss)

	var idx *Index
	var occ *occupancy
	if len(pts) > 0 {
		var err error
		idx, err = buildShardIndex(pts, recent, s.shardIndexOptions(epoch, i, gen+1))
		if err == nil {
			s.attachStoreObs(idx)
			occ = buildOccupancy(pts, idx.Bounds())
		}
		if err != nil {
			// Unreachable for non-empty pts on the RAM backend; under disk
			// storage a failed page-file creation lands here. Fail safe by
			// aborting the swap (and dropping any partial file).
			if s.opts.storageDir != "" {
				os.Remove(filepath.Join(s.opts.storageDir, shardPageFile(epoch, i, gen+1)))
			}
			s.mu.Lock()
			ctl.rebuilding = false
			ctl.log = nil
			s.mu.Unlock()
			return false
		}
	}

	s.mu.Lock()
	if idx != nil {
		// Drain the logged write backlog in batches OUTSIDE the mutex: on
		// a disk-backed shard every replayed op faults and rewrites a
		// page, and holding s.mu across that I/O would stall all writers
		// — the same reasoning as materialize above. Bounded rounds so a
		// sustained write stream cannot livelock the swap; the (small)
		// remainder is applied under the lock below.
		for round := 0; len(ctl.log) > 0 && round < 4; round++ {
			batch := ctl.log
			ctl.log = nil
			s.mu.Unlock()
			replayOps(idx, occ, batch)
			s.mu.Lock()
		}
	}
	defer s.mu.Unlock()
	ctl.rebuilding = false
	if ss.idx != nil {
		// Bank the retiring index's counters; readers still in flight on it
		// may flush a few more, which is an acceptable monitoring blur.
		s.retired = s.retired.Add(ss.idx.Stats().AtomicSnapshot())
	}
	var ns *shardSnap
	if idx != nil {
		replayOps(idx, occ, ctl.log)
		if idx.Len() > 0 {
			ns = &shardSnap{idx: idx, bounds: idx.Bounds(), occ: occ}
			ctl.gen = gen + 1
		} else {
			discardIndexStorage(idx)
			ns = &shardSnap{empty: true}
		}
	} else {
		// The shard was fully emptied before the rebuild; replay logged
		// writes into a fresh delta buffer.
		ns = &shardSnap{empty: true}
		for _, op := range ctl.log {
			if op.del {
				for j, q := range ns.extra {
					if q == op.p {
						ns.extra = append(ns.extra[:j], ns.extra[j+1:]...)
						break
					}
				}
			} else {
				ns.extra = append(ns.extra, op.p)
			}
		}
		if len(ns.extra) > 0 {
			ns.empty = false
			ns.bounds = geom.RectFromPoints(ns.extra)
			ns.extraBounds = ns.bounds
		}
	}
	ctl.log = nil
	if ns.idx != nil {
		// The recent window becomes the new drift baseline.
		ctl.advisor.Store(NewRebuildAdvisor(ns.idx.Bounds(), recent, s.opts.windowSize, s.opts.driftThreshold))
	} else {
		ctl.advisor.Store(nil)
	}
	if ss.idx != nil {
		s.retireIndexStore(ss.idx)
	}
	s.swapShard(s.snap.Load(), i, ns)
	ctl.rebuilds++
	s.rebuilds.Add(1)
	if s.obs != nil {
		s.obs.Rebuild.ObserveSince(rebuildStart)
	}
	return true
}

// replayOps applies logged writes onto a not-yet-published rebuild index,
// keeping its occupancy bitmap a superset of its contents.
func replayOps(idx *Index, occ *occupancy, ops []shardOp) {
	for _, op := range ops {
		if op.del {
			idx.Delete(op.p)
		} else {
			idx.Insert(op.p)
			occ.add(op.p)
		}
	}
}

// materialize flattens a shard snapshot into its live point set.
func materialize(ss *shardSnap) []Point {
	var pts []Point
	if ss.idx != nil {
		pts = ss.idx.Points()
		if ss.deadN > 0 {
			pts = filterDead(pts, 0, ss.dead)
		}
	}
	return append(pts, ss.extra...)
}

// ------------------------------------------------------------ inspection

// Len returns the number of indexed points.
func (s *Sharded) Len() int {
	n := 0
	for _, ss := range s.snap.Load().shards {
		n += ss.live()
	}
	return n
}

// Bounds returns the minimum bounding rectangle of all shards.
func (s *Sharded) Bounds() Rect {
	var out Rect
	first := true
	for _, ss := range s.snap.Load().shards {
		if ss.empty {
			continue
		}
		if first {
			out, first = ss.bounds, false
		} else {
			out = out.Union(ss.bounds)
		}
	}
	return out
}

// Bytes returns the approximate in-memory footprint across all shards.
func (s *Sharded) Bytes() int64 {
	var b int64
	for _, ss := range s.snap.Load().shards {
		if ss.idx != nil {
			b += ss.idx.Bytes()
		}
		b += int64(len(ss.extra))*16 + int64(len(ss.dead))*24
	}
	return b
}

// NumShards returns the number of shards (some possibly empty) of the
// currently serving partition plan.
func (s *Sharded) NumShards() int { return s.snap.Load().plan.NumShards() }

// DropCaches empties the block cache of every disk-backed shard index (a
// no-op under RAM-resident storage), putting the serving set in the state a
// cold start would see. Safe concurrently with queries: in-flight borrowed
// views keep their pages alive and later reads simply refault.
func (s *Sharded) DropCaches() {
	for _, ss := range s.snap.Load().shards {
		if ss.idx != nil {
			ss.idx.DropCaches()
		}
	}
}

// Rebuilds returns how many shard rebuilds (drift or compaction) have
// completed since construction.
func (s *Sharded) Rebuilds() int64 { return s.rebuilds.Load() }

// Repartitions returns how many plan migrations have completed since
// construction (restored instances continue their snapshot's count).
func (s *Sharded) Repartitions() int64 { return s.repartitions.Load() }

// PlanEpoch returns the serving plan's epoch: how many repartitions this
// index (across restarts, via snapshots) has migrated through.
func (s *Sharded) PlanEpoch() int { return s.snap.Load().epoch }

// Migrating reports whether a plan migration is currently in flight.
func (s *Sharded) Migrating() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repartInFlight
}

// Stats returns aggregated access counters. The scan counters (pages,
// points, bounding boxes, look-ahead jumps) are summed across live shards
// plus every index retired by compaction or rebuild, so they are
// monotonically non-decreasing; the operation counters reflect logical
// calls on the Sharded layer — a fan-out query counts once, however many
// shards served it.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	agg := s.retired
	s.mu.Unlock()
	for _, ss := range s.snap.Load().shards {
		if ss.idx != nil {
			agg = agg.Add(ss.idx.Stats().AtomicSnapshot())
		}
	}
	agg.RangeQueries = s.rangeQs.Load()
	agg.PointQueries = s.pointQs.Load() + s.knnQs.Load()
	agg.Inserts = s.inserts.Load()
	agg.Deletes = s.deletes.Load()
	return agg
}

// ShardInfo describes one shard's current state.
type ShardInfo struct {
	// Points is the number of live points the shard serves.
	Points int
	// Backlog is the uncompacted write-buffer size (inserts + tombstones).
	Backlog int
	// Drift is the shard's current workload drift estimate in [0, 1].
	Drift float64
	// Rebuilds counts completed rebuilds of this shard.
	Rebuilds int
	// WorkloadAware reports whether the shard's index was built against an
	// anticipated workload.
	WorkloadAware bool
	// Load counts queries this shard has served under the current plan
	// (range/count fan-out targets and point lookups) — the signal the
	// repartition advisor judges cross-shard imbalance on.
	Load int64
	// PagesScanned and PointsScanned are the shard index's cumulative scan
	// counters — the work (and, disk-backed, the IO) each shard performed.
	// Comparing them across shards shows imbalance in work units: a shard
	// can serve few queries yet burn most of the pages.
	PagesScanned  int64
	PointsScanned int64
	// Bounds is the shard's minimum bounding rectangle (zero when empty).
	Bounds Rect
}

// Shards returns a point-in-time description of every shard of the
// currently serving plan.
func (s *Sharded) Shards() []ShardInfo {
	snap := s.snap.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardInfo, len(snap.shards))
	for i, ss := range snap.shards {
		ctl := snap.ctls[i]
		info := ShardInfo{Points: ss.live(), Backlog: ss.backlog(),
			Rebuilds: ctl.rebuilds, Load: ctl.load.Load()}
		if !ss.empty {
			info.Bounds = ss.bounds
		}
		if ss.idx != nil {
			info.WorkloadAware = ss.idx.WorkloadAware()
			st := ss.idx.Stats().AtomicSnapshot()
			info.PagesScanned = st.PagesScanned
			info.PointsScanned = st.PointsScanned
		}
		if a := ctl.advisor.Load(); a != nil {
			info.Drift = a.Drift()
		}
		out[i] = info
	}
	return out
}

// Describe returns a one-line human-readable summary.
func (s *Sharded) Describe() string {
	snap := s.snap.Load()
	nonEmpty := 0
	for _, ss := range snap.shards {
		if !ss.empty {
			nonEmpty++
		}
	}
	return fmt.Sprintf("Sharded WaZI: %d points across %d/%d shards (plan epoch %d), %d rebuilds, %d repartitions",
		s.Len(), nonEmpty, len(snap.shards), snap.epoch, s.rebuilds.Load(), s.repartitions.Load())
}
