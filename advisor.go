package wazi

import (
	"math"
	"sync"
)

// RebuildAdvisor addresses the paper's third future-work item: deciding
// when a workload-aware index should be rebuilt as its workload drifts.
// Figure 12 of the paper shows WaZI degrading past the base index once
// roughly 60% of the workload has shifted to a differently skewed
// distribution; the advisor detects that condition online.
//
// It maintains a spatial histogram of the build-time workload's query
// centers and a sliding window over recently observed queries, and reports
// drift as the total-variation distance between the two distributions
// (0 = identical, 1 = disjoint). Observing is O(1) per query.
//
// An advisor is safe for concurrent use: the sharded serving layer calls
// Observe from parallel query paths while its control loop polls Drift.
type RebuildAdvisor struct {
	mu        sync.Mutex
	side      int
	bounds    Rect
	reference []float64 // normalized histogram of the build workload
	window    []int     // cell of each query in the sliding window, -1 = empty
	counts    []float64 // histogram over the window
	next      int
	seen      int
	threshold float64
}

// NewRebuildAdvisor builds an advisor for an index constructed over
// buildWorkload. windowSize bounds how many recent queries inform the drift
// estimate (default 1024 when <= 0). threshold is the drift level at which
// RebuildRecommended triggers; <= 0 selects 0.6, calibrated to the paper's
// crossover.
func NewRebuildAdvisor(bounds Rect, buildWorkload []Rect, windowSize int, threshold float64) *RebuildAdvisor {
	const side = 16
	if windowSize <= 0 {
		windowSize = 1024
	}
	if threshold <= 0 {
		threshold = 0.6
	}
	a := &RebuildAdvisor{
		side:      side,
		reference: make([]float64, side*side),
		window:    make([]int, windowSize),
		counts:    make([]float64, side*side),
		threshold: threshold,
	}
	for i := range a.window {
		a.window[i] = -1
	}
	for _, q := range buildWorkload {
		a.reference[a.cell(bounds, q)]++
	}
	total := float64(len(buildWorkload))
	if total > 0 {
		for i := range a.reference {
			a.reference[i] /= total
		}
	}
	a.bounds = bounds
	return a
}

// cell maps a query's center into the histogram grid.
func (a *RebuildAdvisor) cell(bounds Rect, q Rect) int {
	c := q.Center()
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	cx := int((c.X - bounds.MinX) / w * float64(a.side))
	cy := int((c.Y - bounds.MinY) / h * float64(a.side))
	if cx < 0 {
		cx = 0
	}
	if cx >= a.side {
		cx = a.side - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= a.side {
		cy = a.side - 1
	}
	return cy*a.side + cx
}

// Observe records one executed query.
func (a *RebuildAdvisor) Observe(q Rect) {
	c := a.cell(a.bounds, q)
	a.mu.Lock()
	defer a.mu.Unlock()
	if old := a.window[a.next]; old >= 0 {
		a.counts[old]--
	}
	a.window[a.next] = c
	a.counts[c]++
	a.next = (a.next + 1) % len(a.window)
	a.seen++
}

// Drift returns the total-variation distance between the recent-query
// distribution and the build-time workload distribution, in [0, 1]. It
// returns 0 until enough queries (a quarter of the window) have been
// observed to make the estimate meaningful.
func (a *RebuildAdvisor) Drift() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drift()
}

func (a *RebuildAdvisor) drift() float64 {
	filled := a.seen
	if filled > len(a.window) {
		filled = len(a.window)
	}
	if filled < len(a.window)/4 || filled == 0 {
		return 0
	}
	var tv float64
	for i := range a.counts {
		tv += math.Abs(a.counts[i]/float64(filled) - a.reference[i])
	}
	return tv / 2
}

// RebuildRecommended reports whether drift has crossed the threshold.
func (a *RebuildAdvisor) RebuildRecommended() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drift() >= a.threshold
}

// Observed returns how many queries have been observed in total.
func (a *RebuildAdvisor) Observed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen
}
