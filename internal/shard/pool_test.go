package shard

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsAllTasks checks completion of every task, including the
// inline-overflow path (more tasks than workers).
func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sum atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		i := i
		tasks[i] = func() { sum.Add(int64(i + 1)) }
	}
	p.Do(tasks)
	if got := sum.Load(); got != 5050 {
		t.Fatalf("task sum = %d, want 5050", got)
	}
}

// TestPoolConcurrentDo runs many Do calls from separate goroutines — no
// deadlock, no lost tasks.
func TestPoolConcurrentDo(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tasks := make([]func(), 5)
				for j := range tasks {
					tasks[j] = func() { sum.Add(1) }
				}
				p.Do(tasks)
			}
		}()
	}
	wg.Wait()
	if got := sum.Load(); got != 8*50*5 {
		t.Fatalf("ran %d tasks, want %d", got, 8*50*5)
	}
}

// TestPoolAfterClose: Do must keep working (inline) after Close.
func TestPoolAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	var sum atomic.Int64
	p.Do([]func(){func() { sum.Add(1) }, func() { sum.Add(1) }})
	if sum.Load() != 2 {
		t.Fatal("tasks lost after Close")
	}
}

// TestPoolRun covers the index-stealing fan-out across pool shapes: worker
// pools, inline pools, closed pools, and the nil pool.
func TestPoolRun(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		var sum atomic.Int64
		for trial := 0; trial < 20; trial++ {
			sum.Store(0)
			p.Run(100, func(i int) { sum.Add(int64(i + 1)) })
			if got := sum.Load(); got != 5050 {
				t.Fatalf("workers=%d: index sum = %d, want 5050", workers, got)
			}
		}
		p.Run(0, func(int) { t.Fatal("n=0 must not invoke fn") })
		p.Close()
		sum.Store(0)
		p.Run(7, func(i int) { sum.Add(1) })
		if sum.Load() != 7 {
			t.Fatal("Run lost indices after Close")
		}
	}
	var np *Pool
	var sum atomic.Int64
	np.Run(5, func(i int) { sum.Add(1) })
	if sum.Load() != 5 {
		t.Fatal("nil pool Run lost indices")
	}
}

// TestPoolRunConcurrent interleaves Run calls from many goroutines so
// pooled batches are reused under contention.
func TestPoolRunConcurrent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Run(5, func(int) { sum.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := sum.Load(); got != 8*50*5 {
		t.Fatalf("ran %d indices, want %d", got, 8*50*5)
	}
}

func TestPoolCounters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	tasks := make([]func(), 8)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	p.Do(tasks)
	ran, inline := p.Counters()
	if ran != 8 {
		t.Fatalf("ran = %d, want 8", ran)
	}
	if inline < 0 || inline > 8 {
		t.Fatalf("inline = %d, want within [0,8]", inline)
	}

	// Inline mode counts everything as inline.
	ip := NewPool(1)
	ip.Do(tasks)
	ran, inline = ip.Counters()
	if ran != 8 || inline != 8 {
		t.Fatalf("inline pool counters = %d/%d, want 8/8", ran, inline)
	}

	// Single-task fast path still counts.
	ip.Do(tasks[:1])
	if ran, _ = ip.Counters(); ran != 9 {
		t.Fatalf("ran = %d, want 9", ran)
	}

	var np *Pool
	if r, i := np.Counters(); r != 0 || i != 0 {
		t.Fatal("nil pool counters should be zero")
	}
}
