package shard

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/zorder"
)

// Property and metamorphic tests for the partitioner: the invariants the
// online repartitioner leans on. A learned plan must cover the key space
// exactly (disjoint, exhaustive), must not depend on the order points were
// presented in, and re-learning from an unchanged point set and workload
// must be a no-op (Equal plan).

// planConfigs is the grid of (points, queries, shards) shapes the property
// tests sweep. Mixed sizes, empty workloads, duplicate-heavy data.
func planConfigs(t *testing.T) []struct {
	name string
	pts  []geom.Point
	qs   []geom.Rect
	n    int
} {
	t.Helper()
	dup := make([]geom.Point, 600)
	for i := range dup {
		dup[i] = geom.Point{X: 0.2 * float64(i%4), Y: 0.3 * float64(i%3)}
	}
	return []struct {
		name string
		pts  []geom.Point
		qs   []geom.Rect
		n    int
	}{
		{"uniform/no-workload", clusteredPoints(4000, 11), nil, 8},
		{"uniform/hotspot", clusteredPoints(4000, 12), hotspotQueries(300, 0.7, 0.3, 13), 8},
		{"uniform/two-hotspots", clusteredPoints(2500, 14),
			append(hotspotQueries(200, 0.2, 0.8, 15), hotspotQueries(100, 0.9, 0.1, 16)...), 5},
		{"duplicates/no-workload", dup, nil, 6},
		{"duplicates/hotspot", dup, hotspotQueries(150, 0.1, 0.1, 17), 4},
		{"tiny", clusteredPoints(7, 18), hotspotQueries(20, 0.5, 0.5, 19), 16},
		{"single-shard", clusteredPoints(500, 20), hotspotQueries(50, 0.4, 0.6, 21), 1},
	}
}

// TestPlanCoversKeySpaceExactly: the cut keys must be strictly increasing,
// so the shard key intervals are pairwise disjoint, and between them they
// must exhaust the key space — every representable key (probed at and
// around every boundary plus random keys) belongs to exactly one interval,
// and Locate agrees with interval membership.
func TestPlanCoversKeySpaceExactly(t *testing.T) {
	for _, cfg := range planConfigs(t) {
		t.Run(cfg.name, func(t *testing.T) {
			p := Partition(cfg.pts, cfg.qs, cfg.n)
			cuts := p.Cuts()
			for i := 1; i < len(cuts); i++ {
				if cuts[i] <= cuts[i-1] {
					t.Fatalf("cuts not strictly increasing: cuts[%d]=%d, cuts[%d]=%d", i-1, cuts[i-1], i, cuts[i])
				}
			}
			// Probe keys at, just below, and just above every boundary, the
			// extremes of the key space, and a random sample.
			probe := []zorder.Key{0, ^zorder.Key(0)}
			for _, c := range cuts {
				probe = append(probe, c-1, c, c+1)
			}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 500; i++ {
				probe = append(probe, zorder.Key(rng.Uint64()))
			}
			for _, k := range probe {
				owners := 0
				owner := -1
				for i := 0; i < p.NumShards(); i++ {
					iv := shardInterval(p, i)
					if k >= iv.lo && (iv.hiOpen || k < iv.hi) {
						owners++
						owner = i
					}
				}
				if owners != 1 {
					t.Fatalf("key %d owned by %d shards, want exactly 1", k, owners)
				}
				if got := p.locateKey(k); got != owner {
					t.Fatalf("Locate(key %d) = %d, interval membership says %d", k, got, owner)
				}
			}
		})
	}
}

// TestPartitionPermutationStable: partitioning any permutation of the same
// point set with the same workload must produce an identical plan (Equal)
// that routes every point to the same shard, with identical group sizes.
func TestPartitionPermutationStable(t *testing.T) {
	for _, cfg := range planConfigs(t) {
		t.Run(cfg.name, func(t *testing.T) {
			base := Partition(cfg.pts, cfg.qs, cfg.n)
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 3; trial++ {
				perm := append([]geom.Point(nil), cfg.pts...)
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				got := Partition(perm, cfg.qs, cfg.n)
				if !Equal(base, got) {
					t.Fatalf("trial %d: permuted input produced a different plan:\n base cuts %v\n got  cuts %v",
						trial, base.Cuts(), got.Cuts())
				}
				for _, pt := range cfg.pts {
					if base.Locate(pt) != got.Locate(pt) {
						t.Fatalf("trial %d: point %v routed to %d by base, %d by permuted plan",
							trial, pt, base.Locate(pt), got.Locate(pt))
					}
				}
				for g := range base.Groups {
					if len(base.Groups[g]) != len(got.Groups[g]) {
						t.Fatalf("trial %d: group %d has %d points in base, %d in permuted plan",
							trial, g, len(base.Groups[g]), len(got.Groups[g]))
					}
				}
			}
		})
	}
}

// TestRepartitionIsNoOpWhenUnchanged is the repartitioner's fixed-point
// property: re-learning a plan from the points as the previous plan grouped
// them (the order a live migration streams them in) under the same workload
// yields an Equal plan — and a third round stays there.
func TestRepartitionIsNoOpWhenUnchanged(t *testing.T) {
	for _, cfg := range planConfigs(t) {
		t.Run(cfg.name, func(t *testing.T) {
			p1 := Partition(cfg.pts, cfg.qs, cfg.n)
			stream := make([]geom.Point, 0, len(cfg.pts))
			for _, g := range p1.Groups {
				stream = append(stream, g...)
			}
			p2 := Partition(stream, cfg.qs, cfg.n)
			if !Equal(p1, p2) {
				t.Fatalf("repartition over unchanged data is not a no-op:\n p1 cuts %v\n p2 cuts %v", p1.Cuts(), p2.Cuts())
			}
			stream2 := make([]geom.Point, 0, len(stream))
			for _, g := range p2.Groups {
				stream2 = append(stream2, g...)
			}
			p3 := Partition(stream2, cfg.qs, cfg.n)
			if !Equal(p2, p3) {
				t.Fatal("repartition(repartition(plan)) drifted on the third round")
			}
		})
	}
}

// TestEqual covers the comparator's edges: nil handling, bounds mismatch,
// cut mismatch, and restored-plan equality.
func TestEqual(t *testing.T) {
	pts := clusteredPoints(1000, 31)
	qs := hotspotQueries(100, 0.3, 0.7, 32)
	p := Partition(pts, qs, 6)
	if !Equal(p, p) {
		t.Fatal("plan not Equal to itself")
	}
	if !Equal(nil, nil) || Equal(p, nil) || Equal(nil, p) {
		t.Fatal("nil handling wrong")
	}
	r := Restore(p.Bounds(), p.Cuts())
	if !Equal(p, r) {
		t.Fatal("Restore(bounds, cuts) not Equal to the original plan")
	}
	other := Partition(pts, nil, 6)
	if Equal(p, other) && len(p.Cuts()) > 0 {
		// Workload-aware vs count-only cuts over hotspot data should differ;
		// if they coincide the data was degenerate and the check is vacuous.
		t.Log("workload-aware and count-only plans coincided; Equal mismatch not exercised")
	}
	shifted := Restore(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, p.Cuts())
	if Equal(p, shifted) {
		t.Fatal("plans with different bounds reported Equal")
	}
}

// TestFeedsIdentity: diffing a plan against itself is the identity mapping —
// every shard feeds exactly itself.
func TestFeedsIdentity(t *testing.T) {
	pts := clusteredPoints(3000, 41)
	qs := hotspotQueries(200, 0.6, 0.4, 42)
	p := Partition(pts, qs, 8)
	feeds := Feeds(p, p)
	if len(feeds) != p.NumShards() {
		t.Fatalf("feeds covers %d shards, want %d", len(feeds), p.NumShards())
	}
	for i, f := range feeds {
		if len(f) != 1 || f[0] != i {
			t.Fatalf("shard %d feeds %v, want [%d]", i, f, i)
		}
	}
}

// TestFeedsRoutesAllPoints: the diff must be sound — every point of an old
// shard lands, under the new plan, in one of the new shards the diff names.
// Checked both for same-bounds plans (exact interval overlap) and
// different-bounds plans (conservative all-shards fallback).
func TestFeedsRoutesAllPoints(t *testing.T) {
	pts := clusteredPoints(4000, 51)
	head := hotspotQueries(300, 0.2, 0.2, 52)
	tail := hotspotQueries(300, 0.8, 0.8, 53)
	old := Partition(pts, head, 8)
	for _, tc := range []struct {
		name string
		new  *Plan
	}{
		{"same-bounds", Partition(pts, tail, 8)},
		{"different-bounds", Partition(append([]geom.Point{{X: -0.5, Y: -0.5}}, pts...), tail, 8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			feeds := Feeds(old, tc.new)
			for i, group := range old.Groups {
				allowed := map[int]bool{}
				for _, j := range feeds[i] {
					allowed[j] = true
				}
				for _, pt := range group {
					if j := tc.new.Locate(pt); !allowed[j] {
						t.Fatalf("old shard %d point %v landed in new shard %d, not in feeds %v", i, pt, j, feeds[i])
					}
				}
			}
		})
	}
}

// TestFeedsTightensOnSameBounds: with shared bounds the diff must be
// strictly more informative than the conservative fallback whenever the
// plans have more than one shard each — at least one old shard must NOT
// feed every new shard.
func TestFeedsTightensOnSameBounds(t *testing.T) {
	pts := clusteredPoints(4000, 61)
	old := Partition(pts, hotspotQueries(300, 0.15, 0.15, 62), 8)
	new := Partition(pts, hotspotQueries(300, 0.85, 0.85, 63), 8)
	if old.NumShards() < 2 || new.NumShards() < 2 {
		t.Skip("degenerate plans")
	}
	feeds := Feeds(old, new)
	tight := false
	for _, f := range feeds {
		if len(f) < new.NumShards() {
			tight = true
		}
		if len(f) == 0 {
			t.Fatal("an old shard feeds no new shard — the diff lost a key range")
		}
	}
	if !tight {
		t.Fatal("same-bounds diff is as loose as the different-bounds fallback")
	}
}

// TestImbalance pins the advisor metric's shape: balanced -> 1, one hot
// shard among k idle ones -> k (idleness IS the skew being measured),
// empty -> 0.
func TestImbalance(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"balanced", []float64{5, 5, 5, 5}, 1},
		{"one-hot-of-4", []float64{12, 0, 0, 0}, 4},
		{"hot-among-live", []float64{9, 1, 1, 1}, 3},
		{"idle-counted", []float64{6, 2, 0, 0}, 3},
	}
	for _, c := range cases {
		if got := Imbalance(c.loads); got != c.want {
			t.Errorf("%s: Imbalance(%v) = %v, want %v", c.name, c.loads, got, c.want)
		}
	}
}
