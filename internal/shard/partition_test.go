package shard

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func clusteredPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func hotspotQueries(n int, cx, cy float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Rect, n)
	for i := range qs {
		x := cx + rng.NormFloat64()*0.03
		y := cy + rng.NormFloat64()*0.03
		qs[i] = geom.Rect{MinX: x - 0.01, MinY: y - 0.01, MaxX: x + 0.01, MaxY: y + 0.01}
	}
	return qs
}

// TestPartitionCoversAllPoints checks the fundamental contract: every point
// lands in exactly one group, and Locate agrees with the assignment.
func TestPartitionCoversAllPoints(t *testing.T) {
	pts := clusteredPoints(5000, 1)
	qs := hotspotQueries(300, 0.7, 0.3, 2)
	for _, n := range []int{1, 2, 4, 7, 16} {
		p := Partition(pts, qs, n)
		if p.NumShards() > n {
			t.Fatalf("n=%d: produced %d shards", n, p.NumShards())
		}
		if len(p.Groups) != p.NumShards() {
			t.Fatalf("n=%d: %d groups for %d shards", n, len(p.Groups), p.NumShards())
		}
		total := 0
		for g, group := range p.Groups {
			total += len(group)
			for _, pt := range group {
				if p.Locate(pt) != g {
					t.Fatalf("n=%d: point %v assigned to %d, Locate says %d", n, pt, g, p.Locate(pt))
				}
			}
		}
		if total != len(pts) {
			t.Fatalf("n=%d: groups hold %d points, want %d", n, total, len(pts))
		}
	}
}

// TestPartitionBalance: with a uniform workload the split should be roughly
// balanced by point count.
func TestPartitionBalance(t *testing.T) {
	pts := clusteredPoints(8000, 3)
	p := Partition(pts, nil, 8)
	if p.NumShards() < 7 {
		t.Fatalf("uniform data produced only %d shards", p.NumShards())
	}
	for g, group := range p.Groups {
		if len(group) < len(pts)/p.NumShards()/4 || len(group) > len(pts)/p.NumShards()*4 {
			t.Errorf("group %d badly unbalanced: %d of %d points", g, len(group), len(pts))
		}
	}
}

// TestPartitionWorkloadAware: a hotspot workload must shrink the shards
// covering the hotspot — the hottest shard should hold clearly fewer points
// than the uniform share.
func TestPartitionWorkloadAware(t *testing.T) {
	pts := clusteredPoints(8000, 4)
	hot := hotspotQueries(500, 0.2, 0.2, 5)
	p := Partition(pts, hot, 8)
	center := geom.Point{X: 0.2, Y: 0.2}
	g := p.Locate(center)
	share := len(pts) / p.NumShards()
	if len(p.Groups[g]) >= share {
		t.Errorf("hotspot shard holds %d points, uniform share is %d — partitioner ignored the workload", len(p.Groups[g]), share)
	}
}

// TestPartitionDuplicateKeys: coincident points must never straddle a cut.
func TestPartitionDuplicateKeys(t *testing.T) {
	pts := make([]geom.Point, 1200)
	for i := range pts {
		pts[i] = geom.Point{X: 0.25 * float64(i%3), Y: 0.5 * float64(i%2)}
	}
	p := Partition(pts, nil, 6)
	for _, pt := range pts {
		g := p.Locate(pt)
		found := false
		for _, q := range p.Groups[g] {
			if q == pt {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v not in its Locate group", pt)
		}
	}
}

// TestPartitionMoreShardsThanPoints clamps gracefully.
func TestPartitionMoreShardsThanPoints(t *testing.T) {
	pts := clusteredPoints(3, 6)
	p := Partition(pts, nil, 16)
	if p.NumShards() > 3 {
		t.Fatalf("3 points spread over %d shards", p.NumShards())
	}
	total := 0
	for _, g := range p.Groups {
		total += len(g)
	}
	if total != 3 {
		t.Fatalf("groups hold %d points", total)
	}
}

// TestLocateOutOfBounds: routing must be total for points outside the
// original data bounds (inserts can arrive anywhere).
func TestLocateOutOfBounds(t *testing.T) {
	pts := clusteredPoints(1000, 7)
	p := Partition(pts, nil, 4)
	for _, pt := range []geom.Point{{X: -5, Y: -5}, {X: 5, Y: 5}, {X: -1, Y: 2}} {
		g := p.Locate(pt)
		if g < 0 || g >= p.NumShards() {
			t.Fatalf("Locate(%v) = %d out of range", pt, g)
		}
	}
}
