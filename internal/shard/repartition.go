package shard

import "github.com/wazi-index/wazi/internal/zorder"

// This file holds the plan-level algebra the online repartitioner builds on:
// comparing plans (is a freshly learned plan actually different?), diffing
// them (which old shards feed which new ones during a live migration), and
// quantifying cross-shard load imbalance (when is a migration worth its
// cost?). Plan learning itself stays in Partition — repartitioning is just
// Partition run again over the live point set and the observed workload.

// Equal reports whether two plans route every possible point identically:
// same data bounds (hence the same key grid) and the same cut keys. An
// online repartitioner uses this as its no-op test — re-learning a plan
// from an unchanged point set and workload yields an Equal plan, and an
// Equal plan is never worth migrating to.
func Equal(a, b *Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.bounds != b.bounds || len(a.cuts) != len(b.cuts) {
		return false
	}
	for i := range a.cuts {
		if a.cuts[i] != b.cuts[i] {
			return false
		}
	}
	return true
}

// Feeds returns, for each shard of the old plan, the new-plan shards its
// points can land in — the migration dependency graph. Soundness (pinned by
// the property tests): rerouting old shard i's points under the new plan
// can only produce shards in Feeds(old, new)[i]. The in-process migrator
// happens not to need the graph — it regroups the full point set in one
// pass — but the diff is the contract an incremental or distributed
// migrator (moving one old shard at a time) schedules and verifies by.
// When the two plans share bounds (the common case: repartitioning over the
// same data region) the answer is exact interval overlap on the shared key
// grid; when bounds differ the key spaces are incomparable and every old
// shard conservatively feeds every new shard.
func Feeds(old, new *Plan) [][]int {
	out := make([][]int, old.NumShards())
	if old.bounds != new.bounds {
		all := make([]int, new.NumShards())
		for j := range all {
			all[j] = j
		}
		for i := range out {
			out[i] = all
		}
		return out
	}
	for i := range out {
		for j := 0; j < new.NumShards(); j++ {
			if intervalsOverlap(shardInterval(old, i), shardInterval(new, j)) {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// keyInterval is one shard's key range [lo, hi); hiOpen marks the last
// shard's unbounded upper end (a key of MaxUint64 is representable, so the
// top cannot be encoded as a finite hi).
type keyInterval struct {
	lo, hi zorder.Key
	hiOpen bool
}

func shardInterval(p *Plan, i int) keyInterval {
	var iv keyInterval
	if i > 0 {
		iv.lo = p.cuts[i-1]
	}
	if i < len(p.cuts) {
		iv.hi = p.cuts[i]
	} else {
		iv.hiOpen = true
	}
	return iv
}

func intervalsOverlap(a, b keyInterval) bool {
	aboveA := a.hiOpen || b.lo < a.hi
	aboveB := b.hiOpen || a.lo < b.hi
	return aboveA && aboveB
}

// Imbalance summarizes a per-shard load vector as max/mean over all
// entries: 1 means perfectly balanced, k means the hottest shard carries k
// times its fair share. Idle shards count toward the mean — a plan that
// funnels the whole workload into two shards while six sit idle is the
// skew this metric exists to expose (callers pass only shards that hold
// points, so structural emptiness never masquerades as idleness). Returns
// 0 when no shard served any load (nothing to balance yet).
func Imbalance(loads []float64) float64 {
	var sum, max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if len(loads) == 0 || sum <= 0 {
		return 0
	}
	return max / (sum / float64(len(loads)))
}
