// Package shard partitions a point set across N independent indexes for
// parallel serving. The partitioner cuts the Z-order curve into N contiguous
// key ranges, but instead of balancing point counts it balances *anticipated
// load*: each point is weighted by the query mass a workload histogram
// assigns to its grid cell, so hotspot regions are spread across more,
// smaller shards and cold regions are packed into fewer, larger ones. The
// package also provides the bounded worker pool used by fan-out query
// execution.
package shard

import (
	"math"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/zorder"
)

// histSide is the resolution of the query-mass histogram. 64×64 cells is
// fine enough to separate the hotspots of the paper's skewed workloads and
// coarse enough that distributing a query over its covered cells stays
// cheap.
const histSide = 64

// Plan is a completed partitioning: the key ranges, and each point assigned
// to its shard. Locate routes any point — including points seen only after
// partitioning — to the shard whose key range owns it, so inserts and point
// lookups agree forever on where a point lives.
type Plan struct {
	bounds geom.Rect
	// cuts are the lower boundaries of shards 1..n-1: shard i owns keys in
	// [cuts[i-1], cuts[i]), with shards 0 and n-1 open-ended.
	cuts []zorder.Key
	// Groups holds the initial points of each shard; some groups may be
	// empty when the data has fewer distinct Z-keys than shards.
	Groups [][]geom.Point
}

// Partition splits pts into at most n Z-order-contiguous groups whose
// anticipated load — an equal blend of point count and workload query mass —
// is balanced. Queries may be nil, in which case the split balances point
// counts only. Points with equal Z-keys always land in the same group.
// Partition panics on empty pts, mirroring geom.RectFromPoints.
func Partition(pts []geom.Point, queries []geom.Rect, n int) *Plan {
	bounds := geom.RectFromPoints(pts)
	if n < 1 {
		n = 1
	}
	if n > len(pts) {
		n = len(pts)
	}
	p := &Plan{bounds: bounds}

	keys := make([]zorder.Key, len(pts))
	order := make([]int, len(pts))
	for i, pt := range pts {
		keys[i] = p.Key(pt)
		order[i] = i
	}
	// Canonical order: key, then coordinates. Ties broken by position (not
	// input index) make the cut walk — including its floating-point weight
	// accumulation — a pure function of the point multiset, so any
	// permutation of pts yields an identical plan. The online repartitioner
	// relies on this: re-learning from unchanged data must be a no-op.
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka != kb {
			return ka < kb
		}
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})

	weights := pointWeights(pts, queries, bounds)
	var total float64
	for _, w := range weights {
		total += w
	}

	// Walk the key-sorted points, cutting whenever the accumulated weight
	// crosses the next 1/n-th of the total — but only at key boundaries, so
	// duplicate keys stay together and Locate stays consistent.
	var cum float64
	next := 1
	for i, idx := range order {
		cum += weights[idx]
		if next >= n {
			break
		}
		if cum >= total*float64(next)/float64(n) && i+1 < len(order) &&
			keys[order[i+1]] != keys[idx] {
			p.cuts = append(p.cuts, keys[order[i+1]])
			next++
		}
	}

	p.Groups = make([][]geom.Point, len(p.cuts)+1)
	for _, pt := range pts {
		g := p.Locate(pt)
		p.Groups[g] = append(p.Groups[g], pt)
	}
	return p
}

// Bounds returns the data rectangle the plan was built over.
func (p *Plan) Bounds() geom.Rect { return p.bounds }

// Cuts returns the shard boundary keys (see the cuts field), for
// serialization. The returned slice must not be modified.
func (p *Plan) Cuts() []zorder.Key { return p.cuts }

// Restore reconstructs a plan from its serialized parts — the data bounds
// and the boundary keys — without the initial point groups, which only
// matter at construction time. Locate on the restored plan routes exactly
// as on the original: routing depends only on bounds and cuts.
func Restore(bounds geom.Rect, cuts []zorder.Key) *Plan {
	return &Plan{bounds: bounds, cuts: append([]zorder.Key(nil), cuts...)}
}

// NumShards returns the number of shards in the plan.
func (p *Plan) NumShards() int { return len(p.cuts) + 1 }

// Locate returns the shard owning pt's Z-key. Points outside the plan's
// bounds clamp to the boundary, so routing is total and deterministic.
func (p *Plan) Locate(pt geom.Point) int {
	return p.locateKey(p.Key(pt))
}

// locateKey returns the shard whose key interval owns k.
func (p *Plan) locateKey(k zorder.Key) int {
	return sort.Search(len(p.cuts), func(i int) bool { return k < p.cuts[i] })
}

// Key maps pt to its Z-order key on a 2^32 grid over the plan's bounds.
func (p *Plan) Key(pt geom.Point) zorder.Key {
	return zorder.Encode(gridCoord(pt.X, p.bounds.MinX, p.bounds.MaxX),
		gridCoord(pt.Y, p.bounds.MinY, p.bounds.MaxY))
}

// gridCoord scales v in [lo, hi] onto the 32-bit grid, clamping outliers.
func gridCoord(v, lo, hi float64) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return math.MaxUint32
	}
	return uint32(f * math.MaxUint32)
}

// pointWeights blends data balance and load balance: half of every point's
// weight is its share of the point count, the other half is its cell's share
// of the workload's query mass split among the cell's points. Query mass
// over empty cells contributes nothing (no point can absorb it).
func pointWeights(pts []geom.Point, queries []geom.Rect, bounds geom.Rect) []float64 {
	weights := make([]float64, len(pts))
	base := 1 / float64(len(pts))
	mass := queryMass(queries, bounds)
	if mass == nil {
		for i := range weights {
			weights[i] = base
		}
		return weights
	}
	cellOf := func(pt geom.Point) int {
		cx := int(float64(histSide) * (pt.X - bounds.MinX) / math.Max(bounds.Width(), 1e-300))
		cy := int(float64(histSide) * (pt.Y - bounds.MinY) / math.Max(bounds.Height(), 1e-300))
		cx = clampInt(cx, 0, histSide-1)
		cy = clampInt(cy, 0, histSide-1)
		return cy*histSide + cx
	}
	occupancy := make([]int, histSide*histSide)
	for _, pt := range pts {
		occupancy[cellOf(pt)]++
	}
	var live float64 // query mass that lands on occupied cells
	for c, m := range mass {
		if occupancy[c] > 0 {
			live += m
		}
	}
	if live <= 0 {
		for i := range weights {
			weights[i] = base
		}
		return weights
	}
	for i, pt := range pts {
		c := cellOf(pt)
		weights[i] = 0.5*base + 0.5*mass[c]/live/float64(occupancy[c])
	}
	return weights
}

// queryMass spreads each query's unit mass over the histogram cells it
// covers, proportional to overlap area. Returns nil for an empty workload.
func queryMass(queries []geom.Rect, bounds geom.Rect) []float64 {
	if len(queries) == 0 {
		return nil
	}
	mass := make([]float64, histSide*histSide)
	cw := math.Max(bounds.Width(), 1e-300) / histSide
	ch := math.Max(bounds.Height(), 1e-300) / histSide
	any := false
	for _, q := range queries {
		c := q.Intersect(bounds)
		if !c.Valid() {
			continue
		}
		x0 := clampInt(int((c.MinX-bounds.MinX)/cw), 0, histSide-1)
		x1 := clampInt(int((c.MaxX-bounds.MinX)/cw), 0, histSide-1)
		y0 := clampInt(int((c.MinY-bounds.MinY)/ch), 0, histSide-1)
		y1 := clampInt(int((c.MaxY-bounds.MinY)/ch), 0, histSide-1)
		area := c.Area()
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				cell := geom.Rect{
					MinX: bounds.MinX + float64(cx)*cw, MinY: bounds.MinY + float64(cy)*ch,
					MaxX: bounds.MinX + float64(cx+1)*cw, MaxY: bounds.MinY + float64(cy+1)*ch,
				}
				if area > 0 {
					mass[cy*histSide+cx] += c.OverlapArea(cell) / area
				} else {
					// Degenerate (line/point) query: all mass to one cell.
					mass[cy*histSide+cx]++
				}
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return mass
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
