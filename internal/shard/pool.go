package shard

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool for fan-out query execution. Do hands
// tasks to idle workers and runs the overflow on the calling goroutine, so
// a query is never queued behind another query's tasks and the pool can
// never deadlock: every task is independent and somebody always runs it.
type Pool struct {
	tasks  chan func()
	quit   chan struct{}
	wg     sync.WaitGroup
	inline bool
	closed atomic.Bool

	// ran counts tasks executed; ranInline counts the subset that ran on
	// the calling goroutine (overflow or inline mode). Their ratio shows
	// whether the fan-out actually parallelizes or the pool is saturated.
	ran       atomic.Int64
	ranInline atomic.Int64
}

// NewPool starts a pool with n workers. With n <= 1 the pool runs in inline
// mode: one worker adds no parallelism over the calling goroutine, so no
// workers are spawned and Do degenerates to a loop — the right shape on a
// single-core machine.
func NewPool(n int) *Pool {
	if n <= 1 {
		return &Pool{inline: true}
	}
	p := &Pool{tasks: make(chan func()), quit: make(chan struct{})}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Do runs every task and returns when all have finished. Tasks that find no
// idle worker execute inline on the caller. After Close, everything runs
// inline, so in-flight queries drain safely during shutdown.
func (p *Pool) Do(tasks []func()) {
	if len(tasks) == 1 {
		if p != nil {
			p.ran.Add(1)
			p.ranInline.Add(1)
		}
		tasks[0]()
		return
	}
	if p == nil || p.inline || p.closed.Load() {
		if p != nil {
			p.ran.Add(int64(len(tasks)))
			p.ranInline.Add(int64(len(tasks)))
		}
		for _, t := range tasks {
			t()
		}
		return
	}
	p.ran.Add(int64(len(tasks)))
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		wrapped := func() { defer wg.Done(); t() }
		select {
		case p.tasks <- wrapped:
		default:
			p.ranInline.Add(1)
			wrapped()
		}
	}
	wg.Wait()
}

// Counters returns the cumulative number of tasks executed and how many of
// them ran inline on the calling goroutine.
func (p *Pool) Counters() (ran, inline int64) {
	if p == nil {
		return 0, 0
	}
	return p.ran.Load(), p.ranInline.Load()
}

// Inline reports whether the pool executes everything on the caller.
func (p *Pool) Inline() bool { return p == nil || p.inline || p.closed.Load() }

// Close stops the workers. Idempotent; concurrent Do calls fall back to
// inline execution.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) && !p.inline {
		close(p.quit)
		p.wg.Wait()
	}
}
