package shard

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool for fan-out query execution. Do hands
// tasks to idle workers and runs the overflow on the calling goroutine, so
// a query is never queued behind another query's tasks and the pool can
// never deadlock: every task is independent and somebody always runs it.
type Pool struct {
	tasks  chan func()
	quit   chan struct{}
	wg     sync.WaitGroup
	inline bool
	closed atomic.Bool
}

// NewPool starts a pool with n workers. With n <= 1 the pool runs in inline
// mode: one worker adds no parallelism over the calling goroutine, so no
// workers are spawned and Do degenerates to a loop — the right shape on a
// single-core machine.
func NewPool(n int) *Pool {
	if n <= 1 {
		return &Pool{inline: true}
	}
	p := &Pool{tasks: make(chan func()), quit: make(chan struct{})}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Do runs every task and returns when all have finished. Tasks that find no
// idle worker execute inline on the caller. After Close, everything runs
// inline, so in-flight queries drain safely during shutdown.
func (p *Pool) Do(tasks []func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	if p == nil || p.inline || p.closed.Load() {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		wrapped := func() { defer wg.Done(); t() }
		select {
		case p.tasks <- wrapped:
		default:
			wrapped()
		}
	}
	wg.Wait()
}

// Inline reports whether the pool executes everything on the caller.
func (p *Pool) Inline() bool { return p == nil || p.inline || p.closed.Load() }

// Close stops the workers. Idempotent; concurrent Do calls fall back to
// inline execution.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) && !p.inline {
		close(p.quit)
		p.wg.Wait()
	}
}
