package shard

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool for fan-out query execution. Do hands
// tasks to idle workers and runs the overflow on the calling goroutine, so
// a query is never queued behind another query's tasks and the pool can
// never deadlock: every task is independent and somebody always runs it.
type Pool struct {
	tasks  chan func()
	quit   chan struct{}
	wg     sync.WaitGroup
	inline bool
	closed atomic.Bool

	// ran counts tasks executed; ranInline counts the subset that ran on
	// the calling goroutine (overflow or inline mode). Their ratio shows
	// whether the fan-out actually parallelizes or the pool is saturated.
	ran       atomic.Int64
	ranInline atomic.Int64
}

// NewPool starts a pool with n workers. With n <= 1 the pool runs in inline
// mode: one worker adds no parallelism over the calling goroutine, so no
// workers are spawned and Do degenerates to a loop — the right shape on a
// single-core machine.
func NewPool(n int) *Pool {
	if n <= 1 {
		return &Pool{inline: true}
	}
	p := &Pool{tasks: make(chan func()), quit: make(chan struct{})}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Do runs every task and returns when all have finished. Tasks that find no
// idle worker execute inline on the caller. After Close, everything runs
// inline, so in-flight queries drain safely during shutdown.
func (p *Pool) Do(tasks []func()) {
	if len(tasks) == 1 {
		if p != nil {
			p.ran.Add(1)
			p.ranInline.Add(1)
		}
		tasks[0]()
		return
	}
	if p == nil || p.inline || p.closed.Load() {
		if p != nil {
			p.ran.Add(int64(len(tasks)))
			p.ranInline.Add(int64(len(tasks)))
		}
		for _, t := range tasks {
			t()
		}
		return
	}
	p.ran.Add(int64(len(tasks)))
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		wrapped := func() { defer wg.Done(); t() }
		select {
		case p.tasks <- wrapped:
		default:
			p.ranInline.Add(1)
			wrapped()
		}
	}
	wg.Wait()
}

// runBatch is the reusable state of one Run call. Batches live in a pool
// and bind their worker closure once at construction, so a steady-state Run
// allocates nothing: the caller borrows a batch, points it at fn, and every
// participant pulls indices off the shared atomic counter.
type runBatch struct {
	fn   func(int)
	next atomic.Int64
	n    int64
	wg   sync.WaitGroup
	run  func()
}

var runBatchPool = sync.Pool{New: func() any {
	b := &runBatch{}
	b.run = func() {
		defer b.wg.Done()
		for {
			i := b.next.Add(1) - 1
			if i >= b.n {
				return
			}
			b.fn(int(i))
		}
	}
	return b
}}

// Run invokes fn(i) for every i in [0, n) and returns when all calls have
// finished. It is the allocation-free sibling of Do: indices are handed out
// through a shared atomic counter (so idle workers steal from slow ones)
// and the batch state comes from a pool, where Do needs a caller-built
// []func() plus a wrapper closure per task. The caller participates in the
// draining, so like Do, a Run never deadlocks and never waits behind
// another query's tasks.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p == nil || p.inline || p.closed.Load() {
		if p != nil {
			p.ran.Add(int64(n))
			p.ranInline.Add(int64(n))
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.ran.Add(int64(n))
	b := runBatchPool.Get().(*runBatch)
	b.fn = fn
	b.n = int64(n)
	b.next.Store(0)
	// Offer at most n-1 helpers to idle workers; the first refused send
	// means the pool is saturated and the caller will drain the rest.
	for offered := 0; offered < n-1; offered++ {
		b.wg.Add(1)
		sent := false
		select {
		case p.tasks <- b.run:
			sent = true
		default:
		}
		if !sent {
			b.wg.Done()
			break
		}
	}
	inline := int64(0)
	for {
		i := b.next.Add(1) - 1
		if i >= b.n {
			break
		}
		fn(int(i))
		inline++
	}
	p.ranInline.Add(inline)
	b.wg.Wait()
	b.fn = nil
	runBatchPool.Put(b)
}

// Counters returns the cumulative number of tasks executed and how many of
// them ran inline on the calling goroutine.
func (p *Pool) Counters() (ran, inline int64) {
	if p == nil {
		return 0, 0
	}
	return p.ran.Load(), p.ranInline.Load()
}

// Inline reports whether the pool executes everything on the caller.
func (p *Pool) Inline() bool { return p == nil || p.inline || p.closed.Load() }

// Close stops the workers. Idempotent; concurrent Do calls fall back to
// inline execution.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) && !p.inline {
		close(p.quit)
		p.wg.Wait()
	}
}
