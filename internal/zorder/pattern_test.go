package zorder

import (
	"math/rand"
	"testing"
)

func randomPattern(rng *rand.Rand, bitsPerDim int) Pattern {
	dims := make([]uint8, 0, 2*bitsPerDim)
	nx, ny := 0, 0
	for len(dims) < 2*bitsPerDim {
		d := uint8(rng.Intn(2))
		if d == 0 && nx == bitsPerDim {
			d = 1
		}
		if d == 1 && ny == bitsPerDim {
			d = 0
		}
		dims = append(dims, d)
		if d == 0 {
			nx++
		} else {
			ny++
		}
	}
	return NewPattern(dims)
}

func TestPatternRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := randomPattern(rng, 8)
		for i := 0; i < 200; i++ {
			x := rng.Uint32() % 256
			y := rng.Uint32() % 256
			gx, gy := p.Decode(p.Encode(x, y))
			if gx != x || gy != y {
				t.Fatalf("pattern %d: roundtrip (%d,%d) -> (%d,%d)", trial, x, y, gx, gy)
			}
		}
	}
}

func TestPatternMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		p := randomPattern(rng, 8)
		for i := 0; i < 500; i++ {
			x1, y1 := rng.Uint32()%200, rng.Uint32()%200
			x2 := x1 + rng.Uint32()%(256-x1)
			y2 := y1 + rng.Uint32()%(256-y1)
			if p.Encode(x1, y1) > p.Encode(x2, y2) {
				t.Fatalf("pattern %d not monotone: (%d,%d) vs (%d,%d)", trial, x1, y1, x2, y2)
			}
		}
	}
}

func TestAlternatingMatchesStandardOrder(t *testing.T) {
	p := Alternating(16)
	rng := rand.New(rand.NewSource(3))
	// Relative order must agree with the full-resolution standard curve for
	// coordinates within the pattern's grid.
	for i := 0; i < 2000; i++ {
		x1, y1 := rng.Uint32()%65536, rng.Uint32()%65536
		x2, y2 := rng.Uint32()%65536, rng.Uint32()%65536
		a1, a2 := p.Encode(x1, y1), p.Encode(x2, y2)
		s1, s2 := Encode(x1, y1), Encode(x2, y2)
		if (a1 < a2) != (s1 < s2) {
			t.Fatalf("alternating pattern order disagrees with Encode for (%d,%d) vs (%d,%d)",
				x1, y1, x2, y2)
		}
	}
}

func bruteBigMinPattern(p Pattern, cur Key, minX, minY, maxX, maxY uint32) (Key, bool) {
	best := Key(0)
	found := false
	for x := minX; x <= maxX; x++ {
		for y := minY; y <= maxY; y++ {
			k := p.Encode(x, y)
			if k > cur && (!found || k < best) {
				best, found = k, true
			}
		}
	}
	return best, found
}

func TestPatternBigMinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		p := randomPattern(rng, 4) // 16x16 grid keeps brute force cheap
		for q := 0; q < 150; q++ {
			x1, x2 := rng.Uint32()%16, rng.Uint32()%16
			y1, y2 := rng.Uint32()%16, rng.Uint32()%16
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			cur := Key(rng.Uint64() % 256)
			zmin, zmax := p.Encode(x1, y1), p.Encode(x2, y2)
			got, gotOK := p.BigMin(cur, zmin, zmax)
			want, wantOK := bruteBigMinPattern(p, cur, x1, y1, x2, y2)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("pattern %d: BigMin(%d, (%d,%d)-(%d,%d)) = (%d,%v), want (%d,%v)",
					trial, cur, x1, y1, x2, y2, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestNewPatternPanics(t *testing.T) {
	cases := [][]uint8{
		make([]uint8, 65), // too long
		{0, 1, 2},         // bad dimension
		append(make([]uint8, 0), repeat(0, 33)...), // 33 x bits
	}
	for i, dims := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewPattern should panic", i)
				}
			}()
			NewPattern(dims)
		}()
	}
}

func repeat(v uint8, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = v
	}
	return out
}
