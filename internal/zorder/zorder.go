// Package zorder implements the classic Z-order (Morton) curve on a 2^32 ×
// 2^32 integer grid, together with the BIGMIN algorithm of Tropf and Herzog
// (1981) for skipping over curve sections that fall outside a query
// rectangle.
//
// The Z-order curve linearises two-dimensional grid coordinates by
// interleaving their bits. It is the substrate for the Base Z-index's
// classical relatives evaluated in Figure 4 of the paper (Zpgm, QUILTS) and
// for the rank-space mappings used by RSMI.
package zorder

import "math/bits"

// Key is a Z-order value: the bit-interleaving of two 32-bit grid
// coordinates, with y contributing the higher bit of each pair.
type Key uint64

// Encode and Decode have two interchangeable implementations: the default
// table-driven byte-interleave kernel (zorder_lut.go) and the classic
// five-step shift cascade, selectable with `-tags zorder_shift`
// (zorder_shift.go). EncodeRef/DecodeRef below are the shift cascade under
// fixed names, always compiled, so the differential fuzz target
// (FuzzZOrderKernel) can compare whichever implementation is live against
// the reference in the same binary.

// EncodeRef is the reference shift-cascade implementation of Encode. Bit i
// of x maps to bit 2i of the key and bit i of y maps to bit 2i+1, so the y
// coordinate is the more significant dimension within each bit pair,
// matching the "abcd" visit order (bottom-left, bottom-right, top-left,
// top-right).
func EncodeRef(x, y uint32) Key {
	return Key(spread(x) | spread(y)<<1)
}

// DecodeRef is the reference shift-cascade implementation of Decode, the
// inverse of Encode.
func DecodeRef(k Key) (x, y uint32) {
	return compact(uint64(k)), compact(uint64(k) >> 1)
}

// spread inserts a zero bit above every bit of v: abcd -> 0a0b0c0d.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact is the inverse of spread: it drops every other bit.
func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// InRect reports whether key k decodes to a grid point inside the rectangle
// [minX, maxX] × [minY, maxY] (inclusive on all sides).
func InRect(k Key, minX, minY, maxX, maxY uint32) bool {
	x, y := Decode(k)
	return x >= minX && x <= maxX && y >= minY && y <= maxY
}

// BigMin returns the smallest Z-order key strictly greater than cur that
// lies inside the query rectangle defined by the keys zmin = Encode(minX,
// minY) and zmax = Encode(maxX, maxY). The second return value is false when
// no such key exists (the scan past cur is exhausted).
//
// This is the BIGMIN routine of Tropf and Herzog: walking the bits of cur,
// zmin and zmax from most to least significant and maintaining candidate
// bounds. A linear scan between zmin and zmax can jump directly to BigMin
// whenever it encounters a key outside the rectangle, skipping the entire
// out-of-rectangle curve section.
func BigMin(cur, zmin, zmax Key) (Key, bool) {
	if cur >= zmax {
		return 0, false
	}
	lo, hi := uint64(zmin), uint64(zmax)
	c := uint64(cur)
	// Bits where cur, zmin, and zmax all agree contribute nothing (the
	// all-0 and all-1 switch cases are no-ops), so start the walk at the
	// first disagreeing bit. The walk itself only mutates bits at or below
	// the current position, so the skipped prefix stays in agreement.
	diff := (c ^ lo) | (c ^ hi)
	if diff == 0 {
		return 0, false // cur == zmin == zmax, excluded by the guard above
	}
	return bigMinFrom(c, lo, hi, 63-bits.LeadingZeros64(diff))
}

// BigMinRef is the reference implementation of BigMin: the same bit walk
// started unconditionally at the top bit. FuzzZOrderKernel holds BigMin to
// it.
func BigMinRef(cur, zmin, zmax Key) (Key, bool) {
	if cur >= zmax {
		return 0, false
	}
	return bigMinFrom(uint64(cur), uint64(zmin), uint64(zmax), 63)
}

func bigMinFrom(c, lo, hi uint64, start int) (Key, bool) {
	bigmin := Key(0)
	found := false
	for bit := start; bit >= 0; bit-- {
		mask := uint64(1) << uint(bit)
		cb := c & mask
		lb := lo & mask
		hb := hi & mask
		switch {
		case cb == 0 && lb == 0 && hb == 0:
			// All agree on 0: continue.
		case cb == 0 && lb == 0 && hb != 0:
			// The rectangle spans this bit. The candidate answer is the
			// lower bound with this bit forced to 1 and lower same-dimension
			// bits zeroed; continue searching in the half with the bit 0.
			bigmin = Key(loadOnes(lo, uint(bit)))
			found = true
			hi = loadZeros(hi, uint(bit))
		case cb == 0 && lb != 0 && hb == 0:
			// min > max in this dimension slice: impossible input.
			return 0, false
		case cb == 0 && lb != 0 && hb != 0:
			// cur is below the remaining search region in this bit: the
			// minimum in-range key greater than cur is the (possibly
			// raised) working lower bound.
			return Key(lo), lo > c
		case cb != 0 && lb == 0 && hb == 0:
			// cur is above the rectangle here: no key in range exceeds cur
			// along this branch; fall back to any saved candidate.
			return bigmin, found
		case cb != 0 && lb == 0 && hb != 0:
			// Restrict to the upper half: raise the lower bound.
			lo = loadOnes(lo, uint(bit))
		case cb != 0 && lb != 0 && hb == 0:
			return 0, false
		case cb != 0 && lb != 0 && hb != 0:
			// All agree on 1: continue.
		}
	}
	return bigmin, found
}

// loadOnes returns v with bit set to 1 and all lower bits of the same
// dimension (every second bit below it) cleared — i.e. the minimum value of
// that dimension's suffix once the current bit is forced to 1.
func loadOnes(v uint64, bit uint) uint64 {
	mask := uint64(1) << bit
	dimMask := sameDimMaskBelow(bit)
	return (v &^ dimMask &^ mask) | mask
}

// loadZeros returns v with bit cleared and all lower bits of the same
// dimension set — the maximum value of that dimension's suffix once the
// current bit is forced to 0.
func loadZeros(v uint64, bit uint) uint64 {
	mask := uint64(1) << bit
	dimMask := sameDimMaskBelow(bit)
	return (v &^ mask) | dimMask
}

// sameDimMaskBelow returns a mask of the bits strictly below bit that belong
// to the same interleaved dimension (same bit parity).
func sameDimMaskBelow(bit uint) uint64 {
	var dim uint64
	if bit%2 == 0 {
		dim = 0x5555555555555555 // even bits: x dimension
	} else {
		dim = 0xAAAAAAAAAAAAAAAA // odd bits: y dimension
	}
	if bit == 0 {
		return 0
	}
	below := uint64(1)<<bit - 1
	return dim & below
}

// CommonPrefixLen returns the number of leading bits shared by a and b.
// It is used by QUILTS-style curve cost heuristics.
func CommonPrefixLen(a, b Key) int {
	return bits.LeadingZeros64(uint64(a) ^ uint64(b))
}
