//go:build zorder_shift

package zorder

// The classic shift-cascade kernel, kept selectable so the table-driven
// default can be differentially tested against a complete build of the old
// path: `go test -tags zorder_shift ./...` runs the entire suite with this
// implementation live.

// Encode interleaves the bits of x and y into a Z-order key via the 5-step
// spread cascade (see EncodeRef).
func Encode(x, y uint32) Key { return EncodeRef(x, y) }

// Decode splits a Z-order key back into its grid coordinates. It is the
// inverse of Encode.
func Decode(k Key) (x, y uint32) { return DecodeRef(k) }
