package zorder

// Pattern generalizes the Z-order curve to arbitrary monotone bit-merge
// orders: any interleaving of the two dimensions' bits, from most to least
// significant, defines a monotone space-filling curve. QUILTS (Nishimura &
// Yokota, SIGMOD 2017) selects such a pattern to fit a query workload; the
// classic Z-order is the alternating pattern.
//
// Patterns keep each dimension's bits in significance order, which is what
// preserves monotonicity (dominated grid points get smaller keys).
type Pattern struct {
	dims []uint8 // dims[i] is the dimension of output bit i, MSB first
	nx   uint    // bits of dimension 0 (x)
	ny   uint    // bits of dimension 1 (y)
}

// NewPattern builds a pattern from a dimension sequence, most significant
// output bit first. Each entry must be 0 (x) or 1 (y); at most 32 bits per
// dimension and 64 total.
func NewPattern(dims []uint8) Pattern {
	if len(dims) > 64 {
		panic("zorder: pattern longer than 64 bits")
	}
	p := Pattern{dims: append([]uint8(nil), dims...)}
	for _, d := range dims {
		switch d {
		case 0:
			p.nx++
		case 1:
			p.ny++
		default:
			panic("zorder: pattern dimension must be 0 or 1")
		}
	}
	if p.nx > 32 || p.ny > 32 {
		panic("zorder: more than 32 bits for one dimension")
	}
	return p
}

// Alternating returns the standard Z-order pattern with bits-per-dimension
// resolution (y more significant within each pair, matching Encode).
func Alternating(bitsPerDim uint) Pattern {
	dims := make([]uint8, 0, 2*bitsPerDim)
	for i := uint(0); i < bitsPerDim; i++ {
		dims = append(dims, 1, 0)
	}
	return NewPattern(dims)
}

// Bits returns the total number of key bits.
func (p Pattern) Bits() int { return len(p.dims) }

// XBits and YBits return the per-dimension resolutions.
func (p Pattern) XBits() uint { return p.nx }

// YBits returns the number of y bits.
func (p Pattern) YBits() uint { return p.ny }

// Encode maps grid coordinates to a key under the pattern. Coordinates are
// truncated to the pattern's per-dimension resolution.
func (p Pattern) Encode(x, y uint32) Key {
	var k uint64
	xb, yb := p.nx, p.ny
	for i := 0; i < len(p.dims); i++ {
		k <<= 1
		if p.dims[i] == 0 {
			xb--
			k |= uint64(x>>xb) & 1
		} else {
			yb--
			k |= uint64(y>>yb) & 1
		}
	}
	return Key(k)
}

// Decode is the inverse of Encode (up to resolution truncation).
func (p Pattern) Decode(k Key) (x, y uint32) {
	xb, yb := p.nx, p.ny
	kk := uint64(k)
	for i := 0; i < len(p.dims); i++ {
		bit := (kk >> uint(len(p.dims)-1-i)) & 1
		if p.dims[i] == 0 {
			xb--
			x |= uint32(bit) << xb
		} else {
			yb--
			y |= uint32(bit) << yb
		}
	}
	return x, y
}

// InRect reports whether k decodes into the inclusive grid rectangle.
func (p Pattern) InRect(k Key, minX, minY, maxX, maxY uint32) bool {
	x, y := p.Decode(k)
	return x >= minX && x <= maxX && y >= minY && y <= maxY
}

// BigMin returns the smallest key strictly greater than cur inside the
// rectangle [zmin, zmax] (keys of the rectangle's corners), generalizing
// the Tropf–Herzog algorithm to arbitrary bit-merge patterns.
func (p Pattern) BigMin(cur, zmin, zmax Key) (Key, bool) {
	if cur >= zmax {
		return 0, false
	}
	bigmin := Key(0)
	found := false
	lo, hi := uint64(zmin), uint64(zmax)
	c := uint64(cur)
	n := len(p.dims)
	for i := 0; i < n; i++ {
		bit := uint(n - 1 - i)
		mask := uint64(1) << bit
		cb, lb, hb := c&mask, lo&mask, hi&mask
		switch {
		case cb == 0 && lb == 0 && hb == 0:
		case cb == 0 && lb == 0 && hb != 0:
			bigmin = Key(p.loadOnes(lo, i))
			found = true
			hi = p.loadZeros(hi, i)
		case cb == 0 && lb != 0 && hb != 0:
			return Key(lo), Key(lo) > cur
		case cb != 0 && lb == 0 && hb == 0:
			return bigmin, found
		case cb != 0 && lb == 0 && hb != 0:
			lo = p.loadOnes(lo, i)
		case cb != 0 && lb != 0 && hb != 0:
		default: // lb set, hb clear: inconsistent input
			return 0, false
		}
	}
	return bigmin, found
}

// loadOnes sets output-bit index i (MSB order) and clears all lower bits of
// the same dimension.
func (p Pattern) loadOnes(v uint64, i int) uint64 {
	n := len(p.dims)
	bit := uint(n - 1 - i)
	d := p.dims[i]
	out := v | 1<<bit
	for j := i + 1; j < n; j++ {
		if p.dims[j] == d {
			out &^= 1 << uint(n-1-j)
		}
	}
	return out
}

// loadZeros clears output-bit index i and sets all lower bits of the same
// dimension.
func (p Pattern) loadZeros(v uint64, i int) uint64 {
	n := len(p.dims)
	bit := uint(n - 1 - i)
	d := p.dims[i]
	out := v &^ (1 << bit)
	for j := i + 1; j < n; j++ {
		if p.dims[j] == d {
			out |= 1 << uint(n-1-j)
		}
	}
	return out
}
