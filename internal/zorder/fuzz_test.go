package zorder

import "testing"

// FuzzZOrderKernel differentially tests the live Encode/Decode/BigMin
// kernel (table-driven by default, shift-cascade under -tags zorder_shift)
// against the always-compiled shift-cascade references: same keys from
// arbitrary coordinates, same coordinates from arbitrary keys, and same
// BIGMIN jumps over rectangles formed from arbitrary corner pairs.
func FuzzZOrderKernel(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), uint64(0))
	f.Add(uint32(1), uint32(2), uint32(3), uint32(4), uint64(5))
	f.Add(uint32(1<<31), uint32(1<<31-1), uint32(^uint32(0)), uint32(0), uint64(1)<<63)
	f.Add(uint32(0xDEADBEEF), uint32(0xCAFEBABE), uint32(0x12345678), uint32(0x9ABCDEF0), ^uint64(0))
	f.Fuzz(func(t *testing.T, ax, ay, bx, by uint32, cur uint64) {
		for _, p := range [][2]uint32{{ax, ay}, {bx, by}} {
			if got, want := Encode(p[0], p[1]), EncodeRef(p[0], p[1]); got != want {
				t.Fatalf("Encode(%d, %d) = %#x, reference %#x", p[0], p[1], got, want)
			}
		}
		for _, k := range []Key{Key(cur), Encode(ax, ay)} {
			gx, gy := Decode(k)
			wx, wy := DecodeRef(k)
			if gx != wx || gy != wy {
				t.Fatalf("Decode(%#x) = (%d, %d), reference (%d, %d)", k, gx, gy, wx, wy)
			}
			if rt := Encode(gx, gy); rt != k {
				t.Fatalf("Encode(Decode(%#x)) = %#x, not the identity", k, rt)
			}
		}
		// Rectangle from the two corners, normalized per dimension so the
		// BigMin precondition (zmin encodes the bottom-left, zmax the
		// top-right) holds.
		minX, maxX := ax, bx
		if minX > maxX {
			minX, maxX = maxX, minX
		}
		minY, maxY := ay, by
		if minY > maxY {
			minY, maxY = maxY, minY
		}
		zmin, zmax := Encode(minX, minY), Encode(maxX, maxY)
		got, gok := BigMin(Key(cur), zmin, zmax)
		want, wok := BigMinRef(Key(cur), zmin, zmax)
		if got != want || gok != wok {
			t.Fatalf("BigMin(%#x, %#x, %#x) = (%#x, %v), reference (%#x, %v)",
				cur, zmin, zmax, got, gok, want, wok)
		}
		if gok {
			if got <= Key(cur) {
				t.Fatalf("BigMin(%#x, ...) = %#x, not strictly greater", cur, got)
			}
			if !InRect(got, minX, minY, maxX, maxY) {
				t.Fatalf("BigMin(%#x, %#x, %#x) = %#x decodes outside the rectangle", cur, zmin, zmax, got)
			}
		}
	})
}

// TestDecodeEncodeBoundaries pins the round-trip property at the dimension
// boundary values on both the live kernel and the reference.
func TestDecodeEncodeBoundaries(t *testing.T) {
	vals := []uint32{0, 1, 1 << 31, ^uint32(0)}
	for _, x := range vals {
		for _, y := range vals {
			k := Encode(x, y)
			if k != EncodeRef(x, y) {
				t.Fatalf("Encode(%d, %d) = %#x, reference %#x", x, y, k, EncodeRef(x, y))
			}
			gx, gy := Decode(k)
			if gx != x || gy != y {
				t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
			}
			rx, ry := DecodeRef(k)
			if rx != x || ry != y {
				t.Fatalf("DecodeRef(Encode(%d, %d)) = (%d, %d)", x, y, rx, ry)
			}
		}
	}
}
