package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		want Key
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y); got != c.want {
			t.Errorf("Encode(%d, %d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

// Property: Z-order is monotone under dominance — if a is dominated by b
// componentwise, Encode(a) <= Encode(b).
func TestMonotoneUnderDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x1, y1 := rng.Uint32(), rng.Uint32()
		dx, dy := rng.Uint32()%1000, rng.Uint32()%1000
		x2, y2 := x1+dx, y1+dy
		if x2 < x1 || y2 < y1 {
			continue // overflow wrapped; skip
		}
		if Encode(x1, y1) > Encode(x2, y2) {
			t.Fatalf("monotonicity violated: (%d,%d) vs (%d,%d)", x1, y1, x2, y2)
		}
	}
}

func TestInRect(t *testing.T) {
	k := Encode(5, 9)
	if !InRect(k, 5, 9, 5, 9) {
		t.Error("point must be in its own degenerate rect")
	}
	if InRect(k, 6, 9, 10, 10) {
		t.Error("x below range")
	}
	if !InRect(k, 0, 0, 100, 100) {
		t.Error("point inside broad rect")
	}
}

// bruteBigMin finds the smallest key > cur inside the rect by exhaustive
// grid scan — ground truth for small grids.
func bruteBigMin(cur Key, minX, minY, maxX, maxY uint32) (Key, bool) {
	best := Key(0)
	found := false
	for x := minX; x <= maxX; x++ {
		for y := minY; y <= maxY; y++ {
			k := Encode(x, y)
			if k > cur && (!found || k < best) {
				best, found = k, true
			}
		}
	}
	return best, found
}

func TestBigMinMatchesBruteForceSmallGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const side = 16
	for trial := 0; trial < 3000; trial++ {
		x1, x2 := rng.Uint32()%side, rng.Uint32()%side
		y1, y2 := rng.Uint32()%side, rng.Uint32()%side
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		cur := Key(rng.Uint64() % uint64(Encode(side-1, side-1)+1))
		zmin, zmax := Encode(x1, y1), Encode(x2, y2)
		got, gotOK := BigMin(cur, zmin, zmax)
		want, wantOK := bruteBigMin(cur, x1, y1, x2, y2)
		if gotOK != wantOK {
			t.Fatalf("BigMin(%d, rect (%d,%d)-(%d,%d)): found=%v, want %v",
				cur, x1, y1, x2, y2, gotOK, wantOK)
		}
		if gotOK && got != want {
			t.Fatalf("BigMin(%d, rect (%d,%d)-(%d,%d)) = %d, want %d",
				cur, x1, y1, x2, y2, got, want)
		}
	}
}

// Property: when BigMin succeeds, the result is strictly greater than cur
// and decodes to a grid point inside the rectangle.
func TestBigMinResultProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5000; trial++ {
		x1, x2 := rng.Uint32()%100000, rng.Uint32()%100000
		y1, y2 := rng.Uint32()%100000, rng.Uint32()%100000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		cur := Key(rng.Uint64() % (uint64(Encode(x2, y2)) + 2))
		got, ok := BigMin(cur, Encode(x1, y1), Encode(x2, y2))
		if !ok {
			continue
		}
		if got <= cur {
			t.Fatalf("BigMin result %d not greater than cur %d", got, cur)
		}
		if !InRect(got, x1, y1, x2, y2) {
			gx, gy := Decode(got)
			t.Fatalf("BigMin result (%d, %d) outside rect (%d,%d)-(%d,%d)",
				gx, gy, x1, y1, x2, y2)
		}
	}
}

func TestBigMinExhaustedScan(t *testing.T) {
	zmin, zmax := Encode(2, 2), Encode(3, 3)
	if _, ok := BigMin(zmax, zmin, zmax); ok {
		t.Error("no key can exceed zmax inside the rect")
	}
	if _, ok := BigMin(zmax+100, zmin, zmax); ok {
		t.Error("cur beyond zmax must report not found")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if got := CommonPrefixLen(0, 0); got != 64 {
		t.Errorf("identical keys share 64 bits, got %d", got)
	}
	if got := CommonPrefixLen(0, 1); got != 63 {
		t.Errorf("keys differing in last bit share 63, got %d", got)
	}
	if got := CommonPrefixLen(0, 1<<63); got != 0 {
		t.Errorf("keys differing in first bit share 0, got %d", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	var sink Key
	for i := 0; i < b.N; i++ {
		sink = Encode(uint32(i), uint32(i)*2654435761)
	}
	_ = sink
}

func BenchmarkBigMin(b *testing.B) {
	zmin, zmax := Encode(1000, 1000), Encode(100000, 100000)
	var sink Key
	for i := 0; i < b.N; i++ {
		k, _ := BigMin(Key(uint64(i)*2654435761%uint64(zmax)), zmin, zmax)
		sink = k
	}
	_ = sink
}
