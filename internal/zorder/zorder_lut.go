//go:build !zorder_shift

package zorder

// Table-driven Morton kernel: one 256-entry table spreads a byte's bits to
// the even positions of a 16-bit word, and one compacts them back. Encode
// and Decode then reduce to eight table loads plus shifts and ors — no
// dependent 5-step cascade — which measures consistently faster than the
// shift version on the query hot path (every leaf-boundary comparison in
// the partitioner and the SFC baselines funnels through Encode).
//
// Build with `-tags zorder_shift` to select the shift-cascade kernel
// instead; FuzzZOrderKernel holds the two byte-identical.

// spreadLUT[b] has bit i of b at bit 2i: abcd -> 0a0b0c0d.
var spreadLUT [256]uint16

// compactLUT[b] gathers the even bits of b into a nibble: the inverse of
// spreadLUT restricted to one byte of key.
var compactLUT [256]uint8

func init() {
	for i := 0; i < 256; i++ {
		var s uint16
		var c uint8
		for b := 0; b < 8; b++ {
			s |= uint16(i>>b&1) << (2 * b)
			if b < 4 {
				c |= uint8(i>>(2*b)&1) << b
			}
		}
		spreadLUT[i] = s
		compactLUT[i] = c
	}
}

// Encode interleaves the bits of x and y into a Z-order key: bit i of x
// maps to bit 2i and bit i of y to bit 2i+1 (see EncodeRef).
func Encode(x, y uint32) Key {
	return Key(uint64(spreadLUT[byte(x)]) | uint64(spreadLUT[byte(y)])<<1 |
		(uint64(spreadLUT[byte(x>>8)])|uint64(spreadLUT[byte(y>>8)])<<1)<<16 |
		(uint64(spreadLUT[byte(x>>16)])|uint64(spreadLUT[byte(y>>16)])<<1)<<32 |
		(uint64(spreadLUT[byte(x>>24)])|uint64(spreadLUT[byte(y>>24)])<<1)<<48)
}

// Decode splits a Z-order key back into its grid coordinates. It is the
// inverse of Encode.
func Decode(k Key) (x, y uint32) {
	v := uint64(k)
	x = uint32(compactLUT[byte(v)]) |
		uint32(compactLUT[byte(v>>8)])<<4 |
		uint32(compactLUT[byte(v>>16)])<<8 |
		uint32(compactLUT[byte(v>>24)])<<12 |
		uint32(compactLUT[byte(v>>32)])<<16 |
		uint32(compactLUT[byte(v>>40)])<<20 |
		uint32(compactLUT[byte(v>>48)])<<24 |
		uint32(compactLUT[byte(v>>56)])<<28
	w := v >> 1
	y = uint32(compactLUT[byte(w)]) |
		uint32(compactLUT[byte(w>>8)])<<4 |
		uint32(compactLUT[byte(w>>16)])<<8 |
		uint32(compactLUT[byte(w>>24)])<<12 |
		uint32(compactLUT[byte(w>>32)])<<16 |
		uint32(compactLUT[byte(w>>40)])<<20 |
		uint32(compactLUT[byte(w>>48)])<<24 |
		uint32(compactLUT[byte(w>>56)])<<28
	return x, y
}
