package wal

import (
	"io"
	"os"
)

// FS abstracts every filesystem operation the log performs so tests can
// substitute fault-injecting implementations (internal/indextest.CrashFS
// kills the write path at any chosen IO boundary). Production code uses
// OSFS.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the directory entries of name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making entry creation and
	// removal durable (required after segment create/remove on POSIX).
	SyncDir(name string) error
}

// File is the subset of *os.File the log writes through.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

type osFS struct{}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }

func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
