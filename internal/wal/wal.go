// Package wal implements the group-commit write-ahead log that makes the
// serving layer's write path durable: an append-only sequence of
// length-prefixed, checksummed records spread over size-rotated segment
// files, with a strict replay reader that stops at the first torn or
// corrupt record. A record is acknowledged (WaitDurable returns) only once
// its durability matches the configured sync policy, so recovery restores
// exactly the acknowledged writes. See docs/DURABILITY.md for the on-disk
// format and the recovery protocol.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/obs"
)

// SyncPolicy selects when an appended record counts as durable.
type SyncPolicy int

const (
	// SyncGroup (the default) acknowledges a write only after an fsync
	// covers it, but batches concurrent waiters behind a single fsync
	// (leader/follower group commit): the first waiter issues the fsync,
	// everyone whose record it covers is released together, and waiters
	// that arrive mid-fsync form the next batch. Survives power loss.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append before it returns. Survives
	// power loss; the slowest policy, with no batching.
	SyncAlways
	// SyncNone never fsyncs on the write path: a record is acknowledged
	// once the OS has the bytes. Survives process crashes (kill -9) via
	// the page cache but not power loss. Segment rotation and Close still
	// fsync.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSync parses the flag spelling of a sync policy.
func ParseSync(s string) (SyncPolicy, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want group, always, or none)", s)
}

const (
	// headerSize is the fixed per-record header: u32 payload length,
	// u32 CRC32-Castagnoli over seq||payload, u64 sequence number, all
	// little-endian, followed by the payload bytes.
	headerSize = 16
	// MaxRecordBytes bounds a record payload; the strict reader treats a
	// larger declared length as corruption, so a flipped length bit can
	// never drive a huge allocation.
	MaxRecordBytes = 1 << 20
	// defaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes unset.
	defaultSegmentBytes = 16 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// Sync is the durability policy (default SyncGroup).
	Sync SyncPolicy
	// GroupWindow optionally delays the group-commit leader before its
	// fsync, widening the batch at the cost of latency. The default 0
	// relies on natural batching: waiters that arrive while an fsync is
	// in flight form the next batch.
	GroupWindow time.Duration
	// SegmentBytes is the size past which the active segment rotates
	// (default 16 MiB).
	SegmentBytes int64
	// FS substitutes the filesystem; nil means OSFS.
	FS FS
}

// WAL is an append-only record log. Appends are serialized; WaitDurable may
// be called from any number of goroutines. The first filesystem failure
// poisons the log: every later operation returns that sticky error, so a
// caller can never acknowledge a write past a lost one.
type WAL struct {
	opts Options

	mu       sync.Mutex // serializes appends, rotation, truncation
	busyCond *sync.Cond // on mu; signalled when a group fsync lets go of f
	syncBusy bool       // a group-commit fsync holds a reference to f
	f        File       // active segment
	segBase  uint64     // first sequence number of the active segment
	segBytes int64
	nextSeq  uint64 // sequence number the next Append will take
	err      error  // sticky first failure; mirrored in errv
	scratch  []byte

	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncing    bool   // a group-commit leader's fsync is in flight
	durableSeq uint64 // highest sequence number covered by an fsync

	errv atomic.Value // error; lock-free mirror of err

	appends     atomic.Int64
	appendBytes atomic.Int64
	fsyncs      atomic.Int64
	rotations   atomic.Int64
	truncations atomic.Int64

	fsyncObs atomic.Pointer[obs.Histogram]
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Appends counts records appended; AppendedBytes their encoded size.
	Appends       int64
	AppendedBytes int64
	Fsyncs        int64
	Rotations     int64
	Truncations   int64
	// LastSeq is the sequence number of the last appended record (0 when
	// none); DurableSeq the highest covered by an fsync.
	LastSeq    uint64
	DurableSeq uint64
	// Err is the sticky error, nil while the log is healthy.
	Err error
}

// Open opens (or creates) the log in opts.Dir. Existing segments are
// scanned to find the last decodable record, and appending always starts in
// a fresh segment just past it — a torn tail from a previous crash is never
// appended after, so Replay can tell a benign interrupted append from
// mid-log corruption. Records already on disk are not applied here; call
// Replay.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	w := &WAL{opts: opts, nextSeq: 1}
	w.syncCond = sync.NewCond(&w.syncMu)
	w.busyCond = sync.NewCond(&w.mu)
	st, err := w.replayLocked(^uint64(0), nil)
	if err != nil {
		return nil, fmt.Errorf("wal: scanning %s: %w", opts.Dir, err)
	}
	w.nextSeq = st.LastSeq + 1
	w.durableSeq = st.LastSeq // what's on disk is as durable as it will get
	// Segments holding no replayable record (entirely past the strict
	// scan's stopping point) would otherwise collide with the fresh
	// segment's name or shadow it; their content is discarded data by the
	// replay contract, so remove them.
	segs, err := w.segmentsLocked()
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", opts.Dir, err)
	}
	removed := false
	for _, sg := range segs {
		if sg.base >= w.nextSeq {
			if err := opts.FS.Remove(sg.path); err != nil {
				return nil, fmt.Errorf("wal: removing stale segment: %w", err)
			}
			removed = true
		}
	}
	if removed {
		if err := opts.FS.SyncDir(opts.Dir); err != nil {
			return nil, fmt.Errorf("wal: syncing %s: %w", opts.Dir, err)
		}
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// segmentName names the segment whose first record has sequence number
// base. Zero-padded decimal keeps lexical and numeric order identical.
func segmentName(base uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix)
}

type segment struct {
	base uint64
	path string
}

// segmentsLocked lists the on-disk segments in sequence order.
func (w *WAL) segmentsLocked() ([]segment, error) {
	ents, err := w.opts.FS.ReadDir(w.opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil || base == 0 {
			continue // not a segment we wrote; leave it alone
		}
		segs = append(segs, segment{base: base, path: filepath.Join(w.opts.Dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// openSegmentLocked creates the fresh active segment named by nextSeq and
// makes its directory entry durable.
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.opts.Dir, segmentName(w.nextSeq))
	f, err := w.opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := w.opts.FS.SyncDir(w.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing %s: %w", w.opts.Dir, err)
	}
	w.f = f
	w.segBase = w.nextSeq
	w.segBytes = 0
	return nil
}

// AppendRecord appends the canonical encoding of one record to dst and
// returns the extended slice. Exported so tests and fuzz targets can build
// reference encodings; Append uses it internally.
func AppendRecord(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	return append(append(dst, hdr[:]...), payload...)
}

// Append assigns the next sequence number to payload and writes the record
// to the active segment, rotating first if the segment is full. Under
// SyncAlways the record is also fsynced before Append returns; under the
// other policies durability is WaitDurable's job. The payload is copied
// into the record encoding; the caller may reuse it.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	w.scratch = AppendRecord(w.scratch[:0], seq, payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		w.failLocked(err)
		return 0, w.err
	}
	w.nextSeq++
	w.segBytes += int64(len(w.scratch))
	w.appends.Add(1)
	w.appendBytes.Add(int64(len(w.scratch)))
	if w.opts.Sync == SyncAlways {
		if err := w.fsyncLocked(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// fsyncLocked syncs the active segment and publishes upTo as durable.
func (w *WAL) fsyncLocked(upTo uint64) error {
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		w.failLocked(err)
		return w.err
	}
	w.fsyncs.Add(1)
	if h := w.fsyncObs.Load(); h != nil {
		h.ObserveSince(t0)
	}
	w.syncMu.Lock()
	if upTo > w.durableSeq {
		w.durableSeq = upTo
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}

// fsyncGroup syncs the active segment on behalf of a group-commit leader
// and publishes the covered cut as durable. Unlike fsyncLocked it does NOT
// hold w.mu across the Sync syscall: the whole point of group commit is
// that concurrent Appends land while the disk flushes, so the next leader's
// fsync covers them all in one batch. Rotation and Close wait out the
// in-flight sync (waitSyncIdleLocked) before closing the file it holds.
// Called with no locks held; returns the highest sequence number covered.
func (w *WAL) fsyncGroup() (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.f == nil {
		w.mu.Unlock()
		return 0, errors.New("wal: closed")
	}
	upTo := w.nextSeq - 1
	f := w.f
	w.syncBusy = true
	w.mu.Unlock()

	t0 := time.Now()
	serr := f.Sync()

	w.mu.Lock()
	w.syncBusy = false
	w.busyCond.Broadcast()
	if serr != nil {
		w.failLocked(serr)
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	w.fsyncs.Add(1)
	if h := w.fsyncObs.Load(); h != nil {
		h.ObserveSince(t0)
	}
	w.mu.Unlock()

	w.syncMu.Lock()
	if upTo > w.durableSeq {
		w.durableSeq = upTo
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return upTo, nil
}

// waitSyncIdleLocked blocks (releasing and reacquiring w.mu via the cond)
// until no group-commit fsync holds a reference to the active segment's
// file. Anything that closes w.f must call this first.
func (w *WAL) waitSyncIdleLocked() {
	for w.syncBusy {
		w.busyCond.Wait()
	}
}

// rotateLocked seals the active segment (fsync, so rotation never reduces
// durability) and opens the next one.
func (w *WAL) rotateLocked() error {
	w.waitSyncIdleLocked()
	if err := w.fsyncLocked(w.nextSeq - 1); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.failLocked(err)
		return w.err
	}
	w.f = nil
	if err := w.openSegmentLocked(); err != nil {
		w.failLocked(err)
		return w.err
	}
	w.rotations.Add(1)
	return nil
}

// WaitDurable blocks until the record with sequence number seq is durable
// under the configured policy. This is the acknowledgement gate: a caller
// must not report a write as accepted until WaitDurable returns nil.
func (w *WAL) WaitDurable(seq uint64) error {
	switch w.opts.Sync {
	case SyncAlways, SyncNone:
		// always: Append already fsynced. none: the OS has the bytes,
		// which is all this policy promises.
		return w.Err()
	}
	w.syncMu.Lock()
	for {
		if w.durableSeq >= seq {
			w.syncMu.Unlock()
			return nil
		}
		if err := w.Err(); err != nil {
			w.syncMu.Unlock()
			return err
		}
		if w.syncing {
			// A leader's fsync is in flight; it may not cover seq, so
			// re-check on wakeup and lead the next batch if needed.
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()
		if w.opts.GroupWindow > 0 {
			time.Sleep(w.opts.GroupWindow)
		}
		_, err := w.fsyncGroup()
		w.syncMu.Lock()
		w.syncing = false
		w.syncCond.Broadcast()
		if err != nil {
			w.syncMu.Unlock()
			return err
		}
	}
}

// TruncateBefore removes every segment whose records all have sequence
// numbers at or below seq — the checkpoint cut. Call it only once a
// snapshot covering seq is durably on disk (see the Save-truncation
// invariant in docs/DURABILITY.md); the active segment is never removed.
// It returns how many segments were removed.
func (w *WAL) TruncateBefore(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	segs, err := w.segmentsLocked()
	if err != nil {
		w.failLocked(err)
		return 0, w.err
	}
	removed := 0
	for i, sg := range segs {
		if sg.base == w.segBase || i+1 >= len(segs) {
			break
		}
		// Segment i's records run up to (at most) the next base minus one.
		if segs[i+1].base > seq+1 {
			break
		}
		if err := w.opts.FS.Remove(sg.path); err != nil {
			w.failLocked(err)
			return removed, w.err
		}
		removed++
	}
	if removed > 0 {
		if err := w.opts.FS.SyncDir(w.opts.Dir); err != nil {
			w.failLocked(err)
			return removed, w.err
		}
		w.truncations.Add(1)
	}
	return removed, nil
}

// Sync forces an fsync covering every appended record.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.fsyncLocked(w.nextSeq - 1)
}

// Close seals the log: a final fsync (whatever the policy — a clean
// shutdown leaves everything durable) and the segment closed. The WAL must
// not be used after Close.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitSyncIdleLocked()
	if w.f == nil {
		return w.err
	}
	if w.err == nil {
		w.fsyncLocked(w.nextSeq - 1)
	}
	err := w.f.Close()
	w.f = nil
	if err != nil && w.err == nil {
		w.failLocked(err)
	}
	return w.err
}

// Err returns the sticky error, nil while the log is healthy. Lock-free.
func (w *WAL) Err() error {
	if v := w.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// failLocked records the first failure; later operations all return it.
func (w *WAL) failLocked(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("wal: %w", err)
		w.errv.Store(w.err)
	}
}

// SetFsyncObs routes fsync latencies into h (nil detaches).
func (w *WAL) SetFsyncObs(h *obs.Histogram) { w.fsyncObs.Store(h) }

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	last := w.nextSeq - 1
	err := w.err
	w.mu.Unlock()
	w.syncMu.Lock()
	durable := w.durableSeq
	w.syncMu.Unlock()
	return Stats{
		Appends:       w.appends.Load(),
		AppendedBytes: w.appendBytes.Load(),
		Fsyncs:        w.fsyncs.Load(),
		Rotations:     w.rotations.Load(),
		Truncations:   w.truncations.Load(),
		LastSeq:       last,
		DurableSeq:    durable,
		Err:           err,
	}
}
