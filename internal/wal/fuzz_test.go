package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// segmentBytes builds a real segment by appending records through the log
// itself and returning the raw file bytes.
func segmentBytes(tb testing.TB, records int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncNone})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		tb.Fatalf("no segment produced: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the strict replay reader as a
// segment file. Whatever the input: no panic, no record applied past a bad
// checksum, and — the round-trip property — the records that ARE applied
// re-encode to exactly a prefix of the input, so a clean log round-trips
// byte-identically and a torn one replays precisely its valid prefix.
func FuzzWALReplay(f *testing.F) {
	clean := segmentBytes(f, 8)
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	f.Add(clean[:headerSize/2]) // torn header
	f.Add([]byte{})
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/3] ^= 0x40 // mid-log corruption
	f.Add(flipped)
	big := append([]byte(nil), clean...)
	big[0] = 0xff // implausible length prefix
	f.Add(big)
	f.Add(segmentBytes(f, 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(Options{Dir: dir, Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		defer w.Close()
		var replayed []byte
		var seqs []uint64
		st, err := w.Replay(0, func(seq uint64, payload []byte) error {
			replayed = AppendRecord(replayed, seq, payload)
			seqs = append(seqs, seq)
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on fuzzed bytes: %v", err)
		}
		// Round trip: everything applied came verbatim from a prefix of
		// the input — nothing synthesized, nothing applied past a tear.
		if !bytes.HasPrefix(data, replayed) {
			t.Fatalf("replayed records re-encode to %d bytes that are not a prefix of the %d-byte input",
				len(replayed), len(data))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("applied sequence %d at position %d: replay must apply a gapless prefix", s, i)
			}
		}
		// Appending after replay must keep the log readable: the recovery
		// path always lands writes in a fresh segment past the tear.
		seq, err := w.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if seq != st.LastSeq+1 {
			t.Fatalf("append after recovery got seq %d, want %d", seq, st.LastSeq+1)
		}
	})
}
