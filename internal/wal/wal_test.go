package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays everything after cut into a slice of payload copies.
func collect(t *testing.T, w *WAL, cut uint64) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	st, err := w.Replay(cut, func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d", i))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncGroup, SyncAlways, SyncNone} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(Options{Dir: dir, Sync: sync})
			if err != nil {
				t.Fatal(err)
			}
			want := payloads(100)
			for _, p := range want {
				seq, err := w.Append(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.WaitDurable(seq); err != nil {
					t.Fatal(err)
				}
			}
			got, st := collect(t, w, 0)
			if len(got) != len(want) || st.LastSeq != 100 || st.Torn {
				t.Fatalf("replay got %d records, LastSeq %d, torn %v; want %d, 100, false",
					len(got), st.LastSeq, st.Torn, len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReplayAfterCutSkipsPrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, p := range payloads(10) {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	got, st := collect(t, w, 7)
	if len(got) != 3 || st.Records != 3 {
		t.Fatalf("replay after cut 7 applied %d records (stats %d), want 3", len(got), st.Records)
	}
	if string(got[0]) != "record-0007" {
		t.Fatalf("first applied record = %q, want record-0007", got[0])
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(5) {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	seq, err := w2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("first seq after reopen = %d, want 6", seq)
	}
	got, st := collect(t, w2, 0)
	if len(got) != 6 || st.Torn {
		t.Fatalf("replay after reopen: %d records, torn %v; want 6, false", len(got), st.Torn)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, p := range payloads(40) {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations with SegmentBytes=128 after 40 records")
	}
	got, _ := collect(t, w, 0)
	if len(got) != 40 {
		t.Fatalf("replay across segments got %d records, want 40", len(got))
	}
	// Truncate below a mid-log cut: early segments go, replay still yields
	// everything above the cut.
	removed, err := w.TruncateBefore(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("TruncateBefore(20) removed no segments despite rotations")
	}
	got, rst := collect(t, w, 20)
	if len(got) != 20 || rst.Torn {
		t.Fatalf("replay after truncate: %d records, torn %v; want 20, false", len(got), rst.Torn)
	}
	// The cut must be conservative: no segment holding a record above 20
	// may have been removed, so replaying after a lower cut still finds
	// every record the remaining segments start with.
	if rst.LastSeq != 40 {
		t.Fatalf("LastSeq after truncate = %d, want 40", rst.LastSeq)
	}
}

func TestTornTailDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(8) {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 5 bytes of the newest non-empty segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	var tornSeg string
	for _, sg := range segs {
		fi, err := os.Stat(sg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			tornSeg = sg
		}
	}
	fi, _ := os.Stat(tornSeg)
	if err := os.Truncate(tornSeg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// The torn record (seq 8) is discarded; appends resume at 8.
	seq, err := w2.Append([]byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 {
		t.Fatalf("seq after torn-tail reopen = %d, want 8", seq)
	}
	got, st := collect(t, w2, 0)
	if len(got) != 8 || st.Torn {
		t.Fatalf("replay after torn-tail reopen: %d records, torn %v; want 8, false", len(got), st.Torn)
	}
	if string(got[7]) != "replacement" {
		t.Fatalf("record 8 = %q, want the replacement record", got[7])
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(10) {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	var seg string
	for _, sg := range segs {
		if fi, _ := os.Stat(sg); fi.Size() > 0 {
			seg = sg
		}
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // flip a bit mid-log
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, st := collect(t, w2, 0)
	if !st.Torn && len(got) == 10 {
		t.Fatalf("replay ignored a flipped bit: %d records, torn %v", len(got), st.Torn)
	}
	if len(got) >= 10 {
		t.Fatalf("replay applied %d records past a corrupt one", len(got))
	}
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := w.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.DurableSeq != uint64(writers*perWriter) {
		t.Fatalf("durableSeq = %d, want %d", st.DurableSeq, writers*perWriter)
	}
	// Group commit must have batched: strictly fewer fsyncs than appends
	// would be ideal, but single-threaded phases can degrade to 1:1, so
	// just require it never exceeds appends + rotations.
	if st.Fsyncs > st.Appends+st.Rotations+1 {
		t.Fatalf("fsyncs %d exceed appends %d: no batching at all", st.Fsyncs, st.Appends)
	}
	got, rst := collect(t, w, 0)
	if len(got) != writers*perWriter || rst.Torn {
		t.Fatalf("replay got %d records, torn %v; want %d, false", len(got), rst.Torn, writers*perWriter)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// slowFS delays every file Sync, widening the window in which concurrent
// appends can land behind an in-flight group-commit fsync.
type slowFS struct {
	FS
	delay time.Duration
}

func (fs slowFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := fs.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowFile{File: f, delay: fs.delay}, nil
}

type slowFile struct {
	File
	delay time.Duration
}

func (f slowFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitBatchesDuringSlowFsync proves group commit actually
// amortizes fsyncs: while a leader's (artificially slow) fsync is in
// flight, other writers' appends must proceed and ride the next leader's
// fsync as one batch. A WAL that held the append lock across the fsync
// syscall would serialize every writer and degrade to one fsync per
// append — exactly what this asserts against.
func TestGroupCommitBatchesDuringSlowFsync(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Sync: SyncGroup, FS: slowFS{FS: OSFS, delay: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := w.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appends != writers*perWriter || st.DurableSeq != uint64(writers*perWriter) {
		t.Fatalf("appends %d durable %d, want %d acknowledged", st.Appends, st.DurableSeq, writers*perWriter)
	}
	// 8 writers against a 2ms fsync should batch near 8:1; require at
	// least 2:1 so scheduler noise can't flake the test.
	if st.Fsyncs*2 > st.Appends {
		t.Fatalf("fsyncs %d for %d appends: group commit is not batching", st.Fsyncs, st.Appends)
	}
	got, rst := collect(t, w, 0)
	if len(got) != writers*perWriter || rst.Torn {
		t.Fatalf("replay got %d records, torn %v; want %d, false", len(got), rst.Torn, writers*perWriter)
	}
}

func TestParseSync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"group", SyncGroup, true}, {"", SyncGroup, true},
		{"always", SyncAlways, true}, {"none", SyncNone, true},
		{"fsync", 0, false},
	} {
		got, err := ParseSync(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseSync(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
	if w.Err() != nil {
		t.Fatalf("oversize append poisoned the log: %v", w.Err())
	}
}
