package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ReplayStats describes what a Replay pass saw.
type ReplayStats struct {
	// Records counts records applied (sequence number above the caller's
	// cut); LastSeq is the last valid sequence number on disk, applied or
	// not.
	Records int
	LastSeq uint64
	// Segments counts segment files read.
	Segments int
	// Torn reports that replay stopped at a torn or corrupt record with
	// no later segment resuming the sequence — the log's tail was lost
	// mid-append. A torn record followed by a segment that resumes
	// exactly after the last good record is a benign interrupted append
	// (discarded by a previous Open) and does not set Torn.
	Torn bool
}

// ScanRecords decodes records from one segment's bytes, calling fn for each
// valid record in order. The first record must carry sequence number base
// and each record the successor of the previous. It stops at the first
// torn or corrupt record (short header, implausible length, checksum
// mismatch, sequence break), reporting how many records were decoded and
// whether trailing bytes were abandoned. fn's error aborts the scan and is
// returned.
func ScanRecords(data []byte, base uint64, fn func(seq uint64, payload []byte) error) (n int, torn bool, err error) {
	expected := base
	for len(data) > 0 {
		if len(data) < headerSize {
			return n, true, nil
		}
		length := binary.LittleEndian.Uint32(data[0:4])
		crc := binary.LittleEndian.Uint32(data[4:8])
		seq := binary.LittleEndian.Uint64(data[8:16])
		if length > MaxRecordBytes || int(length) > len(data)-headerSize {
			return n, true, nil
		}
		payload := data[headerSize : headerSize+int(length)]
		sum := crc32.Update(0, castagnoli, data[8:16])
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc || seq != expected {
			return n, true, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return n, false, err
			}
		}
		n++
		expected++
		data = data[headerSize+int(length):]
	}
	return n, false, nil
}

// Replay reads every segment in order and calls fn for each record whose
// sequence number is strictly above after (the caller's checkpoint cut),
// stopping at the first torn or corrupt record exactly as ScanRecords
// does. It never applies a record past a bad one. Safe only while no
// appends are in flight — callers replay before serving.
func (w *WAL) Replay(after uint64, fn func(seq uint64, payload []byte) error) (ReplayStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.replayLocked(after, fn)
}

func (w *WAL) replayLocked(after uint64, fn func(seq uint64, payload []byte) error) (ReplayStats, error) {
	segs, err := w.segmentsLocked()
	if err != nil {
		return ReplayStats{}, err
	}
	var st ReplayStats
	var expected uint64
	for i, sg := range segs {
		if i == 0 {
			expected = sg.base
		} else if sg.base != expected {
			// A gap between segments: everything from here on is
			// unreachable discarded data.
			st.Torn = true
			break
		}
		data, err := w.opts.FS.ReadFile(sg.path)
		if err != nil {
			return st, fmt.Errorf("reading segment %s: %w", sg.path, err)
		}
		st.Segments++
		n, torn, ferr := ScanRecords(data, sg.base, func(seq uint64, payload []byte) error {
			if seq <= after || fn == nil {
				return nil
			}
			st.Records++
			return fn(seq, payload)
		})
		expected = sg.base + uint64(n)
		if ferr != nil {
			return st, ferr
		}
		if torn {
			if i+1 < len(segs) && segs[i+1].base == expected {
				// Benign: a later Open discarded this tail and resumed
				// the sequence in a fresh segment.
				continue
			}
			st.Torn = true
			break
		}
	}
	if expected > 0 {
		st.LastSeq = expected - 1
	}
	return st, nil
}
