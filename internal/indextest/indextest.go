// Package indextest provides a conformance suite run against every spatial
// index in this repository: results must match a brute-force reference on
// random, clustered, duplicated, collinear, and degenerate inputs across
// random, workload, and edge-case queries. Each index package's tests call
// Conformance with its constructor.
package indextest

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
)

// Builder constructs an index over data with an anticipated workload
// (workload-agnostic indexes ignore the second argument).
type Builder func(pts []geom.Point, queries []geom.Rect) index.Index

// ClusteredPoints generates multi-modal test data.
func ClusteredPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{X: 0.15, Y: 0.2}, {X: 0.7, Y: 0.25}, {X: 0.4, Y: 0.75}, {X: 0.85, Y: 0.85}}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		pts[i] = geom.Point{
			X: clamp01(c.X + rng.NormFloat64()*0.07),
			Y: clamp01(c.Y + rng.NormFloat64()*0.07),
		}
	}
	return pts
}

// SkewedQueries generates a hotspot-concentrated workload.
func SkewedQueries(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 0.7, Y: 0.25}, {X: 0.4, Y: 0.75}}
	qs := make([]geom.Rect, n)
	for i := range qs {
		c := hot[rng.Intn(len(hot))]
		w := 0.01 + rng.Float64()*0.05
		cx := clamp01(c.X + rng.NormFloat64()*0.05)
		cy := clamp01(c.Y + rng.NormFloat64()*0.05)
		qs[i] = geom.Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
	}
	return qs
}

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// Conformance runs the full correctness suite against build.
func Conformance(t *testing.T, build Builder) {
	t.Helper()
	t.Run("RandomQueries", func(t *testing.T) { randomQueries(t, build) })
	t.Run("WorkloadQueries", func(t *testing.T) { workloadQueries(t, build) })
	t.Run("EdgeRects", func(t *testing.T) { edgeRects(t, build) })
	t.Run("PointQueries", func(t *testing.T) { pointQueries(t, build) })
	t.Run("TinyInputs", func(t *testing.T) { tinyInputs(t, build) })
	t.Run("Duplicates", func(t *testing.T) { duplicates(t, build) })
	t.Run("Collinear", func(t *testing.T) { collinear(t, build) })
	t.Run("Accounting", func(t *testing.T) { accounting(t, build) })
}

// ConformanceUpdatable additionally exercises Insert.
func ConformanceUpdatable(t *testing.T, build func(pts []geom.Point, queries []geom.Rect) index.Updatable) {
	t.Helper()
	Conformance(t, func(pts []geom.Point, queries []geom.Rect) index.Index { return build(pts, queries) })
	t.Run("Inserts", func(t *testing.T) {
		pts := ClusteredPoints(2000, 31)
		qs := SkewedQueries(100, 32)
		idx := build(pts, qs)
		ref := index.NewBrute(pts)
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 1500; i++ {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			idx.Insert(p)
			ref.Insert(p)
		}
		if idx.Len() != ref.Len() {
			t.Fatalf("Len after inserts = %d, want %d", idx.Len(), ref.Len())
		}
		for i := 0; i < 100; i++ {
			r := randRect(rng)
			same(t, idx.RangeQuery(r), ref.RangeQuery(r), "after inserts")
		}
	})
}

func randRect(rng *rand.Rand) geom.Rect {
	cx, cy := rng.Float64(), rng.Float64()
	w, h := rng.Float64()*0.25, rng.Float64()*0.25
	return geom.Rect{MinX: cx - w, MinY: cy - h, MaxX: cx + w, MaxY: cy + h}
}

func randomQueries(t *testing.T, build Builder) {
	t.Helper()
	pts := ClusteredPoints(5000, 1)
	qs := SkewedQueries(200, 2)
	idx := build(pts, qs)
	ref := index.NewBrute(pts)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		r := randRect(rng)
		same(t, idx.RangeQuery(r), ref.RangeQuery(r), r.String())
	}
}

func workloadQueries(t *testing.T, build Builder) {
	t.Helper()
	pts := ClusteredPoints(5000, 4)
	qs := SkewedQueries(200, 5)
	idx := build(pts, qs)
	ref := index.NewBrute(pts)
	for _, r := range qs[:100] {
		same(t, idx.RangeQuery(r), ref.RangeQuery(r), "workload")
	}
}

func edgeRects(t *testing.T, build Builder) {
	t.Helper()
	pts := ClusteredPoints(2000, 6)
	idx := build(pts, SkewedQueries(50, 7))
	ref := index.NewBrute(pts)
	cases := []geom.Rect{
		{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},
		{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},
		{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},
		{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y},
		{MinX: 0.3, MinY: -1, MaxX: 0.31, MaxY: 2},
		{MinX: -1, MinY: 0.7, MaxX: 2, MaxY: 0.71},
	}
	for _, r := range cases {
		same(t, idx.RangeQuery(r), ref.RangeQuery(r), r.String())
	}
}

func pointQueries(t *testing.T, build Builder) {
	t.Helper()
	pts := ClusteredPoints(3000, 8)
	idx := build(pts, SkewedQueries(50, 9))
	for i := 0; i < len(pts); i += 7 {
		if !idx.PointQuery(pts[i]) {
			t.Fatalf("indexed point %v not found", pts[i])
		}
	}
	rng := rand.New(rand.NewSource(10))
	inData := map[geom.Point]bool{}
	for _, p := range pts {
		inData[p] = true
	}
	for i := 0; i < 300; i++ {
		q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if idx.PointQuery(q) != inData[q] {
			t.Fatalf("point query mismatch for %v", q)
		}
	}
	if idx.PointQuery(geom.Point{X: 42, Y: 42}) {
		t.Fatal("out-of-domain point reported found")
	}
}

func tinyInputs(t *testing.T, build Builder) {
	t.Helper()
	for _, n := range []int{1, 2, 3, 10} {
		pts := ClusteredPoints(n, int64(100+n))
		idx := build(pts, nil)
		if idx.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, idx.Len())
		}
		all := idx.RangeQuery(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2})
		if len(all) != n {
			t.Fatalf("n=%d: full query returned %d", n, len(all))
		}
		if !idx.PointQuery(pts[0]) {
			t.Fatalf("n=%d: first point not found", n)
		}
	}
}

func duplicates(t *testing.T, build Builder) {
	t.Helper()
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Point{X: 0.25 * float64(i%3), Y: 0.25 * float64(i%2)}
	}
	idx := build(pts, nil)
	ref := index.NewBrute(pts)
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.3, MaxY: 0.3}
	same(t, idx.RangeQuery(r), ref.RangeQuery(r), "duplicates")
	full := geom.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	same(t, idx.RangeQuery(full), ref.RangeQuery(full), "duplicates full")
}

func collinear(t *testing.T, build Builder) {
	t.Helper()
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: 0.4, Y: float64(i) / 1000}
	}
	idx := build(pts, nil)
	ref := index.NewBrute(pts)
	r := geom.Rect{MinX: 0, MinY: 0.2, MaxX: 1, MaxY: 0.6}
	same(t, idx.RangeQuery(r), ref.RangeQuery(r), "collinear")
}

func accounting(t *testing.T, build Builder) {
	t.Helper()
	pts := ClusteredPoints(2000, 11)
	idx := build(pts, SkewedQueries(50, 12))
	if idx.Bytes() <= 0 {
		t.Error("Bytes must be positive")
	}
	before := *idx.Stats()
	idx.RangeQuery(geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
	d := idx.Stats().Diff(before)
	if d.RangeQueries != 1 {
		t.Errorf("RangeQueries delta = %d, want 1", d.RangeQueries)
	}
	if d.ResultPoints <= 0 {
		t.Error("expected a non-empty result for the broad query")
	}
}

// same asserts two point multisets are equal.
func same(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", ctx, len(got), len(want))
	}
	a := append([]geom.Point(nil), got...)
	b := append([]geom.Point(nil), want...)
	lessP := func(s []geom.Point) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].X != s[j].X {
				return s[i].X < s[j].X
			}
			return s[i].Y < s[j].Y
		}
	}
	sort.Slice(a, lessP(a))
	sort.Slice(b, lessP(b))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: multisets differ at %d: %v vs %v", ctx, i, a[i], b[i])
		}
	}
}
