package indextest

import (
	"errors"
	"os"
	"sync"

	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/wal"
)

// ErrCrashed is returned by every CrashFS operation at and after the
// injected crash point.
var ErrCrashed = errors.New("indextest: simulated crash")

// CrashFS implements wal.FS over the real filesystem with a crash injected
// at the k-th mutating IO operation (segment create, record write, fsync,
// segment remove, directory sync — every durability boundary of the log).
// At the crash point the operation fails, every later operation fails, and
// what remains on disk depends on the model:
//
//   - Process crash (PowerLoss false): writes pass straight through, so
//     everything written before the crash survives — kill -9 semantics,
//     where the page cache outlives the process. With TearWrites, the
//     crashing write leaves a half-written record.
//
//   - Power loss (PowerLoss true): writes are buffered per file and only
//     reach the backing file on Sync — un-synced data is lost at the
//     crash. With TearWrites, a half of each pending buffer is flushed
//     instead, leaving a torn un-synced tail; without, the cut is clean at
//     the last fsync.
//
// Recovery then opens the same directory with the real filesystem and must
// restore exactly the acknowledged writes. Create one CrashFS per
// simulated process lifetime; it is safe for concurrent use.
type CrashFS struct {
	// PowerLoss and TearWrites select the crash model above. Set before
	// first use.
	PowerLoss  bool
	TearWrites bool

	mu      sync.Mutex
	crashAt int // crash at the k-th counted op; negative means never
	ops     int
	crashed bool
	files   []*crashFile
}

// NewCrashFS returns a CrashFS that crashes at the k-th counted IO
// operation (0-based); a negative k never crashes, which is how a harness
// discovers the operation count of a clean run.
func NewCrashFS(k int) *CrashFS {
	return &CrashFS{crashAt: k}
}

// Ops returns how many counted operations have been performed.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the crash point was reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step counts one mutating operation, tripping the crash when the count
// reaches the injection point. Called with c.mu held.
func (c *CrashFS) step() error {
	if c.crashed {
		return ErrCrashed
	}
	if c.ops == c.crashAt {
		c.crashed = true
		c.spillLocked()
		return ErrCrashed
	}
	c.ops++
	return nil
}

// spillLocked materializes the crash's on-disk outcome for every open
// file's pending buffer: a torn prefix under TearWrites, nothing
// otherwise. Only meaningful under PowerLoss; the process-crash model has
// no pending buffers.
func (c *CrashFS) spillLocked() {
	if !c.PowerLoss {
		return
	}
	for _, f := range c.files {
		if len(f.buf) == 0 {
			continue
		}
		if c.TearWrites {
			f.backing.Write(f.buf[:len(f.buf)/2])
		}
		f.buf = nil
	}
}

type crashFile struct {
	fs      *CrashFS
	backing *os.File
	buf     []byte // pending un-synced writes (PowerLoss model only)
}

// OpenFile counts as a kill point: creating a segment is a durability
// boundary (its directory entry may or may not survive).
func (c *CrashFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	cf := &crashFile{fs: c, backing: f}
	c.files = append(c.files, cf)
	return cf, nil
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (c *CrashFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (c *CrashFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// Remove counts as a kill point: log truncation must tolerate dying
// between segment removals.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	return os.Remove(name)
}

// SyncDir counts as a kill point: it is the barrier that makes segment
// creation and removal durable.
func (c *CrashFS) SyncDir(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Write counts as a kill point. Under TearWrites the crashing write leaves
// half the record behind (process crash) or half-buffered (power loss, the
// half that spillLocked may then tear again — any prefix is a legal crash
// outcome).
func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	wasCrashed := c.crashed
	if err := c.step(); err != nil {
		if c.TearWrites && !wasCrashed {
			// The write that trips the crash tears: its first half lands
			// on disk (in the power-loss model that half-page counts as
			// flushed by the dying OS — a legal crash outcome either way).
			f.backing.Write(p[:len(p)/2])
		}
		return 0, err
	}
	if c.PowerLoss {
		f.buf = append(f.buf, p...)
		return len(p), nil
	}
	return f.backing.Write(p)
}

// Sync counts as a kill point: the crash fires before any pending data
// reaches the backing file, so an acknowledgement gated on this fsync is
// never issued for data that was lost.
func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	if len(f.buf) > 0 {
		if _, err := f.backing.Write(f.buf); err != nil {
			return err
		}
		f.buf = nil
	}
	return f.backing.Sync()
}

// Close is not a kill point (closing changes no durability state). A clean
// close flushes pending bytes to the page cache — only a crash loses them.
func (f *crashFile) Close() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		f.backing.Close()
		return ErrCrashed
	}
	if len(f.buf) > 0 {
		if _, err := f.backing.Write(f.buf); err != nil {
			f.backing.Close()
			return err
		}
		f.buf = nil
	}
	return f.backing.Close()
}

func (f *crashFile) Name() string { return f.backing.Name() }

var _ wal.FS = (*CrashFS)(nil)

// WrapPageFile wraps an opened page file so its positional I/O counts
// toward the crash point — the fault-injection seam behind
// storage.DiskOptions.WrapFile. Reads count too: the page store's fault
// path is read-driven, and the single-flight regression tests need to kill
// a fault mid-read. A crashed operation surfaces as the store's ioPanic
// (reads on a validated file have no error channel); tests recover from it.
// The wrapper imposes pread mode, so it exercises the decode path.
func (c *CrashFS) WrapPageFile(f *os.File) storage.PageFile {
	return &crashPageFile{fs: c, backing: f}
}

type crashPageFile struct {
	fs      *CrashFS
	backing *os.File
}

func (f *crashPageFile) countOp() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step()
}

func (f *crashPageFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.countOp(); err != nil {
		return 0, err
	}
	return f.backing.ReadAt(p, off)
}

func (f *crashPageFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.countOp(); err != nil {
		return 0, err
	}
	return f.backing.WriteAt(p, off)
}

func (f *crashPageFile) Truncate(size int64) error {
	if err := f.countOp(); err != nil {
		return err
	}
	return f.backing.Truncate(size)
}

func (f *crashPageFile) Stat() (os.FileInfo, error) { return f.backing.Stat() }

func (f *crashPageFile) Sync() error {
	if err := f.countOp(); err != nil {
		return err
	}
	return f.backing.Sync()
}

func (f *crashPageFile) Close() error { return f.backing.Close() }

var _ storage.PageFile = (*crashPageFile)(nil)
