package indextest

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/storage"
)

// This file adds the differential half of the conformance suite: the same
// index built on two page-store backends (RAM-resident and disk-resident)
// must be indistinguishable — byte-identical query results against each
// other and brute force, and identical page-access statistics — including
// after insert/delete churn. Builders must be deterministic (fixed seeds),
// so both backends construct the same tree and the only difference left is
// where pages live.

// updatable is the churn surface a differential target may implement.
type updatable interface {
	index.Index
	Insert(p geom.Point)
	Delete(p geom.Point) bool
}

// Repartitioner is the optional surface of targets whose global partition
// plan can be re-learned from the observed workload and migrated to live
// (wazi.Sharded). When both builds implement it, Differential drives a
// mid-stream repartition and requires the backends to stay byte-identical
// through it.
type Repartitioner interface {
	Repartition() bool
}

// Recoverable is the optional surface of targets that persist a durability
// log: Reopen simulates a crash-restart — recover a fresh instance from the
// target's snapshot plus write-ahead-log tail, without cleanly shutting the
// live one down — and returns the recovered instance. When both builds
// implement it, Differential runs the Recovery battery.
type Recoverable interface {
	Reopen(t *testing.T) index.Index
}

// CacheDropper is the optional surface of targets whose disk-backed block
// cache can be emptied mid-stream (core.ZIndex, wazi.Index, wazi.Sharded).
// When the disk build implements it, Differential runs the ColdCache
// battery: every cached page — and every borrowed view the query kernel
// holds — is invalidated between queries, so zero-copy reads are exercised
// across cache teardown.
type CacheDropper interface {
	DropCaches()
}

// Differential runs the differential conformance suite over two
// constructions of the same index — conventionally buildMem on the
// RAM-resident page store and buildDisk on a disk-resident one. Each
// builder is invoked once per subtest and must produce a fresh instance.
// The disk-backed variant additionally runs the full single-index
// Conformance battery.
func Differential(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	t.Run("Queries", func(t *testing.T) { diffQueries(t, buildMem, buildDisk) })
	t.Run("StatsExactness", func(t *testing.T) { diffStatsExactness(t, buildMem, buildDisk) })
	t.Run("Duplicates", func(t *testing.T) { diffDuplicates(t, buildMem, buildDisk) })
	t.Run("Churn", func(t *testing.T) { diffChurn(t, buildMem, buildDisk) })
	t.Run("Repartition", func(t *testing.T) { diffRepartition(t, buildMem, buildDisk) })
	t.Run("Recovery", func(t *testing.T) { diffRecovery(t, buildMem, buildDisk) })
	t.Run("ColdCache", func(t *testing.T) { diffColdCache(t, buildMem, buildDisk) })
	t.Run("DiskConformance", func(t *testing.T) { Conformance(t, buildDisk) })
}

// diffColdCache interleaves queries (and, when supported, churn) with
// forced cache drops on the disk backend, so every few queries refault
// their pages from file bytes. Results must stay byte-identical to the
// RAM backend and brute force through each invalidation — the battery that
// would catch a borrowed view observing recycled or unmapped bytes.
func diffColdCache(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(4000, 61)
	qs := SkewedQueries(150, 62)
	memIdx := buildMem(pts, qs)
	diskIdx := buildDisk(pts, qs)
	dropper, ok := diskIdx.(CacheDropper)
	if !ok {
		t.Skip("disk build does not support DropCaches")
	}
	memUp, okM := memIdx.(updatable)
	diskUp, okD := diskIdx.(updatable)

	live := append([]geom.Point{}, pts...)
	rng := rand.New(rand.NewSource(63))
	queries := append([]geom.Rect{}, qs[:80]...)
	for i := 0; i < 120; i++ {
		queries = append(queries, randRect(rng))
	}
	ref := index.NewBrute(live)
	for i, r := range queries {
		if i%7 == 0 {
			dropper.DropCaches()
		}
		got := diskIdx.RangeQuery(r)
		same(t, got, ref.RangeQuery(r), "cold-cache disk vs brute "+r.String())
		same(t, got, memIdx.RangeQuery(r), "cold-cache disk vs mem "+r.String())
		// Churn between drops so refaults read post-update bytes, not a
		// stale image the cache would have masked.
		if okM && okD && i%11 == 0 {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			memUp.Insert(p)
			diskUp.Insert(p)
			live = append(live, p)
			j := rng.Intn(len(live))
			q := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if dm, dd := memUp.Delete(q), diskUp.Delete(q); dm != dd || !dm {
				t.Fatalf("cold-cache Delete(%v) diverged: mem %v, disk %v", q, dm, dd)
			}
			ref = index.NewBrute(live)
		}
	}
	StatsParity(t, snapshotStats(memIdx), snapshotStats(diskIdx), "cold-cache battery")
}

// StatsParity asserts the page-access halves of two Stats snapshots are
// identical. Cache counters are excluded: they describe where pages live,
// which is exactly what may differ between backends.
func StatsParity(t *testing.T, mem, disk storage.Stats, ctx string) {
	t.Helper()
	mem.CacheHits, mem.CacheMisses, mem.CacheEvictions = 0, 0, 0
	disk.CacheHits, disk.CacheMisses, disk.CacheEvictions = 0, 0, 0
	if mem != disk {
		t.Fatalf("%s: page-access stats diverge between backends:\n  mem:  %+v\n  disk: %+v", ctx, mem, disk)
	}
}

func snapshotStats(idx index.Index) storage.Stats { return idx.Stats().AtomicSnapshot() }

func diffQueries(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(5000, 21)
	qs := SkewedQueries(200, 22)
	mem := buildMem(pts, qs)
	disk := buildDisk(pts, qs)
	ref := index.NewBrute(pts)

	rng := rand.New(rand.NewSource(23))
	queries := append([]geom.Rect{}, qs[:100]...)
	for i := 0; i < 150; i++ {
		queries = append(queries, randRect(rng))
	}
	queries = append(queries,
		geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},
		geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},
		geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},
	)
	for _, r := range queries {
		got := disk.RangeQuery(r)
		same(t, got, ref.RangeQuery(r), "disk vs brute "+r.String())
		same(t, got, mem.RangeQuery(r), "disk vs mem "+r.String())
	}
	for i := 0; i < len(pts); i += 11 {
		if !disk.PointQuery(pts[i]) || !mem.PointQuery(pts[i]) {
			t.Fatalf("indexed point %v lost by a backend", pts[i])
		}
	}
	StatsParity(t, snapshotStats(mem), snapshotStats(disk), "after query battery")
}

// rangeCounter is the optional counting surface of a differential target.
type rangeCounter interface {
	index.Index
	RangeCount(r geom.Rect) int
}

// diffStatsExactness pins the stats-flushing contract of the query kernel:
// RangeQuery and RangeCount over the same rectangle must produce structurally
// identical per-query stats deltas — same NodesVisited, BBChecked,
// PagesScanned, PointsScanned, LookaheadJumps — because both are defined as
// walks of the same leaf cursor. It also requires every counter to be flushed
// by the time the query returns (no deferred or lost increments), with
// ResultPoints exactly the result size, on both backends.
func diffStatsExactness(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(4000, 91)
	qs := SkewedQueries(120, 92)
	memIdx := buildMem(pts, qs)
	diskIdx := buildDisk(pts, qs)
	mem, okM := memIdx.(rangeCounter)
	disk, okD := diskIdx.(rangeCounter)
	if !okM || !okD {
		t.Skip("index does not support RangeCount")
	}

	rng := rand.New(rand.NewSource(93))
	queries := append([]geom.Rect{}, qs[:60]...)
	for i := 0; i < 80; i++ {
		queries = append(queries, randRect(rng))
	}
	queries = append(queries,
		geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},
		geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},
		geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},
	)
	for _, target := range []struct {
		name string
		idx  rangeCounter
	}{{"mem", mem}, {"disk", disk}} {
		for _, r := range queries {
			before := snapshotStats(target.idx)
			got := target.idx.RangeQuery(r)
			mid := snapshotStats(target.idx)
			n := target.idx.RangeCount(r)
			after := snapshotStats(target.idx)
			if n != len(got) {
				t.Fatalf("%s: RangeCount(%s) = %d, RangeQuery returned %d points",
					target.name, r.String(), n, len(got))
			}
			qd := mid.Diff(before)
			cd := after.Diff(mid)
			if qd.ResultPoints != int64(len(got)) {
				t.Fatalf("%s: RangeQuery(%s) delta.ResultPoints = %d, want %d",
					target.name, r.String(), qd.ResultPoints, len(got))
			}
			// Cache counters may legitimately differ between the two passes
			// (the first warms the block cache for the second); everything
			// else must match counter for counter.
			StatsParity(t, qd, cd, target.name+" RangeQuery vs RangeCount delta "+r.String())
		}
	}
	StatsParity(t, snapshotStats(memIdx), snapshotStats(diskIdx), "after stats-exactness battery")
}

func diffDuplicates(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	// Heavy coincidence: pages beyond any leaf capacity cannot split, so
	// the disk backend must chain continuation slots.
	pts := make([]geom.Point, 900)
	for i := range pts {
		pts[i] = geom.Point{X: 0.25 * float64(i%2), Y: 0.25 * float64(i%3)}
	}
	mem := buildMem(pts, nil)
	disk := buildDisk(pts, nil)
	ref := index.NewBrute(pts)
	for _, r := range []geom.Rect{
		{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1},
		{MinX: 0, MinY: 0, MaxX: 0.2, MaxY: 0.2},
		{MinX: 0.25, MinY: 0.5, MaxX: 0.25, MaxY: 0.5},
	} {
		got := disk.RangeQuery(r)
		same(t, got, ref.RangeQuery(r), "dup disk vs brute")
		same(t, got, mem.RangeQuery(r), "dup disk vs mem")
	}
	StatsParity(t, snapshotStats(mem), snapshotStats(disk), "duplicates")
}

func diffChurn(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(3000, 31)
	qs := SkewedQueries(100, 32)
	memIdx := buildMem(pts, qs)
	diskIdx := buildDisk(pts, qs)
	mem, okM := memIdx.(updatable)
	disk, okD := diskIdx.(updatable)
	if !okM || !okD {
		t.Skip("index does not support insert/delete churn")
	}
	// live tracks the expected multiset; each verification pass gets a
	// fresh brute-force reference built from it.
	live := append([]geom.Point{}, pts...)

	rng := rand.New(rand.NewSource(33))
	check := func(ctx string) {
		t.Helper()
		ref := index.NewBrute(live)
		for i := 0; i < 60; i++ {
			r := randRect(rng)
			got := disk.RangeQuery(r)
			same(t, got, ref.RangeQuery(r), ctx+" disk vs brute")
			same(t, got, mem.RangeQuery(r), ctx+" disk vs mem")
		}
		if mem.Len() != disk.Len() || disk.Len() != len(live) {
			t.Fatalf("%s: Len diverged: mem %d, disk %d, want %d", ctx, mem.Len(), disk.Len(), len(live))
		}
		StatsParity(t, snapshotStats(memIdx), snapshotStats(diskIdx), ctx)
	}

	// Insert waves (forcing page splits), then delete waves (forcing page
	// merges and empty pages), interleaved with verification.
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 700; i++ {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			mem.Insert(p)
			disk.Insert(p)
			live = append(live, p)
		}
		check("after insert wave")
		for i := 0; i < 500; i++ {
			j := rng.Intn(len(live))
			p := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			dm := mem.Delete(p)
			dd := disk.Delete(p)
			if dm != dd {
				t.Fatalf("Delete(%v) diverged: mem %v, disk %v", p, dm, dd)
			}
			if !dm {
				t.Fatalf("Delete(%v) of a live point reported not found", p)
			}
		}
		check("after delete wave")
	}
	// Structural updates (splits/merges) are covered by the StatsParity
	// checks above when the target applies writes in place; layered targets
	// (e.g. Sharded) buffer writes, so a nonzero-splits assertion is left
	// to backend-specific tests.
}

// diffRepartition drives both backends through a mid-stream partition-plan
// migration: identical drifted traffic, identical churn, a repartition in
// the middle, then more churn and a second repartition. At every stage the
// backends must return byte-identical results (to brute force and to each
// other) with page-access stats parity — a live migration must be
// invisible to correctness and deterministic across page stores.
func diffRepartition(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(4000, 71)
	head := SkewedQueries(150, 72)
	memIdx := buildMem(pts, head)
	diskIdx := buildDisk(pts, head)
	mem, okM := memIdx.(Repartitioner)
	disk, okD := diskIdx.(Repartitioner)
	if !okM || !okD {
		t.Skip("index does not support online repartitioning")
	}
	memUp, okM := memIdx.(updatable)
	diskUp, okD := diskIdx.(updatable)
	if !okM || !okD {
		t.Skip("index does not support insert/delete churn")
	}

	live := append([]geom.Point{}, pts...)
	rng := rand.New(rand.NewSource(73))
	check := func(ctx string) {
		t.Helper()
		ref := index.NewBrute(live)
		for i := 0; i < 50; i++ {
			r := randRect(rng)
			got := diskIdx.RangeQuery(r)
			same(t, got, ref.RangeQuery(r), ctx+" disk vs brute")
			same(t, got, memIdx.RangeQuery(r), ctx+" disk vs mem")
		}
		if memIdx.Len() != diskIdx.Len() || diskIdx.Len() != len(live) {
			t.Fatalf("%s: Len diverged: mem %d, disk %d, want %d", ctx, memIdx.Len(), diskIdx.Len(), len(live))
		}
		StatsParity(t, snapshotStats(memIdx), snapshotStats(diskIdx), ctx)
	}
	churn := func(seed int64) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			p := geom.Point{X: r.Float64(), Y: r.Float64()}
			memUp.Insert(p)
			diskUp.Insert(p)
			live = append(live, p)
		}
		for i := 0; i < 250; i++ {
			j := r.Intn(len(live))
			p := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			dm, dd := memUp.Delete(p), diskUp.Delete(p)
			if dm != dd || !dm {
				t.Fatalf("Delete(%v) diverged mid-stream: mem %v, disk %v", p, dm, dd)
			}
		}
	}
	// drift steers both backends' observed-query windows to a new hotspot so
	// the re-learned plan genuinely differs from the build-time one.
	drift := func(seed int64) {
		for _, q := range driftedQueries(600, seed) {
			memIdx.RangeQuery(q)
			diskIdx.RangeQuery(q)
		}
	}

	check("before migration")
	drift(74)
	churn(75)
	check("pre-migration churn")

	rm, rd := mem.Repartition(), disk.Repartition()
	if rm != rd {
		t.Fatalf("mid-stream repartition diverged: mem migrated=%v, disk migrated=%v", rm, rd)
	}
	if !rm {
		t.Fatal("mid-stream repartition declined on both backends; drift traffic did not move the plan")
	}
	check("after first migration")

	churn(76)
	drift(77)
	check("post-migration churn")
	rm, rd = mem.Repartition(), disk.Repartition()
	if rm != rd {
		t.Fatalf("second repartition diverged: mem migrated=%v, disk migrated=%v", rm, rd)
	}
	check("after second migration")
}

// diffRecovery is the recover-vs-never-crashed battery: churn both backends
// through their write-ahead logs — crossing a repartition epoch when the
// target supports it, so the replayed log spans a live migration — then
// crash-restart each via Recoverable.Reopen and require the recovered
// instances to be byte-identical to each other, to the never-crashed live
// instances, and to a brute-force reference over the expected multiset.
func diffRecovery(t *testing.T, buildMem, buildDisk Builder) {
	t.Helper()
	pts := ClusteredPoints(3000, 81)
	qs := SkewedQueries(100, 82)
	memIdx := buildMem(pts, qs)
	diskIdx := buildDisk(pts, qs)
	memRec, okM := memIdx.(Recoverable)
	diskRec, okD := diskIdx.(Recoverable)
	if !okM || !okD {
		t.Skip("index does not support crash-restart recovery")
	}
	memUp, okM := memIdx.(updatable)
	diskUp, okD := diskIdx.(updatable)
	if !okM || !okD {
		t.Skip("index does not support insert/delete churn")
	}

	live := append([]geom.Point{}, pts...)
	churn := func(seed int64) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			p := geom.Point{X: r.Float64(), Y: r.Float64()}
			memUp.Insert(p)
			diskUp.Insert(p)
			live = append(live, p)
		}
		for i := 0; i < 300; i++ {
			j := r.Intn(len(live))
			p := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			dm, dd := memUp.Delete(p), diskUp.Delete(p)
			if dm != dd || !dm {
				t.Fatalf("Delete(%v) diverged pre-recovery: mem %v, disk %v", p, dm, dd)
			}
		}
	}

	churn(84)
	// Cross a repartition epoch mid-log when supported: the replayed tail
	// then spans a live migration, which recovery must be indifferent to
	// (the log carries logical writes, not placement).
	if rm, ok := memIdx.(Repartitioner); ok {
		if rd, ok2 := diskIdx.(Repartitioner); ok2 {
			for _, q := range driftedQueries(600, 85) {
				memIdx.RangeQuery(q)
				diskIdx.RangeQuery(q)
			}
			if rm.Repartition() != rd.Repartition() {
				t.Fatal("pre-recovery repartition diverged between backends")
			}
		}
	}
	churn(86)

	recMem := memRec.Reopen(t)
	recDisk := diskRec.Reopen(t)
	if recMem.Len() != len(live) || recDisk.Len() != len(live) {
		t.Fatalf("recovered Len diverged: mem %d, disk %d, want %d",
			recMem.Len(), recDisk.Len(), len(live))
	}
	ref := index.NewBrute(live)
	rng := rand.New(rand.NewSource(87))
	queries := append([]geom.Rect{}, qs[:50]...)
	for i := 0; i < 60; i++ {
		queries = append(queries, randRect(rng))
	}
	for _, r := range queries {
		got := recDisk.RangeQuery(r)
		same(t, got, ref.RangeQuery(r), "recovered disk vs brute "+r.String())
		same(t, got, recMem.RangeQuery(r), "recovered disk vs recovered mem "+r.String())
		same(t, got, diskIdx.RangeQuery(r), "recovered disk vs never-crashed disk "+r.String())
		same(t, got, memIdx.RangeQuery(r), "recovered disk vs never-crashed mem "+r.String())
	}
}

// driftedQueries is a hotspot workload far from SkewedQueries' hotspots, so
// windows trained on it force a different learned plan.
func driftedQueries(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Rect, n)
	for i := range qs {
		cx := clamp01(0.12 + rng.NormFloat64()*0.04)
		cy := clamp01(0.12 + rng.NormFloat64()*0.04)
		qs[i] = geom.Rect{MinX: cx - 0.02, MinY: cy - 0.02, MaxX: cx + 0.02, MaxY: cy + 0.02}
	}
	return qs
}
