package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed step of a query's execution, offset-stamped relative to
// the trace start so a snapshot is self-contained.
type Span struct {
	// Name identifies the layer and step, e.g. "admission", "batcher",
	// "shard_scan", "pagestore".
	Name string `json:"name"`
	// StartNS is the span's start offset from the trace start.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries small integer attributes (shard id, batch size, pages
	// read, ...).
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// QueryTrace records timed spans as one request flows through the serving
// stack: server admission → read-coalescing batcher → Sharded fan-out →
// per-shard index scan → page-store reads. It is carried via
// context.Context (ContextWithTrace/FromContext) down the HTTP layer and
// handed to the index through View.WithTrace. All methods are nil-safe, so
// un-traced paths pay only a nil check.
type QueryTrace struct {
	mu    sync.Mutex
	op    string
	start time.Time
	total time.Duration
	spans []Span
}

// NewTrace starts a trace for the named operation.
func NewTrace(op string) *QueryTrace {
	return &QueryTrace{op: op, start: time.Now()}
}

// Op returns the traced operation name.
func (t *QueryTrace) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// Start returns the trace start time.
func (t *QueryTrace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// AddSpan records a span that started at start and ran for d. attrs may be
// nil; the map is stored as given and must not be mutated afterwards.
func (t *QueryTrace) AddSpan(name string, start time.Time, d time.Duration, attrs map[string]int64) {
	if t == nil {
		return
	}
	off := start.Sub(t.start)
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, StartNS: int64(off), DurNS: int64(d), Attrs: attrs})
	t.mu.Unlock()
}

// Finish stamps the trace's total duration (measured from its start).
func (t *QueryTrace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = time.Since(t.start)
	t.mu.Unlock()
}

// Total returns the finished total duration (zero before Finish).
func (t *QueryTrace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceSnapshot is an immutable copy of a finished (or in-flight) trace.
type TraceSnapshot struct {
	Op      string    `json:"op"`
	Start   time.Time `json:"start"`
	TotalNS int64     `json:"total_ns"`
	Spans   []Span    `json:"spans"`
}

// Snapshot copies the trace. Safe to call concurrently with AddSpan.
func (t *QueryTrace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		Op:      t.op,
		Start:   t.start,
		TotalNS: int64(t.total),
		Spans:   append([]Span(nil), t.spans...),
	}
}

type traceCtxKey struct{}

// ContextWithTrace attaches t to ctx.
func ContextWithTrace(ctx context.Context, t *QueryTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *QueryTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*QueryTrace)
	return t
}
