package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime samples the Go runtime — heap, GC, goroutines — behind a short
// TTL cache so scrape handlers and gauge funcs can call Sample freely
// without turning every scrape into a ReadMemStats stop-the-world. New GC
// pauses discovered by a sample are fed into a pause-duration histogram.
type Runtime struct {
	mu        sync.Mutex
	ttl       time.Duration
	last      time.Time
	ms        runtime.MemStats
	lastNumGC uint32
	pause     *Histogram
	pauseHook func(time.Duration)
}

// NewRuntime returns a sampler with a 100ms cache TTL.
func NewRuntime() *Runtime {
	return &Runtime{ttl: 100 * time.Millisecond, pause: NewHistogram(DefBuckets())}
}

// PauseHistogram returns the GC pause-duration histogram (seconds).
func (r *Runtime) PauseHistogram() *Histogram { return r.pause }

// SetPauseHook registers fn to be called once per newly observed GC pause,
// in cycle order, from whichever Sample call discovers it. The hook runs
// under the sampler's lock: it must be fast and must not call Sample. The
// server uses it to trip the GC-pause SLO and trigger a profile capture.
func (r *Runtime) SetPauseHook(fn func(time.Duration)) {
	r.mu.Lock()
	r.pauseHook = fn
	r.mu.Unlock()
}

// Sample refreshes the cached MemStats if stale and returns a copy. Newly
// completed GC cycles have their pause durations observed exactly once.
func (r *Runtime) Sample() runtime.MemStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if now.Sub(r.last) < r.ttl && !r.last.IsZero() {
		return r.ms
	}
	runtime.ReadMemStats(&r.ms)
	r.last = now
	// PauseNs is a circular buffer of the last 256 pauses, indexed by
	// (NumGC+255)%256 for the most recent. Feed each cycle finished since
	// the previous sample, at most the buffer's worth.
	from := r.lastNumGC
	if r.ms.NumGC > from+256 {
		from = r.ms.NumGC - 256
	}
	for c := from + 1; c <= r.ms.NumGC; c++ {
		ns := r.ms.PauseNs[(c+255)%256]
		r.pause.Observe(float64(ns) / 1e9)
		if r.pauseHook != nil {
			r.pauseHook(time.Duration(ns))
		}
	}
	r.lastNumGC = r.ms.NumGC
	return r.ms
}

// Register wires the runtime gauges and the GC pause histogram into reg
// under the wazi_go_* namespace.
func (r *Runtime) Register(reg *Registry) {
	reg.GaugeFunc("wazi_go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(r.Sample().HeapAlloc)
	})
	reg.GaugeFunc("wazi_go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", func() float64 {
		return float64(r.Sample().HeapSys)
	})
	reg.GaugeFunc("wazi_go_heap_objects", "Number of allocated heap objects.", func() float64 {
		return float64(r.Sample().HeapObjects)
	})
	reg.GaugeFunc("wazi_go_next_gc_bytes", "Heap size target of the next GC cycle.", func() float64 {
		return float64(r.Sample().NextGC)
	})
	reg.CounterFunc("wazi_go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return float64(r.Sample().NumGC)
	})
	reg.GaugeFunc("wazi_go_goroutines", "Number of live goroutines.", func() float64 {
		r.Sample() // keep the pause histogram fed even if only this gauge is scraped
		return float64(runtime.NumGoroutine())
	})
	reg.RegisterHistogram("wazi_go_gc_pause_seconds", "Stop-the-world GC pause durations.", r.pause)
}
