package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog keeps the most recent slow-query traces in a fixed-size ring.
// A trace qualifies when its total duration reaches the threshold. The ring
// overwrites oldest-first, so under a storm of slow queries the log always
// shows the latest evidence.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []TraceSnapshot
	next      int
	n         int
	recorded  atomic.Int64
}

// NewSlowLog returns a slow-query log holding up to size traces of at least
// threshold total duration. A non-positive size defaults to 128; a zero
// threshold records every finished trace (useful in tests).
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size <= 0 {
		size = 128
	}
	return &SlowLog{threshold: threshold, ring: make([]TraceSnapshot, size)}
}

// Threshold returns the qualifying duration.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Recorded returns the number of traces recorded since start (including
// those since overwritten).
func (l *SlowLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	return l.recorded.Load()
}

// Record stores ts if it qualifies, reporting whether it was kept.
func (l *SlowLog) Record(ts TraceSnapshot) bool {
	if l == nil || time.Duration(ts.TotalNS) < l.threshold {
		return false
	}
	l.mu.Lock()
	l.ring[l.next] = ts
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
	l.recorded.Add(1)
	return true
}

// Snapshot returns the retained traces, newest first.
func (l *SlowLog) Snapshot() []TraceSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceSnapshot, 0, l.n)
	for i := 0; i < l.n; i++ {
		// next-1 is the most recently written slot.
		idx := (l.next - 1 - i + len(l.ring)*2) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
