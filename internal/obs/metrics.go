// Package obs is the repository's dependency-free observability substrate:
// atomic counters and gauges, fixed-bucket latency histograms with quantile
// snapshots, a registry that exports everything in Prometheus text format
// and as a structured JSON snapshot, a per-query trace facility carried via
// context.Context, a ring-buffer slow-query log, and a runtime/GC sampler.
//
// The package deliberately has no dependencies outside the standard library
// so every layer of the index — storage, sharding, serving — can hold
// references to its primitives without import-cycle or vendoring concerns.
// Metrics are plain value objects owned by the layer that updates them; the
// Registry is only a naming and export layer on top, so tests can construct
// and exercise instruments without any global state.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exported value to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (possibly negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe and
// Snapshot. Bucket bounds are immutable after construction; observations
// larger than the highest bound land in an implicit +Inf overflow bucket.
// The zero Histogram is unusable — construct with NewHistogram.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, ascending.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the +Inf overflow bucket.
	counts []atomic.Int64
	count  atomic.Int64
	// sum holds math.Float64bits of the running sum, updated by CAS.
	sum atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// The bounds slice is copied. Passing no bounds yields a histogram that is
// all overflow bucket — still valid for count/sum, useless for quantiles.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DefBuckets returns the default latency buckets in seconds: exponential
// from 1µs to ~8s, factor 2. Suitable for everything from cached page reads
// to cold multi-second scans.
func DefBuckets() []float64 {
	b := make([]float64, 0, 24)
	v := 1e-6
	for i := 0; i < 24; i++ {
		b = append(b, v)
		v *= 2
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v; sort.SearchFloat64s finds the first bound >= v for
	// inclusive upper bounds.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one bucket of a histogram snapshot. Count is the number of
// observations in this bucket alone (not cumulative); the Prometheus
// exporter accumulates when writing.
type Bucket struct {
	// UpperBound is the inclusive upper bound; +Inf for the overflow bucket.
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON encodes the overflow bucket's +Inf bound as the string "+Inf",
// which encoding/json would otherwise reject.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound float64 `json:"le"`
			Count      int64   `json:"count"`
		}{b.UpperBound, b.Count})
	}
	return json.Marshal(struct {
		UpperBound string `json:"le"`
		Count      int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON accepts both the numeric and the "+Inf" string encodings.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound json.RawMessage `json:"le"`
		Count      int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var f float64
	if err := json.Unmarshal(raw.UpperBound, &f); err == nil {
		b.UpperBound = f
		return nil
	}
	var s string
	if err := json.Unmarshal(raw.UpperBound, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf", "Inf", "inf":
		b.UpperBound = math.Inf(1)
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket le %q: %w", s, err)
		}
		b.UpperBound = v
	}
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram with interpolated
// quantiles. A histogram with zero observations snapshots to all zeros.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
}

// Snapshot copies the histogram state. Concurrent Observes may straddle the
// copy; the result is consistent enough for monitoring (bucket sums may
// momentarily disagree with Count by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	bounds := make([]float64, len(h.counts))
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		c := h.counts[i].Load()
		s.Buckets[i] = Bucket{UpperBound: ub, Count: c}
		bounds[i], counts[i] = ub, c
	}
	s.P50 = QuantileFromBuckets(bounds, counts, 0.50)
	s.P95 = QuantileFromBuckets(bounds, counts, 0.95)
	s.P99 = QuantileFromBuckets(bounds, counts, 0.99)
	return s
}

// QuantileFromBuckets estimates the q-quantile (0 < q <= 1) from per-bucket
// counts with linear interpolation inside the containing bucket. bounds and
// counts are parallel, ascending, with the final bound possibly +Inf.
// Observations in the overflow bucket clamp to the highest finite bound
// (there is nothing better to report without the raw values). Zero total
// observations yield 0. The helper is exported so callers holding two bucket
// snapshots can compute windowed quantiles from their difference.
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			ub := bounds[i]
			if math.IsInf(ub, 1) {
				// Overflow bucket: clamp to the highest finite bound.
				if i > 0 {
					return bounds[i-1]
				}
				return 0
			}
			lb := 0.0
			if i > 0 {
				lb = bounds[i-1]
			}
			// Position of the rank inside this bucket, linearly interpolated.
			inBucket := rank - float64(cum-c)
			frac := inBucket / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lb + (ub-lb)*frac
		}
	}
	// Rank beyond all counted observations (racy snapshot): highest finite.
	for i := len(bounds) - 1; i >= 0; i-- {
		if !math.IsInf(bounds[i], 1) {
			return bounds[i]
		}
	}
	return 0
}
