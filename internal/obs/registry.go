package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one constant key=value pair attached to a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Registry names and exports metric instruments. It is only a naming and
// export layer: the instruments themselves are freestanding value objects,
// so layers own and update their metrics directly and the registry walks
// them at scrape time. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byNm map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
	bySig           map[string]*series
}

type series struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	counterFn func() float64
	gaugeFn   func() float64
	hist      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNm: make(map[string]*family)}
}

func (r *Registry) fam(name, help, typ string) *family {
	f := r.byNm[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bySig: make(map[string]*series)}
		r.byNm[name] = f
		r.fams = append(r.fams, f)
	}
	return f
}

func sig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func (f *family) get(labels []Label) (*series, bool) {
	s, ok := f.bySig[sig(labels)]
	return s, ok
}

func (f *family) put(labels []Label, s *series) {
	s.labels = append([]Label(nil), labels...)
	f.bySig[sig(labels)] = s
	f.series = append(f.series, s)
}

// Counter registers (or returns the previously registered) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "counter")
	if s, ok := f.get(labels); ok {
		return s.counter
	}
	s := &series{counter: &Counter{}}
	f.put(labels, s)
	return s.counter
}

// Gauge registers (or returns the previously registered) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "gauge")
	if s, ok := f.get(labels); ok {
		return s.gauge
	}
	s := &series{gauge: &Gauge{}}
	f.put(labels, s)
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for counters that already live elsewhere as atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "counter")
	if _, ok := f.get(labels); ok {
		return
	}
	f.put(labels, &series{counterFn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "gauge")
	if _, ok := f.get(labels); ok {
		return
	}
	f.put(labels, &series{gaugeFn: fn})
}

// Histogram registers (or returns the previously registered) histogram
// series with the given bucket bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "histogram")
	if s, ok := f.get(labels); ok {
		return s.hist
	}
	s := &series{hist: NewHistogram(buckets)}
	f.put(labels, s)
	return s.hist
}

// RegisterHistogram adopts an externally owned histogram into the registry,
// so layers that construct their instruments before a server exists can
// still be scraped. Registering the same name+labels twice is a no-op.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "histogram")
	if _, ok := f.get(labels); ok {
		return
	}
	f.put(labels, &series{hist: h})
}

// MetricSnapshot is one series of a structured registry snapshot.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Labels    []Label            `json:"labels,omitempty"`
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot is a structured point-in-time copy of every registered series,
// JSON-marshalable for /statsz consumers.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Get returns the first series with the given name, or nil.
func (s *Snapshot) Get(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out Snapshot
	for _, f := range r.fams {
		for _, s := range f.series {
			m := MetricSnapshot{Name: f.name, Type: f.typ, Labels: s.labels}
			switch {
			case s.hist != nil:
				hs := s.hist.Snapshot()
				m.Histogram = &hs
			case s.counter != nil:
				m.Value = float64(s.counter.Value())
			case s.gauge != nil:
				m.Value = float64(s.gauge.Value())
			case s.counterFn != nil:
				m.Value = s.counterFn()
			case s.gaugeFn != nil:
				m.Value = s.gaugeFn()
			}
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra, if non-empty, is appended verbatim
// as one more pre-escaped pair (used for the histogram le label).
func labelString(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch {
			case s.hist != nil:
				err = writePromHistogram(w, f.name, s)
			case s.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, ""), s.counter.Value())
			case s.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, ""), s.gauge.Value())
			case s.counterFn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, ""), formatFloat(s.counterFn()))
			case s.gaugeFn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, ""), formatFloat(s.gaugeFn()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s *series) error {
	hs := s.hist.Snapshot()
	var cum int64
	for _, b := range hs.Buckets {
		cum += b.Count
		le := fmt.Sprintf(`le="%s"`, formatFloat(b.UpperBound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.labels, ""), formatFloat(hs.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.labels, ""), hs.Count)
	return err
}

// SortedLabelKeys returns the label keys of a snapshot series in sorted
// order — a convenience for tests and report builders.
func SortedLabelKeys(labels []Label) []string {
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}
	sort.Strings(keys)
	return keys
}
