package obs

import (
	"runtime"
	"testing"
	"time"
)

// TestRuntimePauseRingWraparound pins the PauseNs circular-buffer handling
// in Sample: when more than 256 GC cycles complete between two samples, the
// runtime's ring has wrapped and only the newest 256 pauses still exist —
// the sampler must feed exactly those 256 into the histogram, and later
// samples must feed exactly the cycles completed since, never re-observing
// a pause.
func TestRuntimePauseRingWraparound(t *testing.T) {
	r := NewRuntime()
	r.ttl = 0 // every Sample refreshes, so the test controls the windows

	first := r.Sample()
	fed0 := r.pause.Snapshot().Count

	// Blow past the 256-entry PauseNs ring between samples. runtime.GC runs
	// a full synchronous cycle, so NumGC advances by at least 300 (the
	// background collector may add more).
	for i := 0; i < 300; i++ {
		runtime.GC()
	}
	second := r.Sample()
	if cycles := second.NumGC - first.NumGC; cycles < 300 {
		t.Fatalf("NumGC advanced by %d, want >= 300 forced cycles", cycles)
	}
	fed1 := r.pause.Snapshot().Count
	if got := fed1 - fed0; got != 256 {
		t.Fatalf("wrapped sample fed %d pauses, want exactly 256 (the ring's worth, no more, none twice)", got)
	}

	// The non-wrapping path after a wrap: each subsequent cycle is observed
	// exactly once.
	runtime.GC()
	runtime.GC()
	third := r.Sample()
	fed2 := r.pause.Snapshot().Count
	wantDelta := int64(third.NumGC - second.NumGC)
	if got := fed2 - fed1; got != wantDelta {
		t.Fatalf("post-wrap sample fed %d pauses for %d new cycles; pauses double-counted or dropped", got, wantDelta)
	}
	if wantDelta < 2 {
		t.Fatalf("NumGC advanced by %d after two forced GCs, want >= 2", wantDelta)
	}
}

// TestRuntimePauseHook asserts the pause hook fires once per newly observed
// cycle with the pause duration, including across a ring wraparound, and
// that its call count always matches the histogram feed.
func TestRuntimePauseHook(t *testing.T) {
	r := NewRuntime()
	r.ttl = 0
	var calls int
	var last time.Duration
	r.SetPauseHook(func(d time.Duration) { calls++; last = d })

	before := r.Sample() // hook registered after construction; baseline feed
	base := calls
	runtime.GC()
	after := r.Sample()
	want := int(after.NumGC - before.NumGC)
	if got := calls - base; got != want {
		t.Fatalf("hook fired %d times for %d cycles", got, want)
	}
	if want > 0 && last <= 0 {
		t.Fatalf("hook saw pause %v, want > 0", last)
	}
}
