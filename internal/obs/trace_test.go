package obs

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("range")
	t0 := time.Now()
	tr.AddSpan("admission", t0, time.Millisecond, nil)
	tr.AddSpan("shard_scan", t0.Add(time.Millisecond), 2*time.Millisecond,
		map[string]int64{"shard": 3, "results": 17})
	tr.Finish()
	s := tr.Snapshot()
	if s.Op != "range" || len(s.Spans) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Spans[1].Attrs["shard"] != 3 {
		t.Fatalf("span attrs = %+v", s.Spans[1].Attrs)
	}
	if s.TotalNS <= 0 {
		t.Fatalf("total = %d, want > 0", s.TotalNS)
	}

	ctx := ContextWithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context should be nil")
	}

	// Everything is nil-safe.
	var nt *QueryTrace
	nt.AddSpan("x", time.Now(), 0, nil)
	nt.Finish()
	if nt.Snapshot().Op != "" || nt.Op() != "" || nt.Total() != 0 {
		t.Fatal("nil trace should be inert")
	}
}

func TestTraceConcurrentAddSpan(t *testing.T) {
	tr := NewTrace("range")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddSpan("shard_scan", time.Now(), time.Microsecond, nil)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Snapshot().Spans); n != 800 {
		t.Fatalf("spans = %d, want 800", n)
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Record(TraceSnapshot{Op: "fast", TotalNS: int64(time.Millisecond)}) {
		t.Fatal("fast trace should not qualify")
	}
	for i := 0; i < 5; i++ {
		ts := TraceSnapshot{Op: "slow", TotalNS: int64(time.Second) + int64(i)}
		if !l.Record(ts) {
			t.Fatal("slow trace should qualify")
		}
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	// Newest first: totals 4, 3, 2 (by the +i stamp).
	for i, want := range []int64{4, 3, 2} {
		if got[i].TotalNS != int64(time.Second)+want {
			t.Fatalf("ring[%d] = %d, want second+%d", i, got[i].TotalNS, want)
		}
	}
	if l.Recorded() != 5 {
		t.Fatalf("recorded = %d, want 5", l.Recorded())
	}

	// Zero threshold records everything; nil log is inert.
	all := NewSlowLog(0, 0)
	if !all.Record(TraceSnapshot{}) {
		t.Fatal("zero-threshold log should record everything")
	}
	var nl *SlowLog
	if nl.Record(TraceSnapshot{TotalNS: 1 << 40}) || nl.Snapshot() != nil || nl.Recorded() != 0 {
		t.Fatal("nil slow log should be inert")
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRuntime()
	before := r.Sample()
	runtime.GC()
	r.last = time.Time{} // expire the TTL cache deterministically
	after := r.Sample()
	if after.NumGC <= before.NumGC {
		t.Fatalf("NumGC did not advance: %d -> %d", before.NumGC, after.NumGC)
	}
	if r.PauseHistogram().Count() == 0 {
		t.Fatal("GC pause histogram not fed after a forced GC")
	}

	reg := NewRegistry()
	r.Register(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"wazi_go_heap_alloc_bytes", "wazi_go_goroutines",
		"wazi_go_gc_cycles_total", "wazi_go_gc_pause_seconds",
	} {
		if snap.Get(name) == nil {
			t.Fatalf("runtime metric %s not registered", name)
		}
	}
	if snap.Get("wazi_go_heap_alloc_bytes").Value <= 0 {
		t.Fatal("heap_alloc gauge should be positive")
	}
}
