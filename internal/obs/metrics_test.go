package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Nil receivers are silent no-ops so un-wired layers cost nothing.
	var nc *Counter
	nc.Inc()
	nc.Add(3)
	if nc.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var ng *Gauge
	ng.Set(9)
	if ng.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram(DefBuckets())
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("zero-observation snapshot not all zeros: %+v", s)
	}
	if len(s.Buckets) != len(DefBuckets())+1 {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(DefBuckets())+1)
	}
	if last := s.Buckets[len(s.Buckets)-1]; !math.IsInf(last.UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", last.UpperBound)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(50)  // overflow
	h.Observe(100) // overflow
	h.Observe(0.05)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if got := s.Buckets[2].Count; got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
	if s.Sum != 150.05 {
		t.Fatalf("sum = %v, want 150.05", s.Sum)
	}
	// Quantiles falling in the overflow bucket clamp to the highest finite
	// bound rather than reporting +Inf.
	if s.P95 != 1 || s.P99 != 1 {
		t.Fatalf("overflow quantiles = p95 %v p99 %v, want 1", s.P95, s.P99)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	// Interpolation positions p50 halfway through the bucket.
	if s.P50 <= 1 || s.P50 > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", s.P50)
	}
	if math.Abs(s.P50-1.5) > 0.01 {
		t.Fatalf("p50 = %v, want ~1.5", s.P50)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets())
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		wantSum += float64(g+1) * 1e-6 * per
	}
	if math.Abs(h.Sum()-wantSum) > wantSum*1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	var inBuckets int64
	for _, b := range h.Snapshot().Buckets {
		inBuckets += b.Count
	}
	if inBuckets != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", inBuckets, goroutines*per)
	}
}

func TestObserveSince(t *testing.T) {
	h := NewHistogram(DefBuckets())
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if s := h.Sum(); s < 0.009 || s > 1 {
		t.Fatalf("observed %v, want ~0.01s", s)
	}
	var nh *Histogram
	nh.Observe(1) // nil-safe
	nh.ObserveSince(time.Now())
	if nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	if s := nh.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot should be zero")
	}
}

func TestQuantileFromBucketsWindowed(t *testing.T) {
	// Two snapshots of the same histogram; the delta of their bucket counts
	// yields the quantile of the window in between.
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 10; i++ {
		h.Observe(0.0005)
	}
	before := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	after := h.Snapshot()
	bounds := make([]float64, len(after.Buckets))
	counts := make([]int64, len(after.Buckets))
	for i := range after.Buckets {
		bounds[i] = after.Buckets[i].UpperBound
		counts[i] = after.Buckets[i].Count - before.Buckets[i].Count
	}
	p50 := QuantileFromBuckets(bounds, counts, 0.5)
	if p50 <= 0.01 || p50 > 0.1 {
		t.Fatalf("windowed p50 = %v, want within (0.01,0.1]", p50)
	}
	if QuantileFromBuckets(bounds, []int64{0, 0, 0, 0}, 0.5) != 0 {
		t.Fatal("all-zero counts should yield 0")
	}
}

func TestRegistryReuseAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("wazi_test_total", "help", L("route", "range"))
	c2 := r.Counter("wazi_test_total", "help", L("route", "range"))
	if c1 != c2 {
		t.Fatal("re-registering the same counter series should return the original")
	}
	c3 := r.Counter("wazi_test_total", "help", L("route", "knn"))
	if c1 == c3 {
		t.Fatal("distinct label sets must be distinct series")
	}
	c1.Add(3)
	c3.Add(9)
	g := r.Gauge("wazi_test_gauge", "help")
	g.Set(-5)
	r.GaugeFunc("wazi_test_fn", "help", func() float64 { return 2.5 })
	h := r.Histogram("wazi_test_seconds", "help", DefBuckets())
	h.Observe(0.25)

	snap := r.Snapshot()
	if len(snap.Metrics) != 5 {
		t.Fatalf("snapshot has %d series, want 5", len(snap.Metrics))
	}
	if m := snap.Get("wazi_test_gauge"); m == nil || m.Value != -5 {
		t.Fatalf("gauge snapshot = %+v", snap.Get("wazi_test_gauge"))
	}
	if m := snap.Get("wazi_test_seconds"); m == nil || m.Histogram == nil || m.Histogram.Count != 1 {
		t.Fatalf("histogram snapshot = %+v", snap.Get("wazi_test_seconds"))
	}
}

func TestWritePrometheusParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("wazi_reqs_total", "Requests served.", L("route", "range")).Add(7)
	r.Counter("wazi_reqs_total", "Requests served.", L("route", `we"ird\pa`+"\n"+`th`)).Add(1)
	r.Gauge("wazi_inflight", "In-flight requests.").Set(3)
	h := r.Histogram("wazi_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	fams, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}
	f := fams["wazi_reqs_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("wazi_reqs_total family = %+v", f)
	}
	found := false
	for _, s := range f.Samples {
		if s.Labels["route"] == `we"ird\pa`+"\n"+`th` {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %+v", f.Samples)
	}
	hf := fams["wazi_latency_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hf)
	}
	// Cumulative buckets: le=0.1 → 1, le=1 → 2, le=+Inf → 3, then sum+count.
	var infBucket, count float64
	for _, s := range hf.Samples {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] == "+Inf" {
			infBucket = s.Value
		}
		if strings.HasSuffix(s.Name, "_count") {
			count = s.Value
		}
	}
	if infBucket != 3 || count != 3 {
		t.Fatalf("+Inf bucket = %v, count = %v, want 3, 3", infBucket, count)
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"wazi_x{route=\"a} 1",           // unterminated quote
		"wazi_x notanumber",             // bad value
		"wazi_x{route=a} 1",             // unquoted label
		"2wazi 1",                       // bad metric name
		"# TYPE wazi_x wat\nwazi_x 1",   // unknown type
		"wazi_x 1\n# TYPE wazi_x gauge", // TYPE after samples
	}
	for _, in := range bad {
		if _, err := ParsePromText(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePromText(%q) accepted malformed input", in)
		}
	}
	// Timestamps and untyped samples are legal.
	ok := "wazi_y{a=\"b\"} 2.5 1712345678\nwazi_z 1"
	fams, err := ParsePromText(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParsePromText(%q): %v", ok, err)
	}
	if fams["wazi_y"].Samples[0].Value != 2.5 {
		t.Fatalf("sample value = %v, want 2.5", fams["wazi_y"].Samples[0].Value)
	}
}
