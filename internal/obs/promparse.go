package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line of a Prometheus text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily groups the samples of one metric family, as declared by its
// # TYPE line (histogram families also own their _bucket/_sum/_count
// samples). Samples with no preceding metadata form an untyped family.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParsePromText parses a Prometheus text-format (0.0.4) exposition and
// returns the families keyed by name. It is strict enough to catch the
// failure modes a hand-rolled exporter can produce — malformed label
// quoting, unparsable values, TYPE after samples — which is what the CI
// scrape check and waziload's -metrics-url consumer need.
func ParsePromText(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := familyFor(fams, s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parsePromComment(line string, fams map[string]*PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // plain comment
	}
	switch fields[1] {
	case "HELP":
		f := getFam(fams, fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE line missing type: %q", line)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		f := getFam(fams, fields[2])
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		f.Type = typ
	}
	return nil
}

func getFam(fams map[string]*PromFamily, name string) *PromFamily {
	f := fams[name]
	if f == nil {
		f = &PromFamily{Name: name, Type: "untyped"}
		fams[name] = f
	}
	return f
}

// familyFor attaches a sample to its family: exact name, or — for histogram
// and summary suffixes — the declaring base family.
func familyFor(fams map[string]*PromFamily, sample string) *PromFamily {
	if f, ok := fams[sample]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return getFam(fams, sample)
}

func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		s.Labels, rest, err = parsePromLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimSpace(rest)
	// An optional timestamp may follow the value.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		ts := strings.TrimSpace(rest[j:])
		rest = rest[:j]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("malformed timestamp %q", ts)
		}
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parsePromValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed value %q", tok)
	}
	return v, nil
}

// parsePromLabels parses a {k="v",...} block, returning the labels and the
// unconsumed tail of the line.
func parsePromLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := i
		for j < len(in) && in[j] != '=' {
			j++
		}
		if j >= len(in) {
			return nil, "", fmt.Errorf("unterminated label block %q", in)
		}
		key := strings.TrimSpace(in[i:j])
		if !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		j++ // past '='
		if j >= len(in) || in[j] != '"' {
			return nil, "", fmt.Errorf("label value of %s not quoted", key)
		}
		j++
		var b strings.Builder
		for {
			if j >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value for %s", key)
			}
			c := in[j]
			if c == '\\' {
				if j+1 >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in label value for %s", key)
				}
				switch in[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label value for %s", in[j+1], key)
				}
				j += 2
				continue
			}
			if c == '"' {
				j++
				break
			}
			b.WriteByte(c)
			j++
		}
		labels[key] = b.String()
		i = j
	}
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
