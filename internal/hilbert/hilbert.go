// Package hilbert implements the Hilbert space-filling curve on a 2^order ×
// 2^order grid. The Hilbert curve visits every grid cell exactly once while
// preserving locality better than the Z-order curve; it is the substrate for
// the HRR baseline (Hilbert-packed R-tree) evaluated in Figure 4 of the
// paper.
package hilbert

// Curve describes a Hilbert curve of a given order: a bijection between
// grid coordinates in [0, 2^order)² and curve positions in [0, 4^order).
type Curve struct {
	order uint // number of recursion levels; side = 1<<order
}

// New returns a Hilbert curve of the given order. Order must be in (0, 32].
func New(order uint) Curve {
	if order == 0 || order > 32 {
		panic("hilbert: order out of range (0, 32]")
	}
	return Curve{order: order}
}

// Order returns the curve order.
func (c Curve) Order() uint { return c.order }

// Side returns the grid side length 2^order.
func (c Curve) Side() uint32 {
	if c.order >= 32 {
		return 0 // 2^32 does not fit; callers use Side()==0 to mean full range
	}
	return 1 << c.order
}

// Pos returns the curve position of grid cell (x, y) using the standard
// iterative rotation algorithm. Coordinates outside the grid are clamped.
func (c Curve) Pos(x, y uint32) uint64 {
	if c.order < 32 {
		max := uint32(1)<<c.order - 1
		if x > max {
			x = max
		}
		if y > max {
			y = max
		}
	}
	var d uint64
	for s := uint32(1) << (c.order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// XY returns the grid cell at curve position d. It is the inverse of Pos.
func (c Curve) XY(d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<c.order && s != 0; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips the quadrant-local coordinates per the Hilbert
// recursion.
func rot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
