package hilbert

import (
	"math/rand"
	"testing"
)

func TestRoundTripSmallOrders(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		c := New(order)
		side := uint64(1) << order
		seen := make(map[uint64]bool)
		for x := uint64(0); x < side; x++ {
			for y := uint64(0); y < side; y++ {
				d := c.Pos(uint32(x), uint32(y))
				if d >= side*side {
					t.Fatalf("order %d: Pos(%d,%d)=%d out of range", order, x, y, d)
				}
				if seen[d] {
					t.Fatalf("order %d: duplicate position %d", order, d)
				}
				seen[d] = true
				gx, gy := c.XY(d)
				if uint64(gx) != x || uint64(gy) != y {
					t.Fatalf("order %d: XY(Pos(%d,%d)) = (%d,%d)", order, x, y, gx, gy)
				}
			}
		}
		if uint64(len(seen)) != side*side {
			t.Fatalf("order %d: %d positions, want %d", order, len(seen), side*side)
		}
	}
}

func TestRoundTripLargeOrderRandom(t *testing.T) {
	c := New(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		x := rng.Uint32() % (1 << 16)
		y := rng.Uint32() % (1 << 16)
		gx, gy := c.XY(c.Pos(x, y))
		if gx != x || gy != y {
			t.Fatalf("roundtrip failed for (%d, %d): got (%d, %d)", x, y, gx, gy)
		}
	}
}

// The defining locality property of the Hilbert curve: consecutive curve
// positions are grid neighbours (Manhattan distance exactly 1).
func TestCurveContinuity(t *testing.T) {
	c := New(5)
	side := uint64(1) << 5
	px, py := c.XY(0)
	for d := uint64(1); d < side*side; d++ {
		x, y := c.XY(d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("positions %d and %d are distance %d apart", d-1, d, dist)
		}
		px, py = x, y
	}
}

func TestClamping(t *testing.T) {
	c := New(4)
	max := uint32(15)
	if c.Pos(1000, 1000) != c.Pos(max, max) {
		t.Error("out-of-grid coordinates should clamp to the grid edge")
	}
}

func TestNewPanicsOnBadOrder(t *testing.T) {
	for _, order := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", order)
				}
			}()
			New(order)
		}()
	}
}

func TestSideAndOrder(t *testing.T) {
	c := New(8)
	if c.Order() != 8 {
		t.Errorf("Order = %d", c.Order())
	}
	if c.Side() != 256 {
		t.Errorf("Side = %d", c.Side())
	}
	if New(32).Side() != 0 {
		t.Error("order-32 side should report 0 (full uint32 range)")
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func BenchmarkPos(b *testing.B) {
	c := New(16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = c.Pos(uint32(i)&0xFFFF, uint32(i>>8)&0xFFFF)
	}
	_ = sink
}
