package quilts

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, qs []geom.Rect) index.Index {
		return Build(pts, qs)
	})
}

func TestCandidatesAreValidPatterns(t *testing.T) {
	for i, p := range Candidates() {
		if p.XBits() != BitsPerDim || p.YBits() != BitsPerDim {
			t.Errorf("candidate %d has %d/%d bits", i, p.XBits(), p.YBits())
		}
		// Monotone roundtrip sanity on a few coordinates.
		for _, v := range []uint32{0, 1, 255, 1<<BitsPerDim - 1} {
			x, y := p.Decode(p.Encode(v, v))
			if x != v || y != v {
				t.Fatalf("candidate %d roundtrip failed for %d: (%d, %d)", i, v, x, y)
			}
		}
	}
}

func TestPatternSelectionRespondsToWorkloadShape(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	tall := make([]geom.Rect, 60)
	wide := make([]geom.Rect, 60)
	for i := range tall {
		c := 0.1 + float64(i)*0.012
		tall[i] = geom.Rect{MinX: c, MinY: 0.05, MaxX: c + 0.003, MaxY: 0.95}
		wide[i] = geom.Rect{MinX: 0.05, MinY: c, MaxX: 0.95, MaxY: c + 0.003}
	}
	pt := Build(pts, tall).Pattern()
	pw := Build(pts, wide).Pattern()
	// The two workload shapes should not select identical patterns unless
	// the standard curve beats both specialized families.
	_ = pt
	_ = pw
	// At minimum, selection must be deterministic.
	if got := Build(pts, tall).Pattern(); got.Bits() != pt.Bits() {
		t.Error("pattern selection not deterministic")
	}
}

func TestEmptyWorkloadFallsBackToAlternating(t *testing.T) {
	pts := indextest.ClusteredPoints(1000, 2)
	idx := Build(pts, nil)
	if idx.Pattern().Bits() != 2*BitsPerDim {
		t.Errorf("fallback pattern has %d bits", idx.Pattern().Bits())
	}
}
