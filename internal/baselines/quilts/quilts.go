// Package quilts implements the QUILTS baseline of the paper's Figure 4
// (Nishimura & Yokota, SIGMOD 2017): a query-aware choice of bit-merge
// space-filling curve. Construction scores a family of candidate monotone
// bit-interleaving patterns on a sample of the anticipated workload — the
// cost of a pattern is the number of sampled points falling between the
// curve keys of each query's corners, i.e. the scan length — and keeps the
// cheapest. Queries then run on a rank-space sorted key array with
// generalized BIGMIN skipping.
package quilts

import (
	"sort"

	"github.com/wazi-index/wazi/internal/baselines/sfcarr"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/rankspace"
	"github.com/wazi-index/wazi/internal/zorder"
)

// BitsPerDim is the per-dimension curve resolution. Rank coordinates are
// down-scaled to this grid before encoding.
const BitsPerDim = 16

// Index is a QUILTS index.
type Index struct {
	*sfcarr.Index
	pattern zorder.Pattern
}

// Build selects the cheapest candidate pattern for the workload and builds
// the key array under it. An empty workload falls back to the standard
// alternating pattern.
func Build(pts []geom.Point, queries []geom.Rect) *Index {
	pattern := choosePattern(pts, queries)
	enc := scaledEncoder{p: pattern, shift: rankShift(len(pts))}
	core := sfcarr.Build(pts, enc, func(keys []zorder.Key) sfcarr.Locator {
		return newSampled(keys, 64)
	})
	return &Index{Index: core, pattern: pattern}
}

// Pattern returns the selected curve pattern.
func (x *Index) Pattern() zorder.Pattern { return x.pattern }

// rankShift returns how far ranks must shift right to fit BitsPerDim bits.
func rankShift(n int) uint {
	s := uint(0)
	for n>>s > 1<<BitsPerDim {
		s++
	}
	return s
}

// scaledEncoder adapts a Pattern to full-resolution ranks by down-scaling.
// The coarser grid only loosens InRect (the geometric re-check in sfcarr
// filters boundary cells), never produces false negatives, and keeps
// monotonicity.
type scaledEncoder struct {
	p     zorder.Pattern
	shift uint
}

// Encode, BigMin, and InRect implement the sfcarr encoder by delegating
// to the underlying pattern on grid-shifted coordinates.
func (e scaledEncoder) Encode(x, y uint32) zorder.Key {
	return e.p.Encode(x>>e.shift, y>>e.shift)
}

func (e scaledEncoder) BigMin(cur, zmin, zmax zorder.Key) (zorder.Key, bool) {
	return e.p.BigMin(cur, zmin, zmax)
}

func (e scaledEncoder) InRect(k zorder.Key, minX, minY, maxX, maxY uint32) bool {
	return e.p.InRect(k, minX>>e.shift, minY>>e.shift, maxX>>e.shift, maxY>>e.shift)
}

// Candidates returns the candidate pattern family: the standard alternating
// curve plus patterns that front-load a run of one dimension's bits —
// QUILTS's mechanism for matching the dominant query aspect.
func Candidates() []zorder.Pattern {
	var out []zorder.Pattern
	out = append(out, zorder.Alternating(BitsPerDim))
	for _, run := range []int{2, 4, 8} {
		for dim := uint8(0); dim <= 1; dim++ {
			out = append(out, runPattern(dim, run))
		}
	}
	return out
}

// runPattern front-loads run bits of dim, then alternates the remainder
// starting with the other dimension.
func runPattern(dim uint8, run int) zorder.Pattern {
	var dims []uint8
	used := [2]int{}
	for i := 0; i < run; i++ {
		dims = append(dims, dim)
		used[dim]++
	}
	turn := 1 - dim
	for len(dims) < 2*BitsPerDim {
		if used[turn] < BitsPerDim {
			dims = append(dims, turn)
			used[turn]++
		}
		turn = 1 - turn
		if used[0] == BitsPerDim {
			turn = 1
		}
		if used[1] == BitsPerDim {
			turn = 0
		}
	}
	return zorder.NewPattern(dims)
}

// choosePattern scores candidates on a sample: the cost of a pattern is the
// total number of sampled keys lying between each query's corner keys — the
// length of the scan interval a curve index would traverse.
func choosePattern(pts []geom.Point, queries []geom.Rect) zorder.Pattern {
	cands := Candidates()
	if len(queries) == 0 || len(pts) == 0 {
		return cands[0]
	}
	sampleQ := queries
	if len(sampleQ) > 100 {
		sampleQ = sampleQ[:100]
	}
	sampleP := pts
	if len(sampleP) > 20000 {
		sampleP = sampleP[:20000]
	}
	m := rankspace.New(sampleP)
	shift := rankShift(len(sampleP))
	best := cands[0]
	bestCost := int64(-1)
	for _, p := range cands {
		keys := make([]uint64, len(sampleP))
		for i, pt := range sampleP {
			keys[i] = uint64(p.Encode(m.RankX(pt.X)>>shift, m.RankY(pt.Y)>>shift))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var cost int64
		for _, q := range sampleQ {
			rx0, rx1, okx := m.RangeX(q.MinX, q.MaxX)
			ry0, ry1, oky := m.RangeY(q.MinY, q.MaxY)
			if !okx || !oky {
				continue
			}
			zmin := uint64(p.Encode(rx0>>shift, ry0>>shift))
			zmax := uint64(p.Encode(rx1>>shift, ry1>>shift))
			lo := sort.Search(len(keys), func(i int) bool { return keys[i] >= zmin })
			hi := sort.Search(len(keys), func(i int) bool { return keys[i] > zmax })
			cost += int64(hi - lo)
		}
		if bestCost < 0 || cost < bestCost {
			bestCost, best = cost, p
		}
	}
	return best
}

// sampled is a key directory sampling every strideth key: a flat B-tree
// top level providing search windows.
type sampled struct {
	samples []zorder.Key
	stride  int
	n       int
}

func newSampled(keys []zorder.Key, stride int) *sampled {
	s := &sampled{stride: stride, n: len(keys)}
	for i := 0; i < len(keys); i += stride {
		s.samples = append(s.samples, keys[i])
	}
	return s
}

// Window brackets the lower bound of k between two directory entries.
func (s *sampled) Window(k zorder.Key) (int, int) {
	if len(s.samples) == 0 {
		return 0, 0
	}
	i := sort.Search(len(s.samples), func(j int) bool { return s.samples[j] >= k })
	lo := (i - 1) * s.stride
	hi := i*s.stride + s.stride
	if lo < 0 {
		lo = 0
	}
	if hi >= s.n {
		hi = s.n - 1
	}
	return lo, hi
}

// Bytes returns the directory footprint.
func (s *sampled) Bytes() int64 { return int64(len(s.samples)) * 8 }
