// Package rsmi implements a simplified RSMI baseline (Qi et al., VLDB 2020)
// for the paper's Figure 4: points linearized by rank-space Z-order and
// indexed by a two-level learned model — a root linear model routing keys
// to second-level linear models, each predicting array positions with a
// tracked maximum error. The original uses neural networks; under this
// repository's stdlib-only constraint the models are least-squares linear
// fits, which preserves the qualitative finding (rank-space SFC indexes are
// outclassed by the layout-optimizing indexes).
package rsmi

import (
	"github.com/wazi-index/wazi/internal/baselines/sfcarr"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/zorder"
)

// DefaultLeafModelSize is the average number of keys per second-level model.
const DefaultLeafModelSize = 2048

// Index is a simplified RSMI.
type Index struct {
	*sfcarr.Index
}

// Build constructs the index. leafModelSize <= 0 selects the default.
func Build(pts []geom.Point, leafModelSize int) *Index {
	if leafModelSize <= 0 {
		leafModelSize = DefaultLeafModelSize
	}
	core := sfcarr.Build(pts, sfcarr.StdZ{}, func(keys []zorder.Key) sfcarr.Locator {
		return newRMI(keys, leafModelSize)
	})
	return &Index{core}
}

// rmi is the two-level learned model: a root linear router over the key
// range and per-leaf least-squares linear position models with tracked
// maximum error.
type rmi struct {
	rootSlope, rootBias float64
	leaves              []leafModel
	n                   int
}

// leafModel predicts position ≈ slope·(key − origin) + bias for the keys
// routed to it; maxErr bounds the absolute prediction error over them.
type leafModel struct {
	origin      float64
	slope, bias float64
	maxErr      int
	startPos    int
}

func newRMI(keys []zorder.Key, leafSize int) *rmi {
	m := &rmi{n: len(keys)}
	if len(keys) == 0 {
		m.leaves = []leafModel{{}}
		return m
	}
	nLeaves := (len(keys) + leafSize - 1) / leafSize
	span := float64(keys[len(keys)-1] - keys[0])
	if span <= 0 {
		span = 1
	}
	m.rootSlope = float64(nLeaves) / span
	m.rootBias = -m.rootSlope * float64(keys[0])
	m.leaves = make([]leafModel, nLeaves)

	assign := make([][]int, nLeaves)
	for i, k := range keys {
		l := m.route(k)
		assign[l] = append(assign[l], i)
	}
	for l, idx := range assign {
		m.leaves[l] = fitLeaf(keys, idx)
	}
	// Give empty leaves the position of the next non-empty one so routed
	// lookups land in a sane window.
	next := len(keys)
	for l := nLeaves - 1; l >= 0; l-- {
		if len(assign[l]) == 0 {
			m.leaves[l].startPos = next
			m.leaves[l].bias = float64(next)
		} else {
			next = assign[l][0]
		}
	}
	return m
}

func (m *rmi) route(k zorder.Key) int {
	l := int(m.rootSlope*float64(k) + m.rootBias)
	if l < 0 {
		l = 0
	}
	if l >= len(m.leaves) {
		l = len(m.leaves) - 1
	}
	return l
}

// fitLeaf least-squares fits position over (key − origin) for the assigned
// indices and records the maximum absolute error of the integer prediction.
func fitLeaf(keys []zorder.Key, idx []int) leafModel {
	if len(idx) == 0 {
		return leafModel{}
	}
	lm := leafModel{origin: float64(keys[idx[0]]), startPos: idx[0]}
	if len(idx) == 1 {
		lm.bias = float64(idx[0])
		return lm
	}
	var sx, sy, sxx, sxy float64
	for _, i := range idx {
		x := float64(keys[i]) - lm.origin
		y := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(idx))
	if den := n*sxx - sx*sx; den != 0 {
		lm.slope = (n*sxy - sx*sy) / den
	}
	lm.bias = (sy - lm.slope*sx) / n
	for _, i := range idx {
		pred := int(lm.slope*(float64(keys[i])-lm.origin) + lm.bias)
		err := i - pred
		if err < 0 {
			err = -err
		}
		if err > lm.maxErr {
			lm.maxErr = err
		}
	}
	return lm
}

// Window brackets the lower-bound position of k. Keys routed to the same
// leaf are within ±maxErr of the leaf's prediction; keys outside the leaf's
// fitted range still get a sound starting window because sfcarr widens
// windows that fail to bracket.
func (m *rmi) Window(k zorder.Key) (int, int) {
	if m.n == 0 {
		return 0, 0
	}
	lm := m.leaves[m.route(k)]
	pred := int(lm.slope*(float64(k)-lm.origin) + lm.bias)
	return pred - lm.maxErr - 1, pred + lm.maxErr + 1
}

// Bytes returns the model footprint.
func (m *rmi) Bytes() int64 { return 16 + int64(len(m.leaves))*48 }
