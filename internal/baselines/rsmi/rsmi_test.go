package rsmi

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/zorder"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, 0)
	})
}

func TestConformanceSmallModels(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, 128)
	})
}

func TestRMIWindowSoundness(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	idx := Build(pts, 512)
	keys := idx.Keys()
	m := newRMI(keys, 512)
	for i := 0; i < len(keys); i += 101 {
		lo, hi := m.Window(keys[i])
		truth := i
		for truth > 0 && keys[truth-1] == keys[i] {
			truth--
		}
		if truth < lo || truth > hi {
			t.Fatalf("window [%d, %d] misses true lower bound %d", lo, hi, truth)
		}
	}
}

func TestRMIEmpty(t *testing.T) {
	m := newRMI(nil, 128)
	lo, hi := m.Window(zorder.Key(7))
	if lo != 0 || hi != 0 {
		t.Errorf("empty RMI window = [%d, %d]", lo, hi)
	}
}
