// Package qdgr implements the greedy Qd-tree variant (Qd-Gr) the paper uses
// in Figure 4 (Yang et al., SIGMOD 2020, greedy construction in place of
// the RL variant): a binary space-partitioning tree whose cut candidates
// are the predicate boundaries of the anticipated workload queries, chosen
// greedily to minimize the expected number of points scanned under a
// block-level access model (a query reads every block it overlaps in full,
// matching Qd-tree's disk orientation — and the unbalanced, disk-tailored
// layouts the paper remarks upon).
package qdgr

import (
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Tree is a greedy Qd-tree.
type Tree struct {
	root  *node
	count int
	stats storage.Stats
}

type node struct {
	region geom.Rect
	// internal
	axis  int // 0: cut on x, 1: cut on y
	value float64
	left  *node // points strictly below value on axis
	right *node
	// leaf
	page storage.Page
}

// Options configure construction.
type Options struct {
	// MinBlock is the minimum points per block (b in the Qd-tree paper).
	// Default 256.
	MinBlock int
	// MaxCuts bounds the candidate cuts evaluated per node. Default 64.
	MaxCuts int
}

func (o *Options) fill() {
	if o.MinBlock <= 0 {
		o.MinBlock = 256
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 64
	}
}

// Build greedily partitions pts for the workload.
func Build(pts []geom.Point, queries []geom.Rect, opts Options) *Tree {
	opts.fill()
	t := &Tree{count: len(pts)}
	if len(pts) == 0 {
		return t
	}
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	t.root = build(own, geom.RectFromPoints(own), queries, opts)
	return t
}

func build(pts []geom.Point, region geom.Rect, queries []geom.Rect, opts Options) *node {
	n := &node{region: region}
	if len(pts) < 2*opts.MinBlock {
		n.page = storage.Page{Pts: pts}
		return n
	}
	axis, value, ok := chooseCut(pts, region, queries, opts)
	if !ok {
		n.page = storage.Page{Pts: pts}
		return n
	}
	n.axis, n.value = axis, value
	var lp, rp []geom.Point
	for _, p := range pts {
		if coord(p, axis) < value {
			lp = append(lp, p)
		} else {
			rp = append(rp, p)
		}
	}
	lr, rr := region, region
	if axis == 0 {
		lr.MaxX, rr.MinX = value, value
	} else {
		lr.MaxY, rr.MinY = value, value
	}
	n.left = build(lp, lr, clip(queries, lr), opts)
	n.right = build(rp, rr, clip(queries, rr), opts)
	return n
}

// chooseCut evaluates candidate cuts drawn from the workload's predicate
// boundaries and returns the one minimizing the block-model scan cost. ok
// is false when no cut both respects the minimum block size and improves on
// not cutting.
func chooseCut(pts []geom.Point, region geom.Rect, queries []geom.Rect, opts Options) (int, float64, bool) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	sort.Float64s(xs)
	sort.Float64s(ys)

	type cut struct {
		axis  int
		value float64
	}
	var cands []cut
	add := func(axis int, v, lo, hi float64) {
		if v > lo && v < hi {
			cands = append(cands, cut{axis, v})
		}
	}
	for _, q := range queries {
		add(0, q.MinX, region.MinX, region.MaxX)
		add(0, q.MaxX, region.MinX, region.MaxX)
		add(1, q.MinY, region.MinY, region.MaxY)
		add(1, q.MaxY, region.MinY, region.MaxY)
		if len(cands) >= 4*opts.MaxCuts {
			break
		}
	}
	if len(cands) > opts.MaxCuts {
		// Deterministic thinning: keep an evenly spaced subset.
		step := len(cands) / opts.MaxCuts
		thin := make([]cut, 0, opts.MaxCuts)
		for i := 0; i < len(cands); i += step {
			thin = append(thin, cands[i])
		}
		cands = thin
	}
	// Cost without cutting: every query overlapping the region reads the
	// whole block.
	noCut := int64(len(queries)) * int64(len(pts))
	bestCost := noCut
	var best cut
	found := false
	for _, c := range cands {
		sorted := xs
		if c.axis == 1 {
			sorted = ys
		}
		nl := sort.SearchFloat64s(sorted, c.value)
		nr := len(pts) - nl
		if nl < opts.MinBlock || nr < opts.MinBlock {
			continue
		}
		var cost int64
		for _, q := range queries {
			qLo, qHi := q.MinX, q.MaxX
			if c.axis == 1 {
				qLo, qHi = q.MinY, q.MaxY
			}
			if qLo < c.value {
				cost += int64(nl)
			}
			if qHi >= c.value {
				cost += int64(nr)
			}
		}
		if cost < bestCost {
			bestCost, best, found = cost, c, true
		}
	}
	return best.axis, best.value, found
}

func coord(p geom.Point, axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

func clip(queries []geom.Rect, region geom.Rect) []geom.Rect {
	out := make([]geom.Rect, 0, len(queries))
	for _, q := range queries {
		if c := q.Intersect(region); c.Valid() {
			out = append(out, c)
		}
	}
	return out
}

// RangeQuery returns all points inside r.
func (t *Tree) RangeQuery(r geom.Rect) []geom.Point {
	t.stats.RangeQueries++
	var out []geom.Point
	if t.root != nil && t.root.region.Intersects(r) {
		out = t.search(t.root, r, out)
	}
	t.stats.ResultPoints += int64(len(out))
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out []geom.Point) []geom.Point {
	if n.left == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Filter(r, out)
	}
	t.stats.NodesVisited++
	lo, hi := r.MinX, r.MaxX
	if n.axis == 1 {
		lo, hi = r.MinY, r.MaxY
	}
	if lo < n.value {
		out = t.search(n.left, r, out)
	}
	if hi >= n.value {
		out = t.search(n.right, r, out)
	}
	return out
}

// PointQuery reports whether p is indexed.
func (t *Tree) PointQuery(p geom.Point) bool {
	t.stats.PointQueries++
	n := t.root
	if n == nil || !n.region.Contains(p) {
		return false
	}
	for n.left != nil {
		t.stats.NodesVisited++
		if coord(p, n.axis) < n.value {
			n = n.left
		} else {
			n = n.right
		}
	}
	t.stats.PagesScanned++
	t.stats.PointsScanned += int64(n.page.Len())
	return n.page.Contains(p)
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// Bytes returns the approximate footprint.
func (t *Tree) Bytes() int64 { return nodeBytes(t.root) }

func nodeBytes(n *node) int64 {
	if n == nil {
		return 0
	}
	b := int64(32 + 8 + 8 + 16)
	if n.left == nil {
		return b + n.page.Bytes()
	}
	return b + nodeBytes(n.left) + nodeBytes(n.right)
}

// Stats returns the counters.
func (t *Tree) Stats() *storage.Stats { return &t.stats }
