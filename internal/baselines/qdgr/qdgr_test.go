package qdgr

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, qs []geom.Rect) index.Index {
		return Build(pts, qs, Options{MinBlock: 64})
	})
}

func TestWorkloadCutsReduceScans(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	qs := indextest.SkewedQueries(200, 2)
	workloadAware := Build(pts, qs, Options{MinBlock: 128})
	oblivious := Build(pts, nil, Options{MinBlock: 128})
	wb, ob := *workloadAware.Stats(), *oblivious.Stats()
	probe := indextest.SkewedQueries(100, 3)
	for _, r := range probe {
		workloadAware.RangeQuery(r)
		oblivious.RangeQuery(r)
	}
	ws := workloadAware.Stats().Diff(wb).PointsScanned
	os := oblivious.Stats().Diff(ob).PointsScanned
	if ws >= os {
		t.Errorf("workload-aware qd-tree scanned %d, oblivious %d", ws, os)
	}
}

func TestEmptyBuild(t *testing.T) {
	tr := Build(nil, nil, Options{})
	if tr.Len() != 0 || tr.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty tree misbehaves")
	}
}
