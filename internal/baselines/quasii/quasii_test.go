package quasii

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, qs []geom.Rect) index.Index {
		return Build(pts, qs)
	})
}

func TestConvergenceCracksLayout(t *testing.T) {
	pts := indextest.ClusteredPoints(10000, 1)
	qs := indextest.SkewedQueries(300, 2)
	idx := Build(pts, qs)
	xp, yp := idx.Pieces()
	if xp < 10 || yp < 50 {
		t.Errorf("converged index barely cracked: %d x-pieces, %d y-pieces", xp, yp)
	}
	// A converged index should answer workload-distributed queries with far
	// fewer point touches than a fresh one.
	fresh := Build(pts, nil)
	iBefore, fBefore := *idx.Stats(), *fresh.Stats()
	probe := indextest.SkewedQueries(100, 3)
	for _, r := range probe {
		idx.RangeQuery(r)
		fresh.RangeQuery(r)
	}
	is := idx.Stats().Diff(iBefore).PointsScanned
	fs := fresh.Stats().Diff(fBefore).PointsScanned
	if is >= fs {
		t.Errorf("converged index scanned %d points, fresh scanned %d", is, fs)
	}
}

func TestCrackingIsIncremental(t *testing.T) {
	pts := indextest.ClusteredPoints(5000, 4)
	idx := Build(pts, nil)
	r := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.5, MaxY: 0.5}
	first := *idx.Stats()
	idx.RangeQuery(r)
	cost1 := idx.Stats().Diff(first).PointsScanned
	second := *idx.Stats()
	idx.RangeQuery(r)
	cost2 := idx.Stats().Diff(second).PointsScanned
	if cost2 >= cost1 {
		t.Errorf("repeat query should be cheaper after cracking: %d then %d", cost1, cost2)
	}
}

func TestEmptyBuild(t *testing.T) {
	idx := Build(nil, nil)
	if idx.Len() != 0 || idx.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty index misbehaves")
	}
	if got := idx.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); len(got) != 0 {
		t.Error("empty index returned points")
	}
}
