// Package quasii implements QUASII (Pavlovic et al., EDBT 2018), the
// query-aware spatial incremental index baseline: a two-level cracking
// index that refines its physical data layout as a side effect of query
// processing. The first level cracks the point array on query x-bounds;
// within each x-piece, a second level cracks on y-bounds. A range query
// over a fully cracked region returns whole pieces without filtering.
//
// As in the paper's evaluation (§6.1), Build returns a *converged* index:
// the anticipated workload is replayed once during construction so the
// layout has fully adapted before measurement. Evaluation queries may still
// crack further (that is QUASII's nature) — on a converged index they
// mostly traverse existing pieces.
package quasii

import (
	"time"

	"math"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Index is a two-level cracking index.
type Index struct {
	pts   []geom.Point // the cracked array, reordered in place
	xp    []xpiece
	stats storage.Stats
}

// xpiece is a first-level piece: a contiguous array segment whose points'
// x-coordinates all lie in [lo, hi).
type xpiece struct {
	lo, hi     float64
	start, end int
	yp         []ypiece
}

// ypiece is a second-level piece within an xpiece, pure in y.
type ypiece struct {
	lo, hi     float64
	start, end int
}

// Build copies pts and converges the index on the given workload.
func Build(pts []geom.Point, converge []geom.Rect) *Index {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	idx := &Index{pts: own}
	if len(own) > 0 {
		idx.xp = []xpiece{{
			lo: math.Inf(-1), hi: math.Inf(1),
			start: 0, end: len(own),
			yp: []ypiece{{lo: math.Inf(-1), hi: math.Inf(1), start: 0, end: len(own)}},
		}}
	}
	for _, q := range converge {
		idx.collect(q, nil)
	}
	// Convergence work should not pollute measurement counters.
	idx.stats.Reset()
	return idx
}

// RangeQuery returns all points inside r, cracking the layout as a side
// effect.
func (x *Index) RangeQuery(r geom.Rect) []geom.Point {
	x.stats.RangeQueries++
	out := x.collect(r, nil)
	x.stats.ResultPoints += int64(len(out))
	return out
}

// collect cracks on r's bounds and gathers the points of all fully
// contained pieces.
func (x *Index) collect(r geom.Rect, out []geom.Point) []geom.Point {
	if len(x.pts) == 0 || !r.Valid() {
		return out
	}
	a, b := r.MinX, nextUp(r.MaxX)
	x.crackX(a)
	x.crackX(b)
	c, d := r.MinY, nextUp(r.MaxY)
	i := sort.Search(len(x.xp), func(j int) bool { return x.xp[j].hi > a })
	for ; i < len(x.xp) && x.xp[i].lo < b; i++ {
		x.crackY(&x.xp[i], c)
		x.crackY(&x.xp[i], d)
		yp := x.xp[i].yp
		k := sort.Search(len(yp), func(j int) bool { return yp[j].hi > c })
		for ; k < len(yp) && yp[k].lo < d; k++ {
			seg := x.pts[yp[k].start:yp[k].end]
			x.stats.PagesScanned++
			x.stats.PointsScanned += int64(len(seg))
			out = append(out, seg...)
		}
	}
	return out
}

// crackX ensures a piece boundary at value v by physically partitioning the
// piece containing v. Partitioning reorders the segment, which invalidates
// its second-level cracks.
func (x *Index) crackX(v float64) {
	i := sort.Search(len(x.xp), func(j int) bool { return x.xp[j].hi > v })
	if i == len(x.xp) || x.xp[i].lo >= v {
		return // boundary already exists or v is outside all pieces
	}
	p := &x.xp[i]
	mid := partitionX(x.pts, p.start, p.end, v, &x.stats)
	switch mid {
	case p.start:
		p.lo = v // nothing on the left: tighten the label, order unchanged
	case p.end:
		p.hi = v
	default:
		left := xpiece{lo: p.lo, hi: v, start: p.start, end: mid,
			yp: []ypiece{{lo: math.Inf(-1), hi: math.Inf(1), start: p.start, end: mid}}}
		right := xpiece{lo: v, hi: p.hi, start: mid, end: p.end,
			yp: []ypiece{{lo: math.Inf(-1), hi: math.Inf(1), start: mid, end: p.end}}}
		x.xp = append(x.xp, xpiece{})
		copy(x.xp[i+2:], x.xp[i+1:])
		x.xp[i] = left
		x.xp[i+1] = right
	}
}

// crackY ensures a y boundary at v within one xpiece.
func (x *Index) crackY(p *xpiece, v float64) {
	i := sort.Search(len(p.yp), func(j int) bool { return p.yp[j].hi > v })
	if i == len(p.yp) || p.yp[i].lo >= v {
		return
	}
	yp := &p.yp[i]
	mid := partitionY(x.pts, yp.start, yp.end, v, &x.stats)
	switch mid {
	case yp.start:
		yp.lo = v
	case yp.end:
		yp.hi = v
	default:
		left := ypiece{lo: yp.lo, hi: v, start: yp.start, end: mid}
		right := ypiece{lo: v, hi: yp.hi, start: mid, end: yp.end}
		p.yp = append(p.yp, ypiece{})
		copy(p.yp[i+2:], p.yp[i+1:])
		p.yp[i] = left
		p.yp[i+1] = right
	}
}

// partitionX moves points with X < v to the front of [start, end) and
// returns the boundary. When no points match, no swaps occur and the
// segment order is preserved.
func partitionX(pts []geom.Point, start, end int, v float64, s *storage.Stats) int {
	i := start
	for j := start; j < end; j++ {
		s.PointsScanned++
		if pts[j].X < v {
			pts[i], pts[j] = pts[j], pts[i]
			i++
		}
	}
	return i
}

func partitionY(pts []geom.Point, start, end int, v float64, s *storage.Stats) int {
	i := start
	for j := start; j < end; j++ {
		s.PointsScanned++
		if pts[j].Y < v {
			pts[i], pts[j] = pts[j], pts[i]
			i++
		}
	}
	return i
}

// PointQuery reports whether p is indexed. It does not crack.
func (x *Index) PointQuery(p geom.Point) bool {
	x.stats.PointQueries++
	i := sort.Search(len(x.xp), func(j int) bool { return x.xp[j].hi > p.X })
	if i == len(x.xp) {
		return false
	}
	xp := &x.xp[i]
	k := sort.Search(len(xp.yp), func(j int) bool { return xp.yp[j].hi > p.Y })
	if k == len(xp.yp) {
		return false
	}
	seg := x.pts[xp.yp[k].start:xp.yp[k].end]
	x.stats.PagesScanned++
	x.stats.PointsScanned += int64(len(seg))
	for _, q := range seg {
		if q == p {
			return true
		}
	}
	return false
}

// Len returns the number of indexed points.
func (x *Index) Len() int { return len(x.pts) }

// Pieces returns the first-level and total second-level piece counts — the
// "fractured layout" measure of §6.4.
func (x *Index) Pieces() (xPieces, yPieces int) {
	for i := range x.xp {
		yPieces += len(x.xp[i].yp)
	}
	return len(x.xp), yPieces
}

// Bytes returns the approximate footprint.
func (x *Index) Bytes() int64 {
	b := int64(cap(x.pts)) * 16
	for i := range x.xp {
		b += 16 + 16 + 24 + int64(len(x.xp[i].yp))*32
	}
	return b
}

// Stats returns the counters.
func (x *Index) Stats() *storage.Stats { return &x.stats }

func nextUp(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }

// RangeQueryPhased runs a range query in two separated phases and returns
// their durations (projection: cracking and piece location; scan: piece
// collection), for the Figure 9 reproduction.
func (x *Index) RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration) {
	x.stats.RangeQueries++
	if len(x.pts) == 0 || !r.Valid() {
		return nil, 0, 0
	}
	start := time.Now()
	a, b := r.MinX, nextUp(r.MaxX)
	x.crackX(a)
	x.crackX(b)
	c, d := r.MinY, nextUp(r.MaxY)
	type seg struct{ s, e int }
	var segs []seg
	i := sort.Search(len(x.xp), func(j int) bool { return x.xp[j].hi > a })
	for ; i < len(x.xp) && x.xp[i].lo < b; i++ {
		x.crackY(&x.xp[i], c)
		x.crackY(&x.xp[i], d)
		yp := x.xp[i].yp
		k := sort.Search(len(yp), func(j int) bool { return yp[j].hi > c })
		for ; k < len(yp) && yp[k].lo < d; k++ {
			segs = append(segs, seg{yp[k].start, yp[k].end})
		}
	}
	projection = time.Since(start)
	start = time.Now()
	for _, s := range segs {
		x.stats.PagesScanned++
		x.stats.PointsScanned += int64(s.e - s.s)
		pts = append(pts, x.pts[s.s:s.e]...)
	}
	scan = time.Since(start)
	x.stats.ResultPoints += int64(len(pts))
	return pts, projection, scan
}
