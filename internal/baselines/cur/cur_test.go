package cur

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.ConformanceUpdatable(t, func(pts []geom.Point, qs []geom.Rect) index.Updatable {
		return Build(pts, qs, Options{LeafSize: 64})
	})
}

func TestUnbalancedByWeight(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	qs := indextest.SkewedQueries(500, 2)
	tr := Build(pts, qs, Options{LeafSize: 64})
	if tr.MinDepth() >= tr.Depth() {
		t.Errorf("expected an unbalanced tree: min depth %d, max depth %d",
			tr.MinDepth(), tr.Depth())
	}
}

func TestQueryWeights(t *testing.T) {
	pts := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}
	qs := []geom.Rect{
		{MinX: 0.05, MinY: 0.05, MaxX: 0.15, MaxY: 0.15},
		{MinX: 0.06, MinY: 0.06, MaxX: 0.12, MaxY: 0.12},
	}
	w := QueryWeights(pts, qs, 64)
	if w[0] <= w[1] {
		t.Errorf("hot point weight %v should exceed cold point weight %v", w[0], w[1])
	}
	if w[1] < 1 {
		t.Errorf("weights must be at least 1, got %v", w[1])
	}
}

func TestEmptyBuild(t *testing.T) {
	tr := Build(nil, nil, Options{})
	if tr.Len() != 0 || tr.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty tree misbehaves")
	}
	tr.Insert(geom.Point{X: 0.5, Y: 0.5})
	if !tr.PointQuery(geom.Point{X: 0.5, Y: 0.5}) {
		t.Error("insert into empty tree lost the point")
	}
}
