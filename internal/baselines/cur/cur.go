// Package cur implements the paper's adaptation of Cost-based Unbalanced
// R-trees (Ross, Sitzmann & Stuckey, SSDBM 2001) to point data (§6.1):
// every point is weighted by the number of distinct workload queries that
// fetch it, leaves are packed by a weighted sort-tile sweep (equal weight
// per slice rather than equal cardinality), and the internal structure is
// an unbalanced merge tree that places frequently accessed leaves closer to
// the root — the cost-based aspect of CUR.
package cur

import (
	"time"

	"math"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Tree is a cost-based unbalanced R-tree over weighted points.
type Tree struct {
	root  *node
	count int
	stats storage.Stats
}

type node struct {
	mbr    geom.Rect
	weight float64
	left   *node
	right  *node
	page   storage.Page // leaf when left == nil
}

// Options configure construction.
type Options struct {
	// LeafSize is the page capacity. Default 256.
	LeafSize int
	// GridSide is the resolution of the query-stabbing grid used to
	// approximate per-point query counts. Default 256.
	GridSide int
}

func (o *Options) fill() {
	if o.LeafSize <= 0 {
		o.LeafSize = 256
	}
	if o.GridSide <= 0 {
		o.GridSide = 256
	}
}

// Build constructs a CUR tree for the data under the anticipated workload.
func Build(pts []geom.Point, queries []geom.Rect, opts Options) *Tree {
	opts.fill()
	t := &Tree{count: len(pts)}
	if len(pts) == 0 {
		return t
	}
	weights := QueryWeights(pts, queries, opts.GridSide)
	pages := packWeighted(pts, weights, opts.LeafSize)
	leaves := make([]*node, len(pages))
	for i, pg := range pages {
		leaves[i] = &node{
			mbr:    geom.RectFromPoints(pg.pts),
			weight: pg.weight,
			page:   storage.Page{Pts: pg.pts},
		}
	}
	t.root = mergeUnbalanced(leaves)
	return t
}

// QueryWeights approximates, for every point, the number of workload
// queries fetching it, via a gridSide×gridSide stabbing-count raster over
// the data bounds: each query increments the cells it covers, and a point's
// weight is the count of its cell plus one (so weights are strictly
// positive even off-workload).
func QueryWeights(pts []geom.Point, queries []geom.Rect, gridSide int) []float64 {
	bounds := geom.RectFromPoints(pts)
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	grid := make([]float64, gridSide*gridSide)
	cellOf := func(x, y float64) (int, int) {
		cx := int((x - bounds.MinX) / w * float64(gridSide))
		cy := int((y - bounds.MinY) / h * float64(gridSide))
		if cx < 0 {
			cx = 0
		}
		if cx >= gridSide {
			cx = gridSide - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= gridSide {
			cy = gridSide - 1
		}
		return cx, cy
	}
	for _, q := range queries {
		if !q.Intersects(bounds) {
			continue
		}
		x0, y0 := cellOf(q.MinX, q.MinY)
		x1, y1 := cellOf(q.MaxX, q.MaxY)
		for cy := y0; cy <= y1; cy++ {
			row := grid[cy*gridSide : (cy+1)*gridSide]
			for cx := x0; cx <= x1; cx++ {
				row[cx]++
			}
		}
	}
	weights := make([]float64, len(pts))
	for i, p := range pts {
		cx, cy := cellOf(p.X, p.Y)
		weights[i] = grid[cy*gridSide+cx] + 1
	}
	return weights
}

type weightedPage struct {
	pts    []geom.Point
	weight float64
}

// packWeighted is a sort-tile sweep with weighted slice boundaries: slices
// take equal total weight, so heavily queried regions get finer tiling.
// Page capacity still bounds cardinality.
func packWeighted(pts []geom.Point, weights []float64, leafSize int) []weightedPage {
	type wp struct {
		p geom.Point
		w float64
	}
	own := make([]wp, len(pts))
	var totalW float64
	for i, p := range pts {
		own[i] = wp{p, weights[i]}
		totalW += weights[i]
	}
	sort.Slice(own, func(i, j int) bool { return own[i].p.X < own[j].p.X })
	nPages := (len(own) + leafSize - 1) / leafSize
	nSlices := int(math.Ceil(math.Sqrt(float64(nPages))))
	sliceW := totalW / float64(nSlices)

	var pages []weightedPage
	emit := func(run []wp) {
		for start := 0; start < len(run); start += leafSize {
			end := start + leafSize
			if end > len(run) {
				end = len(run)
			}
			pg := weightedPage{pts: make([]geom.Point, end-start)}
			for i, e := range run[start:end] {
				pg.pts[i] = e.p
				pg.weight += e.w
			}
			pages = append(pages, pg)
		}
	}
	var acc float64
	start := 0
	for i := range own {
		acc += own[i].w
		if acc >= sliceW && i+1 > start {
			slice := own[start : i+1]
			sort.Slice(slice, func(a, b int) bool { return slice[a].p.Y < slice[b].p.Y })
			emit(slice)
			start = i + 1
			acc = 0
		}
	}
	if start < len(own) {
		slice := own[start:]
		sort.Slice(slice, func(a, b int) bool { return slice[a].p.Y < slice[b].p.Y })
		emit(slice)
	}
	return pages
}

// mergeUnbalanced builds the internal structure by repeatedly merging the
// adjacent pair of nodes with the smallest combined weight (a Hu–Tucker
// style greedy). Cold leaves sink deep; hot leaves stay near the root,
// which is CUR's expected-access-cost placement.
func mergeUnbalanced(nodes []*node) *node {
	work := append([]*node(nil), nodes...)
	for len(work) > 1 {
		best := 0
		bestW := work[0].weight + work[1].weight
		for i := 1; i+1 < len(work); i++ {
			if w := work[i].weight + work[i+1].weight; w < bestW {
				best, bestW = i, w
			}
		}
		merged := &node{
			mbr:    work[best].mbr.Union(work[best+1].mbr),
			weight: bestW,
			left:   work[best],
			right:  work[best+1],
		}
		work[best] = merged
		work = append(work[:best+1], work[best+2:]...)
	}
	return work[0]
}

// RangeQuery returns all points inside r.
func (t *Tree) RangeQuery(r geom.Rect) []geom.Point {
	t.stats.RangeQueries++
	var out []geom.Point
	if t.root != nil && t.root.mbr.Intersects(r) {
		out = t.search(t.root, r, out)
	}
	t.stats.ResultPoints += int64(len(out))
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out []geom.Point) []geom.Point {
	if n.left == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Filter(r, out)
	}
	t.stats.NodesVisited++
	t.stats.BBChecked += 2
	if n.left.mbr.Intersects(r) {
		out = t.search(n.left, r, out)
	}
	if n.right.mbr.Intersects(r) {
		out = t.search(n.right, r, out)
	}
	return out
}

// PointQuery reports whether p is indexed.
func (t *Tree) PointQuery(p geom.Point) bool {
	t.stats.PointQueries++
	if t.root == nil || !t.root.mbr.Contains(p) {
		return false
	}
	return t.lookup(t.root, p)
}

func (t *Tree) lookup(n *node, p geom.Point) bool {
	if n.left == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Contains(p)
	}
	t.stats.NodesVisited++
	t.stats.BBChecked += 2
	if n.left.mbr.Contains(p) && t.lookup(n.left, p) {
		return true
	}
	if n.right.mbr.Contains(p) && t.lookup(n.right, p) {
		return true
	}
	return false
}

// Insert adds p to the leaf whose MBR needs the least enlargement (the
// classic R-tree ChooseLeaf), splitting overflowing leaves at their weighted
// median.
func (t *Tree) Insert(p geom.Point) {
	t.stats.Inserts++
	t.count++
	if t.root == nil {
		t.root = &node{
			mbr:  geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y},
			page: storage.Page{Pts: []geom.Point{p}},
		}
		return
	}
	t.insert(t.root, p)
}

func (t *Tree) insert(n *node, p geom.Point) {
	n.mbr = n.mbr.ExtendPoint(p)
	if n.left == nil {
		n.page.Pts = append(n.page.Pts, p)
		if n.page.Len() > 512 { // split threshold: 2x the default page size
			t.splitLeaf(n)
		}
		return
	}
	// Least-enlargement child.
	le := enlargement(n.left.mbr, p)
	re := enlargement(n.right.mbr, p)
	if le <= re {
		t.insert(n.left, p)
	} else {
		t.insert(n.right, p)
	}
}

func enlargement(r geom.Rect, p geom.Point) float64 {
	return r.ExtendPoint(p).Area() - r.Area()
}

// splitLeaf turns an overflowing leaf into an internal node with two
// halves split along the longer MBR dimension.
func (t *Tree) splitLeaf(n *node) {
	pts := n.page.Pts
	if n.mbr.Width() >= n.mbr.Height() {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	} else {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
	}
	mid := len(pts) / 2
	lpts := append([]geom.Point(nil), pts[:mid]...)
	rpts := append([]geom.Point(nil), pts[mid:]...)
	n.page = storage.Page{}
	half := n.weight / 2
	n.left = &node{mbr: geom.RectFromPoints(lpts), weight: half, page: storage.Page{Pts: lpts}}
	n.right = &node{mbr: geom.RectFromPoints(rpts), weight: half, page: storage.Page{Pts: rpts}}
	t.stats.PageSplits++
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// Bytes returns the approximate footprint.
func (t *Tree) Bytes() int64 { return nodeBytes(t.root) }

func nodeBytes(n *node) int64 {
	if n == nil {
		return 0
	}
	b := int64(32 + 8 + 16) // mbr + weight + child pointers
	if n.left == nil {
		return b + n.page.Bytes()
	}
	return b + nodeBytes(n.left) + nodeBytes(n.right)
}

// Stats returns the counters.
func (t *Tree) Stats() *storage.Stats { return &t.stats }

// Depth returns the maximum leaf depth — unbalanced by design.
func (t *Tree) Depth() int { return depth(t.root) }

// MinDepth returns the minimum leaf depth; hot leaves should be shallower
// than cold ones.
func (t *Tree) MinDepth() int { return minDepth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if r > l {
		l = r
	}
	return l + 1
}

func minDepth(n *node) int {
	if n == nil {
		return 0
	}
	if n.left == nil {
		return 1
	}
	l, r := minDepth(n.left), minDepth(n.right)
	if r < l {
		l = r
	}
	return l + 1
}

// RangeQueryPhased runs a range query in two separated phases and returns
// their durations (projection: tree traversal; scan: page filtering), for
// the Figure 9 reproduction.
func (t *Tree) RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration) {
	t.stats.RangeQueries++
	start := time.Now()
	var pages []*node
	var collect func(n *node)
	collect = func(n *node) {
		if n.left == nil {
			pages = append(pages, n)
			return
		}
		t.stats.NodesVisited++
		t.stats.BBChecked += 2
		if n.left.mbr.Intersects(r) {
			collect(n.left)
		}
		if n.right.mbr.Intersects(r) {
			collect(n.right)
		}
	}
	if t.root != nil && t.root.mbr.Intersects(r) {
		collect(t.root)
	}
	projection = time.Since(start)
	start = time.Now()
	for _, n := range pages {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		pts = n.page.Filter(r, pts)
	}
	scan = time.Since(start)
	t.stats.ResultPoints += int64(len(pts))
	return pts, projection, scan
}
