package sfcarr_test

import (
	"testing"

	"github.com/wazi-index/wazi/internal/baselines/sfcarr"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/zorder"
)

// fullLocator is the trivial Locator: the window is the whole array, so
// lowerBound degrades to a plain binary search. It isolates the sfcarr core
// (sorting, BIGMIN scanning, rank mapping) from any learned component.
type fullLocator struct{ n int }

func (l fullLocator) Window(zorder.Key) (int, int) { return 0, l.n - 1 }
func (l fullLocator) Bytes() int64                 { return 0 }

// lyingLocator returns a deliberately wrong, narrow window. The exponential
// widening in lowerBound must recover, so results stay correct even under a
// badly mistrained model — the safety net the learned baselines rely on.
type lyingLocator struct{ n int }

func (l lyingLocator) Window(zorder.Key) (int, int) {
	mid := l.n / 2
	return mid, mid
}
func (l lyingLocator) Bytes() int64 { return 0 }

func TestConformanceFullWindow(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return sfcarr.Build(pts, sfcarr.StdZ{}, func(keys []zorder.Key) sfcarr.Locator {
			return fullLocator{n: len(keys)}
		})
	})
}

func TestConformanceLyingLocator(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return sfcarr.Build(pts, sfcarr.StdZ{}, func(keys []zorder.Key) sfcarr.Locator {
			return lyingLocator{n: len(keys)}
		})
	})
}

// TestKeysSorted pins the Build contract the locators depend on: the key
// array is sorted and aligned with the point array.
func TestKeysSorted(t *testing.T) {
	pts := indextest.ClusteredPoints(3000, 9)
	idx := sfcarr.Build(pts, sfcarr.StdZ{}, func(keys []zorder.Key) sfcarr.Locator {
		return fullLocator{n: len(keys)}
	})
	keys := idx.Keys()
	if len(keys) != len(pts) {
		t.Fatalf("got %d keys for %d points", len(keys), len(pts))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("keys not sorted at %d", i)
		}
	}
	if idx.Len() != len(pts) {
		t.Fatalf("Len = %d", idx.Len())
	}
	if idx.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}
