// Package sfcarr implements the shared core of the rank-space
// space-filling-curve array indexes evaluated in the paper's Figure 4
// (Zpgm, QUILTS, RSMI): points are projected to rank space, linearized by a
// monotone curve, and stored in one sorted array; a pluggable search
// structure locates positions for keys, and range scans skip
// out-of-rectangle curve sections with BIGMIN jumps.
//
// The three baselines differ only in their curve (standard Z-order vs a
// workload-selected QUILTS pattern) and their position locator (PGM-style
// piecewise linear approximation, a sampled key directory, or a two-level
// learned model), which each provide through the Encoder and Locator
// interfaces.
package sfcarr

import (
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/rankspace"
	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/zorder"
)

// Encoder linearizes rank-space coordinates. zorder.Pattern satisfies it.
type Encoder interface {
	Encode(x, y uint32) zorder.Key
	BigMin(cur, zmin, zmax zorder.Key) (zorder.Key, bool)
	InRect(k zorder.Key, minX, minY, maxX, maxY uint32) bool
}

// StdZ is the standard full-resolution Z-order Encoder.
type StdZ struct{}

// Encode interleaves with the package-level Z-order.
func (StdZ) Encode(x, y uint32) zorder.Key { return zorder.Encode(x, y) }

// BigMin delegates to the package-level BIGMIN.
func (StdZ) BigMin(cur, zmin, zmax zorder.Key) (zorder.Key, bool) {
	return zorder.BigMin(cur, zmin, zmax)
}

// InRect delegates to the package-level check.
func (StdZ) InRect(k zorder.Key, minX, minY, maxX, maxY uint32) bool {
	return zorder.InRect(k, minX, minY, maxX, maxY)
}

// Locator is a (possibly learned) structure that brackets the position of a
// key in the sorted key array.
type Locator interface {
	// Window returns an inclusive position window [lo, hi] guaranteed to
	// contain the lower-bound position of k (the first index whose key is
	// >= k, possibly len(keys) when hi is clamped by the caller).
	Window(k zorder.Key) (lo, hi int)
	// Bytes returns the locator's footprint.
	Bytes() int64
}

// Index is the assembled rank-space SFC array index.
type Index struct {
	mapping *rankspace.Mapping
	enc     Encoder
	loc     Locator
	keys    []zorder.Key
	pts     []geom.Point
	stats   storage.Stats
}

// Build sorts the data by curve key and installs the locator produced by
// newLocator from the sorted keys.
func Build(pts []geom.Point, enc Encoder, newLocator func(keys []zorder.Key) Locator) *Index {
	idx := &Index{mapping: rankspace.New(pts), enc: enc}
	type entry struct {
		k zorder.Key
		p geom.Point
	}
	entries := make([]entry, len(pts))
	for i, p := range pts {
		entries[i] = entry{enc.Encode(idx.mapping.RankX(p.X), idx.mapping.RankY(p.Y)), p}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	idx.keys = make([]zorder.Key, len(entries))
	idx.pts = make([]geom.Point, len(entries))
	for i, e := range entries {
		idx.keys[i] = e.k
		idx.pts[i] = e.p
	}
	idx.loc = newLocator(idx.keys)
	return idx
}

// lowerBound returns the first position whose key is >= k, using the
// locator window and a bounded binary search, with exponential widening as
// a safety net against an erroneous window.
func (x *Index) lowerBound(k zorder.Key) int {
	n := len(x.keys)
	if n == 0 {
		return 0
	}
	lo, hi := x.loc.Window(k)
	if lo < 0 {
		lo = 0
	}
	if lo > n-1 {
		lo = n - 1
	}
	if hi < lo {
		hi = lo
	}
	if hi > n-1 {
		hi = n - 1
	}
	// Widen until the window certainly brackets the answer.
	for lo > 0 && x.keys[lo] >= k {
		lo = max(0, lo-(hi-lo+1))
	}
	for hi < len(x.keys)-1 && x.keys[hi] < k {
		hi = min(len(x.keys)-1, hi+(hi-lo+1))
	}
	return lo + sort.Search(hi-lo+1, func(i int) bool { return x.keys[lo+i] >= k })
}

// RangeQuery returns all points inside r.
func (x *Index) RangeQuery(r geom.Rect) []geom.Point {
	x.stats.RangeQueries++
	var out []geom.Point
	rx0, rx1, okx := x.mapping.RangeX(r.MinX, r.MaxX)
	ry0, ry1, oky := x.mapping.RangeY(r.MinY, r.MaxY)
	if !okx || !oky {
		return nil
	}
	zmin := x.enc.Encode(rx0, ry0)
	zmax := x.enc.Encode(rx1, ry1)
	i := x.lowerBound(zmin)
	for i < len(x.keys) && x.keys[i] <= zmax {
		x.stats.PointsScanned++
		if x.enc.InRect(x.keys[i], rx0, ry0, rx1, ry1) {
			// Rank containment implies value containment; the geometric
			// check guards rank collisions from duplicate coordinates.
			if r.Contains(x.pts[i]) {
				out = append(out, x.pts[i])
			}
			i++
			continue
		}
		nk, ok := x.enc.BigMin(x.keys[i], zmin, zmax)
		if !ok {
			break
		}
		x.stats.LookaheadJumps++
		i += sort.Search(len(x.keys)-i, func(j int) bool { return x.keys[i+j] >= nk })
	}
	x.stats.ResultPoints += int64(len(out))
	return out
}

// PointQuery reports whether p is indexed.
func (x *Index) PointQuery(p geom.Point) bool {
	x.stats.PointQueries++
	if !x.mapping.HasX(p.X) || !x.mapping.HasY(p.Y) {
		return false
	}
	k := x.enc.Encode(x.mapping.RankX(p.X), x.mapping.RankY(p.Y))
	for i := x.lowerBound(k); i < len(x.keys) && x.keys[i] == k; i++ {
		x.stats.PointsScanned++
		if x.pts[i] == p {
			return true
		}
	}
	return false
}

// Len returns the number of indexed points.
func (x *Index) Len() int { return len(x.pts) }

// Bytes returns the approximate footprint: keys, points, rank mapping, and
// the locator.
func (x *Index) Bytes() int64 {
	return int64(len(x.keys))*8 + int64(len(x.pts))*16 + x.mapping.Bytes() + x.loc.Bytes()
}

// Stats returns the counters.
func (x *Index) Stats() *storage.Stats { return &x.stats }

// Keys exposes the sorted key array to locator constructors and tests.
func (x *Index) Keys() []zorder.Key { return x.keys }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
