// Package zpgm implements the Zpgm baseline of the paper's Figure 4: points
// linearized by the standard Z-order curve in rank space and indexed by a
// PGM-style piecewise linear approximation (Ferragina & Vinciguerra, VLDB
// 2020) with the BIGMIN skipping of Tropf & Herzog during range scans.
package zpgm

import (
	"math"

	"github.com/wazi-index/wazi/internal/baselines/sfcarr"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/zorder"
)

// DefaultEpsilon is the PLA error bound: a predicted position is within
// ±DefaultEpsilon of the true lower bound.
const DefaultEpsilon = 64

// Index is a Zpgm index.
type Index struct {
	*sfcarr.Index
}

// Build constructs the index over pts with the given PLA error bound
// (<= 0 selects DefaultEpsilon).
func Build(pts []geom.Point, epsilon int) *Index {
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	core := sfcarr.Build(pts, sfcarr.StdZ{}, func(keys []zorder.Key) sfcarr.Locator {
		return newPLA(keys, epsilon)
	})
	return &Index{core}
}

// pla is an ε-bounded piecewise linear approximation of key → position,
// built with the streaming shrinking-cone algorithm (one pass, O(n)).
type pla struct {
	segs []segment
	eps  int
	n    int
}

type segment struct {
	startKey zorder.Key
	startPos int
	slope    float64
}

func newPLA(keys []zorder.Key, eps int) *pla {
	p := &pla{eps: eps, n: len(keys)}
	if len(keys) == 0 {
		return p
	}
	startKey, startPos := keys[0], 0
	slLo, slHi := math.Inf(-1), math.Inf(1)
	flush := func(endPos int) {
		slope := 0.0
		switch {
		case math.IsInf(slLo, -1) && math.IsInf(slHi, 1):
			slope = 0
		case math.IsInf(slLo, -1):
			slope = slHi
		case math.IsInf(slHi, 1):
			slope = slLo
		default:
			slope = (slLo + slHi) / 2
		}
		p.segs = append(p.segs, segment{startKey: startKey, startPos: startPos, slope: slope})
		_ = endPos
	}
	for i := 1; i < len(keys); i++ {
		dk := float64(keys[i] - startKey)
		if dk == 0 {
			// Duplicate keys: the prediction for this key stays at
			// startPos; the ε-window search below absorbs runs up to the
			// widening fallback.
			continue
		}
		lo := (float64(i-startPos) - float64(eps)) / dk
		hi := (float64(i-startPos) + float64(eps)) / dk
		nLo, nHi := math.Max(slLo, lo), math.Min(slHi, hi)
		if nLo > nHi {
			flush(i)
			startKey, startPos = keys[i], i
			slLo, slHi = math.Inf(-1), math.Inf(1)
			continue
		}
		slLo, slHi = nLo, nHi
	}
	flush(len(keys))
	return p
}

// Window brackets the lower-bound position of k within ±eps of the model
// prediction.
func (p *pla) Window(k zorder.Key) (int, int) {
	if len(p.segs) == 0 {
		return 0, 0
	}
	// Binary search the segment whose startKey is the greatest <= k.
	lo, hi := 0, len(p.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.segs[mid].startKey <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := p.segs[lo]
	pred := s.startPos
	if k > s.startKey {
		pred += int(s.slope * float64(k-s.startKey))
	}
	return pred - p.eps, pred + p.eps
}

// Bytes returns the PLA footprint.
func (p *pla) Bytes() int64 { return int64(len(p.segs)) * 24 }

// Segments returns the number of PLA segments (for tests and size reports).
func (p *pla) Segments() int { return len(p.segs) }
