package zpgm

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/zorder"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, 0)
	})
}

func TestConformanceTinyEpsilon(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, 4)
	})
}

func TestPLAWindowSoundness(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	idx := Build(pts, 32)
	keys := idx.Keys()
	p := newPLA(keys, 32)
	if p.Segments() < 2 {
		t.Errorf("PLA produced %d segments over 20k keys", p.Segments())
	}
	for i := 0; i < len(keys); i += 97 {
		lo, hi := p.Window(keys[i])
		// The true lower bound of keys[i] must lie within [lo, hi].
		truth := i
		for truth > 0 && keys[truth-1] == keys[i] {
			truth--
		}
		if truth < lo || truth > hi {
			t.Fatalf("window [%d, %d] misses true lower bound %d", lo, hi, truth)
		}
	}
}

func TestPLAEmptyAndSingle(t *testing.T) {
	if p := newPLA(nil, 8); p.Segments() != 0 {
		t.Error("empty PLA should have no segments")
	}
	p := newPLA([]zorder.Key{42}, 8)
	lo, hi := p.Window(42)
	if lo > 0 || hi < 0 {
		t.Errorf("single-key window [%d, %d] must include 0", lo, hi)
	}
}
