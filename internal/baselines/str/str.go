// Package str implements the Sort-Tile-Recursive packed R-tree of
// Leutenegger, Edgington and López (ICDE 1997), the STR baseline of the
// paper's evaluation: data-space tiling into vertical slices, y-sorted
// packing within each slice, and bottom-up level-by-level construction.
package str

import (
	"time"

	"math"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// DefaultFanout is the internal-node fanout used when packing upper levels.
const DefaultFanout = 16

// Tree is an STR-packed R-tree.
type Tree struct {
	root   *node
	count  int
	leafN  int
	fanout int
	stats  storage.Stats
}

type node struct {
	mbr      geom.Rect
	children []*node      // internal nodes
	page     storage.Page // leaf nodes (children == nil)
}

// Options configure construction.
type Options struct {
	// LeafSize is the page capacity. Default 256.
	LeafSize int
	// Fanout is the internal-node fanout. Default 16.
	Fanout int
}

func (o *Options) fill() {
	if o.LeafSize <= 0 {
		o.LeafSize = 256
	}
	if o.Fanout <= 0 {
		o.Fanout = DefaultFanout
	}
}

// Build packs pts into an STR R-tree.
func Build(pts []geom.Point, opts Options) *Tree {
	opts.fill()
	t := &Tree{count: len(pts), leafN: opts.LeafSize, fanout: opts.Fanout}
	if len(pts) == 0 {
		return t
	}
	leaves := PackLeaves(pts, opts.LeafSize)
	nodes := make([]*node, len(leaves))
	for i, pg := range leaves {
		nodes[i] = &node{mbr: geom.RectFromPoints(pg), page: storage.Page{Pts: pg}}
	}
	t.root = packUp(nodes, opts.Fanout)
	return t
}

// PackLeaves tiles pts into pages of at most leafSize points using the STR
// sweep: sort by x, cut into ceil(sqrt(P)) vertical slices of whole pages,
// sort each slice by y, and emit consecutive runs. It is exported for reuse
// by the CUR baseline, which packs with weighted slice boundaries but the
// same mechanics.
func PackLeaves(pts []geom.Point, leafSize int) [][]geom.Point {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	p := (len(own) + leafSize - 1) / leafSize  // number of pages
	s := int(math.Ceil(math.Sqrt(float64(p)))) // number of vertical slices
	sliceCap := s * leafSize                   // points per slice
	sort.Slice(own, func(i, j int) bool { return own[i].X < own[j].X })
	var pages [][]geom.Point
	for start := 0; start < len(own); start += sliceCap {
		end := start + sliceCap
		if end > len(own) {
			end = len(own)
		}
		slice := own[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Y < slice[j].Y })
		for ls := 0; ls < len(slice); ls += leafSize {
			le := ls + leafSize
			if le > len(slice) {
				le = len(slice)
			}
			page := make([]geom.Point, le-ls)
			copy(page, slice[ls:le])
			pages = append(pages, page)
		}
	}
	return pages
}

// packUp builds internal levels bottom-up by grouping consecutive nodes.
func packUp(nodes []*node, fanout int) *node {
	for len(nodes) > 1 {
		next := make([]*node, 0, (len(nodes)+fanout-1)/fanout)
		for start := 0; start < len(nodes); start += fanout {
			end := start + fanout
			if end > len(nodes) {
				end = len(nodes)
			}
			group := nodes[start:end]
			n := &node{mbr: group[0].mbr, children: append([]*node(nil), group...)}
			for _, c := range group[1:] {
				n.mbr = n.mbr.Union(c.mbr)
			}
			next = append(next, n)
		}
		nodes = next
	}
	return nodes[0]
}

// RangeQuery returns all points inside r.
func (t *Tree) RangeQuery(r geom.Rect) []geom.Point {
	t.stats.RangeQueries++
	var out []geom.Point
	if t.root != nil && t.root.mbr.Intersects(r) {
		out = t.search(t.root, r, out)
	}
	t.stats.ResultPoints += int64(len(out))
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out []geom.Point) []geom.Point {
	if n.children == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Filter(r, out)
	}
	t.stats.NodesVisited++
	for _, c := range n.children {
		t.stats.BBChecked++
		if c.mbr.Intersects(r) {
			out = t.search(c, r, out)
		}
	}
	return out
}

// PointQuery reports whether p is indexed. R-trees may need to descend
// multiple overlapping children.
func (t *Tree) PointQuery(p geom.Point) bool {
	t.stats.PointQueries++
	if t.root == nil || !t.root.mbr.Contains(p) {
		return false
	}
	return t.lookup(t.root, p)
}

func (t *Tree) lookup(n *node, p geom.Point) bool {
	if n.children == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Contains(p)
	}
	t.stats.NodesVisited++
	for _, c := range n.children {
		t.stats.BBChecked++
		if c.mbr.Contains(p) && t.lookup(c, p) {
			return true
		}
	}
	return false
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// Bytes returns the approximate footprint.
func (t *Tree) Bytes() int64 { return nodeBytes(t.root) }

func nodeBytes(n *node) int64 {
	if n == nil {
		return 0
	}
	b := int64(32 + 24) // mbr + slice header
	if n.children == nil {
		return b + n.page.Bytes()
	}
	for _, c := range n.children {
		b += 8 + nodeBytes(c)
	}
	return b
}

// Stats returns the counters.
func (t *Tree) Stats() *storage.Stats { return &t.stats }

// Depth returns the tree height.
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
	return d
}

// RangeQueryPhased runs a range query in two separated phases and returns
// their durations: projection (tree traversal collecting overlapping
// leaves) and scan (filtering their pages). Used by the Figure 9
// reproduction.
func (t *Tree) RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration) {
	t.stats.RangeQueries++
	start := time.Now()
	var pages []*node
	var collect func(n *node)
	collect = func(n *node) {
		if n.children == nil {
			pages = append(pages, n)
			return
		}
		t.stats.NodesVisited++
		for _, c := range n.children {
			t.stats.BBChecked++
			if c.mbr.Intersects(r) {
				collect(c)
			}
		}
	}
	if t.root != nil && t.root.mbr.Intersects(r) {
		collect(t.root)
	}
	projection = time.Since(start)
	start = time.Now()
	for _, n := range pages {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		pts = n.page.Filter(r, pts)
	}
	scan = time.Since(start)
	t.stats.ResultPoints += int64(len(pts))
	return pts, projection, scan
}
