package str

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, Options{LeafSize: 64})
	})
}

func TestLeafCapacityAndDepth(t *testing.T) {
	pts := indextest.ClusteredPoints(5000, 1)
	tr := Build(pts, Options{LeafSize: 100, Fanout: 8})
	if tr.Depth() < 2 {
		t.Errorf("depth = %d, expected a real tree", tr.Depth())
	}
	pages := PackLeaves(pts, 100)
	total := 0
	for _, pg := range pages {
		if len(pg) > 100 {
			t.Fatalf("page with %d points exceeds capacity", len(pg))
		}
		total += len(pg)
	}
	if total != len(pts) {
		t.Fatalf("packed %d points, want %d", total, len(pts))
	}
}

func TestEmptyBuild(t *testing.T) {
	tr := Build(nil, Options{})
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if got := tr.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); got != nil {
		t.Error("empty tree should return nil")
	}
	if tr.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty tree point query should be false")
	}
}
