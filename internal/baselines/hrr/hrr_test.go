package hrr

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Conformance(t, func(pts []geom.Point, _ []geom.Rect) index.Index {
		return Build(pts, Options{LeafSize: 64})
	})
}

func TestEmptyBuild(t *testing.T) {
	tr := Build(nil, Options{})
	if tr.Len() != 0 || tr.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty tree misbehaves")
	}
}
