// Package hrr implements the HRR baseline of the paper's Figure 4: a
// Hilbert-curve packed R-tree (in the family of Kamel & Faloutsos 1994 and
// Qi et al. 2018/2020). Points are sorted by their Hilbert position on a
// 2^16 grid over the data bounds, packed into leaves, and upper levels are
// built bottom-up; queries are ordinary R-tree searches over MBRs.
package hrr

import (
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/hilbert"
	"github.com/wazi-index/wazi/internal/storage"
)

// GridOrder is the Hilbert curve order used for sorting.
const GridOrder = 16

// Tree is a Hilbert-packed R-tree.
type Tree struct {
	root  *node
	count int
	stats storage.Stats
}

type node struct {
	mbr      geom.Rect
	children []*node
	page     storage.Page
}

// Options configure construction.
type Options struct {
	// LeafSize is the page capacity. Default 256.
	LeafSize int
	// Fanout is the internal fanout. Default 16.
	Fanout int
}

func (o *Options) fill() {
	if o.LeafSize <= 0 {
		o.LeafSize = 256
	}
	if o.Fanout <= 0 {
		o.Fanout = 16
	}
}

// Build packs pts in Hilbert order.
func Build(pts []geom.Point, opts Options) *Tree {
	opts.fill()
	t := &Tree{count: len(pts)}
	if len(pts) == 0 {
		return t
	}
	bounds := geom.RectFromPoints(pts)
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	curve := hilbert.New(GridOrder)
	side := float64(curve.Side() - 1)
	type entry struct {
		d uint64
		p geom.Point
	}
	entries := make([]entry, len(pts))
	for i, p := range pts {
		gx := uint32((p.X - bounds.MinX) / w * side)
		gy := uint32((p.Y - bounds.MinY) / h * side)
		entries[i] = entry{curve.Pos(gx, gy), p}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].d < entries[j].d })

	var leaves []*node
	for start := 0; start < len(entries); start += opts.LeafSize {
		end := start + opts.LeafSize
		if end > len(entries) {
			end = len(entries)
		}
		pg := make([]geom.Point, end-start)
		for i := start; i < end; i++ {
			pg[i-start] = entries[i].p
		}
		leaves = append(leaves, &node{mbr: geom.RectFromPoints(pg), page: storage.Page{Pts: pg}})
	}
	for len(leaves) > 1 {
		var next []*node
		for start := 0; start < len(leaves); start += opts.Fanout {
			end := start + opts.Fanout
			if end > len(leaves) {
				end = len(leaves)
			}
			group := leaves[start:end]
			n := &node{mbr: group[0].mbr, children: append([]*node(nil), group...)}
			for _, c := range group[1:] {
				n.mbr = n.mbr.Union(c.mbr)
			}
			next = append(next, n)
		}
		leaves = next
	}
	t.root = leaves[0]
	return t
}

// RangeQuery returns all points inside r.
func (t *Tree) RangeQuery(r geom.Rect) []geom.Point {
	t.stats.RangeQueries++
	var out []geom.Point
	if t.root != nil && t.root.mbr.Intersects(r) {
		out = t.search(t.root, r, out)
	}
	t.stats.ResultPoints += int64(len(out))
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out []geom.Point) []geom.Point {
	if n.children == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Filter(r, out)
	}
	t.stats.NodesVisited++
	for _, c := range n.children {
		t.stats.BBChecked++
		if c.mbr.Intersects(r) {
			out = t.search(c, r, out)
		}
	}
	return out
}

// PointQuery reports whether p is indexed.
func (t *Tree) PointQuery(p geom.Point) bool {
	t.stats.PointQueries++
	if t.root == nil || !t.root.mbr.Contains(p) {
		return false
	}
	return t.lookup(t.root, p)
}

func (t *Tree) lookup(n *node, p geom.Point) bool {
	if n.children == nil {
		t.stats.PagesScanned++
		t.stats.PointsScanned += int64(n.page.Len())
		return n.page.Contains(p)
	}
	t.stats.NodesVisited++
	for _, c := range n.children {
		t.stats.BBChecked++
		if c.mbr.Contains(p) && t.lookup(c, p) {
			return true
		}
	}
	return false
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// Bytes returns the approximate footprint.
func (t *Tree) Bytes() int64 { return nodeBytes(t.root) }

func nodeBytes(n *node) int64 {
	if n == nil {
		return 0
	}
	b := int64(32 + 24)
	if n.children == nil {
		return b + n.page.Bytes()
	}
	for _, c := range n.children {
		b += 8 + nodeBytes(c)
	}
	return b
}

// Stats returns the counters.
func (t *Tree) Stats() *storage.Stats { return &t.stats }
