// Package flood implements the simplified two-dimensional Flood index used
// as a baseline in the paper (§6.1): a learned column grid over x with
// y-sorted columns, whose column count is chosen by evaluating candidate
// grid layouts on a sub-sample of the anticipated query workload — the
// essence of Flood's layout optimization (Nathan et al., SIGMOD 2020)
// restricted to two dimensions.
package flood

import (
	"time"

	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Index is a 2-D Flood index: equi-depth columns over x, each sorted by y.
type Index struct {
	cols    []column
	bounds  geom.Rect
	count   int
	columns int
	stats   storage.Stats
}

type column struct {
	xLo, xHi float64 // value range of the column; xHi of the last is +inf-ish
	pts      []geom.Point
}

// Options configure construction.
type Options struct {
	// SampleQueries are used to score candidate grids. When empty, the
	// column count falls back to sqrt(n/leafEquivalent), a reasonable
	// workload-agnostic default.
	SampleQueries []geom.Rect
	// Candidates is the set of column counts evaluated. When empty a
	// geometric ladder derived from the data size is used.
	Candidates []int
	// MaxSample bounds the number of sample queries scored per candidate.
	// Default 200.
	MaxSample int
}

// Build constructs the index, choosing the column count that minimizes the
// modelled scan cost on the sample workload.
func Build(pts []geom.Point, opts Options) *Index {
	idx := &Index{count: len(pts)}
	if len(pts) == 0 {
		return idx
	}
	idx.bounds = geom.RectFromPoints(pts)
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	sort.Slice(own, func(i, j int) bool { return own[i].X < own[j].X })

	candidates := opts.Candidates
	if len(candidates) == 0 {
		base := intSqrt(len(pts)/64 + 1)
		candidates = []int{base / 4, base / 2, base, base * 2, base * 4}
	}
	maxSample := opts.MaxSample
	if maxSample <= 0 {
		maxSample = 200
	}
	sample := opts.SampleQueries
	if len(sample) > maxSample {
		sample = sample[:maxSample]
	}

	bestCols := 0
	bestCost := int64(-1)
	for _, c := range candidates {
		if c < 1 {
			continue
		}
		if len(sample) == 0 {
			bestCols = intSqrt(len(pts)/64 + 1)
			break
		}
		cost := scoreLayout(own, c, sample)
		if bestCost < 0 || cost < bestCost {
			bestCost, bestCols = cost, c
		}
	}
	if bestCols < 1 {
		bestCols = 1
	}
	idx.columns = bestCols
	idx.cols = buildColumns(own, bestCols)
	return idx
}

// buildColumns slices the x-sorted points into c equi-depth columns and
// sorts each by y. own must be sorted by x and is not retained.
func buildColumns(own []geom.Point, c int) []column {
	n := len(own)
	cols := make([]column, 0, c)
	for i := 0; i < c; i++ {
		start, end := i*n/c, (i+1)*n/c
		if start >= end {
			continue
		}
		col := column{
			xLo: own[start].X,
			xHi: own[end-1].X,
			pts: append([]geom.Point(nil), own[start:end]...),
		}
		sort.Slice(col.pts, func(a, b int) bool { return col.pts[a].Y < col.pts[b].Y })
		cols = append(cols, col)
	}
	return cols
}

// scoreLayout models the scan cost of a layout: for every sample query, the
// number of points touched is the sum over overlapped columns of the
// y-range run length (found by binary search), plus a per-column seek
// charge.
func scoreLayout(own []geom.Point, c int, sample []geom.Rect) int64 {
	cols := buildColumns(own, c)
	var cost int64
	for _, r := range sample {
		lo, hi := columnRange(cols, r)
		for i := lo; i < hi; i++ {
			a := sort.Search(len(cols[i].pts), func(j int) bool { return cols[i].pts[j].Y >= r.MinY })
			b := sort.Search(len(cols[i].pts), func(j int) bool { return cols[i].pts[j].Y > r.MaxY })
			cost += int64(b-a) + 8 // 8 ~ seek/binary-search charge per column
		}
	}
	return cost
}

// columnRange returns the half-open range of column indices whose value
// ranges overlap r's x-extent.
func columnRange(cols []column, r geom.Rect) (int, int) {
	lo := sort.Search(len(cols), func(i int) bool { return cols[i].xHi >= r.MinX })
	hi := sort.Search(len(cols), func(i int) bool { return cols[i].xLo > r.MaxX })
	return lo, hi
}

// RangeQuery returns all points inside r.
func (f *Index) RangeQuery(r geom.Rect) []geom.Point {
	f.stats.RangeQueries++
	var out []geom.Point
	lo, hi := columnRange(f.cols, r)
	for i := lo; i < hi; i++ {
		col := &f.cols[i]
		f.stats.BBChecked++
		a := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y >= r.MinY })
		b := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y > r.MaxY })
		if a >= b {
			continue
		}
		f.stats.PagesScanned++
		f.stats.PointsScanned += int64(b - a)
		for _, p := range col.pts[a:b] {
			if p.X >= r.MinX && p.X <= r.MaxX {
				out = append(out, p)
			}
		}
	}
	f.stats.ResultPoints += int64(len(out))
	return out
}

// PointQuery reports whether p is indexed.
func (f *Index) PointQuery(p geom.Point) bool {
	f.stats.PointQueries++
	lo, hi := columnRange(f.cols, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	for i := lo; i < hi; i++ {
		col := &f.cols[i]
		a := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y >= p.Y })
		for ; a < len(col.pts) && col.pts[a].Y == p.Y; a++ {
			f.stats.PointsScanned++
			if col.pts[a] == p {
				return true
			}
		}
	}
	return false
}

// Insert adds p to its column, keeping the column y-sorted. Columns are
// located by value range; out-of-range points extend the edge columns.
func (f *Index) Insert(p geom.Point) {
	f.stats.Inserts++
	f.count++
	if len(f.cols) == 0 {
		f.cols = []column{{xLo: p.X, xHi: p.X, pts: []geom.Point{p}}}
		f.bounds = geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		return
	}
	f.bounds = f.bounds.ExtendPoint(p)
	i := sort.Search(len(f.cols), func(j int) bool { return f.cols[j].xHi >= p.X })
	if i == len(f.cols) {
		i--
	}
	col := &f.cols[i]
	if p.X < col.xLo {
		col.xLo = p.X
	}
	if p.X > col.xHi {
		col.xHi = p.X
	}
	at := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y >= p.Y })
	col.pts = append(col.pts, geom.Point{})
	copy(col.pts[at+1:], col.pts[at:])
	col.pts[at] = p
}

// Len returns the number of indexed points.
func (f *Index) Len() int { return f.count }

// Columns returns the number of grid columns chosen by layout optimization.
func (f *Index) Columns() int { return f.columns }

// Bytes returns the approximate footprint.
func (f *Index) Bytes() int64 {
	b := int64(64)
	for _, c := range f.cols {
		b += 16 + 24 + int64(cap(c.pts))*16
	}
	return b
}

// Stats returns the counters.
func (f *Index) Stats() *storage.Stats { return &f.stats }

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// RangeQueryPhased runs a range query in two separated phases and returns
// their durations (projection: column and y-range location via binary
// search; scan: run filtering), for the Figure 9 reproduction.
func (f *Index) RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration) {
	f.stats.RangeQueries++
	start := time.Now()
	type run struct {
		col  int
		a, b int
	}
	var runs []run
	lo, hi := columnRange(f.cols, r)
	for i := lo; i < hi; i++ {
		col := &f.cols[i]
		f.stats.BBChecked++
		a := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y >= r.MinY })
		b := sort.Search(len(col.pts), func(j int) bool { return col.pts[j].Y > r.MaxY })
		if a < b {
			runs = append(runs, run{i, a, b})
		}
	}
	projection = time.Since(start)
	start = time.Now()
	for _, u := range runs {
		f.stats.PagesScanned++
		f.stats.PointsScanned += int64(u.b - u.a)
		for _, p := range f.cols[u.col].pts[u.a:u.b] {
			if p.X >= r.MinX && p.X <= r.MaxX {
				pts = append(pts, p)
			}
		}
	}
	scan = time.Since(start)
	f.stats.ResultPoints += int64(len(pts))
	return pts, projection, scan
}
