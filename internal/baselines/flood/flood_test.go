package flood

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.ConformanceUpdatable(t, func(pts []geom.Point, qs []geom.Rect) index.Updatable {
		return Build(pts, Options{SampleQueries: qs})
	})
}

func TestLayoutOptimizationPicksColumns(t *testing.T) {
	pts := indextest.ClusteredPoints(20000, 1)
	qs := indextest.SkewedQueries(100, 2)
	f := Build(pts, Options{SampleQueries: qs})
	if f.Columns() < 2 {
		t.Errorf("layout optimization chose %d columns", f.Columns())
	}
	// Tall-skinny queries should prefer more columns than wide-flat ones.
	tall := make([]geom.Rect, 50)
	wide := make([]geom.Rect, 50)
	for i := range tall {
		c := 0.1 + float64(i)*0.015
		tall[i] = geom.Rect{MinX: c, MinY: 0.1, MaxX: c + 0.002, MaxY: 0.9}
		wide[i] = geom.Rect{MinX: 0.1, MinY: c, MaxX: 0.9, MaxY: c + 0.002}
	}
	ft := Build(pts, Options{SampleQueries: tall})
	fw := Build(pts, Options{SampleQueries: wide})
	if ft.Columns() < fw.Columns() {
		t.Errorf("tall queries chose %d columns, wide chose %d; expected tall >= wide",
			ft.Columns(), fw.Columns())
	}
}

func TestEmptyBuild(t *testing.T) {
	f := Build(nil, Options{})
	if f.Len() != 0 || f.PointQuery(geom.Point{X: 0, Y: 0}) {
		t.Error("empty index misbehaves")
	}
	f.Insert(geom.Point{X: 0.5, Y: 0.5})
	if !f.PointQuery(geom.Point{X: 0.5, Y: 0.5}) {
		t.Error("insert into empty index lost the point")
	}
}
