package dataset

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func TestGenerateBasics(t *testing.T) {
	for _, r := range Regions() {
		pts := Generate(r, 5000, 1)
		if len(pts) != 5000 {
			t.Fatalf("%v: generated %d points", r, len(pts))
		}
		for _, p := range pts {
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				t.Fatalf("%v: point %v outside the unit square", r, p)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Japan, 1000, 7)
	b := Generate(Japan, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different points at %d", i)
		}
	}
	c := Generate(Japan, 1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestRegionsDifferFromEachOther(t *testing.T) {
	// Coarse distribution check: the grid histograms of two regions should
	// differ substantially.
	grid := func(pts []geom.Point) [16]int {
		var g [16]int
		for _, p := range pts {
			i := int(p.X*4) + 4*int(p.Y*4)
			if i > 15 {
				i = 15
			}
			g[i]++
		}
		return g
	}
	a := grid(Generate(CaliNev, 10000, 1))
	b := grid(Generate(NewYork, 10000, 1))
	diff := 0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff < 5000 {
		t.Errorf("CaliNev and NewYork histograms too similar (L1 diff %d)", diff)
	}
}

func TestRegionsAreSkewed(t *testing.T) {
	// Every region should be far from uniform: its densest 1/16 grid cell
	// should hold well above the uniform share of points.
	for _, r := range Regions() {
		pts := Generate(r, 20000, 2)
		var g [16]int
		for _, p := range pts {
			i := int(p.X*4) + 4*int(p.Y*4)
			if i > 15 {
				i = 15
			}
			g[i]++
		}
		max := 0
		for _, c := range g {
			if c > max {
				max = c
			}
		}
		if max < 2*20000/16 {
			t.Errorf("%v: max cell %d points, expected clear skew above uniform share %d", r, max, 20000/16)
		}
	}
}

func TestUniform(t *testing.T) {
	pts := Uniform(10000, 3)
	var g [16]int
	for _, p := range pts {
		i := int(p.X*4) + 4*int(p.Y*4)
		if i > 15 {
			i = 15
		}
		g[i]++
	}
	for i, c := range g {
		if c < 10000/16/2 || c > 10000/16*2 {
			t.Errorf("uniform cell %d has %d points, far from %d", i, c, 10000/16)
		}
	}
}

func TestSample(t *testing.T) {
	pts := Uniform(100, 4)
	s := Sample(pts, 10, 5)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d", len(s))
	}
	seen := map[geom.Point]int{}
	for _, p := range pts {
		seen[p]++
	}
	for _, p := range s {
		if seen[p] == 0 {
			t.Fatalf("sampled point %v not in source", p)
		}
		seen[p]--
	}
	if got := Sample(pts, 200, 6); len(got) != 100 {
		t.Errorf("oversized sample should return all points, got %d", len(got))
	}
}

func TestHotspotsInsideDomain(t *testing.T) {
	for _, r := range Regions() {
		for _, h := range Hotspots(r) {
			if h.X < 0 || h.X > 1 || h.Y < 0 || h.Y > 1 {
				t.Errorf("%v hotspot %v outside unit square", r, h)
			}
		}
		if len(Hotspots(r)) < 2 {
			t.Errorf("%v: expected at least two hotspots", r)
		}
	}
}

func TestRegionString(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Regions() {
		names[r.String()] = true
	}
	if len(names) != 4 {
		t.Errorf("region names not distinct: %v", names)
	}
	if Region(99).String() == "" {
		t.Error("unknown region should still produce a string")
	}
}
