// Package dataset generates the synthetic stand-ins for the paper's four
// OpenStreetMap POI extracts (§6.2): California Coast (CaliNev), New York
// City (NewYork), Japan (Japan), and the Iberian Peninsula (Iberia).
//
// The real extracts are not redistributable here, so each region is modelled
// as a seeded mixture of anisotropic Gaussian clusters plus a sparse uniform
// background, shaped after the region's qualitative geography: a long
// coastal band for CaliNev, an extremely dense metro core for NewYork, an
// island arc for Japan, and coastal blobs around a sparse interior for
// Iberia. The indexes under test only observe 2-D point sets; what drives
// the paper's effects is multi-modal, region-specific skew, which these
// mixtures reproduce. All generation is deterministic in the seed.
//
// Points live in the unit square [0,1]².
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/wazi-index/wazi/internal/geom"
)

// Region identifies one of the four evaluation datasets.
type Region int

// The four regions of §6.2.
const (
	CaliNev Region = iota
	NewYork
	Japan
	Iberia
	numRegions
)

// Regions lists all regions in evaluation order.
func Regions() []Region { return []Region{CaliNev, NewYork, Japan, Iberia} }

// RegionByName resolves a region case-insensitively by its String name —
// the shared lookup behind every CLI's -region/-regions flag.
func RegionByName(name string) (Region, bool) {
	for _, r := range Regions() {
		if strings.EqualFold(r.String(), name) {
			return r, true
		}
	}
	return 0, false
}

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case CaliNev:
		return "CaliNev"
	case NewYork:
		return "NewYork"
	case Japan:
		return "Japan"
	case Iberia:
		return "Iberia"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// cluster is one anisotropic Gaussian component of a region mixture.
type cluster struct {
	cx, cy float64 // center
	sx, sy float64 // axis standard deviations
	rot    float64 // rotation in radians
	w      float64 // relative weight
}

// background is the weight share drawn uniformly over the whole square.
type regionSpec struct {
	clusters   []cluster
	background float64
}

// spec returns the mixture describing a region's POI distribution.
func (r Region) spec() regionSpec {
	switch r {
	case CaliNev:
		// A long coastal band running NW→SE (San Francisco → Los Angeles →
		// San Diego) with sparse desert/Nevada points inland.
		return regionSpec{
			clusters: []cluster{
				{cx: 0.18, cy: 0.82, sx: 0.035, sy: 0.10, rot: -0.5, w: 3}, // bay area
				{cx: 0.30, cy: 0.55, sx: 0.03, sy: 0.12, rot: -0.6, w: 2},  // central coast
				{cx: 0.45, cy: 0.28, sx: 0.06, sy: 0.05, rot: -0.4, w: 4},  // LA basin
				{cx: 0.55, cy: 0.12, sx: 0.03, sy: 0.03, rot: 0, w: 1.5},   // san diego
				{cx: 0.75, cy: 0.65, sx: 0.04, sy: 0.04, rot: 0, w: 0.8},   // reno/vegas
			},
			background: 0.08,
		}
	case NewYork:
		// One overwhelming metro core with satellite boroughs — the most
		// skewed of the four.
		return regionSpec{
			clusters: []cluster{
				{cx: 0.48, cy: 0.52, sx: 0.02, sy: 0.05, rot: 0.3, w: 6}, // manhattan
				{cx: 0.56, cy: 0.44, sx: 0.05, sy: 0.04, rot: 0, w: 3},   // brooklyn/queens
				{cx: 0.40, cy: 0.42, sx: 0.03, sy: 0.03, rot: 0, w: 1},   // staten island/jersey
				{cx: 0.52, cy: 0.68, sx: 0.04, sy: 0.05, rot: 0, w: 1},   // bronx/westchester
			},
			background: 0.05,
		}
	case Japan:
		// An island arc from SW to NE with the Kanto plain dominating.
		return regionSpec{
			clusters: []cluster{
				{cx: 0.15, cy: 0.18, sx: 0.05, sy: 0.03, rot: 0.5, w: 1.5},  // kyushu
				{cx: 0.35, cy: 0.30, sx: 0.07, sy: 0.03, rot: 0.35, w: 2.5}, // kansai
				{cx: 0.55, cy: 0.45, sx: 0.05, sy: 0.04, rot: 0.5, w: 4},    // kanto/tokyo
				{cx: 0.70, cy: 0.65, sx: 0.04, sy: 0.06, rot: 0.7, w: 1},    // tohoku
				{cx: 0.82, cy: 0.85, sx: 0.05, sy: 0.04, rot: 0.4, w: 0.8},  // hokkaido
			},
			background: 0.06,
		}
	default: // Iberia
		// Coastal blobs (Lisbon, Porto, Madrid inland, Barcelona, Valencia,
		// Andalusia) around a comparatively empty interior.
		return regionSpec{
			clusters: []cluster{
				{cx: 0.10, cy: 0.45, sx: 0.03, sy: 0.05, rot: 0, w: 1.5}, // lisbon coast
				{cx: 0.14, cy: 0.70, sx: 0.03, sy: 0.04, rot: 0, w: 1},   // porto
				{cx: 0.45, cy: 0.55, sx: 0.05, sy: 0.05, rot: 0, w: 2},   // madrid
				{cx: 0.85, cy: 0.70, sx: 0.04, sy: 0.05, rot: 0.3, w: 2}, // barcelona
				{cx: 0.75, cy: 0.45, sx: 0.03, sy: 0.05, rot: 0, w: 1},   // valencia
				{cx: 0.35, cy: 0.18, sx: 0.08, sy: 0.04, rot: 0, w: 1.5}, // andalusia
			},
			background: 0.12,
		}
	}
}

// Generate draws n points from the region's mixture, deterministically in
// seed.
func Generate(r Region, n int, seed int64) []geom.Point {
	spec := r.spec()
	rng := rand.New(rand.NewSource(seed ^ int64(r)<<32))
	var totalW float64
	for _, c := range spec.clusters {
		totalW += c.w
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		if rng.Float64() < spec.background {
			pts = append(pts, geom.Point{X: rng.Float64(), Y: rng.Float64()})
			continue
		}
		c := pickCluster(spec.clusters, totalW, rng)
		p, ok := sampleCluster(c, rng)
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

// Uniform draws n points uniformly from the unit square.
func Uniform(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// Sample draws k points from pts without replacement (or a copy of all of
// pts when k >= len(pts)), deterministically in seed.
func Sample(pts []geom.Point, k int, seed int64) []geom.Point {
	if k >= len(pts) {
		out := make([]geom.Point, len(pts))
		copy(out, pts)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(pts))[:k]
	out := make([]geom.Point, k)
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

func pickCluster(cs []cluster, totalW float64, rng *rand.Rand) cluster {
	t := rng.Float64() * totalW
	for _, c := range cs {
		t -= c.w
		if t <= 0 {
			return c
		}
	}
	return cs[len(cs)-1]
}

// sampleCluster draws one point from an anisotropic rotated Gaussian,
// rejecting samples outside the unit square (ok=false lets the caller
// resample a cluster too, keeping relative weights intact in expectation).
func sampleCluster(c cluster, rng *rand.Rand) (geom.Point, bool) {
	gx := rng.NormFloat64() * c.sx
	gy := rng.NormFloat64() * c.sy
	sin, cos := math.Sin(c.rot), math.Cos(c.rot)
	x := c.cx + gx*cos - gy*sin
	y := c.cy + gx*sin + gy*cos
	if x < 0 || x > 1 || y < 0 || y > 1 {
		return geom.Point{}, false
	}
	return geom.Point{X: x, Y: y}, true
}

// Hotspots returns the region's check-in hotspot mixture used by the
// workload generator: a skewed re-weighting of a few of the region's
// clusters plus extra "popular venue" hotspots that do not coincide with
// data-density peaks. This mirrors the paper's Gowalla check-ins, which
// concentrate on popular locations rather than following the POI density.
func Hotspots(r Region) []geom.Point {
	switch r {
	case CaliNev:
		return []geom.Point{{X: 0.20, Y: 0.78}, {X: 0.44, Y: 0.30}, {X: 0.73, Y: 0.63}}
	case NewYork:
		return []geom.Point{{X: 0.49, Y: 0.55}, {X: 0.47, Y: 0.49}, {X: 0.58, Y: 0.46}}
	case Japan:
		return []geom.Point{{X: 0.56, Y: 0.46}, {X: 0.36, Y: 0.31}, {X: 0.16, Y: 0.20}}
	default: // Iberia
		return []geom.Point{{X: 0.46, Y: 0.56}, {X: 0.84, Y: 0.69}, {X: 0.11, Y: 0.46}}
	}
}
