package rankspace

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func TestRanksMatchSortedPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if i > 0 && rng.Intn(5) == 0 {
			pts[i].X = pts[rng.Intn(i)].X // duplicate coordinates
		}
	}
	m := New(pts)
	if m.Len() != len(pts) {
		t.Fatalf("Len = %d", m.Len())
	}
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
	}
	sort.Float64s(xs)
	for _, p := range pts {
		r := int(m.RankX(p.X))
		if xs[r] != p.X {
			t.Fatalf("RankX(%v) = %d, but xs[%d] = %v", p.X, r, r, xs[r])
		}
		if r > 0 && xs[r-1] == p.X {
			t.Fatalf("RankX must return the first occurrence of %v", p.X)
		}
		if !m.HasX(p.X) || !m.HasY(p.Y) {
			t.Fatal("HasX/HasY must report indexed coordinates")
		}
	}
	if m.HasX(-5) || m.HasY(99) {
		t.Error("HasX/HasY false positives")
	}
}

func TestRangeMapsToInclusiveRanks(t *testing.T) {
	pts := []geom.Point{{X: 0.1, Y: 0.5}, {X: 0.2, Y: 0.5}, {X: 0.2, Y: 0.7}, {X: 0.9, Y: 0.1}}
	m := New(pts)
	lo, hi, ok := m.RangeX(0.15, 0.5)
	if !ok || lo != 1 || hi != 2 {
		t.Fatalf("RangeX(0.15, 0.5) = (%d, %d, %v), want (1, 2, true)", lo, hi, ok)
	}
	// Exact-boundary inclusivity.
	lo, hi, ok = m.RangeX(0.1, 0.2)
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("RangeX(0.1, 0.2) = (%d, %d, %v), want (0, 2, true)", lo, hi, ok)
	}
	if _, _, ok := m.RangeX(0.3, 0.8); ok {
		t.Error("empty range must report ok=false")
	}
	if _, _, ok := m.RangeY(2, 3); ok {
		t.Error("out-of-domain range must report ok=false")
	}
	if m.Bytes() <= 0 {
		t.Error("Bytes must be positive")
	}
}

// Property: for random data and intervals, the rank range size equals the
// brute-force count of coordinates in the interval.
func TestRangeCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: float64(rng.Intn(50)) / 50, Y: rng.Float64()}
	}
	m := New(pts)
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		want := 0
		for _, p := range pts {
			if p.X >= a && p.X <= b {
				want++
			}
		}
		lo, hi, ok := m.RangeX(a, b)
		got := 0
		if ok {
			got = int(hi-lo) + 1
		}
		if got != want {
			t.Fatalf("RangeX(%v, %v) covers %d ranks, want %d", a, b, got, want)
		}
	}
}
