// Package rankspace maps float coordinates to dense integer ranks — the
// "rank space" projection used by ZM-index-style learned spatial indexes
// (Zpgm, QUILTS, RSMI in the paper's Figure 4). Each coordinate maps to its
// rank among all data coordinates of that dimension, so a query rectangle
// maps to an inclusive rank rectangle.
package rankspace

import (
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
)

// Mapping holds the sorted per-dimension coordinate arrays.
type Mapping struct {
	xs, ys []float64
}

// New builds the mapping for a dataset.
func New(pts []geom.Point) *Mapping {
	m := &Mapping{
		xs: make([]float64, len(pts)),
		ys: make([]float64, len(pts)),
	}
	for i, p := range pts {
		m.xs[i] = p.X
		m.ys[i] = p.Y
	}
	sort.Float64s(m.xs)
	sort.Float64s(m.ys)
	return m
}

// Len returns the number of points the mapping was built over.
func (m *Mapping) Len() int { return len(m.xs) }

// RankX returns the rank of an x-coordinate that is present in the data:
// the index of its first occurrence in the sorted coordinate array.
func (m *Mapping) RankX(v float64) uint32 {
	return uint32(sort.SearchFloat64s(m.xs, v))
}

// RankY is RankX for the y dimension.
func (m *Mapping) RankY(v float64) uint32 {
	return uint32(sort.SearchFloat64s(m.ys, v))
}

// HasX reports whether the exact coordinate value occurs in the data.
func (m *Mapping) HasX(v float64) bool {
	i := sort.SearchFloat64s(m.xs, v)
	return i < len(m.xs) && m.xs[i] == v
}

// HasY is HasX for the y dimension.
func (m *Mapping) HasY(v float64) bool {
	i := sort.SearchFloat64s(m.ys, v)
	return i < len(m.ys) && m.ys[i] == v
}

// RangeX maps a closed value interval [a, b] to the inclusive rank interval
// of coordinates falling inside it. ok is false when no coordinate does.
func (m *Mapping) RangeX(a, b float64) (lo, hi uint32, ok bool) {
	l := sort.SearchFloat64s(m.xs, a)
	h := sort.Search(len(m.xs), func(i int) bool { return m.xs[i] > b })
	if l >= h {
		return 0, 0, false
	}
	return uint32(l), uint32(h - 1), true
}

// RangeY is RangeX for the y dimension.
func (m *Mapping) RangeY(a, b float64) (lo, hi uint32, ok bool) {
	l := sort.SearchFloat64s(m.ys, a)
	h := sort.Search(len(m.ys), func(i int) bool { return m.ys[i] > b })
	if l >= h {
		return 0, 0, false
	}
	return uint32(l), uint32(h - 1), true
}

// Bytes returns the mapping's footprint.
func (m *Mapping) Bytes() int64 { return int64(len(m.xs)+len(m.ys)) * 8 }
