package density

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func uniformPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func clusteredPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.3}, {X: 0.5, Y: 0.8}}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		pts[i] = geom.Point{
			X: math.Min(1, math.Max(0, c.X+rng.NormFloat64()*0.05)),
			Y: math.Min(1, math.Max(0, c.Y+rng.NormFloat64()*0.05)),
		}
	}
	return pts
}

func TestTotalMatchesPointCount(t *testing.T) {
	pts := uniformPoints(1000, 1)
	f := NewForest(pts, DefaultOptions())
	if f.Total() != 1000 {
		t.Fatalf("Total = %v, want 1000", f.Total())
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %v, want 1000", f.Len())
	}
}

func TestFullCoverIsExact(t *testing.T) {
	pts := clusteredPoints(5000, 2)
	f := NewForest(pts, DefaultOptions())
	all := geom.RectFromPoints(pts)
	got := f.Estimate(all)
	if math.Abs(got-5000) > 1e-6 {
		t.Fatalf("estimate over the full domain = %v, want 5000 exactly", got)
	}
}

func TestDisjointIsZero(t *testing.T) {
	pts := uniformPoints(1000, 3)
	f := NewForest(pts, DefaultOptions())
	if got := f.Estimate(geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}); got != 0 {
		t.Fatalf("estimate over disjoint rect = %v, want 0", got)
	}
	if got := f.Estimate(geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}); got != 0 {
		t.Fatalf("estimate over invalid rect = %v, want 0", got)
	}
}

// Statistical accuracy: on uniform and clustered data the forest estimate
// should land within a modest relative error of the exact count for
// moderately sized query rectangles.
func TestEstimateAccuracy(t *testing.T) {
	for name, pts := range map[string][]geom.Point{
		"uniform":   uniformPoints(20000, 4),
		"clustered": clusteredPoints(20000, 5),
	} {
		f := NewForest(pts, Options{Trees: 8, LeafSize: 32, Seed: 6})
		exact := NewExactCounter(pts, nil)
		rng := rand.New(rand.NewSource(7))
		var sumRelErr float64
		trials := 100
		for i := 0; i < trials; i++ {
			cx, cy := rng.Float64(), rng.Float64()
			w := 0.05 + rng.Float64()*0.2
			r := geom.Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
			truth := exact.Estimate(r)
			got := f.Estimate(r)
			denom := math.Max(truth, 50) // avoid blowing up tiny counts
			sumRelErr += math.Abs(got-truth) / denom
		}
		avg := sumRelErr / float64(trials)
		// Clustered data is intrinsically harder for piecewise-constant
		// density models; 30% average relative error on small windows is
		// within the tolerance the construction algorithm needs (it only
		// ranks candidate splits).
		if avg > 0.30 {
			t.Errorf("%s: average relative error %.3f exceeds 0.30", name, avg)
		}
	}
}

func TestWeightedForest(t *testing.T) {
	pts := uniformPoints(2000, 8)
	weights := make([]float64, len(pts))
	var total float64
	for i := range weights {
		// Weight points in the left half 10x heavier.
		if pts[i].X < 0.5 {
			weights[i] = 10
		} else {
			weights[i] = 1
		}
		total += weights[i]
	}
	f := NewWeightedForest(pts, weights, Options{Trees: 8, LeafSize: 32, Seed: 9})
	if math.Abs(f.Total()-total) > 1e-6 {
		t.Fatalf("Total = %v, want %v", f.Total(), total)
	}
	left := f.Estimate(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 1})
	right := f.Estimate(geom.Rect{MinX: 0.5, MinY: 0, MaxX: 1, MaxY: 1})
	if left < 5*right {
		t.Errorf("weighted estimate should strongly favor the left half: left=%v right=%v", left, right)
	}
}

func TestWeightedPanicsOnShortWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short weights slice")
		}
	}()
	NewWeightedForest(uniformPoints(10, 1), []float64{1, 2}, DefaultOptions())
}

func TestEmptyForest(t *testing.T) {
	f := NewForest(nil, DefaultOptions())
	if f.Total() != 0 {
		t.Errorf("empty forest Total = %v", f.Total())
	}
	if got := f.Estimate(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); got != 0 {
		t.Errorf("empty forest Estimate = %v", got)
	}
}

func TestDegenerateData(t *testing.T) {
	// All points coincide: forest must not recurse forever and the
	// estimate over any rect containing the point must equal n.
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: 0.5, Y: 0.5}
	}
	f := NewForest(pts, Options{Trees: 2, LeafSize: 16, Seed: 10})
	got := f.Estimate(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if math.Abs(got-500) > 1e-6 {
		t.Fatalf("estimate = %v, want 500", got)
	}
}

func TestCollinearData(t *testing.T) {
	// Points on a vertical line exercise the fallback split dimension.
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: 0.25, Y: float64(i) / 1000}
	}
	f := NewForest(pts, Options{Trees: 4, LeafSize: 16, Seed: 11})
	got := f.Estimate(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 0.5})
	if math.Abs(got-500) > 50 {
		t.Fatalf("estimate = %v, want about 500", got)
	}
}

func TestExactCounter(t *testing.T) {
	pts := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}, {X: 0.5, Y: 0.5}}
	c := NewExactCounter(pts, nil)
	if c.Total() != 3 {
		t.Errorf("Total = %v", c.Total())
	}
	if got := c.Estimate(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.6, MaxY: 0.6}); got != 2 {
		t.Errorf("Estimate = %v, want 2", got)
	}
	w := NewExactCounter(pts, []float64{1, 2, 4})
	if w.Total() != 7 {
		t.Errorf("weighted Total = %v", w.Total())
	}
	if got := w.Estimate(geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 1, MaxY: 1}); got != 6 {
		t.Errorf("weighted Estimate = %v, want 6", got)
	}
}

func TestBytesNonZero(t *testing.T) {
	f := NewForest(uniformPoints(1000, 12), DefaultOptions())
	if f.Bytes() <= 0 {
		t.Error("forest Bytes should be positive")
	}
}

func BenchmarkEstimate(b *testing.B) {
	pts := clusteredPoints(100000, 13)
	f := NewForest(pts, DefaultOptions())
	r := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = f.Estimate(r)
	}
	_ = sink
}
