// Package density implements Random Forest Density Estimation (RFDE, Wen &
// Hang 2022) as used by the paper: a forest of k-d trees with randomised
// split dimensions, where every node stores the cardinality (or total
// weight) of the points in its region. A density query for a rectangle
// traverses each tree, summing cardinalities of fully-covered nodes and
// pro-rating leaves by area overlap, and averages across trees.
//
// WaZI uses an unweighted forest to estimate the number of data points
// falling in candidate child cells during greedy construction (§4.3). The
// CUR baseline uses the weighted variant, with each point weighted by the
// number of distinct workload queries that fetch it (§6.1).
package density

import (
	"math/rand"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
)

// Estimator estimates the number of (weighted) points inside a rectangle.
type Estimator interface {
	// Estimate returns the estimated total weight of points in r.
	Estimate(r geom.Rect) float64
	// Total returns the total weight of the indexed points.
	Total() float64
}

// Options configure forest construction.
type Options struct {
	// Trees is the number of randomized trees in the forest. More trees
	// reduce estimate variance at proportional build and query cost.
	Trees int
	// LeafSize is the maximum number of points per tree leaf.
	LeafSize int
	// Seed seeds the randomized split-dimension choices.
	Seed int64
}

// DefaultOptions returns the forest configuration used throughout the
// experiments: 4 trees with 64-point leaves.
func DefaultOptions() Options { return Options{Trees: 4, LeafSize: 64, Seed: 1} }

func (o *Options) fill() {
	if o.Trees <= 0 {
		o.Trees = 4
	}
	if o.LeafSize <= 0 {
		o.LeafSize = 64
	}
}

// Forest is a random forest density estimator over weighted points.
// The zero value is not usable; construct with NewForest or NewWeightedForest.
type Forest struct {
	trees []*kdNode
	total float64
	nPts  int
}

// NewForest builds an unweighted forest (every point has weight 1).
func NewForest(pts []geom.Point, opts Options) *Forest {
	return NewWeightedForest(pts, nil, opts)
}

// NewWeightedForest builds a forest over pts with the given per-point
// weights. A nil weights slice means unit weights. It panics if weights is
// non-nil and shorter than pts.
func NewWeightedForest(pts []geom.Point, weights []float64, opts Options) *Forest {
	opts.fill()
	if weights != nil && len(weights) < len(pts) {
		panic("density: weights shorter than points")
	}
	f := &Forest{nPts: len(pts)}
	for _, w := range weights {
		f.total += w
	}
	if weights == nil {
		f.total = float64(len(pts))
	}
	if len(pts) == 0 {
		return f
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	// Each tree permutes indices independently and splits on random
	// dimensions, giving de-correlated estimates.
	for t := 0; t < opts.Trees; t++ {
		idx := make([]int, len(pts))
		for i := range idx {
			idx[i] = i
		}
		f.trees = append(f.trees, buildKD(pts, weights, idx, opts.LeafSize, rand.New(rand.NewSource(rng.Int63()))))
	}
	return f
}

// Total returns the total weight of the indexed points.
func (f *Forest) Total() float64 { return f.total }

// Len returns the number of indexed points.
func (f *Forest) Len() int { return f.nPts }

// Estimate returns the estimated total weight of points inside r, averaged
// over the forest's trees.
func (f *Forest) Estimate(r geom.Rect) float64 {
	if len(f.trees) == 0 || !r.Valid() {
		return 0
	}
	var sum float64
	for _, t := range f.trees {
		sum += t.estimate(r)
	}
	return sum / float64(len(f.trees))
}

// Bytes returns an estimate of the forest's in-memory footprint, used for
// index-size accounting (Table 5 includes construction-time structures only
// for indexes that retain them; WaZI discards its forest after build).
func (f *Forest) Bytes() int64 {
	var n int64
	for _, t := range f.trees {
		n += t.bytes()
	}
	return n
}

// kdNode is one node of a randomized k-d tree. Every node stores the tight
// minimum bounding rectangle of its subset rather than the half-space cell
// inherited from the split: empty space then contributes nothing to density
// estimates, which matters greatly on clustered spatial data. Leaves hold a
// weight only (the points themselves are not retained — only region
// statistics, as in RFDE).
type kdNode struct {
	region geom.Rect
	weight float64
	left   *kdNode
	right  *kdNode
}

func buildKD(pts []geom.Point, weights []float64, idx []int, leafSize int, rng *rand.Rand) *kdNode {
	n := &kdNode{region: mbrOf(pts, idx)}
	for _, i := range idx {
		if weights == nil {
			n.weight++
		} else {
			n.weight += weights[i]
		}
	}
	if len(idx) <= leafSize {
		return n
	}
	// Randomized split dimension; split at the median coordinate so trees
	// stay balanced regardless of the data distribution.
	dim := rng.Intn(2)
	coord := func(i int) float64 {
		if dim == 0 {
			return pts[i].X
		}
		return pts[i].Y
	}
	sort.Slice(idx, func(a, b int) bool { return coord(idx[a]) < coord(idx[b]) })
	mid := len(idx) / 2
	split := coord(idx[mid])
	// Degenerate distributions can place every point on the split plane;
	// fall back to a leaf rather than recurse forever.
	if split == coord(idx[0]) && split == coord(idx[len(idx)-1]) {
		dim = 1 - dim
		coord = func(i int) float64 {
			if dim == 0 {
				return pts[i].X
			}
			return pts[i].Y
		}
		sort.Slice(idx, func(a, b int) bool { return coord(idx[a]) < coord(idx[b]) })
		mid = len(idx) / 2
		split = coord(idx[mid])
		if split == coord(idx[0]) && split == coord(idx[len(idx)-1]) {
			return n // all points coincide
		}
	}
	// Ensure both sides are non-empty by moving mid off a run of equal
	// coordinates.
	for mid > 0 && coord(idx[mid-1]) == split {
		mid--
	}
	if mid == 0 {
		for mid < len(idx) && coord(idx[mid]) == split {
			mid++
		}
		if mid == len(idx) {
			return n
		}
		split = coord(idx[mid])
		for mid > 0 && coord(idx[mid-1]) == split {
			mid--
		}
	}
	n.left = buildKD(pts, weights, idx[:mid], leafSize, rng)
	n.right = buildKD(pts, weights, idx[mid:], leafSize, rng)
	return n
}

// mbrOf returns the minimum bounding rectangle of the points selected by
// idx.
func mbrOf(pts []geom.Point, idx []int) geom.Rect {
	r := geom.Rect{
		MinX: pts[idx[0]].X, MinY: pts[idx[0]].Y,
		MaxX: pts[idx[0]].X, MaxY: pts[idx[0]].Y,
	}
	for _, i := range idx[1:] {
		r = r.ExtendPoint(pts[i])
	}
	return r
}

// estimate sums node weights over the query rectangle: fully covered nodes
// contribute their whole weight; partially covered leaves contribute weight
// pro-rated by area overlap (the density-estimation step of RFDE).
func (n *kdNode) estimate(r geom.Rect) float64 {
	if !n.region.Intersects(r) {
		return 0
	}
	if r.ContainsRect(n.region) {
		return n.weight
	}
	if n.left == nil { // leaf
		return n.weight * overlapFraction(n.region, r)
	}
	return n.left.estimate(r) + n.right.estimate(r)
}

// overlapFraction returns the fraction of region covered by r, assuming
// uniform density within region. Degenerate regions (zero width or height,
// from collinear or coincident points) prorate by the remaining extent.
func overlapFraction(region, r geom.Rect) float64 {
	ov := region.Intersect(r)
	if !ov.Valid() {
		return 0
	}
	switch {
	case region.Area() > 0:
		return ov.Area() / region.Area()
	case region.Width() > 0:
		return ov.Width() / region.Width()
	case region.Height() > 0:
		return ov.Height() / region.Height()
	default:
		return 1 // point mass inside r
	}
}

func (n *kdNode) bytes() int64 {
	const nodeBytes = int64(8*6 + 2*8 + 8) // region + weight/value + pointers, approximate
	if n == nil {
		return 0
	}
	return nodeBytes + n.left.bytes() + n.right.bytes()
}

// ExactCounter is an Estimator that counts points exactly by brute force.
// It is used in tests as ground truth and by the UseExactCounts construction
// option referenced in DESIGN.md ablation 3.
type ExactCounter struct {
	pts     []geom.Point
	weights []float64
	total   float64
}

// NewExactCounter returns an exact (non-learned) estimator over pts with
// optional weights (nil means unit weights).
func NewExactCounter(pts []geom.Point, weights []float64) *ExactCounter {
	c := &ExactCounter{pts: pts, weights: weights}
	if weights == nil {
		c.total = float64(len(pts))
	} else {
		for _, w := range weights[:len(pts)] {
			c.total += w
		}
	}
	return c
}

// Estimate returns the exact total weight of points in r.
func (c *ExactCounter) Estimate(r geom.Rect) float64 {
	var sum float64
	for i, p := range c.pts {
		if r.Contains(p) {
			if c.weights == nil {
				sum++
			} else {
				sum += c.weights[i]
			}
		}
	}
	return sum
}

// Total returns the total weight.
func (c *ExactCounter) Total() float64 { return c.total }
