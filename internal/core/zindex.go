// Package core implements the paper's primary contribution: a generalized
// Z-index whose per-node partition point and child ordering can vary, the
// retrieval-cost model (Eq. 1–5) that scores candidate configurations, the
// greedy workload-aware construction algorithm (Algorithm 3), and the
// look-ahead skipping mechanism (§5, Algorithm 4).
//
// Two build entry points are provided: BuildBase constructs the classic
// Z-index (median splits, "abcd" ordering everywhere), and BuildWaZI
// constructs the workload-aware variant. Both produce the same runtime
// structure, so every query path — with or without skipping — is shared,
// which is exactly what the paper's ablation study (Base, Base+SK, WaZI−SK,
// WaZI) requires.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/wazi-index/wazi/internal/density"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Ordering is the visit order of the four child cells of an internal node.
// Both orderings preserve the dominance monotonicity of the Z-index (§4.1).
type Ordering uint8

const (
	// OrderABCD visits bottom-left, bottom-right, top-left, top-right — the
	// classic 'Z' pattern (position = 2·bity + bitx).
	OrderABCD Ordering = iota
	// OrderACBD visits bottom-left, top-left, bottom-right, top-right — the
	// transposed 'N' pattern (position = 2·bitx + bity).
	OrderACBD
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	if o == OrderABCD {
		return "abcd"
	}
	return "acbd"
}

// Pos returns the position of quadrant q in the ordering.
func (o Ordering) Pos(q geom.Quadrant) int {
	if o == OrderABCD {
		return int(q) // q = 2·bity + bitx already
	}
	return int((q&1)<<1 | q>>1) // 2·bitx + bity
}

// Quad returns the quadrant at position pos in the ordering. It is the
// inverse of Pos (and, conveniently, the same bit swap).
func (o Ordering) Quad(pos int) geom.Quadrant {
	if o == OrderABCD {
		return geom.Quadrant(pos)
	}
	return geom.Quadrant((pos&1)<<1 | pos>>1)
}

// node is one node of the quaternary tree. A node is either internal
// (leaf == nil, children indexed by ordering position) or a leaf node
// (leaf != nil).
type node struct {
	cell  geom.Rect
	split geom.Point
	order Ordering
	child [4]*node
	leaf  *Leaf
}

// Leaf is a leaf of the Z-index: a bounding rectangle, a data page, the
// doubly-linked leaf list (§3), and the four look-ahead pointers (§5.1).
//
// The bounding rectangle is the leaf's cell (the region of space the leaf is
// responsible for) rather than the tight MBR of its points. This makes the
// rectangle immutable under inserts into the cell, which keeps previously
// built look-ahead pointers safe: structural updates only ever shrink the
// rectangles a pointer jumped over, so a leaf skipped at pointer-build time
// remains guaranteed-irrelevant. See lookahead.go for the invariant.
type Leaf struct {
	bounds geom.Rect
	// pid locates the leaf's data page inside the index's PageStore; n
	// caches its point count so pure projection work (counting, cost
	// evaluation) never faults a page in from disk.
	pid        storage.PageID
	n          int
	prev, next *Leaf
	ord        int
	la         [4]*Leaf // look-ahead pointers, indexed by criterion
}

// Criterion enumerates the four irrelevancy criteria of §5.1 under which a
// leaf may be skipped during range-query processing.
type Criterion uint8

// The four criteria. Below means the leaf lies entirely below the query
// rectangle, and so on.
const (
	Below Criterion = iota
	Above
	Left
	Right
	numCriteria
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Below:
		return "below"
	case Above:
		return "above"
	case Left:
		return "left"
	case Right:
		return "right"
	}
	return fmt.Sprintf("Criterion(%d)", uint8(c))
}

// Bounds returns the leaf's bounding rectangle.
func (l *Leaf) Bounds() geom.Rect { return l.bounds }

// Len returns the number of points stored in the leaf's page.
func (l *Leaf) Len() int { return l.n }

// Next returns the following leaf in Ord, or nil at the end of the list.
func (l *Leaf) Next() *Leaf { return l.next }

// Ord returns the leaf's position in the leaf list.
func (l *Leaf) Ord() int { return l.ord }

// Lookahead returns the look-ahead pointer for criterion c (nil means the
// end of the leaf list: no later leaf can satisfy the criterion's
// improvement condition).
func (l *Leaf) Lookahead(c Criterion) *Leaf { return l.la[c] }

// Options configure Z-index construction. The zero value is usable: every
// field has a sensible default applied by fill.
type Options struct {
	// LeafSize is the page capacity L. Default 256 (Table 2).
	LeafSize int
	// Kappa is the number of candidate split points sampled per cell by the
	// greedy construction (κ in Algorithm 3). Default 32.
	Kappa int
	// Alpha is the skip discount α of Eq. 1–5. Zero selects the default:
	// 1e-5 when skipping is enabled (§5.2) and 0.1 otherwise.
	Alpha float64
	// DisableSkipping turns off look-ahead pointer construction and use.
	// The default (false) builds and uses them, as WaZI does.
	DisableSkipping bool
	// Seed seeds candidate sampling and the default density estimator.
	Seed int64
	// Store supplies the PageStore backing the index's clustered pages.
	// Nil selects storage chosen by StoragePath: a fresh RAM-resident
	// store when StoragePath is empty, otherwise a disk-resident store
	// (page file + workload-aware block cache) created at that path.
	Store storage.PageStore
	// StoragePath, when non-empty and Store is nil, creates the
	// disk-resident backend at this path, truncating previous content
	// (builds produce a new page set; warm starts go through
	// LoadWithStore with an adopted store instead).
	StoragePath string
	// StorageCachePages bounds the disk backend's block cache, in pages
	// (default 1024). Ignored for the RAM-resident backend.
	StorageCachePages int
	// StorageDisableMmap forces the disk backend's pread+decode read path
	// instead of zero-copy mapped views. Ignored for the RAM-resident
	// backend.
	StorageDisableMmap bool
	// Estimator supplies data-density estimates to the greedy cost
	// evaluation. Nil builds an RFDE forest over the data (the paper's
	// learned component). Ignored when ExactCounts is set.
	Estimator density.Estimator
	// ExactCounts replaces the learned estimator with exact per-candidate
	// counting. Slower to build; used by tests and the estimator ablation.
	ExactCounts bool
	// DensityOpts configure the default RFDE forest.
	DensityOpts density.Options
	// NoMedianCandidate drops the data median from the candidate split set.
	// By default the median is evaluated alongside the κ uniform samples so
	// that the greedy choice is never starved of the Base configuration.
	NoMedianCandidate bool
	// OrderABCDOnly restricts the greedy construction to the classic
	// "abcd" ordering, isolating the contribution of split-point freedom
	// from ordering freedom (DESIGN.md ablation 4).
	OrderABCDOnly bool
	// MaxDepth bounds tree depth as a degenerate-data guard. Default 48.
	MaxDepth int
}

func (o *Options) fill() {
	if o.LeafSize <= 0 {
		o.LeafSize = 256
	}
	if o.Kappa <= 0 {
		o.Kappa = 32
	}
	if o.Alpha <= 0 {
		if o.DisableSkipping {
			o.Alpha = 0.1
		} else {
			o.Alpha = 1e-5
		}
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 48
	}
	if o.DensityOpts.Trees == 0 {
		o.DensityOpts = density.DefaultOptions()
		o.DensityOpts.Seed = o.Seed + 1
	}
}

// ZIndex is a built Z-index instance (Base or WaZI).
type ZIndex struct {
	root   *node
	head   *Leaf
	bounds geom.Rect
	count  int
	opts   Options
	store  storage.PageStore
	stats  storage.Stats
	// workloadAware records whether the index was built by BuildWaZI; it is
	// reported by Describe and used by the drift advisor.
	workloadAware bool
}

// ErrNoPoints is returned when an index is built over an empty dataset.
var ErrNoPoints = errors.New("core: cannot build index over zero points")

// openStore resolves the configured PageStore: an injected store, a fresh
// disk-resident store at StoragePath, or the RAM-resident default. Callers
// run it after fill so LeafSize is resolved (it sizes the disk slots).
func (o *Options) OpenStore() (storage.PageStore, error) {
	if o.Store != nil {
		return o.Store, nil
	}
	if o.StoragePath != "" {
		return storage.CreatePageFile(o.StoragePath, storage.DiskOptions{
			SlotCap:     o.LeafSize,
			CachePages:  o.StorageCachePages,
			DisableMmap: o.StorageDisableMmap,
		})
	}
	return storage.NewMemStore(), nil
}

// reserveStore pre-sizes a store's contiguous arena for the n points a bulk
// build is about to Alloc — a no-op for backends without one (disk pages
// live in fixed slots already). Called by every build entry point so RAM
// builds lay all leaf pages into one flat buffer.
func reserveStore(st storage.PageStore, n int) {
	if r, ok := st.(interface{ Reserve(int) }); ok {
		r.Reserve(n)
	}
}

// adoptStore attaches a resolved store to the index and routes its cache
// counters into the index's Stats.
func (z *ZIndex) adoptStore(st storage.PageStore) {
	z.store = st
	st.SetStatsSink(&z.stats)
}

// Stats returns the index's cumulative access counters. The pointer is live:
// callers may Reset it between measurement windows.
func (z *ZIndex) Stats() *storage.Stats { return &z.stats }

// Store returns the PageStore holding the index's clustered pages.
func (z *ZIndex) Store() storage.PageStore { return z.store }

// CacheStats returns the block-cache counters of the index's page store
// (zero-valued except Resident/Capacity for the RAM-resident backend).
func (z *ZIndex) CacheStats() storage.CacheStats { return z.store.CacheStats() }

// DropCaches empties the block cache of a disk-resident index (a no-op on
// the RAM backend), putting it in the state a cold start would see.
// Benchmarks and differential tests use it to force refaults mid-stream.
func (z *ZIndex) DropCaches() {
	if ds, ok := z.store.(*storage.DiskStore); ok {
		ds.DropCaches()
	}
}

// Close releases the page store's backing resources (the page file of a
// disk-resident index). The index must not be used afterwards. Close is a
// no-op for the RAM-resident backend.
func (z *ZIndex) Close() error { return z.store.Close() }

// Len returns the number of indexed points.
func (z *ZIndex) Len() int { return z.count }

// Bounds returns the root cell (the data-space rectangle the index covers).
func (z *ZIndex) Bounds() geom.Rect { return z.bounds }

// Options returns the options the index was built with (after defaulting).
func (z *ZIndex) Options() Options { return z.opts }

// WorkloadAware reports whether the index was built by BuildWaZI.
func (z *ZIndex) WorkloadAware() bool { return z.workloadAware }

// SkippingEnabled reports whether look-ahead pointers are built and used.
func (z *ZIndex) SkippingEnabled() bool { return !z.opts.DisableSkipping }

// Leaves returns the number of leaves in the leaf list, including empty
// (tombstoned) leaves left behind by deletions.
func (z *ZIndex) Leaves() int {
	n := 0
	for l := z.head; l != nil; l = l.next {
		n++
	}
	return n
}

// Head returns the first leaf in Ord, for inspection and tests.
func (z *ZIndex) Head() *Leaf { return z.head }

// Depth returns the height of the tree (a single leaf has depth 1).
func (z *ZIndex) Depth() int { return depth(z.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf != nil {
		return 1
	}
	d := 0
	for _, c := range n.child {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Bytes returns the approximate in-memory footprint of the index: tree
// nodes, leaf structures, and the resident data pages (all pages for the
// RAM backend; the block cache for the disk backend). This is the quantity
// reported in Table 5.
func (z *ZIndex) Bytes() int64 {
	var b int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf != nil {
			// Leaf struct: bounds + page id/count + list pointers + ord +
			// 4 look-ahead pointers.
			b += 32 + 8*8
			return
		}
		b += 32 + 16 + 1 + 4*8 // cell + split + order + child pointers
		for _, c := range n.child {
			walk(c)
		}
	}
	walk(z.root)
	return b + z.store.Bytes()
}

// Describe returns a one-line human-readable summary of the index.
func (z *ZIndex) Describe() string {
	kind := "Base Z-index"
	if z.workloadAware {
		kind = "WaZI"
	}
	skip := "with skipping"
	if z.opts.DisableSkipping {
		skip = "no skipping"
	}
	return fmt.Sprintf("%s: %d points, %d leaves, depth %d, L=%d, %s",
		kind, z.count, z.Leaves(), z.Depth(), z.opts.LeafSize, skip)
}

// checkInvariants verifies structural invariants and returns the first
// violation found. It is exported to the package's tests via export_test.go
// and used by failure-injection tests.
func (z *ZIndex) checkInvariants() error {
	// Leaf list is consistent with the tree's in-order leaf sequence.
	var fromTree []*Leaf
	var walk func(n *node) error
	walk = func(n *node) error {
		if n == nil {
			return nil
		}
		if n.leaf != nil {
			if !n.cell.ContainsRect(n.leaf.bounds) && n.cell != n.leaf.bounds {
				return fmt.Errorf("leaf bounds %v escape cell %v", n.leaf.bounds, n.cell)
			}
			pg := z.store.Page(n.leaf.pid)
			if pg.Len() != n.leaf.n {
				return fmt.Errorf("leaf count cache %d disagrees with page length %d", n.leaf.n, pg.Len())
			}
			for _, p := range pg.Pts {
				if !n.leaf.bounds.Contains(p) {
					return fmt.Errorf("point %v outside leaf bounds %v", p, n.leaf.bounds)
				}
			}
			fromTree = append(fromTree, n.leaf)
			return nil
		}
		if !n.cell.Contains(n.split) {
			return fmt.Errorf("split %v outside cell %v", n.split, n.cell)
		}
		for pos := 0; pos < 4; pos++ {
			if err := walk(n.child[pos]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(z.root); err != nil {
		return err
	}
	i, total := 0, 0
	var prev *Leaf
	for l := z.head; l != nil; l = l.next {
		if i >= len(fromTree) || fromTree[i] != l {
			return fmt.Errorf("leaf list diverges from tree order at position %d", i)
		}
		if l.prev != prev {
			return fmt.Errorf("broken prev pointer at ord %d", l.ord)
		}
		if l.ord != i {
			return fmt.Errorf("leaf ord %d at position %d", l.ord, i)
		}
		total += l.n
		prev = l
		i++
	}
	if i != len(fromTree) {
		return fmt.Errorf("leaf list shorter (%d) than tree leaves (%d)", i, len(fromTree))
	}
	if total != z.count {
		return fmt.Errorf("count %d != points in pages %d", z.count, total)
	}
	if !z.opts.DisableSkipping {
		if err := z.checkLookaheadInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// infCost is a sentinel larger than any achievable retrieval cost.
const infCost = math.MaxFloat64
