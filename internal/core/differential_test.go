package core_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/storage"
)

// diskStores hands each differential build a fresh disk store in the test's
// temp dir. A deliberately small cache forces faults and evictions, so the
// differential checks cover the cache-miss path, not just warm hits.
func diskStores(t *testing.T) func() storage.PageStore {
	dir := t.TempDir()
	n := 0
	return func() storage.PageStore {
		n++
		st, err := storage.CreatePageFile(
			filepath.Join(dir, fmt.Sprintf("diff-%03d.pages", n)),
			storage.DiskOptions{SlotCap: 64, CachePages: 24, HistWindow: 128},
		)
		if err != nil {
			panic(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
}

func TestDifferentialWaZI(t *testing.T) {
	newDisk := diskStores(t)
	opts := func() core.Options {
		return core.Options{LeafSize: 64, Seed: 7, ExactCounts: true}
	}
	indextest.Differential(t,
		func(pts []geom.Point, qs []geom.Rect) index.Index {
			z, err := core.BuildWaZI(pts, qs, opts())
			if err != nil {
				panic(err)
			}
			return z
		},
		func(pts []geom.Point, qs []geom.Rect) index.Index {
			o := opts()
			o.Store = newDisk()
			z, err := core.BuildWaZI(pts, qs, o)
			if err != nil {
				panic(err)
			}
			return z
		})
}

// TestDifferentialWaZITinyCache reruns the full differential suite with a
// one-page block cache — every fault evicts, so borrowed views constantly
// straddle eviction — in both read modes of the disk store.
func TestDifferentialWaZITinyCache(t *testing.T) {
	for _, mode := range []struct {
		name        string
		disableMmap bool
	}{{"mmap", false}, {"pread", true}} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			n := 0
			opts := func() core.Options {
				return core.Options{LeafSize: 64, Seed: 7, ExactCounts: true}
			}
			indextest.Differential(t,
				func(pts []geom.Point, qs []geom.Rect) index.Index {
					z, err := core.BuildWaZI(pts, qs, opts())
					if err != nil {
						panic(err)
					}
					return z
				},
				func(pts []geom.Point, qs []geom.Rect) index.Index {
					n++
					st, err := storage.CreatePageFile(
						filepath.Join(dir, fmt.Sprintf("tiny-%03d.pages", n)),
						storage.DiskOptions{SlotCap: 64, CachePages: 1, HistWindow: 128,
							DisableMmap: mode.disableMmap},
					)
					if err != nil {
						panic(err)
					}
					t.Cleanup(func() { st.Close() })
					o := opts()
					o.Store = st
					z, err := core.BuildWaZI(pts, qs, o)
					if err != nil {
						panic(err)
					}
					return z
				})
		})
	}
}

func TestDifferentialBase(t *testing.T) {
	newDisk := diskStores(t)
	indextest.Differential(t,
		func(pts []geom.Point, qs []geom.Rect) index.Index {
			z, err := core.BuildBase(pts, core.Options{LeafSize: 64, Seed: 7})
			if err != nil {
				panic(err)
			}
			return z
		},
		func(pts []geom.Point, qs []geom.Rect) index.Index {
			z, err := core.BuildBase(pts, core.Options{LeafSize: 64, Seed: 7, Store: newDisk()})
			if err != nil {
				panic(err)
			}
			return z
		})
}
