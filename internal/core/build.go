package core

import (
	"math/rand"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// BuildBase constructs the classic Z-index of §3: split points at the data
// medians along each axis and the "abcd" ordering at every node. Look-ahead
// pointers are built unless opts.DisableSkipping is set (the paper's Base
// uses naive scanning, i.e. DisableSkipping=true; the Base+SK ablation
// variant leaves skipping on).
func BuildBase(pts []geom.Point, opts Options) (*ZIndex, error) {
	opts.fill()
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	st, err := opts.OpenStore()
	if err != nil {
		return nil, err
	}
	reserveStore(st, len(pts))
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	z := &ZIndex{bounds: geom.RectFromPoints(own), count: len(own), opts: opts}
	z.adoptStore(st)
	z.root = buildMedian(st, own, z.bounds, opts.LeafSize, opts.MaxDepth)
	z.rebuildLeafList()
	if !opts.DisableSkipping {
		z.rebuildLookahead()
	}
	return z, nil
}

// buildMedian recursively builds the median/abcd tree of the base variant.
func buildMedian(st storage.PageStore, pts []geom.Point, cell geom.Rect, leafSize, depthLeft int) *node {
	n := &node{cell: cell}
	if len(pts) <= leafSize || depthLeft == 0 {
		n.leaf = newLeaf(st, cell, pts)
		return n
	}
	split := geom.Point{X: medianX(pts), Y: medianY(pts)}
	parts := partition(pts, split)
	if degenerate(parts, len(pts)) {
		n.leaf = newLeaf(st, cell, pts)
		return n
	}
	n.split = split
	n.order = OrderABCD
	for q := geom.Quadrant(0); q < 4; q++ {
		sub := parts[q]
		if len(sub) == 0 {
			continue
		}
		pos := n.order.Pos(q)
		n.child[pos] = buildMedian(st, sub, geom.QuadrantRect(cell, split, q), leafSize, depthLeft-1)
	}
	return n
}

// newLeaf creates a leaf node body over pts with the given cell as its
// bounding rectangle, allocating the data page in the index's store (which
// copies pts).
func newLeaf(st storage.PageStore, cell geom.Rect, pts []geom.Point) *Leaf {
	return &Leaf{bounds: cell, pid: st.Alloc(pts, cell), n: len(pts)}
}

// partition splits pts into the four quadrants around split, using the same
// strict > comparisons as geom.QuadrantOf (points on a split line go to the
// lower quadrant).
func partition(pts []geom.Point, split geom.Point) [4][]geom.Point {
	var counts [4]int
	for _, p := range pts {
		counts[geom.QuadrantOf(p, split)]++
	}
	var parts [4][]geom.Point
	for q := range parts {
		if counts[q] > 0 {
			parts[q] = make([]geom.Point, 0, counts[q])
		}
	}
	for _, p := range pts {
		q := geom.QuadrantOf(p, split)
		parts[q] = append(parts[q], p)
	}
	return parts
}

// degenerate reports whether a partition failed to make progress: every
// point landed in a single quadrant. Recursing on such a partition with
// coincident points would never terminate.
func degenerate(parts [4][]geom.Point, total int) bool {
	for _, p := range parts {
		if len(p) == total {
			return true
		}
	}
	return false
}

// medianX returns the median x-coordinate of pts (upper median).
func medianX(pts []geom.Point) float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X
	}
	return quickMedian(vals)
}

// medianY returns the median y-coordinate of pts (upper median).
func medianY(pts []geom.Point) float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Y
	}
	return quickMedian(vals)
}

// quickMedian selects the element at index len/2 in expected linear time.
// It mutates vals.
func quickMedian(vals []float64) float64 {
	k := len(vals) / 2
	lo, hi := 0, len(vals)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted inputs.
		mid := lo + (hi-lo)/2
		if vals[mid] < vals[lo] {
			vals[mid], vals[lo] = vals[lo], vals[mid]
		}
		if vals[hi] < vals[lo] {
			vals[hi], vals[lo] = vals[lo], vals[hi]
		}
		if vals[hi] < vals[mid] {
			vals[hi], vals[mid] = vals[mid], vals[hi]
		}
		pivot := vals[mid]
		i, j := lo, hi
		for i <= j {
			for vals[i] < pivot {
				i++
			}
			for vals[j] > pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return vals[k]
}

// rebuildLeafList rewalks the tree in ordering position order, relinking the
// doubly-linked leaf list and renumbering ords. It runs after construction
// and after every structural update (page split, new leaf).
func (z *ZIndex) rebuildLeafList() {
	var prev *Leaf
	ord := 0
	z.head = nil
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf != nil {
			l := n.leaf
			l.prev = prev
			l.next = nil
			l.ord = ord
			ord++
			if prev != nil {
				prev.next = l
			} else {
				z.head = l
			}
			prev = l
			return
		}
		for pos := 0; pos < 4; pos++ {
			walk(n.child[pos])
		}
	}
	walk(z.root)
}

// sortByOrd is a test helper ordering leaves by ord; kept here so tests in
// other files can reuse it.
func sortLeaves(ls []*Leaf) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].ord < ls[j].ord })
}

// uniformSample draws a point uniformly at random from r.
func uniformSample(rng *rand.Rand, r geom.Rect) geom.Point {
	return geom.Point{
		X: r.MinX + rng.Float64()*r.Width(),
		Y: r.MinY + rng.Float64()*r.Height(),
	}
}
