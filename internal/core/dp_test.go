package core

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// latticePts draws points from a small grid of distinct coordinates so the
// DP's canonical cut set covers every distinct partition.
func latticePts(n int, side int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(rng.Intn(side)) / float64(side),
			Y: float64(rng.Intn(side)) / float64(side),
		}
	}
	return pts
}

func TestOptimalMatchesBruteForceQueries(t *testing.T) {
	pts := latticePts(300, 9, 70)
	qs := skewedQueries(25, 71)
	z, err := BuildOptimal(pts, qs, Options{LeafSize: 16, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 60; i++ {
		r := randomQueryRect(rng)
		samePointSets(t, z.RangeQuery(r), bruteRange(pts, r), "optimal index")
	}
}

func TestOptimalNeverWorseThanGreedyOrBase(t *testing.T) {
	// On lattice data the DP's cut grid covers every distinct partition, so
	// the exact optimizer should not lose to the greedy or base builds
	// under the same cost model. A small tolerance absorbs query-boundary
	// discretization (continuous query corners vs canonical cut values).
	for seed := int64(0); seed < 3; seed++ {
		pts := latticePts(260, 10, 80+seed)
		qs := skewedQueries(20, 90+seed)
		opts := Options{LeafSize: 16, DisableSkipping: true, Alpha: 0.1, Seed: seed}
		base, err := BuildBase(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := BuildWaZI(pts, qs, opts)
		if err != nil {
			t.Fatal(err)
		}
		optimal, err := BuildOptimal(pts, qs, opts)
		if err != nil {
			t.Fatal(err)
		}
		cb := base.WorkloadCost(qs, 0.1)
		cg := greedy.WorkloadCost(qs, 0.1)
		co := optimal.WorkloadCost(qs, 0.1)
		if co > 1.05*cg {
			t.Errorf("seed %d: optimal cost %v exceeds greedy %v", seed, co, cg)
		}
		if co > 1.05*cb {
			t.Errorf("seed %d: optimal cost %v exceeds base %v", seed, co, cb)
		}
	}
}

func TestOptimalRespectsOrderRestriction(t *testing.T) {
	pts := latticePts(200, 8, 100)
	qs := skewedQueries(20, 101)
	restricted, err := BuildOptimal(pts, qs, Options{LeafSize: 16, OrderABCDOnly: true, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	var assertABCD func(n *node)
	assertABCD = func(n *node) {
		if n == nil || n.leaf != nil {
			return
		}
		if n.order != OrderABCD {
			t.Fatal("OrderABCDOnly violated")
		}
		for _, c := range n.child {
			assertABCD(c)
		}
	}
	assertABCD(restricted.root)
}

func TestOptimalGuards(t *testing.T) {
	if _, err := BuildOptimal(nil, nil, Options{}); err != ErrNoPoints {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("BuildOptimal should panic beyond the size cap")
		}
	}()
	_, _ = BuildOptimal(make([]geom.Point, 5000), nil, Options{})
}
