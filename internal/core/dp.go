package core

import (
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// This file implements the exact optimizer the paper sketches in §4.3 and
// defers to future work: minimizing the full recursive retrieval cost
// (Eq. 3) instead of the greedy level-at-a-time upper bound (Eq. 5), by
// dynamic programming over rectangle states. The paper observes the state
// space is O(N^4) — every axis-aligned rectangle over the canonical split
// positions — which is tractable only for small inputs; BuildOptimal
// exists to quantify the greedy algorithm's optimality gap in tests and
// ablations, exactly the role the paper envisions.

// maxDPCuts caps the canonical split positions per dimension. The DP has
// O(cuts^4) states and O(cuts^2) transitions per state.
const maxDPCuts = 12

// BuildOptimal constructs the generalized Z-index minimizing the exact
// recursive workload cost over the canonical cut grid (midpoints between
// adjacent distinct coordinates, subsampled to maxDPCuts per dimension).
// Inputs beyond 4096 points are rejected to prevent accidental use at
// scale.
func BuildOptimal(pts []geom.Point, queries []geom.Rect, opts Options) (*ZIndex, error) {
	opts.fill()
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	if len(pts) > 4096 {
		panic("core: BuildOptimal is exhaustive; use BuildWaZI beyond 4096 points")
	}
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	st, err := opts.OpenStore()
	if err != nil {
		return nil, err
	}
	reserveStore(st, len(pts))
	z := &ZIndex{
		bounds:        geom.RectFromPoints(own),
		count:         len(own),
		opts:          opts,
		workloadAware: true,
	}
	z.adoptStore(st)
	clipped := make([]geom.Rect, 0, len(queries))
	for _, q := range queries {
		if c := q.Intersect(z.bounds); c.Valid() {
			clipped = append(clipped, c)
		}
	}
	d := newDPSolver(own, clipped, z.bounds, opts)
	d.st = st
	full := dpState{0, len(d.bx) - 1, 0, len(d.by) - 1}
	d.solve(full)
	z.root = d.materialize(full, own)
	z.rebuildLeafList()
	if !opts.DisableSkipping {
		z.rebuildLookahead()
	}
	return z, nil
}

// dpState identifies a rectangle on the cut grid: boundary indices
// [x0, x1] × [y0, y1] into the solver's bx/by arrays, with x0 < x1 and
// y0 < y1.
type dpState struct {
	x0, x1, y0, y1 int
}

type dpDecision struct {
	cost float64
	leaf bool
	ix   int // chosen x cut boundary index (interior: x0 < ix < x1)
	iy   int
	ord  Ordering
}

type dpSolver struct {
	opts    Options
	st      storage.PageStore
	bx, by  []float64 // cut boundaries including the outer bounds
	prefix  [][]int   // 2-D prefix counts of points per grid cell
	queries []geom.Rect
	memo    map[dpState]dpDecision
}

func newDPSolver(pts []geom.Point, queries []geom.Rect, bounds geom.Rect, opts Options) *dpSolver {
	d := &dpSolver{opts: opts, queries: queries, memo: map[dpState]dpDecision{}}
	d.bx = boundaries(pts, bounds.MinX, bounds.MaxX, func(p geom.Point) float64 { return p.X })
	d.by = boundaries(pts, bounds.MinY, bounds.MaxY, func(p geom.Point) float64 { return p.Y })
	// Prefix sums over the (len(bx)-1) x (len(by)-1) cell grid.
	nx, ny := len(d.bx)-1, len(d.by)-1
	counts := make([][]int, nx)
	for i := range counts {
		counts[i] = make([]int, ny)
	}
	for _, p := range pts {
		counts[cellOf(d.bx, p.X)][cellOf(d.by, p.Y)]++
	}
	d.prefix = make([][]int, nx+1)
	d.prefix[0] = make([]int, ny+1)
	for i := 1; i <= nx; i++ {
		d.prefix[i] = make([]int, ny+1)
		for j := 1; j <= ny; j++ {
			d.prefix[i][j] = counts[i-1][j-1] + d.prefix[i-1][j] + d.prefix[i][j-1] - d.prefix[i-1][j-1]
		}
	}
	return d
}

// boundaries returns the outer bounds plus up to maxDPCuts canonical cut
// values (midpoints between adjacent distinct coordinates).
func boundaries(pts []geom.Point, lo, hi float64, coord func(geom.Point) float64) []float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = coord(p)
	}
	sort.Float64s(vals)
	var cuts []float64
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			cuts = append(cuts, vals[i-1]+(vals[i]-vals[i-1])/2)
		}
	}
	if len(cuts) > maxDPCuts {
		thin := make([]float64, 0, maxDPCuts)
		for i := 0; i < maxDPCuts; i++ {
			thin = append(thin, cuts[i*len(cuts)/maxDPCuts])
		}
		cuts = thin
	}
	out := append([]float64{lo}, cuts...)
	return append(out, hi)
}

// cellOf returns the grid cell index of v: the greatest i with b[i] < v
// (points never coincide with interior cuts; values at the outer bounds go
// to the edge cells).
func cellOf(b []float64, v float64) int {
	i := sort.SearchFloat64s(b, v) // first b[i] >= v
	if i == 0 {
		return 0
	}
	if i >= len(b) {
		return len(b) - 2
	}
	return i - 1
}

// count returns the number of points in the state's rectangle.
func (d *dpSolver) count(s dpState) int {
	return d.prefix[s.x1][s.y1] - d.prefix[s.x0][s.y1] - d.prefix[s.x1][s.y0] + d.prefix[s.x0][s.y0]
}

// rect returns the state's geometric rectangle.
func (d *dpSolver) rect(s dpState) geom.Rect {
	return geom.Rect{MinX: d.bx[s.x0], MinY: d.by[s.y0], MaxX: d.bx[s.x1], MaxY: d.by[s.y1]}
}

// solve returns the minimal exact cost of the state, memoized.
func (d *dpSolver) solve(s dpState) float64 {
	if dec, ok := d.memo[s]; ok {
		return dec.cost
	}
	n := d.count(s)
	cell := d.rect(s)
	var relevant []geom.Rect
	for _, q := range d.queries {
		if c := q.Intersect(cell); c.Valid() {
			relevant = append(relevant, c)
		}
	}
	// Leaf option: every relevant query scans all points.
	best := dpDecision{cost: float64(len(relevant)) * float64(n), leaf: true}
	if n > d.opts.LeafSize {
		for ix := s.x0 + 1; ix < s.x1; ix++ {
			for iy := s.y0 + 1; iy < s.y1; iy++ {
				split := geom.Point{X: d.bx[ix], Y: d.by[iy]}
				quad := [4]dpState{
					{s.x0, ix, s.y0, iy}, // A
					{ix, s.x1, s.y0, iy}, // B
					{s.x0, ix, iy, s.y1}, // C
					{ix, s.x1, iy, s.y1}, // D
				}
				// Skip non-partitions (all points on one side).
				nonEmpty := 0
				for _, qs := range quad {
					if d.count(qs) > 0 {
						nonEmpty++
					}
				}
				if nonEmpty < 2 {
					continue
				}
				var childSum float64
				for q := range quad {
					if d.count(quad[q]) > 0 {
						childSum += d.solve(quad[q])
					}
				}
				for _, ord := range []Ordering{OrderABCD, OrderACBD} {
					if d.opts.OrderABCDOnly && ord != OrderABCD {
						continue
					}
					cost := childSum
					for _, r := range relevant {
						pLo := ord.Pos(geom.QuadrantOf(r.BL(), split))
						pHi := ord.Pos(geom.QuadrantOf(r.TR(), split))
						for pos := pLo; pos <= pHi; pos++ {
							q := ord.Quad(pos)
							if !geom.QuadrantRect(cell, split, q).Intersects(r) {
								cost += d.opts.Alpha * float64(d.count(quad[q]))
							}
						}
					}
					if cost < best.cost {
						best = dpDecision{cost: cost, ix: ix, iy: iy, ord: ord}
					}
				}
			}
		}
	}
	d.memo[s] = best
	return best.cost
}

// materialize builds the tree for a solved state, distributing pts (the
// points inside the state's rectangle).
func (d *dpSolver) materialize(s dpState, pts []geom.Point) *node {
	dec := d.memo[s]
	cell := d.rect(s)
	n := &node{cell: cell}
	if dec.leaf {
		n.leaf = newLeaf(d.st, cell, pts)
		return n
	}
	n.split = geom.Point{X: d.bx[dec.ix], Y: d.by[dec.iy]}
	n.order = dec.ord
	parts := partition(pts, n.split)
	quad := [4]dpState{
		{s.x0, dec.ix, s.y0, dec.iy},
		{dec.ix, s.x1, s.y0, dec.iy},
		{s.x0, dec.ix, dec.iy, s.y1},
		{dec.ix, s.x1, dec.iy, s.y1},
	}
	for q := geom.Quadrant(0); q < 4; q++ {
		if len(parts[q]) == 0 {
			continue
		}
		n.child[n.order.Pos(q)] = d.materialize(quad[q], parts[q])
	}
	return n
}
