package core

import (
	"math/rand"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// reference is a brute-force multiset of points used as ground truth for
// update tests.
type reference struct {
	pts []geom.Point
}

func (r *reference) insert(p geom.Point) { r.pts = append(r.pts, p) }

func (r *reference) delete(p geom.Point) bool {
	for i, q := range r.pts {
		if q == p {
			r.pts[i] = r.pts[len(r.pts)-1]
			r.pts = r.pts[:len(r.pts)-1]
			return true
		}
	}
	return false
}

func TestInsertThenQuery(t *testing.T) {
	pts := clusteredPts(2000, 50)
	qs := skewedQueries(100, 51)
	z, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	ref := &reference{pts: append([]geom.Point(nil), pts...)}
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 1500; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		z.Insert(p)
		ref.insert(p)
	}
	if z.Len() != len(ref.pts) {
		t.Fatalf("Len = %d, want %d", z.Len(), len(ref.pts))
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r := randomQueryRect(rng)
		samePointSets(t, z.RangeQuery(r), bruteRange(ref.pts, r), "after inserts")
	}
	if z.Stats().PageSplits == 0 {
		t.Error("expected page splits during 1500 inserts into 64-point leaves")
	}
}

func TestInsertIntoEmptyQuadrant(t *testing.T) {
	// Build over points confined to the left half so the right quadrants of
	// many cells are empty, then insert into the empty space.
	rng := rand.New(rand.NewSource(54))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 0.5, Y: rng.Float64()}
	}
	z, err := BuildBase(pts, Options{LeafSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ref := &reference{pts: append([]geom.Point(nil), pts...)}
	// Inserting points beyond the original data bounds exercises the
	// bounds-growth path as well.
	for i := 0; i < 500; i++ {
		p := geom.Point{X: 0.5 + rng.Float64()*0.5, Y: rng.Float64()}
		z.Insert(p)
		ref.insert(p)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r := randomQueryRect(rng)
		samePointSets(t, z.RangeQuery(r), bruteRange(ref.pts, r), "after empty-quadrant inserts")
	}
}

func TestDelete(t *testing.T) {
	pts := clusteredPts(3000, 55)
	z, err := BuildBase(pts, Options{LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ref := &reference{pts: append([]geom.Point(nil), pts...)}
	rng := rand.New(rand.NewSource(56))
	deleted := 0
	for i := 0; i < 1500; i++ {
		p := ref.pts[rng.Intn(len(ref.pts))]
		gz := z.Delete(p)
		gr := ref.delete(p)
		if gz != gr {
			t.Fatalf("Delete(%v) = %v, reference = %v", p, gz, gr)
		}
		if gz {
			deleted++
		}
	}
	if z.Len() != len(ref.pts) {
		t.Fatalf("Len = %d, want %d (deleted %d)", z.Len(), len(ref.pts), deleted)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		r := randomQueryRect(rng)
		samePointSets(t, z.RangeQuery(r), bruteRange(ref.pts, r), "after deletes")
	}
	if z.Delete(geom.Point{X: 99, Y: 99}) {
		t.Error("deleting an out-of-bounds point must fail")
	}
	if z.Delete(geom.Point{X: 0.123456789, Y: 0.987654321}) {
		t.Error("deleting an absent point must fail")
	}
}

func TestDeleteTriggersMerge(t *testing.T) {
	pts := uniformPts(4000, 57)
	z, err := BuildBase(pts, Options{LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Delete everything in one quadrant region; sibling groups there should
	// eventually merge.
	for _, p := range pts {
		if p.X < 0.5 && p.Y < 0.5 {
			z.Delete(p)
		}
	}
	if z.Stats().PageMerges == 0 {
		t.Error("expected at least one page merge after mass deletion")
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedUpdateWorkloadProperty(t *testing.T) {
	// Randomized interleaving of inserts, deletes, and queries with
	// invariant checks — a light-weight model-based test.
	pts := uniformPts(1000, 58)
	z, err := BuildWaZI(pts, skewedQueries(50, 59), Options{LeafSize: 32, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	ref := &reference{pts: append([]geom.Point(nil), pts...)}
	rng := rand.New(rand.NewSource(61))
	for step := 0; step < 3000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			z.Insert(p)
			ref.insert(p)
		case 4, 5, 6: // delete existing
			if len(ref.pts) > 0 {
				p := ref.pts[rng.Intn(len(ref.pts))]
				if z.Delete(p) != ref.delete(p) {
					t.Fatalf("step %d: delete disagreement", step)
				}
			}
		case 7: // delete absent
			p := geom.Point{X: rng.Float64() + 2, Y: rng.Float64()}
			if z.Delete(p) {
				t.Fatalf("step %d: deleted absent point", step)
			}
		default: // range query
			r := randomQueryRect(rng)
			samePointSets(t, z.RangeQuery(r), bruteRange(ref.pts, r), "mixed workload")
		}
		if step%500 == 499 {
			if err := z.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if z.Len() != len(ref.pts) {
				t.Fatalf("step %d: Len = %d, want %d", step, z.Len(), len(ref.pts))
			}
		}
	}
}

func TestPointsAccessor(t *testing.T) {
	pts := uniformPts(700, 62)
	z, _ := BuildBase(pts, Options{LeafSize: 64})
	got := z.Points()
	samePointSets(t, got, pts, "Points()")
	// Mutating the returned slice must not corrupt the index.
	for i := range got {
		got[i] = geom.Point{X: -1, Y: -1}
	}
	if n := z.RangeCount(z.Bounds()); n != 700 {
		t.Fatalf("index corrupted by mutating Points() result: count %d", n)
	}
}

// ---------- kNN ----------

func bruteKNN(pts []geom.Point, q geom.Point, k int) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	sortByDistance(out, q)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	pts := clusteredPts(4000, 63)
	z, err := BuildWaZI(pts, skewedQueries(100, 64), Options{LeafSize: 64, Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		k := 1 + rng.Intn(20)
		got := z.KNN(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		// Distances must agree (ties may reorder equal-distance points).
		for i := range got {
			dg, dw := dist(got[i], q), dist(want[i], q)
			if dg != dw {
				t.Fatalf("trial %d: kNN distance %d: got %v, want %v", trial, i, dg, dw)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	pts := uniformPts(50, 67)
	z, _ := BuildBase(pts, Options{LeafSize: 8})
	if got := z.KNN(geom.Point{X: 0.5, Y: 0.5}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := z.KNN(geom.Point{X: 0.5, Y: 0.5}, 100); len(got) != 50 {
		t.Errorf("k>n should return all %d points, got %d", 50, len(got))
	}
	// Query far outside the domain still works.
	if got := z.KNN(geom.Point{X: 50, Y: 50}, 3); len(got) != 3 {
		t.Errorf("far query returned %d", len(got))
	}
}
