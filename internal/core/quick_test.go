package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/wazi-index/wazi/internal/geom"
)

// This file uses testing/quick to drive randomized property checks of the
// core index: arbitrary point sets and query rectangles, arbitrary build
// configurations, always compared against brute force or validated against
// structural invariants.

// quickCase is a generatable test case: quick fills the fields with random
// values which we then normalize into a valid configuration.
type quickCase struct {
	Seed     int64
	N        uint16
	LeafBits uint8
	Skewed   bool
	Wazi     bool
}

func (c quickCase) points() []geom.Point {
	n := int(c.N)%900 + 20
	rng := rand.New(rand.NewSource(c.Seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		if c.Skewed {
			pts[i] = geom.Point{
				X: math.Min(1, math.Max(0, 0.3+rng.NormFloat64()*0.1)),
				Y: math.Min(1, math.Max(0, 0.6+rng.NormFloat64()*0.15)),
			}
		} else {
			pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		}
	}
	return pts
}

func (c quickCase) build(pts []geom.Point) (*ZIndex, error) {
	leaf := 8 << (c.LeafBits % 4) // 8, 16, 32, 64
	if c.Wazi {
		return BuildWaZI(pts, skewedQueries(30, c.Seed+1), Options{LeafSize: leaf, Seed: c.Seed, Kappa: 8})
	}
	return BuildBase(pts, Options{LeafSize: leaf})
}

// Property: any built index answers any rectangle exactly like brute force.
func TestQuickRangeQueryCorrect(t *testing.T) {
	f := func(c quickCase, qx, qy, qw, qh uint16) bool {
		pts := c.points()
		z, err := c.build(pts)
		if err != nil {
			return false
		}
		r := geom.Rect{
			MinX: float64(qx%1000)/1000 - 0.1,
			MinY: float64(qy%1000)/1000 - 0.1,
		}
		r.MaxX = r.MinX + float64(qw%600)/1000
		r.MaxY = r.MinY + float64(qh%600)/1000
		got := z.RangeQuery(r)
		want := bruteRange(pts, r)
		if len(got) != len(want) {
			return false
		}
		return z.RangeCount(r) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every built index satisfies the structural invariants,
// including look-ahead pointer safety.
func TestQuickInvariants(t *testing.T) {
	f := func(c quickCase) bool {
		z, err := c.build(c.points())
		if err != nil {
			return false
		}
		return z.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: dominance monotonicity of the leaf order holds for arbitrary
// point pairs under arbitrary configurations.
func TestQuickMonotonicity(t *testing.T) {
	f := func(c quickCase, ax, ay, dx, dy uint16) bool {
		z, err := c.build(c.points())
		if err != nil {
			return false
		}
		a := geom.Point{X: float64(ax%1000) / 1000, Y: float64(ay%1000) / 1000}
		b := geom.Point{X: a.X + float64(dx%300)/1000, Y: a.Y + float64(dy%300)/1000}
		la, lb := z.TreeTraversal(a), z.TreeTraversal(b)
		if la == nil || lb == nil {
			return true // one endpoint fell in an empty quadrant
		}
		return la.Ord() <= lb.Ord()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a random update sequence preserves correctness: Len matches a
// reference multiset and a probe query matches brute force.
func TestQuickUpdates(t *testing.T) {
	f := func(c quickCase, ops []uint16) bool {
		pts := c.points()
		z, err := c.build(pts)
		if err != nil {
			return false
		}
		ref := append([]geom.Point(nil), pts...)
		rng := rand.New(rand.NewSource(c.Seed + 7))
		for _, op := range ops {
			if op%3 == 0 && len(ref) > 0 {
				i := int(op) % len(ref)
				p := ref[i]
				if !z.Delete(p) {
					return false
				}
				ref[i] = ref[len(ref)-1]
				ref = ref[:len(ref)-1]
			} else {
				p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
				z.Insert(p)
				ref = append(ref, p)
			}
		}
		if z.Len() != len(ref) {
			return false
		}
		r := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
		return len(z.RangeQuery(r)) == len(bruteRange(ref, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
