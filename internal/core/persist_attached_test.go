package core_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/storage"
)

// TestSaveAttachedWarmStart exercises the disk-resident warm-start path at
// the core level: build on a page file, churn it, SaveAttached, then restore
// by adopting the same page file and check the restored index answers
// queries identically without the snapshot having carried any points.
func TestSaveAttachedWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "core.pages")
	pts := indextest.ClusteredPoints(4000, 1)
	qs := indextest.SkewedQueries(100, 2)

	z, err := core.BuildWaZI(pts, qs, core.Options{
		LeafSize: 64, Seed: 3, StoragePath: path, StorageCachePages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if z.Store().Kind() != "disk" {
		t.Fatalf("store kind = %q, want disk", z.Store().Kind())
	}

	// Churn so the snapshot covers split/merge-affected pages too.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 800; i++ {
		z.Insert(geom.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	for i := 0; i < 400; i += 2 {
		z.Delete(pts[i])
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}

	var snap bytes.Buffer
	if err := z.SaveAttached(&snap); err != nil {
		t.Fatal(err)
	}
	wantPts := z.Points()
	var queries []geom.Rect
	rng2 := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		cx, cy := rng2.Float64(), rng2.Float64()
		queries = append(queries, geom.Rect{MinX: cx - 0.1, MinY: cy - 0.1, MaxX: cx + 0.1, MaxY: cy + 0.1})
	}
	wantResults := make([][]geom.Point, len(queries))
	for i, q := range queries {
		wantResults[i] = z.RangeQuery(q)
	}
	if err := z.Close(); err != nil {
		t.Fatal(err)
	}

	// An attached snapshot must refuse to load without its store.
	if _, err := core.Load(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("Load accepted an attached snapshot without a page store")
	}

	st, err := storage.OpenPageFile(path, storage.DiskOptions{CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.LoadWithStore(bytes.NewReader(snap.Bytes()), st)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(wantPts) {
		t.Fatalf("restored Len = %d, want %d", re.Len(), len(wantPts))
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("invariants after warm start: %v", err)
	}
	for i, q := range queries {
		got := re.RangeQuery(q)
		if len(got) != len(wantResults[i]) {
			t.Fatalf("query %d: %d results after warm start, want %d", i, len(got), len(wantResults[i]))
		}
	}
	cs := re.CacheStats()
	if cs.Misses == 0 {
		t.Fatal("warm-started index served queries without touching the page file")
	}
	if got := re.Stats().CacheMisses; got != cs.Misses {
		t.Fatalf("Stats().CacheMisses = %d, want %d (sink wiring)", got, cs.Misses)
	}
}

// TestLoadInlineIntoDiskStore restores a portable inline snapshot onto a
// disk-resident store — the cold migration path between backends.
func TestLoadInlineIntoDiskStore(t *testing.T) {
	pts := indextest.ClusteredPoints(1500, 7)
	z, err := core.BuildBase(pts, core.Options{LeafSize: 64, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := z.Save(&snap); err != nil {
		t.Fatal(err)
	}
	st, err := storage.CreatePageFile(filepath.Join(t.TempDir(), "mig.pages"), storage.DiskOptions{SlotCap: 64, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.LoadWithStore(bytes.NewReader(snap.Bytes()), st)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	full := geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}
	if got := len(re.RangeQuery(full)); got != len(pts) {
		t.Fatalf("full query after migration = %d points, want %d", got, len(pts))
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
