package core

import (
	"math"
	"sort"

	"github.com/wazi-index/wazi/internal/geom"
)

// KNN returns the k indexed points nearest to q in Euclidean distance,
// ordered nearest first. As the paper remarks (§6.3), indexes without a
// specialized kNN path process such queries as a sequence of range queries;
// this implementation grows a square search window around q until it holds
// k points, then issues one final window guaranteed to contain the true
// neighbours, so its latency profile tracks range-query latency exactly.
func (z *ZIndex) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || z.count == 0 {
		return nil
	}
	if k >= z.count {
		out := z.Points()
		sortByDistance(out, q)
		return out
	}
	// Initial half-width guess from the average point density: a window
	// expected to hold ~k points.
	area := z.bounds.Area()
	if area <= 0 {
		area = 1
	}
	half := math.Sqrt(area*float64(k)/float64(z.count)) / 2
	if half <= 0 {
		half = 1e-9
	}
	var pts []geom.Point
	for {
		window := geom.Rect{MinX: q.X - half, MinY: q.Y - half, MaxX: q.X + half, MaxY: q.Y + half}
		pts = z.RangeQueryAppend(pts[:0], window)
		if len(pts) >= k {
			break
		}
		if window.ContainsRect(z.bounds) {
			// The window covers everything; fewer than k points exist.
			sortByDistance(pts, q)
			return pts
		}
		half *= 2
	}
	// The k-th nearest of the collected points bounds the true k-th
	// neighbour's distance, but points outside the square window may be
	// closer than corner-distance candidates inside it: issue one final
	// query with the certified radius.
	sortByDistance(pts, q)
	r := dist(pts[k-1], q)
	if r > half {
		window := geom.Rect{MinX: q.X - r, MinY: q.Y - r, MaxX: q.X + r, MaxY: q.Y + r}
		pts = z.RangeQueryAppend(pts[:0], window)
		sortByDistance(pts, q)
	}
	if len(pts) > k {
		pts = pts[:k]
	}
	return pts
}

func dist(a, b geom.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func sortByDistance(pts []geom.Point, q geom.Point) {
	sort.Slice(pts, func(i, j int) bool {
		return dist(pts[i], q) < dist(pts[j], q)
	})
}
