package core

import (
	"math"

	"github.com/wazi-index/wazi/internal/geom"
)

// KNN returns the k indexed points nearest to q in Euclidean distance,
// ordered nearest first. As the paper remarks (§6.3), indexes without a
// specialized kNN path process such queries as a sequence of range queries;
// this implementation grows a square search window around q until it holds
// k points, then issues one final window guaranteed to contain the true
// neighbours, so its latency profile tracks range-query latency exactly.
func (z *ZIndex) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || z.count == 0 {
		return nil
	}
	return z.KNNAppend(nil, q, k)
}

// KNNAppend appends the k nearest neighbours of q to dst, nearest first,
// and returns the extended slice. The spare capacity of dst doubles as the
// working set for the window scans, so callers that reuse buffers between
// queries allocate nothing in steady state. Equidistant neighbours are
// ordered by (distance, X, Y) — see geom.DistLess — making the result
// deterministic across backends, shard layouts, and rebuilds.
func (z *ZIndex) KNNAppend(dst []geom.Point, q geom.Point, k int) []geom.Point {
	if k <= 0 || z.count == 0 {
		return dst
	}
	base := len(dst)
	if k >= z.count {
		dst = z.PointsAppend(dst)
		geom.SortByDistance(dst[base:], q)
		return dst
	}
	// Initial half-width guess from the average point density: a window
	// expected to hold ~k points.
	area := z.bounds.Area()
	if area <= 0 {
		area = 1
	}
	half := math.Sqrt(area*float64(k)/float64(z.count)) / 2
	if half <= 0 {
		half = 1e-9
	}
	for {
		window := geom.Rect{MinX: q.X - half, MinY: q.Y - half, MaxX: q.X + half, MaxY: q.Y + half}
		dst = z.RangeQueryAppend(dst[:base], window)
		if len(dst)-base >= k {
			break
		}
		if window.ContainsRect(z.bounds) {
			// The window covers everything; fewer than k points exist.
			geom.SortByDistance(dst[base:], q)
			return dst
		}
		half *= 2
	}
	// The k-th nearest of the collected points bounds the true k-th
	// neighbour's distance, but points outside the square window may be
	// closer than corner-distance candidates inside it: issue one final
	// query with the certified radius.
	geom.SortByDistance(dst[base:], q)
	r := math.Sqrt(geom.DistSq(dst[base+k-1], q))
	if r > half {
		window := geom.Rect{MinX: q.X - r, MinY: q.Y - r, MaxX: q.X + r, MaxY: q.Y + r}
		dst = z.RangeQueryAppend(dst[:base], window)
		geom.SortByDistance(dst[base:], q)
	}
	if len(dst)-base > k {
		dst = dst[:base+k]
	}
	return dst
}

// dist returns the Euclidean distance between a and b.
func dist(a, b geom.Point) float64 { return math.Sqrt(geom.DistSq(a, b)) }

// sortByDistance orders pts by (distance to q, X, Y), nearest first.
func sortByDistance(pts []geom.Point, q geom.Point) { geom.SortByDistance(pts, q) }
