package core

import (
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Test-only exports.

// CheckInvariants exposes the internal structural validator to tests.
func (z *ZIndex) CheckInvariants() error { return z.checkInvariants() }

// TreeTraversal exposes Algorithm 1 for tests.
func (z *ZIndex) TreeTraversal(p geom.Point) *Leaf {
	var d storage.Stats
	return z.treeTraversal(p, &d)
}

// LowerBoundLeaf exposes the projection lower bound for tests.
func (z *ZIndex) LowerBoundLeaf(p geom.Point) *Leaf {
	var d storage.Stats
	return z.lowerBoundLeaf(p, &d)
}

// UpperBoundLeaf exposes the projection upper bound for tests.
func (z *ZIndex) UpperBoundLeaf(p geom.Point) *Leaf {
	var d storage.Stats
	return z.upperBoundLeaf(p, &d)
}

// CellCost exposes the Eq. 5 evaluator for tests.
func CellCost(cell geom.Rect, split geom.Point, o Ordering, queries []geom.Rect, n [4]float64, alpha float64) float64 {
	return cellCost(cell, split, o, queries, n, alpha)
}

// QuickMedian exposes the selection helper for tests.
func QuickMedian(vals []float64) float64 { return quickMedian(vals) }

// Improves exposes the look-ahead improvement predicate for tests.
func Improves(c Criterion, l, candidate *Leaf) bool { return improves(c, l, candidate) }
