package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// This file implements index persistence: a built index serializes to a
// flat preorder record stream (gob-encoded) and restores without
// re-running construction. The derived structures — leaf list, ords,
// look-ahead pointers — are rebuilt on load, which is linear in the index
// size and avoids serializing cyclic pointer graphs.
//
// Two snapshot flavours exist:
//
//   - inline (version 1): every leaf record carries its points. Portable —
//     Load can restore it into any page store.
//   - attached (version 2): leaf records carry PageIDs into an external
//     page store (the disk backend's page file). Written by SaveAttached,
//     restored by LoadWithStore over a store adopted with
//     storage.OpenPageFile — the warm-start path that never rewrites or
//     re-reads the data pages.

// Snapshot format versions.
const (
	snapshotVersion         = 1 // inline points
	snapshotVersionAttached = 2 // page references into an external store
)

type snapshot struct {
	Version       int
	LeafSize      int
	Alpha         float64
	Skipping      bool
	WorkloadAware bool
	Count         int
	Bounds        geom.Rect
	Nodes         []nodeRecord
}

// nodeRecord is one preorder tree node. Children are recorded by a
// presence mask over ordering positions; subtrees follow in position order.
// Leaf records carry Points (inline snapshots) or PageID (attached).
type nodeRecord struct {
	Leaf      bool
	Cell      geom.Rect
	Split     geom.Point
	Order     Ordering
	ChildMask uint8
	Points    []geom.Point
	PageID    int32
}

// Save serializes the index to w as an inline snapshot: leaf pages are
// embedded, so the stream is self-contained and portable across storage
// backends.
func (z *ZIndex) Save(w io.Writer) error {
	return z.save(w, false)
}

// SaveAttached serializes the index to w as an attached snapshot: leaf
// records reference pages by id in the index's page store, whose backing
// file is synced and left in place. A later LoadWithStore over the adopted
// store restores the index without rewriting or reading the data pages.
func (z *ZIndex) SaveAttached(w io.Writer) error {
	if err := z.save(w, true); err != nil {
		return err
	}
	return z.store.Sync()
}

func (z *ZIndex) save(w io.Writer, attached bool) error {
	s := snapshot{
		Version:       snapshotVersion,
		LeafSize:      z.opts.LeafSize,
		Alpha:         z.opts.Alpha,
		Skipping:      !z.opts.DisableSkipping,
		WorkloadAware: z.workloadAware,
		Count:         z.count,
		Bounds:        z.bounds,
	}
	if attached {
		s.Version = snapshotVersionAttached
	}
	var walk func(n *node)
	walk = func(n *node) {
		rec := nodeRecord{Cell: n.cell}
		if n.leaf != nil {
			rec.Leaf = true
			if attached {
				rec.PageID = int32(n.leaf.pid)
			} else {
				rec.Points = z.store.Page(n.leaf.pid).Pts
			}
			s.Nodes = append(s.Nodes, rec)
			return
		}
		rec.Split = n.split
		rec.Order = n.order
		for pos := 0; pos < 4; pos++ {
			if n.child[pos] != nil {
				rec.ChildMask |= 1 << uint(pos)
			}
		}
		s.Nodes = append(s.Nodes, rec)
		for pos := 0; pos < 4; pos++ {
			if n.child[pos] != nil {
				walk(n.child[pos])
			}
		}
	}
	walk(z.root)
	return gob.NewEncoder(w).Encode(&s)
}

// Load restores an index previously written by Save, onto a fresh
// RAM-resident page store. Attached snapshots are refused: they need their
// page store, via LoadWithStore.
func Load(r io.Reader) (*ZIndex, error) {
	return LoadWithStore(r, nil)
}

// LoadWithStore restores an index onto st (nil selects a fresh RAM-resident
// store). Inline snapshots have their pages allocated into st; attached
// snapshots adopt st's existing pages by id — st must be the store whose
// page file the snapshot was saved against (storage.OpenPageFile), and every
// page reference is validated before use. Corrupt input of either flavour
// is reported as an error, never a panic.
func LoadWithStore(r io.Reader, st storage.PageStore) (*ZIndex, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	attached := s.Version == snapshotVersionAttached
	if s.Version != snapshotVersion && !attached {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", s.Version)
	}
	if attached && st == nil {
		return nil, fmt.Errorf("core: attached snapshot requires its page store (use LoadWithStore)")
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("core: snapshot has no nodes")
	}
	if s.Count < 0 {
		return nil, fmt.Errorf("core: snapshot has negative count %d", s.Count)
	}
	if st == nil {
		st = storage.NewMemStore()
	}
	if attached && st.PageCount() == 0 {
		// Catch the "attached snapshot, wrong store" mistake up front with
		// an actionable message instead of a per-page reference failure.
		// An attached snapshot always references at least one page.
		return nil, fmt.Errorf("core: attached snapshot requires the page store it was saved against (adopt its page file with storage.OpenPageFile)")
	}
	z := &ZIndex{
		bounds:        s.Bounds,
		count:         s.Count,
		workloadAware: s.WorkloadAware,
		opts: Options{
			LeafSize:        s.LeafSize,
			Alpha:           s.Alpha,
			DisableSkipping: !s.Skipping,
		},
	}
	z.opts.fill()
	z.adoptStore(st)
	pos := 0
	var build func() (*node, error)
	build = func() (*node, error) {
		if pos >= len(s.Nodes) {
			return nil, fmt.Errorf("core: snapshot truncated at record %d", pos)
		}
		rec := s.Nodes[pos]
		pos++
		n := &node{cell: rec.Cell}
		if rec.Leaf {
			if attached {
				id := storage.PageID(rec.PageID)
				count, ok := st.PageLen(id)
				if !ok {
					return nil, fmt.Errorf("core: snapshot references page %d absent from the store", rec.PageID)
				}
				n.leaf = &Leaf{bounds: rec.Cell, pid: id, n: count}
			} else {
				n.leaf = newLeaf(st, rec.Cell, rec.Points)
			}
			return n, nil
		}
		n.split = rec.Split
		n.order = rec.Order
		if n.order != OrderABCD && n.order != OrderACBD {
			return nil, fmt.Errorf("core: invalid ordering %d in snapshot", n.order)
		}
		for p := 0; p < 4; p++ {
			if rec.ChildMask&(1<<uint(p)) == 0 {
				continue
			}
			child, err := build()
			if err != nil {
				return nil, err
			}
			n.child[p] = child
		}
		return n, nil
	}
	root, err := build()
	if err != nil {
		return nil, err
	}
	if pos != len(s.Nodes) {
		return nil, fmt.Errorf("core: %d trailing records in snapshot", len(s.Nodes)-pos)
	}
	z.root = root
	z.rebuildLeafList()
	if !z.opts.DisableSkipping {
		z.rebuildLookahead()
	}
	// Trust but verify: a corrupted snapshot should fail loudly now, not
	// during a later query. Attached leaves were sized from the store's
	// slot headers, so this also cross-checks snapshot against page file.
	total := 0
	seen := make(map[storage.PageID]bool)
	for l := z.head; l != nil; l = l.next {
		if attached && seen[l.pid] {
			return nil, fmt.Errorf("core: snapshot references page %d twice", l.pid)
		}
		seen[l.pid] = true
		total += l.n
	}
	if total != z.count {
		return nil, fmt.Errorf("core: snapshot count %d disagrees with stored points %d", z.count, total)
	}
	return z, nil
}
