package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/wazi-index/wazi/internal/geom"
)

// This file implements index persistence: a built index serializes to a
// flat preorder record stream (gob-encoded) and restores without
// re-running construction. The derived structures — leaf list, ords,
// look-ahead pointers — are rebuilt on load, which is linear in the index
// size and avoids serializing cyclic pointer graphs.

// snapshotHeader versions the on-disk format.
const snapshotVersion = 1

type snapshot struct {
	Version       int
	LeafSize      int
	Alpha         float64
	Skipping      bool
	WorkloadAware bool
	Count         int
	Bounds        geom.Rect
	Nodes         []nodeRecord
}

// nodeRecord is one preorder tree node. Children are recorded by a
// presence mask over ordering positions; subtrees follow in position order.
type nodeRecord struct {
	Leaf      bool
	Cell      geom.Rect
	Split     geom.Point
	Order     Ordering
	ChildMask uint8
	Points    []geom.Point
}

// Save serializes the index to w.
func (z *ZIndex) Save(w io.Writer) error {
	s := snapshot{
		Version:       snapshotVersion,
		LeafSize:      z.opts.LeafSize,
		Alpha:         z.opts.Alpha,
		Skipping:      !z.opts.DisableSkipping,
		WorkloadAware: z.workloadAware,
		Count:         z.count,
		Bounds:        z.bounds,
	}
	var walk func(n *node)
	walk = func(n *node) {
		rec := nodeRecord{Cell: n.cell}
		if n.leaf != nil {
			rec.Leaf = true
			rec.Points = n.leaf.page.Pts
			s.Nodes = append(s.Nodes, rec)
			return
		}
		rec.Split = n.split
		rec.Order = n.order
		for pos := 0; pos < 4; pos++ {
			if n.child[pos] != nil {
				rec.ChildMask |= 1 << uint(pos)
			}
		}
		s.Nodes = append(s.Nodes, rec)
		for pos := 0; pos < 4; pos++ {
			if n.child[pos] != nil {
				walk(n.child[pos])
			}
		}
	}
	walk(z.root)
	return gob.NewEncoder(w).Encode(&s)
}

// Load restores an index previously written by Save.
func Load(r io.Reader) (*ZIndex, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", s.Version)
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("core: snapshot has no nodes")
	}
	z := &ZIndex{
		bounds:        s.Bounds,
		count:         s.Count,
		workloadAware: s.WorkloadAware,
		opts: Options{
			LeafSize:        s.LeafSize,
			Alpha:           s.Alpha,
			DisableSkipping: !s.Skipping,
		},
	}
	z.opts.fill()
	pos := 0
	var build func() (*node, error)
	build = func() (*node, error) {
		if pos >= len(s.Nodes) {
			return nil, fmt.Errorf("core: snapshot truncated at record %d", pos)
		}
		rec := s.Nodes[pos]
		pos++
		n := &node{cell: rec.Cell}
		if rec.Leaf {
			n.leaf = newLeaf(rec.Cell, rec.Points)
			return n, nil
		}
		n.split = rec.Split
		n.order = rec.Order
		if n.order != OrderABCD && n.order != OrderACBD {
			return nil, fmt.Errorf("core: invalid ordering %d in snapshot", n.order)
		}
		for p := 0; p < 4; p++ {
			if rec.ChildMask&(1<<uint(p)) == 0 {
				continue
			}
			child, err := build()
			if err != nil {
				return nil, err
			}
			n.child[p] = child
		}
		return n, nil
	}
	root, err := build()
	if err != nil {
		return nil, err
	}
	if pos != len(s.Nodes) {
		return nil, fmt.Errorf("core: %d trailing records in snapshot", len(s.Nodes)-pos)
	}
	z.root = root
	z.rebuildLeafList()
	if !z.opts.DisableSkipping {
		z.rebuildLookahead()
	}
	// Trust but verify: a corrupted snapshot should fail loudly now, not
	// during a later query.
	total := 0
	for l := z.head; l != nil; l = l.next {
		total += l.page.Len()
	}
	if total != z.count {
		return nil, fmt.Errorf("core: snapshot count %d disagrees with stored points %d", z.count, total)
	}
	return z, nil
}
