package core

import "fmt"

// This file implements §5: the four look-ahead pointers per leaf and their
// construction (Algorithm 4).
//
// A leaf P is irrelevant to a range query R under one of four criteria:
//
//	Below:  P.bounds.MaxY < R.MinY   (P lies entirely below R)
//	Above:  P.bounds.MinY > R.MaxY
//	Left:   P.bounds.MaxX < R.MinX
//	Right:  P.bounds.MinX > R.MaxX
//
// The look-ahead pointer for a criterion points to the earliest later leaf
// whose corresponding bound *improves* on P's — e.g. P.la[Below] is the
// first later leaf with bounds.MaxY > P.bounds.MaxY. Every leaf strictly
// between P and P.la[Below] has MaxY <= P.bounds.MaxY, so any query that
// disqualifies P under Below also disqualifies all of them: jumping is safe.
//
// The safety argument only requires that the skipped leaves' bounds do not
// grow after pointer construction. Leaf bounds in this implementation are
// the (immutable) cells of the tree, and structural updates replace a leaf
// by sub-leaves whose cells are subsets, so previously built pointers remain
// safe across updates; they are nevertheless rebuilt eagerly on structural
// changes to restore full skipping power (§6.7 attributes WaZI's slow
// inserts to exactly this recomputation).

// improves reports whether candidate's bound improves on l's for criterion
// c, i.e. whether a query disqualifying l under c could still overlap
// candidate.
func improves(c Criterion, l, candidate *Leaf) bool {
	switch c {
	case Below:
		return candidate.bounds.MaxY > l.bounds.MaxY
	case Above:
		return candidate.bounds.MinY < l.bounds.MinY
	case Left:
		return candidate.bounds.MaxX > l.bounds.MaxX
	default: // Right
		return candidate.bounds.MinX < l.bounds.MinX
	}
}

// rebuildLookahead recomputes every leaf's look-ahead pointers by a single
// backward pass over the leaf list (Algorithm 4). For each leaf and
// criterion the pointer starts at next and chases already-computed pointers
// of the same criterion until the criterion value improves. A nil pointer
// marks the end of the list: no later leaf improves the criterion, so a
// query disqualifying the leaf under it can terminate the scan outright.
func (z *ZIndex) rebuildLookahead() {
	// Find the tail; iterate backward via prev pointers.
	var tail *Leaf
	for l := z.head; l != nil; l = l.next {
		tail = l
	}
	for l := tail; l != nil; l = l.prev {
		for c := Criterion(0); c < numCriteria; c++ {
			ptr := l.next
			for ptr != nil && !improves(c, l, ptr) {
				ptr = ptr.la[c]
			}
			l.la[c] = ptr
		}
	}
}

// checkLookaheadInvariants validates the two properties skipping relies on:
// (1) each pointer's target improves the criterion, and (2) every leaf
// strictly between a leaf and its pointer target fails to improve it. It is
// O(n·jump-width) and intended for tests.
func (z *ZIndex) checkLookaheadInvariants() error {
	for l := z.head; l != nil; l = l.next {
		for c := Criterion(0); c < numCriteria; c++ {
			target := l.la[c]
			for m := l.next; m != target; m = m.next {
				if m == nil {
					return fmt.Errorf("leaf %d criterion %v: pointer target not reachable", l.ord, c)
				}
				if improves(c, l, m) {
					return fmt.Errorf("leaf %d criterion %v: leaf %d improves but is skipped", l.ord, c, m.ord)
				}
			}
			if target != nil && !improves(c, l, target) {
				return fmt.Errorf("leaf %d criterion %v: target %d does not improve", l.ord, c, target.ord)
			}
		}
	}
	return nil
}
