package core

import (
	"github.com/wazi-index/wazi/internal/geom"
)

// This file implements index updates (§6.7). Inserting or deleting a point
// proceeds like point-query processing: descend to the enclosing leaf and
// update its page. Overflowing pages split along the data medians (as the
// paper does for WaZI); underflowing sibling groups merge back into their
// parent cell. Structural changes renumber the leaf list and eagerly
// recompute the look-ahead pointers — the recomputation the paper cites as
// the cause of WaZI's comparatively slow inserts.

// Insert adds p to the index. Points outside the current data-space bounds
// (or outside the cells along the descent path, which can lag behind the
// bounds after earlier out-of-domain inserts) are accommodated by growing
// the affected cells.
func (z *ZIndex) Insert(p geom.Point) {
	z.stats.Inserts++
	z.bounds = z.bounds.ExtendPoint(p)
	n := z.root
	for {
		// ExtendPoint is a no-op for in-cell points, so this costs nothing
		// on the common path while keeping cells consistent after
		// out-of-domain inserts.
		n.cell = n.cell.ExtendPoint(p)
		if n.leaf != nil {
			break
		}
		q := geom.QuadrantOf(p, n.split)
		pos := n.order.Pos(q)
		if n.child[pos] == nil {
			// First point in this quadrant: materialize a fresh leaf.
			cell := geom.QuadrantRect(n.cell, n.split, q)
			n.child[pos] = &node{cell: cell, leaf: newLeaf(z.store, cell, []geom.Point{p})}
			z.count++
			z.structuralChange()
			return
		}
		n = n.child[pos]
	}
	l := n.leaf
	grew := false
	if !l.bounds.Contains(p) {
		l.bounds = l.bounds.ExtendPoint(p)
		grew = true
	}
	pg := z.store.Page(l.pid)
	pg.Pts = append(pg.Pts, p)
	l.n++
	z.count++
	if l.n > z.opts.LeafSize && z.splitLeaf(n, pg.Pts) {
		return // splitLeaf persisted the points into fresh pages
	}
	// Not split (common case, or coincident points that cannot split):
	// persist the appended page now — exactly one page write per insert.
	z.store.Update(l.pid, pg.Pts, l.bounds)
	if grew {
		// Grown bounds can invalidate look-ahead pointers of earlier
		// leaves; restore safety by full recomputation.
		z.structuralChange()
	}
}

// splitLeaf converts an overflowing leaf node into an internal node with a
// median split and abcd ordering, distributing its page across up to four
// new leaves.
func (z *ZIndex) splitLeaf(n *node, pts []geom.Point) bool {
	split := geom.Point{X: medianX(pts), Y: medianY(pts)}
	parts := partition(pts, split) // copies pts, so freeing the page below is safe
	if degenerate(parts, len(pts)) {
		// Coincident points: leave the oversized page in place; a split
		// cannot separate them. (The disk backend chains continuation
		// slots for such pages.) The caller persists the page instead.
		return false
	}
	// Detach the old leaf and recycle its page; the leaf's next pointer
	// keeps forwarding into the list so that any in-flight iterator would
	// drain safely.
	z.store.Free(n.leaf.pid)
	n.leaf = nil
	n.split = split
	n.order = OrderABCD
	for q := geom.Quadrant(0); q < 4; q++ {
		if len(parts[q]) == 0 {
			continue
		}
		cell := geom.QuadrantRect(n.cell, split, q)
		n.child[n.order.Pos(q)] = &node{cell: cell, leaf: newLeaf(z.store, cell, parts[q])}
	}
	z.stats.PageSplits++
	z.structuralChange()
	return true
}

// Delete removes one point equal to p, reporting whether a point was
// removed. Sibling leaves whose combined occupancy falls to a quarter of
// the page capacity are merged back into their parent cell.
func (z *ZIndex) Delete(p geom.Point) bool {
	z.stats.Deletes++
	if !z.bounds.Contains(p) {
		return false
	}
	// Descend, remembering the path for the merge check.
	var path []*node
	n := z.root
	for n != nil && n.leaf == nil {
		path = append(path, n)
		n = n.child[n.order.Pos(geom.QuadrantOf(p, n.split))]
	}
	if n == nil {
		return false
	}
	pg := z.store.Page(n.leaf.pid)
	if !pg.Remove(p) {
		return false
	}
	z.store.Update(n.leaf.pid, pg.Pts, n.leaf.bounds)
	n.leaf.n--
	z.count--
	if len(path) > 0 {
		z.maybeMerge(path[len(path)-1])
	}
	return true
}

// maybeMerge collapses parent into a single leaf when all of its children
// are leaves and their pages jointly fit comfortably (a quarter of the page
// capacity, leaving headroom against thrashing).
func (z *ZIndex) maybeMerge(parent *node) {
	total := 0
	for _, c := range parent.child {
		if c == nil {
			continue
		}
		if c.leaf == nil {
			return
		}
		total += c.leaf.n
	}
	if total > z.opts.LeafSize/4 {
		return
	}
	merged := make([]geom.Point, 0, total)
	for pos := 0; pos < 4; pos++ {
		if c := parent.child[pos]; c != nil {
			v := z.store.View(c.leaf.pid)
			merged = append(merged, v.Pts...)
			v.Release()
			z.store.Free(c.leaf.pid)
			parent.child[pos] = nil
		}
	}
	parent.leaf = newLeaf(z.store, parent.cell, merged)
	z.stats.PageMerges++
	z.structuralChange()
}

// structuralChange restores the derived structures after the tree shape
// changed: the leaf list (ords, prev/next) and, when skipping is enabled,
// the look-ahead pointers.
func (z *ZIndex) structuralChange() {
	z.rebuildLeafList()
	if !z.opts.DisableSkipping {
		z.rebuildLookahead()
	}
}

// Points returns all indexed points in leaf order. The slice is freshly
// allocated; mutating it does not affect the index. It is the natural input
// to a rebuild after workload drift.
func (z *ZIndex) Points() []geom.Point {
	return z.PointsAppend(make([]geom.Point, 0, z.count))
}

// PointsAppend appends all indexed points in leaf order to dst and returns
// the extended slice.
func (z *ZIndex) PointsAppend(dst []geom.Point) []geom.Point {
	for l := z.head; l != nil; l = l.next {
		v := z.store.View(l.pid)
		dst = append(dst, v.Pts...)
		v.Release()
	}
	return dst
}
