package core

import (
	"github.com/wazi-index/wazi/internal/geom"
)

// This file implements the retrieval-cost model of §4.2.
//
// For a cell split at s with child ordering o, the cost of a range query R
// (clipped to the cell) is the number of points the scanning phase touches:
// every quadrant whose ordering position lies between the positions of the
// quadrants holding BL(R) and TR(R) is visited; quadrants that geometrically
// intersect R contribute their full cardinality, quadrants that merely lie
// between the two extremes in the ordering are skipped at a discounted cost
// α·n (bounding-box comparison, or a look-ahead jump when skipping is on).
//
// Summed over a workload this reproduces Eq. 4/5 of the paper — including
// every published special case of Eq. 1 and Eq. 2 — without enumerating the
// nine δ terms by hand. (It also fixes the evident typo in Eq. 2's AB term,
// where the skipped middle cell under "acbd" is C, not B.)

// cellCost returns the Eq. 5 cost of the given split and ordering over the
// queries (which must already be clipped to the cell), with per-quadrant
// cardinalities n (indexed by geom.Quadrant).
func cellCost(cell geom.Rect, split geom.Point, o Ordering, queries []geom.Rect, n [4]float64, alpha float64) float64 {
	var quadRect [4]geom.Rect
	for q := geom.Quadrant(0); q < 4; q++ {
		quadRect[q] = geom.QuadrantRect(cell, split, q)
	}
	var total float64
	for _, r := range queries {
		pLo := o.Pos(geom.QuadrantOf(r.BL(), split))
		pHi := o.Pos(geom.QuadrantOf(r.TR(), split))
		for pos := pLo; pos <= pHi; pos++ {
			q := o.Quad(pos)
			if quadRect[q].Intersects(r) {
				total += n[q]
			} else {
				total += alpha * n[q]
			}
		}
	}
	return total
}

// bestConfig evaluates both orderings for a single candidate split and
// returns the cheaper (cost, ordering) pair.
func bestConfig(cell geom.Rect, split geom.Point, queries []geom.Rect, n [4]float64, alpha float64) (float64, Ordering) {
	ca := cellCost(cell, split, OrderABCD, queries, n, alpha)
	cb := cellCost(cell, split, OrderACBD, queries, n, alpha)
	if cb < ca {
		return cb, OrderACBD
	}
	return ca, OrderABCD
}

// RetrievalCost computes the model's predicted scanning cost of query r
// against a built index, by descending the actual tree. Quadrant
// cardinalities are exact (taken from the built pages), so this is the
// "true" Eq. 3 recursive cost of the final structure. It is used by tests
// to cross-check the cost model against measured scan counts and by the
// exact DP optimizer.
func (z *ZIndex) RetrievalCost(r geom.Rect, alpha float64) float64 {
	clipped := r.Intersect(z.bounds)
	if !clipped.Valid() {
		return 0
	}
	return nodeRetrievalCost(z.root, clipped, alpha)
}

func nodeRetrievalCost(n *node, r geom.Rect, alpha float64) float64 {
	if n == nil {
		return 0
	}
	if n.leaf != nil {
		if n.leaf.bounds.Intersects(r) {
			return float64(n.leaf.n)
		}
		return alpha * float64(n.leaf.n)
	}
	pLo := n.order.Pos(geom.QuadrantOf(r.BL(), n.split))
	pHi := n.order.Pos(geom.QuadrantOf(r.TR(), n.split))
	var total float64
	for pos := pLo; pos <= pHi; pos++ {
		q := n.order.Quad(pos)
		child := n.child[pos]
		if child == nil {
			continue
		}
		qr := geom.QuadrantRect(n.cell, n.split, q)
		if qr.Intersects(r) {
			total += nodeRetrievalCost(child, r.Intersect(qr), alpha)
		} else {
			// Quadrant lies between the extremes in the ordering but does
			// not intersect R: every point beneath it is skipped at the
			// discounted rate.
			total += alpha * float64(subtreeCount(child))
		}
	}
	return total
}

// subtreeCount returns the number of points stored beneath n.
func subtreeCount(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf != nil {
		return n.leaf.n
	}
	total := 0
	for _, c := range n.child {
		total += subtreeCount(c)
	}
	return total
}

// WorkloadCost sums RetrievalCost over a workload. Lower is better; WaZI's
// construction minimizes exactly this quantity level by level.
func (z *ZIndex) WorkloadCost(queries []geom.Rect, alpha float64) float64 {
	var total float64
	for _, r := range queries {
		total += z.RetrievalCost(r, alpha)
	}
	return total
}
