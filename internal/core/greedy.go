package core

import (
	"math/rand"

	"github.com/wazi-index/wazi/internal/density"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// BuildWaZI constructs the workload-aware Z-index of §4 by greedy top-down
// optimization (Algorithm 3): at every cell it samples κ candidate split
// points uniformly from the cell's region, evaluates the Eq. 5 cost of each
// candidate under both child orderings using (learned) density estimates,
// and keeps the minimizer. queries is the anticipated range-query workload Q
// — historical logs or representative queries.
//
// An empty workload degrades gracefully: construction falls back to the
// base median/abcd configuration (the cost function cannot distinguish
// candidates without queries, and the median keeps the tree balanced).
func BuildWaZI(pts []geom.Point, queries []geom.Rect, opts Options) (*ZIndex, error) {
	opts.fill()
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	st, err := opts.OpenStore()
	if err != nil {
		return nil, err
	}
	reserveStore(st, len(pts))
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	z := &ZIndex{
		bounds:        geom.RectFromPoints(own),
		count:         len(own),
		opts:          opts,
		workloadAware: true,
	}
	z.adoptStore(st)
	b := &greedyBuilder{opts: opts, st: st, rng: rand.New(rand.NewSource(opts.Seed))}
	switch {
	case opts.ExactCounts:
		b.est = nil // per-cell exact counting
	case opts.Estimator != nil:
		b.est = opts.Estimator
	default:
		b.est = density.NewForest(own, opts.DensityOpts)
	}
	// Clip the workload to the data space; queries that miss it entirely
	// cannot influence the layout.
	clipped := make([]geom.Rect, 0, len(queries))
	for _, q := range queries {
		if c := q.Intersect(z.bounds); c.Valid() {
			clipped = append(clipped, c)
		}
	}
	z.root = b.build(own, clipped, z.bounds, opts.MaxDepth)
	z.rebuildLeafList()
	if !opts.DisableSkipping {
		z.rebuildLookahead()
	}
	return z, nil
}

// greedyBuilder carries construction state down the recursion.
type greedyBuilder struct {
	opts Options
	st   storage.PageStore
	rng  *rand.Rand
	est  density.Estimator // nil means exact counting over the cell's points
}

// build implements Algorithm 3 for one cell.
func (b *greedyBuilder) build(pts []geom.Point, queries []geom.Rect, cell geom.Rect, depthLeft int) *node {
	n := &node{cell: cell}
	if len(pts) <= b.opts.LeafSize || depthLeft == 0 {
		n.leaf = newLeaf(b.st, cell, pts)
		return n
	}

	split, order := b.chooseConfig(pts, queries, cell)
	parts := partition(pts, split)
	if degenerate(parts, len(pts)) {
		// The chosen split puts every point on one side. Retry with the
		// median configuration before giving up; the median always splits
		// non-coincident point sets.
		split = geom.Point{X: medianX(pts), Y: medianY(pts)}
		order = OrderABCD
		parts = partition(pts, split)
		if degenerate(parts, len(pts)) {
			n.leaf = newLeaf(b.st, cell, pts)
			return n
		}
	}
	n.split = split
	n.order = order
	for q := geom.Quadrant(0); q < 4; q++ {
		sub := parts[q]
		if len(sub) == 0 {
			continue
		}
		qr := geom.QuadrantRect(cell, split, q)
		n.child[n.order.Pos(q)] = b.build(sub, clipQueries(queries, qr), qr, depthLeft-1)
	}
	return n
}

// chooseConfig samples candidate split points and returns the (split,
// ordering) pair minimizing the Eq. 5 cost. When no candidate is usable
// (all estimated mass in one quadrant for every sample) or the subtree sees
// no workload queries, it falls back to the balanced median/abcd base
// configuration.
func (b *greedyBuilder) chooseConfig(pts []geom.Point, queries []geom.Rect, cell geom.Rect) (geom.Point, Ordering) {
	median := geom.Point{X: medianX(pts), Y: medianY(pts)}
	if len(queries) == 0 {
		// Workload exhausted in this subtree: no signal to optimize for.
		return median, OrderABCD
	}
	candidates := make([]geom.Point, 0, b.opts.Kappa+1)
	for i := 0; i < b.opts.Kappa; i++ {
		candidates = append(candidates, uniformSample(b.rng, cell))
	}
	if !b.opts.NoMedianCandidate {
		candidates = append(candidates, median)
	}

	bestCost := infCost
	bestSplit := median
	bestOrder := OrderABCD
	for _, s := range candidates {
		n := b.quadrantCounts(pts, cell, s)
		// A split with (almost) all mass in one quadrant makes no
		// progress: it would minimize cost trivially without improving
		// anything, and recursing on it risks unbounded depth.
		if maxShare(n) > 0.999 {
			continue
		}
		var cost float64
		order := OrderABCD
		if b.opts.OrderABCDOnly {
			cost = cellCost(cell, s, OrderABCD, queries, n, b.opts.Alpha)
		} else {
			cost, order = bestConfig(cell, s, queries, n, b.opts.Alpha)
		}
		if cost < bestCost {
			bestCost, bestSplit, bestOrder = cost, s, order
		}
	}
	return bestSplit, bestOrder
}

// exactCountThreshold is the cell size below which candidate evaluation
// counts points exactly instead of querying the learned estimator. Deep in
// the tree, cells shrink below the estimator's leaf resolution and its
// area-prorated estimates flatten toward uniform, starving the greedy
// choice of signal — while exact counting at these sizes costs O(cell),
// which is cheap. The estimator still carries the expensive upper levels,
// preserving the paper's construction-cost profile.
const exactCountThreshold = 2048

// quadrantCounts estimates the number of data points in each quadrant of
// cell under a split at s, using the learned estimator for large cells and
// exact counting for small ones (and throughout when ExactCounts is set).
func (b *greedyBuilder) quadrantCounts(pts []geom.Point, cell geom.Rect, s geom.Point) [4]float64 {
	var n [4]float64
	if b.est == nil || len(pts) <= exactCountThreshold {
		for _, p := range pts {
			n[geom.QuadrantOf(p, s)]++
		}
		return n
	}
	for q := geom.Quadrant(0); q < 4; q++ {
		n[q] = b.est.Estimate(geom.QuadrantRect(cell, s, q))
	}
	return n
}

// maxShare returns the largest fraction of total mass held by one quadrant.
func maxShare(n [4]float64) float64 {
	total := n[0] + n[1] + n[2] + n[3]
	if total <= 0 {
		return 1
	}
	m := n[0]
	for _, v := range n[1:] {
		if v > m {
			m = v
		}
	}
	return m / total
}

// clipQueries intersects every query with the child cell, dropping queries
// that miss it. This keeps the per-cell q counts exact, per §4.1 ("Q can be
// obtained from historical logs").
func clipQueries(queries []geom.Rect, cell geom.Rect) []geom.Rect {
	out := make([]geom.Rect, 0, len(queries))
	for _, q := range queries {
		if c := q.Intersect(cell); c.Valid() {
			out = append(out, c)
		}
	}
	return out
}
