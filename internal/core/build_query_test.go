package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// ---------- test data helpers ----------

func uniformPts(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func clusteredPts(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{X: 0.15, Y: 0.2}, {X: 0.7, Y: 0.25}, {X: 0.4, Y: 0.75}, {X: 0.85, Y: 0.85}}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		pts[i] = geom.Point{
			X: clamp01(c.X + rng.NormFloat64()*0.07),
			Y: clamp01(c.Y + rng.NormFloat64()*0.07),
		}
	}
	return pts
}

func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// skewedQueries generates a workload concentrated on two hotspots.
func skewedQueries(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 0.7, Y: 0.25}, {X: 0.4, Y: 0.75}}
	qs := make([]geom.Rect, n)
	for i := range qs {
		c := hot[rng.Intn(len(hot))]
		w := 0.01 + rng.Float64()*0.05
		qs[i] = geom.Rect{
			MinX: clamp01(c.X + rng.NormFloat64()*0.05 - w),
			MinY: clamp01(c.Y + rng.NormFloat64()*0.05 - w),
		}
		qs[i].MaxX = clamp01(qs[i].MinX + 2*w)
		qs[i].MaxY = clamp01(qs[i].MinY + 2*w)
	}
	return qs
}

func bruteRange(pts []geom.Point, r geom.Rect) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if r.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

func samePointSets(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", ctx, len(got), len(want))
	}
	key := func(p geom.Point) [2]float64 { return [2]float64{p.X, p.Y} }
	g := make([][2]float64, len(got))
	w := make([][2]float64, len(want))
	for i := range got {
		g[i], w[i] = key(got[i]), key(want[i])
	}
	less := func(s [][2]float64) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(g, less(g))
	sort.Slice(w, less(w))
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: point sets differ at %d: %v vs %v", ctx, i, g[i], w[i])
		}
	}
}

func randomQueryRect(rng *rand.Rand) geom.Rect {
	cx, cy := rng.Float64(), rng.Float64()
	w, h := rng.Float64()*0.3, rng.Float64()*0.3
	return geom.Rect{MinX: cx - w, MinY: cy - h, MaxX: cx + w, MaxY: cy + h}
}

// buildAll returns the four ablation variants of §6.9 over the same data and
// workload: Base, Base+SK, WaZI−SK, WaZI.
func buildAll(t *testing.T, pts []geom.Point, qs []geom.Rect, leaf int) map[string]*ZIndex {
	t.Helper()
	out := map[string]*ZIndex{}
	var err error
	if out["base"], err = BuildBase(pts, Options{LeafSize: leaf, DisableSkipping: true}); err != nil {
		t.Fatal(err)
	}
	if out["base+sk"], err = BuildBase(pts, Options{LeafSize: leaf}); err != nil {
		t.Fatal(err)
	}
	if out["wazi-sk"], err = BuildWaZI(pts, qs, Options{LeafSize: leaf, DisableSkipping: true, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if out["wazi"], err = BuildWaZI(pts, qs, Options{LeafSize: leaf, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return out
}

// ---------- construction ----------

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := BuildBase(nil, Options{}); err != ErrNoPoints {
		t.Errorf("BuildBase(nil) err = %v, want ErrNoPoints", err)
	}
	if _, err := BuildWaZI(nil, nil, Options{}); err != ErrNoPoints {
		t.Errorf("BuildWaZI(nil) err = %v, want ErrNoPoints", err)
	}
}

func TestBuildInvariants(t *testing.T) {
	pts := clusteredPts(5000, 1)
	qs := skewedQueries(200, 2)
	for name, z := range buildAll(t, pts, qs, 64) {
		if err := z.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if z.Len() != len(pts) {
			t.Errorf("%s: Len = %d, want %d", name, z.Len(), len(pts))
		}
		if z.Depth() < 2 {
			t.Errorf("%s: suspiciously shallow tree (depth %d)", name, z.Depth())
		}
	}
}

func TestLeafSizeRespected(t *testing.T) {
	pts := uniformPts(3000, 3)
	z, err := BuildBase(pts, Options{LeafSize: 100, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	for l := z.Head(); l != nil; l = l.Next() {
		if l.Len() > 100 {
			t.Fatalf("leaf with %d points exceeds capacity 100", l.Len())
		}
	}
}

func TestSinglePointAndTinyInputs(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		pts := uniformPts(n, int64(n))
		z, err := BuildBase(pts, Options{LeafSize: 8})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := z.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		all := z.RangeQuery(z.Bounds())
		if len(all) != n {
			t.Fatalf("n=%d: full-domain query returned %d", n, len(all))
		}
	}
}

func TestCoincidentPoints(t *testing.T) {
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: 0.5, Y: 0.5}
	}
	z, err := BuildBase(pts, Options{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := z.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if len(got) != 1000 {
		t.Fatalf("got %d points, want 1000", len(got))
	}
	if !z.PointQuery(geom.Point{X: 0.5, Y: 0.5}) {
		t.Error("point query for the coincident point failed")
	}
}

func TestCollinearPoints(t *testing.T) {
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Point{X: 0.3, Y: float64(i) / 2000}
	}
	for _, build := range []func() (*ZIndex, error){
		func() (*ZIndex, error) { return BuildBase(pts, Options{LeafSize: 32}) },
		func() (*ZIndex, error) {
			return BuildWaZI(pts, skewedQueries(50, 4), Options{LeafSize: 32, Seed: 5})
		},
	} {
		z, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := z.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		got := z.RangeQuery(geom.Rect{MinX: 0, MinY: 0.25, MaxX: 1, MaxY: 0.5})
		want := bruteRange(pts, geom.Rect{MinX: 0, MinY: 0.25, MaxX: 1, MaxY: 0.5})
		samePointSets(t, got, want, "collinear")
	}
}

func TestWaZIEmptyWorkloadFallsBackToBalanced(t *testing.T) {
	pts := uniformPts(4000, 6)
	z, err := BuildWaZI(pts, nil, Options{LeafSize: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With median fallbacks everywhere the tree should be about as deep as
	// the base tree, not a degenerate path.
	b, _ := BuildBase(pts, Options{LeafSize: 64})
	if z.Depth() > b.Depth()+3 {
		t.Errorf("empty-workload WaZI depth %d vs base %d", z.Depth(), b.Depth())
	}
}

func TestWaZIExactCountsOption(t *testing.T) {
	pts := clusteredPts(3000, 8)
	qs := skewedQueries(100, 9)
	z, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 10, ExactCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		r := randomQueryRect(rng)
		samePointSets(t, z.RangeQuery(r), bruteRange(pts, r), "exact-counts build")
	}
}

// ---------- monotonicity ----------

func TestMonotonicityProperty(t *testing.T) {
	pts := clusteredPts(4000, 12)
	qs := skewedQueries(150, 13)
	for name, z := range buildAll(t, pts, qs, 64) {
		rng := rand.New(rand.NewSource(14))
		for i := 0; i < 3000; i++ {
			a := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			b := geom.Point{X: a.X + rng.Float64()*(1-a.X), Y: a.Y + rng.Float64()*(1-a.Y)}
			la, lb := z.TreeTraversal(a), z.TreeTraversal(b)
			if la == nil || lb == nil {
				continue // empty quadrant
			}
			if la.Ord() > lb.Ord() {
				t.Fatalf("%s: monotonicity violated: leaf(%v).ord=%d > leaf(%v).ord=%d",
					name, a, la.Ord(), b, lb.Ord())
			}
		}
	}
}

func TestDominatedIndexedPointsOrder(t *testing.T) {
	// The paper's statement: if point a in page X is dominated by b in page
	// Y != X, X precedes Y in the leaf list.
	pts := uniformPts(3000, 15)
	qs := skewedQueries(100, 16)
	for name, z := range buildAll(t, pts, qs, 32) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 2000; i++ {
			a, b := pts[rng.Intn(len(pts))], pts[rng.Intn(len(pts))]
			if !b.Dominates(a) {
				continue
			}
			la, lb := z.TreeTraversal(a), z.TreeTraversal(b)
			if la != lb && la.Ord() > lb.Ord() {
				t.Fatalf("%s: dominated point's leaf ord %d > dominating point's %d",
					name, la.Ord(), lb.Ord())
			}
		}
	}
}

// ---------- range queries ----------

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	pts := clusteredPts(6000, 18)
	qs := skewedQueries(200, 19)
	variants := buildAll(t, pts, qs, 64)
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 200; i++ {
		r := randomQueryRect(rng)
		want := bruteRange(pts, r)
		for name, z := range variants {
			samePointSets(t, z.RangeQuery(r), want, name)
		}
	}
}

func TestRangeQueryWorkloadQueries(t *testing.T) {
	// The workload the index was optimized for must, of course, return
	// correct results too.
	pts := clusteredPts(6000, 21)
	qs := skewedQueries(300, 22)
	z, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range qs[:100] {
		samePointSets(t, z.RangeQuery(r), bruteRange(pts, r), "workload query")
	}
}

func TestRangeQueryEdgeRects(t *testing.T) {
	pts := uniformPts(2000, 24)
	z, err := BuildWaZI(pts, skewedQueries(50, 25), Options{LeafSize: 32, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	cases := []geom.Rect{
		{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},       // superset of domain
		{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},         // disjoint
		{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}, // degenerate point rect
		{MinX: 0.3, MinY: -1, MaxX: 0.31, MaxY: 2},   // full-height sliver
		{MinX: -1, MinY: 0.7, MaxX: 2, MaxY: 0.71},   // full-width sliver
		{MinX: 0.9, MinY: 0.9, MaxX: 0.6, MaxY: 0.6}, // inverted (invalid)
		{MinX: 0, MinY: 0, MaxX: 0, MaxY: 1},         // zero-width edge
	}
	for _, r := range cases {
		var want []geom.Point
		if r.Valid() {
			want = bruteRange(pts, r)
		}
		samePointSets(t, z.RangeQuery(r), want, r.String())
	}
}

func TestRangeCountAndPhasedAgree(t *testing.T) {
	pts := clusteredPts(4000, 27)
	qs := skewedQueries(100, 28)
	z, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 100; i++ {
		r := randomQueryRect(rng)
		want := z.RangeQuery(r)
		if got := z.RangeCount(r); got != len(want) {
			t.Fatalf("RangeCount = %d, want %d", got, len(want))
		}
		phased, _, _ := z.RangeQueryPhased(r)
		samePointSets(t, phased, want, "phased")
	}
}

func TestRangeQueryAppendReusesBuffer(t *testing.T) {
	pts := uniformPts(1000, 31)
	z, _ := BuildBase(pts, Options{LeafSize: 64})
	buf := make([]geom.Point, 0, 1024)
	r := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	out := z.RangeQueryAppend(buf, r)
	if len(out) > 0 && &out[0] != &buf[:1][0] {
		t.Error("RangeQueryAppend should reuse the provided buffer capacity")
	}
	samePointSets(t, out, bruteRange(pts, r), "append")
}

// ---------- point queries ----------

func TestPointQuery(t *testing.T) {
	pts := clusteredPts(3000, 32)
	qs := skewedQueries(100, 33)
	for name, z := range buildAll(t, pts, qs, 64) {
		for i := 0; i < 500; i++ {
			if !z.PointQuery(pts[i*5]) {
				t.Fatalf("%s: indexed point %v not found", name, pts[i*5])
			}
		}
		rng := rand.New(rand.NewSource(34))
		falseHits := 0
		for i := 0; i < 500; i++ {
			q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			found := z.PointQuery(q)
			var truth bool
			for _, p := range pts {
				if p == q {
					truth = true
					break
				}
			}
			if found != truth {
				falseHits++
			}
		}
		if falseHits > 0 {
			t.Errorf("%s: %d point-query mismatches", name, falseHits)
		}
		if z.PointQuery(geom.Point{X: 99, Y: 99}) {
			t.Errorf("%s: out-of-bounds point reported found", name)
		}
	}
}

// ---------- skipping ----------

func TestSkippingReducesBBChecks(t *testing.T) {
	pts := clusteredPts(20000, 35)
	naive, err := BuildBase(pts, Options{LeafSize: 64, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	skip, err := BuildBase(pts, Options{LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(36))
	for i := 0; i < 200; i++ {
		r := randomQueryRect(rng)
		naive.RangeQuery(r)
		skip.RangeQuery(r)
	}
	nb, sb := naive.Stats().BBChecked, skip.Stats().BBChecked
	if sb >= nb {
		t.Errorf("skipping should reduce bounding-box checks: naive=%d skip=%d", nb, sb)
	}
	if skip.Stats().LookaheadJumps == 0 {
		t.Error("expected at least one look-ahead jump")
	}
}

func TestLookaheadPointerInvariants(t *testing.T) {
	pts := clusteredPts(8000, 37)
	qs := skewedQueries(200, 38)
	for _, name := range []string{"base+sk", "wazi"} {
		z := buildAll(t, pts, qs, 64)[name]
		// CheckInvariants includes the look-ahead validation, but assert the
		// specific sub-check too for a clearer failure signal.
		if err := z.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLookaheadChaseFindsEarliestImprovement(t *testing.T) {
	pts := uniformPts(5000, 39)
	z, err := BuildBase(pts, Options{LeafSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// For every leaf and criterion, the pointer target must equal the
	// linear-scan earliest improving leaf.
	for l := z.Head(); l != nil; l = l.Next() {
		for c := Criterion(0); c < 4; c++ {
			var want *Leaf
			for m := l.Next(); m != nil; m = m.Next() {
				if Improves(c, l, m) {
					want = m
					break
				}
			}
			if got := l.Lookahead(c); got != want {
				t.Fatalf("leaf %d criterion %v: pointer mismatch", l.Ord(), c)
			}
		}
	}
}

// ---------- cost model ----------

func TestRetrievalCostMatchesMeasuredScan(t *testing.T) {
	// With α=0 the model's cost of a query must equal the number of points
	// the naive scan actually touches.
	pts := clusteredPts(5000, 40)
	qs := skewedQueries(100, 41)
	for _, name := range []string{"base", "wazi-sk"} {
		z := buildAll(t, pts, qs, 64)[name]
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 100; i++ {
			r := randomQueryRect(rng)
			before := *z.Stats()
			z.RangeQuery(r)
			scanned := z.Stats().Diff(before).PointsScanned
			model := z.RetrievalCost(r, 0)
			if math.Abs(model-float64(scanned)) > 1e-6 {
				t.Fatalf("%s: model cost %v != measured scan %d for %v", name, model, scanned, r)
			}
		}
	}
}

func TestGreedyReducesWorkloadCost(t *testing.T) {
	pts := clusteredPts(8000, 43)
	qs := skewedQueries(400, 44)
	base, err := BuildBase(pts, Options{LeafSize: 64, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	// Exact counting removes estimator noise, making the greedy win
	// deterministic for this seed; the RFDE-driven build is validated
	// separately on the structural straddle workload below, where the win
	// is large enough to survive estimation error.
	wazi, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 45, DisableSkipping: true, ExactCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	cb := base.WorkloadCost(qs, 0.1)
	cw := wazi.WorkloadCost(qs, 0.1)
	if cw >= cb {
		t.Errorf("greedy construction should reduce workload cost: base=%v wazi=%v", cb, cw)
	}
}

func TestGreedyAvoidsBoundaryStraddle(t *testing.T) {
	// The structural advantage of adaptive partitioning (§4.1, Figure 1c):
	// when the workload concentrates on the base index's median crossing,
	// every query straddles all four root quadrants of Base, while WaZI can
	// move the split out of the hotspot. The cost gap is a factor of
	// several, far above estimator noise.
	pts := uniformPts(8000, 1)
	rng := rand.New(rand.NewSource(2))
	qs := make([]geom.Rect, 300)
	for i := range qs {
		cx := 0.5 + rng.NormFloat64()*0.01
		cy := 0.5 + rng.NormFloat64()*0.01
		w := 0.005 + rng.Float64()*0.01
		qs[i] = geom.Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
	}
	base, err := BuildBase(pts, Options{LeafSize: 64, DisableSkipping: true})
	if err != nil {
		t.Fatal(err)
	}
	cb := base.WorkloadCost(qs, 0.1)
	for _, exact := range []bool{false, true} {
		wazi, err := BuildWaZI(pts, qs, Options{LeafSize: 64, Seed: 3, DisableSkipping: true, ExactCounts: exact})
		if err != nil {
			t.Fatal(err)
		}
		cw := wazi.WorkloadCost(qs, 0.1)
		if cw > 0.5*cb {
			t.Errorf("exact=%v: expected a structural (>2x) win on the straddle workload: base=%v wazi=%v", exact, cb, cw)
		}
		// The optimized layout must also be measurably better, not just
		// better in the model: compare actual points scanned.
		before := *wazi.Stats()
		bBefore := *base.Stats()
		for _, r := range qs {
			wazi.RangeQuery(r)
			base.RangeQuery(r)
		}
		ws := wazi.Stats().Diff(before).PointsScanned
		bs := base.Stats().Diff(bBefore).PointsScanned
		if ws >= bs {
			t.Errorf("exact=%v: WaZI scanned %d points, Base %d; expected fewer", exact, ws, bs)
		}
	}
}

func TestCellCostReproducesEquationOne(t *testing.T) {
	// Hand-check Eq. 1 on a unit cell split at the center: a query entirely
	// in the bottom half (R in AB) must cost nA + nB under abcd.
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	split := geom.Point{X: 0.5, Y: 0.5}
	n := [4]float64{10, 20, 30, 40} // indexed A, B, C, D
	alpha := 0.5

	ab := geom.Rect{MinX: 0.2, MinY: 0.1, MaxX: 0.8, MaxY: 0.3}
	if got := CellCost(cell, split, OrderABCD, []geom.Rect{ab}, n, alpha); got != 30 {
		t.Errorf("R in AB under abcd: cost = %v, want nA+nB = 30", got)
	}
	// Under acbd, the same query spans positions A..B = A, C, B with C
	// skipped: nA + α·nC + nB.
	if got := CellCost(cell, split, OrderACBD, []geom.Rect{ab}, n, alpha); got != 10+0.5*30+20 {
		t.Errorf("R in AB under acbd: cost = %v, want nA+α·nC+nB = 45", got)
	}

	// R in AC under abcd: nA + α·nB + nC (Eq. 1 third term).
	ac := geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.8}
	if got := CellCost(cell, split, OrderABCD, []geom.Rect{ac}, n, alpha); got != 10+0.5*20+30 {
		t.Errorf("R in AC under abcd: cost = %v, want 50", got)
	}
	// R in AC under acbd: contiguous positions, nA + nC (Eq. 2).
	if got := CellCost(cell, split, OrderACBD, []geom.Rect{ac}, n, alpha); got != 40 {
		t.Errorf("R in AC under acbd: cost = %v, want nA+nC = 40", got)
	}

	// R in AD spans everything under both orderings.
	ad := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	for _, o := range []Ordering{OrderABCD, OrderACBD} {
		if got := CellCost(cell, split, o, []geom.Rect{ad}, n, alpha); got != 100 {
			t.Errorf("R in AD under %v: cost = %v, want 100", o, got)
		}
	}
	// R entirely within one quadrant costs just that quadrant.
	dd := geom.Rect{MinX: 0.6, MinY: 0.6, MaxX: 0.9, MaxY: 0.9}
	if got := CellCost(cell, split, OrderABCD, []geom.Rect{dd}, n, alpha); got != 40 {
		t.Errorf("R in DD: cost = %v, want nD = 40", got)
	}
}

// ---------- small helpers ----------

func TestOrderingPosQuadInverse(t *testing.T) {
	for _, o := range []Ordering{OrderABCD, OrderACBD} {
		seen := map[int]bool{}
		for q := geom.Quadrant(0); q < 4; q++ {
			pos := o.Pos(q)
			if pos < 0 || pos > 3 {
				t.Fatalf("%v.Pos(%v) = %d out of range", o, q, pos)
			}
			if seen[pos] {
				t.Fatalf("%v: position %d assigned twice", o, pos)
			}
			seen[pos] = true
			if back := o.Quad(pos); back != q {
				t.Fatalf("%v: Quad(Pos(%v)) = %v", o, q, back)
			}
		}
	}
	// abcd visits A,B,C,D in positions 0..3; acbd visits A,C,B,D.
	if OrderABCD.Quad(1) != geom.QuadB || OrderACBD.Quad(1) != geom.QuadC {
		t.Error("ordering position tables wrong")
	}
}

func TestQuickMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
			if rng.Intn(4) == 0 && i > 0 {
				vals[i] = vals[rng.Intn(i)] // inject duplicates
			}
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		want := sorted[n/2]
		if got := QuickMedian(append([]float64(nil), vals...)); got != want {
			t.Fatalf("QuickMedian = %v, want %v (n=%d)", got, want, n)
		}
	}
}

func TestDescribe(t *testing.T) {
	pts := uniformPts(500, 47)
	b, _ := BuildBase(pts, Options{LeafSize: 64, DisableSkipping: true})
	w, _ := BuildWaZI(pts, skewedQueries(20, 48), Options{LeafSize: 64})
	if b.WorkloadAware() || !w.WorkloadAware() {
		t.Error("WorkloadAware flags wrong")
	}
	if b.SkippingEnabled() || !w.SkippingEnabled() {
		t.Error("SkippingEnabled flags wrong")
	}
	if b.Describe() == "" || w.Describe() == "" {
		t.Error("empty Describe")
	}
	if b.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
}
