package core

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// TestKNNTieBreakDeterministic pins the (distance, X, Y) ordering of
// equidistant neighbours. A regular lattice queried at one of its nodes
// produces rings of exactly equidistant points; the result must match the
// brute-force total order element for element, regardless of leaf size,
// skipping, or build flavour. Before the tie-break, sort.Slice on distance
// alone returned these rings in whatever order the pages happened to be
// scanned, so mem-vs-disk and shard-merge comparisons could disagree on
// byte-identical datasets.
func TestKNNTieBreakDeterministic(t *testing.T) {
	var pts []geom.Point
	for i := 0; i <= 10; i++ {
		for j := 0; j <= 10; j++ {
			pts = append(pts, geom.Point{X: float64(i) / 10, Y: float64(j) / 10})
		}
	}
	q := geom.Point{X: 0.5, Y: 0.5}
	want := append([]geom.Point(nil), pts...)
	geom.SortByDistance(want, q)

	opts := []Options{
		{LeafSize: 4},
		{LeafSize: 16, Seed: 9},
		{LeafSize: 64, DisableSkipping: true},
	}
	for oi, opt := range opts {
		z, err := BuildBase(pts, opt)
		if err != nil {
			t.Fatalf("opts %d: %v", oi, err)
		}
		for _, k := range []int{1, 5, 9, 25, len(pts)} {
			got := z.KNN(q, k)
			if len(got) != k {
				t.Fatalf("opts %d: KNN(k=%d) returned %d points", oi, k, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("opts %d, k=%d: position %d is %v, want %v (tie-break violated)",
						oi, k, i, got[i], want[i])
				}
			}
		}
	}
}
