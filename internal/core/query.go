package core

import (
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Query processing accumulates its access counters into a stack-local
// storage.Stats and flushes it once per query with Stats.AtomicAdd. That
// keeps the hot loops free of atomic operations while making a built index
// safe to query from many goroutines at once — the property the sharded
// serving layer in the root package depends on. Update paths (update.go)
// still write counters directly: structural mutation requires exclusive
// access anyway.

// treeTraversal descends to the leaf whose cell contains p (Algorithm 1).
// It returns nil when the path reaches an empty quadrant (no leaf exists
// there). Visited nodes are counted into d.
func (z *ZIndex) treeTraversal(p geom.Point, d *storage.Stats) *Leaf {
	n := z.root
	for n != nil && n.leaf == nil {
		d.NodesVisited++
		pos := n.order.Pos(geom.QuadrantOf(p, n.split))
		n = n.child[pos]
	}
	if n == nil {
		return nil
	}
	return n.leaf
}

// lowerBoundLeaf returns the first leaf in Ord whose cell could contain p or
// any point dominating p's cell position — the "low" extreme of Algorithm 2.
// When the quadrant containing p is empty, the next non-empty quadrant in
// the ordering is used.
func (z *ZIndex) lowerBoundLeaf(p geom.Point, d *storage.Stats) *Leaf {
	return lowerBound(z.root, p, &d.NodesVisited)
}

func lowerBound(n *node, p geom.Point, visited *int64) *Leaf {
	if n == nil {
		return nil
	}
	if n.leaf != nil {
		return n.leaf
	}
	*visited++
	pos := n.order.Pos(geom.QuadrantOf(p, n.split))
	if l := lowerBound(n.child[pos], p, visited); l != nil {
		return l
	}
	for i := pos + 1; i < 4; i++ {
		if l := firstLeaf(n.child[i]); l != nil {
			return l
		}
	}
	return nil
}

// upperBoundLeaf returns the last leaf in Ord whose cell could contain p or
// any point dominated by p's cell position — the "high" extreme of
// Algorithm 2.
func (z *ZIndex) upperBoundLeaf(p geom.Point, d *storage.Stats) *Leaf {
	return upperBound(z.root, p, &d.NodesVisited)
}

func upperBound(n *node, p geom.Point, visited *int64) *Leaf {
	if n == nil {
		return nil
	}
	if n.leaf != nil {
		return n.leaf
	}
	*visited++
	pos := n.order.Pos(geom.QuadrantOf(p, n.split))
	if l := upperBound(n.child[pos], p, visited); l != nil {
		return l
	}
	for i := pos - 1; i >= 0; i-- {
		if l := lastLeaf(n.child[i]); l != nil {
			return l
		}
	}
	return nil
}

func firstLeaf(n *node) *Leaf {
	if n == nil {
		return nil
	}
	if n.leaf != nil {
		return n.leaf
	}
	for i := 0; i < 4; i++ {
		if l := firstLeaf(n.child[i]); l != nil {
			return l
		}
	}
	return nil
}

func lastLeaf(n *node) *Leaf {
	if n == nil {
		return nil
	}
	if n.leaf != nil {
		return n.leaf
	}
	for i := 3; i >= 0; i-- {
		if l := lastLeaf(n.child[i]); l != nil {
			return l
		}
	}
	return nil
}

// PointQuery reports whether the index contains a point equal to p.
func (z *ZIndex) PointQuery(p geom.Point) bool {
	var d storage.Stats
	d.PointQueries = 1
	defer func() { z.stats.AtomicAdd(d) }()
	if !z.bounds.Contains(p) {
		return false
	}
	// Point lookups count toward the cache's workload histogram too, so a
	// point-query hot set enjoys the same eviction protection as a range
	// hot set.
	z.store.ObserveQuery(geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	l := z.treeTraversal(p, &d)
	if l == nil {
		return false
	}
	d.PagesScanned++
	d.PointsScanned += int64(l.n)
	v := z.store.View(l.pid)
	found := v.Contains(p)
	v.Release()
	return found
}

// leafCursor walks the leaf-list interval [low, high] of a query, yielding
// only leaves whose bounds intersect the query rectangle and advancing via
// look-ahead jumps when enabled. It is the single definition of the
// projection walk shared by RangeQueryAppend, RangeCount, and
// RangeQueryPhased, so the three paths count NodesVisited, BBChecked, and
// LookaheadJumps identically — the property indextest's StatsExactness
// subtest pins. The cursor lives on the caller's stack; iterating it
// allocates nothing.
type leafCursor struct {
	z       *ZIndex
	r       geom.Rect
	p       *Leaf
	highOrd int
	useSkip bool
	d       *storage.Stats
}

// leafScan positions a cursor on the leaf interval covering clipped; r is
// the unclipped rectangle leaves are tested against. When the interval is
// empty the returned cursor is exhausted immediately.
func (z *ZIndex) leafScan(clipped, r geom.Rect, d *storage.Stats) leafCursor {
	c := leafCursor{z: z, r: r, useSkip: !z.opts.DisableSkipping, d: d}
	low := z.lowerBoundLeaf(clipped.BL(), d)
	high := z.upperBoundLeaf(clipped.TR(), d)
	if low != nil && high != nil && low.ord <= high.ord {
		c.p, c.highOrd = low, high.ord
	}
	return c
}

// next returns the next leaf whose bounds intersect the query rectangle, or
// nil when the interval is exhausted.
func (c *leafCursor) next() *Leaf {
	p := c.p
	for p != nil && p.ord <= c.highOrd {
		c.d.BBChecked++
		if p.bounds.Intersects(c.r) {
			c.p = p.next
			return p
		}
		if c.useSkip {
			p = c.z.followLookahead(p, c.r, c.d)
		} else {
			p = p.next
		}
	}
	c.p = nil
	return nil
}

// RangeQuery returns all indexed points inside the closed rectangle r
// (Algorithm 2, with the §5 skipping mechanism when enabled).
func (z *ZIndex) RangeQuery(r geom.Rect) []geom.Point {
	return z.RangeQueryAppend(nil, r)
}

// RangeQueryAppend appends the points inside r to dst and returns the
// extended slice, avoiding per-query allocations for callers that reuse
// buffers.
func (z *ZIndex) RangeQueryAppend(dst []geom.Point, r geom.Rect) []geom.Point {
	var d storage.Stats
	d.RangeQueries = 1
	defer func() { z.stats.AtomicAdd(d) }()
	clipped := r.Intersect(z.bounds)
	if !clipped.Valid() {
		return dst
	}
	// Feed the page store's workload histogram (workload-aware cache
	// eviction for the disk backend; a no-op in RAM).
	z.store.ObserveQuery(clipped)
	before := len(dst)
	cur := z.leafScan(clipped, r, &d)
	for p := cur.next(); p != nil; p = cur.next() {
		d.PagesScanned++
		d.PointsScanned += int64(p.n)
		// Borrowed view, released before the cursor advances: on the disk
		// backend this scans the page's bytes in place (block cache or file
		// mapping) without decoding a copy.
		v := z.store.View(p.pid)
		dst = v.Filter(r, dst)
		v.Release()
	}
	d.ResultPoints += int64(len(dst) - before)
	return dst
}

// followLookahead picks, among the criteria disqualifying p for query r,
// the look-ahead pointer that jumps farthest in Ord (§5.1). A nil pointer
// means no later leaf can satisfy that criterion, so the scan terminates.
func (z *ZIndex) followLookahead(p *Leaf, r geom.Rect, d *storage.Stats) *Leaf {
	next := p.next
	jumped := false
	consider := func(c Criterion) {
		t := p.la[c]
		if t == nil {
			next = nil
			jumped = true
			return
		}
		if next == nil {
			return // an earlier criterion already terminated the scan
		}
		if t.ord > next.ord {
			next = t
			jumped = true
		}
	}
	if p.bounds.MaxY < r.MinY {
		consider(Below)
	}
	if next != nil && p.bounds.MinY > r.MaxY {
		consider(Above)
	}
	if next != nil && p.bounds.MaxX < r.MinX {
		consider(Left)
	}
	if next != nil && p.bounds.MinX > r.MaxX {
		consider(Right)
	}
	if jumped {
		d.LookaheadJumps++
	}
	return next
}

// RangeQueryPhased runs a range query in two explicitly separated phases
// and returns their wall-clock durations: projection (index traversal plus
// the leaf-interval walk deciding which pages overlap, including skipping)
// and scan (filtering points from overlapping pages). Figure 9 of the paper
// reports exactly this split. The result set is identical to RangeQuery's.
func (z *ZIndex) RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration) {
	var d storage.Stats
	d.RangeQueries = 1
	defer func() { z.stats.AtomicAdd(d) }()
	clipped := r.Intersect(z.bounds)
	if !clipped.Valid() {
		return nil, 0, 0
	}
	z.store.ObserveQuery(clipped)
	start := time.Now()
	var overlapping []*Leaf
	cur := z.leafScan(clipped, r, &d)
	for p := cur.next(); p != nil; p = cur.next() {
		overlapping = append(overlapping, p)
	}
	projection = time.Since(start)

	start = time.Now()
	for _, p := range overlapping {
		d.PagesScanned++
		d.PointsScanned += int64(p.n)
		v := z.store.View(p.pid)
		pts = v.Filter(r, pts)
		v.Release()
	}
	scan = time.Since(start)
	d.ResultPoints += int64(len(pts))
	return pts, projection, scan
}

// RangeCount returns the number of points inside r without materializing
// them.
func (z *ZIndex) RangeCount(r geom.Rect) int {
	var d storage.Stats
	d.RangeQueries = 1
	defer func() { z.stats.AtomicAdd(d) }()
	clipped := r.Intersect(z.bounds)
	if !clipped.Valid() {
		return 0
	}
	z.store.ObserveQuery(clipped)
	count := 0
	cur := z.leafScan(clipped, r, &d)
	for p := cur.next(); p != nil; p = cur.next() {
		d.PagesScanned++
		d.PointsScanned += int64(p.n)
		v := z.store.View(p.pid)
		for _, pt := range v.Pts {
			if r.Contains(pt) {
				count++
			}
		}
		v.Release()
	}
	d.ResultPoints += int64(count)
	return count
}
