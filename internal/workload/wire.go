package workload

import (
	"fmt"
	"math"

	"github.com/wazi-index/wazi/internal/geom"
)

// This file defines the wire encoding of workload operations: the JSON
// shapes a scenario suite's operation stream takes when replayed over the
// network. The serving layer (internal/server) decodes exactly these shapes
// on its /v1/* endpoints, and the waziload generator encodes them, so the
// two ends can never drift apart.

// Wire op kinds. Range and Count carry a rectangle; Point, Insert, and
// Delete carry a point; KNN carries a point and k.
const (
	WireRange  = "range"
	WireCount  = "count"
	WirePoint  = "point"
	WireKNN    = "knn"
	WireInsert = "insert"
	WireDelete = "delete"
)

// WireOp is one operation in wire form. Exactly the fields implied by Op
// are set; the rest are omitted from the JSON.
type WireOp struct {
	Op    string      `json:"op"`
	Rect  *geom.Rect  `json:"rect,omitempty"`
	Point *geom.Point `json:"point,omitempty"`
	K     int         `json:"k,omitempty"`
}

// ToWire converts a scenario operation stream into its wire form, ready to
// be marshalled into /v1/batch requests or replayed op by op.
func ToWire(ops []Op) []WireOp {
	out := make([]WireOp, len(ops))
	for i, op := range ops {
		if op.IsWrite {
			p := op.Point
			out[i] = WireOp{Op: WireInsert, Point: &p}
		} else {
			r := op.Query
			out[i] = WireOp{Op: WireRange, Rect: &r}
		}
	}
	return out
}

// Validate checks that the op names a known kind and carries exactly the
// operands that kind needs, with finite coordinates and a valid rectangle.
// It returns nil for replayable ops and a client-actionable error otherwise.
func (w WireOp) Validate() error {
	switch w.Op {
	case WireRange, WireCount:
		if w.Rect == nil {
			return fmt.Errorf("op %q requires a rect", w.Op)
		}
		return validRect(*w.Rect)
	case WirePoint, WireInsert, WireDelete:
		if w.Point == nil {
			return fmt.Errorf("op %q requires a point", w.Op)
		}
		return validPoint(*w.Point)
	case WireKNN:
		if w.Point == nil {
			return fmt.Errorf("op %q requires a point", w.Op)
		}
		if err := validPoint(*w.Point); err != nil {
			return err
		}
		if w.K <= 0 {
			return fmt.Errorf("op %q requires k >= 1, got %d", w.Op, w.K)
		}
		return nil
	case "":
		return fmt.Errorf("missing op kind")
	default:
		return fmt.Errorf("unknown op kind %q", w.Op)
	}
}

func validRect(r geom.Rect) error {
	for _, v := range []float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rect has non-finite coordinate")
		}
	}
	if !r.Valid() {
		return fmt.Errorf("rect min exceeds max: %+v", r)
	}
	return nil
}

func validPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("point has non-finite coordinate")
	}
	return nil
}
