package workload

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

func TestToWireMapsOps(t *testing.T) {
	qs := Uniform(50, 0.0256e-2, 1)
	ins := dataset.Uniform(30, 2)
	ops := MixedOps(qs, ins, 0.3, 3)
	wire := ToWire(ops)
	if len(wire) != len(ops) {
		t.Fatalf("ToWire returned %d ops, want %d", len(wire), len(ops))
	}
	for i, w := range wire {
		if err := w.Validate(); err != nil {
			t.Fatalf("op %d invalid after ToWire: %v", i, err)
		}
		if ops[i].IsWrite {
			if w.Op != WireInsert || w.Point == nil || *w.Point != ops[i].Point {
				t.Fatalf("op %d: write mapped to %+v", i, w)
			}
		} else {
			if w.Op != WireRange || w.Rect == nil || *w.Rect != ops[i].Query {
				t.Fatalf("op %d: query mapped to %+v", i, w)
			}
		}
	}
}

func TestWireOpJSONRoundTrip(t *testing.T) {
	ops := []WireOp{
		{Op: WireRange, Rect: &geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4}},
		{Op: WireKNN, Point: &geom.Point{X: 0.5, Y: 0.6}, K: 7},
		{Op: WireDelete, Point: &geom.Point{X: 0.9, Y: 0.1}},
	}
	data, err := json.Marshal(ops)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []WireOp
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip changed length: %d vs %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i].Op != ops[i].Op || back[i].K != ops[i].K {
			t.Fatalf("op %d changed: %+v vs %+v", i, back[i], ops[i])
		}
		if (ops[i].Rect == nil) != (back[i].Rect == nil) || (ops[i].Rect != nil && *back[i].Rect != *ops[i].Rect) {
			t.Fatalf("op %d rect changed", i)
		}
		if (ops[i].Point == nil) != (back[i].Point == nil) || (ops[i].Point != nil && *back[i].Point != *ops[i].Point) {
			t.Fatalf("op %d point changed", i)
		}
	}
}

func TestWireOpValidate(t *testing.T) {
	pt := &geom.Point{X: 0.5, Y: 0.5}
	rect := &geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	bad := []WireOp{
		{},                       // missing kind
		{Op: "scan", Rect: rect}, // unknown kind
		{Op: WireRange},          // missing rect
		{Op: WireCount, Rect: &geom.Rect{MinX: 1, MinY: 0, MaxX: 0, MaxY: 1}}, // min > max
		{Op: WireRange, Rect: &geom.Rect{MinX: math.NaN(), MaxX: 1, MaxY: 1}}, // NaN
		{Op: WirePoint}, // missing point
		{Op: WireInsert, Point: &geom.Point{X: math.Inf(1), Y: 0}}, // Inf
		{Op: WireKNN, Point: pt},                                   // k missing
		{Op: WireKNN, Point: pt, K: -3},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad op %d (%+v) validated", i, w)
		}
	}
	good := []WireOp{
		{Op: WireRange, Rect: rect},
		{Op: WireCount, Rect: rect},
		{Op: WirePoint, Point: pt},
		{Op: WireKNN, Point: pt, K: 1},
		{Op: WireInsert, Point: pt},
		{Op: WireDelete, Point: pt},
	}
	for i, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("good op %d (%+v) rejected: %v", i, w, err)
		}
	}
}
