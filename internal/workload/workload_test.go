package workload

import (
	"math"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

func TestFromCentersSelectivity(t *testing.T) {
	centers := []geom.Point{{X: 0.5, Y: 0.5}, {X: 0.1, Y: 0.9}, {X: 0.99, Y: 0.01}}
	for _, sel := range Selectivities {
		qs := FromCenters(centers, sel, UnitSquare)
		for i, q := range qs {
			if !q.Valid() {
				t.Fatalf("sel %v: invalid query %v", sel, q)
			}
			if !UnitSquare.ContainsRect(q) {
				t.Fatalf("sel %v: query %v escapes the domain", sel, q)
			}
			// Boundary-centered queries are shifted inward, not shrunk:
			// every query keeps the target area.
			if rel := math.Abs(q.Area()-sel) / sel; rel > 1e-9 {
				t.Fatalf("sel %v: query %d area %v (rel err %v)", sel, i, q.Area(), rel)
			}
		}
	}
}

func TestSkewedWorkloadProperties(t *testing.T) {
	qs := Skewed(dataset.NewYork, 2000, 0.0256e-2, 1)
	if len(qs) != 2000 {
		t.Fatalf("generated %d queries", len(qs))
	}
	// Centers must concentrate near the region's hotspots: median distance
	// to the nearest hotspot should be well under the uniform expectation.
	hs := dataset.Hotspots(dataset.NewYork)
	var near int
	for _, q := range qs {
		c := q.Center()
		for _, h := range hs {
			dx, dy := c.X-h.X, c.Y-h.Y
			if math.Sqrt(dx*dx+dy*dy) < 0.15 {
				near++
				break
			}
		}
	}
	if float64(near)/float64(len(qs)) < 0.8 {
		t.Errorf("only %d/%d skewed queries near hotspots", near, len(qs))
	}
}

func TestSkewedDeterministic(t *testing.T) {
	a := Skewed(dataset.Japan, 100, 0.0064e-2, 42)
	b := Skewed(dataset.Japan, 100, 0.0064e-2, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestUniformWorkloadSpread(t *testing.T) {
	qs := Uniform(4000, 0.0064e-2, 2)
	var g [16]int
	for _, q := range qs {
		c := q.Center()
		i := int(c.X*4) + 4*int(c.Y*4)
		if i > 15 {
			i = 15
		}
		g[i]++
	}
	for i, c := range g {
		if c < 4000/16/2 || c > 4000/16*2 {
			t.Errorf("uniform workload cell %d has %d queries", i, c)
		}
	}
}

func TestMix(t *testing.T) {
	a := Uniform(1000, 0.0064e-2, 3)
	b := Skewed(dataset.Iberia, 1000, 0.0064e-2, 4)
	bset := map[geom.Rect]bool{}
	for _, q := range b {
		bset[q] = true
	}
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		m := Mix(a, b, frac, 5)
		if len(m) != len(a) {
			t.Fatalf("Mix changed workload size: %d", len(m))
		}
		fromB := 0
		for _, q := range m {
			if bset[q] {
				fromB++
			}
		}
		want := int(frac * float64(len(a)))
		if abs(fromB-want) > 20 { // collisions between a and b are possible but rare
			t.Errorf("frac %v: %d queries from b, want about %d", frac, fromB, want)
		}
	}
	// Clamping and empty-b robustness.
	if got := Mix(a, nil, 0.5, 6); len(got) != len(a) {
		t.Error("Mix with empty b should copy a")
	}
	if got := Mix(a, b, 2.0, 7); len(got) != len(a) {
		t.Error("Mix must clamp fracB")
	}
}

func TestMixDoesNotMutateInput(t *testing.T) {
	a := Uniform(100, 0.0064e-2, 8)
	orig := append([]geom.Rect(nil), a...)
	Mix(a, Uniform(100, 0.0064e-2, 9), 1, 10)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("Mix mutated its input")
		}
	}
}

func TestPointQueries(t *testing.T) {
	data := dataset.Generate(dataset.CaliNev, 1000, 11)
	pq := PointQueries(data, 500, 12)
	if len(pq) != 500 {
		t.Fatalf("got %d point queries", len(pq))
	}
	inData := map[geom.Point]bool{}
	for _, p := range data {
		inData[p] = true
	}
	for _, p := range pq {
		if !inData[p] {
			t.Fatalf("point query %v not drawn from the data", p)
		}
	}
}

func TestInsertBatch(t *testing.T) {
	pts := InsertBatch(1000, 13)
	if len(pts) != 1000 {
		t.Fatalf("got %d inserts", len(pts))
	}
	for _, p := range pts {
		if !UnitSquare.Contains(p) {
			t.Fatalf("insert %v outside domain", p)
		}
	}
}

func TestSelectivityListsMatchPaper(t *testing.T) {
	want := []float64{0.000016, 0.000064, 0.000256, 0.001024}
	for i, s := range Selectivities {
		if math.Abs(s-want[i]) > 1e-12 {
			t.Errorf("Selectivities[%d] = %v, want %v", i, s, want[i])
		}
	}
	if len(AblationSelectivities) != 3 {
		t.Error("Figure 13 uses three selectivities")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
