package workload

import (
	"encoding/json"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// FuzzWireDecode fuzzes the wire-op decode+validate path the serving layer
// runs on every request body: arbitrary JSON must yield a clean error or a
// validated op, never a panic, and validation must never accept an op
// without its operands.
func FuzzWireDecode(f *testing.F) {
	seed := func(op WireOp) {
		b, err := json.Marshal(op)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(WireOp{Op: WireRange, Rect: &geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.4, MaxY: 0.3}})
	seed(WireOp{Op: WireCount, Rect: &geom.Rect{MaxX: 1, MaxY: 1}})
	seed(WireOp{Op: WirePoint, Point: &geom.Point{X: 0.5, Y: 0.5}})
	seed(WireOp{Op: WireKNN, Point: &geom.Point{X: 0.5, Y: 0.5}, K: 8})
	seed(WireOp{Op: WireInsert, Point: &geom.Point{X: 0.2, Y: 0.9}})
	seed(WireOp{Op: WireDelete, Point: &geom.Point{X: 0.2, Y: 0.9}})
	f.Add([]byte(`{"op":"range"}`))
	f.Add([]byte(`{"op":"knn","point":{"x":0,"y":0},"k":-1}`))
	f.Add([]byte(`{"op":"range","rect":{"min_x":1e999}}`))
	f.Add([]byte(`[{"op":"insert","point":{"x":1,"y":2}}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var op WireOp
		if err := json.Unmarshal(data, &op); err == nil {
			if op.Validate() == nil {
				// A validated op carries exactly the operands its kind
				// needs; the server dereferences them without checks.
				switch op.Op {
				case WireRange, WireCount:
					if op.Rect == nil {
						t.Fatalf("validated %q without a rect", op.Op)
					}
				case WirePoint, WireInsert, WireDelete, WireKNN:
					if op.Point == nil {
						t.Fatalf("validated %q without a point", op.Op)
					}
				}
			}
		}
		var batch []WireOp
		if err := json.Unmarshal(data, &batch); err == nil {
			for _, op := range batch {
				op.Validate()
			}
		}
	})
}
