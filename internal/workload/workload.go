// Package workload generates the semi-synthetic range-query workloads of
// §6.2: query centers are drawn from a skewed "check-in" distribution
// (modelled after the paper's Gowalla extracts, which concentrate on popular
// locations rather than following the POI density), and each query rectangle
// grows around its center until it covers a target fraction of the data
// space — the paper's definition of selectivity ("we represent selectivity
// as a percentage of data space").
//
// It also provides the workload transformations used in the drift
// experiment (Figure 12): uniform replacement and replacement by another
// region's skewed workload.
package workload

import (
	"math"
	"math/rand"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

// UnitSquare is the data domain shared by all generated datasets.
var UnitSquare = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

// Selectivities lists the paper's query selectivities (Table 2) as
// fractions of the data-space area: 0.0016%, 0.0064%, 0.0256%, 0.1024%.
var Selectivities = []float64{0.0016e-2, 0.0064e-2, 0.0256e-2, 0.1024e-2}

// AblationSelectivities are the Figure 13 selectivities: 0.0004%, 0.0064%,
// 0.1024%.
var AblationSelectivities = []float64{0.0004e-2, 0.0064e-2, 0.1024e-2}

// Checkins draws n check-in locations for a region: a mixture over the
// region's hotspots with tight spread, so the query distribution is skewed
// differently from the data distribution. Deterministic in seed.
func Checkins(r dataset.Region, n int, seed int64) []geom.Point {
	hotspots := dataset.Hotspots(r)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	// Zipf-ish weights: first hotspot dominates, mimicking check-in
	// concentration on a few popular venues.
	weights := make([]float64, len(hotspots))
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		t := rng.Float64() * total
		h := hotspots[len(hotspots)-1]
		for i, w := range weights {
			t -= w
			if t <= 0 {
				h = hotspots[i]
				break
			}
		}
		p := geom.Point{
			X: h.X + rng.NormFloat64()*0.04,
			Y: h.Y + rng.NormFloat64()*0.04,
		}
		if UnitSquare.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// FromCenters builds one square range query of the given selectivity
// (fraction of the domain area) around each center, clipped to the domain.
// Queries whose centers fall near the boundary keep their full area by
// shifting inward before clipping, matching the paper's "grow along the
// four directions" construction.
func FromCenters(centers []geom.Point, selectivity float64, domain geom.Rect) []geom.Rect {
	if selectivity <= 0 {
		selectivity = 1e-6
	}
	side := math.Sqrt(selectivity * domain.Area())
	half := side / 2
	qs := make([]geom.Rect, len(centers))
	for i, c := range centers {
		cx := clampTo(c.X, domain.MinX+half, domain.MaxX-half)
		cy := clampTo(c.Y, domain.MinY+half, domain.MaxY-half)
		qs[i] = geom.Rect{MinX: cx - half, MinY: cy - half, MaxX: cx + half, MaxY: cy + half}.Intersect(domain)
	}
	return qs
}

// Skewed generates a full region workload: n range queries of the given
// selectivity with check-in-distributed centers.
func Skewed(r dataset.Region, n int, selectivity float64, seed int64) []geom.Rect {
	return FromCenters(Checkins(r, n, seed), selectivity, UnitSquare)
}

// Uniform generates n range queries of the given selectivity with centers
// drawn uniformly from the domain — the uniform drift target of Figure 12.
func Uniform(n int, selectivity float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, n)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return FromCenters(centers, selectivity, UnitSquare)
}

// Mix replaces a fraction of workload a by queries from workload b,
// deterministically in seed: the drift mechanism of §6.8 ("we replace the
// dataset's original workload with ..."). fracB is clamped to [0, 1]. The
// result has the length of a.
func Mix(a, b []geom.Rect, fracB float64, seed int64) []geom.Rect {
	fracB = math.Max(0, math.Min(1, fracB))
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, len(a))
	copy(out, a)
	if len(b) == 0 {
		return out
	}
	replaced := int(fracB * float64(len(a)))
	for _, i := range rng.Perm(len(a))[:replaced] {
		out[i] = b[rng.Intn(len(b))]
	}
	return out
}

// PointQueries samples n point queries from the data distribution D, as the
// paper does for its point-query evaluation (§6.4). Sampling is with
// replacement, deterministic in seed.
func PointQueries(data []geom.Point, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = data[rng.Intn(len(data))]
	}
	return out
}

// InsertBatch draws n insert points uniformly from the data space, as in
// the Figure 11 insert experiment.
func InsertBatch(n int, seed int64) []geom.Point {
	return dataset.Uniform(n, seed^0x1a5e47)
}

func clampTo(v, lo, hi float64) float64 {
	if lo > hi { // domain narrower than the query: collapse to center
		return (lo + hi) / 2
	}
	return math.Max(lo, math.Min(hi, v))
}
