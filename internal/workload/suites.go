package workload

import (
	"math"
	"math/rand"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

// Suite is a named, reproducible workload scenario: a deterministic query
// generator plus the fraction of operations that are writes. Suites give
// the serving-layer experiments scenario diversity beyond the paper's
// skewed check-in workload — a uniform baseline, a tighter Gaussian skew,
// drift mid-stream, mixed read/write traffic, and an adversarial shape
// that fights the Z-order curve.
type Suite struct {
	// Name identifies the suite in experiment tables, metric names, and
	// the waziexp command line.
	Name string
	// Description is a one-line human explanation.
	Description string
	// WriteRatio is the fraction of operations that are inserts when the
	// suite is run as an operation mix (0 = read-only).
	WriteRatio float64
	// Queries generates n range queries of the given selectivity for
	// region r, deterministically in seed.
	Queries func(r dataset.Region, n int, sel float64, seed int64) []geom.Rect
}

// Suites returns the named workload scenarios in presentation order.
func Suites() []Suite {
	return []Suite{
		{
			Name:        "uniform",
			Description: "query centers uniform over the domain (no skew)",
			Queries: func(r dataset.Region, n int, sel float64, seed int64) []geom.Rect {
				return Uniform(n, sel, seed)
			},
		},
		{
			Name:        "gaussian-skew",
			Description: "one Gaussian hotspot: all query centers cluster around the region's busiest venue",
			Queries:     Gaussian,
		},
		{
			Name:        "hotspot-shift",
			Description: "drift mid-stream: hotspot popularity reverses halfway through the query sequence",
			Queries:     HotspotShift,
		},
		{
			Name:        "mixed-rw10",
			Description: "paper's skewed check-in reads with 10% uniform inserts",
			WriteRatio:  0.10,
			Queries:     Skewed,
		},
		{
			Name:        "mixed-rw30",
			Description: "paper's skewed check-in reads with 30% uniform inserts",
			WriteRatio:  0.30,
			Queries:     Skewed,
		},
		{
			Name:        "mixed-rw50",
			Description: "paper's skewed check-in reads with 50% uniform inserts (write-heavy durability mix)",
			WriteRatio:  0.50,
			Queries:     Skewed,
		},
		{
			Name:        "mixed-rw70",
			Description: "paper's skewed check-in reads with 70% uniform inserts (ingest-dominated durability mix)",
			WriteRatio:  0.70,
			Queries:     Skewed,
		},
		{
			Name:        "zipfian",
			Description: "Zipf-popular venues: query centers follow a Zipf(1.1) rank distribution over many venues, the canonical web-serving skew",
			Queries:     Zipfian,
		},
		{
			Name:        "adversarial-anticorrelated",
			Description: "thin anti-correlated rectangles along the anti-diagonal, hostile to Z-order locality",
			Queries: func(r dataset.Region, n int, sel float64, seed int64) []geom.Rect {
				return AntiCorrelated(n, sel, seed)
			},
		},
	}
}

// SuiteByName returns the named suite.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range Suites() {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// Gaussian generates n range queries whose centers form a single Gaussian
// blob (σ = 0.08) around the region's dominant hotspot — a harder skew
// than Checkins, which spreads mass over every hotspot. Deterministic in
// seed.
func Gaussian(r dataset.Region, n int, sel float64, seed int64) []geom.Rect {
	center := dataset.Hotspots(r)[0]
	rng := rand.New(rand.NewSource(seed ^ 0x9a0551))
	centers := make([]geom.Point, 0, n)
	for len(centers) < n {
		p := geom.Point{
			X: center.X + rng.NormFloat64()*0.08,
			Y: center.Y + rng.NormFloat64()*0.08,
		}
		if UnitSquare.Contains(p) {
			centers = append(centers, p)
		}
	}
	return FromCenters(centers, sel, UnitSquare)
}

// HotspotShift generates a drifting workload: the first half of the
// queries follows the region's check-in skew (popularity ∝ 1/rank), the
// second half the reversed popularity order, so the busiest venue becomes
// the quietest mid-stream. An index trained on the head of this sequence
// sees genuine drift in its tail; the sequence order is the signal, so
// callers must not shuffle it. Deterministic in seed.
func HotspotShift(r dataset.Region, n int, sel float64, seed int64) []geom.Rect {
	hotspots := dataset.Hotspots(r)
	reversed := make([]geom.Point, len(hotspots))
	for i, h := range hotspots {
		reversed[len(hotspots)-1-i] = h
	}
	half := n / 2
	head := fromHotspots(hotspots, half, seed^0x517f7)
	tail := fromHotspots(reversed, n-half, seed^0x7f715)
	return append(FromCenters(head, sel, UnitSquare), FromCenters(tail, sel, UnitSquare)...)
}

// fromHotspots draws n centers from a hotspot list with 1/rank weights —
// the Checkins mixture, but over an arbitrary hotspot ordering.
func fromHotspots(hotspots []geom.Point, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, len(hotspots))
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		t := rng.Float64() * total
		h := hotspots[len(hotspots)-1]
		for i, w := range weights {
			t -= w
			if t <= 0 {
				h = hotspots[i]
				break
			}
		}
		p := geom.Point{
			X: h.X + rng.NormFloat64()*0.04,
			Y: h.Y + rng.NormFloat64()*0.04,
		}
		if UnitSquare.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// zipfVenues is the venue-universe size of the Zipfian suite: large enough
// that the popularity tail matters, small enough that the head venues absorb
// most of the traffic.
const zipfVenues = 256

// Zipfian generates n range queries whose centers cluster around venues
// whose popularity follows a Zipf distribution of exponent 1.1 over rank —
// the canonical point-popularity model of web serving traffic (a few
// entities absorb most requests, with a long tail). The venue locations are
// themselves drawn from the region's check-in distribution, so the hot
// venues sit inside the region's busy areas, and each query jitters tightly
// (σ = 0.01) around its venue. Deterministic in seed; the venue universe
// depends only on the region, so two seeds share venues but visit them in
// different orders.
func Zipfian(r dataset.Region, n int, sel float64, seed int64) []geom.Rect {
	// Venues are seeded by the region alone: the serving fleet and the load
	// generator must agree on where the hot venues are regardless of which
	// replay seed either uses.
	venues := Checkins(r, zipfVenues, 0x21bf1a^int64(r))
	rng := rand.New(rand.NewSource(seed ^ 0x21bf9))
	zipf := rand.NewZipf(rng, 1.1, 1, zipfVenues-1)
	centers := make([]geom.Point, 0, n)
	for len(centers) < n {
		v := venues[zipf.Uint64()]
		p := geom.Point{
			X: v.X + rng.NormFloat64()*0.01,
			Y: v.Y + rng.NormFloat64()*0.01,
		}
		if UnitSquare.Contains(p) {
			centers = append(centers, p)
		}
	}
	return FromCenters(centers, sel, UnitSquare)
}

// AntiCorrelated generates n thin rectangles of the given selectivity
// (same area as the square queries, aspect ratio 16:1, alternating
// orientation) whose centers lie in a band around the anti-diagonal
// y = 1 - x. Long thin ranges crossing the anti-diagonal are the
// worst case for Z-order curves: they intersect many curve segments while
// covering few points per segment, maximizing projection work per result.
// Deterministic in seed.
func AntiCorrelated(n int, sel float64, seed int64) []geom.Rect {
	if sel <= 0 {
		sel = 1e-6
	}
	const aspect = 16.0
	area := sel * UnitSquare.Area()
	short := math.Sqrt(area / aspect)
	long := short * aspect
	rng := rand.New(rand.NewSource(seed ^ 0xa471c0))
	qs := make([]geom.Rect, n)
	for i := range qs {
		// A center on the anti-diagonal, jittered into a narrow band.
		x := rng.Float64()
		c := geom.Point{X: x, Y: 1 - x + (rng.Float64()-0.5)*0.1}
		halfW, halfH := long/2, short/2
		if i%2 == 1 {
			halfW, halfH = halfH, halfW
		}
		cx := clampTo(c.X, UnitSquare.MinX+halfW, UnitSquare.MaxX-halfW)
		cy := clampTo(c.Y, UnitSquare.MinY+halfH, UnitSquare.MaxY-halfH)
		qs[i] = geom.Rect{MinX: cx - halfW, MinY: cy - halfH, MaxX: cx + halfW, MaxY: cy + halfH}.
			Intersect(UnitSquare)
	}
	return qs
}

// Op is one operation of a mixed read/write stream: either a range query
// or an insert.
type Op struct {
	// IsWrite selects between the two fields below.
	IsWrite bool
	// Query is the range query to execute when IsWrite is false.
	Query geom.Rect
	// Point is the point to insert when IsWrite is true.
	Point geom.Point
}

// MixedOps interleaves queries and inserts into one operation stream with
// the given write ratio (clamped to [0, 1]), deterministically in seed.
// Queries keep their relative order (preserving any drift encoded in the
// sequence); inserts are spread uniformly through the stream, sized so
// writes make up writeRatio of the total. A ratio of 0 returns a read-only
// stream of the queries; a ratio of 1 returns a write-only stream of the
// inserts.
func MixedOps(queries []geom.Rect, inserts []geom.Point, writeRatio float64, seed int64) []Op {
	writeRatio = math.Max(0, math.Min(1, writeRatio))
	if writeRatio == 0 || len(inserts) == 0 {
		out := make([]Op, len(queries))
		for i, q := range queries {
			out[i] = Op{Query: q}
		}
		return out
	}
	if writeRatio == 1 {
		out := make([]Op, len(inserts))
		for i, p := range inserts {
			out[i] = Op{IsWrite: true, Point: p}
		}
		return out
	}
	// writes / (reads + writes) = writeRatio  =>  writes = reads·ratio/(1-ratio).
	nw := int(math.Round(float64(len(queries)) * writeRatio / (1 - writeRatio)))
	if nw < 1 {
		nw = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x3e1ced))
	out := make([]Op, 0, len(queries)+nw)
	qi, wi := 0, 0
	for qi < len(queries) || wi < nw {
		// Choose the next op kind proportionally to what remains, so the
		// mix stays close to the target ratio throughout the stream.
		remQ, remW := len(queries)-qi, nw-wi
		if remW > 0 && (remQ == 0 || rng.Float64() < float64(remW)/float64(remQ+remW)) {
			out = append(out, Op{IsWrite: true, Point: inserts[wi%len(inserts)]})
			wi++
		} else {
			out = append(out, Op{Query: queries[qi]})
			qi++
		}
	}
	return out
}
