package workload

import (
	"math"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

func TestSuitesAreNamedAndGenerate(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suites() {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("suite %+v lacks a name or description", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate suite name %q", s.Name)
		}
		seen[s.Name] = true
		if s.WriteRatio < 0 || s.WriteRatio >= 1 {
			t.Fatalf("%s: write ratio %v out of [0,1)", s.Name, s.WriteRatio)
		}
		qs := s.Queries(dataset.NewYork, 64, 0.0256e-2, 7)
		if len(qs) != 64 {
			t.Fatalf("%s: generated %d queries, want 64", s.Name, len(qs))
		}
		for i, q := range qs {
			if !q.Valid() || !UnitSquare.ContainsRect(q) {
				t.Fatalf("%s: query %d = %v outside the domain", s.Name, i, q)
			}
		}
	}
	byName, ok := SuiteByName("uniform")
	if !ok || byName.Name != "uniform" {
		t.Fatalf("SuiteByName(uniform) = %v, %v", byName, ok)
	}
	if _, ok := SuiteByName("no-such-suite"); ok {
		t.Fatal("SuiteByName accepted an unknown name")
	}
}

func TestSuitesDeterministicInSeed(t *testing.T) {
	for _, s := range Suites() {
		a := s.Queries(dataset.Japan, 32, 0.0064e-2, 11)
		b := s.Queries(dataset.Japan, 32, 0.0064e-2, 11)
		c := s.Queries(dataset.Japan, 32, 0.0064e-2, 12)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at query %d", s.Name, i)
			}
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical workloads", s.Name)
		}
	}
}

func TestSuiteQueriesKeepSelectivityArea(t *testing.T) {
	const sel = 0.1024e-2
	for _, s := range Suites() {
		qs := s.Queries(dataset.CaliNev, 100, sel, 3)
		for i, q := range qs {
			// Clipping can only shrink; interior queries must hit the
			// target area. Allow 1% tolerance for float noise.
			if q.Area() > sel*UnitSquare.Area()*1.01 {
				t.Fatalf("%s: query %d area %g exceeds selectivity %g", s.Name, i, q.Area(), sel)
			}
		}
		var mean float64
		for _, q := range qs {
			mean += q.Area()
		}
		mean /= float64(len(qs))
		if mean < sel*0.9 {
			t.Errorf("%s: mean area %g is far below the %g target", s.Name, mean, sel)
		}
	}
}

func TestHotspotShiftActuallyShifts(t *testing.T) {
	qs := HotspotShift(dataset.NewYork, 400, 0.0256e-2, 5)
	head, tail := qs[:200], qs[200:]
	centroid := func(rs []geom.Rect) geom.Point {
		var c geom.Point
		for _, r := range rs {
			p := r.Center()
			c.X += p.X
			c.Y += p.Y
		}
		c.X /= float64(len(rs))
		c.Y /= float64(len(rs))
		return c
	}
	hc, tc := centroid(head), centroid(tail)
	dist := math.Hypot(hc.X-tc.X, hc.Y-tc.Y)
	if dist < 0.02 {
		t.Fatalf("head and tail centroids nearly coincide (dist %g); no drift generated", dist)
	}
}

func TestAntiCorrelatedShape(t *testing.T) {
	const sel = 0.0256e-2
	qs := AntiCorrelated(50, sel, 9)
	sawWide, sawTall := false, false
	for i, q := range qs {
		w, h := q.Width(), q.Height()
		if w > h*4 {
			sawWide = true
		}
		if h > w*4 {
			sawTall = true
		}
		c := q.Center()
		if d := math.Abs(c.Y - (1 - c.X)); d > 0.2 {
			t.Errorf("query %d center %v is %g from the anti-diagonal", i, c, d)
		}
	}
	if !sawWide || !sawTall {
		t.Fatalf("expected both orientations of thin rectangles (wide=%v tall=%v)", sawWide, sawTall)
	}
}

func TestZipfianSkewAndDeterminism(t *testing.T) {
	const n = 2000
	qs := Zipfian(dataset.NewYork, n, 0.0256e-2, 17)
	if len(qs) != n {
		t.Fatalf("generated %d queries, want %d", len(qs), n)
	}

	// Histogram the query centers on a coarse grid: Zipf popularity must
	// concentrate a large share of traffic on the hottest cell while still
	// leaving a long tail of visited cells — both are what distinguish the
	// suite from gaussian-skew (one blob) and uniform (no head).
	const side = 32
	counts := map[int]int{}
	for _, q := range qs {
		c := q.Center()
		cx, cy := int(c.X*side), int(c.Y*side)
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		counts[cy*side+cx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if share := float64(maxCount) / n; share < 0.05 {
		t.Errorf("hottest cell holds %.1f%% of queries; expected a Zipf head (>= 5%%)", share*100)
	}
	if len(counts) < 20 {
		t.Errorf("only %d distinct cells visited; expected a popularity tail", len(counts))
	}

	// The venue universe is seeded by the region alone: different replay
	// seeds must still agree on where the hot venues are.
	other := Zipfian(dataset.NewYork, n, 0.0256e-2, 99)
	otherCounts := map[int]int{}
	for _, q := range other {
		c := q.Center()
		cx, cy := int(c.X*side), int(c.Y*side)
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		otherCounts[cy*side+cx]++
	}
	shared := 0
	for cell, c := range counts {
		if c >= n/100 && otherCounts[cell] > 0 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("hot cells of two seeds are disjoint; venue universe should be seed-independent")
	}
}

func TestMixedOps(t *testing.T) {
	qs := Uniform(700, 0.0256e-2, 1)
	ins := dataset.Uniform(500, 2)

	t.Run("read-only", func(t *testing.T) {
		ops := MixedOps(qs, ins, 0, 3)
		if len(ops) != len(qs) {
			t.Fatalf("got %d ops, want %d", len(ops), len(qs))
		}
		for i, op := range ops {
			if op.IsWrite || op.Query != qs[i] {
				t.Fatalf("op %d should be query %v, got %+v", i, qs[i], op)
			}
		}
	})

	t.Run("ratio", func(t *testing.T) {
		ops := MixedOps(qs, ins, 0.30, 3)
		writes := 0
		var gotQueries []geom.Rect
		for _, op := range ops {
			if op.IsWrite {
				writes++
			} else {
				gotQueries = append(gotQueries, op.Query)
			}
		}
		ratio := float64(writes) / float64(len(ops))
		if math.Abs(ratio-0.30) > 0.02 {
			t.Fatalf("write ratio %g, want ~0.30", ratio)
		}
		if len(gotQueries) != len(qs) {
			t.Fatalf("lost queries: %d vs %d", len(gotQueries), len(qs))
		}
		for i := range qs {
			if gotQueries[i] != qs[i] {
				t.Fatalf("query order not preserved at %d", i)
			}
		}
	})

	t.Run("write-only", func(t *testing.T) {
		for _, ratio := range []float64{1, 2.5} { // >1 clamps to 1
			ops := MixedOps(qs, ins, ratio, 3)
			if len(ops) != len(ins) {
				t.Fatalf("ratio %g: got %d ops, want %d writes", ratio, len(ops), len(ins))
			}
			for i, op := range ops {
				if !op.IsWrite || op.Point != ins[i] {
					t.Fatalf("ratio %g: op %d = %+v, want insert of %v", ratio, i, op, ins[i])
				}
			}
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		a := MixedOps(qs, ins, 0.30, 3)
		b := MixedOps(qs, ins, 0.30, 3)
		if len(a) != len(b) {
			t.Fatal("lengths differ across identical calls")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ops diverge at %d", i)
			}
		}
	})
}
