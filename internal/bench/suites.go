package bench

import "github.com/wazi-index/wazi/internal/dataset"

// Suite is a named set of experiments with suite-level scaling defaults,
// selectable as `waziexp run -suite <name>`. Defaults apply only where the
// caller left the corresponding Config field unset, so command-line flags
// always win.
type Suite struct {
	Name        string
	Description string
	// Experiments lists the experiment ids the suite runs, in order.
	Experiments []string
	// Defaults are merged into a zero-valued Config field by field.
	Defaults Config
}

// Suites returns the named experiment suites.
func Suites() []Suite {
	paper := []string{
		"tab1", "tab2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
		"tab3", "tab4", "tab5", "fig11", "fig12", "fig13",
	}
	return []Suite{
		{
			Name:        "smoke",
			Description: "fast end-to-end pass for CI: a table, a drift figure, and the scenario suite at toy scale",
			Experiments: []string{"tab2", "fig12", "scenarios"},
			Defaults: Config{
				Scale:        20_000,
				Queries:      400,
				PointQueries: 1_000,
				Regions:      []dataset.Region{dataset.NewYork},
			},
		},
		{
			Name:        "paper",
			Description: "every table and figure of the paper's evaluation (§6)",
			Experiments: paper,
		},
		{
			Name:        "serving",
			Description: "the serving-layer experiments: Concurrent vs Sharded throughput, the workload scenario suite, HTTP serving, storage backends, and online repartitioning",
			Experiments: []string{"sharded", "scenarios", "serving-http", "storage-backends", "repartition", "obs-overhead", "durability"},
		},
		{
			Name:        "full",
			Description: "everything: the paper evaluation plus the serving-layer experiments",
			Experiments: append(append([]string{}, paper...), "sharded", "scenarios", "serving-http", "storage-backends", "repartition", "obs-overhead", "durability"),
		},
	}
}

// SuiteByName returns the named suite.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range Suites() {
		if s.Name == name {
			return s, true
		}
	}
	return Suite{}, false
}

// ApplyDefaults fills cfg's zero-valued fields from the suite's defaults;
// anything still unset afterwards falls back to the package defaults at
// run time.
func (s Suite) ApplyDefaults(cfg Config) Config {
	if cfg.Scale <= 0 {
		cfg.Scale = s.Defaults.Scale
	}
	if cfg.Queries <= 0 {
		cfg.Queries = s.Defaults.Queries
	}
	if cfg.PointQueries <= 0 {
		cfg.PointQueries = s.Defaults.PointQueries
	}
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = s.Defaults.LeafSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.Defaults.Seed
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = append([]dataset.Region{}, s.Defaults.Regions...)
	}
	return cfg
}
