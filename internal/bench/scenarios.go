package bench

import (
	"fmt"
	"runtime"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// serving abstracts the two serving layers over the operations a scenario
// stream issues.
type serving interface {
	RangeQuery(r wazi.Rect) []wazi.Point
	Insert(p wazi.Point)
}

// ScenarioSuite benchmarks the serving layers under every named workload
// suite (internal/workload.Suites): uniform, Gaussian skew, mid-stream
// hotspot drift, mixed read/write at 10% and 30% writes, and the
// adversarial anti-correlated ranges. Both layers are built fresh per
// scenario on the paper's skewed check-in workload — the suites then probe
// how that training generalizes. The table reports multi-goroutine
// throughput of Concurrent and Sharded plus Sharded's single-client
// per-operation latency percentiles.
func ScenarioSuite(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+21)
	clients := runtime.GOMAXPROCS(0)

	t := Table{
		ID: "scenarios",
		Title: fmt.Sprintf("Serving layers under the named workload suites (%s, %d points, %d client goroutines)",
			r, cfg.Scale, clients),
		Header: []string{"Scenario", "Writes", "Concurrent (ops/s)", "Sharded (ops/s)", "Speedup", "p50 (ns)", "p95 (ns)", "p99 (ns)"},
		Notes: []string{
			"both layers trained on the skewed check-in workload; suites probe generalization",
			"percentiles are Sharded single-client per-op latency; expected shape: Sharded ahead everywhere, widest on read-heavy suites",
		},
	}
	for _, s := range workload.Suites() {
		qs := s.Queries(r, cfg.Queries, MidSelectivity, cfg.Seed+31)
		ins := workload.InsertBatch(cfg.Queries, cfg.Seed+41)
		ops := workload.MixedOps(qs, ins, s.WriteRatio, cfg.Seed+51)

		single, err := wazi.NewWorkloadAware(data, train, wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed))
		if err != nil {
			panic(err)
		}
		conc := wazi.NewConcurrent(single)
		sharded, err := wazi.NewSharded(data, train,
			wazi.WithShards(max(8, clients)),
			wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
			wazi.WithoutAutoRebuild())
		if err != nil {
			panic(err)
		}

		// Throughput first, from identical fresh states, so the Speedup
		// column is apples to apples; the latency pass then runs on a
		// Sharded that has absorbed one throughput window of operations,
		// i.e. an index serving under sustained writes.
		cops := measureLoopThroughput(len(ops), clients, func(i int) { execOp(conc, ops[i]) })
		sops := measureLoopThroughput(len(ops), clients, func(i int) { execOp(sharded, ops[i]) })
		lat := measureOpLatencies(sharded, ops)
		sharded.Close()

		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.0f%%", s.WriteRatio*100),
			fmt.Sprintf("%.0f", cops),
			fmt.Sprintf("%.0f", sops),
			fmt.Sprintf("%.2fx", sops/cops),
			fmt.Sprintf("%.0f", lat.P50),
			fmt.Sprintf("%.0f", lat.P95),
			fmt.Sprintf("%.0f", lat.P99),
		})
	}
	return []Table{t}
}

// measureOpLatencies executes the operation stream once on a single
// goroutine, timing each operation, and summarizes the per-op latencies in
// nanoseconds.
func measureOpLatencies(layer serving, ops []workload.Op) harness.Summary {
	samples := make([]float64, 0, len(ops))
	for _, op := range ops {
		start := time.Now()
		execOp(layer, op)
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
	}
	return harness.Summarize(samples)
}

func execOp(layer serving, op workload.Op) {
	if op.IsWrite {
		layer.Insert(op.Point)
	} else {
		_ = layer.RangeQuery(op.Query)
	}
}
