package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
	"github.com/wazi-index/wazi/internal/workload"
)

// StorageBackends compares the page-store backends on identical WaZI trees:
// in-memory slices, disk-resident with a cold block cache, and disk-resident
// after the cache warmed — across every named workload suite. It reports
// per-query p50/p95 range latency plus the disk cache's hit rate, and a
// summary of the disk-warm/in-memory p95 ratio (the deployability question
// "Updatable Learned Indexes Meet Disk-Resident DBMS" poses: a learned
// index is only disk-ready if the cached path stays near RAM speed).
func StorageBackends(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries/2, MidSelectivity, cfg.Seed+3)

	memIdx, err := core.BuildWaZI(data, train, core.Options{LeafSize: cfg.LeafSize, Seed: cfg.Seed})
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "wazi-bench-storage")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// Two disk twins: one whose cache fits every page (the cold/warm
	// comparison — how close the cached path gets to RAM), and one whose
	// cache holds a quarter of the pages (steady-state behavior of the
	// workload-aware eviction policy under memory pressure).
	cacheFull := memIdx.Leaves() + 8
	cacheTight := memIdx.Leaves()/4 + 1
	diskIdx, err := core.BuildWaZI(data, train, core.Options{
		LeafSize: cfg.LeafSize, Seed: cfg.Seed,
		StoragePath: filepath.Join(dir, "full.pages"), StorageCachePages: cacheFull,
	})
	if err != nil {
		panic(err)
	}
	defer diskIdx.Close()
	ds := diskIdx.Store().(*storage.DiskStore)
	tightIdx, err := core.BuildWaZI(data, train, core.Options{
		LeafSize: cfg.LeafSize, Seed: cfg.Seed,
		StoragePath: filepath.Join(dir, "tight.pages"), StorageCachePages: cacheTight,
	})
	if err != nil {
		panic(err)
	}
	defer tightIdx.Close()
	ts := tightIdx.Store().(*storage.DiskStore)

	lat := Table{
		ID:     "storage-backends",
		Title:  "Range latency by storage backend across workload suites",
		Header: []string{"Suite", "Backend", "p50 (ns)", "p95 (ns)", "cache hit %", "evictions"},
		Notes: []string{
			fmt.Sprintf("WaZI, %d points, L=%d, %d leaves; disk cache %d pages, disk-tight cache %d pages",
				len(data), cfg.LeafSize, memIdx.Leaves(), cacheFull, cacheTight),
			"disk-cold: caches dropped before the pass; disk-warm: immediately repeated pass;",
			"disk-tight: quarter-size cache in steady state (workload-aware eviction under pressure)",
		},
	}
	ratio := Table{
		ID:     "storage-backends",
		Title:  "Disk-warm p95 as a multiple of in-memory p95 (target < 2x)",
		Header: []string{"Suite", "mem p95 (ns)", "warm p95 (ns)", "ratio"},
	}
	for _, suite := range workload.Suites() {
		qs := suite.Queries(r, cfg.Queries, MidSelectivity, cfg.Seed+11)
		memP50, memP95 := rangeLatencyPercentiles(memIdx, qs)
		ds.DropCaches()
		csBefore := ds.CacheStats()
		coldP50, coldP95 := rangeLatencyPercentiles(diskIdx, qs)
		csCold := ds.CacheStats()
		warmP50, warmP95 := rangeLatencyPercentiles(diskIdx, qs)
		csWarm := ds.CacheStats()
		// Steady state for the constrained cache: one untimed pass primes
		// it, the timed pass measures it.
		rangeLatencyPercentiles(tightIdx, qs)
		csPrimed := ts.CacheStats()
		tightP50, tightP95 := rangeLatencyPercentiles(tightIdx, qs)
		csTight := ts.CacheStats()

		// Row labels are suite/backend so the harness's metric keys (keyed
		// by row label) stay distinct per backend and `waziexp compare`
		// tracks each backend's trend separately.
		lat.Rows = append(lat.Rows,
			[]string{suite.Name + "/in-memory", "in-memory", ns(memP50), ns(memP95), "-", "-"},
			[]string{suite.Name + "/disk-cold", "disk-cold", ns(coldP50), ns(coldP95),
				hitRate(csCold, csBefore), fmt.Sprintf("%d", csCold.Evictions-csBefore.Evictions)},
			[]string{suite.Name + "/disk-warm", "disk-warm", ns(warmP50), ns(warmP95),
				hitRate(csWarm, csCold), fmt.Sprintf("%d", csWarm.Evictions-csCold.Evictions)},
			[]string{suite.Name + "/disk-tight", "disk-tight", ns(tightP50), ns(tightP95),
				hitRate(csTight, csPrimed), fmt.Sprintf("%d", csTight.Evictions-csPrimed.Evictions)},
		)
		ratio.Rows = append(ratio.Rows, []string{
			suite.Name, ns(memP95), ns(warmP95),
			fmt.Sprintf("%.2fx", float64(warmP95)/float64(max(memP95, 1))),
		})
	}
	ratio.Notes = []string{"expected shape: warm within 2x of in-memory everywhere; cold pays the fault cost once"}
	return []Table{lat, ratio}
}

// rangeLatencyPercentiles measures each query individually and returns the
// p50 and p95 per-query latency.
func rangeLatencyPercentiles(idx interface {
	RangeQueryAppend([]geom.Point, geom.Rect) []geom.Point
}, qs []geom.Rect) (p50, p95 time.Duration) {
	durs := make([]time.Duration, len(qs))
	var buf []geom.Point
	for i, q := range qs {
		start := time.Now()
		buf = idx.RangeQueryAppend(buf[:0], q)
		durs[i] = time.Since(start)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], durs[len(durs)*95/100]
}

func hitRate(now, before storage.CacheStats) string {
	hits := now.Hits - before.Hits
	total := hits + now.Misses - before.Misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}
