package bench

import (
	"fmt"
	"net/http/httptest"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/server"
	"github.com/wazi-index/wazi/internal/workload"
)

// servingHTTPDuration is the wall budget of each load pass. Short on
// purpose: the experiment measures the per-request vs batch shape, which
// stabilizes within a few hundred milliseconds, and every experiment must
// stay runnable in the CI smoke matrix.
const servingHTTPDuration = 400 * time.Millisecond

// servingHTTPClients matches the acceptance shape of the serving subsystem:
// batch replay must beat per-request replay at high client concurrency.
const servingHTTPClients = 64

// ServingHTTP measures the full network serving path end to end: a Sharded
// index behind internal/server on a real TCP listener, driven by the shared
// load generator with a zipfian read-mostly stream, once op-per-request and
// once folded into /v1/batch requests. This is the in-process twin of the
// cmd/waziserve + cmd/waziload pairing — same endpoints, same wire ops,
// same table shape — so over-the-wire serving latency lands in the same
// BENCH_*.json trajectory as every in-process number.
func ServingHTTP(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+61)
	idx, err := wazi.NewSharded(data, train,
		wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
		wazi.WithoutAutoRebuild())
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	srv := server.New(server.Sharded(idx), server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qs := workload.Zipfian(r, cfg.Queries, MidSelectivity, cfg.Seed+62)
	ins := workload.InsertBatch(cfg.Queries/4+1, cfg.Seed+63)
	ops := workload.ToWire(workload.MixedOps(qs, ins, 0.1, cfg.Seed+64))

	var results []server.LoadResult
	for _, batch := range []int{1, 32} {
		res, err := server.RunLoad(ts.URL, ops, server.LoadOptions{
			Clients:  servingHTTPClients,
			Duration: servingHTTPDuration,
			Batch:    batch,
		})
		if err != nil {
			panic(fmt.Sprintf("serving-http load failed: %v", err))
		}
		results = append(results, res)
	}
	return []Table{server.LoadTable("serving-http", "zipfian+10%w", servingHTTPClients, results)}
}
