package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/shard"
	"github.com/wazi-index/wazi/internal/workload"
)

// Experiment constants, pinned (rather than inherited from Config) so the
// test-enforced ratios measure one reproducible deployment shape:
//
//   - repartShards: enough shards that the head-trained plan packs the
//     post-shift hotspot into a couple of big shards and the re-learned
//     plan can split it several ways;
//   - repartLeafSize: small pages make per-shard page-granularity effects
//     visible at smoke scale (the paper's L=256 at 4M–64M points gives
//     thousands of pages per shard; 20k points at L=64 keeps the same
//     pages-per-shard order of magnitude);
//   - repartCachePages: a deliberately tight per-shard block cache — the
//     memory-constrained serving shape where plan/working-set alignment
//     matters most.
const (
	repartShards     = 16
	repartLeafSize   = 64
	repartCachePages = 8
)

// RepartitionExperiment quantifies the online repartitioner under the
// hotspot-shift suite on the disk backend: two identical Sharded instances
// are trained on the first (pre-shift) half of the drifting query stream,
// then both serve the shifted second half; both run their per-shard drift
// rebuilds, but only one may re-learn the partition plan and migrate live
// (gated by its own advisor, exercising the closed loop end to end).
//
// The headline, test-enforced metric is the cross-shard PAGE-WORK
// IMBALANCE over the post-shift tail (max/mean pages scanned per populated
// shard, see shard.Imbalance): the static plan funnels the shifted hotspot
// into one or two big shards while their neighbors idle — the failure mode
// online repartitioning exists to fix — and the migrated plan must cut
// that imbalance by >= 1.3x. Page-work imbalance is deterministic (pure
// counter arithmetic, no clocks) and is the tail-latency driver of the
// parallel fan-out deployment this repository targets: with workers on
// real cores, p95 follows the busiest shard. Wall-clock per-query
// latencies are reported alongside (median-of-reps per query, then
// percentiles across queries); on a multi-core host the imbalance gap
// compounds with fan-out parallelism, on a single-core CI container it
// still shows as a consistent (if smaller) win via cache residency.
func RepartitionExperiment(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	qs := workload.HotspotShift(r, cfg.Queries*2, MidSelectivity, cfg.Seed+71)
	head, tail := qs[:len(qs)/2], qs[len(qs)/2:]

	build := func() (*wazi.Sharded, string) {
		dir, err := os.MkdirTemp("", "wazi-bench-repart")
		if err != nil {
			panic(err)
		}
		s, err := wazi.NewSharded(data, head,
			wazi.WithShards(repartShards),
			wazi.WithIndexOptions(wazi.WithLeafSize(repartLeafSize), wazi.WithSeed(cfg.Seed)),
			wazi.WithoutAutoRebuild(), // adaptation is driven explicitly below, for determinism
			wazi.WithShardedStorage(dir, repartCachePages),
			// Scale the advisor's sample floor to the stream so smoke-sized
			// runs still reach a judgment.
			wazi.WithRepartitionMinLoad(len(tail)/2))
		if err != nil {
			panic(err)
		}
		return s, dir
	}
	static, sdir := build()
	defer os.RemoveAll(sdir)
	defer static.Close()
	adaptive, adir := build()
	defer os.RemoveAll(adir)
	defer adaptive.Close()

	// Serve the drifted tail — three replays, modelling a SUSTAINED shift
	// rather than a transient: the sampled recent-query rings and drift
	// windows fill, and the cross-shard load counters accumulate,
	// identically on both instances.
	for pass := 0; pass < 3; pass++ {
		for _, q := range tail {
			static.RangeQuery(q)
			adaptive.RangeQuery(q)
		}
	}
	// Both contenders adapt their shard INTERNALS (drift rebuilds where the
	// per-shard advisors recommend); only adaptive may re-learn the global
	// plan — and only if ITS advisor (load imbalance or plan drift) says so.
	staticRebuilds := static.CheckRebuilds()
	adaptiveRebuilds := adaptive.CheckRebuilds()
	migrated := adaptive.CheckRepartition()

	// Deterministic work pass: per-shard pages scanned over one tail replay.
	sWork, sPages := tailPageWork(static, tail)
	aWork, aPages := tailPageWork(adaptive, tail)
	sImb := shard.Imbalance(sWork)
	aImb := shard.Imbalance(aWork)

	// Wall-clock pass: median of repartLatencyReps samples per query kills
	// scheduler spikes while keeping recurring page-fault costs.
	sp50, sp95 := tailLatency(static, tail)
	ap50, ap95 := tailLatency(adaptive, tail)

	hot := hotRegion(r)
	lat := Table{
		ID: "repartition",
		Title: fmt.Sprintf("Post-shift tail: static plan vs online repartitioning (%s, %d points, %d shards, L=%d, cache %d pages/shard, GOMAXPROCS=%d)",
			r, cfg.Scale, repartShards, repartLeafSize, repartCachePages, runtime.GOMAXPROCS(0)),
		Header: []string{"Plan", "p50 (ns)", "p95 (ns)", "pages/query", "page-work imbalance", "drift rebuilds", "migrations", "hot shards"},
		Notes: []string{
			"hotspot-shift tail at the paper's mid selectivity; both plans trained on the pre-shift head, disk-backed",
			"page-work imbalance: max/mean pages scanned per populated shard over the tail (1 = balanced)",
			"hot shards: shards dedicated to (bounds inside) the post-shift hotspot region",
			"expected shape: the static plan burns most pages in one or two shards; the migrated plan spreads them",
		},
		Rows: [][]string{
			{"static", ns(sp50), ns(sp95), fmt.Sprintf("%.1f", float64(sPages)/float64(len(tail))),
				fmt.Sprintf("%.2f", sImb), fmt.Sprintf("%d", staticRebuilds), "0",
				fmt.Sprintf("%d", containedShards(static, hot))},
			{"adaptive", ns(ap50), ns(ap95), fmt.Sprintf("%.1f", float64(aPages)/float64(len(tail))),
				fmt.Sprintf("%.2f", aImb), fmt.Sprintf("%d", adaptiveRebuilds),
				fmt.Sprintf("%d", adaptive.Repartitions()),
				fmt.Sprintf("%d", containedShards(adaptive, hot))},
		},
	}
	ratio := Table{
		ID:     "repartition",
		Title:  "Repartitioning gain under hotspot-shift (imbalance target >= 1.3x, test-enforced)",
		Header: []string{"Suite", "static imbalance", "adaptive imbalance", "imbalance ratio", "p95 ratio", "migrated"},
		Rows: [][]string{{
			"hotspot-shift",
			fmt.Sprintf("%.2f", sImb),
			fmt.Sprintf("%.2f", aImb),
			fmt.Sprintf("%.2fx", sImb/aImb),
			fmt.Sprintf("%.2fx", float64(sp95)/float64(max(ap95, 1))),
			fmt.Sprintf("%v", migrated),
		}},
		Notes: []string{
			"imbalance ratio is deterministic (counter arithmetic) and is what parallel fan-out p95 follows on real cores",
			"expected shape: imbalance ratio >= 1.3x with migrated=true; p95 ratio >= 1x even on one core (cache residency)",
		},
	}
	return []Table{lat, ratio}
}

// repartLatencyReps is how many timing samples each tail query gets; the
// per-query median is robust to scheduler spikes without hiding recurring
// page-fault costs (a thrashing working set faults on every rep).
const repartLatencyReps = 5

// tailPageWork replays the tail once and returns each populated shard's
// pages-scanned delta plus the total.
func tailPageWork(s *wazi.Sharded, tail []geom.Rect) ([]float64, int64) {
	before := map[int]int64{}
	for i, info := range s.Shards() {
		before[i] = info.PagesScanned
	}
	for _, q := range tail {
		s.RangeQuery(q)
	}
	var work []float64
	var total int64
	for i, info := range s.Shards() {
		d := info.PagesScanned - before[i]
		total += d
		if info.Points > 0 {
			work = append(work, float64(d))
		}
	}
	return work, total
}

// tailLatency times each tail query repartLatencyReps times and returns the
// p50/p95 of the per-query medians.
func tailLatency(s *wazi.Sharded, tail []geom.Rect) (p50, p95 time.Duration) {
	samples := make([][]time.Duration, len(tail))
	for rep := 0; rep < repartLatencyReps; rep++ {
		for i, q := range tail {
			start := time.Now()
			s.RangeQuery(q)
			samples[i] = append(samples[i], time.Since(start))
		}
	}
	meds := make([]time.Duration, len(tail))
	for i, c := range samples {
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		meds[i] = c[len(c)/2]
	}
	sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
	return meds[len(meds)/2], meds[len(meds)*95/100]
}

// hotRegion bounds the post-shift hotspot: hotspot-shift's tail reverses
// the popularity ranking, so the drifted traffic concentrates around the
// region's formerly-least-popular venue.
func hotRegion(r dataset.Region) geom.Rect {
	hs := dataset.Hotspots(r)
	c := hs[len(hs)-1]
	const rad = 0.14 // the tail's per-venue jitter (sigma 0.04) plus query extent
	return geom.Rect{MinX: c.X - rad, MinY: c.Y - rad, MaxX: c.X + rad, MaxY: c.Y + rad}
}

// containedShards counts non-empty shards whose bounds lie inside region —
// shards the plan dedicates to it.
func containedShards(s *wazi.Sharded, region geom.Rect) int {
	n := 0
	for _, info := range s.Shards() {
		b := info.Bounds
		if info.Points > 0 &&
			b.MinX >= region.MinX && b.MinY >= region.MinY &&
			b.MaxX <= region.MaxX && b.MaxY <= region.MaxY {
			n++
		}
	}
	return n
}
