package bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// Durability prices the write-ahead log's durability policies on the
// write-heavy mixed-rw50 stream: identical concurrent operation streams run
// against a WAL-less index, one under group commit (batched fsync before
// acknowledgement), and one fsyncing every write. The table reports
// write-op latency percentiles — the read path never touches the log — plus
// how many fsyncs each policy paid per logged write, which is group
// commit's whole argument. The acceptance target is group-commit write p95
// within 1.5x of WAL-off; on real media the floor is the device's fsync
// latency, so the CI gate (durability_test.go) is deliberately loose and
// the BENCH trajectory tracks the ratio.
func Durability(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+61)
	qs := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+71)
	ins := workload.InsertBatch(cfg.Queries+1, cfg.Seed+81)
	ops := workload.MixedOps(qs, ins, 0.5, cfg.Seed+91)
	// Floor at 8 clients: group commit only batches when writers overlap,
	// and fsync blocks in a syscall (not on a P), so client goroutines
	// beyond GOMAXPROCS still overlap usefully on a small machine.
	clients := max(8, runtime.GOMAXPROCS(0))

	build := func(policy string) (*wazi.Sharded, func()) {
		opts := []wazi.ShardedOption{
			wazi.WithShards(max(8, clients)),
			wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
			wazi.WithoutAutoRebuild(),
		}
		cleanup := func() {}
		if policy != "" {
			dir, err := os.MkdirTemp("", "wazi-durability-")
			if err != nil {
				panic(err)
			}
			cleanup = func() { os.RemoveAll(dir) }
			opts = append(opts, wazi.WithWAL(dir), wazi.WithWALSync(policy))
		}
		s, err := wazi.NewSharded(data, train, opts...)
		if err != nil {
			panic(err)
		}
		return s, cleanup
	}

	t := Table{
		ID: "durability",
		Title: fmt.Sprintf("Write latency under WAL durability policies (%s, %d points, %d ops, %d clients, 50%% writes)",
			r, cfg.Scale, len(ops), clients),
		Header: []string{"Variant", "write p50 (ns)", "write p95 (ns)", "write p99 (ns)", "fsyncs/write"},
		Notes: []string{
			"mixed-rw50 stream, concurrent clients; only write ops are timed (reads bypass the log)",
			"acceptance target: group-commit write p95 within 1.5x of WAL-off; real fsyncs floor it at device sync latency",
		},
	}

	variants := []struct {
		name   string
		policy string
	}{
		{"wal off", ""},
		{"wal group-commit", "group"},
		{"wal fsync-always", "always"},
	}
	p95 := map[string]float64{}
	for _, v := range variants {
		idx, cleanup := build(v.policy)
		// One untimed warm-up pass so neither variant pays first-touch
		// costs (page faults, segment creation) in the measured window.
		measureWriteLatencies(idx, ops, clients)
		lat := measureWriteLatencies(idx, ops, clients)
		fsyncsPerWrite := "-"
		if st := idx.WALStats(); st.Enabled && st.Appends > 0 {
			fsyncsPerWrite = fmt.Sprintf("%.3f", float64(st.Fsyncs)/float64(st.Appends))
		}
		idx.Close()
		cleanup()
		p95[v.name] = lat.P95
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.0f", lat.P50),
			fmt.Sprintf("%.0f", lat.P95),
			fmt.Sprintf("%.0f", lat.P99),
			fsyncsPerWrite,
		})
	}
	for _, v := range variants[1:] {
		ratio := 0.0
		if p95["wal off"] > 0 {
			ratio = p95[v.name] / p95["wal off"]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("write p95 ratio (%s/off)", v.policy),
			"", fmt.Sprintf("%.3f", ratio), "", "",
		})
	}
	return []Table{t}
}

// measureWriteLatencies drives the op stream with the given number of
// concurrent clients — group commit only batches when writers overlap —
// timing write ops only and executing reads untimed to keep the interleave
// honest. Ops are dealt round-robin so every client sees the stream's mix.
func measureWriteLatencies(layer serving, ops []workload.Op, clients int) harness.Summary {
	if clients < 1 {
		clients = 1
	}
	chunks := make([][]float64, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var samples []float64
			for i := c; i < len(ops); i += clients {
				op := ops[i]
				if op.IsWrite {
					start := time.Now()
					layer.Insert(op.Point)
					samples = append(samples, float64(time.Since(start).Nanoseconds()))
				} else {
					_ = layer.RangeQuery(op.Query)
				}
			}
			chunks[c] = samples
		}(c)
	}
	wg.Wait()
	var all []float64
	for _, s := range chunks {
		all = append(all, s...)
	}
	return harness.Summarize(all)
}
