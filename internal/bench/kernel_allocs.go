package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// kernelSink defeats dead-code elimination of the measured query loops.
var kernelSink int

// KernelAllocs proves the zero-allocation query kernel: steady-state
// RangeQuery/RangeCount/KNN through the Append APIs must not allocate — not
// on a single Index, not through the Sharded fan-out with its pooled
// per-query arenas, and (since the zero-copy disk read path) not on the
// disk backend's warm block-cache hit path either, where every page resolve
// is a pinned borrowed view instead of a decoded copy. The experiment
// measures itself (runtime MemStats deltas around batches of queries,
// minimum over several batches so a stray background allocation cannot
// inflate the steady state) and reports the counts in an exact-class table,
// which `waziexp ratchet` holds to the committed baseline of zero — a hard
// gate, since any appearance from zero is an infinite relative regression.
// Latencies land in a separate latency-class table so cross-machine runs
// can gate allocations without gating timing.
func KernelAllocs(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+21)
	qs := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+31)
	const k = 10

	idx, err := wazi.NewWorkloadAware(data, train,
		wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed))
	if err != nil {
		panic(err)
	}
	sh, err := wazi.NewSharded(data, train,
		wazi.WithShards(8),
		wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
		wazi.WithoutAutoRebuild(),
	)
	if err != nil {
		panic(err)
	}
	defer sh.Close()

	// Disk-backed twins. The cache comfortably holds the working set and
	// the measured batch runs after a priming pass, so the measured rows
	// are pure block-cache hits — the path the ratchet holds to zero.
	diskDir, err := os.MkdirTemp("", "wazi-kernel-allocs")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(diskDir)
	// Leaves average well under the LeafSize cap, so size the cache on a
	// pessimistic leaf count; a refault during the bracketed pass would
	// show up as an allocation and fail the zero ratchet.
	diskCache := cfg.Scale/8 + 256
	diskIdx, err := wazi.NewWorkloadAware(data, train,
		wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed),
		wazi.WithStorage(wazi.Storage{
			Path:       filepath.Join(diskDir, "index.pages"),
			CachePages: diskCache,
		}))
	if err != nil {
		panic(err)
	}
	defer diskIdx.Close()
	diskSh, err := wazi.NewSharded(data, train,
		wazi.WithShards(8),
		wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
		wazi.WithoutAutoRebuild(),
		wazi.WithShardedStorage(filepath.Join(diskDir, "shards"), diskCache),
	)
	if err != nil {
		panic(err)
	}
	defer diskSh.Close()

	// One reusable destination buffer per measured loop — the usage pattern
	// the Append APIs exist for. kNN queries at the centers of the range
	// workload's rectangles.
	var buf []wazi.Point
	rows := []struct {
		name string
		run  func()
	}{
		{"index/range", func() {
			for _, q := range qs {
				buf = idx.RangeQueryAppend(buf[:0], q)
			}
			kernelSink += len(buf)
		}},
		{"index/count", func() {
			for _, q := range qs {
				kernelSink += idx.RangeCount(q)
			}
		}},
		{"index/knn", func() {
			for _, q := range qs {
				buf = idx.KNNAppend(buf[:0], center(q), k)
			}
			kernelSink += len(buf)
		}},
		{"sharded/range", func() {
			for _, q := range qs {
				buf = sh.RangeQueryAppend(buf[:0], q)
			}
			kernelSink += len(buf)
		}},
		{"sharded/count", func() {
			for _, q := range qs {
				kernelSink += sh.RangeCount(q)
			}
		}},
		{"sharded/knn", func() {
			for _, q := range qs {
				buf = sh.KNNAppend(buf[:0], center(q), k)
			}
			kernelSink += len(buf)
		}},
		{"index-disk/range", func() {
			for _, q := range qs {
				buf = diskIdx.RangeQueryAppend(buf[:0], q)
			}
			kernelSink += len(buf)
		}},
		{"index-disk/count", func() {
			for _, q := range qs {
				kernelSink += diskIdx.RangeCount(q)
			}
		}},
		{"index-disk/knn", func() {
			for _, q := range qs {
				buf = diskIdx.KNNAppend(buf[:0], center(q), k)
			}
			kernelSink += len(buf)
		}},
		{"sharded-disk/range", func() {
			for _, q := range qs {
				buf = diskSh.RangeQueryAppend(buf[:0], q)
			}
			kernelSink += len(buf)
		}},
		{"sharded-disk/count", func() {
			for _, q := range qs {
				kernelSink += diskSh.RangeCount(q)
			}
		}},
		{"sharded-disk/knn", func() {
			for _, q := range qs {
				buf = diskSh.KNNAppend(buf[:0], center(q), k)
			}
			kernelSink += len(buf)
		}},
	}

	exact := Table{
		ID:     "kernel-allocs",
		Title:  fmt.Sprintf("Steady-state query kernel allocations, RAM and warm-disk backends (%s, %d points, %d queries/batch)", r, cfg.Scale, len(qs)),
		Header: []string{"Path", "Allocs/op", "Alloc bytes/op"},
		Class:  harness.ClassExact,
		Notes: []string{
			"MemStats deltas over a query batch, minimum of 3 batches after warmup; deterministic, ratcheted against an exact-zero baseline",
			"disk rows measure the block-cache hit path (cache holds the working set, primed before the bracketed pass): zero-copy borrowed views, no per-page decode",
		},
	}
	lat := Table{
		ID:     "kernel-allocs",
		Title:  "Query kernel latency context (same batches)",
		Header: []string{"Path", "ns/op"},
		Notes:  []string{"wall time of the best batch; timing-noisy, gated (if at all) by the latency threshold"},
	}
	for _, row := range rows {
		allocs, bytes, nsOp := measureAllocs(row.run, len(qs))
		exact.Rows = append(exact.Rows, []string{
			row.name, fmt.Sprintf("%.3f", allocs), fmt.Sprintf("%.1f", bytes),
		})
		lat.Rows = append(lat.Rows, []string{row.name, fmt.Sprintf("%.0f", nsOp)})
	}
	return []Table{exact, lat}
}

// center returns the midpoint of a query rectangle.
func center(q wazi.Rect) wazi.Point {
	return wazi.Point{X: (q.MinX + q.MaxX) / 2, Y: (q.MinY + q.MaxY) / 2}
}

// measureAllocs runs fn repeatedly and returns its per-operation allocation
// count, allocated bytes, and wall time at steady state. Each measured batch
// is preceded by a GC (which empties sync.Pools) and an unmeasured priming
// pass (which restocks them and grows every reused buffer to its high-water
// mark), so the bracketed pass sees exactly the steady state a long-running
// server reaches. The minimum across batches is reported: allocations from
// unrelated goroutines can only add.
func measureAllocs(fn func(), ops int) (allocsOp, bytesOp, nsOp float64) {
	allocsOp, bytesOp, nsOp = math.Inf(1), math.Inf(1), math.Inf(1)
	var before, after runtime.MemStats
	for batch := 0; batch < 3; batch++ {
		runtime.GC()
		fn()
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		a := float64(after.Mallocs-before.Mallocs) / float64(ops)
		b := float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
		if a < allocsOp {
			allocsOp = a
		}
		if b < bytesOp {
			bytesOp = b
		}
	}
	for batch := 0; batch < 3; batch++ {
		start := time.Now()
		fn()
		if d := float64(time.Since(start).Nanoseconds()) / float64(ops); d < nsOp {
			nsOp = d
		}
	}
	return allocsOp, bytesOp, nsOp
}
