package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/geom"
)

// shardedGoroutineLadder is the client-concurrency ladder of the sharded
// serving experiment.
var shardedGoroutineLadder = []int{1, 2, 4, 8, 16, 32, 64}

// querier abstracts the two serving layers under comparison.
type querier interface {
	RangeQuery(r geom.Rect) []geom.Point
}

// ShardedThroughput measures aggregate range-query throughput of the
// single-mutex Concurrent wrapper versus the sharded serving layer as the
// number of client goroutines grows. This is the serving-layer experiment
// the paper's "build offline, serve online" deployment model (§6.5) implies
// but never runs: with every read serialized, Concurrent cannot scale past
// one core, while Sharded fans out over per-shard indexes and scales with
// the hardware.
func ShardedThroughput(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	w := MakeWorkloads(r, cfg.Scale, cfg)
	qs := w.BySelectivity[MidSelectivity]
	half := len(qs) / 2

	single, err := wazi.NewWorkloadAware(w.Data, qs[:half], wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed))
	if err != nil {
		panic(err)
	}
	conc := wazi.NewConcurrent(single)
	// Pin the shard count rather than inherit GOMAXPROCS: on a small
	// machine the interesting effects (MBR-pruned fan-out, no mutex
	// convoy) still need several shards to show, and on a big one eight
	// shards already saturate the goroutine ladder.
	shards := max(8, runtime.GOMAXPROCS(0))
	sharded, err := wazi.NewSharded(w.Data, qs[:half],
		wazi.WithShards(shards),
		wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
		wazi.WithoutAutoRebuild())
	if err != nil {
		panic(err)
	}
	defer sharded.Close()

	t := Table{
		ID:     "sharded",
		Title:  fmt.Sprintf("Aggregate range-query throughput by client goroutines (%s, %d points, %d shards, GOMAXPROCS=%d)", r, cfg.Scale, sharded.NumShards(), runtime.GOMAXPROCS(0)),
		Header: []string{"Goroutines", "Concurrent (q/s)", "Sharded (q/s)", "Speedup"},
		Notes: []string{
			"expected shape: Concurrent flat or degrading with goroutines (single mutex); Sharded scaling with cores",
		},
	}
	for _, g := range shardedGoroutineLadder {
		cq := measureThroughput(conc, qs[half:], g)
		sq := measureThroughput(sharded, qs[half:], g)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", g),
			fmt.Sprintf("%.0f", cq),
			fmt.Sprintf("%.0f", sq),
			fmt.Sprintf("%.2fx", sq/cq),
		})
	}
	return []Table{t}
}

// measureThroughput runs g goroutines for a fixed wall-clock window, each
// looping over the query set from a different offset, and returns aggregate
// queries per second.
func measureThroughput(idx querier, qs []geom.Rect, g int) float64 {
	return measureLoopThroughput(len(qs), g, func(i int) { _ = idx.RangeQuery(qs[i]) })
}

// measureLoopThroughput is the shared throughput harness: after a warmup
// over the first min(n, 64) items, it runs g goroutines for a fixed
// wall-clock window, each calling exec with successive item indexes from a
// different offset, and returns aggregate executions per second.
func measureLoopThroughput(n, g int, exec func(int)) float64 {
	const window = 250 * time.Millisecond
	for i := 0; i < min(n, 64); i++ {
		exec(i)
	}
	var done atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			c := int64(0)
			for j := off; !stop.Load(); j++ {
				exec(j % n)
				c++
			}
			done.Add(c)
		}(i * n / g)
	}
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}
