package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
)

// TestStorageBackendsWarmWithin2x pins the acceptance bar of the disk
// backend: at smoke scale, disk-warm p95 range latency stays within 2x of
// in-memory on every workload suite. Timing asserts are retried a few times
// so one noisy scheduler blip cannot fail the build; a real regression
// (e.g. a page fault on the warm path) fails all attempts.
func TestStorageBackendsWarmWithin2x(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	cfg := Config{Scale: 20_000, Queries: 300, Regions: []dataset.Region{dataset.NewYork}}
	const attempts = 3
	var last string
	for a := 0; a < attempts; a++ {
		tables := StorageBackends(cfg)
		ratios := tables[len(tables)-1]
		ok := true
		for _, row := range ratios.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
			if err != nil {
				t.Fatalf("unparsable ratio %q", row[3])
			}
			if v >= 2.0 {
				ok = false
				last = row[0] + " at " + row[3]
			}
		}
		if ok {
			return
		}
	}
	t.Fatalf("disk-warm p95 exceeded 2x of in-memory in all %d attempts (last: %s)", attempts, last)
}

// TestStorageBackendsShape checks the experiment's deterministic structure:
// four backend rows per suite and populated cache columns for disk rows.
func TestStorageBackendsShape(t *testing.T) {
	cfg := Config{Scale: 5_000, Queries: 80, Regions: []dataset.Region{dataset.NewYork}}
	tables := StorageBackends(cfg)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	suites := 0
	for _, row := range tables[0].Rows {
		switch row[1] {
		case "in-memory":
			suites++
		case "disk-cold", "disk-warm", "disk-tight":
			if row[4] == "" {
				t.Fatalf("disk row %v missing hit rate", row)
			}
		default:
			t.Fatalf("unexpected backend %q", row[1])
		}
	}
	if suites == 0 || len(tables[0].Rows) != 4*suites {
		t.Fatalf("got %d rows for %d suites, want 4 per suite", len(tables[0].Rows), suites)
	}
	if len(tables[1].Rows) != suites {
		t.Fatalf("ratio table has %d rows, want %d", len(tables[1].Rows), suites)
	}
}
