package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
)

// TestObsOverheadWithinBounds runs the obs-overhead experiment at smoke
// scale and asserts the instrumented hot path stays within a loose 1.5x of
// the uninstrumented one. The acceptance target is 1.05x; the gate here is
// deliberately slack because CI timing noise at toy scale dwarfs the real
// instrument cost, which the bench report records for the BENCH trajectory.
func TestObsOverheadWithinBounds(t *testing.T) {
	cfg := Config{Scale: 20_000, Queries: 400, Regions: []dataset.Region{dataset.NewYork}}
	tables := ObsOverhead(cfg)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	var ratio float64
	found := false
	for _, row := range tables[0].Rows {
		if strings.HasPrefix(row[0], "p95 ratio") {
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatalf("unparsable ratio %q: %v", row[2], err)
			}
			ratio, found = v, true
		}
	}
	if !found {
		t.Fatalf("no p95 ratio row in %+v", tables[0].Rows)
	}
	if ratio <= 0 || ratio > 1.5 {
		t.Fatalf("instrumented/uninstrumented p95 ratio = %.3f, want (0, 1.5]", ratio)
	}
}
