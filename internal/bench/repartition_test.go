package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
)

// TestRepartitionGain pins the acceptance bar of the online repartitioner:
// under the hotspot-shift suite at smoke scale, the advisor-gated migration
// must actually happen, and it must cut the cross-shard page-work imbalance
// of the post-shift tail by at least 1.3x versus the static plan.
//
// The imbalance ratio is deterministic — pure counter arithmetic over
// deterministic builds and replays, no clocks — so it gets no retries: it
// either holds structurally or the partitioner regressed. Wall-clock p95 is
// checked only for non-regression (the migrated plan must not be slower),
// with retries absorbing scheduler noise, because on a single-core CI
// container tail wall-clock is noise-bound while on real parallel hardware
// it follows the busiest shard — exactly what the imbalance ratio measures.
func TestRepartitionGain(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale assertion skipped in -short mode")
	}
	cfg := Config{Scale: 20_000, Queries: 400, Regions: []dataset.Region{dataset.NewYork}}

	const attempts = 3
	var lastP95 string
	for a := 0; a < attempts; a++ {
		tables := RepartitionExperiment(cfg)
		if len(tables) != 2 {
			t.Fatalf("got %d tables, want 2", len(tables))
		}
		row := tables[1].Rows[0]
		if row[5] != "true" {
			t.Fatalf("advisor-gated migration did not happen (migrated=%q)", row[5])
		}
		imb := parseRatio(t, row[3])
		if imb < 1.3 {
			t.Fatalf("page-work imbalance ratio %.2f < 1.3 — the migrated plan did not rebalance the shifted hotspot", imb)
		}
		if p95 := parseRatio(t, row[4]); p95 >= 0.95 {
			// Rebalanced AND at least wall-clock-neutral: done.
			verifyRepartitionShape(t, tables)
			return
		}
		lastP95 = row[4]
	}
	t.Fatalf("adaptive p95 regressed versus static in all %d attempts (last ratio %s)", attempts, lastP95)
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("unparsable ratio %q", s)
	}
	return v
}

// verifyRepartitionShape checks the experiment's deterministic structure:
// two plan rows, the adaptive row recording its migration, and the hot
// region gaining dedicated shards only on the adaptive side.
func verifyRepartitionShape(t *testing.T, tables []Table) {
	t.Helper()
	lat := tables[0]
	if len(lat.Rows) != 2 || lat.Rows[0][0] != "static" || lat.Rows[1][0] != "adaptive" {
		t.Fatalf("unexpected latency table rows: %v", lat.Rows)
	}
	if lat.Rows[1][6] == "0" {
		t.Fatal("adaptive row reports zero migrations")
	}
	staticHot, err1 := strconv.Atoi(lat.Rows[0][7])
	adaptiveHot, err2 := strconv.Atoi(lat.Rows[1][7])
	if err1 != nil || err2 != nil {
		t.Fatalf("unparsable hot-shard counts: %v / %v", lat.Rows[0][7], lat.Rows[1][7])
	}
	if adaptiveHot <= staticHot {
		t.Errorf("migration dedicated no extra shards to the shifted hotspot: static %d, adaptive %d", staticHot, adaptiveHot)
	}
}
