package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentEmitsResourceMetrics pins the tentpole contract: every
// timed repetition contributes a MemStats delta, and each experiment's
// result carries the four resource-class metrics alongside its table-mined
// latency metrics.
func TestExperimentEmitsResourceMetrics(t *testing.T) {
	run := NewRun(Options{Suite: "res", Warmup: 1, Reps: 3}, nil)
	const allocsPerRep = 1000
	sink := make([][]byte, 0, allocsPerRep)
	res := run.Experiment("fake", func() []Table {
		sink = sink[:0]
		for i := 0; i < allocsPerRep; i++ {
			sink = append(sink, make([]byte, 1024))
		}
		return fakeTables(1)
	})

	for _, suffix := range []string{"allocs-op", "alloc-bytes-op", "gc-cycles-op", "gc-pause-ns-op"} {
		m := res.ResourceMetric(suffix)
		if m == nil {
			t.Fatalf("missing resource metric %q", suffix)
		}
		if m.Class != ClassResource {
			t.Errorf("%s class = %q, want %q", suffix, m.Class, ClassResource)
		}
		if m.HigherIsBetter {
			t.Errorf("%s marked higher-is-better; resources are lower-is-better", suffix)
		}
		if len(m.Samples) != 3 {
			t.Errorf("%s has %d samples, want one per timed rep (3)", suffix, len(m.Samples))
		}
	}
	if got := res.ResourceMetric("allocs-op").Summary.Mean; got < allocsPerRep {
		t.Errorf("allocs-op mean = %.0f, want >= the %d explicit allocations per rep", got, allocsPerRep)
	}
	if got := res.ResourceMetric("alloc-bytes-op").Summary.Mean; got < allocsPerRep*1024 {
		t.Errorf("alloc-bytes-op mean = %.0f, want >= %d explicitly allocated bytes", got, allocsPerRep*1024)
	}
	// Table-mined metrics must keep the default (latency) class, or the
	// ratchet would gate timing with the tight resource threshold.
	for _, m := range res.Metrics {
		if strings.Contains(m.Name, "/t0/") && m.Class != "" {
			t.Errorf("table metric %s has class %q, want empty (latency)", m.Name, m.Class)
		}
	}
}

// TestResourceMetricsRoundTrip writes a resource-bearing report through the
// JSON reporter and reads it back with the unknown-field-preserving reader:
// the class tag and samples survive, and unknown top-level fields written
// by an even newer tool still ride along.
func TestResourceMetricsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_res.json")
	run := NewRun(Options{Suite: "res", Reps: 2}, nil, &JSONReporter{Path: path})
	run.Experiment("fake", func() []Table { return fakeTables(1) })
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}

	r, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Results[0].ResourceMetric("allocs-op")
	if m == nil {
		t.Fatal("allocs-op did not survive the JSON round trip")
	}
	if m.Class != ClassResource || len(m.Samples) != 2 {
		t.Fatalf("round-tripped metric: class %q, %d samples", m.Class, len(m.Samples))
	}

	// Graft an unknown top-level field (a future writer's section), rewrite,
	// re-read: resource metrics and the foreign field must both survive.
	r.Extra = map[string]json.RawMessage{"future_section": json.RawMessage(`{"x":1}`)}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].ResourceMetric("allocs-op") == nil {
		t.Fatal("resource metric lost when Extra fields present")
	}
	if _, ok := back.Extra["future_section"]; !ok {
		t.Fatal("unknown top-level field dropped from a resource-bearing report")
	}
}

// mkClassReport builds a one-experiment report with one latency metric and
// one resource metric at the given means.
func mkClassReport(latency, allocs float64, withResource bool) *Report {
	ms := []Metric{{
		Name: "e/t0/row/col", Unit: "ns",
		Samples: []float64{latency}, Summary: Summarize([]float64{latency}),
	}}
	if withResource {
		ms = append(ms, Metric{
			Name: "e/resource/allocs-op", Unit: "allocs", Class: ClassResource,
			Samples: []float64{allocs}, Summary: Summarize([]float64{allocs}),
		})
	}
	return &Report{Schema: SchemaVersion, Suite: "smoke",
		Results: []Result{{Experiment: "e", Metrics: ms}}}
}

// TestCompareWithClassThresholds pins the per-class gating: the same +40%
// change trips the tight resource gate but stays inside the loose latency
// gate, and an infinite threshold disables a class entirely.
func TestCompareWithClassThresholds(t *testing.T) {
	old := mkClassReport(100, 1000, true)
	cur := mkClassReport(140, 1400, true) // both +40%

	c := CompareWith(old, cur, Thresholds{
		Default: 0.50,
		ByClass: map[string]float64{ClassResource: 0.35},
	})
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(c.Deltas))
	}
	byName := map[string]Delta{}
	for _, d := range c.Deltas {
		byName[d.Metric] = d
	}
	if d := byName["e/t0/row/col"]; d.Verdict != Within || d.Class != "" {
		t.Errorf("latency delta = %+v, want within the 50%% gate with empty class", d)
	}
	if d := byName["e/resource/allocs-op"]; d.Verdict != Regression || d.Class != ClassResource {
		t.Errorf("resource delta = %+v, want regression past the 35%% gate", d)
	}
	if got := c.Regressions(); got != 1 {
		t.Errorf("Regressions() = %d, want 1", got)
	}

	// An infinite class threshold never trips — the cross-machine ratchet's
	// "latency disabled" mode.
	c = CompareWith(old, cur, Thresholds{
		Default: math.Inf(1),
		ByClass: map[string]float64{ClassResource: math.Inf(1)},
	})
	if got := c.Regressions(); got != 0 {
		t.Errorf("Regressions() with infinite thresholds = %d, want 0", got)
	}
}

// TestCompareDisjointResourceMetrics diffs a pre-resource-accounting report
// (older writer) against a current one: the new resource metrics land in
// OnlyInNew instead of erroring or verdicting, so old baselines keep
// comparing.
func TestCompareDisjointResourceMetrics(t *testing.T) {
	old := mkClassReport(100, 0, false)
	cur := mkClassReport(100, 1000, true)

	c := Compare(old, cur, 0.10)
	if got := c.Regressions(); got != 0 {
		t.Fatalf("Regressions() = %d, want 0 for a disjoint resource metric", got)
	}
	if len(c.OnlyInNew) != 1 || c.OnlyInNew[0] != "e/resource/allocs-op" {
		t.Fatalf("OnlyInNew = %v, want the resource metric", c.OnlyInNew)
	}
	var buf bytes.Buffer
	c.WriteText(&buf, true)
	if !strings.Contains(buf.String(), "only in new report") {
		t.Errorf("WriteText does not surface the one-sided metric:\n%s", buf.String())
	}
}
