package harness

import (
	"math"
	"sort"
)

// Summary is the descriptive statistics of one metric's samples. All
// fields are in the metric's own unit. With a single sample the spread
// statistics degenerate gracefully: stddev is zero and the confidence
// interval collapses onto the mean.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	// CI95Lo and CI95Hi bound the 95% confidence interval of the mean,
	// using the Student t critical value for the sample's degrees of
	// freedom.
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// Summarize computes a Summary over samples. It returns a zero Summary for
// an empty slice. The input is not modified.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(n)

	var sq float64
	for _, v := range sorted {
		d := v - mean
		sq += d * d
	}
	stddev := 0.0
	if n > 1 {
		stddev = math.Sqrt(sq / float64(n-1))
	}
	half := tCritical95(n-1) * stddev / math.Sqrt(float64(n))

	return Summary{
		N:      n,
		Mean:   mean,
		Stddev: stddev,
		Min:    sorted[0],
		Max:    sorted[n-1],
		P50:    Percentile(sorted, 50),
		P95:    Percentile(sorted, 95),
		P99:    Percentile(sorted, 99),
		CI95Lo: mean - half,
		CI95Hi: mean + half,
	}
}

// Percentile returns the p-th percentile (0..100) of sorted samples using
// linear interpolation between closest ranks. sorted must be ascending.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// tTable holds two-sided 95% Student t critical values for 1..30 degrees
// of freedom; beyond 30 the normal approximation 1.96 is close enough for
// benchmark reporting.
var tTable = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% t critical value for df degrees of
// freedom (df <= 0 yields 0, so a single sample gets a zero-width CI).
func tCritical95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= len(tTable):
		return tTable[df-1]
	default:
		return 1.96
	}
}
