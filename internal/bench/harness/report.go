package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the report format; bump it on breaking changes
// so compare can refuse mismatched files instead of mis-reading them.
const SchemaVersion = "wazi-bench/v1"

// Report is the machine-readable outcome of one harness run — the content
// of a BENCH_<suite>.json file.
type Report struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	// Config records the experiment configuration the run used; it is
	// written as-is and read back as generic JSON.
	Config    any         `json:"config,omitempty"`
	Env       Environment `json:"env"`
	Results   []Result    `json:"results"`
	ElapsedNS int64       `json:"elapsed_ns"`
	// Extra holds top-level fields this version of the reader does not
	// know about, preserved verbatim through a read→write cycle. It keeps
	// wazi-bench/v1 forward-compatible within the major version: a newer
	// writer may add columns (e.g. server-side metrics sections) and an
	// older `waziexp compare` still round-trips them instead of silently
	// dropping them.
	Extra map[string]json.RawMessage `json:"-"`
}

// reportAlias avoids recursion inside the custom JSON codecs.
type reportAlias Report

// knownReportFields are the top-level keys owned by the typed struct.
var knownReportFields = map[string]bool{
	"schema": true, "suite": true, "config": true,
	"env": true, "results": true, "elapsed_ns": true,
}

// UnmarshalJSON decodes the known fields into the struct and captures any
// unknown top-level fields in Extra.
func (r *Report) UnmarshalJSON(data []byte) error {
	var a reportAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	for k := range raw {
		if knownReportFields[k] {
			continue
		}
		if a.Extra == nil {
			a.Extra = map[string]json.RawMessage{}
		}
		a.Extra[k] = raw[k]
	}
	*r = Report(a)
	return nil
}

// MarshalJSON writes the known fields and merges Extra back in. An Extra
// key colliding with a known field is dropped — the typed value wins.
func (r Report) MarshalJSON() ([]byte, error) {
	data, err := json.Marshal(reportAlias(r))
	if err != nil {
		return nil, err
	}
	if len(r.Extra) == 0 {
		return data, nil
	}
	var merged map[string]json.RawMessage
	if err := json.Unmarshal(data, &merged); err != nil {
		return nil, err
	}
	for k, v := range r.Extra {
		if knownReportFields[k] {
			continue
		}
		merged[k] = v
	}
	return json.Marshal(merged)
}

// FindResult returns the report's result for an experiment id, or nil.
func (r *Report) FindResult(experiment string) *Result {
	for i := range r.Results {
		if r.Results[i].Experiment == experiment {
			return &r.Results[i]
		}
	}
	return nil
}

// Metrics returns every metric in the report keyed by name, in report
// order.
func (r *Report) Metrics() ([]string, map[string]Metric) {
	var order []string
	byName := map[string]Metric{}
	for _, res := range r.Results {
		for _, m := range res.Metrics {
			if _, ok := byName[m.Name]; !ok {
				order = append(order, m.Name)
			}
			byName[m.Name] = m
		}
	}
	return order, byName
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile and validates its schema
// tag.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("harness: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
