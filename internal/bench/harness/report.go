package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the report format; bump it on breaking changes
// so compare can refuse mismatched files instead of mis-reading them.
const SchemaVersion = "wazi-bench/v1"

// Report is the machine-readable outcome of one harness run — the content
// of a BENCH_<suite>.json file.
type Report struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	// Config records the experiment configuration the run used; it is
	// written as-is and read back as generic JSON.
	Config    any         `json:"config,omitempty"`
	Env       Environment `json:"env"`
	Results   []Result    `json:"results"`
	ElapsedNS int64       `json:"elapsed_ns"`
}

// FindResult returns the report's result for an experiment id, or nil.
func (r *Report) FindResult(experiment string) *Result {
	for i := range r.Results {
		if r.Results[i].Experiment == experiment {
			return &r.Results[i]
		}
	}
	return nil
}

// Metrics returns every metric in the report keyed by name, in report
// order.
func (r *Report) Metrics() ([]string, map[string]Metric) {
	var order []string
	byName := map[string]Metric{}
	for _, res := range r.Results {
		for _, m := range res.Metrics {
			if _, ok := byName[m.Name]; !ok {
				order = append(order, m.Name)
			}
			byName[m.Name] = m
		}
	}
	return order, byName
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile and validates its schema
// tag.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("harness: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
