package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// reportWith builds a minimal report holding the given metrics.
func reportWith(metrics ...Metric) *Report {
	for i := range metrics {
		metrics[i].Summary = Summarize(metrics[i].Samples)
	}
	return &Report{
		Schema:  SchemaVersion,
		Suite:   "test",
		Results: []Result{{Experiment: "e", Metrics: metrics}},
	}
}

func lowerBetter(name string, samples ...float64) Metric {
	return Metric{Name: name, Unit: "ns", Samples: samples}
}

func higherBetter(name string, samples ...float64) Metric {
	return Metric{Name: name, Unit: "q/s", HigherIsBetter: true, Samples: samples}
}

func TestCompareVerdicts(t *testing.T) {
	old := reportWith(
		lowerBetter("lat/regressed", 100),
		lowerBetter("lat/improved", 100),
		lowerBetter("lat/flat", 100),
		lowerBetter("lat/at-threshold", 100),
		higherBetter("thr/regressed", 1000),
		higherBetter("thr/improved", 1000),
	)
	cur := reportWith(
		lowerBetter("lat/regressed", 125),    // +25% latency: worse
		lowerBetter("lat/improved", 70),      // -30% latency: better
		lowerBetter("lat/flat", 104),         // +4%: within
		lowerBetter("lat/at-threshold", 110), // exactly +10%: within (strictly-greater rule)
		higherBetter("thr/regressed", 800),   // -20% throughput: worse
		higherBetter("thr/improved", 1300),   // +30% throughput: better
	)

	c := Compare(old, cur, 0.10)
	if len(c.Deltas) != 6 {
		t.Fatalf("%d deltas, want 6", len(c.Deltas))
	}
	want := map[string]Verdict{
		"lat/regressed":    Regression,
		"lat/improved":     Improvement,
		"lat/flat":         Within,
		"lat/at-threshold": Within,
		"thr/regressed":    Regression,
		"thr/improved":     Improvement,
	}
	for _, d := range c.Deltas {
		if d.Verdict != want[d.Metric] {
			t.Errorf("%s: verdict %s (pct %+.2f), want %s", d.Metric, d.Verdict, d.Pct, want[d.Metric])
		}
	}
	if c.Regressions() != 2 {
		t.Fatalf("Regressions() = %d, want 2", c.Regressions())
	}

	// Relative change is signed (new-old)/old regardless of direction.
	for _, d := range c.Deltas {
		if d.Metric == "lat/regressed" && math.Abs(d.Pct-0.25) > 1e-12 {
			t.Errorf("lat/regressed pct = %g, want 0.25", d.Pct)
		}
		if d.Metric == "thr/regressed" && math.Abs(d.Pct+0.20) > 1e-12 {
			t.Errorf("thr/regressed pct = %g, want -0.20", d.Pct)
		}
	}
}

func TestCompareDisjointMetrics(t *testing.T) {
	old := reportWith(lowerBetter("only-old", 1), lowerBetter("both", 2))
	cur := reportWith(lowerBetter("both", 2), lowerBetter("only-new", 3))
	c := Compare(old, cur, 0.10)
	if len(c.Deltas) != 1 || c.Deltas[0].Metric != "both" {
		t.Fatalf("deltas: %+v", c.Deltas)
	}
	if len(c.OnlyInOld) != 1 || c.OnlyInOld[0] != "only-old" {
		t.Fatalf("OnlyInOld: %v", c.OnlyInOld)
	}
	if len(c.OnlyInNew) != 1 || c.OnlyInNew[0] != "only-new" {
		t.Fatalf("OnlyInNew: %v", c.OnlyInNew)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	old := reportWith(lowerBetter("zero-zero", 0), lowerBetter("zero-up", 0))
	cur := reportWith(lowerBetter("zero-zero", 0), lowerBetter("zero-up", 5))
	c := Compare(old, cur, 0.10)
	for _, d := range c.Deltas {
		switch d.Metric {
		case "zero-zero":
			if d.Verdict != Within || d.Pct != 0 {
				t.Errorf("zero-zero: %+v", d)
			}
		case "zero-up":
			if !math.IsInf(d.Pct, 1) || d.Verdict != Regression {
				t.Errorf("zero-up: %+v", d)
			}
		}
	}
}

func TestCompareWriteText(t *testing.T) {
	old := reportWith(lowerBetter("a", 100), lowerBetter("b", 100))
	cur := reportWith(lowerBetter("a", 150), lowerBetter("b", 101))
	c := Compare(old, cur, 0.10)

	var buf bytes.Buffer
	c.WriteText(&buf, false)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "regression") {
		t.Errorf("terse output lacks the regression:\n%s", out)
	}
	if strings.Contains(out, "within-threshold") {
		t.Errorf("terse output lists unchanged metrics:\n%s", out)
	}
	if !strings.Contains(out, "2 metric(s) compared: 0 improvement(s), 1 regression(s), 1 within threshold") {
		t.Errorf("summary line wrong:\n%s", out)
	}

	buf.Reset()
	c.WriteText(&buf, true)
	if !strings.Contains(buf.String(), "within-threshold") {
		t.Errorf("verbose output omits unchanged metrics:\n%s", buf.String())
	}
}
