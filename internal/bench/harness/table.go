package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one table or figure of the
// paper's evaluation, as labelled rows of cells. The first column of each
// row is its label; remaining cells are values, most of them numeric.
// Tables are what experiments produce; the harness both renders them as
// text and mines their numeric cells into metrics.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	// Class, when set, is stamped onto every metric mined from this table,
	// steering which regression threshold a ratchet applies to them. Leave
	// empty for timing-noisy measurements (the default latency gate); set
	// ClassExact for counters that are deterministic by construction, such
	// as the allocation counts of the kernel-allocs experiment.
	Class string `json:"class,omitempty"`
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
