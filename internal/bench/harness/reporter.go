package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Reporter consumes the event stream of a Run. Begin fires once before any
// experiment with the report's suite and environment filled in, Experiment
// after each completed experiment, and End once with the finished report.
// The table backend (TextReporter) and the JSON backend (JSONReporter)
// both implement it; a Run fans out to any number of reporters.
type Reporter interface {
	Begin(r *Report)
	Experiment(res Result)
	End(r *Report) error
}

// TextReporter renders experiment tables and per-experiment summary lines
// as plain text — the human-facing backend.
type TextReporter struct {
	W io.Writer
	// Quiet suppresses the tables, leaving only the summary lines.
	Quiet bool
}

// Begin prints the run header: suite, toolchain, machine, and commit.
func (t *TextReporter) Begin(r *Report) {
	fmt.Fprintf(t.W, "suite %s · %s %s/%s · %d CPUs",
		r.Suite, r.Env.GoVersion, r.Env.GOOS, r.Env.GOARCH, r.Env.NumCPU)
	if r.Env.Commit != "" {
		c := r.Env.Commit
		if len(c) > 12 {
			c = c[:12]
		}
		fmt.Fprintf(t.W, " · commit %s", c)
		if r.Env.Dirty {
			fmt.Fprint(t.W, " (dirty)")
		}
	}
	fmt.Fprintln(t.W)
	fmt.Fprintln(t.W)
}

// Experiment prints the experiment's tables (unless Quiet) and one summary
// line with its wall-time statistics.
func (t *TextReporter) Experiment(res Result) {
	if !t.Quiet {
		for _, tb := range res.Tables {
			fmt.Fprintln(t.W, tb)
		}
	}
	w := res.WallNS
	line := fmt.Sprintf("[%s: wall %v", res.Experiment, time.Duration(w.Mean).Round(time.Millisecond))
	if w.N > 1 {
		line += fmt.Sprintf(" ±%v (p50 %v, p99 %v, %d reps)",
			time.Duration(w.Stddev).Round(time.Millisecond),
			time.Duration(w.P50).Round(time.Millisecond),
			time.Duration(w.P99).Round(time.Millisecond),
			w.N)
	}
	line += fmt.Sprintf(", %d metrics]", len(res.Metrics))
	fmt.Fprintln(t.W, line)
	if rl := resourceLine(res); rl != "" {
		fmt.Fprintln(t.W, rl)
	}
	fmt.Fprintln(t.W)
}

// End prints the run's resource-profile table (unless Quiet) and the
// footer.
func (t *TextReporter) End(r *Report) error {
	if !t.Quiet {
		if tb := ResourceTable(r); len(tb.Rows) > 0 {
			fmt.Fprintln(t.W, tb)
		}
	}
	_, err := fmt.Fprintf(t.W, "suite %s: %d experiment(s) in %v\n",
		r.Suite, len(r.Results), time.Duration(r.ElapsedNS).Round(time.Millisecond))
	return err
}

// JSONReporter writes the finished report as indented JSON — the machine
// backend. Set Path to write a file (the BENCH_<suite>.json convention) or
// W to write to a stream; if both are set the file wins.
type JSONReporter struct {
	Path string
	W    io.Writer
}

// Begin implements Reporter; the JSON backend buffers until End.
func (j *JSONReporter) Begin(*Report) {}

// Experiment implements Reporter; the JSON backend buffers until End.
func (j *JSONReporter) Experiment(Result) {}

// End writes the report.
func (j *JSONReporter) End(r *Report) error {
	if j.Path != "" {
		return r.WriteFile(j.Path)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = j.W.Write(append(data, '\n'))
	return err
}
