package harness

import (
	"fmt"
	"runtime"
)

// Metric classes. The class steers which regression threshold a ratchet
// applies: latency-class metrics (the default, empty class — everything
// mined from experiment tables) are timing-noisy and get a loose gate,
// while resource-class metrics (allocation and GC accounting captured by
// the harness itself) are near-deterministic and get a tight one.
const (
	// ClassResource marks allocation/GC accounting metrics emitted by the
	// harness around every timed repetition.
	ClassResource = "resource"
	// ClassExact marks metrics that are deterministic by construction —
	// counters a ratchet can hold to an exact value across machines, such
	// as the steady-state allocs/op of the zero-allocation query kernel.
	// Experiments opt tables in via Table.Class.
	ClassExact = "exact"
)

// resourceSample is the runtime.MemStats delta over one timed repetition:
// what the repetition allocated and what the garbage collector did while it
// ran. Fields mirror the resource metric names.
type resourceSample struct {
	allocs  float64 // heap allocations (Mallocs delta)
	bytes   float64 // cumulative allocated bytes (TotalAlloc delta)
	cycles  float64 // completed GC cycles (NumGC delta)
	pauseNS float64 // total stop-the-world pause time (PauseTotalNs delta)
}

// captureResources runs fn between two ReadMemStats calls and returns the
// deltas. ReadMemStats stops the world briefly, so both reads sit outside
// the caller's wall-time measurement.
func captureResources(fn func()) resourceSample {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return resourceSample{
		allocs:  float64(after.Mallocs - before.Mallocs),
		bytes:   float64(after.TotalAlloc - before.TotalAlloc),
		cycles:  float64(after.NumGC - before.NumGC),
		pauseNS: float64(after.PauseTotalNs - before.PauseTotalNs),
	}
}

// resourceMetricDefs fixes the name suffix, unit, and sample accessor of
// each resource metric. Names are `<experiment>/resource/<suffix>` so they
// sort next to their experiment and never collide with table-mined metrics
// (whose second segment is always t<N>).
var resourceMetricDefs = []struct {
	suffix string
	unit   string
	get    func(resourceSample) float64
}{
	{"allocs-op", "allocs", func(s resourceSample) float64 { return s.allocs }},
	{"alloc-bytes-op", "B", func(s resourceSample) float64 { return s.bytes }},
	{"gc-cycles-op", "", func(s resourceSample) float64 { return s.cycles }},
	{"gc-pause-ns-op", "ns", func(s resourceSample) float64 { return s.pauseNS }},
}

// addResources appends one repetition's resource deltas to the accumulator
// as resource-class metrics. Lower is always better for resources.
func (a *metricAccumulator) addResources(expID string, s resourceSample) {
	for _, def := range resourceMetricDefs {
		name := fmt.Sprintf("%s/resource/%s", expID, def.suffix)
		m, exists := a.byKey[name]
		if !exists {
			m = &Metric{Name: name, Unit: def.unit, Class: ClassResource}
			a.byKey[name] = m
			a.order = append(a.order, name)
		}
		m.Samples = append(m.Samples, def.get(s))
	}
}

// ResourceMetric returns the result's resource metric with the given
// suffix ("allocs-op", "alloc-bytes-op", "gc-cycles-op", "gc-pause-ns-op"),
// or nil when absent (e.g. a report written before resource accounting).
func (r *Result) ResourceMetric(suffix string) *Metric {
	want := r.Experiment + "/resource/" + suffix
	for i := range r.Metrics {
		if r.Metrics[i].Name == want {
			return &r.Metrics[i]
		}
	}
	return nil
}

// resourceLine renders the mean resource profile of a result as one human
// line: allocations, bytes, GC cycles, and GC pause per repetition.
func resourceLine(res Result) string {
	a, b := res.ResourceMetric("allocs-op"), res.ResourceMetric("alloc-bytes-op")
	g, p := res.ResourceMetric("gc-cycles-op"), res.ResourceMetric("gc-pause-ns-op")
	if a == nil || b == nil || g == nil || p == nil {
		return ""
	}
	return fmt.Sprintf("[%s resources: %s allocs/op · %s/op · %.1f GCs/op · %s GC pause/op]",
		res.Experiment, siCount(a.Summary.Mean), siBytes(b.Summary.Mean),
		g.Summary.Mean, siNanos(p.Summary.Mean))
}

// ResourceTable summarizes every experiment's resource profile as one text
// table — one row per experiment, one column per resource metric (means
// across repetitions). It is rendered by the TextReporter from the finished
// report, never mined back into metrics, so the resource-class metrics stay
// the single machine-readable source.
func ResourceTable(r *Report) Table {
	t := Table{
		ID:     "resources",
		Title:  "per-repetition resource profile (MemStats deltas, means across reps)",
		Header: []string{"Experiment", "Allocs/op", "Alloc MB/op", "GC cycles/op", "GC pause ms/op"},
	}
	for _, res := range r.Results {
		a, b := res.ResourceMetric("allocs-op"), res.ResourceMetric("alloc-bytes-op")
		g, p := res.ResourceMetric("gc-cycles-op"), res.ResourceMetric("gc-pause-ns-op")
		if a == nil || b == nil || g == nil || p == nil {
			continue
		}
		t.Rows = append(t.Rows, []string{
			res.Experiment,
			fmt.Sprintf("%.0f", a.Summary.Mean),
			fmt.Sprintf("%.2f", b.Summary.Mean/(1<<20)),
			fmt.Sprintf("%.1f", g.Summary.Mean),
			fmt.Sprintf("%.3f", p.Summary.Mean/1e6),
		})
	}
	return t
}

// siCount formats a count with a k/M/G suffix.
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// siBytes formats a byte count with a B/KB/MB/GB suffix.
func siBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// siNanos formats nanoseconds as ns/µs/ms/s.
func siNanos(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}
