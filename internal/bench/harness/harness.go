// Package harness wraps the repository's experiments in a reproducible
// benchmarking discipline: warmup passes, N timed repetitions, summary
// statistics (mean, p50/p95/p99, stddev, 95% confidence interval),
// environment metadata, and machine-readable JSON reports that can be
// diffed across commits or configurations with Compare.
//
// The design follows golang/benchmarks' bent/benchfmt split: experiments
// stay simple functions that produce Tables, while the harness owns
// repetition, statistics, serialization, and comparison. Every numeric
// cell of every table becomes a named metric whose samples are collected
// across repetitions; an experiment's wall time is a metric too. Reporters
// consume the stream of results: TextReporter renders tables and summary
// lines for humans, JSONReporter writes a BENCH_<suite>.json for machines,
// and both can run side by side on one Run.
package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Options configures a Run.
type Options struct {
	// Suite names the run in the report (e.g. "smoke", "paper").
	Suite string
	// Warmup is the number of untimed passes before measurement (negative
	// is treated as zero).
	Warmup int
	// Reps is the number of timed repetitions per experiment (minimum 1).
	Reps int
}

func (o *Options) fill() {
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
}

// Metric is one named measurement with its per-repetition samples and
// their summary statistics. Names are stable across runs of the same
// experiment set — `<experiment>/t<table#>/<row label>/<column header>` —
// so Compare can match metrics between two reports.
type Metric struct {
	Name string `json:"name"`
	// Unit is inferred from the table's column header and title ("ns",
	// "q/s", "s", "MB", "%", "x"); empty when unknown.
	Unit string `json:"unit,omitempty"`
	// HigherIsBetter steers regression detection: true for throughput-like
	// metrics, false for latency/size/time-like ones (the default).
	HigherIsBetter bool `json:"higher_is_better,omitempty"`
	// Class groups metrics for per-class regression thresholds: empty (the
	// default) for table-mined latency/throughput metrics, ClassResource
	// for the harness's allocation/GC accounting. Readers predating the
	// field decode it away harmlessly; writers omit it when empty, so old
	// and new reports stay mutually readable within wazi-bench/v1.
	Class   string    `json:"class,omitempty"`
	Samples []float64 `json:"samples"`
	Summary Summary   `json:"summary"`
}

// Result is one experiment's outcome under the harness: its wall-time
// statistics over the repetitions, every mined metric, and the tables of
// the final repetition.
type Result struct {
	Experiment string   `json:"experiment"`
	Warmup     int      `json:"warmup"`
	Reps       int      `json:"reps"`
	WallNS     Summary  `json:"wall_ns"`
	Metrics    []Metric `json:"metrics"`
	Tables     []Table  `json:"tables"`
}

// Run drives one harness invocation: it captures the environment once,
// executes experiments with warmup and repetitions, accumulates a Report,
// and streams results to its reporters.
type Run struct {
	opts      Options
	report    *Report
	reporters []Reporter
	start     time.Time
}

// NewRun starts a run. config is recorded verbatim in the report (pass the
// experiment Config so a report is self-describing); reporters receive
// Begin immediately and one Experiment callback per completed experiment.
func NewRun(opts Options, config any, reporters ...Reporter) *Run {
	opts.fill()
	r := &Run{
		opts: opts,
		report: &Report{
			Schema: SchemaVersion,
			Suite:  opts.Suite,
			Config: config,
			Env:    CaptureEnv(),
		},
		reporters: reporters,
		start:     time.Now(),
	}
	for _, rep := range r.reporters {
		rep.Begin(r.report)
	}
	return r
}

// Experiment runs fn under the harness: Warmup untimed passes, then Reps
// timed ones. Numeric table cells and wall time become metrics, and every
// timed repetition is bracketed by MemStats reads so its allocation and GC
// behavior (allocs/op, alloc-bytes/op, GC cycles, GC pause time) lands in
// the report as resource-class metrics; the last repetition's tables are
// kept. The result is appended to the report and streamed to the reporters.
func (r *Run) Experiment(id string, fn func() []Table) Result {
	for i := 0; i < r.opts.Warmup; i++ {
		_ = fn()
	}
	var (
		tables []Table
		walls  []float64
		acc    = newMetricAccumulator()
	)
	for i := 0; i < r.opts.Reps; i++ {
		var wall time.Duration
		res := captureResources(func() {
			start := time.Now()
			tables = fn()
			wall = time.Since(start)
		})
		walls = append(walls, float64(wall.Nanoseconds()))
		acc.addTables(id, tables)
		acc.addResources(id, res)
	}
	res := Result{
		Experiment: id,
		Warmup:     r.opts.Warmup,
		Reps:       r.opts.Reps,
		WallNS:     Summarize(walls),
		Metrics:    acc.finish(),
		Tables:     tables,
	}
	r.report.Results = append(r.report.Results, res)
	for _, rep := range r.reporters {
		rep.Experiment(res)
	}
	return res
}

// Finish stamps the elapsed time, flushes every reporter, and returns the
// completed report alongside the first reporter error.
func (r *Run) Finish() (*Report, error) {
	r.report.ElapsedNS = time.Since(r.start).Nanoseconds()
	var first error
	for _, rep := range r.reporters {
		if err := rep.End(r.report); err != nil && first == nil {
			first = err
		}
	}
	return r.report, first
}

// metricAccumulator collects samples per metric name across repetitions,
// preserving first-seen order.
type metricAccumulator struct {
	order []string
	byKey map[string]*Metric
}

func newMetricAccumulator() *metricAccumulator {
	return &metricAccumulator{byKey: map[string]*Metric{}}
}

// addTables mines one repetition's tables: every cell past the row label
// that parses as a number becomes a sample of the metric named after its
// experiment, table position, row label, and column header.
func (a *metricAccumulator) addTables(expID string, tables []Table) {
	for ti, t := range tables {
		for _, row := range t.Rows {
			if len(row) == 0 {
				continue
			}
			for ci := 1; ci < len(row) && ci < len(t.Header); ci++ {
				v, ok := parseCell(row[ci])
				if !ok {
					continue
				}
				name := fmt.Sprintf("%s/t%d/%s/%s", expID, ti, slug(row[0]), slug(t.Header[ci]))
				m, exists := a.byKey[name]
				if !exists {
					m = &Metric{
						Name:           name,
						Unit:           inferUnit(t.Title, t.Header[ci], row[ci]),
						HigherIsBetter: inferHigherBetter(t.Title, t.Header[ci]),
						Class:          t.Class,
					}
					a.byKey[name] = m
					a.order = append(a.order, name)
				}
				m.Samples = append(m.Samples, v)
			}
		}
	}
}

func (a *metricAccumulator) finish() []Metric {
	out := make([]Metric, 0, len(a.order))
	for _, name := range a.order {
		m := a.byKey[name]
		m.Summary = Summarize(m.Samples)
		out = append(out, *m)
	}
	return out
}

// parseCell extracts a float from a table cell, tolerating the repo's
// decorations: a sign prefix, a trailing "%" or "x" suffix, and thousands
// separators. Non-numeric cells ("yes", "always", "(+) 23k") are skipped.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	s = strings.ReplaceAll(s, ",", "")
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// slug normalizes a label into a metric-name segment: lowercase, with any
// run of characters outside [a-z0-9.%+=-] collapsed to a single dash.
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(strings.TrimSpace(s)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '.', r == '%', r == '+', r == '=', r == '-':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// inferUnit guesses a metric's unit from its column header, table title,
// and a sample cell.
func inferUnit(title, header, cell string) string {
	ht := strings.ToLower(header + " " + title)
	switch {
	case strings.HasSuffix(strings.TrimSpace(cell), "%"):
		return "%"
	case strings.Contains(ht, "q/s"):
		return "q/s"
	case strings.Contains(ht, "(ns") || strings.Contains(ht, "ns/") || strings.Contains(ht, " ns") || strings.Contains(ht, "latency"):
		return "ns"
	case strings.Contains(ht, "speedup"):
		return "x"
	case strings.Contains(ht, "mb"):
		return "MB"
	case strings.Contains(ht, "seconds"):
		return "s"
	default:
		return ""
	}
}

// inferHigherBetter reports whether larger values of a metric are better,
// judged from throughput/speedup/improvement keywords in the column header
// or table title. Everything else — latencies, build times, sizes, counter
// metrics — is lower-is-better.
func inferHigherBetter(title, header string) bool {
	ht := strings.ToLower(header + " " + title)
	for _, kw := range []string{"q/s", "speedup", "throughput", "improvement"} {
		if strings.Contains(ht, kw) {
			return true
		}
	}
	return false
}
