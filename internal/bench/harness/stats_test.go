package harness

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestSummarizeFixedInputs(t *testing.T) {
	// 1..100 in scrambled order: every statistic has a closed form.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64((i*37)%100 + 1)
	}
	s := Summarize(samples)

	if s.N != 100 {
		t.Fatalf("N = %d, want 100", s.N)
	}
	approx(t, "Mean", s.Mean, 50.5, 1e-9)
	approx(t, "Min", s.Min, 1, 0)
	approx(t, "Max", s.Max, 100, 0)
	// Sample stddev of 1..100 is sqrt(n(n+1)/12) with Bessel: 29.0115...
	approx(t, "Stddev", s.Stddev, 29.011491975882016, 1e-9)
	// Linear interpolation on sorted 1..100: p maps to 1 + p/100*99.
	approx(t, "P50", s.P50, 50.5, 1e-9)
	approx(t, "P95", s.P95, 95.05, 1e-9)
	approx(t, "P99", s.P99, 99.01, 1e-9)
	// df=99 uses the 1.96 normal approximation.
	half := 1.96 * s.Stddev / 10
	approx(t, "CI95Lo", s.CI95Lo, 50.5-half, 1e-9)
	approx(t, "CI95Hi", s.CI95Hi, 50.5+half, 1e-9)
}

func TestSummarizeSmallSamples(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty input: %+v, want zero Summary", s)
	}

	one := Summarize([]float64{42})
	if one.N != 1 || one.Mean != 42 || one.Stddev != 0 ||
		one.P50 != 42 || one.P95 != 42 || one.P99 != 42 ||
		one.CI95Lo != 42 || one.CI95Hi != 42 {
		t.Fatalf("single sample: %+v", one)
	}

	// Two samples: mean 10, stddev sqrt(2)*2... samples 8, 12:
	// stddev = sqrt(((8-10)^2+(12-10)^2)/1) = sqrt(8) = 2.828...
	two := Summarize([]float64{12, 8})
	approx(t, "Mean", two.Mean, 10, 1e-12)
	approx(t, "Stddev", two.Stddev, math.Sqrt(8), 1e-12)
	approx(t, "P50", two.P50, 10, 1e-12)
	// df=1 → t = 12.706; half-width = 12.706 * sqrt(8)/sqrt(2).
	half := 12.706 * math.Sqrt(8) / math.Sqrt2
	approx(t, "CI95Lo", two.CI95Lo, 10-half, 1e-9)
	approx(t, "CI95Hi", two.CI95Hi, 10+half, 1e-9)
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	approx(t, "p0", Percentile(sorted, 0), 10, 0)
	approx(t, "p100", Percentile(sorted, 100), 40, 0)
	approx(t, "p50", Percentile(sorted, 50), 25, 1e-12)
	// rank = 0.25/100*3... p25 → rank 0.75 → 10 + 0.75*10 = 17.5.
	approx(t, "p25", Percentile(sorted, 25), 17.5, 1e-12)
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}
