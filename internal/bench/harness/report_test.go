package harness

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestReportPreservesUnknownFields round-trips a report that carries
// top-level fields this reader does not know about — the forward-compat
// contract that lets a newer writer add sections (server-side metrics,
// annotations) without older tooling destroying them on rewrite.
func TestReportPreservesUnknownFields(t *testing.T) {
	in := []byte(`{
		"schema": "wazi-bench/v1",
		"suite": "serving",
		"env": {},
		"results": [],
		"elapsed_ns": 42,
		"server_metrics": {"http_p95_ms": 1.25, "goroutines": 12},
		"annotations": ["scraped from /metrics"]
	}`)
	var r Report
	if err := json.Unmarshal(in, &r); err != nil {
		t.Fatal(err)
	}
	if r.Suite != "serving" || r.ElapsedNS != 42 {
		t.Fatalf("known fields mis-read: %+v", r)
	}
	if len(r.Extra) != 2 {
		t.Fatalf("Extra = %v, want the 2 unknown fields", r.Extra)
	}
	if _, ok := r.Extra["server_metrics"]; !ok {
		t.Fatal("server_metrics not captured")
	}

	// Write and re-read through the file path tooling uses.
	path := filepath.Join(t.TempDir(), "BENCH_roundtrip.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]float64
	if err := json.Unmarshal(back.Extra["server_metrics"], &metrics); err != nil {
		t.Fatalf("server_metrics did not survive the round trip: %v", err)
	}
	if metrics["http_p95_ms"] != 1.25 {
		t.Fatalf("server_metrics content changed: %v", metrics)
	}
	if back.Suite != "serving" || back.ElapsedNS != 42 {
		t.Fatalf("known fields lost on round trip: %+v", back)
	}

	// A report without unknown fields marshals with no Extra noise.
	plain := Report{Schema: SchemaVersion, Suite: "smoke"}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["Extra"]; ok {
		t.Fatal("Extra leaked into the JSON encoding")
	}
}

// TestCompareToleratesUnknownFields ensures Compare works on reports whose
// files carry fields from a newer writer.
func TestCompareToleratesUnknownFields(t *testing.T) {
	mk := func(v float64, extra string) *Report {
		r := &Report{
			Schema: SchemaVersion,
			Suite:  "smoke",
			Results: []Result{{
				Experiment: "e",
				Metrics:    []Metric{{Name: "m", Unit: "ns", Samples: []float64{v}, Summary: Summarize([]float64{v})}},
			}},
		}
		if extra != "" {
			r.Extra = map[string]json.RawMessage{"server_metrics": json.RawMessage(extra)}
		}
		return r
	}
	oldPath := filepath.Join(t.TempDir(), "old.json")
	newPath := filepath.Join(t.TempDir(), "new.json")
	if err := mk(100, "").WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := mk(90, `{"http_p95_ms": 2.5}`).WriteFile(newPath); err != nil {
		t.Fatal(err)
	}
	oldR, err := ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newR, err := ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(oldR, newR, 0.10)
	if len(cmp.Deltas) == 0 {
		t.Fatal("compare produced no deltas")
	}
}
