package harness

import (
	"fmt"
	"io"
	"math"
)

// Verdict classifies one metric's change between two reports.
type Verdict string

// The three comparison outcomes: the change exceeded the threshold in the
// good direction, exceeded it in the bad direction, or stayed within it.
const (
	Improvement Verdict = "improvement"
	Regression  Verdict = "regression"
	Within      Verdict = "within-threshold"
)

// Delta is one metric's old-vs-new comparison. Pct is the signed relative
// change of the mean, (new-old)/old; whether a positive Pct is good
// depends on HigherIsBetter.
type Delta struct {
	Metric         string  `json:"metric"`
	Unit           string  `json:"unit,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	Class          string  `json:"class,omitempty"`
	Old            float64 `json:"old"`
	New            float64 `json:"new"`
	Pct            float64 `json:"pct"`
	Verdict        Verdict `json:"verdict"`
}

// Thresholds selects a regression threshold per metric class. ByClass maps
// a Metric.Class to its threshold; classes not present fall back to
// Default. An infinite threshold disables gating for that class (every
// change verdicts Within), which is how a cross-machine ratchet keeps
// timing metrics advisory while still gating allocation metrics.
type Thresholds struct {
	Default float64
	ByClass map[string]float64
}

// For returns the threshold that applies to a metric class.
func (t Thresholds) For(class string) float64 {
	if th, ok := t.ByClass[class]; ok {
		return th
	}
	return t.Default
}

// Comparison is the result of comparing two reports metric by metric.
type Comparison struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// OnlyInOld and OnlyInNew list metric names present in one report but
	// not the other (e.g. because the runs covered different experiments).
	OnlyInOld []string `json:"only_in_old,omitempty"`
	OnlyInNew []string `json:"only_in_new,omitempty"`
}

// Compare matches the two reports' metrics by name and computes per-metric
// deltas of the means. threshold is the relative change (e.g. 0.10 for
// 10%) beyond which a change counts as an improvement or regression; at or
// below it the verdict is Within.
func Compare(old, new *Report, threshold float64) Comparison {
	return CompareWith(old, new, Thresholds{Default: threshold})
}

// CompareWith is Compare with per-metric-class thresholds: each delta is
// gated by the threshold its metric's class resolves to. Metrics present
// in only one report (e.g. resource metrics meeting a pre-resource-
// accounting report) are listed in OnlyInOld/OnlyInNew rather than
// compared, so old and new report generations diff gracefully.
func CompareWith(old, new *Report, th Thresholds) Comparison {
	c := Comparison{Threshold: th.Default}
	oldOrder, oldBy := old.Metrics()
	newOrder, newBy := new.Metrics()
	for _, name := range oldOrder {
		om := oldBy[name]
		nm, ok := newBy[name]
		if !ok {
			c.OnlyInOld = append(c.OnlyInOld, name)
			continue
		}
		c.Deltas = append(c.Deltas, compareMetric(om, nm, th.For(om.Class)))
	}
	for _, name := range newOrder {
		if _, ok := oldBy[name]; !ok {
			c.OnlyInNew = append(c.OnlyInNew, name)
		}
	}
	return c
}

func compareMetric(om, nm Metric, threshold float64) Delta {
	d := Delta{
		Metric:         om.Name,
		Unit:           om.Unit,
		HigherIsBetter: om.HigherIsBetter,
		Class:          om.Class,
		Old:            om.Summary.Mean,
		New:            nm.Summary.Mean,
		Verdict:        Within,
	}
	switch {
	case d.Old == d.New:
		// Includes the old==0, new==0 case: no change, no division.
	case d.Old == 0:
		// Appeared from zero: direction is meaningful, magnitude is not.
		d.Pct = math.Inf(sign(d.New))
	default:
		d.Pct = (d.New - d.Old) / math.Abs(d.Old)
	}
	change := d.Pct
	if om.HigherIsBetter {
		change = -change
	}
	// change > 0 now means "got worse".
	switch {
	case change > threshold:
		d.Verdict = Regression
	case -change > threshold:
		d.Verdict = Improvement
	}
	return d
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Regressions returns the number of deltas whose verdict is Regression.
func (c Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Verdict == Regression {
			n++
		}
	}
	return n
}

// WriteText renders the comparison as an aligned table plus summary
// counts. When verbose is false, only metrics whose verdict is not Within
// are listed (the summary still counts everything).
func (c Comparison) WriteText(w io.Writer, verbose bool) {
	t := Table{
		ID:     "compare",
		Title:  fmt.Sprintf("per-metric delta of means (threshold ±%.1f%%)", c.Threshold*100),
		Header: []string{"Metric", "Old", "New", "Delta", "Verdict"},
	}
	imp, reg := 0, 0
	for _, d := range c.Deltas {
		switch d.Verdict {
		case Improvement:
			imp++
		case Regression:
			reg++
		}
		if !verbose && d.Verdict == Within {
			continue
		}
		t.Rows = append(t.Rows, []string{
			d.Metric,
			formatValue(d.Old, d.Unit),
			formatValue(d.New, d.Unit),
			formatPct(d.Pct),
			string(d.Verdict),
		})
	}
	if len(t.Rows) > 0 {
		fmt.Fprintln(w, t)
	}
	fmt.Fprintf(w, "%d metric(s) compared: %d improvement(s), %d regression(s), %d within threshold\n",
		len(c.Deltas), imp, reg, len(c.Deltas)-imp-reg)
	if len(c.OnlyInOld) > 0 {
		fmt.Fprintf(w, "%d metric(s) only in old report\n", len(c.OnlyInOld))
	}
	if len(c.OnlyInNew) > 0 {
		fmt.Fprintf(w, "%d metric(s) only in new report\n", len(c.OnlyInNew))
	}
}

func formatValue(v float64, unit string) string {
	s := fmt.Sprintf("%.4g", v)
	if unit != "" {
		s += " " + unit
	}
	return s
}

func formatPct(p float64) string {
	if math.IsInf(p, 0) {
		return fmt.Sprintf("%+v", p)
	}
	return fmt.Sprintf("%+.1f%%", p*100)
}
