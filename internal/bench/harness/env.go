package harness

import (
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Environment is the machine and build metadata attached to every report,
// so two BENCH_*.json files can be compared knowing whether they came from
// the same hardware and commit.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Hostname   string `json:"hostname,omitempty"`
	// Commit is the VCS revision the binary was built from (empty when
	// built outside a checkout or without VCS stamping, e.g. `go run` of
	// a dirty tree still records the parent commit).
	Commit string `json:"commit,omitempty"`
	// Dirty reports whether the working tree had uncommitted changes.
	Dirty bool `json:"dirty,omitempty"`
	// Time is the report's creation time in RFC 3339 format.
	Time string `json:"time"`
}

// CaptureEnv snapshots the current environment. The commit is read from
// the build info that the Go toolchain stamps into binaries built inside a
// version-controlled module.
func CaptureEnv() Environment {
	e := Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Time:       time.Now().UTC().Format(time.RFC3339),
	}
	if host, err := os.Hostname(); err == nil {
		e.Hostname = host
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				e.Commit = s.Value
			case "vcs.modified":
				e.Dirty = s.Value == "true"
			}
		}
	}
	return e
}
