package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fakeTables returns one deterministic table whose single numeric cell
// varies per call, plus decorated and non-numeric cells.
func fakeTables(call int) []Table {
	return []Table{
		{
			ID:     "fake",
			Title:  "Range latency (ns/query)",
			Header: []string{"Dataset", "WaZI", "Verdict", "Improvement"},
			Rows: [][]string{
				{"NewYork", fmt.Sprintf("%d", 100+call), "always", "+12.5%"},
				{"Japan", "200", "yes", "-3.0%"},
			},
		},
		{
			ID:     "fake",
			Title:  "Throughput",
			Header: []string{"Goroutines", "Sharded (q/s)", "Speedup"},
			Rows:   [][]string{{"4", "1000", "2.50x"}},
		},
	}
}

func TestRunWarmupAndReps(t *testing.T) {
	calls := 0
	run := NewRun(Options{Suite: "test", Warmup: 2, Reps: 3}, nil)
	res := run.Experiment("fake", func() []Table {
		calls++
		return fakeTables(calls)
	})
	if calls != 5 {
		t.Fatalf("experiment ran %d times, want 2 warmup + 3 reps = 5", calls)
	}
	if res.Warmup != 2 || res.Reps != 3 {
		t.Fatalf("result records warmup=%d reps=%d", res.Warmup, res.Reps)
	}
	if res.WallNS.N != 3 {
		t.Fatalf("wall time has %d samples, want 3", res.WallNS.N)
	}

	byName := map[string]Metric{}
	for _, m := range res.Metrics {
		byName[m.Name] = m
	}
	// The varying cell: calls 3, 4, 5 are the timed ones (after 2 warmups).
	wazi, ok := byName["fake/t0/newyork/wazi"]
	if !ok {
		t.Fatalf("missing metric; have %v", keys(byName))
	}
	if want := []float64{103, 104, 105}; !reflect.DeepEqual(wazi.Samples, want) {
		t.Fatalf("samples %v, want %v (warmup reps must be discarded)", wazi.Samples, want)
	}
	if wazi.Unit != "ns" || wazi.HigherIsBetter {
		t.Fatalf("latency metric misclassified: %+v", wazi)
	}

	// Decorated cells parse; non-numeric cells are skipped.
	imp := byName["fake/t0/newyork/improvement"]
	if len(imp.Samples) != 3 || imp.Samples[0] != 12.5 || !imp.HigherIsBetter {
		t.Fatalf("improvement metric: %+v", imp)
	}
	if _, ok := byName["fake/t0/newyork/verdict"]; ok {
		t.Fatal("non-numeric cell produced a metric")
	}
	qps := byName["fake/t1/4/sharded-q-s"]
	if qps.Unit != "q/s" || !qps.HigherIsBetter {
		t.Fatalf("throughput metric misclassified: %+v", qps)
	}
	speedup := byName["fake/t1/4/speedup"]
	if len(speedup.Samples) != 3 || speedup.Samples[0] != 2.5 || !speedup.HigherIsBetter {
		t.Fatalf("speedup metric: %+v", speedup)
	}
}

func keys(m map[string]Metric) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	run := NewRun(Options{Suite: "roundtrip", Reps: 2}, map[string]int{"scale": 1000},
		&JSONReporter{Path: path})
	call := 0
	run.Experiment("fake", func() []Table { call++; return fakeTables(call) })
	want, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Suite != "roundtrip" {
		t.Fatalf("header: %q %q", got.Schema, got.Suite)
	}
	if got.Env != want.Env {
		t.Fatalf("env round-trip: %+v vs %+v", got.Env, want.Env)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("results round-trip mismatch:\ngot  %+v\nwant %+v", got.Results, want.Results)
	}
	if got.ElapsedNS != want.ElapsedNS {
		t.Fatalf("elapsed: %d vs %d", got.ElapsedNS, want.ElapsedNS)
	}

	// The config survives as generic JSON.
	cfg, ok := got.Config.(map[string]any)
	if !ok || cfg["scale"] != float64(1000) {
		t.Fatalf("config round-trip: %#v", got.Config)
	}
}

func TestReadFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := &Report{Schema: "other/v9", Suite: "x"}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}

func TestJSONReporterWriter(t *testing.T) {
	var buf bytes.Buffer
	run := NewRun(Options{Suite: "w", Reps: 1}, nil, &JSONReporter{W: &buf})
	run.Experiment("fake", func() []Table { return fakeTables(1) })
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("stream output is not valid JSON: %v", err)
	}
	if len(r.Results) != 1 || r.Results[0].Experiment != "fake" {
		t.Fatalf("stream report: %+v", r)
	}
}

func TestTextReporterOutput(t *testing.T) {
	var buf bytes.Buffer
	run := NewRun(Options{Suite: "text", Reps: 2}, nil, &TextReporter{W: &buf})
	call := 0
	run.Experiment("fake", func() []Table { call++; return fakeTables(call) })
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"suite text",
		"== fake: Range latency (ns/query) ==",
		"[fake: wall ",
		"2 reps",
		"suite text: 1 experiment(s) in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output lacks %q:\n%s", want, out)
		}
	}

	var quiet bytes.Buffer
	qrun := NewRun(Options{Suite: "q", Reps: 1}, nil, &TextReporter{W: &quiet, Quiet: true})
	qrun.Experiment("fake", func() []Table { return fakeTables(1) })
	if _, err := qrun.Finish(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "== fake:") {
		t.Errorf("quiet output still contains tables:\n%s", quiet.String())
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Range latency (ns/query)": "range-latency-ns-query",
		"0.0016%":                  "0.0016%",
		"  CaliNev  ":              "calinev",
		"Sharded (q/s)":            "sharded-q-s",
		"% inserted":               "%-inserted",
	} {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
