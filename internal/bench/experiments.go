package bench

import (
	"fmt"
	"time"

	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/workload"
)

// Experiment couples an experiment id with its runner and a short label
// for listings. IDs named tab*/fig* match the paper's artifact numbers;
// the rest are this repository's serving-layer additions.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) []Table
}

// Experiments returns every experiment in the paper's order, followed by
// the serving-layer experiments.
func Experiments() []Experiment {
	return []Experiment{
		{"tab1", "static index property matrix", Tab1Properties},
		{"tab2", "parameter grid (paper vs this run)", Tab2Parameters},
		{"fig4", "range latency, all eleven indexes", Fig4AllIndexes},
		{"fig6", "range latency by selectivity, main six", Fig6RangeBySelectivity},
		{"fig7", "% improvement over Base", Fig7ImprovementOverBase},
		{"fig8", "range latency by dataset size", Fig8RangeByDatasetSize},
		{"fig9", "projection vs scan split", Fig9ProjectionScan},
		{"fig10", "point-query latency by dataset size", Fig10PointQuery},
		{"tab3", "build time by dataset size", Tab3BuildTime},
		{"tab4", "cost redemption vs Base", Tab4CostRedemption},
		{"tab5", "index sizes", Tab5IndexSize},
		{"fig11", "insert latency and post-insert range latency", Fig11Inserts},
		{"fig12", "range latency under workload drift", Fig12WorkloadDrift},
		{"fig13", "skipping/partitioning ablation", Fig13Ablation},
		{"sharded", "Concurrent vs Sharded throughput by goroutines", ShardedThroughput},
		{"scenarios", "Sharded under the named workload suites", ScenarioSuite},
		{"serving-http", "HTTP serving: per-request vs batched replay over the wire", ServingHTTP},
		{"storage-backends", "range latency: in-memory vs disk-cold vs disk-warm page stores", StorageBackends},
		{"repartition", "online repartitioning vs static plan under hotspot-shift", RepartitionExperiment},
		{"obs-overhead", "per-op latency with observability instruments on vs off", ObsOverhead},
		{"durability", "write latency under WAL durability policies (off / group-commit / fsync-always)", Durability},
		{"kernel-allocs", "steady-state query-kernel allocations on the RAM backend (exact-class, ratcheted to zero)", KernelAllocs},
	}
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Tab1Properties reproduces Table 1 (static index property matrix).
func Tab1Properties(Config) []Table {
	yes, no := "yes", "-"
	return []Table{{
		ID:     "tab1",
		Title:  "Key properties of indexes in the experiments (Table 1)",
		Header: []string{"Index", "SFC-based", "Query-Aware", "Learned"},
		Rows: [][]string{
			{"STR", no, no, no},
			{"CUR", no, yes, yes},
			{"Flood", no, yes, yes},
			{"QUASII", no, yes, no},
			{"Base", yes, no, no},
			{"WaZI", yes, yes, yes},
		},
	}}
}

// Tab2Parameters reproduces Table 2 (parameter grid), reporting both the
// paper's values and this run's scaled values.
func Tab2Parameters(cfg Config) []Table {
	cfg.fill()
	sizes := ""
	for i, s := range cfg.SizeLadder() {
		if i > 0 {
			sizes += ", "
		}
		sizes += fmt.Sprintf("%d", s)
	}
	return []Table{{
		ID:     "tab2",
		Title:  "Parameter setting (Table 2; this run's scaled values)",
		Header: []string{"Parameter", "Paper", "This run"},
		Rows: [][]string{
			{"Dataset size", "4M..64M (default 32M)", sizes + fmt.Sprintf(" (default %d)", cfg.Scale)},
			{"Query selectivity (%)", "0.0016, 0.0064, 0.0256, 0.1024", "same"},
			{"Leaf-node size", "256", fmt.Sprintf("%d", cfg.LeafSize)},
			{"Range-query workload size", "20,000", fmt.Sprintf("%d", cfg.Queries)},
		},
	}}
}

// Fig4AllIndexes reproduces Figure 4: average range-query latency of all
// eleven indexes at the mid selectivity, averaged over all regions.
func Fig4AllIndexes(cfg Config) []Table {
	cfg.fill()
	totals := map[string]time.Duration{}
	for _, r := range cfg.Regions {
		w := MakeWorkloads(r, cfg.Scale, cfg)
		qs := w.BySelectivity[MidSelectivity]
		half := len(qs) / 2
		for _, name := range AllIndexes {
			br := BuildIndex(name, w.Data, qs[:half], cfg)
			totals[name] += MeasureRange(br.Index, qs[half:])
		}
	}
	t := Table{
		ID:     "fig4",
		Title:  "Average range query latency, all indexes (Figure 4)",
		Header: []string{"Index", "Range latency (ns/query)"},
		Notes: []string{
			"expected shape: WaZI lowest; rank-space SFC indexes (Zpgm, HRR, QUILTS, RSMI) and QD-Gr clearly worst",
		},
	}
	for _, name := range AllIndexes {
		t.Rows = append(t.Rows, []string{name, ns(totals[name] / time.Duration(len(cfg.Regions)))})
	}
	return []Table{t}
}

// buildMainSix builds the Figure 6 lineup for one region's data/workload.
func buildMainSix(w Workloads, train []geom.Rect, cfg Config) map[string]BuildResult {
	out := map[string]BuildResult{}
	for _, name := range MainIndexes {
		out[name] = BuildIndex(name, w.Data, train, cfg)
	}
	return out
}

// Fig6RangeBySelectivity reproduces Figure 6: range latency for the six
// main indexes over 4 regions x 4 selectivities, plus a deterministic
// companion table of points scanned per query (the paper's retrieval
// cost), which is immune to machine noise. Indexes are trained on a
// held-out half of each workload and measured on the other half.
func Fig6RangeBySelectivity(cfg Config) []Table {
	cfg.fill()
	var tables []Table
	for _, sel := range sortedSelectivities() {
		t := Table{
			ID:     "fig6",
			Title:  fmt.Sprintf("Range query latency, selectivity %s (Figure 6)", selLabel(sel)),
			Header: append([]string{"Dataset"}, MainIndexes...),
		}
		c := Table{
			ID:     "fig6",
			Title:  fmt.Sprintf("Points scanned per query, selectivity %s (Figure 6 companion)", selLabel(sel)),
			Header: append([]string{"Dataset"}, MainIndexes...),
		}
		for _, r := range cfg.Regions {
			w := MakeWorkloads(r, cfg.Scale, cfg)
			qs := w.BySelectivity[sel]
			half := len(qs) / 2
			row := []string{r.String()}
			crow := []string{r.String()}
			for _, name := range MainIndexes {
				br := BuildIndex(name, w.Data, qs[:half], cfg)
				before := *br.Index.Stats()
				row = append(row, ns(MeasureRange(br.Index, qs[half:])))
				d := br.Index.Stats().Diff(before)
				crow = append(crow, fmt.Sprintf("%d", d.PointsScanned/d.RangeQueries))
			}
			t.Rows = append(t.Rows, row)
			c.Rows = append(c.Rows, crow)
		}
		t.Notes = []string{"ns/query (best of 5 passes); expected shape: WaZI lowest or tied-lowest, QUASII closest on Japan"}
		c.Notes = []string{"retrieval cost per query; deterministic"}
		tables = append(tables, t, c)
	}
	return tables
}

// Fig7ImprovementOverBase reproduces Figure 7: percentage improvement over
// Base per dataset (averaged over selectivities) and per selectivity
// (averaged over datasets).
func Fig7ImprovementOverBase(cfg Config) []Table {
	cfg.fill()
	others := []string{"QUASII", "CUR", "STR", "Flood", "WaZI"}
	// latency[region][sel][index]
	type key struct {
		r   dataset.Region
		sel float64
	}
	lat := map[key]map[string]time.Duration{}
	for _, r := range cfg.Regions {
		w := MakeWorkloads(r, cfg.Scale, cfg)
		for _, sel := range sortedSelectivities() {
			qs := w.BySelectivity[sel]
			half := len(qs) / 2
			m := map[string]time.Duration{}
			for _, name := range MainIndexes {
				br := BuildIndex(name, w.Data, qs[:half], cfg)
				m[name] = MeasureRange(br.Index, qs[half:])
			}
			lat[key{r, sel}] = m
		}
	}
	imp := func(base, x time.Duration) float64 {
		return 100 * (float64(base) - float64(x)) / float64(base)
	}
	byRegion := Table{
		ID:     "fig7",
		Title:  "% improvement over Base by data distribution (Figure 7 top)",
		Header: append([]string{"Dataset"}, others...),
	}
	for _, r := range cfg.Regions {
		row := []string{r.String()}
		for _, name := range others {
			var sum float64
			for _, sel := range sortedSelectivities() {
				m := lat[key{r, sel}]
				sum += imp(m["Base"], m[name])
			}
			row = append(row, pct(sum/float64(len(sortedSelectivities()))))
		}
		byRegion.Rows = append(byRegion.Rows, row)
	}
	bySel := Table{
		ID:     "fig7",
		Title:  "% improvement over Base by query selectivity (Figure 7 bottom)",
		Header: append([]string{"Selectivity"}, others...),
		Notes: []string{
			"expected shape: WaZI the only consistently positive column; its improvement shrinks as selectivity grows",
		},
	}
	for _, sel := range sortedSelectivities() {
		row := []string{selLabel(sel)}
		for _, name := range others {
			var sum float64
			for _, r := range cfg.Regions {
				m := lat[key{r, sel}]
				sum += imp(m["Base"], m[name])
			}
			row = append(row, pct(sum/float64(len(cfg.Regions))))
		}
		bySel.Rows = append(bySel.Rows, row)
	}
	return []Table{byRegion, bySel}
}

// Fig8RangeByDatasetSize reproduces Figure 8: range latency vs dataset size
// at the mid selectivity, averaged over regions.
func Fig8RangeByDatasetSize(cfg Config) []Table {
	cfg.fill()
	t := Table{
		ID:     "fig8",
		Title:  "Range query latency by dataset size, selectivity 0.0256% (Figure 8)",
		Header: append([]string{"Size"}, MainIndexes...),
		Notes:  []string{"ns/query; expected shape: near-linear growth, WaZI lowest at every size"},
	}
	for _, size := range cfg.SizeLadder() {
		row := []string{fmt.Sprintf("%d", size)}
		totals := map[string]time.Duration{}
		for _, r := range cfg.Regions {
			w := MakeWorkloads(r, size, cfg)
			qs := w.BySelectivity[MidSelectivity]
			half := len(qs) / 2
			for _, name := range MainIndexes {
				br := BuildIndex(name, w.Data, qs[:half], cfg)
				totals[name] += MeasureRange(br.Index, qs[half:])
			}
		}
		for _, name := range MainIndexes {
			row = append(row, ns(totals[name]/time.Duration(len(cfg.Regions))))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig9ProjectionScan reproduces Figure 9: the projection/scan split of
// range-query time at the default size and mid selectivity.
func Fig9ProjectionScan(cfg Config) []Table {
	cfg.fill()
	projT := map[string]time.Duration{}
	scanT := map[string]time.Duration{}
	for _, r := range cfg.Regions {
		w := MakeWorkloads(r, cfg.Scale, cfg)
		qs := w.BySelectivity[MidSelectivity]
		half := len(qs) / 2
		for _, name := range MainIndexes {
			br := BuildIndex(name, w.Data, qs[:half], cfg)
			ph, ok := br.Index.(Phased)
			if !ok {
				continue
			}
			p, s := MeasurePhases(ph, qs[half:])
			projT[name] += p
			scanT[name] += s
		}
	}
	t := Table{
		ID:     "fig9",
		Title:  "Projection vs scan split of range query latency (Figure 9)",
		Header: []string{"Index", "Projection (ns)", "Scan (ns)"},
		Notes: []string{
			"expected shape: Flood fastest projection; WaZI projection several times faster than Base (skipping); scan dominates; WaZI best scan",
		},
	}
	n := time.Duration(len(cfg.Regions))
	for _, name := range MainIndexes {
		t.Rows = append(t.Rows, []string{name, ns(projT[name] / n), ns(scanT[name] / n)})
	}
	return []Table{t}
}

// Fig10PointQuery reproduces Figure 10: point-query latency vs dataset
// size, averaged over regions.
func Fig10PointQuery(cfg Config) []Table {
	cfg.fill()
	t := Table{
		ID:     "fig10",
		Title:  "Point query latency by dataset size (Figure 10)",
		Header: append([]string{"Size"}, MainIndexes...),
		Notes:  []string{"ns/query; expected shape: WaZI and Base fastest, Flood close, QUASII worst"},
	}
	for _, size := range cfg.SizeLadder() {
		row := []string{fmt.Sprintf("%d", size)}
		totals := map[string]time.Duration{}
		for _, r := range cfg.Regions {
			w := MakeWorkloads(r, size, cfg)
			qs := w.BySelectivity[MidSelectivity]
			for _, name := range MainIndexes {
				br := BuildIndex(name, w.Data, qs[:len(qs)/2], cfg)
				totals[name] += MeasurePoint(br.Index, w.Points)
			}
		}
		for _, name := range MainIndexes {
			row = append(row, ns(totals[name]/time.Duration(len(cfg.Regions))))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Tab3BuildTime reproduces Table 3: build time by dataset size (seconds),
// averaged over regions.
func Tab3BuildTime(cfg Config) []Table {
	cfg.fill()
	order := []string{"Base", "CUR", "Flood", "QUASII", "STR", "WaZI"}
	t := Table{
		ID:     "tab3",
		Title:  "Build time in seconds by dataset size (Table 3)",
		Header: append([]string{"Size"}, order...),
		Notes:  []string{"expected shape: STR fastest, QUASII slowest; WaZI ~ CUR ~ 2.5-3x Base"},
	}
	for _, size := range cfg.SizeLadder() {
		row := []string{fmt.Sprintf("%d", size)}
		totals := map[string]time.Duration{}
		for _, r := range cfg.Regions {
			w := MakeWorkloads(r, size, cfg)
			qs := w.BySelectivity[MidSelectivity]
			for _, name := range order {
				totals[name] += BuildIndex(name, w.Data, qs[:len(qs)/2], cfg).Build
			}
		}
		for _, name := range order {
			row = append(row, fmt.Sprintf("%.3f", (totals[name]/time.Duration(len(cfg.Regions))).Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Tab4CostRedemption reproduces Table 4: the number of queries after which
// an index's cumulative build+query time undercuts Base's.
func Tab4CostRedemption(cfg Config) []Table {
	cfg.fill()
	order := []string{"CUR", "Flood", "QUASII", "STR", "WaZI"}
	t := Table{
		ID:     "tab4",
		Title:  "Cost-redemption vs Base: queries to amortize the build-time difference (Table 4)",
		Header: append([]string{"Data Dist."}, order...),
		Notes: []string{
			"(+) pays off after the reported number of queries; (-) never does; 'always' dominates Base outright",
			"expected shape: Flood/STR redeem instantly (cheaper builds); WaZI redeems after a finite query count; QUASII never",
		},
	}
	for _, r := range cfg.Regions {
		w := MakeWorkloads(r, cfg.Scale, cfg)
		qs := w.BySelectivity[MidSelectivity]
		half := len(qs) / 2
		base := BuildIndex("Base", w.Data, qs[:half], cfg)
		baseQ := MeasureRange(base.Index, qs[half:])
		row := []string{r.String()}
		for _, name := range order {
			br := BuildIndex(name, w.Data, qs[:half], cfg)
			q := MeasureRange(br.Index, qs[half:])
			dBuild := br.Build - base.Build
			dQuery := baseQ - q
			switch {
			case dBuild <= 0 && dQuery >= 0:
				row = append(row, "always")
			case dBuild > 0 && dQuery <= 0:
				row = append(row, "(-) never")
			case dBuild <= 0 && dQuery < 0:
				// Cheaper build, slower queries: Base wins after this many.
				n := float64(-dBuild) / float64(-dQuery)
				row = append(row, fmt.Sprintf("(-) %s", humanCount(n)))
			default:
				n := float64(dBuild) / float64(dQuery)
				row = append(row, fmt.Sprintf("(+) %s", humanCount(n)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

func humanCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Tab5IndexSize reproduces Table 5: index sizes in MB by dataset size,
// averaged over regions.
func Tab5IndexSize(cfg Config) []Table {
	cfg.fill()
	order := []string{"Base", "CUR", "Flood", "QUASII", "STR", "WaZI"}
	t := Table{
		ID:     "tab5",
		Title:  "Index sizes in MB by dataset size (Table 5)",
		Header: append([]string{"Size"}, order...),
		Notes:  []string{"expected shape: WaZI ~ Base (workload-awareness is space-free); Flood/QUASII smaller; linear growth"},
	}
	for _, size := range cfg.SizeLadder() {
		row := []string{fmt.Sprintf("%d", size)}
		totals := map[string]int64{}
		for _, r := range cfg.Regions {
			w := MakeWorkloads(r, size, cfg)
			qs := w.BySelectivity[MidSelectivity]
			for _, name := range order {
				totals[name] += BuildIndex(name, w.Data, qs[:len(qs)/2], cfg).Index.Bytes()
			}
		}
		for _, name := range order {
			row = append(row, mb(totals[name]/int64(len(cfg.Regions))))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig11Inserts reproduces Figure 11: insert latency and post-insert range
// latency for the updatable indexes (WaZI, CUR, Flood), inserting 25% of
// the dataset uniformly in five equal batches.
func Fig11Inserts(cfg Config) []Table {
	cfg.fill()
	order := []string{"WaZI", "CUR", "Flood"}
	insT := Table{
		ID:     "fig11",
		Title:  "Insert latency over insert batches (Figure 11 left)",
		Header: append([]string{"% inserted"}, order...),
		Notes:  []string{"ns/insert; expected shape: WaZI slowest (look-ahead recomputation)"},
	}
	rngT := Table{
		ID:     "fig11",
		Title:  "Range latency after inserts (Figure 11 right)",
		Header: append([]string{"% inserted"}, order...),
		Notes:  []string{"ns/query; expected shape: mild degradation with inserts"},
	}
	r := cfg.Regions[0]
	w := MakeWorkloads(r, cfg.Scale, cfg)
	qs := w.BySelectivity[MidSelectivity]
	half := len(qs) / 2
	idxs := map[string]index.Updatable{}
	for _, name := range order {
		idxs[name] = BuildIndex(name, w.Data, qs[:half], cfg).Index.(index.Updatable)
	}
	totalInserts := cfg.Scale / 4
	batch := totalInserts / 5
	inserts := workload.InsertBatch(totalInserts, cfg.Seed+11)
	for b := 0; b < 5; b++ {
		chunk := inserts[b*batch : (b+1)*batch]
		insRow := []string{fmt.Sprintf("%d%%", (b+1)*5)}
		rngRow := []string{fmt.Sprintf("%d%%", (b+1)*5)}
		for _, name := range order {
			idx := idxs[name]
			start := time.Now()
			for _, p := range chunk {
				idx.Insert(p)
			}
			insRow = append(insRow, ns(time.Since(start)/time.Duration(len(chunk))))
			rngRow = append(rngRow, ns(MeasureRange(idx, qs[half:])))
		}
		insT.Rows = append(insT.Rows, insRow)
		rngT.Rows = append(rngT.Rows, rngRow)
	}
	return []Table{insT, rngT}
}

// Fig12WorkloadDrift reproduces Figure 12: range latency of Base and WaZI
// as the workload drifts toward uniform (left) and toward another region's
// skew (right).
func Fig12WorkloadDrift(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	other := cfg.Regions[len(cfg.Regions)-1]
	if other == r {
		other = dataset.Japan
	}
	w := MakeWorkloads(r, cfg.Scale, cfg)
	qs := w.BySelectivity[MidSelectivity]
	half := len(qs) / 2
	base := BuildIndex("Base", w.Data, qs[:half], cfg).Index
	waz := BuildIndex("WaZI", w.Data, qs[:half], cfg).Index
	uniformQ := workload.Uniform(len(qs)-half, MidSelectivity, cfg.Seed+13)
	skewQ := workload.Skewed(other, len(qs)-half, MidSelectivity, cfg.Seed+14)

	mk := func(title string, target []geom.Rect) Table {
		t := Table{
			ID:     "fig12",
			Title:  title,
			Header: []string{"% change", "Base", "WaZI"},
		}
		for _, chg := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			mixed := workload.Mix(qs[half:], target, chg, cfg.Seed+15)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", chg*100),
				ns(MeasureRange(base, mixed)),
				ns(MeasureRange(waz, mixed)),
			})
		}
		return t
	}
	left := mk("Range latency under uniform workload change (Figure 12 left)", uniformQ)
	left.Notes = []string{"expected shape: Base flat; WaZI degrades gracefully, stays better"}
	right := mk(fmt.Sprintf("Range latency under skewed workload change to %v (Figure 12 right)", other), skewQ)
	right.Notes = []string{"expected shape: WaZI degrades faster and crosses Base at high % change"}
	return []Table{left, right}
}

// Fig13Ablation reproduces Figure 13: the four §6.9 variants (Base,
// Base+SK, WaZI−SK, WaZI) measured on query time, excess points, bounding
// boxes checked, and pages scanned across the three ablation selectivities.
func Fig13Ablation(cfg Config) []Table {
	cfg.fill()
	variants := []string{"Base", "WaZI", "Base+SK", "WaZI-SK"}
	metrics := []string{"Query time (ns)", "Excess points", "bbs checked", "Pages scanned"}
	tables := make([]Table, len(metrics))
	for i, m := range metrics {
		tables[i] = Table{
			ID:     "fig13",
			Title:  fmt.Sprintf("Ablation: %s (Figure 13)", m),
			Header: append([]string{"Selectivity"}, variants...),
		}
	}
	r := cfg.Regions[0]
	w := MakeWorkloads(r, cfg.Scale, cfg)
	for _, sel := range workload.AblationSelectivities {
		qs := w.BySelectivity[sel]
		half := len(qs) / 2
		rows := make([][]string, len(metrics))
		for i := range rows {
			rows[i] = []string{selLabel(sel)}
		}
		for _, name := range variants {
			br := BuildIndex(name, w.Data, qs[:half], cfg)
			z := br.Index.(*core.ZIndex)
			before := *z.Stats()
			lat := MeasureRange(z, qs[half:])
			d := z.Stats().Diff(before)
			n := int64(len(qs) - half)
			rows[0] = append(rows[0], ns(lat))
			rows[1] = append(rows[1], fmt.Sprintf("%d", d.ExcessPoints()/n))
			rows[2] = append(rows[2], fmt.Sprintf("%d", d.BBChecked/n))
			rows[3] = append(rows[3], fmt.Sprintf("%d", d.PagesScanned/n))
		}
		for i := range metrics {
			tables[i].Rows = append(tables[i].Rows, rows[i])
		}
	}
	tables[2].Notes = []string{"expected shape: look-ahead variants check 50-100x fewer bounding boxes"}
	tables[1].Notes = []string{"expected shape: adaptive partitioning (WaZI, WaZI-SK) scans fewer excess points"}
	return tables
}
