package bench

import (
	"sort"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/workload"
)

// TestAllIndexesAgreeOnSharedWorkload is the repository's cross-cutting
// integration test: every index the harness can build — the six main
// lineup, the five discarded Figure 4 baselines, and the two ablation
// variants — must return exactly the same multiset of points for the same
// queries on the same region dataset.
func TestAllIndexesAgreeOnSharedWorkload(t *testing.T) {
	cfg := tinyConfig()
	for _, region := range []dataset.Region{dataset.CaliNev, dataset.Japan} {
		w := MakeWorkloads(region, 5_000, cfg)
		train := w.BySelectivity[MidSelectivity][:100]
		ref := index.NewBrute(w.Data)

		names := append(append([]string{}, AllIndexes...), "Base+SK", "WaZI-SK")
		indexes := map[string]index.Index{}
		for _, name := range names {
			indexes[name] = BuildIndex(name, w.Data, train, cfg).Index
		}

		var probes []geom.Rect
		probes = append(probes, w.BySelectivity[0.1024e-2][:10]...)
		probes = append(probes, w.BySelectivity[0.0016e-2][:10]...)
		probes = append(probes, workload.Uniform(10, 0.0256e-2, 9)...)
		probes = append(probes,
			geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, // superset
			geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3},   // disjoint
		)

		for qi, r := range probes {
			want := canonical(ref.RangeQuery(r))
			for _, name := range names {
				got := canonical(indexes[name].RangeQuery(r))
				if len(got) != len(want) {
					t.Fatalf("%v query %d: %s returned %d points, brute force %d",
						region, qi, name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v query %d: %s disagrees with brute force at point %d",
							region, qi, name, i)
					}
				}
			}
		}

		// Point queries must agree too.
		for i := 0; i < 200; i += 10 {
			p := w.Data[i]
			for _, name := range names {
				if !indexes[name].PointQuery(p) {
					t.Fatalf("%v: %s lost indexed point %v", region, name, p)
				}
			}
		}
	}
}

func canonical(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}
