package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/wazi-index/wazi/internal/dataset"
)

// TestDurabilityWithinBounds runs the durability experiment at smoke scale
// and sanity-checks its shape: a row per policy, parsable positive
// latencies, and write-p95 ratios that are positive and not absurd. The
// acceptance target is group-commit within 1.5x of WAL-off, but a real
// fsync costs hundreds of microseconds against a sub-microsecond in-memory
// insert, so the hard gate here is deliberately loose (CI disks vary by
// orders of magnitude); the bench report records the actual ratio for the
// BENCH trajectory.
func TestDurabilityWithinBounds(t *testing.T) {
	cfg := Config{Scale: 20_000, Queries: 400, Regions: []dataset.Region{dataset.NewYork}}
	tables := Durability(cfg)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	ratios := map[string]float64{}
	variants := 0
	for _, row := range tables[0].Rows {
		if strings.HasPrefix(row[0], "write p95 ratio") {
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatalf("unparsable ratio in %v: %v", row, err)
			}
			ratios[row[0]] = v
			continue
		}
		variants++
		p95, err := strconv.ParseFloat(row[2], 64)
		if err != nil || p95 <= 0 {
			t.Fatalf("variant row %v has unusable write p95 (%v)", row, err)
		}
	}
	if variants != 3 {
		t.Fatalf("got %d variant rows, want 3 (off/group/always)", variants)
	}
	if len(ratios) != 2 {
		t.Fatalf("got ratio rows %v, want group/off and always/off", ratios)
	}
	for name, v := range ratios {
		if v <= 0 || v > 20_000 {
			t.Fatalf("%s = %.3f, want a sane positive ratio", name, v)
		}
	}
}
