package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
)

// tinyConfig keeps the smoke tests fast: every experiment must run end to
// end and produce well-formed tables, even at toy scale.
func tinyConfig() Config {
	return Config{
		Scale:        4_000,
		Queries:      200,
		PointQueries: 300,
		LeafSize:     128,
		Seed:         1,
		Regions:      []dataset.Region{dataset.NewYork, dataset.Japan},
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	cfg := tinyConfig()
	for _, e := range Experiments() {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tb := range tables {
			if tb.ID != e.ID {
				t.Errorf("%s: table carries id %s", e.ID, tb.ID)
			}
			if len(tb.Header) == 0 || len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", e.ID, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Errorf("%s: ragged row %v vs header %v", e.ID, row, tb.Header)
				}
			}
			s := tb.String()
			if !strings.Contains(s, tb.Title) {
				t.Errorf("%s: rendering lacks the title", e.ID)
			}
		}
	}
}

func TestBuildIndexAllNames(t *testing.T) {
	cfg := tinyConfig()
	w := MakeWorkloads(dataset.CaliNev, 3_000, cfg)
	qs := w.BySelectivity[MidSelectivity]
	names := append(append([]string{}, AllIndexes...), "Base+SK", "WaZI-SK")
	for _, name := range names {
		br := BuildIndex(name, w.Data, qs[:50], cfg)
		if br.Index.Len() != len(w.Data) {
			t.Errorf("%s: Len = %d, want %d", name, br.Index.Len(), len(w.Data))
		}
		if br.Build <= 0 {
			t.Errorf("%s: non-positive build time", name)
		}
		// Every index answers the same query identically; spot check count
		// against the first index built.
		if got := len(br.Index.RangeQuery(qs[60])); got != len(BuildIndex("Base", w.Data, qs[:50], cfg).Index.RangeQuery(qs[60])) {
			t.Errorf("%s: result size disagrees with Base on a shared query", name)
		}
	}
}

func TestBuildIndexUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown index name should panic")
		}
	}()
	BuildIndex("nope", []geom.Point{{X: 0, Y: 0}}, nil, tinyConfig())
}

func TestMeasureHelpers(t *testing.T) {
	cfg := tinyConfig()
	w := MakeWorkloads(dataset.Iberia, 2_000, cfg)
	qs := w.BySelectivity[MidSelectivity]
	br := BuildIndex("WaZI", w.Data, qs[:50], cfg)
	if d := MeasureRange(br.Index, qs[50:150]); d <= 0 {
		t.Error("MeasureRange returned non-positive duration")
	}
	if d := MeasurePoint(br.Index, w.Points[:100]); d <= 0 {
		t.Error("MeasurePoint returned non-positive duration")
	}
	ph := br.Index.(Phased)
	p, s := MeasurePhases(ph, qs[50:150])
	if p <= 0 || s < 0 {
		t.Errorf("MeasurePhases = (%v, %v)", p, s)
	}
	if MeasureRange(br.Index, nil) != 0 || MeasurePoint(br.Index, nil) != 0 {
		t.Error("empty workloads must measure zero")
	}
	if p, s := MeasurePhases(ph, nil); p != 0 || s != 0 {
		t.Error("empty phased workload must measure zero")
	}
}

func TestSizeLadder(t *testing.T) {
	cfg := Config{Scale: 80}
	cfg.fill()
	got := cfg.SizeLadder()
	want := []int{10, 20, 40, 80, 160}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SizeLadder = %v, want %v", got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if ns(1500*time.Nanosecond) != "1500" {
		t.Errorf("ns formatting: %s", ns(1500*time.Nanosecond))
	}
	if mb(1<<20) != "1.00" {
		t.Errorf("mb formatting: %s", mb(1<<20))
	}
	if selLabel(0.0256e-2) != "0.0256%" {
		t.Errorf("selLabel formatting: %s", selLabel(0.0256e-2))
	}
	if humanCount(2_500_000) != "2.5M" || humanCount(42_000) != "42k" || humanCount(9) != "9" {
		t.Error("humanCount formatting broken")
	}
}
