package bench

import (
	"fmt"
	"runtime"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// ObsOverhead measures what the always-on observability instruments (fan-out
// width and scan-latency histograms, pruned-shard counters) cost on the
// Sharded hot path, by running identical single-client operation streams
// against a default (instrumented) index and a WithoutObservability twin.
// The acceptance target is <= 5% on p95; the number lands in the bench
// report so regressions show up in the BENCH trajectory.
func ObsOverhead(cfg Config) []Table {
	cfg.fill()
	r := cfg.Regions[0]
	data := dataset.Generate(r, cfg.Scale, cfg.Seed)
	train := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+21)
	qs := workload.Skewed(r, cfg.Queries, MidSelectivity, cfg.Seed+31)
	ins := workload.InsertBatch(cfg.Queries/10+1, cfg.Seed+41)
	ops := workload.MixedOps(qs, ins, 0.1, cfg.Seed+51)
	clients := runtime.GOMAXPROCS(0)

	build := func(extra ...wazi.ShardedOption) *wazi.Sharded {
		opts := append([]wazi.ShardedOption{
			wazi.WithShards(max(8, clients)),
			wazi.WithIndexOptions(wazi.WithLeafSize(cfg.LeafSize), wazi.WithSeed(cfg.Seed)),
			wazi.WithoutAutoRebuild(),
		}, extra...)
		s, err := wazi.NewSharded(data, train, opts...)
		if err != nil {
			panic(err)
		}
		return s
	}

	t := Table{
		ID: "obs-overhead",
		Title: fmt.Sprintf("Observability overhead on the Sharded hot path (%s, %d points, %d ops)",
			r, cfg.Scale, len(ops)),
		Header: []string{"Variant", "p50 (ns)", "p95 (ns)", "p99 (ns)"},
		Notes: []string{
			"single-client per-op latency, 10% writes; acceptance target: instrumented p95 within 5% of off",
		},
	}

	// Warm both variants with one untimed pass so neither side pays
	// first-touch costs inside the measured window, then time.
	type variant struct {
		name string
		idx  *wazi.Sharded
	}
	variants := []variant{
		{"metrics off", build(wazi.WithoutObservability())},
		{"metrics on", build()},
	}
	p95 := map[string]float64{}
	for _, v := range variants {
		measureOpLatencies(v.idx, ops)
		lat := measureOpLatencies(v.idx, ops)
		v.idx.Close()
		p95[v.name] = lat.P95
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.0f", lat.P50),
			fmt.Sprintf("%.0f", lat.P95),
			fmt.Sprintf("%.0f", lat.P99),
		})
	}
	ratio := 0.0
	if p95["metrics off"] > 0 {
		ratio = p95["metrics on"] / p95["metrics off"]
	}
	t.Rows = append(t.Rows, []string{"p95 ratio (on/off)", "", fmt.Sprintf("%.3f", ratio), ""})
	return []Table{t}
}
