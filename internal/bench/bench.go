// Package bench is the experiment engine that regenerates every table and
// figure of the paper's evaluation section (§6) on the synthetic region
// datasets, plus the serving-layer experiments this repository adds.
// Each experiment is a function from a Config to one or more Tables;
// cmd/waziexp runs them under internal/bench/harness (warmup,
// repetitions, summary statistics, JSON reports), bench_test.go wraps
// them in testing.B benchmarks, and Suites groups them into named runs
// (smoke, paper, serving, full).
//
// Scale note: the paper runs 4–64 million points and 20,000 queries on a
// C++ testbed. The defaults here are scaled down (see Config) so the full
// suite completes in minutes on a laptop; every comparison the paper makes
// is relative (which index wins, by what factor, where crossovers fall),
// and those shapes are what EXPERIMENTS.md records.
package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/wazi-index/wazi/internal/baselines/cur"
	"github.com/wazi-index/wazi/internal/baselines/flood"
	"github.com/wazi-index/wazi/internal/baselines/hrr"
	"github.com/wazi-index/wazi/internal/baselines/qdgr"
	"github.com/wazi-index/wazi/internal/baselines/quasii"
	"github.com/wazi-index/wazi/internal/baselines/quilts"
	"github.com/wazi-index/wazi/internal/baselines/rsmi"
	"github.com/wazi-index/wazi/internal/baselines/str"
	"github.com/wazi-index/wazi/internal/baselines/zpgm"
	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/core"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/workload"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale is the default dataset size per region. The paper's default is
	// 32 million; ours defaults to 100,000 (ratio-preserving ladders hang
	// off this value).
	Scale int
	// Queries is the range-query workload size (paper: 20,000).
	Queries int
	// PointQueries is the point-query workload size (paper: 50,000).
	PointQueries int
	// LeafSize is the page capacity L (paper: 256).
	LeafSize int
	// Seed drives all data, workload, and construction randomness.
	Seed int64
	// Regions selects the datasets; nil means all four.
	Regions []dataset.Region
}

// DefaultConfig returns the scaled-down defaults.
func DefaultConfig() Config {
	return Config{
		Scale:        100_000,
		Queries:      2_000,
		PointQueries: 5_000,
		LeafSize:     256,
		Seed:         1,
	}
}

// Filled returns a copy of c with package defaults applied to every unset
// field, so the effective configuration can be recorded (e.g. in a
// harness report) exactly as the experiments will see it.
func (c Config) Filled() Config {
	c.fill()
	return c
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 100_000
	}
	if c.Queries <= 0 {
		c.Queries = 2_000
	}
	if c.PointQueries <= 0 {
		c.PointQueries = 5_000
	}
	if c.LeafSize <= 0 {
		c.LeafSize = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Regions) == 0 {
		c.Regions = dataset.Regions()
	}
}

// SizeLadder mirrors the paper's [4, 8, 16, 32, 64] million ladder around
// Scale: Scale×{1/8, 1/4, 1/2, 1, 2}, labelled by their absolute size.
func (c Config) SizeLadder() []int {
	return []int{c.Scale / 8, c.Scale / 4, c.Scale / 2, c.Scale, c.Scale * 2}
}

// MainIndexes is the paper's six-index lineup used in Figures 6–12.
var MainIndexes = []string{"QUASII", "CUR", "STR", "Flood", "Base", "WaZI"}

// AllIndexes is the eleven-index lineup of Figure 4.
var AllIndexes = []string{
	"Base", "CUR", "Flood", "HRR", "QD-Gr", "QUASII", "QUILTS", "RSMI", "STR", "WaZI", "Zpgm",
}

// BuildResult couples a built index with its construction time.
type BuildResult struct {
	Index index.Index
	Build time.Duration
}

// BuildIndex constructs one index by name over data with the anticipated
// workload.
func BuildIndex(name string, pts []geom.Point, queries []geom.Rect, cfg Config) BuildResult {
	cfg.fill()
	start := time.Now()
	var idx index.Index
	switch name {
	case "Base":
		z, err := core.BuildBase(pts, core.Options{LeafSize: cfg.LeafSize, DisableSkipping: true, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		idx = z
	case "Base+SK":
		z, err := core.BuildBase(pts, core.Options{LeafSize: cfg.LeafSize, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		idx = z
	case "WaZI":
		z, err := core.BuildWaZI(pts, queries, core.Options{LeafSize: cfg.LeafSize, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		idx = z
	case "WaZI-SK":
		z, err := core.BuildWaZI(pts, queries, core.Options{LeafSize: cfg.LeafSize, DisableSkipping: true, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		idx = z
	case "STR":
		idx = str.Build(pts, str.Options{LeafSize: cfg.LeafSize})
	case "CUR":
		idx = cur.Build(pts, queries, cur.Options{LeafSize: cfg.LeafSize})
	case "Flood":
		idx = flood.Build(pts, flood.Options{SampleQueries: queries})
	case "QUASII":
		idx = quasii.Build(pts, queries)
	case "Zpgm":
		idx = zpgm.Build(pts, 0)
	case "HRR":
		idx = hrr.Build(pts, hrr.Options{LeafSize: cfg.LeafSize})
	case "QD-Gr":
		idx = qdgr.Build(pts, queries, qdgr.Options{MinBlock: cfg.LeafSize})
	case "QUILTS":
		idx = quilts.Build(pts, queries)
	case "RSMI":
		idx = rsmi.Build(pts, 0)
	default:
		panic("bench: unknown index " + name)
	}
	return BuildResult{Index: idx, Build: time.Since(start)}
}

// Workloads bundles one region's experiment inputs.
type Workloads struct {
	Region dataset.Region
	Data   []geom.Point
	// BySelectivity maps each Table 2 selectivity to a skewed workload.
	BySelectivity map[float64][]geom.Rect
	// Points are the point queries sampled from the data.
	Points []geom.Point
}

// MakeWorkloads generates a region's data and workloads at a given size.
func MakeWorkloads(r dataset.Region, size int, cfg Config) Workloads {
	cfg.fill()
	w := Workloads{
		Region:        r,
		Data:          dataset.Generate(r, size, cfg.Seed),
		BySelectivity: map[float64][]geom.Rect{},
	}
	sels := append(append([]float64{}, workload.Selectivities...), workload.AblationSelectivities...)
	for _, sel := range sels {
		if _, ok := w.BySelectivity[sel]; !ok {
			w.BySelectivity[sel] = workload.Skewed(r, cfg.Queries, sel, cfg.Seed+int64(sel*1e9))
		}
	}
	w.Points = workload.PointQueries(w.Data, cfg.PointQueries, cfg.Seed+7)
	return w
}

// MidSelectivity is the headline selectivity used by Figures 4, 8, 9.
const MidSelectivity = 0.0256e-2

// measureRepeats controls latency measurement: one untimed warmup pass,
// then the minimum over this many timed passes. The minimum is the
// standard noise-robust estimator for microbenchmark latency — scheduler
// preemption, noisy neighbours, and GC only ever add time, never remove
// it. Counter-based metrics (points scanned, bounding boxes checked) are
// reported alongside latency in the experiment tables as the
// deterministic, machine-independent reproduction evidence.
const measureRepeats = 5

// MeasureRange returns the best-of-N average range-query latency of idx
// over queries, after a warmup pass.
func MeasureRange(idx index.Index, queries []geom.Rect) time.Duration {
	if len(queries) == 0 {
		return 0
	}
	for _, r := range queries {
		_ = idx.RangeQuery(r)
	}
	best := time.Duration(0)
	for t := 0; t < measureRepeats; t++ {
		start := time.Now()
		for _, r := range queries {
			_ = idx.RangeQuery(r)
		}
		if d := time.Since(start) / time.Duration(len(queries)); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// MeasurePoint returns the best-of-N average point-query latency, after a
// warmup pass.
func MeasurePoint(idx index.Index, pts []geom.Point) time.Duration {
	if len(pts) == 0 {
		return 0
	}
	for _, p := range pts {
		_ = idx.PointQuery(p)
	}
	best := time.Duration(0)
	for t := 0; t < measureRepeats; t++ {
		start := time.Now()
		for _, p := range pts {
			_ = idx.PointQuery(p)
		}
		if d := time.Since(start) / time.Duration(len(pts)); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// Phased is implemented by indexes that can split a range query into
// projection and scan phases (Figure 9).
type Phased interface {
	RangeQueryPhased(r geom.Rect) (pts []geom.Point, projection, scan time.Duration)
}

// MeasurePhases returns the average projection and scan durations.
func MeasurePhases(idx Phased, queries []geom.Rect) (projection, scan time.Duration) {
	if len(queries) == 0 {
		return 0, 0
	}
	for _, r := range queries {
		_, p, s := idx.RangeQueryPhased(r)
		projection += p
		scan += s
	}
	n := time.Duration(len(queries))
	return projection / n, scan / n
}

// Table is a rendered experiment result. It is the harness's table type:
// experiments produce Tables, the harness renders them as text, mines
// their numeric cells into metrics, and serializes them into BENCH_*.json
// reports.
type Table = harness.Table

// ns formats a duration as integer nanoseconds.
func ns(d time.Duration) string { return fmt.Sprintf("%d", d.Nanoseconds()) }

// mb formats bytes as megabytes with two decimals.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// selLabel formats a selectivity fraction as the paper's percent notation.
func selLabel(sel float64) string { return fmt.Sprintf("%.4f%%", sel*100) }

// sortedSelectivities returns the Table 2 selectivities in ascending order.
func sortedSelectivities() []float64 {
	out := append([]float64{}, workload.Selectivities...)
	sort.Float64s(out)
	return out
}
