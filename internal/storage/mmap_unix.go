//go:build (linux || darwin || freebsd || netbsd || openbsd) && (amd64 || arm64 || riscv64 || loong64 || ppc64le || mips64le || 386 || amd64p32 || arm || wasm)

package storage

import (
	"os"
	"syscall"
	"unsafe"

	"github.com/wazi-index/wazi/internal/geom"
)

// mmapSupported reports whether the zero-copy mapping path is available on
// this platform. The build tags restrict it to unix-likes with working
// syscall.Mmap AND little-endian architectures: the page-file format is
// little-endian, and the zero-copy path reinterprets file bytes as
// []geom.Point in place, which is only a correct decode where the in-memory
// byte order matches the on-file one. Everywhere else the disk store falls
// back to the pread+decode path transparently.
const mmapSupported = true

// minMapBytes is the smallest mapping ever created. Mapping generously past
// the current end of file is deliberate: extending the file inside an
// existing mapping needs no remap, and pages past EOF are merely unusable
// (never touched — slot offsets are bounded by the file size), not unsafe.
const minMapBytes = 4 << 20

// fileMap is one read-only shared mapping of a page file. Mappings are
// created by mapFile, grown by mapping the file AGAIN at a larger size
// (never by moving the old one: borrowed views and cached pages alias old
// mappings, which therefore stay valid until the store's final teardown),
// and released by munmap only when no pinned view can reference them.
type fileMap struct {
	data []byte
}

// mapFile maps at least want bytes of f read-only and shared. Shared
// mappings on a unified-page-cache kernel are coherent with WriteAt on the
// same file, which is what keeps cached mmap-backed pages truthful across
// in-place slot writes.
func mapFile(f *os.File, want int64) (*fileMap, error) {
	n := want
	if n < minMapBytes {
		n = minMapBytes
	}
	// Round up to a page multiple; mmap lengths need not be, but keeping
	// them aligned makes the doubling arithmetic in remap exact.
	pg := int64(os.Getpagesize())
	n = (n + pg - 1) / pg * pg
	data, err := syscall.Mmap(int(f.Fd()), 0, int(n), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &fileMap{data: data}, nil
}

// unmap releases the mapping. The caller must guarantee no borrowed view or
// cached page can still alias it.
func (m *fileMap) unmap() {
	if m.data != nil {
		syscall.Munmap(m.data)
		m.data = nil
	}
}

// covers reports whether the byte range [off, off+n) lies inside the
// mapping.
func (m *fileMap) covers(off, n int64) bool {
	return off >= 0 && n >= 0 && off+n <= int64(len(m.data))
}

// pointsAt reinterprets count points starting at byte offset off as a
// []geom.Point without copying. The slot layout guarantees 8-byte alignment
// (the header is 64 bytes, slots are 48+16·cap bytes), which unsafe.Slice
// requires for float64 loads; an assertion guards the arithmetic anyway.
func (m *fileMap) pointsAt(off int64, count int) []geom.Point {
	if count == 0 {
		return nil
	}
	if off%8 != 0 {
		panic("storage: misaligned point slab in page-file mapping")
	}
	return unsafe.Slice((*geom.Point)(unsafe.Pointer(&m.data[off])), count)
}
