// Package storage provides the clustered page abstraction shared by the
// indexes in this repository, together with the instrumentation counters the
// paper's ablation study reports (pages scanned, bounding boxes checked,
// points filtered, excess points).
//
// A Page holds up to a fixed capacity of points in arbitrary order (§3: "we
// consider the data points within a page to be stored in random order"). An
// index is clustered: points of consecutive leaf nodes live in consecutive
// pages.
package storage

import (
	"sync/atomic"

	"github.com/wazi-index/wazi/internal/geom"
)

// Page is one leaf page of a clustered index.
type Page struct {
	Pts []geom.Point
}

// Len returns the number of points stored in the page.
func (p *Page) Len() int { return len(p.Pts) }

// Filter appends to dst the points of the page that fall inside r and
// returns the extended slice. The caller's Stats, if any, must be updated
// separately; Filter itself is allocation-free apart from dst growth.
func (p *Page) Filter(r geom.Rect, dst []geom.Point) []geom.Point {
	for _, pt := range p.Pts {
		if r.Contains(pt) {
			dst = append(dst, pt)
		}
	}
	return dst
}

// Contains reports whether the page stores a point equal to pt.
func (p *Page) Contains(pt geom.Point) bool {
	for _, q := range p.Pts {
		if q == pt {
			return true
		}
	}
	return false
}

// Remove deletes one occurrence of pt from the page, returning whether a
// point was removed.
func (p *Page) Remove(pt geom.Point) bool {
	for i, q := range p.Pts {
		if q == pt {
			p.Pts[i] = p.Pts[len(p.Pts)-1]
			p.Pts = p.Pts[:len(p.Pts)-1]
			return true
		}
	}
	return false
}

// Bytes returns the approximate in-memory footprint of the page.
func (p *Page) Bytes() int64 {
	return int64(cap(p.Pts))*16 + 24 // 16 bytes per point + slice header
}

// Stats accumulates the access counters reported in the paper's evaluation
// (Figure 9 projection/scan split and the Figure 13 ablation metrics). All
// counters are cumulative; callers snapshot and subtract, or Reset between
// measurement windows.
type Stats struct {
	// RangeQueries counts range queries executed.
	RangeQueries int64
	// PointQueries counts point queries executed.
	PointQueries int64
	// NodesVisited counts internal tree nodes visited during projection.
	NodesVisited int64
	// BBChecked counts leaf bounding-box overlap tests performed during the
	// scanning phase (Figure 13 bottom-left).
	BBChecked int64
	// PagesScanned counts pages whose points were filtered (Figure 13
	// bottom-right).
	PagesScanned int64
	// PointsScanned counts points compared against a query rectangle — the
	// paper's retrieval cost.
	PointsScanned int64
	// ResultPoints counts points returned. ExcessPoints (Figure 13
	// top-right) is PointsScanned - ResultPoints.
	ResultPoints int64
	// LookaheadJumps counts range-query steps that followed a look-ahead
	// pointer instead of the next pointer.
	LookaheadJumps int64
	// Inserts and Deletes count update operations.
	Inserts int64
	Deletes int64
	// PageSplits and PageMerges count structural updates triggered by
	// overflowing/underflowing pages.
	PageSplits int64
	PageMerges int64
	// CacheHits, CacheMisses, and CacheEvictions are the block-cache
	// counters of a disk-resident PageStore (always zero for the
	// RAM-resident backend). The store routes them here through
	// SetStatsSink so index- and shard-level Stats surface them.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// ExcessPoints returns the number of points scanned but not returned —
// the redundant work metric of the ablation study.
func (s *Stats) ExcessPoints() int64 { return s.PointsScanned - s.ResultPoints }

// Reset zeroes all counters. Safe against concurrent AtomicAdd callers.
func (s *Stats) Reset() {
	for _, f := range s.fields() {
		atomic.StoreInt64(f, 0)
	}
}

// fields lists the counters in declaration order, so the atomic helpers
// below stay in sync with the struct definition.
func (s *Stats) fields() [15]*int64 {
	return [15]*int64{
		&s.RangeQueries, &s.PointQueries, &s.NodesVisited, &s.BBChecked,
		&s.PagesScanned, &s.PointsScanned, &s.ResultPoints, &s.LookaheadJumps,
		&s.Inserts, &s.Deletes, &s.PageSplits, &s.PageMerges,
		&s.CacheHits, &s.CacheMisses, &s.CacheEvictions,
	}
}

// AtomicAdd folds the delta d into s with atomic additions, skipping zero
// fields. Query paths accumulate a per-query Stats on the stack and flush it
// here once, which is what makes an index safe to read from many goroutines
// at once (the serving layer in the root package relies on this).
func (s *Stats) AtomicAdd(d Stats) {
	dst := s.fields()
	src := d.fields()
	for i, f := range dst {
		if v := *src[i]; v != 0 {
			atomic.AddInt64(f, v)
		}
	}
}

// AtomicSnapshot returns a consistent-enough copy of the counters using
// atomic loads, for readers that run concurrently with AtomicAdd writers.
func (s *Stats) AtomicSnapshot() Stats {
	var out Stats
	dst := out.fields()
	for i, f := range s.fields() {
		*dst[i] = atomic.LoadInt64(f)
	}
	return out
}

// Add returns the field-wise sum of s and o, for aggregating counters
// across shards.
func (s Stats) Add(o Stats) Stats {
	dst := s.fields()
	for i, f := range o.fields() {
		*dst[i] += *f
	}
	return s
}

// Diff returns the counter deltas accumulated since an earlier snapshot.
func (s Stats) Diff(since Stats) Stats {
	dst := s.fields()
	for i, f := range since.fields() {
		*dst[i] -= *f
	}
	return s
}
