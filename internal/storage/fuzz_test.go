package storage

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// FuzzViewInvalidation fuzzes the ordering of borrowed-view lifetimes
// against every invalidation source the disk store has — Update, Free,
// eviction (2-page cache), DropCaches, file growth (mapping growth), and
// store Close with views still pinned — in both read modes. Each page
// carries sentinel content; a pinned view must read back exactly the bytes
// it was pinned over no matter which invalidations happen around it, and
// the pin ledger must drain to zero with the mappings reaped at the end.
func FuzzViewInvalidation(f *testing.F) {
	f.Add([]byte{0, 6, 12, 3, 18, 9, 4, 24, 5, 1, 30, 2, 36, 3, 42, 4})
	f.Add([]byte{3, 3, 3, 5, 2, 2, 4, 4, 0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 129, 64, 33, 17, 99})
	f.Fuzz(func(t *testing.T, ops []byte) {
		for _, disableMmap := range []bool{false, true} {
			if !mmapSupported && !disableMmap {
				continue
			}
			runViewInvalidation(t, ops, disableMmap)
		}
	})
}

func runViewInvalidation(t *testing.T, ops []byte, disableMmap bool) {
	d, err := CreatePageFile(filepath.Join(t.TempDir(), "fuzz.pages"),
		DiskOptions{SlotCap: 4, CachePages: 2, DisableMmap: disableMmap})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			d.Close()
		}
	}()
	b := geom.Rect{MaxX: 1, MaxY: 1}

	type heldView struct {
		v    PageView
		id   PageID
		want []geom.Point
	}
	var (
		live   []PageID
		model  = map[PageID][]geom.Point{}
		pinned []heldView
		tag    int
	)
	sentinel := func(n int) []geom.Point {
		tag++
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: float64(tag), Y: float64(i)}
		}
		return pts
	}
	isPinned := func(id PageID) bool {
		for _, h := range pinned {
			if h.id == id {
				return true
			}
		}
		return false
	}
	checkView := func(h heldView, ctx string) {
		t.Helper()
		if len(h.v.Pts) != len(h.want) {
			t.Fatalf("%s: view of page %d has %d points, want %d", ctx, h.id, len(h.v.Pts), len(h.want))
		}
		for i := range h.want {
			if h.v.Pts[i] != h.want[i] {
				t.Fatalf("%s: view of page %d: point %d = %v, want %v (bytes changed under a pin)",
					ctx, h.id, i, h.v.Pts[i], h.want[i])
			}
		}
	}
	// pickUnpinned selects a live page with no pinned view: Update/Free of
	// a page under its own pinned view is the documented caller hazard, so
	// the fuzzer stays on the legal surface.
	pickUnpinned := func(sel byte) (PageID, bool) {
		for off := 0; off < len(live); off++ {
			id := live[(int(sel)+off)%len(live)]
			if !isPinned(id) {
				return id, true
			}
		}
		return NoPage, false
	}

	for _, op := range ops {
		sel := op >> 3
		switch op % 6 {
		case 0: // alloc (sizes 0..9 cover empty, single-slot, and chains)
			pts := sentinel(int(sel) % 10)
			id := d.Alloc(pts, b)
			live = append(live, id)
			model[id] = pts
		case 1: // update an unpinned page, possibly re-chaining it
			if id, ok := pickUnpinned(sel); ok {
				pts := sentinel(int(sel) % 10)
				d.Update(id, pts, b)
				model[id] = pts
			}
		case 2: // free an unpinned page (parks slots while views pin others)
			if id, ok := pickUnpinned(sel); ok {
				d.Free(id)
				delete(model, id)
				for i, l := range live {
					if l == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
		case 3: // pin a view over any live page
			if len(live) > 0 && len(pinned) < 6 {
				id := live[int(sel)%len(live)]
				h := heldView{v: d.View(id), id: id, want: model[id]}
				checkView(h, "at pin time")
				pinned = append(pinned, h)
			}
		case 4: // release the oldest pin, verifying its bytes never moved
			if len(pinned) > 0 {
				h := pinned[0]
				pinned = pinned[1:]
				checkView(h, "at release time")
				h.v.Release()
			}
		case 5: // invalidate: every cached page detaches
			d.DropCaches()
		}
	}

	// Every surviving page must read back its model content past all the
	// churn above, through both read surfaces.
	for _, id := range live {
		h := heldView{v: d.View(id), id: id, want: model[id]}
		checkView(h, "final sweep")
		h.v.Release()
		if got, want := len(d.Page(id).Pts), len(model[id]); got != want {
			t.Fatalf("final sweep: Page(%d) has %d points, want %d", id, got, want)
		}
	}

	// Close with views still pinned: the recycle guard defers mapping
	// teardown to the last unpin, so pinned views must stay readable even
	// after the store is closed, and the reap must fire exactly when the
	// ledger drains.
	closed = true
	if err := d.Close(); err != nil {
		t.Fatalf("Close with %d pins: %v", len(pinned), err)
	}
	for _, h := range pinned {
		checkView(h, "after Close, before release")
		h.v.Release()
	}
	pinned = nil
	if n := d.Pins(); n != 0 {
		t.Fatalf("pin ledger did not drain: %d left", n)
	}
	d.mu.Lock()
	reaped, maps := d.reaped, len(d.maps)
	d.mu.Unlock()
	if !reaped || maps != 0 {
		t.Fatalf("mappings not reaped after close + last unpin (reaped=%v, %d maps)", reaped, maps)
	}
}

// FuzzOpenPageFile fuzzes the warm-start adoption path: OpenPageFile over
// arbitrary bytes must refuse corrupt files with an error — never panic —
// and any file it does accept must be fully traversable (every live page
// readable) without panicking either, since post-open I/O panics are the
// documented contract for validated files only.
func FuzzOpenPageFile(f *testing.F) {
	dir, err := os.MkdirTemp("", "wazi-fuzz-pages")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	seedPath := filepath.Join(dir, "seed.pages")
	d, err := CreatePageFile(seedPath, DiskOptions{SlotCap: 4, CachePages: 4})
	if err != nil {
		f.Fatal(err)
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	d.Alloc([]geom.Point{{X: 0.1, Y: 0.2}, {X: 0.3, Y: 0.4}}, b)
	chained := d.Alloc(make([]geom.Point, 11), b) // 3-slot chain
	d.Alloc(nil, b)                               // empty page
	d.Free(chained)
	if err := d.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[20] ^= 0x01 // slot-count field
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.pages")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := OpenPageFile(path, DiskOptions{CachePages: 8})
		if err != nil {
			return
		}
		defer st.Close()
		live := 0
		for i := int32(0); i < st.slots; i++ {
			id := PageID(i)
			if n, ok := st.PageLen(id); ok {
				live++
				pg := st.Page(id)
				if pg.Len() != n {
					t.Fatalf("PageLen(%d) = %d but Page holds %d points", id, n, pg.Len())
				}
			}
		}
		if live != st.PageCount() {
			t.Fatalf("PageCount = %d but %d live heads found", st.PageCount(), live)
		}
	})
}
