package storage

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

// FuzzOpenPageFile fuzzes the warm-start adoption path: OpenPageFile over
// arbitrary bytes must refuse corrupt files with an error — never panic —
// and any file it does accept must be fully traversable (every live page
// readable) without panicking either, since post-open I/O panics are the
// documented contract for validated files only.
func FuzzOpenPageFile(f *testing.F) {
	dir, err := os.MkdirTemp("", "wazi-fuzz-pages")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	seedPath := filepath.Join(dir, "seed.pages")
	d, err := CreatePageFile(seedPath, DiskOptions{SlotCap: 4, CachePages: 4})
	if err != nil {
		f.Fatal(err)
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	d.Alloc([]geom.Point{{X: 0.1, Y: 0.2}, {X: 0.3, Y: 0.4}}, b)
	chained := d.Alloc(make([]geom.Point, 11), b) // 3-slot chain
	d.Alloc(nil, b)                               // empty page
	d.Free(chained)
	if err := d.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[20] ^= 0x01 // slot-count field
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.pages")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := OpenPageFile(path, DiskOptions{CachePages: 8})
		if err != nil {
			return
		}
		defer st.Close()
		live := 0
		for i := int32(0); i < st.slots; i++ {
			id := PageID(i)
			if n, ok := st.PageLen(id); ok {
				live++
				pg := st.Page(id)
				if pg.Len() != n {
					t.Fatalf("PageLen(%d) = %d but Page holds %d points", id, n, pg.Len())
				}
			}
		}
		if live != st.PageCount() {
			t.Fatalf("PageCount = %d but %d live heads found", st.PageCount(), live)
		}
	})
}
