package storage

import (
	"sync"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func TestPageFilter(t *testing.T) {
	p := Page{Pts: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.5, Y: 0.5}, {X: 0.9, Y: 0.9}}}
	got := p.Filter(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.6, MaxY: 0.6}, nil)
	if len(got) != 2 {
		t.Fatalf("Filter returned %d points, want 2", len(got))
	}
	// Appends to the destination slice without clobbering.
	dst := []geom.Point{{X: 7, Y: 7}}
	got = p.Filter(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, dst)
	if len(got) != 4 || got[0] != (geom.Point{X: 7, Y: 7}) {
		t.Fatalf("Filter must append: got %v", got)
	}
}

func TestPageContainsRemove(t *testing.T) {
	p := Page{Pts: []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 1, Y: 2}}}
	if !p.Contains(geom.Point{X: 1, Y: 2}) {
		t.Error("Contains failed")
	}
	if p.Contains(geom.Point{X: 9, Y: 9}) {
		t.Error("Contains false positive")
	}
	if !p.Remove(geom.Point{X: 1, Y: 2}) {
		t.Error("Remove failed")
	}
	if p.Len() != 2 {
		t.Errorf("Len after remove = %d", p.Len())
	}
	if !p.Contains(geom.Point{X: 1, Y: 2}) {
		t.Error("only one duplicate should be removed")
	}
	if p.Remove(geom.Point{X: 9, Y: 9}) {
		t.Error("Remove of absent point should report false")
	}
}

func TestPageBytes(t *testing.T) {
	p := Page{Pts: make([]geom.Point, 10, 32)}
	if p.Bytes() != 32*16+24 {
		t.Errorf("Bytes = %d", p.Bytes())
	}
}

func TestStatsDiffAndReset(t *testing.T) {
	var s Stats
	s.RangeQueries = 10
	s.PointsScanned = 100
	s.ResultPoints = 40
	snap := s
	s.RangeQueries = 15
	s.PointsScanned = 180
	s.ResultPoints = 60
	d := s.Diff(snap)
	if d.RangeQueries != 5 || d.PointsScanned != 80 || d.ResultPoints != 20 {
		t.Errorf("Diff = %+v", d)
	}
	if d.ExcessPoints() != 60 {
		t.Errorf("ExcessPoints = %d, want 60", d.ExcessPoints())
	}
	s.Reset()
	if s != (Stats{}) {
		t.Errorf("Reset left %+v", s)
	}
}

func TestStatsAtomicAdd(t *testing.T) {
	all := Stats{
		RangeQueries: 1, PointQueries: 2, NodesVisited: 3, BBChecked: 4,
		PagesScanned: 5, PointsScanned: 6, ResultPoints: 7, LookaheadJumps: 8,
		Inserts: 9, Deletes: 10, PageSplits: 11, PageMerges: 12,
	}
	var s Stats
	s.AtomicAdd(all)
	if s != all {
		t.Fatalf("AtomicAdd dropped fields: %+v", s)
	}
	if s.AtomicSnapshot() != all {
		t.Fatalf("AtomicSnapshot = %+v", s.AtomicSnapshot())
	}
	if got := all.Add(all); got.RangeQueries != 2 || got.PageMerges != 24 {
		t.Fatalf("Add = %+v", got)
	}
}

// TestStatsAtomicAddConcurrent checks the aggregation contract under
// parallel writers; meaningful under -race.
func TestStatsAtomicAddConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	const workers, rounds = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s.AtomicAdd(Stats{RangeQueries: 1, PointsScanned: 3})
				_ = s.AtomicSnapshot()
			}
		}()
	}
	wg.Wait()
	got := s.AtomicSnapshot()
	if got.RangeQueries != workers*rounds || got.PointsScanned != 3*workers*rounds {
		t.Fatalf("lost updates: %+v", got)
	}
}

func TestStatsDiffAllFields(t *testing.T) {
	a := Stats{
		RangeQueries: 1, PointQueries: 2, NodesVisited: 3, BBChecked: 4,
		PagesScanned: 5, PointsScanned: 6, ResultPoints: 7, LookaheadJumps: 8,
		Inserts: 9, Deletes: 10, PageSplits: 11, PageMerges: 12,
	}
	zero := Stats{}
	if a.Diff(zero) != a {
		t.Error("Diff against zero must be identity")
	}
	if a.Diff(a) != zero {
		t.Error("Diff against self must be zero")
	}
}
