package storage

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/obs"
)

func TestReadIOCountersAndObs(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 2})
	h := obs.NewHistogram(obs.DefBuckets())
	d.SetReadObs(h)

	var ids []PageID
	for i := 0; i < 4; i++ {
		pts := somePoints(8, int64(i))
		ids = append(ids, d.Alloc(pts, geom.Rect{MaxX: 1, MaxY: 1}))
	}
	if r, _ := d.ReadIO(); r != 0 {
		t.Fatalf("reads after Alloc = %d, want 0 (allocs write through the cache)", r)
	}

	d.DropCaches()
	for _, id := range ids {
		d.Page(id)
	}
	reads, nanos := d.ReadIO()
	if reads != 4 {
		t.Fatalf("reads = %d, want 4 cold faults", reads)
	}
	if nanos <= 0 {
		t.Fatalf("readNanos = %d, want > 0", nanos)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}

	// Cache hits do not count as reads.
	before, _ := d.ReadIO()
	d.Page(ids[len(ids)-1])
	if after, _ := d.ReadIO(); after != before {
		t.Fatalf("cache hit advanced reads: %d -> %d", before, after)
	}

	// Detaching the histogram stops observation but not the counters.
	d.SetReadObs(nil)
	d.DropCaches()
	d.Page(ids[0])
	if h.Count() != 4 {
		t.Fatalf("detached histogram advanced to %d", h.Count())
	}
	if r, _ := d.ReadIO(); r != reads+1 {
		t.Fatalf("reads = %d, want %d", r, reads+1)
	}
}
