package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"unsafe"

	"github.com/wazi-index/wazi/internal/geom"
)

// readModes enumerates the disk store's read paths. The mmap mode is
// skipped automatically where the platform cannot map files.
func readModes(t *testing.T) []struct {
	name        string
	disableMmap bool
} {
	t.Helper()
	modes := []struct {
		name        string
		disableMmap bool
	}{{"pread", true}}
	if mmapSupported {
		modes = append([]struct {
			name        string
			disableMmap bool
		}{{"mmap", false}}, modes...)
	}
	return modes
}

func TestViewRoundTripBothModes(t *testing.T) {
	for _, mode := range readModes(t) {
		t.Run(mode.name, func(t *testing.T) {
			d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 4, DisableMmap: mode.disableMmap})
			if want := !mode.disableMmap; d.MmapMode() != want && mmapSupported {
				t.Fatalf("MmapMode() = %v, want %v", d.MmapMode(), want)
			}
			b := geom.Rect{MaxX: 1, MaxY: 1}
			cases := [][]geom.Point{
				somePoints(5, 1),
				somePoints(8, 2),
				somePoints(9, 3),  // 2-slot chain
				somePoints(40, 4), // 5-slot chain
				nil,
			}
			ids := make([]PageID, len(cases))
			for i, pts := range cases {
				ids[i] = d.Alloc(pts, b)
			}
			check := func(ctx string) {
				for i, pts := range cases {
					v := d.View(ids[i])
					samePts(t, v.Pts, pts, ctx)
					v.Release()
					v.Release() // double release is harmless
				}
				if n := d.Pins(); n != 0 {
					t.Fatalf("%s: %d pins outstanding after releases", ctx, n)
				}
			}
			check("warm view")
			d.DropCaches()
			check("cold view")
		})
	}
}

// TestViewAliasesMapping pins the zero-copy property itself: in mmap mode a
// single-slot page's view must point into the file mapping, not at a
// decoded heap copy.
func TestViewAliasesMapping(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 4})
	if !d.MmapMode() {
		t.Skip("mmap unsupported on this platform")
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	id := d.Alloc(somePoints(8, 1), b)
	d.DropCaches()

	inMapping := func(p unsafe.Pointer) bool {
		for _, m := range d.maps {
			base := uintptr(unsafe.Pointer(&m.data[0]))
			if uintptr(p) >= base && uintptr(p) < base+uintptr(len(m.data)) {
				return true
			}
		}
		return false
	}
	v := d.View(id)
	if !inMapping(unsafe.Pointer(&v.Pts[0])) {
		t.Fatal("cold view of a single-slot page is a heap copy, not mapped file bytes")
	}
	v.Release()

	// The entry Alloc itself caches must be zero-copy too.
	id2 := d.Alloc(somePoints(4, 2), b)
	v2 := d.View(id2)
	if !inMapping(unsafe.Pointer(&v2.Pts[0])) {
		t.Fatal("Alloc-warmed view is a heap copy, not mapped file bytes")
	}
	v2.Release()

	// Chained pages cannot be contiguous in the file: they must decode.
	chained := d.Alloc(somePoints(20, 3), b)
	d.DropCaches()
	v3 := d.View(chained)
	if inMapping(unsafe.Pointer(&v3.Pts[0])) {
		t.Fatal("chained page view claims to alias the mapping; chains are not contiguous")
	}
	samePts(t, v3.Pts, somePoints(20, 3), "chained view")
	v3.Release()
}

// TestRecycleGuard pins the invariant that makes borrowed views safe: while
// any view is pinned, freed slots are parked, not recycled — new
// allocations extend the file — and recycling resumes after the last
// release.
func TestRecycleGuard(t *testing.T) {
	for _, mode := range readModes(t) {
		t.Run(mode.name, func(t *testing.T) {
			d := tmpStore(t, DiskOptions{SlotCap: 4, CachePages: 8, DisableMmap: mode.disableMmap})
			b := geom.Rect{MaxX: 1, MaxY: 1}
			aPts := somePoints(4, 1)
			a := d.Alloc(aPts, b)
			victim := d.Alloc(somePoints(4, 2), b)
			d.DropCaches()

			v := d.View(a)
			d.Free(victim)
			before := d.FileBytes()
			d.Alloc(somePoints(4, 3), b)
			if d.FileBytes() == before {
				t.Fatal("freed slot recycled while a view was pinned")
			}
			samePts(t, v.Pts, aPts, "pinned view across Free+Alloc")
			v.Release()
			if d.Pins() != 0 {
				t.Fatalf("pins = %d after release", d.Pins())
			}

			before = d.FileBytes()
			d.Alloc(somePoints(4, 4), b) // victim's slot is free again
			if d.FileBytes() != before {
				t.Fatal("freed slot not recycled once the last view released")
			}
		})
	}
}

// TestViewSurvivesEvictionAndDropCaches holds a pinned view while its cache
// entry is evicted, dropped, and its neighbors churn: the borrowed bytes
// must stay intact in both read modes.
func TestViewSurvivesEvictionAndDropCaches(t *testing.T) {
	for _, mode := range readModes(t) {
		t.Run(mode.name, func(t *testing.T) {
			d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 2, DisableMmap: mode.disableMmap})
			b := geom.Rect{MaxX: 1, MaxY: 1}
			aPts := somePoints(8, 1)
			a := d.Alloc(aPts, b)
			d.DropCaches()

			v := d.View(a)
			for i := 0; i < 16; i++ { // flood a 2-page cache
				id := d.Alloc(somePoints(8, int64(100+i)), b)
				d.Page(id)
			}
			samePts(t, v.Pts, aPts, "pinned view across eviction pressure")
			d.DropCaches()
			samePts(t, v.Pts, aPts, "pinned view across DropCaches")
			v.Release()

			v2 := d.View(a) // refault after everything was dropped
			samePts(t, v2.Pts, aPts, "refaulted view")
			v2.Release()
		})
	}
}

// TestPagePromotesMappedEntry pins Page's mutable-staging contract in mmap
// mode: the returned page must be a private heap copy (writing through a
// read-only mapping would fault the process), and the staged mutation must
// round-trip through Update.
func TestPagePromotesMappedEntry(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 4})
	if !d.MmapMode() {
		t.Skip("mmap unsupported on this platform")
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	id := d.Alloc(somePoints(8, 1), b)
	d.DropCaches()

	pg := d.Page(id)
	pg.Pts[0] = geom.Point{X: 9, Y: 9} // must not fault: promoted to heap
	d.Update(id, pg.Pts, b)
	d.DropCaches()
	v := d.View(id)
	if v.Pts[0] != (geom.Point{X: 9, Y: 9}) {
		t.Fatalf("staged mutation lost: point 0 = %v", v.Pts[0])
	}
	v.Release()
}

// TestCacheBytesExactForChains pins the accounting fix: a multi-slot chain
// must be counted at its full decoded size, not one slot's worth, and
// mmap-backed entries contribute bookkeeping only (their points are file
// bytes, not cache heap).
func TestCacheBytesExactForChains(t *testing.T) {
	b := geom.Rect{MaxX: 1, MaxY: 1}

	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 8, DisableMmap: true})
	d.Alloc(somePoints(40, 1), b) // 5-slot chain, decoded to heap
	d.Alloc(somePoints(5, 2), b)  // single slot
	d.DropCaches()
	d.Page(PageID(0))
	d.Page(PageID(5))
	want := int64((40+5)*pointSize + 2*pageOverheadBytes)
	if got := d.Bytes(); got != want {
		t.Fatalf("pread cache bytes = %d, want %d (chained page must count all %d points)", got, want, 40)
	}

	if !mmapSupported {
		return
	}
	m := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 8})
	m.Alloc(somePoints(40, 1), b)
	m.Alloc(somePoints(5, 2), b)
	m.DropCaches()
	m.Page(PageID(0)) // chained: decoded to heap even in mmap mode
	v := m.View(PageID(5))
	v.Release() // single slot: zero-copy, counted as bookkeeping only
	want = int64(40*pointSize + 2*pageOverheadBytes)
	if got := m.Bytes(); got != want {
		t.Fatalf("mmap cache bytes = %d, want %d (zero-copy page must not count as heap)", got, want)
	}
}

// TestSlotCapReopen pins the reopen contract: the header's slot capacity is
// authoritative — SlotCap 0 adopts it, a matching explicit value is
// accepted, and a disagreeing explicit value is refused with an error
// instead of silently mis-addressing every slot.
func TestSlotCapReopen(t *testing.T) {
	path := t.TempDir() + "/pages"
	d, err := CreatePageFile(path, DiskOptions{SlotCap: 32, CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	pts := somePoints(40, 1) // 2-slot chain under SlotCap 32
	id := d.Alloc(pts, b)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		slotCap int
	}{{"adopt-default", 0}, {"explicit-match", 32}} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := OpenPageFile(path, DiskOptions{SlotCap: tc.slotCap, CachePages: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.slotCap != 32 {
				t.Fatalf("reopened slotCap = %d, want 32", r.slotCap)
			}
			samePts(t, r.Page(id).Pts, pts, "reopened page")
		})
	}

	_, err = OpenPageFile(path, DiskOptions{SlotCap: 64, CachePages: 4})
	if err == nil {
		t.Fatal("OpenPageFile accepted an explicit SlotCap disagreeing with the header")
	}
	for _, frag := range []string{"32", "64", "mismatch"} {
		if !containsStr(err.Error(), frag) {
			t.Fatalf("mismatch error %q does not mention %q", err, frag)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestViewRaceSoak is the race-suite soak from the issue: readers hold
// pinned views over a stable page set while a writer allocates, updates,
// and frees disjoint pages and another goroutine drops the cache. Run under
// -race it checks the pin/unpin, recycle-guard, and mapping-growth
// synchronization; contents of the stable set are verified on every read.
func TestViewRaceSoak(t *testing.T) {
	for _, mode := range readModes(t) {
		t.Run(mode.name, func(t *testing.T) {
			d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 4, DisableMmap: mode.disableMmap})
			b := geom.Rect{MaxX: 1, MaxY: 1}

			const stable = 8
			wantPts := make([][]geom.Point, stable)
			ids := make([]PageID, stable)
			for i := range ids {
				wantPts[i] = somePoints(8, int64(i+1))
				ids[i] = d.Alloc(wantPts[i], b)
			}
			d.DropCaches()

			iters := 400
			if testing.Short() {
				iters = 50
			}
			var wg sync.WaitGroup
			errc := make(chan error, 8)
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					held := make([]PageView, 0, 4)
					heldIdx := make([]int, 0, 4)
					for i := 0; i < iters; i++ {
						j := rng.Intn(stable)
						v := d.View(ids[j])
						held = append(held, v)
						heldIdx = append(heldIdx, j)
						if len(held) == cap(held) || rng.Intn(3) == 0 {
							for k, hv := range held {
								w := wantPts[heldIdx[k]]
								if len(hv.Pts) != len(w) {
									errc <- fmt.Errorf("view of page %d: %d points, want %d", heldIdx[k], len(hv.Pts), len(w))
									hv.Release()
									continue
								}
								for x := range w {
									if hv.Pts[x] != w[x] {
										errc <- fmt.Errorf("view of page %d: point %d = %v, want %v", heldIdx[k], x, hv.Pts[x], w[x])
										break
									}
								}
								hv.Release()
							}
							held, heldIdx = held[:0], heldIdx[:0]
						}
					}
					for _, hv := range held {
						hv.Release()
					}
				}(int64(100 + r))
			}
			// Writer: churn pages disjoint from the stable set.
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(7))
				var churn []PageID
				for i := 0; i < iters; i++ {
					switch {
					case len(churn) < 4 || rng.Intn(3) == 0:
						churn = append(churn, d.Alloc(somePoints(rng.Intn(20), int64(1000+i)), b))
					case rng.Intn(2) == 0:
						j := rng.Intn(len(churn))
						d.Update(churn[j], somePoints(rng.Intn(20), int64(2000+i)), b)
					default:
						j := rng.Intn(len(churn))
						d.Free(churn[j])
						churn[j] = churn[len(churn)-1]
						churn = churn[:len(churn)-1]
					}
				}
			}()
			// Invalidator: periodic cache teardown.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters/10; i++ {
					d.DropCaches()
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
			if d.Pins() != 0 {
				t.Fatalf("pins = %d after soak", d.Pins())
			}
			for i := range ids {
				samePts(t, d.Page(ids[i]).Pts, wantPts[i], "stable page after soak")
			}
		})
	}
}
