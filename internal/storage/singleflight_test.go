// The single-flight regression tests live in an external test package so
// they can inject I/O faults through indextest.CrashFS (which imports
// storage and would cycle with an in-package test).
package storage_test

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/indextest"
	"github.com/wazi-index/wazi/internal/storage"
)

// crashStore builds a pread-mode store whose page file counts every
// positional I/O toward fs's crash point, with one uncached page to fault.
func crashStore(t *testing.T, fs *indextest.CrashFS) (*storage.DiskStore, storage.PageID) {
	t.Helper()
	d, err := storage.CreatePageFile(filepath.Join(t.TempDir(), "pages"), storage.DiskOptions{
		SlotCap: 8, CachePages: 2, WrapFile: fs.WrapPageFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	pts := []geom.Point{{X: 0.1, Y: 0.2}, {X: 0.3, Y: 0.4}}
	id := d.Alloc(pts, geom.Rect{MaxX: 1, MaxY: 1})
	d.DropCaches()
	return d, id
}

// TestSingleFlightFaultPanicUnblocksWaiters is the hang regression from the
// issue: when the winning reader of a single-flighted cache fault panics
// (injected read failure mid-fault), concurrent faulters of the same page
// must be woken and refault — not block forever on a latch nobody closes.
// Run under -race in CI.
func TestSingleFlightFaultPanicUnblocksWaiters(t *testing.T) {
	// Clean pass: count the I/O ops consumed by store setup, so the crash
	// can be injected exactly at the fault's first read.
	clean := indextest.NewCrashFS(-1)
	cd, cid := crashStore(t, clean)
	setupOps := clean.Ops()
	cd.Page(cid) // one clean fault, proving setupOps points at it
	if clean.Ops() == setupOps {
		t.Fatal("fault consumed no counted I/O; crash point would miss it")
	}

	fs := indextest.NewCrashFS(setupOps)
	d, id := crashStore(t, fs)

	const faulters = 4
	var wg sync.WaitGroup
	var panics, hangs int32
	for i := 0; i < faulters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					atomic.AddInt32(&panics, 1)
				}
			}()
			d.Page(id)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		atomic.StoreInt32(&hangs, 1)
	}
	if atomic.LoadInt32(&hangs) != 0 {
		t.Fatal("concurrent faulters hung after the winner panicked: single-flight latch leaked")
	}
	if !fs.Crashed() {
		t.Fatal("crash point never reached; test exercised nothing")
	}
	if atomic.LoadInt32(&panics) != faulters {
		t.Fatalf("%d of %d faulters surfaced the injected failure; the rest returned a page that cannot exist", panics, faulters)
	}

	// The latch must also be clean for later callers: a fresh fault attempt
	// panics on the dead file rather than waiting on a stale channel.
	fresh := make(chan struct{})
	go func() {
		defer close(fresh)
		defer func() { recover() }()
		d.Page(id)
	}()
	select {
	case <-fresh:
	case <-time.After(30 * time.Second):
		t.Fatal("post-recovery fault hung on a stale single-flight latch")
	}
}
