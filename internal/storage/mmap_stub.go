//go:build !((linux || darwin || freebsd || netbsd || openbsd) && (amd64 || arm64 || riscv64 || loong64 || ppc64le || mips64le || 386 || amd64p32 || arm || wasm))

package storage

import (
	"errors"
	"os"

	"github.com/wazi-index/wazi/internal/geom"
)

// mmapSupported: this platform has no usable mmap (or is big-endian, where
// reinterpreting little-endian file bytes in place would mis-decode), so the
// disk store always uses the pread+decode path.
const mmapSupported = false

type fileMap struct{}

func mapFile(*os.File, int64) (*fileMap, error) {
	return nil, errors.New("storage: mmap unsupported on this platform")
}

func (m *fileMap) unmap()                 {}
func (m *fileMap) covers(_, _ int64) bool { return false }
func (m *fileMap) pointsAt(int64, int) []geom.Point {
	panic("storage: pointsAt on unsupported platform")
}
