package storage

import (
	"github.com/wazi-index/wazi/internal/geom"
)

// PageID identifies one clustered page inside a PageStore. IDs are stable
// for the lifetime of the page: queries hold them inside leaf structures and
// resolve them on every access, so a store must never move a live page to a
// different id.
type PageID int32

// NoPage is the nil PageID.
const NoPage PageID = -1

// PageView is a borrowed, read-only view of one page's points, the
// allocation-free read surface of a PageStore. The slice aliases storage
// owned by the store — a cached page, an arena segment, or (in the disk
// backend's mmap mode) the page-file bytes themselves — so its lifetime is
// governed by pinning:
//
//   - A view is valid from View until Release. Release is idempotent on the
//     zero value and must be called exactly once per pinned view; the query
//     kernel releases each view before advancing the leaf cursor.
//   - While any view is pinned, the store guarantees the viewed bytes are
//     not recycled: freed slots park on the free list but are not rewritten,
//     evicted cache pages stay reachable from the view, and mmap mappings
//     are not unmapped. (See DiskStore for the recycle guard.)
//   - Views must not outlive the read-side critical section of the caller:
//     Update/Free of the SAME page while a view of it is pinned is the one
//     hazard the store does not defend against, exactly mirroring the
//     exclusive-access clause of the PageStore contract.
//   - The points must not be mutated through the view; in mmap mode they
//     alias a read-only mapping and writing would fault the process.
type PageView struct {
	// Pts is the page's point data, borrowed from the store.
	Pts []geom.Point
	pin viewPin // non-nil when Release must unpin store resources
}

// viewPin is the unpin half of a pinned view; implemented by the disk
// backend's cache entries. Kept as an interface so PageView stays a plain
// value type the query kernel can pass around without allocation.
type viewPin interface{ unpin() }

// Release unpins the view. The zero view releases as a no-op, and Release
// clears the pin so double-release is harmless.
func (v *PageView) Release() {
	if v.pin != nil {
		v.pin.unpin()
		v.pin = nil
	}
	v.Pts = nil
}

// Filter appends to dst the viewed points that fall inside r and returns
// the extended slice — the borrowed-view twin of Page.Filter.
func (v *PageView) Filter(r geom.Rect, dst []geom.Point) []geom.Point {
	for _, pt := range v.Pts {
		if r.Contains(pt) {
			dst = append(dst, pt)
		}
	}
	return dst
}

// Contains reports whether the viewed page stores a point equal to pt.
func (v *PageView) Contains(pt geom.Point) bool {
	for _, q := range v.Pts {
		if q == pt {
			return true
		}
	}
	return false
}

// PageStore abstracts where clustered leaf pages live. The Z-index core
// stores only PageIDs in its leaves and resolves them through the store on
// every access, which is what lets the same tree run RAM-resident (MemStore)
// or disk-resident behind a block cache (DiskStore).
//
// Contract:
//
//   - Alloc, Update, and Free require the same exclusive access as any other
//     structural index mutation; Page, View, and ObserveQuery may be called
//     from many goroutines at once.
//   - The *Page returned by Page is owned by the store. Readers must not
//     mutate it; writers may mutate it only as staging for an immediate
//     Update of the same id (the pattern update paths use for Remove).
//   - A disk-backed store reports unrecoverable I/O failures on an already
//     validated file by panicking — query paths deliberately have no error
//     channel, mirroring how mmap-based stores surface torn files. All
//     decode-time validation (corrupt or foreign files) happens in
//     OpenPageFile and returns errors instead.
type PageStore interface {
	// Alloc creates a page holding a copy of pts and returns its id.
	// bounds is the leaf cell the page serves, used by workload-aware
	// cache eviction.
	Alloc(pts []geom.Point, bounds geom.Rect) PageID
	// Page resolves id to its page, faulting it into the block cache if
	// the backend is disk-resident. Callers that only read should prefer
	// View: Page may have to materialize a private mutable copy.
	Page(id PageID) *Page
	// View returns a borrowed, read-only, pinned view of page id — the
	// allocation-free read path. The caller must Release it before its
	// read-side critical section ends; see PageView for lifetime rules.
	View(id PageID) PageView
	// Update rewrites the page contents in place (same id).
	Update(id PageID, pts []geom.Point, bounds geom.Rect)
	// Free releases the page and recycles its storage.
	Free(id PageID)
	// PageLen returns the point count of page id without necessarily
	// faulting its data into memory, and whether id names a live page.
	// Warm starts use it both to validate decoded page references and to
	// restore leaf counts without reading the whole page file.
	PageLen(id PageID) (int, bool)
	// ObserveQuery feeds one executed range query into the store's
	// workload histogram (workload-aware eviction); a no-op for
	// RAM-resident backends.
	ObserveQuery(r geom.Rect)
	// PageCount returns the number of live pages.
	PageCount() int
	// Bytes returns the resident in-memory footprint of the pages (for a
	// disk backend: the block cache, not the file).
	Bytes() int64
	// CacheStats returns the block-cache counters; zero-valued for
	// RAM-resident backends except Resident/Capacity.
	CacheStats() CacheStats
	// SetStatsSink routes cache hit/miss/eviction counters into a shared
	// Stats (atomically), so index-level Stats surface them.
	SetStatsSink(*Stats)
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the backing resources. The store must not be used
	// afterwards.
	Close() error
	// Kind names the backend ("memory" or "disk").
	Kind() string
}

// CacheStats are the block-cache counters of a disk-resident store.
type CacheStats struct {
	// Hits and Misses count page resolutions served from / faulted into
	// the cache.
	Hits, Misses int64
	// Evictions counts pages dropped to make room.
	Evictions int64
	// HotRetained counts eviction-scan skips of pages pinned by hot cells
	// of the query histogram — the workload-aware part of the policy.
	HotRetained int64
	// Resident is the number of cached pages; Capacity the cache bound.
	Resident, Capacity int
}

// MemStore is the RAM-resident PageStore: a slice of pages plus a free list.
// It is the default backend and preserves the pre-PageStore behavior of the
// index exactly — Page is a bounds-checked slice load.
type MemStore struct {
	pages []*Page
	free  []PageID
	live  int
	// arena is the contiguous build-time point buffer. Reserve sizes it and
	// Alloc carves pages out of it as capped subslices until it is
	// exhausted, so a bulk build lays every leaf page into one flat buffer
	// and the query kernel's leaf cursor streams points cache-line after
	// cache-line instead of hopping between per-page allocations.
	arena []geom.Point
}

// NewMemStore returns an empty RAM-resident store.
func NewMemStore() *MemStore { return &MemStore{} }

// Reserve pre-sizes the arena for n points about to be Alloc'd. Bulk builds
// call it once with the dataset size. Reserving is optional and purely a
// layout optimization: pages allocated past the reservation get their own
// backing arrays, and the capped subslices mean any append past a page's
// length reallocates away from the arena rather than clobbering its
// neighbour.
func (m *MemStore) Reserve(n int) {
	if n > cap(m.arena)-len(m.arena) {
		m.arena = make([]geom.Point, 0, n)
	}
}

// Alloc implements PageStore.
func (m *MemStore) Alloc(pts []geom.Point, _ geom.Rect) PageID {
	pg := &Page{}
	if n := len(m.arena); cap(m.arena)-n >= len(pts) {
		m.arena = m.arena[:n+len(pts)]
		pg.Pts = m.arena[n : n+len(pts) : n+len(pts)]
	} else {
		pg.Pts = make([]geom.Point, len(pts))
	}
	copy(pg.Pts, pts)
	m.live++
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.pages[id] = pg
		return id
	}
	m.pages = append(m.pages, pg)
	return PageID(len(m.pages) - 1)
}

// Page implements PageStore.
func (m *MemStore) Page(id PageID) *Page { return m.pages[id] }

// View implements PageStore. RAM-resident pages need no pinning: the view
// borrows the page's live slice and Release is a no-op.
func (m *MemStore) View(id PageID) PageView {
	return PageView{Pts: m.pages[id].Pts}
}

// Update implements PageStore.
func (m *MemStore) Update(id PageID, pts []geom.Point, _ geom.Rect) {
	m.pages[id].Pts = pts
}

// Free implements PageStore.
func (m *MemStore) Free(id PageID) {
	m.pages[id] = nil
	m.free = append(m.free, id)
	m.live--
}

// Has reports whether id names a live page.
func (m *MemStore) Has(id PageID) bool {
	return id >= 0 && int(id) < len(m.pages) && m.pages[id] != nil
}

// PageLen implements PageStore.
func (m *MemStore) PageLen(id PageID) (int, bool) {
	if !m.Has(id) {
		return 0, false
	}
	return m.pages[id].Len(), true
}

// ObserveQuery implements PageStore; RAM residency needs no eviction policy.
func (m *MemStore) ObserveQuery(geom.Rect) {}

// PageCount implements PageStore.
func (m *MemStore) PageCount() int { return m.live }

// Bytes implements PageStore. Computed by summation on demand: update
// paths stage mutations in the returned *Page before calling Update, so
// incremental accounting would see the post-mutation size on both sides of
// the delta and drift. Bytes is a reporting call (Table 5), not a hot path.
func (m *MemStore) Bytes() int64 {
	var b int64
	for _, pg := range m.pages {
		if pg != nil {
			b += pg.Bytes()
		}
	}
	return b
}

// CacheStats implements PageStore: everything is always resident.
func (m *MemStore) CacheStats() CacheStats {
	return CacheStats{Resident: m.live, Capacity: m.live}
}

// SetStatsSink implements PageStore; no cache events exist to route.
func (m *MemStore) SetStatsSink(*Stats) {}

// Sync implements PageStore.
func (m *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (m *MemStore) Close() error { return nil }

// Kind implements PageStore.
func (m *MemStore) Kind() string { return "memory" }
