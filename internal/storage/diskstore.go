package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/obs"
)

// DiskStore is the disk-resident PageStore: a fixed-slot page file plus an
// in-memory block cache whose eviction is workload-aware. Pages are chains
// of fixed-size slots (one slot fits SlotCap points; oversized pages —
// coincident-point leaves that cannot split — chain continuation slots), and
// freed slots are recycled through an on-file free list, so the file never
// needs compaction to stay bounded.
//
// The file carries a versioned header in the same discipline as the Sharded
// snapshot format: OpenPageFile refuses foreign magic or unknown versions
// with a clear error and fully validates the slot graph (free list, chain
// structure) before serving from it, which is what makes the warm-start path
// safe to point at a file written by an earlier process.
//
// Crash consistency is explicitly not a goal: writes are buffered until
// Sync, matching the snapshot-oriented durability model of the rest of the
// repository (persist on graceful shutdown, rebuild on hard crash).
type DiskStore struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	slotCap int
	slots   int32 // slots physically present in the file
	free    int32 // head of the free-slot chain, -1 when empty
	nfree   int
	npages  int
	closed  bool

	cache blockCache
	// loading single-flights concurrent faults of the same page: the
	// winner reads from disk outside the mutex, everyone else waits on
	// its channel. Readers of other pages (hits or faults) proceed.
	loading map[PageID]chan struct{}
	hist    queryHist
	sink    atomic.Pointer[Stats]

	// reads/readNanos count page-file read operations and their summed
	// latency. They are atomics (not mu-guarded) so traced query paths can
	// take before/after deltas without touching the store mutex.
	reads     atomic.Int64
	readNanos atomic.Int64
	readObs   atomic.Pointer[obs.Histogram]

	hits, misses, evictions, hotRetained int64 // guarded by mu
}

// DiskOptions tune a disk-resident store.
type DiskOptions struct {
	// SlotCap is the number of points one file slot holds. It should match
	// the index's leaf capacity so that in the common case a page is one
	// slot. Default 256.
	SlotCap int
	// CachePages bounds the block cache, in pages. Default 1024.
	CachePages int
	// HistWindow is the sliding window of the workload histogram feeding
	// eviction decisions. Default 1024 queries.
	HistWindow int
}

func (o *DiskOptions) fill() {
	if o.SlotCap <= 0 {
		o.SlotCap = 256
	}
	if o.CachePages <= 0 {
		o.CachePages = 1024
	}
	if o.HistWindow <= 0 {
		o.HistWindow = 1024
	}
}

// Page-file format constants. The header is fixed-size; slots follow
// back to back.
const (
	pageFileMagic   = "waziPageFile"
	pageFileVersion = 1
	fileHeaderSize  = 64
	slotHeaderSize  = 48 // used u32, count u32, next i32, pad u32, bounds 4xf64
	pointSize       = 16

	slotFree = 0 // slot is on the free list
	slotHead = 1 // first slot of a page chain; bounds are meaningful
	slotCont = 2 // continuation slot of an oversized page

	// maxSlotCap bounds the slot capacity a header may declare, keeping
	// adversarial files from driving huge allocations during validation.
	maxSlotCap = 1 << 20
)

func (d *DiskStore) slotSize() int64 {
	return int64(slotHeaderSize + d.slotCap*pointSize)
}

func (d *DiskStore) slotOff(i int32) int64 {
	return fileHeaderSize + int64(i)*d.slotSize()
}

// CreatePageFile creates (truncating any previous content) a page file at
// path and returns an empty store over it.
func CreatePageFile(path string, o DiskOptions) (*DiskStore, error) {
	o.fill()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating page file: %w", err)
	}
	d := newDiskStore(f, path, o)
	if err := d.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenPageFile adopts an existing page file written by CreatePageFile — the
// warm-start path. The header is version-checked and the entire slot graph
// (free list, page chains) is validated before any page is served; a
// corrupt, truncated, or foreign file is refused with an error, never a
// panic.
func OpenPageFile(path string, o DiskOptions) (*DiskStore, error) {
	o.fill()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening page file: %w", err)
	}
	d, err := adoptPageFile(f, path, o)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: %w", path, err)
	}
	return d, nil
}

func newDiskStore(f *os.File, path string, o DiskOptions) *DiskStore {
	d := &DiskStore{f: f, path: path, slotCap: o.SlotCap, free: -1,
		loading: make(map[PageID]chan struct{})}
	d.cache.init(o.CachePages)
	d.hist.init(o.HistWindow)
	return d
}

func (d *DiskStore) writeHeader() error {
	var h [fileHeaderSize]byte
	copy(h[:12], pageFileMagic)
	binary.LittleEndian.PutUint32(h[12:], pageFileVersion)
	binary.LittleEndian.PutUint32(h[16:], uint32(d.slotCap))
	binary.LittleEndian.PutUint32(h[20:], uint32(d.slots))
	binary.LittleEndian.PutUint32(h[24:], uint32(d.free))
	binary.LittleEndian.PutUint32(h[28:], uint32(d.npages))
	if _, err := d.f.WriteAt(h[:], 0); err != nil {
		return fmt.Errorf("storage: writing page-file header: %w", err)
	}
	return nil
}

// adoptPageFile validates the header and the full slot graph of an existing
// file and reconstructs the in-memory free-list state.
func adoptPageFile(f *os.File, path string, o DiskOptions) (*DiskStore, error) {
	var h [fileHeaderSize]byte
	if _, err := f.ReadAt(h[:], 0); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if string(h[:12]) != pageFileMagic {
		return nil, fmt.Errorf("not a wazi page file (magic %q)", h[:12])
	}
	if v := binary.LittleEndian.Uint32(h[12:]); v != pageFileVersion {
		return nil, fmt.Errorf("unsupported page-file version %d (this build reads version %d)", v, pageFileVersion)
	}
	slotCap := int(binary.LittleEndian.Uint32(h[16:]))
	if slotCap <= 0 || slotCap > maxSlotCap {
		return nil, fmt.Errorf("implausible slot capacity %d", slotCap)
	}
	slots := int32(binary.LittleEndian.Uint32(h[20:]))
	freeHead := int32(binary.LittleEndian.Uint32(h[24:]))
	npages := int(binary.LittleEndian.Uint32(h[28:]))
	if slots < 0 {
		return nil, fmt.Errorf("implausible slot count %d", slots)
	}

	o.SlotCap = slotCap
	d := newDiskStore(f, path, o)
	d.slots = slots
	d.free = freeHead

	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if want := fileHeaderSize + int64(slots)*d.slotSize(); st.Size() != want {
		return nil, fmt.Errorf("file size %d does not match %d slots (want %d)", st.Size(), slots, want)
	}

	// One pass over the slot headers, then structural validation: the free
	// chain must cover exactly the free slots, and page chains must cover
	// exactly the continuation slots, with no sharing or cycles.
	used := make([]uint32, slots)
	next := make([]int32, slots)
	counts := make([]uint32, slots)
	var sh [slotHeaderSize]byte
	for i := int32(0); i < slots; i++ {
		if _, err := f.ReadAt(sh[:16], d.slotOff(i)); err != nil {
			return nil, fmt.Errorf("reading slot %d header: %w", i, err)
		}
		used[i] = binary.LittleEndian.Uint32(sh[0:])
		counts[i] = binary.LittleEndian.Uint32(sh[4:])
		next[i] = int32(binary.LittleEndian.Uint32(sh[8:]))
		if used[i] > slotCont {
			return nil, fmt.Errorf("slot %d: invalid state %d", i, used[i])
		}
		if counts[i] > uint32(slotCap) {
			return nil, fmt.Errorf("slot %d: count %d exceeds slot capacity %d", i, counts[i], slotCap)
		}
		if next[i] != -1 && (next[i] < 0 || next[i] >= slots) {
			return nil, fmt.Errorf("slot %d: next %d out of range", i, next[i])
		}
	}
	seen := make([]bool, slots)
	nfree := 0
	for i := freeHead; i != -1; i = next[i] {
		if i < 0 || i >= slots {
			return nil, fmt.Errorf("free list escapes the file at slot %d", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("free list cycles at slot %d", i)
		}
		if used[i] != slotFree {
			return nil, fmt.Errorf("free list visits live slot %d", i)
		}
		seen[i] = true
		nfree++
	}
	heads := 0
	for i := int32(0); i < slots; i++ {
		switch used[i] {
		case slotFree:
			if !seen[i] {
				return nil, fmt.Errorf("free slot %d not on the free list", i)
			}
		case slotHead:
			heads++
			for j := next[i]; j != -1; j = next[j] {
				if seen[j] {
					return nil, fmt.Errorf("slot %d appears in two chains", j)
				}
				if used[j] != slotCont {
					return nil, fmt.Errorf("chain from head %d visits non-continuation slot %d", i, j)
				}
				seen[j] = true
			}
		}
	}
	for i := int32(0); i < slots; i++ {
		if used[i] == slotCont && !seen[i] {
			return nil, fmt.Errorf("continuation slot %d belongs to no chain", i)
		}
	}
	if heads != npages {
		return nil, fmt.Errorf("header claims %d pages, file holds %d", npages, heads)
	}
	d.nfree = nfree
	d.npages = npages
	return d, nil
}

// ioPanic reports an unrecoverable I/O failure on a validated file. See the
// PageStore contract.
func (d *DiskStore) ioPanic(op string, err error) {
	panic(fmt.Sprintf("storage: page file %s: %s: %v", d.path, op, err))
}

// readSlotHeader returns (used, count, next, bounds) of slot i.
func (d *DiskStore) readSlotHeader(i int32) (uint32, int, int32, geom.Rect) {
	var sh [slotHeaderSize]byte
	if _, err := d.f.ReadAt(sh[:], d.slotOff(i)); err != nil {
		d.ioPanic(fmt.Sprintf("reading slot %d", i), err)
	}
	var b geom.Rect
	b.MinX = math.Float64frombits(binary.LittleEndian.Uint64(sh[16:]))
	b.MinY = math.Float64frombits(binary.LittleEndian.Uint64(sh[24:]))
	b.MaxX = math.Float64frombits(binary.LittleEndian.Uint64(sh[32:]))
	b.MaxY = math.Float64frombits(binary.LittleEndian.Uint64(sh[40:]))
	return binary.LittleEndian.Uint32(sh[0:]), int(binary.LittleEndian.Uint32(sh[4:])), int32(binary.LittleEndian.Uint32(sh[8:])), b
}

// writeSlot writes one slot: header plus its share of the points.
func (d *DiskStore) writeSlot(i int32, state uint32, pts []geom.Point, next int32, bounds geom.Rect) {
	buf := make([]byte, slotHeaderSize+len(pts)*pointSize)
	binary.LittleEndian.PutUint32(buf[0:], state)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(pts)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(next))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(bounds.MinX))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(bounds.MinY))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(bounds.MaxX))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(bounds.MaxY))
	for j, p := range pts {
		binary.LittleEndian.PutUint64(buf[slotHeaderSize+j*pointSize:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[slotHeaderSize+j*pointSize+8:], math.Float64bits(p.Y))
	}
	if _, err := d.f.WriteAt(buf, d.slotOff(i)); err != nil {
		d.ioPanic(fmt.Sprintf("writing slot %d", i), err)
	}
}

// popSlot takes a slot from the free list, extending the file when none is
// available. Callers hold d.mu.
func (d *DiskStore) popSlot() int32 {
	if d.free != -1 {
		i := d.free
		_, _, next, _ := d.readSlotHeader(i)
		d.free = next
		d.nfree--
		return i
	}
	i := d.slots
	d.slots++
	if err := d.f.Truncate(fileHeaderSize + int64(d.slots)*d.slotSize()); err != nil {
		d.ioPanic("extending file", err)
	}
	return i
}

// pushSlot returns a slot to the free list. Callers hold d.mu.
func (d *DiskStore) pushSlot(i int32) {
	d.writeSlot(i, slotFree, nil, d.free, geom.Rect{})
	d.free = i
	d.nfree++
}

// chainSlots returns the slot chain of page id, head first.
func (d *DiskStore) chainSlots(id PageID) []int32 {
	var chain []int32
	for i := int32(id); i != -1; {
		chain = append(chain, i)
		_, _, next, _ := d.readSlotHeader(i)
		i = next
		if len(chain) > int(d.slots) {
			d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", id))
		}
	}
	return chain
}

// writeChain lays pts out over a slot chain for page id, reusing the given
// existing chain, growing or shrinking it as needed. Callers hold d.mu.
func (d *DiskStore) writeChain(chain []int32, pts []geom.Point, bounds geom.Rect) {
	need := (len(pts) + d.slotCap - 1) / d.slotCap
	if need == 0 {
		need = 1
	}
	for len(chain) < need {
		chain = append(chain, d.popSlot())
	}
	for _, extra := range chain[need:] {
		d.pushSlot(extra)
	}
	chain = chain[:need]
	for j, i := range chain {
		lo := j * d.slotCap
		hi := lo + d.slotCap
		if hi > len(pts) {
			hi = len(pts)
		}
		state := uint32(slotCont)
		if j == 0 {
			state = slotHead
		}
		next := int32(-1)
		if j+1 < need {
			next = chain[j+1]
		}
		d.writeSlot(i, state, pts[lo:hi], next, bounds)
	}
}

// readPage assembles the page from its slot chain. Callers hold d.mu.
func (d *DiskStore) readPage(id PageID) (*Page, geom.Rect) {
	state, count, next, bounds := d.readSlotHeader(int32(id))
	if state != slotHead {
		d.ioPanic("resolving page", fmt.Errorf("page %d is not a chain head (state %d)", id, state))
	}
	pts := make([]geom.Point, 0, count)
	i := int32(id)
	for {
		pts = append(pts, d.readSlotPoints(i, count)...)
		if next == -1 {
			break
		}
		i = next
		if len(pts) > int(d.slots)*d.slotCap {
			d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", id))
		}
		_, count, next, _ = d.readSlotHeader(i)
	}
	return &Page{Pts: pts}, bounds
}

func (d *DiskStore) readSlotPoints(i int32, count int) []geom.Point {
	if count == 0 {
		return nil
	}
	buf := make([]byte, count*pointSize)
	if _, err := d.f.ReadAt(buf, d.slotOff(i)+slotHeaderSize); err != nil {
		d.ioPanic(fmt.Sprintf("reading slot %d points", i), err)
	}
	pts := make([]geom.Point, count)
	for j := range pts {
		pts[j].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*pointSize:]))
		pts[j].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*pointSize+8:]))
	}
	return pts
}

// ----------------------------------------------------------- PageStore API

// Alloc implements PageStore.
func (d *DiskStore) Alloc(pts []geom.Point, bounds geom.Rect) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	head := d.popSlot()
	chain := []int32{head}
	d.writeChain(chain, pts, bounds)
	d.npages++
	id := PageID(head)
	pg := &Page{Pts: append([]geom.Point(nil), pts...)}
	d.cacheInsert(id, pg, bounds)
	d.hist.extendSpace(bounds)
	return id
}

// Page implements PageStore. A cache miss reads from disk OUTSIDE the
// store mutex (file reads are positional and the structural fields a fault
// touches are immutable while reads are running — mutation requires the
// same exclusive access as any index update), so one cold fault never
// blocks hits or faults of other pages; concurrent faults of the same page
// are single-flighted through d.loading.
func (d *DiskStore) Page(id PageID) *Page {
	d.mu.Lock()
	for {
		if e := d.cache.get(id); e != nil {
			d.hits++
			if s := d.sink.Load(); s != nil {
				atomic.AddInt64(&s.CacheHits, 1)
			}
			pg := e.pg
			d.mu.Unlock()
			return pg
		}
		ch, inflight := d.loading[id]
		if !inflight {
			break
		}
		d.mu.Unlock()
		<-ch
		d.mu.Lock()
	}
	d.misses++
	if s := d.sink.Load(); s != nil {
		atomic.AddInt64(&s.CacheMisses, 1)
	}
	ch := make(chan struct{})
	d.loading[id] = ch
	d.mu.Unlock()
	// Deregister via defer so the latch is released even if readPage
	// panics (I/O failure): in a process that survives the panic (e.g.
	// behind net/http's handler recovery), waiters must refault rather
	// than block forever on a channel nobody will close.
	defer func() {
		d.mu.Lock()
		delete(d.loading, id)
		close(ch)
		d.mu.Unlock()
	}()

	t0 := time.Now()
	pg, bounds := d.readPage(id)
	elapsed := time.Since(t0)
	d.reads.Add(1)
	d.readNanos.Add(int64(elapsed))
	if h := d.readObs.Load(); h != nil {
		h.Observe(elapsed.Seconds())
	}

	d.mu.Lock()
	d.cacheInsert(id, pg, bounds)
	d.mu.Unlock()
	return pg
}

// Update implements PageStore.
func (d *DiskStore) Update(id PageID, pts []geom.Point, bounds geom.Rect) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeChain(d.chainSlots(id), pts, bounds)
	if e := d.cache.get(id); e != nil {
		d.cache.resize(e, pts, bounds)
	} else {
		d.cacheInsert(id, &Page{Pts: append([]geom.Point(nil), pts...)}, bounds)
	}
	d.hist.extendSpace(bounds)
}

// Free implements PageStore.
func (d *DiskStore) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, i := range d.chainSlots(id) {
		d.pushSlot(i)
	}
	d.npages--
	d.cache.drop(id)
}

// Has reports whether id names a live page.
func (d *DiskStore) Has(id PageID) bool {
	_, ok := d.PageLen(id)
	return ok
}

// PageLen implements PageStore by walking the chain's slot headers only —
// no page data is faulted into the cache.
func (d *DiskStore) PageLen(id PageID) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int32(id) >= d.slots {
		return 0, false
	}
	state, count, next, _ := d.readSlotHeader(int32(id))
	if state != slotHead {
		return 0, false
	}
	total := count
	for hops := 0; next != -1; hops++ {
		if hops > int(d.slots) {
			return 0, false
		}
		state, count, next, _ = d.readSlotHeader(next)
		if state != slotCont {
			return 0, false
		}
		total += count
	}
	return total, true
}

// ObserveQuery implements PageStore: the query center lands in the workload
// histogram that eviction consults.
func (d *DiskStore) ObserveQuery(r geom.Rect) {
	d.mu.Lock()
	d.hist.observe(r)
	d.mu.Unlock()
}

// PageCount implements PageStore.
func (d *DiskStore) PageCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.npages
}

// Bytes implements PageStore: the resident footprint is the block cache.
func (d *DiskStore) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.bytesResident()
}

// FileBytes returns the size of the backing page file.
func (d *DiskStore) FileBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fileHeaderSize + int64(d.slots)*d.slotSize()
}

// CacheStats implements PageStore.
func (d *DiskStore) CacheStats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return CacheStats{
		Hits:        d.hits,
		Misses:      d.misses,
		Evictions:   d.evictions,
		HotRetained: d.hotRetained,
		Resident:    d.cache.len(),
		Capacity:    d.cache.capPages,
	}
}

// SetStatsSink implements PageStore.
func (d *DiskStore) SetStatsSink(s *Stats) { d.sink.Store(s) }

// SetReadObs attaches a latency histogram that every page-file read (cache
// miss) is observed into, in seconds. Pass nil to detach.
func (d *DiskStore) SetReadObs(h *obs.Histogram) { d.readObs.Store(h) }

// ReadIO returns the cumulative number of page-file reads and their summed
// latency in nanoseconds. Traced query paths take before/after deltas to
// attribute page I/O to a single query; under concurrent faulting the delta
// may fold in a neighbor's read, so it is monitoring-grade attribution, not
// an exact accounting.
func (d *DiskStore) ReadIO() (reads, nanos int64) {
	return d.reads.Load(), d.readNanos.Load()
}

// DropCaches empties the block cache (counters are retained), putting the
// store in the state a cold start would see. Benchmarks use it to measure
// disk-cold latency without reopening the file.
func (d *DiskStore) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache.init(d.cache.capPages)
}

// Path returns the page file's path.
func (d *DiskStore) Path() string { return d.path }

// Sync implements PageStore: the header is brought up to date and the file
// flushed to stable storage.
func (d *DiskStore) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if err := d.writeHeader(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close implements PageStore.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.writeHeader()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Kind implements PageStore.
func (d *DiskStore) Kind() string { return "disk" }

// cacheInsert adds a page to the cache and evicts if over capacity, calling
// back into the store's counters. Callers hold d.mu.
func (d *DiskStore) cacheInsert(id PageID, pg *Page, bounds geom.Rect) {
	d.cache.insert(id, pg, bounds)
	for d.cache.len() > d.cache.capPages {
		hotSkips := d.cache.evictOne(&d.hist)
		d.evictions++
		d.hotRetained += int64(hotSkips)
		if s := d.sink.Load(); s != nil {
			atomic.AddInt64(&s.CacheEvictions, 1)
		}
	}
}

// --------------------------------------------------------------- the cache

// blockCache is an LRU page cache with workload-aware eviction: before
// evicting the least-recently-used page, a short scan skips pages whose
// bounds fall in hot cells of the query histogram, so the hot working set
// survives scans over cold regions (plain LRU would let a single sequential
// sweep flush it).
type blockCache struct {
	capPages int
	entries  map[PageID]*list.Element
	lru      *list.List // front = most recently used
}

type cacheEntry struct {
	id     PageID
	pg     *Page
	bounds geom.Rect
}

// evictScan bounds how many LRU-end entries an eviction inspects while
// looking for a cold victim; beyond it the policy degrades to plain LRU.
const evictScan = 8

func (c *blockCache) init(capPages int) {
	c.capPages = capPages
	c.entries = make(map[PageID]*list.Element)
	c.lru = list.New()
}

func (c *blockCache) len() int { return c.lru.Len() }

// bytesResident sums the cached pages' footprint on demand; incremental
// accounting cannot work because update paths mutate the cached *Page in
// place before Update is called.
func (c *blockCache) bytesResident() int64 {
	var b int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		b += el.Value.(*cacheEntry).pg.Bytes()
	}
	return b
}

func (c *blockCache) get(id PageID) *cacheEntry {
	el, ok := c.entries[id]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

func (c *blockCache) insert(id PageID, pg *Page, bounds geom.Rect) {
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.pg, e.bounds = pg, bounds
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, pg: pg, bounds: bounds})
}

func (c *blockCache) resize(e *cacheEntry, pts []geom.Point, bounds geom.Rect) {
	e.pg.Pts = pts
	e.bounds = bounds
}

func (c *blockCache) drop(id PageID) {
	if el, ok := c.entries[id]; ok {
		c.lru.Remove(el)
		delete(c.entries, id)
	}
}

// evictOne removes one entry, preferring the least-recently-used page that
// is NOT pinned by a hot histogram cell. Returns how many hot pages were
// genuinely retained in favor of a colder victim; when every scanned
// candidate is hot the policy degrades to plain LRU and nothing was
// retained, so zero is reported.
func (c *blockCache) evictOne(h *queryHist) (hotSkips int) {
	victim := c.lru.Back()
	if victim == nil {
		return 0
	}
	el := victim
	foundCold := false
	for i := 0; el != nil && i < evictScan; i++ {
		e := el.Value.(*cacheEntry)
		if !h.hot(e.bounds) {
			victim = el
			foundCold = true
			break
		}
		hotSkips++
		el = el.Prev()
	}
	if !foundCold {
		hotSkips = 0
	}
	e := victim.Value.(*cacheEntry)
	c.lru.Remove(victim)
	delete(c.entries, e.id)
	return hotSkips
}

// ----------------------------------------------------------- the histogram

// queryHist is the RebuildAdvisor-style spatial histogram of recent query
// centers that makes eviction workload-aware. It keeps a sliding window of
// the last HistWindow queries over a side x side grid; a cell is hot when
// its share of the window is well above the uniform share.
type queryHist struct {
	side   int
	space  geom.Rect
	haveSp bool
	counts []int
	window []int32
	next   int
	filled int
}

const histSide = 16

func (h *queryHist) init(window int) {
	h.side = histSide
	h.counts = make([]int, h.side*h.side)
	h.window = make([]int32, window)
	for i := range h.window {
		h.window[i] = -1
	}
	h.next = 0
	h.filled = 0
	// space survives re-init deliberately: the data domain does not change
	// when the cache is dropped.
}

// extendSpace grows the histogram's domain to cover r. Cell assignments of
// previously windowed queries are not remapped; the window turns over
// quickly enough that transient misclassification is harmless.
func (h *queryHist) extendSpace(r geom.Rect) {
	if !h.haveSp {
		h.space, h.haveSp = r, true
		return
	}
	h.space = h.space.Union(r)
}

func (h *queryHist) cellOf(p geom.Point) int32 {
	w, ht := h.space.Width(), h.space.Height()
	if w <= 0 {
		w = 1
	}
	if ht <= 0 {
		ht = 1
	}
	cx := int((p.X - h.space.MinX) / w * float64(h.side))
	cy := int((p.Y - h.space.MinY) / ht * float64(h.side))
	cx = clampInt(cx, 0, h.side-1)
	cy = clampInt(cy, 0, h.side-1)
	return int32(cy*h.side + cx)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h *queryHist) observe(r geom.Rect) {
	h.extendSpace(r)
	c := h.cellOf(r.Center())
	if old := h.window[h.next]; old >= 0 {
		h.counts[old]--
	} else {
		h.filled++
	}
	h.window[h.next] = c
	h.counts[c]++
	h.next = (h.next + 1) % len(h.window)
}

// hot reports whether bounds overlap a histogram cell whose recent-query
// share is at least twice the uniform share (with a small absolute floor so
// a near-empty window pins nothing).
func (h *queryHist) hot(bounds geom.Rect) bool {
	if !h.haveSp || h.filled < len(h.window)/4 {
		return false
	}
	threshold := 2 * h.filled / (h.side * h.side)
	if threshold < 4 {
		threshold = 4
	}
	lo := h.cellOf(geom.Point{X: bounds.MinX, Y: bounds.MinY})
	hi := h.cellOf(geom.Point{X: bounds.MaxX, Y: bounds.MaxY})
	x0, y0 := int(lo)%h.side, int(lo)/h.side
	x1, y1 := int(hi)%h.side, int(hi)/h.side
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if h.counts[y*h.side+x] > threshold {
				return true
			}
		}
	}
	return false
}
