package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/obs"
)

// PageFile is the positional-I/O surface DiskStore drives its page file
// through. Production stores use *os.File directly; tests inject failing
// implementations (indextest.CrashFS wraps one) to exercise the panic and
// single-flight recovery paths on an already validated file.
type PageFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Sync() error
	Close() error
}

// DiskStore is the disk-resident PageStore: a fixed-slot page file plus an
// in-memory block cache whose eviction is workload-aware. Pages are chains
// of fixed-size slots (one slot fits SlotCap points; oversized pages —
// coincident-point leaves that cannot split — chain continuation slots), and
// freed slots are recycled through an on-file free list, so the file never
// needs compaction to stay bounded.
//
// Reads come in two modes. In mmap mode (the default wherever the platform
// supports it — see mmapSupported) the file is mapped read-only and shared,
// and a cache fault serves a borrowed view straight over the mapped bytes:
// single-slot pages are reinterpreted in place with zero copying and zero
// point allocations. In pread mode (DisableMmap, unsupported platforms, or
// injected PageFiles) a fault decodes a private heap copy as before. Both
// modes share the block cache, so the hit path is identical — and
// allocation-free — either way.
//
// Borrowed views are kept safe by a recycle guard rather than by copying:
// every pinned PageView holds a refcount (per cache entry and store-wide),
// and while any view is pinned the store never RECYCLES a freed slot —
// popSlot extends the file instead of reusing the free list — and never
// unmaps a mapping. Freeing only rewrites slot HEADERS (the free-list
// links), so the point bytes a view aliases stay intact until the last pin
// drops. Mappings are only ever grown by mapping the file again at a larger
// size; old mappings stay valid (views and cached pages alias them) and are
// unmapped together at Close, deferred past Close to the final unpin if
// views are still pinned then.
//
// The file carries a versioned header in the same discipline as the Sharded
// snapshot format: OpenPageFile refuses foreign magic or unknown versions
// with a clear error and fully validates the slot graph (free list, chain
// structure) before serving from it, which is what makes the warm-start path
// safe to point at a file written by an earlier process.
//
// Crash consistency is explicitly not a goal: writes are buffered until
// Sync, matching the snapshot-oriented durability model of the rest of the
// repository (persist on graceful shutdown, rebuild on hard crash).
type DiskStore struct {
	mu      sync.Mutex
	f       PageFile
	osf     *os.File // nil when the PageFile is injected (disables mmap)
	path    string
	slotCap int
	slots   int32 // slots physically present in the file
	free    int32 // head of the free-slot chain, -1 when empty
	nfree   int
	npages  int
	closed  bool

	// maps are the file's read-only mappings, oldest first; the last one
	// covers the whole file and serves new views. nil in pread mode.
	// reaped records that Close already released them (possibly from the
	// final unpin, after Close found views still pinned).
	maps   []*fileMap
	reaped bool

	// pins counts pinned PageViews across the store. While nonzero, freed
	// slots are not recycled and mappings are not unmapped — the recycle
	// guard that makes borrowed views safe against Free/Alloc/retirement
	// races. closing mirrors d.closed for the lock-free unpin fast path.
	pins    atomic.Int64
	closing atomic.Bool

	cache blockCache
	// loading single-flights concurrent faults of the same page in pread
	// mode: the winner reads from disk outside the mutex, everyone else
	// waits on its channel. Readers of other pages (hits or faults)
	// proceed. Mmap-mode faults never leave the mutex (constructing a view
	// issues no I/O; the kernel pages bytes in lazily when the scan
	// touches them), so they bypass this map entirely.
	loading map[PageID]chan struct{}
	hist    queryHist
	sink    atomic.Pointer[Stats]

	// reads/readNanos count page-file read operations and their summed
	// latency. They are atomics (not mu-guarded) so traced query paths can
	// take before/after deltas without touching the store mutex.
	reads     atomic.Int64
	readNanos atomic.Int64
	readObs   atomic.Pointer[obs.Histogram]

	hits, misses, evictions, hotRetained int64 // guarded by mu
}

// DiskOptions tune a disk-resident store.
type DiskOptions struct {
	// SlotCap is the number of points one file slot holds. It should match
	// the index's leaf capacity so that in the common case a page is one
	// slot. Default 256. On OpenPageFile the file header's capacity is
	// authoritative (it sizes all slot-offset arithmetic): leaving SlotCap
	// zero adopts the header's value, while an explicit nonzero value that
	// disagrees with the header is refused with an error rather than
	// silently mis-addressing every slot.
	SlotCap int
	// CachePages bounds the block cache, in pages. Default 1024.
	CachePages int
	// HistWindow is the sliding window of the workload histogram feeding
	// eviction decisions. Default 1024 queries.
	HistWindow int
	// DisableMmap forces the pread+decode read path even where the
	// platform supports the zero-copy mapping mode.
	DisableMmap bool
	// WrapFile, when non-nil, wraps the opened page file before the store
	// uses it — the fault-injection seam (indextest.CrashFS). An injected
	// PageFile implies pread mode: the mapping path needs the raw
	// descriptor and would bypass the wrapper's read accounting anyway.
	WrapFile func(*os.File) PageFile
}

func (o *DiskOptions) fill() {
	if o.SlotCap <= 0 {
		o.SlotCap = 256
	}
	if o.CachePages <= 0 {
		o.CachePages = 1024
	}
	if o.HistWindow <= 0 {
		o.HistWindow = 1024
	}
}

// Page-file format constants. The header is fixed-size; slots follow
// back to back.
const (
	pageFileMagic   = "waziPageFile"
	pageFileVersion = 1
	fileHeaderSize  = 64
	slotHeaderSize  = 48 // used u32, count u32, next i32, pad u32, bounds 4xf64
	pointSize       = 16

	slotFree = 0 // slot is on the free list
	slotHead = 1 // first slot of a page chain; bounds are meaningful
	slotCont = 2 // continuation slot of an oversized page

	// maxSlotCap bounds the slot capacity a header may declare, keeping
	// adversarial files from driving huge allocations during validation.
	maxSlotCap = 1 << 20
)

func (d *DiskStore) slotSize() int64 {
	return int64(slotHeaderSize + d.slotCap*pointSize)
}

func (d *DiskStore) slotOff(i int32) int64 {
	return fileHeaderSize + int64(i)*d.slotSize()
}

// CreatePageFile creates (truncating any previous content) a page file at
// path and returns an empty store over it.
func CreatePageFile(path string, o DiskOptions) (*DiskStore, error) {
	o.fill()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating page file: %w", err)
	}
	d := newDiskStore(f, path, o)
	if err := d.writeHeader(); err != nil {
		d.f.Close()
		return nil, err
	}
	if err := d.initMmap(); err != nil {
		d.f.Close()
		return nil, err
	}
	return d, nil
}

// OpenPageFile adopts an existing page file written by CreatePageFile — the
// warm-start path. The header is version-checked and the entire slot graph
// (free list, page chains) is validated before any page is served; a
// corrupt, truncated, or foreign file is refused with an error, never a
// panic. The header's slot capacity is authoritative; an explicit
// o.SlotCap that disagrees with it is refused (see DiskOptions.SlotCap).
func OpenPageFile(path string, o DiskOptions) (*DiskStore, error) {
	askedSlotCap := o.SlotCap
	o.fill()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening page file: %w", err)
	}
	d, err := adoptPageFile(f, path, o, askedSlotCap)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: %w", path, err)
	}
	if err := d.initMmap(); err != nil {
		d.f.Close()
		return nil, fmt.Errorf("storage: page file %s: %w", path, err)
	}
	return d, nil
}

func newDiskStore(f *os.File, path string, o DiskOptions) *DiskStore {
	d := &DiskStore{path: path, slotCap: o.SlotCap, free: -1,
		loading: make(map[PageID]chan struct{})}
	if o.WrapFile != nil {
		d.f = o.WrapFile(f) // injected I/O implies pread mode
	} else {
		d.f = f
		if mmapSupported && !o.DisableMmap {
			d.osf = f
		}
	}
	d.cache.init(o.CachePages)
	d.hist.init(o.HistWindow)
	return d
}

// initMmap creates the initial mapping when the store runs in mmap mode; in
// pread mode it is a no-op. A mapping failure falls back to pread rather
// than failing the open: the mapping is an optimization, not a correctness
// requirement.
func (d *DiskStore) initMmap() error {
	if d.osf == nil {
		return nil
	}
	size := fileHeaderSize + int64(d.slots)*d.slotSize()
	m, err := mapFile(d.osf, size*2)
	if err != nil {
		d.osf = nil // pread fallback
		return nil
	}
	d.maps = []*fileMap{m}
	return nil
}

// MmapMode reports whether the store serves zero-copy views over a file
// mapping (false: pread+decode mode).
func (d *DiskStore) MmapMode() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.osf != nil
}

// curMap returns the newest (whole-file) mapping. Callers hold d.mu.
func (d *DiskStore) curMap() *fileMap { return d.maps[len(d.maps)-1] }

// ensureMapped grows the mapping set to cover the file's current size,
// called after the file is extended. Old mappings are kept: borrowed views
// and cached pages alias them, and they remain valid and coherent (the file
// only ever grows). On failure the store degrades to pread mode for new
// faults; existing mappings stay serviceable. Callers hold d.mu.
func (d *DiskStore) ensureMapped() {
	if d.osf == nil {
		return
	}
	size := fileHeaderSize + int64(d.slots)*d.slotSize()
	if d.curMap().covers(0, size) {
		return
	}
	m, err := mapFile(d.osf, size*2)
	if err != nil {
		d.osf = nil
		return
	}
	d.maps = append(d.maps, m)
}

func (d *DiskStore) writeHeader() error {
	var h [fileHeaderSize]byte
	copy(h[:12], pageFileMagic)
	binary.LittleEndian.PutUint32(h[12:], pageFileVersion)
	binary.LittleEndian.PutUint32(h[16:], uint32(d.slotCap))
	binary.LittleEndian.PutUint32(h[20:], uint32(d.slots))
	binary.LittleEndian.PutUint32(h[24:], uint32(d.free))
	binary.LittleEndian.PutUint32(h[28:], uint32(d.npages))
	if _, err := d.f.WriteAt(h[:], 0); err != nil {
		return fmt.Errorf("storage: writing page-file header: %w", err)
	}
	return nil
}

// adoptPageFile validates the header and the full slot graph of an existing
// file and reconstructs the in-memory free-list state. askedSlotCap is the
// caller's pre-fill SlotCap: zero adopts the header's capacity, a nonzero
// value must agree with it.
func adoptPageFile(f *os.File, path string, o DiskOptions, askedSlotCap int) (*DiskStore, error) {
	var h [fileHeaderSize]byte
	if _, err := f.ReadAt(h[:], 0); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if string(h[:12]) != pageFileMagic {
		return nil, fmt.Errorf("not a wazi page file (magic %q)", h[:12])
	}
	if v := binary.LittleEndian.Uint32(h[12:]); v != pageFileVersion {
		return nil, fmt.Errorf("unsupported page-file version %d (this build reads version %d)", v, pageFileVersion)
	}
	slotCap := int(binary.LittleEndian.Uint32(h[16:]))
	if slotCap <= 0 || slotCap > maxSlotCap {
		return nil, fmt.Errorf("implausible slot capacity %d", slotCap)
	}
	if askedSlotCap > 0 && askedSlotCap != slotCap {
		return nil, fmt.Errorf("slot capacity mismatch: file header says %d points per slot, caller asked for %d (the header value sizes all slot addressing; open with SlotCap 0 to adopt it)", slotCap, askedSlotCap)
	}
	slots := int32(binary.LittleEndian.Uint32(h[20:]))
	freeHead := int32(binary.LittleEndian.Uint32(h[24:]))
	npages := int(binary.LittleEndian.Uint32(h[28:]))
	if slots < 0 {
		return nil, fmt.Errorf("implausible slot count %d", slots)
	}

	o.SlotCap = slotCap
	d := newDiskStore(f, path, o)
	d.slots = slots
	d.free = freeHead

	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if want := fileHeaderSize + int64(slots)*d.slotSize(); st.Size() != want {
		return nil, fmt.Errorf("file size %d does not match %d slots (want %d)", st.Size(), slots, want)
	}

	// One pass over the slot headers, then structural validation: the free
	// chain must cover exactly the free slots, and page chains must cover
	// exactly the continuation slots, with no sharing or cycles.
	used := make([]uint32, slots)
	next := make([]int32, slots)
	counts := make([]uint32, slots)
	var sh [slotHeaderSize]byte
	for i := int32(0); i < slots; i++ {
		if _, err := f.ReadAt(sh[:16], d.slotOff(i)); err != nil {
			return nil, fmt.Errorf("reading slot %d header: %w", i, err)
		}
		used[i] = binary.LittleEndian.Uint32(sh[0:])
		counts[i] = binary.LittleEndian.Uint32(sh[4:])
		next[i] = int32(binary.LittleEndian.Uint32(sh[8:]))
		if used[i] > slotCont {
			return nil, fmt.Errorf("slot %d: invalid state %d", i, used[i])
		}
		if counts[i] > uint32(slotCap) {
			return nil, fmt.Errorf("slot %d: count %d exceeds slot capacity %d", i, counts[i], slotCap)
		}
		if next[i] != -1 && (next[i] < 0 || next[i] >= slots) {
			return nil, fmt.Errorf("slot %d: next %d out of range", i, next[i])
		}
	}
	seen := make([]bool, slots)
	nfree := 0
	for i := freeHead; i != -1; i = next[i] {
		if i < 0 || i >= slots {
			return nil, fmt.Errorf("free list escapes the file at slot %d", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("free list cycles at slot %d", i)
		}
		if used[i] != slotFree {
			return nil, fmt.Errorf("free list visits live slot %d", i)
		}
		seen[i] = true
		nfree++
	}
	heads := 0
	for i := int32(0); i < slots; i++ {
		switch used[i] {
		case slotFree:
			if !seen[i] {
				return nil, fmt.Errorf("free slot %d not on the free list", i)
			}
		case slotHead:
			heads++
			for j := next[i]; j != -1; j = next[j] {
				if seen[j] {
					return nil, fmt.Errorf("slot %d appears in two chains", j)
				}
				if used[j] != slotCont {
					return nil, fmt.Errorf("chain from head %d visits non-continuation slot %d", i, j)
				}
				seen[j] = true
			}
		}
	}
	for i := int32(0); i < slots; i++ {
		if used[i] == slotCont && !seen[i] {
			return nil, fmt.Errorf("continuation slot %d belongs to no chain", i)
		}
	}
	if heads != npages {
		return nil, fmt.Errorf("header claims %d pages, file holds %d", npages, heads)
	}
	d.nfree = nfree
	d.npages = npages
	return d, nil
}

// ioPanic reports an unrecoverable I/O failure on a validated file. See the
// PageStore contract.
func (d *DiskStore) ioPanic(op string, err error) {
	panic(fmt.Sprintf("storage: page file %s: %s: %v", d.path, op, err))
}

// readSlotHeader returns (used, count, next, bounds) of slot i.
func (d *DiskStore) readSlotHeader(i int32) (uint32, int, int32, geom.Rect) {
	var sh [slotHeaderSize]byte
	if _, err := d.f.ReadAt(sh[:], d.slotOff(i)); err != nil {
		d.ioPanic(fmt.Sprintf("reading slot %d", i), err)
	}
	var b geom.Rect
	b.MinX = math.Float64frombits(binary.LittleEndian.Uint64(sh[16:]))
	b.MinY = math.Float64frombits(binary.LittleEndian.Uint64(sh[24:]))
	b.MaxX = math.Float64frombits(binary.LittleEndian.Uint64(sh[32:]))
	b.MaxY = math.Float64frombits(binary.LittleEndian.Uint64(sh[40:]))
	return binary.LittleEndian.Uint32(sh[0:]), int(binary.LittleEndian.Uint32(sh[4:])), int32(binary.LittleEndian.Uint32(sh[8:])), b
}

// writeSlot writes one slot: header plus its share of the points.
func (d *DiskStore) writeSlot(i int32, state uint32, pts []geom.Point, next int32, bounds geom.Rect) {
	buf := make([]byte, slotHeaderSize+len(pts)*pointSize)
	binary.LittleEndian.PutUint32(buf[0:], state)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(pts)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(next))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(bounds.MinX))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(bounds.MinY))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(bounds.MaxX))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(bounds.MaxY))
	for j, p := range pts {
		binary.LittleEndian.PutUint64(buf[slotHeaderSize+j*pointSize:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[slotHeaderSize+j*pointSize+8:], math.Float64bits(p.Y))
	}
	if _, err := d.f.WriteAt(buf, d.slotOff(i)); err != nil {
		d.ioPanic(fmt.Sprintf("writing slot %d", i), err)
	}
}

// popSlot takes a slot from the free list, extending the file when none is
// available. The free list is consulted only while NO view is pinned — this
// is the recycle guard: a pinned view may alias the point bytes of a freed
// slot, so while pins are outstanding new allocations extend the file
// instead of rewriting parked slots. Callers hold d.mu.
func (d *DiskStore) popSlot() int32 {
	if d.free != -1 && d.pins.Load() == 0 {
		i := d.free
		_, _, next, _ := d.readSlotHeader(i)
		d.free = next
		d.nfree--
		return i
	}
	i := d.slots
	d.slots++
	if err := d.f.Truncate(fileHeaderSize + int64(d.slots)*d.slotSize()); err != nil {
		d.ioPanic("extending file", err)
	}
	d.ensureMapped()
	return i
}

// pushSlot returns a slot to the free list. Callers hold d.mu.
func (d *DiskStore) pushSlot(i int32) {
	d.writeSlot(i, slotFree, nil, d.free, geom.Rect{})
	d.free = i
	d.nfree++
}

// chainSlots returns the slot chain of page id, head first.
func (d *DiskStore) chainSlots(id PageID) []int32 {
	var chain []int32
	for i := int32(id); i != -1; {
		chain = append(chain, i)
		_, _, next, _ := d.readSlotHeader(i)
		i = next
		if len(chain) > int(d.slots) {
			d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", id))
		}
	}
	return chain
}

// writeChain lays pts out over a slot chain for page id, reusing the given
// existing chain, growing or shrinking it as needed. Callers hold d.mu.
func (d *DiskStore) writeChain(chain []int32, pts []geom.Point, bounds geom.Rect) {
	need := (len(pts) + d.slotCap - 1) / d.slotCap
	if need == 0 {
		need = 1
	}
	for len(chain) < need {
		chain = append(chain, d.popSlot())
	}
	for _, extra := range chain[need:] {
		d.pushSlot(extra)
	}
	chain = chain[:need]
	for j, i := range chain {
		lo := j * d.slotCap
		hi := lo + d.slotCap
		if hi > len(pts) {
			hi = len(pts)
		}
		state := uint32(slotCont)
		if j == 0 {
			state = slotHead
		}
		next := int32(-1)
		if j+1 < need {
			next = chain[j+1]
		}
		d.writeSlot(i, state, pts[lo:hi], next, bounds)
	}
}

// readPage assembles the page from its slot chain with positional reads; it
// runs OUTSIDE d.mu (the pread fault path), so it must not touch mutable
// store state — maxPts is the caller's mu-captured cycle bound.
func (d *DiskStore) readPage(id PageID, maxPts int) (*Page, geom.Rect) {
	state, count, next, bounds := d.readSlotHeader(int32(id))
	if state != slotHead {
		d.ioPanic("resolving page", fmt.Errorf("page %d is not a chain head (state %d)", id, state))
	}
	pts := make([]geom.Point, 0, count)
	i := int32(id)
	for {
		pts = append(pts, d.readSlotPoints(i, count)...)
		if next == -1 {
			break
		}
		i = next
		if len(pts) > maxPts {
			d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", id))
		}
		_, count, next, _ = d.readSlotHeader(i)
	}
	return &Page{Pts: pts}, bounds
}

func (d *DiskStore) readSlotPoints(i int32, count int) []geom.Point {
	if count == 0 {
		return nil
	}
	buf := make([]byte, count*pointSize)
	if _, err := d.f.ReadAt(buf, d.slotOff(i)+slotHeaderSize); err != nil {
		d.ioPanic(fmt.Sprintf("reading slot %d points", i), err)
	}
	pts := make([]geom.Point, count)
	for j := range pts {
		pts[j].X = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*pointSize:]))
		pts[j].Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*pointSize+8:]))
	}
	return pts
}

// ----------------------------------------------------------- PageStore API

// Alloc implements PageStore. In mmap mode a single-slot page is cached as
// a zero-copy view over the just-written file bytes (coherent with WriteAt
// through the shared mapping), so bulk builds do not hold a second heap
// copy of every page; otherwise the cache keeps a private copy as before.
func (d *DiskStore) Alloc(pts []geom.Point, bounds geom.Rect) PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	head := d.popSlot()
	chain := []int32{head}
	d.writeChain(chain, pts, bounds)
	d.npages++
	id := PageID(head)
	if d.osf != nil && len(pts) <= d.slotCap {
		m := d.curMap()
		d.cacheInsert(id, &Page{Pts: m.pointsAt(d.slotOff(head)+slotHeaderSize, len(pts))}, bounds, true)
	} else {
		d.cacheInsert(id, &Page{Pts: append([]geom.Point(nil), pts...)}, bounds, false)
	}
	d.hist.extendSpace(bounds)
	return id
}

// pageEntry resolves id to its (pinned) cache entry, faulting on a miss,
// and returns the entry together with the page's points as captured under
// the store mutex. It is the shared core of Page and View; the caller owns
// one pin on the returned entry and must release it (View hands the pin to
// the PageView; Page drops it after promoting).
//
// The cache-hit path performs no allocations: a map lookup, an LRU move,
// and two pin increments. A pread-mode miss reads from disk OUTSIDE the
// store mutex (file reads are positional and the structural fields a fault
// touches are immutable while reads are running — mutation requires the
// same exclusive access as any index update), so one cold fault never
// blocks hits or faults of other pages; concurrent faults of the same page
// are single-flighted through d.loading. An mmap-mode miss never leaves
// the mutex: constructing the borrowed view issues no read syscall, and
// the kernel pages the bytes in lazily when the scan touches them.
func (d *DiskStore) pageEntry(id PageID) (*cacheEntry, []geom.Point) {
	d.mu.Lock()
	for {
		if e := d.cache.get(id); e != nil {
			d.hits++
			if s := d.sink.Load(); s != nil {
				atomic.AddInt64(&s.CacheHits, 1)
			}
			e.pins.Add(1)
			d.pins.Add(1)
			pts := e.pg.Pts
			d.mu.Unlock()
			return e, pts
		}
		if d.osf != nil {
			e := d.faultMapped(id)
			e.pins.Add(1)
			d.pins.Add(1)
			pts := e.pg.Pts
			d.mu.Unlock()
			return e, pts
		}
		ch, inflight := d.loading[id]
		if !inflight {
			break
		}
		d.mu.Unlock()
		<-ch
		d.mu.Lock()
	}
	d.misses++
	if s := d.sink.Load(); s != nil {
		atomic.AddInt64(&s.CacheMisses, 1)
	}
	ch := make(chan struct{})
	d.loading[id] = ch
	// Captured under mu: the fault runs unlocked and may race a concurrent
	// Alloc growing the file; the cycle guard only needs a stable bound.
	maxPts := int(d.slots) * d.slotCap
	d.mu.Unlock()
	// Deregister via defer so the latch is released even if readPage
	// panics (I/O failure): in a process that survives the panic (e.g.
	// behind net/http's handler recovery), waiters must refault rather
	// than block forever on a channel nobody will close.
	defer func() {
		d.mu.Lock()
		delete(d.loading, id)
		close(ch)
		d.mu.Unlock()
	}()

	t0 := time.Now()
	pg, bounds := d.readPage(id, maxPts)
	elapsed := time.Since(t0)
	d.reads.Add(1)
	d.readNanos.Add(int64(elapsed))
	if h := d.readObs.Load(); h != nil {
		h.Observe(elapsed.Seconds())
	}

	d.mu.Lock()
	e := d.cacheInsert(id, pg, bounds, false)
	e.pins.Add(1)
	d.pins.Add(1)
	pts := e.pg.Pts
	d.mu.Unlock()
	return e, pts
}

// faultMapped services a cache miss from the file mapping: a single-slot
// page (the common case — SlotCap matches the leaf capacity) becomes a
// zero-copy Page aliasing the mapped bytes; a chained page is decoded into
// a private heap copy, chained slabs being non-contiguous on file. Counts
// as a miss and as one page-file read. Callers hold d.mu.
func (d *DiskStore) faultMapped(id PageID) *cacheEntry {
	d.misses++
	if s := d.sink.Load(); s != nil {
		atomic.AddInt64(&s.CacheMisses, 1)
	}
	t0 := time.Now()
	m := d.curMap()
	state, count, next, bounds := d.slotHeaderMapped(m, int32(id))
	if state != slotHead {
		d.ioPanic("resolving page", fmt.Errorf("page %d is not a chain head (state %d)", id, state))
	}
	var pg *Page
	mmapped := next == -1
	if mmapped {
		pg = &Page{Pts: m.pointsAt(d.slotOff(int32(id))+slotHeaderSize, count)}
	} else {
		total := d.chainLenMapped(m, int32(id))
		pts := make([]geom.Point, 0, total)
		i := int32(id)
		for {
			pts = append(pts, m.pointsAt(d.slotOff(i)+slotHeaderSize, count)...)
			if next == -1 {
				break
			}
			i = next
			if len(pts) > int(d.slots)*d.slotCap {
				d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", id))
			}
			_, count, next, _ = d.slotHeaderMapped(m, i)
		}
		pg = &Page{Pts: pts}
	}
	elapsed := time.Since(t0)
	d.reads.Add(1)
	d.readNanos.Add(int64(elapsed))
	if h := d.readObs.Load(); h != nil {
		h.Observe(elapsed.Seconds())
	}
	return d.cacheInsert(PageID(id), pg, bounds, mmapped)
}

// slotHeaderMapped is readSlotHeader served from the mapping (no syscall).
// Callers hold d.mu.
func (d *DiskStore) slotHeaderMapped(m *fileMap, i int32) (uint32, int, int32, geom.Rect) {
	off := d.slotOff(i)
	sh := m.data[off : off+slotHeaderSize]
	var b geom.Rect
	b.MinX = math.Float64frombits(binary.LittleEndian.Uint64(sh[16:]))
	b.MinY = math.Float64frombits(binary.LittleEndian.Uint64(sh[24:]))
	b.MaxX = math.Float64frombits(binary.LittleEndian.Uint64(sh[32:]))
	b.MaxY = math.Float64frombits(binary.LittleEndian.Uint64(sh[40:]))
	return binary.LittleEndian.Uint32(sh[0:]), int(binary.LittleEndian.Uint32(sh[4:])), int32(binary.LittleEndian.Uint32(sh[8:])), b
}

// chainLenMapped sums the point counts along a page chain via the mapping,
// so a chained decode allocates its exact footprint once. Callers hold d.mu.
func (d *DiskStore) chainLenMapped(m *fileMap, head int32) int {
	total, hops := 0, 0
	for i := head; i != -1; {
		_, count, next, _ := d.slotHeaderMapped(m, i)
		total += count
		i = next
		if hops++; hops > int(d.slots) {
			d.ioPanic("walking page chain", fmt.Errorf("cycle at page %d", head))
		}
	}
	return total
}

// Page implements PageStore. Because callers of Page may mutate the
// returned page as staging for an Update (see the PageStore contract), an
// mmap-backed cache entry is first promoted to a private heap copy — the
// mapping is read-only and must never be written through. Read-only
// callers should use View, which keeps the zero-copy entry intact.
func (d *DiskStore) Page(id PageID) *Page {
	e, _ := d.pageEntry(id)
	d.mu.Lock()
	if e.mmapped {
		pts := make([]geom.Point, len(e.pg.Pts))
		copy(pts, e.pg.Pts)
		e.pg.Pts = pts
		e.mmapped = false
	}
	pg := e.pg
	d.mu.Unlock()
	e.unpin()
	return pg
}

// View implements PageStore: the allocation-free read path. The returned
// view pins its cache entry (and, store-wide, the recycle guard) until
// Release.
func (d *DiskStore) View(id PageID) PageView {
	e, pts := d.pageEntry(id)
	return PageView{Pts: pts, pin: e}
}

// Pins returns the number of currently pinned views, for tests and the
// invalidation fuzzer.
func (d *DiskStore) Pins() int64 { return d.pins.Load() }

// Update implements PageStore.
func (d *DiskStore) Update(id PageID, pts []geom.Point, bounds geom.Rect) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeChain(d.chainSlots(id), pts, bounds)
	if e := d.cache.get(id); e != nil {
		d.cache.resize(e, pts, bounds)
	} else {
		d.cacheInsert(id, &Page{Pts: append([]geom.Point(nil), pts...)}, bounds, false)
	}
	d.hist.extendSpace(bounds)
}

// Free implements PageStore. Only slot HEADERS are rewritten (the free-list
// links): the point bytes stay intact, so pinned views of other pages —
// and even stale views of this one — keep reading the bytes they captured
// until the recycle guard lets popSlot reuse the slots.
func (d *DiskStore) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, i := range d.chainSlots(id) {
		d.pushSlot(i)
	}
	d.npages--
	d.cache.drop(id)
}

// Has reports whether id names a live page.
func (d *DiskStore) Has(id PageID) bool {
	_, ok := d.PageLen(id)
	return ok
}

// PageLen implements PageStore by walking the chain's slot headers only —
// no page data is faulted into the cache.
func (d *DiskStore) PageLen(id PageID) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int32(id) >= d.slots {
		return 0, false
	}
	state, count, next, _ := d.readSlotHeader(int32(id))
	if state != slotHead {
		return 0, false
	}
	total := count
	for hops := 0; next != -1; hops++ {
		if hops > int(d.slots) {
			return 0, false
		}
		state, count, next, _ = d.readSlotHeader(next)
		if state != slotCont {
			return 0, false
		}
		total += count
	}
	return total, true
}

// ObserveQuery implements PageStore: the query center lands in the workload
// histogram that eviction consults.
func (d *DiskStore) ObserveQuery(r geom.Rect) {
	d.mu.Lock()
	d.hist.observe(r)
	d.mu.Unlock()
}

// PageCount implements PageStore.
func (d *DiskStore) PageCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.npages
}

// Bytes implements PageStore: the resident footprint is the block cache.
func (d *DiskStore) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.bytesResident()
}

// FileBytes returns the size of the backing page file.
func (d *DiskStore) FileBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fileHeaderSize + int64(d.slots)*d.slotSize()
}

// CacheStats implements PageStore.
func (d *DiskStore) CacheStats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return CacheStats{
		Hits:        d.hits,
		Misses:      d.misses,
		Evictions:   d.evictions,
		HotRetained: d.hotRetained,
		Resident:    d.cache.len(),
		Capacity:    d.cache.capPages,
	}
}

// SetStatsSink implements PageStore.
func (d *DiskStore) SetStatsSink(s *Stats) { d.sink.Store(s) }

// SetReadObs attaches a latency histogram that every page-file read (cache
// miss) is observed into, in seconds. Pass nil to detach.
func (d *DiskStore) SetReadObs(h *obs.Histogram) { d.readObs.Store(h) }

// ReadIO returns the cumulative number of page-file reads and their summed
// latency in nanoseconds. Traced query paths take before/after deltas to
// attribute page I/O to a single query; under concurrent faulting the delta
// may fold in a neighbor's read, so it is monitoring-grade attribution, not
// an exact accounting.
func (d *DiskStore) ReadIO() (reads, nanos int64) {
	return d.reads.Load(), d.readNanos.Load()
}

// DropCaches empties the block cache (counters are retained), putting the
// store in the state a cold start would see. Benchmarks use it to measure
// disk-cold latency without reopening the file; store retirement uses it to
// release the cache's heap. Safe with views pinned: dropped entries merely
// detach from the cache, their bytes (heap copies, or mapped file bytes
// kept by the recycle guard) stay reachable from every outstanding view.
func (d *DiskStore) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache.init(d.cache.capPages)
}

// Path returns the page file's path.
func (d *DiskStore) Path() string { return d.path }

// Sync implements PageStore: the header is brought up to date and the file
// flushed to stable storage.
func (d *DiskStore) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if err := d.writeHeader(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close implements PageStore. Closing the descriptor does not invalidate
// mappings, so views pinned at Close keep reading valid memory; the
// mappings themselves are released here when no view is pinned, otherwise
// by the final unpin.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.closing.Store(true)
	err := d.writeHeader()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.reapMappingsLocked()
	return err
}

// reapMappings releases the file mappings after Close once the last view
// unpins (the unpin fast path calls it when the store-wide pin count hits
// zero on a closing store).
func (d *DiskStore) reapMappings() {
	d.mu.Lock()
	d.reapMappingsLocked()
	d.mu.Unlock()
}

// reapMappingsLocked unmaps everything iff the store is closed, no view is
// pinned, and the reap has not already happened. It also drops the cache —
// mmap-backed entries alias memory that is about to disappear — and clears
// osf so any (contract-violating) post-close fault takes the pread path and
// surfaces the closed descriptor as an ioPanic instead of a segfault.
// Callers hold d.mu.
func (d *DiskStore) reapMappingsLocked() {
	if d.reaped || !d.closed || d.pins.Load() != 0 {
		return
	}
	d.reaped = true
	d.osf = nil
	d.cache.init(d.cache.capPages)
	for _, m := range d.maps {
		m.unmap()
	}
	d.maps = nil
}

// Kind implements PageStore.
func (d *DiskStore) Kind() string { return "disk" }

// cacheInsert adds a page to the cache and evicts if over capacity, calling
// back into the store's counters. Callers hold d.mu.
func (d *DiskStore) cacheInsert(id PageID, pg *Page, bounds geom.Rect, mmapped bool) *cacheEntry {
	e := d.cache.insert(d, id, pg, bounds, mmapped)
	for d.cache.len() > d.cache.capPages {
		hotSkips := d.cache.evictOne(&d.hist)
		d.evictions++
		d.hotRetained += int64(hotSkips)
		if s := d.sink.Load(); s != nil {
			atomic.AddInt64(&s.CacheEvictions, 1)
		}
	}
	return e
}

// --------------------------------------------------------------- the cache

// blockCache is an LRU page cache with workload-aware eviction: before
// evicting the least-recently-used page, a short scan skips pages whose
// bounds fall in hot cells of the query histogram, so the hot working set
// survives scans over cold regions (plain LRU would let a single sequential
// sweep flush it).
type blockCache struct {
	capPages int
	entries  map[PageID]*list.Element
	lru      *list.List // front = most recently used
}

type cacheEntry struct {
	id     PageID
	pg     *Page
	bounds geom.Rect
	store  *DiskStore
	// pins counts PageViews borrowing this entry's points. A pinned entry
	// survives eviction and DropCaches by simple detachment: the entry (and
	// through it the heap copy or the file mapping) stays reachable from
	// the views, so unpinning after detachment is still well-defined.
	pins atomic.Int32
	// mmapped marks pg.Pts as aliasing the read-only file mapping (true
	// only in mmap mode, single-slot pages). Page() promotes such entries
	// to private heap copies before handing them out as mutable staging.
	mmapped bool
}

// unpin releases one view's pin: the PageView.Release path. Lock-free
// except when the last pin on a closing store triggers the deferred
// mapping reap.
func (e *cacheEntry) unpin() {
	e.pins.Add(-1)
	if e.store.pins.Add(-1) == 0 && e.store.closing.Load() {
		e.store.reapMappings()
	}
}

// evictScan bounds how many LRU-end entries an eviction inspects while
// looking for a cold victim; beyond it the policy degrades to plain LRU.
const evictScan = 8

func (c *blockCache) init(capPages int) {
	c.capPages = capPages
	c.entries = make(map[PageID]*list.Element)
	c.lru = list.New()
}

func (c *blockCache) len() int { return c.lru.Len() }

// bytesResident sums the cached pages' heap footprint on demand;
// incremental accounting cannot work because update paths mutate the cached
// *Page in place before Update is called. The sum counts exact point bytes
// (len, not cap — a chained page's heap copy is its full chain, a
// shrunken-in-place page only its live points) plus per-page bookkeeping;
// mmap-backed entries contribute bookkeeping only, their points being file
// bytes rather than cache heap.
func (c *blockCache) bytesResident() int64 {
	var b int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		b += pageOverheadBytes
		if !e.mmapped {
			b += int64(len(e.pg.Pts)) * pointSize
		}
	}
	return b
}

// pageOverheadBytes approximates the fixed per-cached-page bookkeeping (the
// Page struct's slice header) counted by bytesResident.
const pageOverheadBytes = 24

func (c *blockCache) get(id PageID) *cacheEntry {
	el, ok := c.entries[id]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

func (c *blockCache) insert(d *DiskStore, id PageID, pg *Page, bounds geom.Rect, mmapped bool) *cacheEntry {
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.pg, e.bounds, e.mmapped = pg, bounds, mmapped
		c.lru.MoveToFront(el)
		return e
	}
	e := &cacheEntry{id: id, pg: pg, bounds: bounds, store: d, mmapped: mmapped}
	c.entries[id] = c.lru.PushFront(e)
	return e
}

func (c *blockCache) resize(e *cacheEntry, pts []geom.Point, bounds geom.Rect) {
	e.pg.Pts = pts
	e.bounds = bounds
	e.mmapped = false // pts is caller heap, not mapped file bytes
}

func (c *blockCache) drop(id PageID) {
	if el, ok := c.entries[id]; ok {
		c.lru.Remove(el)
		delete(c.entries, id)
	}
}

// evictOne removes one entry, preferring the least-recently-used page that
// is NOT pinned by a hot histogram cell and NOT pinned by a borrowed view
// (a pinned entry is about to be re-referenced; evicting it would refault
// the page immediately). Returns how many hot pages were genuinely retained
// in favor of a colder victim; when every scanned candidate is hot or
// pinned the policy degrades to plain LRU — evicting even a view-pinned
// entry is safe, the views keep the detached entry's bytes alive — and
// nothing was retained, so zero is reported.
func (c *blockCache) evictOne(h *queryHist) (hotSkips int) {
	victim := c.lru.Back()
	if victim == nil {
		return 0
	}
	el := victim
	foundCold := false
	for i := 0; el != nil && i < evictScan; i++ {
		e := el.Value.(*cacheEntry)
		if e.pins.Load() > 0 {
			el = el.Prev()
			continue
		}
		if !h.hot(e.bounds) {
			victim = el
			foundCold = true
			break
		}
		hotSkips++
		el = el.Prev()
	}
	if !foundCold {
		hotSkips = 0
	}
	e := victim.Value.(*cacheEntry)
	c.lru.Remove(victim)
	delete(c.entries, e.id)
	return hotSkips
}

// ----------------------------------------------------------- the histogram

// queryHist is the RebuildAdvisor-style spatial histogram of recent query
// centers that makes eviction workload-aware. It keeps a sliding window of
// the last HistWindow queries over a side x side grid; a cell is hot when
// its share of the window is well above the uniform share.
type queryHist struct {
	side   int
	space  geom.Rect
	haveSp bool
	counts []int
	window []int32
	next   int
	filled int
}

const histSide = 16

func (h *queryHist) init(window int) {
	h.side = histSide
	h.counts = make([]int, h.side*h.side)
	h.window = make([]int32, window)
	for i := range h.window {
		h.window[i] = -1
	}
	h.next = 0
	h.filled = 0
	// space survives re-init deliberately: the data domain does not change
	// when the cache is dropped.
}

// extendSpace grows the histogram's domain to cover r. Cell assignments of
// previously windowed queries are not remapped; the window turns over
// quickly enough that transient misclassification is harmless.
func (h *queryHist) extendSpace(r geom.Rect) {
	if !h.haveSp {
		h.space, h.haveSp = r, true
		return
	}
	h.space = h.space.Union(r)
}

func (h *queryHist) cellOf(p geom.Point) int32 {
	w, ht := h.space.Width(), h.space.Height()
	if w <= 0 {
		w = 1
	}
	if ht <= 0 {
		ht = 1
	}
	cx := int((p.X - h.space.MinX) / w * float64(h.side))
	cy := int((p.Y - h.space.MinY) / ht * float64(h.side))
	cx = clampInt(cx, 0, h.side-1)
	cy = clampInt(cy, 0, h.side-1)
	return int32(cy*h.side + cx)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h *queryHist) observe(r geom.Rect) {
	h.extendSpace(r)
	c := h.cellOf(r.Center())
	if old := h.window[h.next]; old >= 0 {
		h.counts[old]--
	} else {
		h.filled++
	}
	h.window[h.next] = c
	h.counts[c]++
	h.next = (h.next + 1) % len(h.window)
}

// hot reports whether bounds overlap a histogram cell whose recent-query
// share is at least twice the uniform share (with a small absolute floor so
// a near-empty window pins nothing).
func (h *queryHist) hot(bounds geom.Rect) bool {
	if !h.haveSp || h.filled < len(h.window)/4 {
		return false
	}
	threshold := 2 * h.filled / (h.side * h.side)
	if threshold < 4 {
		threshold = 4
	}
	lo := h.cellOf(geom.Point{X: bounds.MinX, Y: bounds.MinY})
	hi := h.cellOf(geom.Point{X: bounds.MaxX, Y: bounds.MaxY})
	x0, y0 := int(lo)%h.side, int(lo)/h.side
	x1, y1 := int(hi)%h.side, int(hi)/h.side
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if h.counts[y*h.side+x] > threshold {
				return true
			}
		}
	}
	return false
}
