package storage

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
)

func tmpStore(t *testing.T, o DiskOptions) *DiskStore {
	t.Helper()
	d, err := CreatePageFile(filepath.Join(t.TempDir(), "pages"), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func somePoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func samePts(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 4})
	b := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

	// Single-slot, multi-slot (chained), and empty pages all round-trip.
	cases := [][]geom.Point{
		somePoints(5, 1),
		somePoints(8, 2),
		somePoints(9, 3),  // needs 2 slots
		somePoints(40, 4), // needs 5 slots
		nil,
	}
	ids := make([]PageID, len(cases))
	for i, pts := range cases {
		ids[i] = d.Alloc(pts, b)
	}
	for i, pts := range cases {
		samePts(t, d.Page(ids[i]).Pts, pts, "cached read")
	}
	d.DropCaches()
	for i, pts := range cases {
		samePts(t, d.Page(ids[i]).Pts, pts, "disk read")
	}
	if got := d.PageCount(); got != len(cases) {
		t.Fatalf("PageCount = %d, want %d", got, len(cases))
	}
}

func TestDiskStoreUpdateGrowShrink(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 4, CachePages: 2})
	b := geom.Rect{MaxX: 1, MaxY: 1}
	id := d.Alloc(somePoints(3, 1), b)

	grown := somePoints(11, 2) // 1 slot -> 3 slots
	d.Update(id, grown, b)
	d.DropCaches()
	samePts(t, d.Page(id).Pts, grown, "after grow")

	shrunk := somePoints(2, 3) // 3 slots -> 1 slot, extras to the free list
	d.Update(id, shrunk, b)
	d.DropCaches()
	samePts(t, d.Page(id).Pts, shrunk, "after shrink")

	// The freed slots are recycled before the file grows again.
	before := d.FileBytes()
	d.Alloc(somePoints(7, 4), b) // 2 slots, both from the free list
	if d.FileBytes() != before {
		t.Fatalf("file grew from %d to %d despite free slots", before, d.FileBytes())
	}
}

func TestDiskStoreFreeRecycles(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 8})
	b := geom.Rect{MaxX: 1, MaxY: 1}
	var ids []PageID
	for i := 0; i < 10; i++ {
		ids = append(ids, d.Alloc(somePoints(8, int64(i)), b))
	}
	size := d.FileBytes()
	for _, id := range ids {
		d.Free(id)
	}
	if got := d.PageCount(); got != 0 {
		t.Fatalf("PageCount after freeing all = %d", got)
	}
	for i := 0; i < 10; i++ {
		d.Alloc(somePoints(8, int64(100+i)), b)
	}
	if d.FileBytes() != size {
		t.Fatalf("file grew from %d to %d despite a full free list", size, d.FileBytes())
	}
}

func TestDiskStoreHas(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 4, CachePages: 4})
	b := geom.Rect{MaxX: 1, MaxY: 1}
	id := d.Alloc(somePoints(9, 1), b) // head + 2 continuation slots
	if !d.Has(id) {
		t.Fatal("Has(live) = false")
	}
	if d.Has(id + 1) {
		t.Fatal("Has(continuation slot) = true; continuation slots are not pages")
	}
	if d.Has(-1) || d.Has(10_000) {
		t.Fatal("Has out of range = true")
	}
	d.Free(id)
	if d.Has(id) {
		t.Fatal("Has(freed) = true")
	}
}

func TestOpenPageFileAdoptsState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages")
	d, err := CreatePageFile(path, DiskOptions{SlotCap: 8, CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := geom.Rect{MaxX: 1, MaxY: 1}
	keep := d.Alloc(somePoints(20, 1), b)
	gone := d.Alloc(somePoints(8, 2), b)
	d.Free(gone)
	want := d.Page(keep).Pts
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPageFile(path, DiskOptions{CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.slotCap != 8 {
		t.Fatalf("adopted slotCap = %d, want 8", re.slotCap)
	}
	if got := re.PageCount(); got != 1 {
		t.Fatalf("adopted PageCount = %d, want 1", got)
	}
	samePts(t, re.Page(keep).Pts, want, "adopted page")
	// The adopted free list is live: re-allocating must not grow the file.
	size := re.FileBytes()
	re.Alloc(somePoints(8, 3), b)
	if re.FileBytes() != size {
		t.Fatalf("file grew from %d to %d despite adopted free slots", size, re.FileBytes())
	}
}

func TestOpenPageFileRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, mutate func(path string)) string {
		path := filepath.Join(dir, name)
		d, err := CreatePageFile(path, DiskOptions{SlotCap: 4, CachePages: 4})
		if err != nil {
			t.Fatal(err)
		}
		b := geom.Rect{MaxX: 1, MaxY: 1}
		d.Alloc(somePoints(10, 1), b)
		id := d.Alloc(somePoints(4, 2), b)
		d.Free(id)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		mutate(path)
		return path
	}
	patch := func(off int64, val uint32) func(string) {
		return func(path string) {
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], val)
			if _, err := f.WriteAt(buf[:], off); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []struct {
		name   string
		mutate func(string)
		msg    string
	}{
		{"magic", patch(0, 0xdeadbeef), "not a wazi page file"},
		{"version", patch(12, 99), "unsupported page-file version"},
		{"slotcap", patch(16, 0), "implausible slot capacity"},
		{"truncated", func(path string) {
			if err := os.Truncate(path, 80); err != nil {
				t.Fatal(err)
			}
		}, "does not match"},
		{"slot-state", patch(fileHeaderSize, 7), "invalid state"},
		{"slot-count", patch(fileHeaderSize+4, 1000), "exceeds slot capacity"},
		{"free-cycle", patch(24, 2), "free list"}, // free head -> slot 2, whose next is itself... validated either way
		{"page-claim", patch(28, 9), "header claims"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := mk(tc.name, tc.mutate)
			_, err := OpenPageFile(path, DiskOptions{})
			if err == nil {
				t.Fatal("OpenPageFile accepted a corrupt file")
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
	if _, err := OpenPageFile(filepath.Join(dir, "missing"), DiskOptions{}); err == nil {
		t.Fatal("OpenPageFile accepted a missing file")
	}
}

func TestCacheCountersAndSink(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 8, CachePages: 2})
	var sink Stats
	d.SetStatsSink(&sink)
	b := geom.Rect{MaxX: 1, MaxY: 1}
	var ids []PageID
	for i := 0; i < 4; i++ {
		ids = append(ids, d.Alloc(somePoints(8, int64(i)), b))
	}
	// Capacity 2: the four alloc-inserts already evicted two pages.
	cs := d.CacheStats()
	if cs.Resident != 2 || cs.Capacity != 2 {
		t.Fatalf("Resident/Capacity = %d/%d, want 2/2", cs.Resident, cs.Capacity)
	}
	if cs.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", cs.Evictions)
	}
	d.Page(ids[3]) // resident: hit
	d.Page(ids[0]) // evicted long ago: miss
	cs = d.CacheStats()
	if cs.Hits < 1 || cs.Misses < 1 {
		t.Fatalf("Hits/Misses = %d/%d, want >=1 each", cs.Hits, cs.Misses)
	}
	if sink.CacheHits != cs.Hits || sink.CacheMisses != cs.Misses || sink.CacheEvictions != cs.Evictions {
		t.Fatalf("sink %+v does not mirror cache stats %+v", sink, cs)
	}
}

// TestWorkloadAwareEviction drives a hotspot workload into the histogram and
// checks that pages serving the hotspot survive a cold sequential sweep that
// would flush a plain LRU.
func TestWorkloadAwareEviction(t *testing.T) {
	d := tmpStore(t, DiskOptions{SlotCap: 4, CachePages: 8, HistWindow: 64})
	// 32 pages tiling [0,1) on x: page i covers [i/32, (i+1)/32).
	var ids []PageID
	for i := 0; i < 32; i++ {
		lo := float64(i) / 32
		hi := float64(i+1) / 32
		pts := []geom.Point{{X: lo, Y: 0.5}, {X: (lo + hi) / 2, Y: 0.5}}
		ids = append(ids, d.Alloc(pts, geom.Rect{MinX: lo, MinY: 0, MaxX: hi, MaxY: 1}))
	}
	// Declare a hotspot around x ~ 0.05 (pages 0 and 1).
	hot := geom.Rect{MinX: 0.03, MinY: 0.4, MaxX: 0.07, MaxY: 0.6}
	for i := 0; i < 64; i++ {
		d.ObserveQuery(hot)
	}
	// Touch the hot pages so they are resident, then sweep everything else.
	d.DropCaches()
	d.Page(ids[0])
	d.Page(ids[1])
	for i := 2; i < 32; i++ {
		d.Page(ids[i])
	}
	cs := d.CacheStats()
	before := cs.Misses
	d.Page(ids[0])
	d.Page(ids[1])
	cs = d.CacheStats()
	if cs.Misses != before {
		t.Fatalf("hot pages were evicted by the cold sweep (%d new misses); HotRetained=%d",
			cs.Misses-before, cs.HotRetained)
	}
	if cs.HotRetained == 0 {
		t.Fatal("expected eviction scans to report hot retentions")
	}
}

func TestStatsCacheFieldsRoundTrip(t *testing.T) {
	s := Stats{CacheHits: 5, CacheMisses: 3, CacheEvictions: 2}
	d := s.Diff(Stats{CacheHits: 1, CacheMisses: 1, CacheEvictions: 1})
	if d.CacheHits != 4 || d.CacheMisses != 2 || d.CacheEvictions != 1 {
		t.Fatalf("Diff cache fields = %+v", d)
	}
	sum := s.Add(Stats{CacheHits: 1})
	if sum.CacheHits != 6 {
		t.Fatalf("Add cache fields = %+v", sum)
	}
	var a Stats
	a.AtomicAdd(s)
	if got := a.AtomicSnapshot(); got != s {
		t.Fatalf("AtomicAdd/Snapshot = %+v, want %+v", got, s)
	}
}
