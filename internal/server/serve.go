package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// Serve runs the server on ln until ctx is cancelled (cmd/waziserve wires
// SIGTERM/SIGINT into the context), then performs the graceful shutdown
// sequence:
//
//  1. stop accepting and drain in-flight requests (bounded by DrainTimeout);
//  2. stop the read-executor pool;
//  3. write the warm-start snapshot, if SnapshotPath is configured, via
//     write-temp-then-rename so a crash mid-write never corrupts the
//     previous snapshot.
//
// It returns nil after a clean shutdown, the listener error if serving
// failed, and the drain/snapshot error otherwise.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.co.close()
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		// The drain budget ran out with requests still in flight; close hard
		// so the snapshot below is still written.
		_ = hs.Close()
	}
	s.co.close()
	if serr := s.WriteSnapshot(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// WriteSnapshot writes the backend's warm-start snapshot to SnapshotPath
// atomically and durably (temp file + fsync + rename + directory fsync),
// then truncates the write-ahead log up to the snapshot's cut. The order
// is the Save-truncation invariant (docs/DURABILITY.md): the log may only
// shrink once the snapshot that replaces its prefix cannot be lost, which
// is after the rename is itself durable — never on Save alone. It is a
// no-op when no path is configured.
func (s *Server) WriteSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	tmp := s.cfg.SnapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: creating snapshot: %w", err)
	}
	if err := s.b.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.SnapshotPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: publishing snapshot: %w", err)
	}
	syncDir(filepath.Dir(s.cfg.SnapshotPath))
	if _, err := s.truncateWAL(); err != nil {
		// The snapshot is published; a failed truncation only leaves extra
		// log to replay (and a sticky WAL error in /statsz), so don't fail
		// shutdown over it.
		return nil
	}
	return nil
}

// syncDir makes a rename in dir durable. Best effort: some filesystems
// refuse directory fsyncs, and the snapshot is still correct either way —
// only its crash-durability window widens.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// ListenAndServe listens on addr (pass host:0 for an ephemeral port) and
// serves until ctx is cancelled. ready, when non-nil, receives the bound
// address exactly once — how cmd/waziserve publishes its random port to
// scripts and how tests learn where to dial.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return s.Serve(ctx, ln)
}

// WaitHealthy polls GET /healthz at baseURL until it answers 200 or the
// budget elapses — the boot handshake shared by waziload, the serving
// experiments, and CI smoke scripts.
func WaitHealthy(baseURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz returned %s", resp.Status)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy after %v: %w", baseURL, budget, last)
}
