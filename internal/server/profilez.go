package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements anomaly-triggered profile capture: when the serving
// layer records an anomaly — a slow-query breach, or a GC pause past the
// configured SLO — it captures CPU+heap pprof profiles into a bounded
// on-disk ring of capture directories, so the evidence of "why was it slow
// right then" survives the moment without anyone having had a profiler
// attached. Captures are listed and fetched via /debug/profilez and counted
// in /metrics.

// profiler owns the capture ring. A nil *profiler (capture disabled) is
// valid: every method no-ops.
type profiler struct {
	dir      string
	max      int
	cooldown time.Duration
	cpuDur   time.Duration

	mu   sync.Mutex
	last time.Time // start of the most recent capture

	busy atomic.Bool // one capture at a time

	triggered atomic.Int64 // trigger calls
	captured  atomic.Int64 // captures completed (>=1 profile written)
	skipped   atomic.Int64 // triggers dropped by cooldown or an in-flight capture
	errors    atomic.Int64 // file/profile errors during capture
}

// captureIDRe pins the capture directory naming scheme; the fetch handler
// refuses anything else, so /debug/profilez can never serve a path outside
// the ring.
var captureIDRe = regexp.MustCompile(`^capture-(\d{20})-([a-z_]+)$`)

// captureFiles are the only file names a capture may contain and the fetch
// handler may serve.
var captureFiles = map[string]bool{"cpu.pprof": true, "heap.pprof": true}

func newProfiler(dir string, max int, cooldown, cpuDur time.Duration) *profiler {
	if dir == "" {
		return nil
	}
	return &profiler{dir: dir, max: max, cooldown: cooldown, cpuDur: cpuDur}
}

// trigger requests a capture for reason (a lowercase_underscore label).
// Non-blocking: the capture itself runs on its own goroutine. Triggers
// during an in-flight capture or inside the cooldown window are counted
// and dropped — an anomaly storm yields one profile, not hundreds.
func (p *profiler) trigger(reason string) {
	if p == nil {
		return
	}
	p.triggered.Add(1)
	p.mu.Lock()
	now := time.Now()
	ok := !p.busy.Load() && (p.last.IsZero() || now.Sub(p.last) >= p.cooldown)
	if ok {
		p.last = now
		p.busy.Store(true)
	}
	p.mu.Unlock()
	if !ok {
		p.skipped.Add(1)
		return
	}
	go p.capture(reason, now)
}

// capture writes heap.pprof and cpu.pprof into a fresh capture directory,
// then prunes the ring to max entries. The heap profile is written first so
// a capture is fetchable even if CPU profiling is unavailable (e.g. a
// /debug/pprof/profile request already holds the profiler).
func (p *profiler) capture(reason string, at time.Time) {
	defer p.busy.Store(false)
	id := fmt.Sprintf("capture-%020d-%s", at.UnixNano(), reason)
	dir := filepath.Join(p.dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		p.errors.Add(1)
		return
	}
	wrote := false

	runtime.GC() // fold pending frees into the heap profile
	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err != nil {
		p.errors.Add(1)
	} else {
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			p.errors.Add(1)
		} else {
			wrote = true
		}
		f.Close()
	}

	cpuPath := filepath.Join(dir, "cpu.pprof")
	if f, err := os.Create(cpuPath); err != nil {
		p.errors.Add(1)
	} else if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is running; keep the heap-only capture.
		p.errors.Add(1)
		f.Close()
		os.Remove(cpuPath)
	} else {
		time.Sleep(p.cpuDur)
		pprof.StopCPUProfile()
		f.Close()
		wrote = true
	}

	if !wrote {
		os.RemoveAll(dir)
		return
	}
	p.captured.Add(1)
	p.prune()
}

// list returns the ring's captures, newest first.
func (p *profiler) list() []captureInfo {
	ids := p.ids()
	out := make([]captureInfo, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- { // ids sort oldest-first by name
		id := ids[i]
		m := captureIDRe.FindStringSubmatch(id)
		ns, _ := strconv.ParseInt(m[1], 10, 64)
		ci := captureInfo{ID: id, Reason: m[2], UnixNS: ns}
		entries, err := os.ReadDir(filepath.Join(p.dir, id))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !captureFiles[e.Name()] {
				continue
			}
			size := int64(0)
			if fi, err := e.Info(); err == nil {
				size = fi.Size()
			}
			ci.Files = append(ci.Files, captureFile{
				Name:  e.Name(),
				Bytes: size,
				Path:  "/debug/profilez/" + id + "/" + e.Name(),
			})
		}
		out = append(out, ci)
	}
	return out
}

// ids returns the capture directory names sorted oldest-first (the naming
// scheme's zero-padded nanosecond timestamp makes name order time order).
func (p *profiler) ids() []string {
	if p == nil {
		return nil
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && captureIDRe.MatchString(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids
}

// prune deletes oldest captures until at most max remain.
func (p *profiler) prune() {
	ids := p.ids()
	for len(ids) > p.max {
		if err := os.RemoveAll(filepath.Join(p.dir, ids[0])); err != nil {
			p.errors.Add(1)
			return
		}
		ids = ids[1:]
	}
}

// retained counts captures currently on disk, for the gauge.
func (p *profiler) retained() int {
	return len(p.ids())
}

// ---------------------------------------------------------------- endpoints

// captureFile is one fetchable profile within a capture.
type captureFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	Path  string `json:"path"`
}

// captureInfo is one entry of the /debug/profilez listing.
type captureInfo struct {
	ID     string        `json:"id"`
	Reason string        `json:"reason"`
	UnixNS int64         `json:"unix_ns"`
	Files  []captureFile `json:"files"`
}

// profilezResp is the JSON shape of /debug/profilez.
type profilezResp struct {
	Enabled  bool          `json:"enabled"`
	Dir      string        `json:"dir,omitempty"`
	Captured int64         `json:"captured"`
	Skipped  int64         `json:"skipped"`
	Errors   int64         `json:"errors"`
	Captures []captureInfo `json:"captures"`
}

// handleProfilez lists the capture ring.
func (s *Server) handleProfilez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/debug/profilez requires GET")
		return
	}
	resp := profilezResp{Captures: []captureInfo{}}
	if s.prof != nil {
		resp.Enabled = true
		resp.Dir = s.prof.dir
		resp.Captured = s.prof.captured.Load()
		resp.Skipped = s.prof.skipped.Load()
		resp.Errors = s.prof.errors.Load()
		resp.Captures = s.prof.list()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProfilezFetch serves one profile file:
// GET /debug/profilez/<capture-id>/<cpu.pprof|heap.pprof>. Both path
// segments are validated against the ring's naming scheme before any
// filesystem access, so traversal cannot escape the capture directory.
func (s *Server) handleProfilezFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/debug/profilez requires GET")
		return
	}
	if s.prof == nil {
		writeError(w, http.StatusNotFound, "profile capture disabled (set -profile-dir)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/debug/profilez/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || !captureIDRe.MatchString(parts[0]) || !captureFiles[parts[1]] {
		writeError(w, http.StatusNotFound, "want /debug/profilez/<capture-id>/<cpu.pprof|heap.pprof>")
		return
	}
	path := filepath.Join(s.prof.dir, parts[0], parts[1])
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such capture file")
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", parts[0]+"-"+parts[1]))
	http.ServeContent(w, r, parts[1], time.Time{}, f)
}
