package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// newWALTestServer builds a serving stack over a WAL-backed Sharded.
func newWALTestServer(t *testing.T, cfg Config, walDir string) (*Server, *httptest.Server, *wazi.Sharded) {
	t.Helper()
	pts := dataset.Generate(dataset.NewYork, 2000, 1)
	qs := workload.Skewed(dataset.NewYork, 100, 0.0256e-2, 2)
	s, err := wazi.NewSharded(pts, qs, wazi.WithShards(4), wazi.WithoutAutoRebuild(),
		wazi.WithWAL(walDir), wazi.WithWALSync("group"))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(s.Close)
	srv := New(Sharded(s), cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, s
}

// TestStatszAndMetricsExposeWAL asserts the WAL section lands in /statsz
// and the WAL series land in /metrics once writes have flowed.
func TestStatszAndMetricsExposeWAL(t *testing.T) {
	_, ts, _ := newWALTestServer(t, Config{}, filepath.Join(t.TempDir(), "wal"))
	for i := 0; i < 5; i++ {
		code, _ := post(t, ts, "/v1/insert", fmt.Sprintf(`{"point":{"x":%d.5,"y":3.5}}`, i))
		if code != 200 {
			t.Fatalf("insert status %d", code)
		}
	}
	code, body := get(t, ts, "/statsz")
	if code != 200 {
		t.Fatalf("/statsz status %d", code)
	}
	var resp struct {
		WAL *wazi.WALStats `json:"wal"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if resp.WAL == nil || !resp.WAL.Enabled {
		t.Fatal("/statsz has no WAL section despite WithWAL")
	}
	if resp.WAL.Appends != 5 || resp.WAL.DurableSeq != resp.WAL.LastSeq {
		t.Fatalf("WAL section off: %+v", resp.WAL)
	}
	if resp.WAL.Err != "" {
		t.Fatalf("healthy WAL reports error %q", resp.WAL.Err)
	}

	code, body = get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"wazi_wal_appends_total", "wazi_wal_fsyncs_total", "wazi_wal_durable_seq",
		"wazi_wal_healthy", "wazi_wal_fsync_seconds",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}

// TestStatszOmitsWALWhenDisabled asserts a WAL-less backend produces no
// "wal" key at all (omitempty on the pointer).
func TestStatszOmitsWALWhenDisabled(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, body := get(t, ts, "/statsz")
	if code != 200 {
		t.Fatalf("/statsz status %d", code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if _, ok := raw["wal"]; ok {
		t.Fatal("/statsz exposes a wal section for a WAL-less backend")
	}
}

// TestChecksumEndpoint asserts /debug/checksum is stable across reads,
// sensitive to writes, and GET-only.
func TestChecksumEndpoint(t *testing.T) {
	_, ts, idx := newWALTestServer(t, Config{}, filepath.Join(t.TempDir(), "wal"))
	read := func() checksumResp {
		t.Helper()
		code, body := get(t, ts, "/debug/checksum")
		if code != 200 {
			t.Fatalf("/debug/checksum status %d: %s", code, body)
		}
		var r checksumResp
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("decoding /debug/checksum: %v", err)
		}
		return r
	}
	a, b := read(), read()
	if a != b {
		t.Fatalf("checksum unstable without writes: %+v vs %+v", a, b)
	}
	if a.Points != idx.Len() {
		t.Fatalf("checksum points %d, index Len %d", a.Points, idx.Len())
	}
	if code, _ := post(t, ts, "/v1/insert", `{"point":{"x":1.25,"y":2.25}}`); code != 200 {
		t.Fatal("insert failed")
	}
	c := read()
	if c == a || c.Points != a.Points+1 {
		t.Fatalf("checksum blind to a write: before %+v, after %+v", a, c)
	}
	if code, _ := post(t, ts, "/debug/checksum", `{}`); code != 405 {
		t.Fatalf("POST /debug/checksum status %d, want 405", code)
	}
}

// plainBackend narrows a Backend to exactly the Backend method set, hiding
// the optional wal/checksum surfaces the underlying Sharded promotes.
type plainBackend struct{ Backend }

// TestChecksumWithoutBackendSupport asserts backends without ContentChecksum
// get 501, not a panic.
func TestChecksumWithoutBackendSupport(t *testing.T) {
	b, _ := newTestBackend(t)
	srv := New(plainBackend{b}, Config{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if code, _ := get(t, ts, "/debug/checksum"); code != 501 {
		t.Fatalf("/debug/checksum on a plain backend: status %d, want 501", code)
	}
}

// TestWriteSnapshotTruncatesWAL asserts the snapshot-write path honors the
// Save-truncation invariant end to end: after WriteSnapshot, redundant WAL
// segments are gone, and a restart from the snapshot plus the remaining
// tail recovers the full contents.
func TestWriteSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "snap.bin")
	pts := dataset.Generate(dataset.NewYork, 2000, 1)
	qs := workload.Skewed(dataset.NewYork, 100, 0.0256e-2, 2)
	s, err := wazi.NewSharded(pts, qs, wazi.WithShards(4), wazi.WithoutAutoRebuild(),
		wazi.WithWAL(walDir), wazi.WithWALSync("group"), wazi.WithWALSegmentBytes(256))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	srv := New(Sharded(s), Config{SnapshotPath: snapPath})
	t.Cleanup(srv.Close)
	for i := 0; i < 200; i++ {
		s.Insert(wazi.Point{X: float64(i), Y: float64(i)})
	}
	segsBefore := countWALSegments(t, walDir)
	if err := srv.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := countWALSegments(t, walDir); got >= segsBefore {
		t.Fatalf("WriteSnapshot left %d segments (was %d); truncation did not run", got, segsBefore)
	}
	// Post-snapshot writes live only in the surviving tail.
	for i := 0; i < 30; i++ {
		s.Insert(wazi.Point{X: float64(i) + 0.5, Y: float64(i) + 0.5})
	}
	wantSum, wantN := s.ContentChecksum()
	s.Close()

	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("opening snapshot: %v", err)
	}
	defer f.Close()
	r, err := wazi.LoadSharded(f, wazi.WithoutAutoRebuild(),
		wazi.WithWAL(walDir), wazi.WithWALSync("group"), wazi.WithWALSegmentBytes(256))
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	defer r.Close()
	if st := r.WALStats(); st.RecoveredRecords != 30 {
		t.Fatalf("recovered %d records past the snapshot, want 30", st.RecoveredRecords)
	}
	gotSum, gotN := r.ContentChecksum()
	if gotSum != wantSum || gotN != wantN {
		t.Fatalf("restart diverged: %x/%d, want %x/%d", gotSum, gotN, wantSum, wantN)
	}
}

func countWALSegments(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatalf("globbing wal dir: %v", err)
	}
	return len(matches)
}
