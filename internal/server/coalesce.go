package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/obs"
)

// errCoalescerClosed is returned to reads that were still queued when the
// server shut down; the HTTP layer translates it to 503.
var errCoalescerClosed = errors.New("server: shutting down")

// readTask is one pending read: a closure over the decoded request that the
// executing worker runs against a pinned snapshot view. tr/enq carry the
// request's trace through the queue so the worker can attribute the shared
// snapshot pass (queue wait + batch size) to every read it coalesced.
type readTask struct {
	fn   func(ReadView) any
	done chan any
	tr   *obs.QueryTrace
	enq  time.Time
}

// coalescer groups concurrent singleton reads into snapshot passes: a fixed
// pool of workers drains the pending-read queue in batches, pins ONE
// backend view per batch, and executes every read in the batch against it.
// Two things are bought here. First, concurrency control: however many
// requests the admission gate lets in, only `workers` goroutines actually
// touch the index, so fan-out query execution (which parallelizes
// internally) is never oversubscribed by request-handler goroutines.
// Second, shared snapshot passes: under concurrency the per-read atomic
// snapshot load, advisor bookkeeping setup, and scheduler handoff amortize
// over the batch — the "group concurrent reads into one snapshot pass"
// design of this serving layer. Under light load batches degenerate to size
// one and the coalescer adds a single channel hop.
type coalescer struct {
	b         Backend
	tasks     chan *readTask
	quit      chan struct{}
	batch     int
	wg        sync.WaitGroup
	closeOnce sync.Once
	batches   atomic.Int64
	reads     atomic.Int64
}

// newCoalescer starts `workers` executor goroutines. queueCap bounds the
// pending-read channel; the admission gate already bounds how many requests
// can be in flight, so the cap only needs to exceed MaxInflight.
func newCoalescer(b Backend, workers, batch, queueCap int) *coalescer {
	c := &coalescer{
		b:     b,
		tasks: make(chan *readTask, queueCap),
		quit:  make(chan struct{}),
		batch: batch,
	}
	c.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go c.worker()
	}
	return c
}

func (c *coalescer) worker() {
	defer c.wg.Done()
	for {
		var first *readTask
		select {
		case <-c.quit:
			return
		case first = <-c.tasks:
		}
		group := append(make([]*readTask, 0, c.batch), first)
	drain:
		for len(group) < c.batch {
			select {
			case t := <-c.tasks:
				group = append(group, t)
			default:
				break drain
			}
		}
		// One view pins one immutable snapshot; the whole group is a single
		// consistent pass over it.
		v := c.b.View()
		c.batches.Add(1)
		c.reads.Add(int64(len(group)))
		for _, t := range group {
			if t.tr != nil {
				t.tr.AddSpan("batcher", t.enq, time.Since(t.enq),
					map[string]int64{"batch": int64(len(group))})
			}
			t.done <- t.fn(tracedView(v, t.tr))
		}
	}
}

// run enqueues a read and waits for its result. It respects ctx both while
// queueing and while waiting, so a client that disconnects stops consuming
// server resources as soon as a worker would pick its task up.
func (c *coalescer) run(ctx context.Context, fn func(ReadView) any) (any, error) {
	t := &readTask{fn: fn, done: make(chan any, 1), tr: obs.FromContext(ctx), enq: time.Now()}
	select {
	case c.tasks <- t:
	case <-c.quit:
		return nil, errCoalescerClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case res := <-t.done:
		// close() answers still-queued tasks with errCoalescerClosed through
		// the same channel; surface it as the error it is, never as a result.
		if err, ok := res.(error); ok {
			return nil, err
		}
		return res, nil
	case <-c.quit:
		return nil, errCoalescerClosed
	case <-ctx.Done():
		// The worker may still run the task; its send lands in the buffered
		// done channel and is garbage collected with it.
		return nil, ctx.Err()
	}
}

// close stops the workers and fails any still-queued reads. It is
// idempotent: both Server.Close and Serve's shutdown path may call it. The
// HTTP server is drained before close is called, so in the normal shutdown
// sequence the queue is already empty.
func (c *coalescer) close() {
	c.closeOnce.Do(func() {
		close(c.quit)
		c.wg.Wait()
		for {
			select {
			case t := <-c.tasks:
				t.done <- errCoalescerClosed
			default:
				return
			}
		}
	})
}
