package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wazi-index/wazi/internal/bench/harness"
	"github.com/wazi-index/wazi/internal/workload"
)

// This file is the load-generation core shared by cmd/waziload and the
// serving-http bench experiment: replay a wire-encoded operation stream
// against a running server, either one op per request or folded into
// /v1/batch requests, and summarize throughput and request latency.

// LoadOptions configures one load pass.
type LoadOptions struct {
	// Clients is the number of concurrent client goroutines (default 16).
	Clients int
	// Duration is the wall budget of the pass (default 2s).
	Duration time.Duration
	// Batch > 1 folds that many consecutive ops into each /v1/batch
	// request; Batch <= 1 replays op by op on the per-op endpoints.
	Batch int
}

func (o *LoadOptions) fill() {
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
}

// LoadResult is one pass's outcome.
type LoadResult struct {
	Mode      string          `json:"mode"` // "single" or "batch"
	Clients   int             `json:"clients"`
	Batch     int             `json:"batch"`
	Ops       int64           `json:"ops"`
	Requests  int64           `json:"requests"`
	Errors    int64           `json:"errors"`
	Shed      int64           `json:"shed"` // 429 responses, counted separately from errors
	ElapsedNS int64           `json:"elapsed_ns"`
	OpsPerSec float64         `json:"ops_per_sec"`
	ReqPerSec float64         `json:"req_per_sec"`
	LatencyNS harness.Summary `json:"latency_ns"` // per-request latency
}

// LoadTable renders load results in the harness table shape shared by
// cmd/waziload and the serving-http bench experiment, with unit-bearing
// headers so metric mining tags throughput as higher-is-better and the
// latencies as nanoseconds.
func LoadTable(id, suiteName string, clients int, results []LoadResult) harness.Table {
	t := harness.Table{
		ID:     id,
		Title:  fmt.Sprintf("HTTP serving throughput, suite %s, %d clients", suiteName, clients),
		Header: []string{"Mode", "Batch", "Throughput (q/s)", "Requests (q/s)", "p50 (ns)", "p95 (ns)", "p99 (ns)", "Errors", "Shed"},
		Notes: []string{
			"Throughput counts logical index ops; batch mode amortizes HTTP+admission work per request",
			"expected shape: batch strictly above single at high client counts",
		},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.0f", r.ReqPerSec),
			fmt.Sprintf("%.0f", r.LatencyNS.P50),
			fmt.Sprintf("%.0f", r.LatencyNS.P95),
			fmt.Sprintf("%.0f", r.LatencyNS.P99),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", r.Shed),
		})
	}
	return t
}

// prepared is one ready-to-send request: its path and marshalled body.
type prepared struct {
	path string
	body []byte
	ops  int
}

// prepare marshals the op stream into request bodies once, so the hot loop
// measures the server, not client-side JSON encoding.
func prepare(ops []workload.WireOp, batch int) ([]prepared, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("loadgen: empty op stream")
	}
	var out []prepared
	if batch > 1 {
		for i := 0; i < len(ops); i += batch {
			end := i + batch
			if end > len(ops) {
				end = len(ops)
			}
			body, err := json.Marshal(batchReq{Ops: ops[i:end]})
			if err != nil {
				return nil, err
			}
			out = append(out, prepared{path: "/v1/batch", body: body, ops: end - i})
		}
		return out, nil
	}
	for _, op := range ops {
		// Bodies reuse the handlers' own request types, so client and server
		// can never drift apart on the wire shapes.
		var (
			path string
			v    any
		)
		switch op.Op {
		case workload.WireRange:
			path, v = "/v1/range", rectReq{Rect: op.Rect}
		case workload.WireCount:
			path, v = "/v1/count", rectReq{Rect: op.Rect}
		case workload.WirePoint:
			path, v = "/v1/point", pointReq{Point: op.Point}
		case workload.WireKNN:
			path, v = "/v1/knn", knnReq{Point: op.Point, K: op.K}
		case workload.WireInsert:
			path, v = "/v1/insert", pointReq{Point: op.Point}
		case workload.WireDelete:
			path, v = "/v1/delete", pointReq{Point: op.Point}
		default:
			return nil, fmt.Errorf("loadgen: op %q not replayable", op.Op)
		}
		body, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		out = append(out, prepared{path: path, body: body, ops: 1})
	}
	return out, nil
}

// RunLoad replays ops against the server at baseURL until the duration
// elapses, cycling through the stream as often as needed. Each client
// starts at a different offset so concurrent clients don't hammer the same
// op in lockstep. 429 responses are counted as shed (the server behaving as
// configured under overload), any other non-200 as an error; RunLoad fails
// only if nothing succeeded at all.
func RunLoad(baseURL string, ops []workload.WireOp, o LoadOptions) (LoadResult, error) {
	o.fill()
	reqs, err := prepare(ops, o.Batch)
	if err != nil {
		return LoadResult{}, err
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * o.Clients,
			MaxIdleConnsPerHost: 2 * o.Clients,
		},
	}
	defer client.CloseIdleConnections()

	var (
		opsDone, reqsDone, errs, shed atomic.Int64
		mu                            sync.Mutex
		latencies                     []float64
		wg                            sync.WaitGroup
	)
	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			local := make([]float64, 0, 4096)
			for i := offset; time.Now().Before(deadline); i++ {
				p := reqs[i%len(reqs)]
				t0 := time.Now()
				resp, err := client.Post(baseURL+p.path, "application/json", bytes.NewReader(p.body))
				lat := float64(time.Since(t0).Nanoseconds())
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					opsDone.Add(int64(p.ops))
					reqsDone.Add(1)
					local = append(local, lat)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(c * len(reqs) / o.Clients)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{
		Mode:      map[bool]string{true: "batch", false: "single"}[o.Batch > 1],
		Clients:   o.Clients,
		Batch:     o.Batch,
		Ops:       opsDone.Load(),
		Requests:  reqsDone.Load(),
		Errors:    errs.Load(),
		Shed:      shed.Load(),
		ElapsedNS: elapsed.Nanoseconds(),
		OpsPerSec: float64(opsDone.Load()) / elapsed.Seconds(),
		ReqPerSec: float64(reqsDone.Load()) / elapsed.Seconds(),
		LatencyNS: harness.Summarize(latencies),
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("loadgen: no request succeeded against %s (%d errors, %d shed)",
			baseURL, res.Errors, res.Shed)
	}
	return res, nil
}
