package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// newTestBackend builds a small Sharded index for handler tests.
func newTestBackend(t *testing.T) (Backend, *wazi.Sharded) {
	t.Helper()
	pts := dataset.Generate(dataset.NewYork, 2000, 1)
	qs := workload.Skewed(dataset.NewYork, 100, 0.0256e-2, 2)
	s, err := wazi.NewSharded(pts, qs, wazi.WithShards(4), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(s.Close)
	return Sharded(s), s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *wazi.Sharded) {
	t.Helper()
	b, idx := newTestBackend(t)
	srv := New(b, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, idx
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("POST %s: non-JSON response %q", path, data)
		}
	}
	return resp.StatusCode, v
}

func TestEndpoints(t *testing.T) {
	_, ts, idx := newTestServer(t, Config{})
	bounds := idx.Bounds()
	wholeRect := fmt.Sprintf(`{"MinX":%g,"MinY":%g,"MaxX":%g,"MaxY":%g}`,
		bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
	somePoint := idx.RangeQuery(bounds)[0]
	pointJSON := fmt.Sprintf(`{"X":%g,"Y":%g}`, somePoint.X, somePoint.Y)

	tests := []struct {
		name     string
		path     string
		body     string
		wantCode int
		check    func(t *testing.T, v map[string]any)
	}{
		{
			name: "range whole domain", path: "/v1/range",
			body:     fmt.Sprintf(`{"rect":%s}`, wholeRect),
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if int(v["count"].(float64)) != idx.Len() {
					t.Errorf("count = %v, want %d", v["count"], idx.Len())
				}
			},
		},
		{
			name: "count whole domain", path: "/v1/count",
			body:     fmt.Sprintf(`{"rect":%s}`, wholeRect),
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if int(v["count"].(float64)) != idx.Len() {
					t.Errorf("count = %v, want %d", v["count"], idx.Len())
				}
			},
		},
		{
			name: "point present", path: "/v1/point",
			body:     fmt.Sprintf(`{"point":%s}`, pointJSON),
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if v["found"] != true {
					t.Errorf("found = %v, want true", v["found"])
				}
			},
		},
		{
			name: "knn", path: "/v1/knn",
			body:     fmt.Sprintf(`{"point":%s,"k":5}`, pointJSON),
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if int(v["count"].(float64)) != 5 {
					t.Errorf("count = %v, want 5", v["count"])
				}
			},
		},
		{
			name: "insert then delete", path: "/v1/insert",
			body:     `{"point":{"X":0.123,"Y":0.987}}`,
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if v["ok"] != true {
					t.Errorf("ok = %v", v["ok"])
				}
				if !idx.PointQuery(wazi.Point{X: 0.123, Y: 0.987}) {
					t.Error("inserted point not visible in index")
				}
			},
		},
		{
			name: "delete inserted", path: "/v1/delete",
			body:     `{"point":{"X":0.123,"Y":0.987}}`,
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				if v["found"] != true {
					t.Errorf("found = %v, want true", v["found"])
				}
			},
		},
		{
			name: "malformed JSON", path: "/v1/range",
			body: `{"rect":`, wantCode: 400,
		},
		{
			name: "trailing garbage", path: "/v1/range",
			body: fmt.Sprintf(`{"rect":%s} extra`, wholeRect), wantCode: 400,
		},
		{
			name: "missing rect", path: "/v1/range",
			body: `{}`, wantCode: 400,
		},
		{
			name: "inverted rect", path: "/v1/range",
			body: `{"rect":{"MinX":0.9,"MinY":0.1,"MaxX":0.1,"MaxY":0.9}}`, wantCode: 400,
		},
		{
			name: "non-finite rect", path: "/v1/count",
			body: `{"rect":{"MinX":-1e999,"MinY":0,"MaxX":1,"MaxY":1}}`, wantCode: 400,
		},
		{
			name: "knn k zero", path: "/v1/knn",
			body: fmt.Sprintf(`{"point":%s,"k":0}`, pointJSON), wantCode: 400,
		},
		{
			name: "knn k negative", path: "/v1/knn",
			body: fmt.Sprintf(`{"point":%s,"k":-2}`, pointJSON), wantCode: 400,
		},
		{
			name: "insert missing point", path: "/v1/insert",
			body: `{}`, wantCode: 400,
		},
		{
			name: "batch mixed", path: "/v1/batch",
			body:     fmt.Sprintf(`{"ops":[{"op":"count","rect":%s},{"op":"insert","point":{"X":0.111,"Y":0.222}},{"op":"point","point":{"X":0.111,"Y":0.222}},{"op":"delete","point":{"X":0.111,"Y":0.222}}]}`, wholeRect),
			wantCode: 200,
			check: func(t *testing.T, v map[string]any) {
				results := v["results"].([]any)
				if len(results) != 4 {
					t.Fatalf("got %d results, want 4", len(results))
				}
				// The point op follows the insert in the same batch, so it
				// must observe it (reads re-pin their view after writes).
				if results[2].(map[string]any)["found"] != true {
					t.Errorf("batch read did not observe earlier batch write: %v", results[2])
				}
				if results[3].(map[string]any)["found"] != true {
					t.Errorf("batch delete missed the batch insert: %v", results[3])
				}
			},
		},
		{
			name: "batch empty", path: "/v1/batch",
			body: `{"ops":[]}`, wantCode: 400,
		},
		{
			name: "batch bad op kind", path: "/v1/batch",
			body: `{"ops":[{"op":"scan"}]}`, wantCode: 400,
		},
		{
			name: "batch invalid op operand", path: "/v1/batch",
			body: `{"ops":[{"op":"knn","point":{"X":0.5,"Y":0.5},"k":0}]}`, wantCode: 400,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, v := post(t, ts, tt.path, tt.body)
			if code != tt.wantCode {
				t.Fatalf("status = %d, want %d (body %v)", code, tt.wantCode, v)
			}
			if code != 200 {
				if _, ok := v["error"]; !ok {
					t.Errorf("error response lacks an error message: %v", v)
				}
				return
			}
			if tt.check != nil {
				tt.check(t, v)
			}
		})
	}
}

func TestMethodFiltering(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/range")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/range = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/statsz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /statsz = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts, idx := newTestServer(t, Config{})
	// Serve a little traffic so the counters move.
	b := idx.Bounds()
	body := fmt.Sprintf(`{"rect":{"MinX":%g,"MinY":%g,"MaxX":%g,"MaxY":%g}}`, b.MinX, b.MinY, b.MaxX, b.MaxY)
	for i := 0; i < 3; i++ {
		if code, _ := post(t, ts, "/v1/count", body); code != 200 {
			t.Fatalf("warm-up count returned %d", code)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResp
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Points != idx.Len() {
		t.Errorf("healthz = %+v, want ok with %d points", health, idx.Len())
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats statszResp
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	resp.Body.Close()
	if stats.Shards != idx.NumShards() {
		t.Errorf("statsz shards = %d, want %d", stats.Shards, idx.NumShards())
	}
	if stats.OpsServed < 3 {
		t.Errorf("statsz ops_served = %d, want >= 3", stats.OpsServed)
	}
	if stats.IndexStats.RangeQueries < 3 {
		t.Errorf("statsz index range queries = %d, want >= 3", stats.IndexStats.RangeQueries)
	}
	if len(stats.ShardStates) != idx.NumShards() {
		t.Errorf("statsz drift state covers %d shards, want %d", len(stats.ShardStates), idx.NumShards())
	}
	if stats.CoalescedPasses < 1 || stats.CoalescedReads < stats.CoalescedPasses {
		t.Errorf("coalescer counters look wrong: passes=%d reads=%d", stats.CoalescedPasses, stats.CoalescedReads)
	}
	// Migration state of a fresh index: epoch 0, nothing in flight, and the
	// per-shard load counters must have seen the warm-up traffic (the whole-
	// bounds count targets every non-empty shard).
	if stats.PlanEpoch != 0 || stats.Migrating || stats.Repartitions != 0 {
		t.Errorf("fresh index migration state = epoch %d migrating %v repartitions %d, want 0/false/0",
			stats.PlanEpoch, stats.Migrating, stats.Repartitions)
	}
	var totalLoad int64
	for _, ss := range stats.ShardStates {
		totalLoad += ss.Load
	}
	if totalLoad < 3 {
		t.Errorf("statsz per-shard load sums to %d, want >= 3 after 3 fan-out counts", totalLoad)
	}
}

// blockingBackend wraps a Backend so reads block until released — the
// saturated-index stand-in for admission tests.
type blockingBackend struct {
	Backend
	gate chan struct{}
}

type blockingView struct {
	ReadView
	gate chan struct{}
}

func (b *blockingBackend) View() ReadView {
	return &blockingView{ReadView: b.Backend.View(), gate: b.gate}
}

func (v *blockingView) RangeCount(r wazi.Rect) int {
	<-v.gate
	return v.ReadView.RangeCount(r)
}

// TestAdmissionShedsWith429 saturates a 1-slot, 0-queue gate and asserts
// the next request is shed with 429 + Retry-After while the index stays
// untouched, then confirms the server recovers once the slot frees up.
func TestAdmissionShedsWith429(t *testing.T) {
	b, _ := newTestBackend(t)
	blocked := &blockingBackend{Backend: b, gate: make(chan struct{})}
	srv := New(blocked, Config{MaxInflight: 1, NoQueue: true, CoalesceWorkers: 1, CoalesceBatch: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`
	firstDone := make(chan int)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/count", "application/json", strings.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()

	// Wait until the first request holds the admission slot (it is blocked
	// inside the backend read).
	waitFor(t, func() bool { return srv.gate.inflight.Load() == 1 })

	resp, err := http.Post(ts.URL+"/v1/count", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate returned %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	if got := srv.gate.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	close(blocked.gate) // release the stuck read
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first request finished with %d, want 200", code)
	}
	if code, _ := post(t, ts, "/v1/count", body); code != http.StatusOK {
		t.Errorf("gate did not recover after release: %d", code)
	}
}

// TestAdmissionQueueThenServe checks the middle regime: requests beyond
// MaxInflight but within MaxQueue wait instead of shedding, and complete
// once capacity frees.
func TestAdmissionQueueThenServe(t *testing.T) {
	b, _ := newTestBackend(t)
	blocked := &blockingBackend{Backend: b, gate: make(chan struct{})}
	srv := New(blocked, Config{MaxInflight: 1, MaxQueue: 8, CoalesceWorkers: 1, CoalesceBatch: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`
	const n = 4
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/count", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// One holds the slot, the rest are queued; nothing sheds.
	waitFor(t, func() bool { return srv.gate.inflight.Load() == 1 && srv.gate.queued.Load() == n-1 })
	if got := srv.gate.shed.Load(); got != 0 {
		t.Fatalf("requests within the queue limit were shed: %d", got)
	}
	close(blocked.gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	}
}

// TestBatchEndpointResultsMatchDirectQueries cross-checks /v1/batch against
// the index: a batch of counts must agree with RangeCount.
func TestBatchEndpointResultsMatchDirectQueries(t *testing.T) {
	_, ts, idx := newTestServer(t, Config{})
	qs := workload.Skewed(dataset.NewYork, 20, 0.0256e-2, 9)
	ops := make([]workload.WireOp, len(qs))
	for i := range qs {
		q := qs[i]
		ops[i] = workload.WireOp{Op: workload.WireCount, Rect: &q}
	}
	body, _ := json.Marshal(map[string]any{"ops": ops})
	code, v := post(t, ts, "/v1/batch", string(body))
	if code != 200 {
		t.Fatalf("batch returned %d: %v", code, v)
	}
	results := v["results"].([]any)
	for i, q := range qs {
		want := idx.RangeCount(q)
		got := int(results[i].(map[string]any)["count"].(float64))
		if got != want {
			t.Errorf("batch count %d = %d, direct RangeCount = %d", i, got, want)
		}
	}
}

// TestCoalescerGroupsReads drives many concurrent reads through a one-worker
// coalescer and asserts they were folded into fewer snapshot passes.
func TestCoalescerGroupsReads(t *testing.T) {
	b, _ := newTestBackend(t)
	co := newCoalescer(b, 1, 16, 256)
	defer co.close()

	// Occupy the single worker with a read that blocks, let the remaining
	// reads pile up in the queue, then release: the worker must drain them
	// in grouped snapshot passes, not one by one.
	started := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		_, err := co.run(context.Background(), func(v ReadView) any {
			close(started)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("blocking read failed: %v", err)
		}
	}()
	<-started

	const n = 127
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := co.run(context.Background(), func(v ReadView) any {
				return v.RangeCount(wazi.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
			})
			if err != nil {
				t.Errorf("coalesced read failed: %v", err)
			}
		}()
	}
	waitFor(t, func() bool { return len(co.tasks) == n })
	close(release)
	wg.Wait()
	<-blockerDone

	reads, passes := co.reads.Load(), co.batches.Load()
	if reads != n+1 {
		t.Fatalf("executed %d reads, want %d", reads, n+1)
	}
	// 1 pass for the blocker + ceil(127/16) = 8 for the backlog.
	if want := int64(1 + (n+15)/16); passes > want {
		t.Errorf("%d passes for %d reads, want <= %d", passes, reads, want)
	}
	t.Logf("%d reads in %d snapshot passes (avg batch %.1f)", reads, passes, float64(reads)/float64(passes))
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
