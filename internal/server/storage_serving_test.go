package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// TestServingDiskBackedStatsz serves a disk-backed Sharded over HTTP and
// checks that /statsz surfaces the block-cache counters, and that query
// results match a RAM-backed twin over the wire.
func TestServingDiskBackedStatsz(t *testing.T) {
	dir := t.TempDir()
	pts := dataset.Generate(dataset.NewYork, 4000, 1)
	train := workload.Skewed(dataset.NewYork, 150, 0.0256e-2, 2)
	mk := func(opts ...wazi.ShardedOption) *wazi.Sharded {
		opts = append([]wazi.ShardedOption{
			wazi.WithShards(4), wazi.WithoutAutoRebuild(),
			wazi.WithIndexOptions(wazi.WithLeafSize(64), wazi.WithSeed(3)),
		}, opts...)
		s, err := wazi.NewSharded(pts, train, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	disk := mk(wazi.WithShardedStorage(dir, 32))
	defer disk.Close()
	ram := mk()
	defer ram.Close()

	srv := New(Sharded(disk), Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, q := range train[:50] {
		body := fmt.Sprintf(`{"rect":{"MinX":%g,"MinY":%g,"MaxX":%g,"MaxY":%g}}`,
			q.MinX, q.MinY, q.MaxX, q.MaxY)
		code, resp := post(t, ts, "/v1/count", body)
		if code != http.StatusOK {
			t.Fatalf("count %d: status %d", i, code)
		}
		want := ram.RangeCount(q)
		if int(resp["count"].(float64)) != want {
			t.Fatalf("count %d over disk = %v, want %d", i, resp["count"], want)
		}
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	for _, key := range []string{"cache_hits", "cache_misses", "cache_evictions"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("/statsz missing %q", key)
		}
	}
	if stats["cache_hits"].(float64)+stats["cache_misses"].(float64) == 0 {
		t.Fatal("/statsz reports no cache traffic from a disk-backed index")
	}
	idxStats, ok := stats["index_stats"].(map[string]any)
	if !ok {
		t.Fatal("/statsz missing index_stats")
	}
	if idxStats["CacheMisses"].(float64) != stats["cache_misses"].(float64) {
		t.Fatal("top-level cache counters disagree with index_stats")
	}

	// Exercise the batch path against the disk backend too.
	var ops []string
	for _, q := range train[:8] {
		ops = append(ops, fmt.Sprintf(`{"op":"range","rect":{"MinX":%g,"MinY":%g,"MaxX":%g,"MaxY":%g}}`,
			q.MinX, q.MinY, q.MaxX, q.MaxY))
	}
	code, _ := post(t, ts, "/v1/batch", `{"ops":[`+strings.Join(ops, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch over disk backend: status %d", code)
	}
}
