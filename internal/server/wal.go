package server

import (
	"fmt"
	"net/http"

	wazi "github.com/wazi-index/wazi"
)

// This file surfaces the write-ahead log operationally: WAL counters and
// recovery status in /statsz and /metrics, the full-contents checksum
// endpoint crash-recovery smoke tests diff across restarts, and the
// snapshot-then-truncate hook WriteSnapshot runs.

// walBackend is the optional backend surface of durability-logging
// backends; *wazi.Sharded (via the Sharded adapter) provides it when built
// WithWAL, test doubles usually don't.
type walBackend interface {
	WALStats() wazi.WALStats
	TruncateWAL() (int, error)
}

// checksumBackend is the optional backend surface behind /debug/checksum:
// an order-independent checksum over the full live contents, comparable
// across processes and storage backends.
type checksumBackend interface {
	ContentChecksum() (sum uint64, points int)
}

// walStats returns the backend's WAL stats, or nil when the backend does
// not log (or logs but has the WAL disabled).
func (s *Server) walStats() *wazi.WALStats {
	wb, ok := s.b.(walBackend)
	if !ok {
		return nil
	}
	st := wb.WALStats()
	if !st.Enabled {
		return nil
	}
	return &st
}

// truncateWAL drops WAL segments covered by the last Save; a no-op for
// backends without a log.
func (s *Server) truncateWAL() (int, error) {
	if wb, ok := s.b.(walBackend); ok {
		return wb.TruncateWAL()
	}
	return 0, nil
}

// registerWALMetrics exports the WAL counters under stable names. Called
// from initObs when the backend logs.
func (s *Server) registerWALMetrics() {
	wb, ok := s.b.(walBackend)
	if !ok || !wb.WALStats().Enabled {
		return
	}
	reg := s.reg
	reg.CounterFunc("wazi_wal_appends_total", "Records appended to the write-ahead log.",
		func() float64 { return float64(wb.WALStats().Appends) })
	reg.CounterFunc("wazi_wal_appended_bytes_total", "Bytes appended to the write-ahead log.",
		func() float64 { return float64(wb.WALStats().AppendedBytes) })
	reg.CounterFunc("wazi_wal_fsyncs_total", "Fsyncs issued by the write-ahead log.",
		func() float64 { return float64(wb.WALStats().Fsyncs) })
	reg.CounterFunc("wazi_wal_rotations_total", "Write-ahead-log segment rotations.",
		func() float64 { return float64(wb.WALStats().Rotations) })
	reg.CounterFunc("wazi_wal_truncations_total", "Write-ahead-log truncations after snapshots.",
		func() float64 { return float64(wb.WALStats().Truncations) })
	reg.GaugeFunc("wazi_wal_last_seq", "Last assigned write-ahead-log sequence number.",
		func() float64 { return float64(wb.WALStats().LastSeq) })
	reg.GaugeFunc("wazi_wal_durable_seq", "Highest fsync-covered write-ahead-log sequence number.",
		func() float64 { return float64(wb.WALStats().DurableSeq) })
	reg.GaugeFunc("wazi_wal_healthy", "1 while the write-ahead log has no sticky error.",
		func() float64 {
			if wb.WALStats().Err == "" {
				return 1
			}
			return 0
		})
}

// checksumResp is the JSON shape of /debug/checksum. The checksum is hex
// text: a uint64 does not survive a round-trip through a JSON number.
type checksumResp struct {
	Checksum string `json:"checksum"`
	Points   int    `json:"points"`
}

// handleChecksum serves the full-contents multiset checksum. It
// materializes every shard of one consistent snapshot — an O(n) scan, so
// it lives under /debug/ next to pprof and slowlog, not on the op surface.
func (s *Server) handleChecksum(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/debug/checksum requires GET")
		return
	}
	cb, ok := s.b.(checksumBackend)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend has no content checksum")
		return
	}
	sum, points := cb.ContentChecksum()
	writeJSON(w, http.StatusOK, checksumResp{
		Checksum: fmt.Sprintf("%016x", sum),
		Points:   points,
	})
}
