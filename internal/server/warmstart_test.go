package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/workload"
)

// TestGracefulShutdownWritesSnapshotAndWarmStarts exercises the full
// restart-without-rebuild flow that `kill -TERM` triggers on cmd/waziserve:
// a serving process is cancelled (the signal handler's context path), drains
// cleanly, and writes a snapshot; a second server boots from that snapshot
// alone and answers an identical range query with identical results — with
// its rebuild counter proving no shard was reconstructed.
func TestGracefulShutdownWritesSnapshotAndWarmStarts(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "wazi.snap")
	pts := dataset.Generate(dataset.Japan, 3000, 1)
	train := workload.Skewed(dataset.Japan, 150, 0.0256e-2, 2)
	idx, err := wazi.NewSharded(pts, train, wazi.WithShards(6), wazi.WithoutAutoRebuild())
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer idx.Close()

	srv := New(Sharded(idx), Config{SnapshotPath: snapPath, DrainTimeout: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready
	base := "http://" + addr
	if err := WaitHealthy(base, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Mutate serving state over the wire so the snapshot must carry more
	// than the initial build: inserts land in uncompacted delta buffers.
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"point":{"X":%g,"Y":%g}}`, 0.3+float64(i)*0.001, 0.7)
		resp, err := http.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
	}
	probe := train[0]
	before := rangeOverWire(t, base, probe)

	// The TERM path: cancel the serve context, wait for the drain + snapshot.
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if fi, err := os.Stat(snapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("no snapshot written at %s (err %v)", snapPath, err)
	}
	if _, err := os.Stat(snapPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp snapshot file left behind: %v", err)
	}

	// Restart purely from the snapshot.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := wazi.LoadSharded(f, wazi.WithoutAutoRebuild())
	f.Close()
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	defer restored.Close()
	if restored.Rebuilds() != idx.Rebuilds() {
		t.Fatalf("warm start rebuilt shards: %d rebuilds vs %d pre-shutdown", restored.Rebuilds(), idx.Rebuilds())
	}

	srv2 := New(Sharded(restored), Config{})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	ready2 := make(chan string, 1)
	served2 := make(chan error, 1)
	go func() { served2 <- srv2.ListenAndServe(ctx2, "127.0.0.1:0", ready2) }()
	base2 := "http://" + <-ready2
	if err := WaitHealthy(base2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	after := rangeOverWire(t, base2, probe)

	if len(before) != len(after) {
		t.Fatalf("restarted server returned %d points, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("hit %d differs across restart: %v vs %v", i, before[i], after[i])
		}
	}
	cancel2()
	if err := <-served2; err != nil {
		t.Fatalf("second server shutdown: %v", err)
	}
}

// rangeOverWire issues /v1/range and returns the hits in canonical order.
func rangeOverWire(t *testing.T, base string, r wazi.Rect) []wazi.Point {
	t.Helper()
	body := fmt.Sprintf(`{"rect":{"MinX":%g,"MinY":%g,"MaxX":%g,"MaxY":%g}}`, r.MinX, r.MinY, r.MaxX, r.MaxY)
	resp, err := http.Post(base+"/v1/range", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("range over wire: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("range over wire: status %d", resp.StatusCode)
	}
	var out struct {
		Points []wazi.Point `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("range over wire: decode: %v", err)
	}
	sort.Slice(out.Points, func(i, j int) bool {
		if out.Points[i].X != out.Points[j].X {
			return out.Points[i].X < out.Points[j].X
		}
		return out.Points[i].Y < out.Points[j].Y
	})
	return out.Points
}

// TestLoadgenAgainstLiveServer replays a zipfian suite over the wire in
// both modes and sanity-checks the results — the in-repo version of the
// waziserve+waziload smoke pairing.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	qs := workload.Zipfian(dataset.NewYork, 200, 0.0256e-2, 5)
	ins := workload.InsertBatch(60, 6)
	ops := workload.ToWire(workload.MixedOps(qs, ins, 0.1, 7))

	for _, batch := range []int{1, 16} {
		res, err := RunLoad(ts.URL, ops, LoadOptions{Clients: 8, Duration: 300 * time.Millisecond, Batch: batch})
		if err != nil {
			t.Fatalf("RunLoad(batch=%d): %v", batch, err)
		}
		if res.Errors > 0 {
			t.Errorf("batch=%d: %d errors", batch, res.Errors)
		}
		if res.Ops == 0 || res.OpsPerSec <= 0 {
			t.Errorf("batch=%d: no throughput recorded: %+v", batch, res)
		}
		if res.LatencyNS.N == 0 || res.LatencyNS.P95 <= 0 {
			t.Errorf("batch=%d: missing latency summary: %+v", batch, res.LatencyNS)
		}
		wantMode := "single"
		if batch > 1 {
			wantMode = "batch"
		}
		if res.Mode != wantMode {
			t.Errorf("mode = %q, want %q", res.Mode, wantMode)
		}
	}
}
