package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// getProfilez fetches and decodes the /debug/profilez listing.
func getProfilez(t *testing.T, url string) profilezResp {
	t.Helper()
	resp, err := http.Get(url + "/debug/profilez")
	if err != nil {
		t.Fatalf("GET /debug/profilez: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/profilez status = %d", resp.StatusCode)
	}
	var pr profilezResp
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding /debug/profilez: %v", err)
	}
	return pr
}

// TestProfileCaptureOnSlowQuery is the acceptance path: a slow-query-log
// breach during serving produces a capture that is listed at
// /debug/profilez and whose heap profile is fetchable.
func TestProfileCaptureOnSlowQuery(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newTestServer(t, Config{
		SlowQueryThreshold: -1, // every OK request breaches
		ProfileDir:         dir,
		ProfileCPUDuration: 50 * time.Millisecond,
		ProfileCooldown:    -1, // no cooldown
	})

	code, resp := post(t, ts, "/v1/range", `{"rect":{"MinX":-74.1,"MinY":40.6,"MaxX":-73.9,"MaxY":40.9}}`)
	if code != http.StatusOK {
		t.Fatalf("range status = %d: %v", code, resp)
	}
	waitFor(t, func() bool { return srv.prof.captured.Load() >= 1 })

	pr := getProfilez(t, ts.URL)
	if !pr.Enabled || pr.Captured < 1 || len(pr.Captures) == 0 {
		t.Fatalf("profilez = %+v, want enabled with >= 1 capture", pr)
	}
	c := pr.Captures[0]
	if c.Reason != "slow_query" {
		t.Errorf("capture reason = %q, want slow_query", c.Reason)
	}
	var fetched bool
	for _, f := range c.Files {
		if f.Name != "heap.pprof" {
			continue
		}
		fetched = true
		r, err := http.Get(ts.URL + f.Path)
		if err != nil {
			t.Fatalf("GET %s: %v", f.Path, err)
		}
		body := make([]byte, 1)
		n, _ := r.Body.Read(body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK || n == 0 {
			t.Fatalf("GET %s: status %d, %d bytes; want a non-empty profile", f.Path, r.StatusCode, n)
		}
	}
	if !fetched {
		t.Fatalf("capture %s has no heap.pprof: %+v", c.ID, c.Files)
	}
	// The capture storm guard: the other requests of this test (profilez
	// fetches are not ops, but the range op above plus any recorded op)
	// must not have produced unbounded captures.
	if pr.Captured > int64(srv.cfg.ProfileMaxCaptures) {
		t.Errorf("captured %d > ring max %d", pr.Captured, srv.cfg.ProfileMaxCaptures)
	}
}

// TestProfileRingBounded drives the profiler directly: the on-disk ring
// holds at most max captures and prunes oldest-first.
func TestProfileRingBounded(t *testing.T) {
	dir := t.TempDir()
	p := newProfiler(dir, 2, 0, time.Millisecond)
	base := time.Now()
	for i := 0; i < 5; i++ {
		p.capture("slow_query", base.Add(time.Duration(i)*time.Second))
	}
	if got := p.retained(); got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	ids := p.ids()
	for i, id := range ids {
		wantTS := fmt.Sprintf("%020d", base.Add(time.Duration(3+i)*time.Second).UnixNano())
		if !strings.Contains(id, wantTS) {
			t.Errorf("survivor %d = %s, want the capture at +%ds (pruning must drop oldest first)", i, id, 3+i)
		}
	}
	if n := p.captured.Load(); n != 5 {
		t.Errorf("captured = %d, want 5", n)
	}
}

// TestProfilezDisabled pins the no-ProfileDir configuration: the listing
// reports disabled, fetches 404, and triggering is a safe no-op.
func TestProfilezDisabled(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{SlowQueryThreshold: -1})
	if srv.prof != nil {
		t.Fatal("profiler created without ProfileDir")
	}
	srv.prof.trigger("slow_query") // nil receiver must not panic

	pr := getProfilez(t, ts.URL)
	if pr.Enabled || len(pr.Captures) != 0 {
		t.Fatalf("profilez = %+v, want disabled and empty", pr)
	}
	r, err := http.Get(ts.URL + "/debug/profilez/capture-00000000000000000001-slow_query/heap.pprof")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch while disabled: status %d, want 404", r.StatusCode)
	}
}

// TestProfilezFetchValidation pins the path pinning of the fetch handler:
// only ring-named capture IDs and the two known profile file names resolve;
// nothing else touches the filesystem.
func TestProfilezFetchValidation(t *testing.T) {
	dir := t.TempDir()
	// Plant a file outside the ring naming scheme next to the captures.
	if err := os.MkdirAll(filepath.Join(dir, "secrets"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "secrets", "cpu.pprof"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{ProfileDir: dir})

	bad := []string{
		"/debug/profilez/secrets/cpu.pprof",
		"/debug/profilez/../server.go",
		"/debug/profilez/capture-00000000000000000001-slow_query/other.txt",
		"/debug/profilez/capture-1-slow_query/cpu.pprof",             // unpadded timestamp
		"/debug/profilez/capture-00000000000000000001-BAD/cpu.pprof", // uppercase reason
		"/debug/profilez/capture-00000000000000000001-slow_query/cpu.pprof/extra",
	}
	for _, path := range bad {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.URL.Path = path // defeat client-side cleaning of ".."
		r, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Errorf("GET %s: status 200, want rejection", path)
		}
	}
}

// TestGCPauseSLOBreach configures an unmeetable 1ns GC-pause SLO, forces
// collections, and asserts the breach counter trips and a gc_pause_slo
// capture appears.
func TestGCPauseSLOBreach(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newTestServer(t, Config{
		GCPauseSLO:         time.Nanosecond,
		ProfileDir:         dir,
		ProfileCPUDuration: 10 * time.Millisecond,
		ProfileCooldown:    -1,
	})

	waitFor(t, func() bool {
		runtime.GC()
		// Scraping drives the runtime sampler (TTL-cached, so repeated
		// polls are needed before a fresh sample feeds the pause hook).
		code, _ := get(t, ts, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status = %d", code)
		}
		return srv.gcBreaches.Load() >= 1 && srv.prof.captured.Load() >= 1
	})

	_, body := get(t, ts, "/metrics")
	text := string(body)
	if !strings.Contains(text, "wazi_gc_pause_slo_breaches_total") {
		t.Error("/metrics missing wazi_gc_pause_slo_breaches_total")
	}
	if !strings.Contains(text, "# TYPE wazi_slowlog_recorded_total counter") {
		t.Error("wazi_slowlog_recorded_total not exposed as a counter")
	}
	pr := getProfilez(t, ts.URL)
	var found bool
	for _, c := range pr.Captures {
		if c.Reason == "gc_pause_slo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no gc_pause_slo capture in %+v", pr.Captures)
	}
}
