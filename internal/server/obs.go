package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/obs"
)

// This file wires the obs instruments into the serving layer: the metrics
// registry behind /metrics and /statsz, per-route latency histograms, the
// slow-query log behind /debug/slowlog, optional pprof, and the periodic
// one-line ops summary waziserve logs.

// obsBackend is the optional backend surface the registry scrapes shard-
// level instruments from; *wazi.Sharded (via the Sharded adapter) provides
// it, test doubles usually don't.
type obsBackend interface {
	Obs() *wazi.ShardedObs
	PoolCounters() (ran, inline int64)
}

// routes are the op endpoints, by histogram label.
var routes = []string{"range", "count", "point", "knn", "insert", "delete", "batch"}

// initObs builds the registry and registers every layer's instruments.
// Called once from New.
func (s *Server) initObs() {
	reg := obs.NewRegistry()
	s.reg = reg
	s.rt = obs.NewRuntime()
	s.slow = obs.NewSlowLog(s.cfg.SlowLogSize, s.cfg.SlowQueryThreshold)

	s.routeHist = make(map[string]*obs.Histogram, len(routes))
	for _, route := range routes {
		s.routeHist[route] = reg.Histogram("wazi_http_request_seconds",
			"HTTP request latency by route, admission wait included.",
			obs.DefBuckets(), obs.L("route", route))
	}
	s.reqAll = obs.NewHistogram(obs.DefBuckets())

	// Admission gate and coalescer.
	reg.GaugeFunc("wazi_http_inflight", "Admitted requests currently executing.",
		func() float64 { return float64(s.gate.inflight.Load()) })
	reg.GaugeFunc("wazi_http_queued", "Requests waiting for an admission slot.",
		func() float64 { return float64(s.gate.queued.Load()) })
	reg.CounterFunc("wazi_http_admitted_total", "Requests admitted by the gate.",
		func() float64 { return float64(s.gate.admitted.Load()) })
	reg.CounterFunc("wazi_http_shed_total", "Requests shed with 429 by the gate.",
		func() float64 { return float64(s.gate.shed.Load()) })
	reg.CounterFunc("wazi_ops_served_total", "Logical index operations served (batch ops count individually).",
		func() float64 { return float64(s.ops.Load()) })
	reg.CounterFunc("wazi_coalesced_passes_total", "Shared snapshot passes executed by the read coalescer.",
		func() float64 { return float64(s.co.batches.Load()) })
	reg.CounterFunc("wazi_coalesced_reads_total", "Reads folded into coalescer passes.",
		func() float64 { return float64(s.co.reads.Load()) })
	// Monotonic since start, so a counter — a scraper can rate() it; as a
	// gauge the _total name would lie about resets.
	reg.CounterFunc("wazi_slowlog_recorded_total", "Slow queries recorded since start.",
		func() float64 { return float64(s.slow.Recorded()) })

	// Backend shape and progress.
	reg.GaugeFunc("wazi_index_points", "Points currently indexed.",
		func() float64 { return float64(s.b.Len()) })
	reg.GaugeFunc("wazi_index_shards", "Shards of the current partition plan.",
		func() float64 { return float64(s.b.NumShards()) })
	reg.CounterFunc("wazi_index_rebuilds_total", "Shard rebuilds completed.",
		func() float64 { return float64(s.b.Rebuilds()) })
	reg.CounterFunc("wazi_index_repartitions_total", "Live plan migrations completed.",
		func() float64 { return float64(s.b.Repartitions()) })
	reg.GaugeFunc("wazi_index_plan_epoch", "Partition plan epoch.",
		func() float64 { return float64(s.b.PlanEpoch()) })
	reg.GaugeFunc("wazi_index_migrating", "1 while a plan migration is in flight.",
		func() float64 {
			if s.b.Migrating() {
				return 1
			}
			return 0
		})

	// Block-cache counters, from the aggregated index stats.
	reg.CounterFunc("wazi_cache_hits_total", "Block-cache hits across all shards.",
		func() float64 { return float64(s.b.Stats().CacheHits) })
	reg.CounterFunc("wazi_cache_misses_total", "Block-cache misses across all shards.",
		func() float64 { return float64(s.b.Stats().CacheMisses) })
	reg.CounterFunc("wazi_cache_evictions_total", "Block-cache evictions across all shards.",
		func() float64 { return float64(s.b.Stats().CacheEvictions) })

	// Shard-layer instruments, when the backend carries them.
	if ob, ok := s.b.(obsBackend); ok {
		if so := ob.Obs(); so != nil {
			reg.RegisterHistogram("wazi_fanout_width_shards",
				"Shards targeted per fan-out query after pruning.", so.FanoutWidth)
			reg.CounterFunc("wazi_fanout_pruned_total", "Shards pruned from fan-outs.",
				func() float64 { return float64(so.FanoutPruned.Value()) })
			reg.RegisterHistogram("wazi_shard_scan_seconds", "Per-shard scan latency.", so.ShardScan)
			reg.RegisterHistogram("wazi_page_read_seconds", "Disk page-file read latency (cache misses).", so.PageRead)
			reg.RegisterHistogram("wazi_shard_rebuild_seconds", "Drift/compaction shard rebuild durations.", so.Rebuild)
			reg.RegisterHistogram("wazi_migration_seconds", "Live repartition migration durations.", so.Migration)
			reg.RegisterHistogram("wazi_wal_fsync_seconds", "Write-ahead-log fsync latency.", so.WALFsync)
		}
		reg.CounterFunc("wazi_pool_tasks_total", "Fan-out pool tasks executed.",
			func() float64 { ran, _ := ob.PoolCounters(); return float64(ran) })
		reg.CounterFunc("wazi_pool_tasks_inline_total", "Fan-out pool tasks run inline on the caller.",
			func() float64 { _, inline := ob.PoolCounters(); return float64(inline) })
	}

	s.registerWALMetrics()
	s.registerProfileMetrics()

	s.rt.Register(reg)
	s.lastLine.at = s.start
}

// registerProfileMetrics exports the anomaly-capture counters and wires the
// GC-pause SLO into the runtime sampler. Families are registered even when
// capture is disabled (all zeros), so dashboards and waziload's scrape
// deltas never see a family appear out of nowhere.
func (s *Server) registerProfileMetrics() {
	reg := s.reg
	reg.CounterFunc("wazi_profile_captures_total", "Anomaly-triggered profile captures completed.",
		func() float64 {
			if s.prof == nil {
				return 0
			}
			return float64(s.prof.captured.Load())
		})
	reg.CounterFunc("wazi_profile_triggers_total", "Capture triggers observed (slow-query breaches, GC-pause SLO trips).",
		func() float64 {
			if s.prof == nil {
				return 0
			}
			return float64(s.prof.triggered.Load())
		})
	reg.CounterFunc("wazi_profile_skipped_total", "Capture triggers dropped by the cooldown or an in-flight capture.",
		func() float64 {
			if s.prof == nil {
				return 0
			}
			return float64(s.prof.skipped.Load())
		})
	reg.CounterFunc("wazi_profile_capture_errors_total", "Errors while writing capture profiles.",
		func() float64 {
			if s.prof == nil {
				return 0
			}
			return float64(s.prof.errors.Load())
		})
	reg.GaugeFunc("wazi_profile_retained", "Captures currently on disk in the bounded ring.",
		func() float64 { return float64(s.prof.retained()) })

	reg.GaugeFunc("wazi_gc_pause_slo_seconds", "Configured GC-pause SLO (0 = disabled).",
		func() float64 { return s.cfg.GCPauseSLO.Seconds() })
	reg.CounterFunc("wazi_gc_pause_slo_breaches_total", "GC pauses at or above the SLO.",
		func() float64 { return float64(s.gcBreaches.Load()) })
	if slo := s.cfg.GCPauseSLO; slo > 0 {
		s.rt.SetPauseHook(func(d time.Duration) {
			if d >= slo {
				s.gcBreaches.Add(1)
				s.prof.trigger("gc_pause_slo")
			}
		})
	}
}

// Registry returns the server's metrics registry, for tests and for
// embedding extra process-level series before serving.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog returns the server's slow-query log.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// status counts one finished request by route and status code.
func (s *Server) status(route string, code int) {
	s.reg.Counter("wazi_http_requests_total", "HTTP requests by route and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(code))).Inc()
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// tracedView hands tr to a view that supports tracing (the production
// *wazi.View); doubles and other backends pass through untouched.
func tracedView(v ReadView, tr *obs.QueryTrace) ReadView {
	if tr == nil || v == nil {
		return v
	}
	if wv, ok := v.(*wazi.View); ok {
		return wv.WithTrace(tr)
	}
	return v
}

// ---------------------------------------------------------------- endpoints

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/metrics requires GET")
		return
	}
	s.rt.Sample() // refresh the GC pause histogram before exporting
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// slowlogResp is the JSON shape of /debug/slowlog.
type slowlogResp struct {
	ThresholdNS int64               `json:"threshold_ns"`
	Recorded    int64               `json:"recorded"`
	Traces      []obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/debug/slowlog requires GET")
		return
	}
	writeJSON(w, http.StatusOK, slowlogResp{
		ThresholdNS: int64(s.slow.Threshold()),
		Recorded:    s.slow.Recorded(),
		Traces:      s.slow.Snapshot(),
	})
}

// mountPprof exposes net/http/pprof under /debug/pprof/. Gated behind
// Config.Pprof because profiling endpoints on a serving port are an
// operational decision, not a default.
func (s *Server) mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ---------------------------------------------------------------- summaries

// lineWindow is the state StatsLine differences against: the previous
// call's aggregate latency snapshot, op count, cache counters, and time.
type lineWindow struct {
	mu    sync.Mutex
	at    time.Time
	hist  obs.HistogramSnapshot
	ops   int64
	stats wazi.Stats
}

// StatsLine returns a one-line ops summary — qps, windowed p95, cache hit
// rate, heap, goroutines — where every rate is computed over the window
// since the previous StatsLine call. waziserve logs it on -log-interval.
func (s *Server) StatsLine() string {
	now := time.Now()
	hist := s.reqAll.Snapshot()
	ops := s.ops.Load()
	stats := s.b.Stats()

	s.lastLine.mu.Lock()
	prev := lineWindow{at: s.lastLine.at, hist: s.lastLine.hist, ops: s.lastLine.ops, stats: s.lastLine.stats}
	s.lastLine.at, s.lastLine.hist, s.lastLine.ops, s.lastLine.stats = now, hist, ops, stats
	s.lastLine.mu.Unlock()

	dt := now.Sub(prev.at).Seconds()
	if dt <= 0 {
		dt = 1
	}
	qps := float64(ops-prev.ops) / dt

	p95 := 0.0
	if len(hist.Buckets) == len(prev.hist.Buckets) {
		bounds := make([]float64, len(hist.Buckets))
		counts := make([]int64, len(hist.Buckets))
		for i := range hist.Buckets {
			bounds[i] = hist.Buckets[i].UpperBound
			counts[i] = hist.Buckets[i].Count - prev.hist.Buckets[i].Count
		}
		p95 = obs.QuantileFromBuckets(bounds, counts, 0.95)
	} else if len(hist.Buckets) > 0 {
		// First call: no previous window, use lifetime quantile.
		p95 = hist.P95
	}

	dh := stats.CacheHits - prev.stats.CacheHits
	dm := stats.CacheMisses - prev.stats.CacheMisses
	hitRate := 0.0
	if dh+dm > 0 {
		hitRate = 100 * float64(dh) / float64(dh+dm)
	}

	ms := s.rt.Sample()
	return fmt.Sprintf("ops=%d qps=%.1f p95=%.2fms cache_hit=%.1f%% heap=%.1fMB goroutines=%d",
		ops, qps, p95*1e3, hitRate, float64(ms.HeapAlloc)/(1<<20), runtime.NumGoroutine())
}

// CountersLine returns the final cumulative counters, logged by waziserve
// after the SIGTERM drain completes.
func (s *Server) CountersLine() string {
	stats := s.b.Stats()
	return fmt.Sprintf("ops=%d admitted=%d shed=%d coalesced_passes=%d coalesced_reads=%d cache_hits=%d cache_misses=%d slow_queries=%d",
		s.ops.Load(), s.gate.admitted.Load(), s.gate.shed.Load(),
		s.co.batches.Load(), s.co.reads.Load(),
		stats.CacheHits, stats.CacheMisses, s.slow.Recorded())
}

// obsSnapshot is the structured registry snapshot /statsz embeds.
func (s *Server) obsSnapshot() obs.Snapshot { return s.reg.Snapshot() }
