package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed is returned by acquire when the waiting queue is full; the HTTP
// layer translates it to 429 Too Many Requests.
var errShed = errors.New("server: admission queue full")

// gate is the semaphore-based admission controller: at most maxInflight
// requests execute concurrently, at most maxQueue more wait for a slot, and
// everything beyond that is shed immediately. Shedding with a cheap 429 is
// the point — under overload the server keeps answering at its capacity
// instead of accumulating goroutines, memory, and tail latency until it
// collapses. The queue-depth check is racy by design (two late arrivals can
// both observe one free queue slot); admission is a load-control heuristic,
// not an exact counter, and an off-by-a-few overshoot is harmless.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64
	admitted atomic.Int64
}

func newGate(maxInflight, maxQueue int) *gate {
	return &gate{sem: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// acquire admits the caller or returns errShed (queue full) or the context
// error (client gave up while queued). On success the returned release
// function must be called exactly once.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.sem <- struct{}{}:
	default:
		if g.queued.Load() >= g.maxQueue {
			g.shed.Add(1)
			return nil, errShed
		}
		g.queued.Add(1)
		select {
		case g.sem <- struct{}{}:
			g.queued.Add(-1)
		case <-ctx.Done():
			g.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	g.inflight.Add(1)
	g.admitted.Add(1)
	return func() {
		g.inflight.Add(-1)
		<-g.sem
	}, nil
}
