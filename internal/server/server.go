// Package server exposes a wazi.Sharded index over HTTP/JSON — the serving
// boundary of the build-offline/serve-online deployment model (§6.5 of the
// paper), hardened for sustained traffic:
//
//   - request coalescing: concurrent singleton reads are grouped by a fixed
//     worker pool into shared snapshot passes (coalesce.go);
//   - admission control: a semaphore gate with a bounded waiting queue
//     sheds overload with 429s instead of collapsing (admission.go);
//   - warm starts: graceful shutdown drains in-flight requests and writes a
//     Sharded snapshot that the next process restores without rebuilding
//     (serve.go, wazi.Sharded.Save/LoadSharded).
//
// Endpoints (all op endpoints are POST with JSON bodies; see docs/SERVING.md):
//
//	/v1/range   {"rect":{...}}             -> {"count":n,"points":[...]}
//	/v1/count   {"rect":{...}}             -> {"count":n}
//	/v1/point   {"point":{...}}            -> {"found":bool}
//	/v1/knn     {"point":{...},"k":k}      -> {"count":k,"points":[...]}
//	/v1/insert  {"point":{...}}            -> {"ok":true}
//	/v1/delete  {"point":{...}}            -> {"found":bool}
//	/v1/batch   {"ops":[{"op":...},...]}   -> {"results":[...]}
//	/healthz    GET                        -> {"status":"ok",...}
//	/statsz     GET                        -> counters, shard + drift + WAL state
//	/debug/checksum GET                    -> full-contents multiset checksum
//
// The wire shapes are internal/workload's WireOp encoding, so scenario
// suites replay over the network byte-for-byte as cmd/waziload sends them.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/obs"
	"github.com/wazi-index/wazi/internal/workload"
)

// ReadView is one consistent read pass over the index: every query through
// one ReadView observes the same immutable snapshot. wazi.View implements
// it. The Append variants exist so the handlers can cycle pooled response
// buffers through the index instead of allocating a result slice per
// request.
type ReadView interface {
	RangeQuery(r wazi.Rect) []wazi.Point
	RangeQueryAppend(dst []wazi.Point, r wazi.Rect) []wazi.Point
	RangeCount(r wazi.Rect) int
	PointQuery(p wazi.Point) bool
	KNN(q wazi.Point, k int) []wazi.Point
	KNNAppend(dst []wazi.Point, q wazi.Point, k int) []wazi.Point
}

// Backend is the index the server serves. The production backend is
// Sharded(*wazi.Sharded); tests substitute doubles to probe overload and
// failure behavior.
type Backend interface {
	View() ReadView
	Insert(p wazi.Point)
	Delete(p wazi.Point) bool
	Len() int
	NumShards() int
	Rebuilds() int64
	Repartitions() int64
	PlanEpoch() int
	Migrating() bool
	Stats() wazi.Stats
	Shards() []wazi.ShardInfo
	Save(w io.Writer) error
}

// shardedBackend adapts *wazi.Sharded to Backend (View's concrete return
// type needs the one-line indirection).
type shardedBackend struct{ *wazi.Sharded }

func (b shardedBackend) View() ReadView { return b.Sharded.View() }

// Sharded wraps a *wazi.Sharded as a serving Backend.
func Sharded(s *wazi.Sharded) Backend { return shardedBackend{s} }

// Config tunes the serving layer. The zero value is usable: every field
// has a sensible default.
type Config struct {
	// MaxInflight is the number of admitted requests executing at once
	// (default 4x GOMAXPROCS).
	MaxInflight int
	// MaxQueue is how many further requests may wait for an admission slot
	// before the gate sheds with 429s (default 4x MaxInflight). Zero means
	// "default"; use NoQueue for a queueless gate.
	MaxQueue int
	// NoQueue disables the waiting queue: any request beyond MaxInflight is
	// shed immediately.
	NoQueue bool
	// CoalesceWorkers is the size of the read-executor pool (default
	// GOMAXPROCS).
	CoalesceWorkers int
	// CoalesceBatch caps how many reads one worker folds into a single
	// snapshot pass (default 32).
	CoalesceBatch int
	// SnapshotPath, when set, is where graceful shutdown writes the
	// warm-start snapshot.
	SnapshotPath string
	// DrainTimeout bounds graceful shutdown's wait for in-flight requests
	// (default 10s).
	DrainTimeout time.Duration
	// SlowQueryThreshold is the total request duration at which a traced
	// request enters the slow-query log at /debug/slowlog (default 250ms).
	// Negative records every request (useful in tests).
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer (default 128).
	SlowLogSize int
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// ProfileDir enables anomaly-triggered profile capture: when a slow
	// query enters the slow-query log, or a GC pause breaches GCPauseSLO,
	// CPU+heap pprof profiles are written into a bounded ring of capture
	// directories under this path, listed and fetched via /debug/profilez.
	// Empty disables capture (the endpoint still answers, enabled=false).
	ProfileDir string
	// ProfileMaxCaptures bounds the on-disk capture ring; oldest captures
	// are deleted first (default 8).
	ProfileMaxCaptures int
	// ProfileCooldown is the minimum spacing between captures, so an
	// anomaly storm produces one profile, not hundreds (default 30s;
	// negative means no cooldown).
	ProfileCooldown time.Duration
	// ProfileCPUDuration is how long each capture's CPU profile runs
	// (default 1s).
	ProfileCPUDuration time.Duration
	// GCPauseSLO, when positive, is the stop-the-world GC pause duration
	// that counts as an SLO breach: breaches are counted in
	// wazi_gc_pause_slo_breaches_total and trigger a profile capture.
	// Breaches are detected when the runtime sampler observes new pauses
	// (scrapes, stats lines), not at the instant the pause ends.
	GCPauseSLO time.Duration
}

func (c *Config) fill() {
	procs := runtime.GOMAXPROCS(0)
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * procs
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.NoQueue {
		c.MaxQueue = 0
	}
	if c.CoalesceWorkers <= 0 {
		c.CoalesceWorkers = procs
	}
	if c.CoalesceBatch <= 0 {
		c.CoalesceBatch = 32
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	switch {
	case c.SlowQueryThreshold == 0:
		c.SlowQueryThreshold = 250 * time.Millisecond
	case c.SlowQueryThreshold < 0:
		c.SlowQueryThreshold = 0 // record everything
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.ProfileMaxCaptures <= 0 {
		c.ProfileMaxCaptures = 8
	}
	switch {
	case c.ProfileCooldown == 0:
		c.ProfileCooldown = 30 * time.Second
	case c.ProfileCooldown < 0:
		c.ProfileCooldown = 0
	}
	if c.ProfileCPUDuration <= 0 {
		c.ProfileCPUDuration = time.Second
	}
}

// maxBodyBytes bounds request bodies; a 64k-op batch of ~100 bytes/op fits
// comfortably.
const maxBodyBytes = 8 << 20

// Server is the HTTP serving layer over a Backend.
type Server struct {
	b     Backend
	cfg   Config
	gate  *gate
	co    *coalescer
	mux   *http.ServeMux
	start time.Time
	ops   atomic.Int64 // logical index operations served (batch ops count individually)

	// Observability (obs.go): registry behind /metrics and /statsz, runtime
	// sampler, slow-query log, per-route latency histograms, and the
	// all-routes aggregate StatsLine windows over.
	reg       *obs.Registry
	rt        *obs.Runtime
	slow      *obs.SlowLog
	routeHist map[string]*obs.Histogram
	reqAll    *obs.Histogram
	lastLine  lineWindow

	// Anomaly-triggered profile capture (profilez.go): nil unless
	// Config.ProfileDir is set.
	prof       *profiler
	gcBreaches atomic.Int64
}

// New builds a Server. Call Close (or let Serve's shutdown path do it) to
// stop the read-executor pool.
func New(b Backend, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		b:     b,
		cfg:   cfg,
		gate:  newGate(cfg.MaxInflight, cfg.MaxQueue),
		start: time.Now(),
	}
	s.co = newCoalescer(b, cfg.CoalesceWorkers, cfg.CoalesceBatch, cfg.MaxInflight+cfg.MaxQueue+1)
	s.prof = newProfiler(cfg.ProfileDir, cfg.ProfileMaxCaptures, cfg.ProfileCooldown, cfg.ProfileCPUDuration)
	s.initObs()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/range", s.opHandler("range", s.handleRange))
	mux.HandleFunc("/v1/count", s.opHandler("count", s.handleCount))
	mux.HandleFunc("/v1/point", s.opHandler("point", s.handlePoint))
	mux.HandleFunc("/v1/knn", s.opHandler("knn", s.handleKNN))
	mux.HandleFunc("/v1/insert", s.opHandler("insert", s.handleInsert))
	mux.HandleFunc("/v1/delete", s.opHandler("delete", s.handleDelete))
	mux.HandleFunc("/v1/batch", s.opHandler("batch", s.handleBatch))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/profilez", s.handleProfilez)
	mux.HandleFunc("/debug/profilez/", s.handleProfilezFetch)
	mux.HandleFunc("/debug/checksum", s.handleChecksum)
	if cfg.Pprof {
		s.mountPprof(mux)
	}
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the read-executor pool. Safe to call once, after the HTTP
// listener has drained.
func (s *Server) Close() { s.co.close() }

// ---------------------------------------------------------------- plumbing

type errorResp struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResp{Error: fmt.Sprintf(format, args...)})
}

// decode parses a JSON request body into v, rejecting trailing garbage.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// opHandler wraps an op endpoint with method filtering, admission control,
// and observability: the slot is held for the whole request, so MaxInflight
// bounds every kind of in-flight work and MaxQueue bounds the line behind
// it. Every request carries a QueryTrace in its context; the admission wait
// becomes the trace's first span, the request's total latency lands in the
// per-route histogram, and slow requests enter the slow-query log.
func (s *Server) opHandler(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.routeHist[route]
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
			s.status(route, http.StatusMethodNotAllowed)
			return
		}
		tr := obs.NewTrace(route)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		admit := time.Now()
		release, err := s.gate.acquire(r.Context())
		if err != nil {
			code := http.StatusServiceUnavailable
			if errors.Is(err, errShed) {
				w.Header().Set("Retry-After", "1")
				code = http.StatusTooManyRequests
				writeError(w, code, "overloaded: admission queue full")
			} else {
				writeError(w, code, "canceled while queued: %v", err)
			}
			s.status(route, code)
			hist.ObserveSince(admit)
			s.reqAll.ObserveSince(admit)
			return
		}
		tr.AddSpan("admission", admit, time.Since(admit), nil)
		sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			release()
			tr.Finish()
			d := tr.Total()
			hist.Observe(d.Seconds())
			s.reqAll.Observe(d.Seconds())
			s.status(route, sw.code)
			if sw.code == http.StatusOK && d >= s.slow.Threshold() {
				if s.slow.Record(tr.Snapshot()) {
					// A slow-query breach is the anomaly the profile ring
					// exists for: capture while the cause is still hot.
					s.prof.trigger("slow_query")
				}
			}
		}()
		h(sw, r)
	}
}

// read runs fn through the coalescer and writes the result (or the
// shutdown/cancel error) for the caller.
func (s *Server) read(w http.ResponseWriter, r *http.Request, fn func(ReadView) any) {
	res, err := s.co.run(r.Context(), fn)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.ops.Add(1)
	writeJSON(w, http.StatusOK, res)
	// A response carrying a pooled buffer is recycled only here, after
	// encoding: the result crossed from the coalescer worker to this
	// goroutine, so the worker must not release it. A result abandoned on a
	// cancelled context is simply collected with its buffer.
	if rel, ok := res.(interface{ release() }); ok {
		rel.release()
	}
}

// pointBufPool recycles the response point buffers of the range and kNN
// handlers, closing the last allocation gap of a steady-state read: the
// index fan-out already runs on a pooled query arena, and with this the
// result set lands in a reused buffer too.
var pointBufPool = sync.Pool{New: func() any { return new(pointBuf) }}

type pointBuf struct{ pts []wazi.Point }

// maxPointBuf bounds the capacity a buffer may carry back into the pool, so
// one huge result does not pin its high-water mark forever.
const maxPointBuf = 1 << 16

func (b *pointBuf) release() {
	if cap(b.pts) > maxPointBuf {
		b.pts = nil
	} else {
		b.pts = b.pts[:0]
	}
	pointBufPool.Put(b)
}

// pooledRange is a rangeResp whose Points slice is borrowed from
// pointBufPool; Server.read releases it once the response is encoded. It
// marshals identically to rangeResp (the embedded fields carry the tags).
type pooledRange struct {
	rangeResp
	buf *pointBuf
}

func (p pooledRange) release() { p.buf.release() }

// ---------------------------------------------------------------- requests

type rectReq struct {
	Rect *wazi.Rect `json:"rect"`
}

type pointReq struct {
	Point *wazi.Point `json:"point"`
}

type knnReq struct {
	Point *wazi.Point `json:"point"`
	K     int         `json:"k"`
}

type batchReq struct {
	Ops []workload.WireOp `json:"ops"`
}

type rangeResp struct {
	Count  int          `json:"count"`
	Points []wazi.Point `json:"points"`
}

type countResp struct {
	Count int `json:"count"`
}

type foundResp struct {
	Found bool `json:"found"`
}

type okResp struct {
	OK bool `json:"ok"`
}

type batchResp struct {
	Results []any `json:"results"`
}

// ---------------------------------------------------------------- handlers

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rectReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WireRange, Rect: req.Rect}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.read(w, r, func(v ReadView) any {
		b := pointBufPool.Get().(*pointBuf)
		b.pts = v.RangeQueryAppend(b.pts[:0], *req.Rect)
		return pooledRange{rangeResp{Count: len(b.pts), Points: b.pts}, b}
	})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req rectReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WireCount, Rect: req.Rect}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.read(w, r, func(v ReadView) any {
		return countResp{Count: v.RangeCount(*req.Rect)}
	})
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WirePoint, Point: req.Point}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.read(w, r, func(v ReadView) any {
		return foundResp{Found: v.PointQuery(*req.Point)}
	})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WireKNN, Point: req.Point, K: req.K}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.read(w, r, func(v ReadView) any {
		b := pointBufPool.Get().(*pointBuf)
		b.pts = v.KNNAppend(b.pts[:0], *req.Point, req.K)
		return pooledRange{rangeResp{Count: len(b.pts), Points: b.pts}, b}
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req pointReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WireInsert, Point: req.Point}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.b.Insert(*req.Point)
	s.ops.Add(1)
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req pointReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	op := workload.WireOp{Op: workload.WireDelete, Point: req.Point}
	if err := op.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	found := s.b.Delete(*req.Point)
	s.ops.Add(1)
	writeJSON(w, http.StatusOK, foundResp{Found: found})
}

// handleBatch executes a mixed multi-op request under ONE admission slot —
// client-side batching, complementing the server-side coalescer. The whole
// batch runs as a single coalescer task, so the pool invariant (only
// CoalesceWorkers goroutines execute index reads) holds for batches too.
// Reads run against a view that starts as the task's pinned snapshot and is
// re-pinned after every write, so within one batch reads observe the
// batch's own earlier writes, and runs of consecutive reads share a
// snapshot pass. The whole batch is validated before any op executes: a
// malformed batch changes nothing.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchReq
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no ops")
		return
	}
	for i, op := range req.Ops {
		if err := op.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "op %d: %v", i, err)
			return
		}
	}
	tr := obs.FromContext(r.Context())
	res, err := s.co.run(r.Context(), func(view ReadView) any {
		pin := func() ReadView {
			if view == nil {
				view = tracedView(s.b.View(), tr)
			}
			return view
		}
		results := make([]any, len(req.Ops))
		for i, op := range req.Ops {
			switch op.Op {
			case workload.WireRange:
				pts := pin().RangeQuery(*op.Rect)
				results[i] = rangeResp{Count: len(pts), Points: pts}
			case workload.WireCount:
				results[i] = countResp{Count: pin().RangeCount(*op.Rect)}
			case workload.WirePoint:
				results[i] = foundResp{Found: pin().PointQuery(*op.Point)}
			case workload.WireKNN:
				pts := pin().KNN(*op.Point, op.K)
				results[i] = rangeResp{Count: len(pts), Points: pts}
			case workload.WireInsert:
				s.b.Insert(*op.Point)
				view = nil // later reads must see this write
				results[i] = okResp{OK: true}
			case workload.WireDelete:
				found := s.b.Delete(*op.Point)
				view = nil
				results[i] = foundResp{Found: found}
			}
		}
		return batchResp{Results: results}
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.ops.Add(int64(len(req.Ops)))
	writeJSON(w, http.StatusOK, res)
}

// ------------------------------------------------------------ introspection

type healthResp struct {
	Status   string `json:"status"`
	Points   int    `json:"points"`
	UptimeMS int64  `json:"uptime_ms"`
	Inflight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "/healthz requires GET")
		return
	}
	writeJSON(w, http.StatusOK, healthResp{
		Status:   "ok",
		Points:   s.b.Len(),
		UptimeMS: time.Since(s.start).Milliseconds(),
		Inflight: s.gate.inflight.Load(),
		Queued:   s.gate.queued.Load(),
	})
}

// shardState is one shard's drift/backlog/load state in /statsz.
type shardState struct {
	Shard         int     `json:"shard"`
	Points        int     `json:"points"`
	Backlog       int     `json:"backlog"`
	Drift         float64 `json:"drift"`
	Rebuilds      int     `json:"rebuilds"`
	WorkloadAware bool    `json:"workload_aware"`
	// Load is the query count this shard served under the current plan —
	// the per-shard counter the online repartitioner balances on.
	Load int64 `json:"load"`
	// PagesScanned/PointsScanned are the shard's cumulative scan work — the
	// imbalance, in work units, that repartitioning redistributes.
	PagesScanned  int64 `json:"pages_scanned"`
	PointsScanned int64 `json:"points_scanned"`
}

// statszResp surfaces the serving counters, the aggregated storage.Stats of
// the index, and per-shard drift state. It intentionally includes both the
// admission metrics (is the gate shedding?) and the coalescer metrics (how
// much are reads batching?) — the two tuning knobs of docs/SERVING.md.
type statszResp struct {
	Points          int          `json:"points"`
	Shards          int          `json:"shards"`
	Rebuilds        int64        `json:"rebuilds"`
	Repartitions    int64        `json:"repartitions"`
	PlanEpoch       int          `json:"plan_epoch"`
	Migrating       bool         `json:"migrating"`
	OpsServed       int64        `json:"ops_served"`
	Admitted        int64        `json:"admitted_requests"`
	Shed            int64        `json:"shed_requests"`
	Inflight        int64        `json:"inflight"`
	Queued          int64        `json:"queued"`
	CoalescedPasses int64        `json:"coalesced_passes"`
	CoalescedReads  int64        `json:"coalesced_reads"`
	CacheHits       int64        `json:"cache_hits"`
	CacheMisses     int64        `json:"cache_misses"`
	CacheEvictions  int64        `json:"cache_evictions"`
	IndexStats      wazi.Stats   `json:"index_stats"`
	ShardStates     []shardState `json:"shard_states"`
	// WAL reports the write-ahead log's counters and recovery status;
	// omitted when the backend runs without one.
	WAL *wazi.WALStats `json:"wal,omitempty"`
	// Obs is the structured snapshot of every registered metric series —
	// the same data /metrics exports, in JSON, with histogram quantiles
	// precomputed.
	Obs obs.Snapshot `json:"obs"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "/statsz requires GET")
		return
	}
	stats := s.b.Stats()
	resp := statszResp{
		Points:          s.b.Len(),
		Shards:          s.b.NumShards(),
		Rebuilds:        s.b.Rebuilds(),
		Repartitions:    s.b.Repartitions(),
		PlanEpoch:       s.b.PlanEpoch(),
		Migrating:       s.b.Migrating(),
		OpsServed:       s.ops.Load(),
		Admitted:        s.gate.admitted.Load(),
		Shed:            s.gate.shed.Load(),
		Inflight:        s.gate.inflight.Load(),
		Queued:          s.gate.queued.Load(),
		CoalescedPasses: s.co.batches.Load(),
		CoalescedReads:  s.co.reads.Load(),
		CacheHits:       stats.CacheHits,
		CacheMisses:     stats.CacheMisses,
		CacheEvictions:  stats.CacheEvictions,
		IndexStats:      stats,
		WAL:             s.walStats(),
		Obs:             s.obsSnapshot(),
	}
	for i, info := range s.b.Shards() {
		resp.ShardStates = append(resp.ShardStates, shardState{
			Shard:         i,
			Points:        info.Points,
			Backlog:       info.Backlog,
			Drift:         info.Drift,
			Rebuilds:      info.Rebuilds,
			WorkloadAware: info.WorkloadAware,
			Load:          info.Load,
			PagesScanned:  info.PagesScanned,
			PointsScanned: info.PointsScanned,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
