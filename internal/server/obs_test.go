package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	wazi "github.com/wazi-index/wazi"
	"github.com/wazi-index/wazi/internal/dataset"
	"github.com/wazi-index/wazi/internal/obs"
	"github.com/wazi-index/wazi/internal/workload"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

// TestMetricsEndpointParses drives traffic through every op route, then
// asserts /metrics is valid Prometheus text exposition containing the core
// families: per-route latency histograms, cache counters, GC pause
// histogram, shard-layer instruments, and per-status request counts.
func TestMetricsEndpointParses(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	post(t, ts, "/v1/count", `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`)
	post(t, ts, "/v1/range", `{"rect":{"MinX":0.4,"MinY":0.4,"MaxX":0.6,"MaxY":0.6}}`)
	post(t, ts, "/v1/point", `{"point":{"X":0.5,"Y":0.5}}`)
	post(t, ts, "/v1/knn", `{"point":{"X":0.5,"Y":0.5},"k":3}`)
	post(t, ts, "/v1/insert", `{"point":{"X":0.11,"Y":0.17}}`)

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	fams, err := obs.ParsePromText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	byName := map[string]*obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"wazi_http_request_seconds",
		"wazi_http_requests_total",
		"wazi_http_inflight",
		"wazi_ops_served_total",
		"wazi_cache_hits_total",
		"wazi_go_gc_pause_seconds",
		"wazi_go_heap_alloc_bytes",
		"wazi_index_points",
		"wazi_fanout_width_shards",
		"wazi_shard_scan_seconds",
		"wazi_coalesced_passes_total",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("/metrics missing family %q", want)
		}
	}
	// The route histogram must have counted the count request.
	var countObs float64
	for _, s := range byName["wazi_http_request_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_count") && s.Labels["route"] == "count" {
			countObs = s.Value
		}
	}
	if countObs < 1 {
		t.Errorf("wazi_http_request_seconds{route=count} _count = %v, want >= 1", countObs)
	}
	// POST to /metrics is rejected.
	if code, _ := post(t, ts, "/metrics", "{}"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", code)
	}
}

// TestStatszObsSnapshot asserts /statsz embeds the structured registry
// snapshot, including histogram quantiles, under the "obs" key.
func TestStatszObsSnapshot(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts, "/v1/count", `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`)

	code, body := get(t, ts, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("/statsz status = %d", code)
	}
	var resp struct {
		Obs obs.Snapshot `json:"obs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if len(resp.Obs.Metrics) == 0 {
		t.Fatal("/statsz obs snapshot is empty")
	}
	m := resp.Obs.Get("wazi_ops_served_total")
	if m == nil || m.Value < 1 {
		t.Fatalf("obs snapshot wazi_ops_served_total = %+v, want >= 1", m)
	}
	h := resp.Obs.Get("wazi_http_request_seconds")
	if h == nil || h.Histogram == nil {
		t.Fatal("obs snapshot lacks the request histogram")
	}
}

// TestMetricsStatszConcurrentWithWrites hammers /metrics and /statsz while
// writes mutate the index; run under -race this proves the whole export path
// (registry walk, runtime sampler, cache-stat funcs) is data-race free
// against concurrent index mutation.
func TestMetricsStatszConcurrentWithWrites(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := float64(seed*iters+i) / float64(2*iters)
				post(t, ts, "/v1/insert", fmt.Sprintf(`{"point":{"X":%g,"Y":%g}}`, x, 1-x))
				post(t, ts, "/v1/count", `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if code, _ := get(t, ts, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics status %d under load", code)
					return
				}
				if code, _ := get(t, ts, "/statsz"); code != http.StatusOK {
					t.Errorf("/statsz status %d under load", code)
					return
				}
			}
		}()
	}
	wg.Wait()

	_, body := get(t, ts, "/metrics")
	if _, err := obs.ParsePromText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics unparsable after concurrent load: %v", err)
	}
}

// TestSlowQueryLoggedWithSpans serves a disk-backed index with a tiny block
// cache, records every request (negative threshold), and asserts a wide
// range query lands in /debug/slowlog with spans from at least three
// distinct layers of the fan-out: admission gate, coalescing batcher,
// per-shard scans, and the page store.
func TestSlowQueryLoggedWithSpans(t *testing.T) {
	pts := dataset.Generate(dataset.NewYork, 6000, 1)
	train := workload.Skewed(dataset.NewYork, 100, 0.0256e-2, 2)
	idx, err := wazi.NewSharded(pts, train, wazi.WithShards(4), wazi.WithoutAutoRebuild(),
		wazi.WithShardedStorage(t.TempDir(), 2), wazi.WithIndexOptions(wazi.WithLeafSize(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	srv := New(Sharded(idx), Config{SlowQueryThreshold: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, resp := post(t, ts, "/v1/range", `{"rect":{"MinX":-180,"MinY":-90,"MaxX":180,"MaxY":90}}`)
	if code != http.StatusOK {
		t.Fatalf("wide range status = %d: %v", code, resp)
	}

	slowCode, body := get(t, ts, "/debug/slowlog")
	if slowCode != http.StatusOK {
		t.Fatalf("/debug/slowlog status = %d", slowCode)
	}
	var slow struct {
		Recorded int64               `json:"recorded"`
		Traces   []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("decoding /debug/slowlog: %v", err)
	}
	if slow.Recorded == 0 || len(slow.Traces) == 0 {
		t.Fatalf("slowlog empty: recorded=%d traces=%d", slow.Recorded, len(slow.Traces))
	}
	var rangeTrace *obs.TraceSnapshot
	for i := range slow.Traces {
		if slow.Traces[i].Op == "range" {
			rangeTrace = &slow.Traces[i]
			break
		}
	}
	if rangeTrace == nil {
		t.Fatalf("no range trace in slowlog: %+v", slow.Traces)
	}
	layers := map[string]bool{}
	for _, sp := range rangeTrace.Spans {
		layers[sp.Name] = true
	}
	if len(layers) < 3 {
		t.Fatalf("slow query trace has %d distinct span layers (%v), want >= 3", len(layers), layers)
	}
	for _, want := range []string{"admission", "batcher", "shard_scan", "pagestore"} {
		if !layers[want] {
			t.Errorf("slow query trace missing %q span (got %v)", want, layers)
		}
	}
}

// TestCoalescedTraceAttribution blocks a single coalescer worker so several
// reads pile up, then releases them and asserts each coalesced request's
// trace carries a "batcher" span attributing the shared snapshot pass
// (batch size >= 2) to it.
func TestCoalescedTraceAttribution(t *testing.T) {
	b, _ := newTestBackend(t)
	blocked := &blockingBackend{Backend: b, gate: make(chan struct{})}
	srv := New(blocked, Config{MaxInflight: 8, MaxQueue: 8, CoalesceWorkers: 1,
		CoalesceBatch: 8, SlowQueryThreshold: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`
	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/count", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("count: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	// Wait until all n reads are enqueued — either still in the channel or
	// already drained into the blocked worker's group (reads counts tasks
	// in formed groups). Which side each lands on depends on scheduling;
	// both produce coalesced passes of >= 2 once the gate opens.
	waitFor(t, func() bool {
		return srv.co.reads.Load()+int64(len(srv.co.tasks)) >= n
	})
	close(blocked.gate)
	wg.Wait()

	var coalesced int
	for _, tr := range srv.slow.Snapshot() {
		for _, sp := range tr.Spans {
			if sp.Name == "batcher" && sp.Attrs["batch"] >= 2 {
				coalesced++
			}
		}
	}
	if coalesced < 2 {
		t.Fatalf("only %d traces carry a batcher span with batch >= 2; the shared pass was not attributed to every coalesced request", coalesced)
	}
}

// TestPprofGated asserts /debug/pprof/ is absent by default and mounted
// under Config.Pprof.
func TestPprofGated(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without Pprof = %d, want 404", code)
	}
	b, _ := newTestBackend(t)
	srv := New(b, Config{Pprof: true})
	defer srv.Close()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	if code, _ := get(t, ts2, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ with Pprof = %d, want 200", code)
	}
}

// TestStatsAndCountersLines sanity-checks the one-line summaries waziserve
// logs: both must mention the ops served and parse-friendly key=value pairs.
func TestStatsAndCountersLines(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})
	post(t, ts, "/v1/count", `{"rect":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}`)

	line := srv.StatsLine()
	for _, key := range []string{"ops=", "qps=", "p95=", "cache_hit=", "heap=", "goroutines="} {
		if !strings.Contains(line, key) {
			t.Errorf("StatsLine %q missing %q", line, key)
		}
	}
	counters := srv.CountersLine()
	for _, key := range []string{"ops=", "admitted=", "shed=", "coalesced_passes=", "cache_hits=", "slow_queries="} {
		if !strings.Contains(counters, key) {
			t.Errorf("CountersLine %q missing %q", counters, key)
		}
	}
	if !strings.Contains(counters, "ops=1") {
		t.Errorf("CountersLine %q should report ops=1", counters)
	}
}
