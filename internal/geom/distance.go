package geom

// DistSq returns the squared Euclidean distance between a and b. Nearest-
// neighbour paths compare squared distances to stay monotone without the
// square root.
func DistSq(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// DistLess orders points by (distance to q, X, Y). The coordinate tie-break
// makes it a total order on point values, so equidistant neighbours resolve
// identically on every backend, shard layout, and run — the property the
// differential suites rely on to compare kNN results byte for byte.
func DistLess(a, b, q Point) bool {
	da, db := DistSq(a, q), DistSq(b, q)
	if da != db {
		return da < db
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// SortByDistance sorts pts in place by DistLess to q, nearest first. It is
// a heapsort: no allocation (sort.Slice allocates its closure and swaps
// through an interface) and a deterministic result for any input order.
func SortByDistance(pts []Point, q Point) {
	n := len(pts)
	for i := n/2 - 1; i >= 0; i-- {
		siftDist(pts, i, n, q)
	}
	for end := n - 1; end > 0; end-- {
		pts[0], pts[end] = pts[end], pts[0]
		siftDist(pts, 0, end, q)
	}
}

// PushBounded feeds one candidate into a bounded nearest-k set maintained
// as a max-heap by DistLess to q (the root is the worst of the k best) and
// returns the updated heap. It appends to h's spare capacity while the set
// is filling and replaces the root afterwards, so a caller streaming
// candidates through a reused buffer allocates nothing. Finish with
// SortByDistance to order the survivors nearest first.
func PushBounded(h []Point, p Point, k int, q Point) []Point {
	if len(h) < k {
		h = append(h, p)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !DistLess(h[parent], h[i], q) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
		return h
	}
	if DistLess(p, h[0], q) {
		h[0] = p
		siftDist(h, 0, len(h), q)
	}
	return h
}

// siftDist restores the max-heap property (by DistLess) for the subtree at
// root within pts[:end].
func siftDist(pts []Point, root, end int, q Point) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && DistLess(pts[child], pts[child+1], q) {
			child++
		}
		if !DistLess(pts[root], pts[child], q) {
			return
		}
		pts[root], pts[child] = pts[child], pts[root]
		root = child
	}
}
