// Package geom provides the two-dimensional geometric primitives shared by
// every index in this repository: points, axis-aligned rectangles, dominance
// tests, and overlap predicates.
//
// All indexes operate on float64 coordinates in an arbitrary data domain;
// the generators in internal/dataset emit points in the unit square, but
// nothing in this package assumes that.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional data space.
type Point struct {
	X, Y float64
}

// Dominates reports whether p dominates q: p is no smaller than q in both
// coordinates and strictly larger in at least one. This is the dominance
// relation used by the Z-index monotonicity property (§3 of the paper).
func (p Point) Dominates(q Point) bool {
	return p.X >= q.X && p.Y >= q.Y && (p.X > q.X || p.Y > q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
// A range query R is represented by its bottom-left corner BL(R) =
// (MinX, MinY) and top-right corner TR(R) = (MaxX, MaxY).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanned by two opposite corners, normalising
// the coordinate order so the result is valid regardless of which corners
// are supplied.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectFromPoints returns the minimum bounding rectangle of pts.
// It panics if pts is empty; bounding an empty set has no meaningful answer.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectFromPoints on empty slice")
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// BL returns the bottom-left corner of r.
func (r Rect) BL() Point { return Point{r.MinX, r.MinY} }

// TR returns the top-right corner of r.
func (r Rect) TR() Point { return Point{r.MaxX, r.MaxY} }

// Valid reports whether r has non-negative extent in both dimensions.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Invalid rectangles report zero area.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies within the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the closed rectangles r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the overlap of r and s. The result is invalid (per
// Valid) when the rectangles are disjoint.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the minimum bounding rectangle of r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Clip returns r clipped to bounds. The result is invalid when r lies
// entirely outside bounds.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// OverlapArea returns the area shared by r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g, %g]x[%g, %g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Quadrant identifies one of the four child cells produced by splitting a
// cell at a split point. The naming follows Figure 1/Algorithm 1 of the
// paper: bitx = p.X > split.X, bity = p.Y > split.Y.
type Quadrant uint8

// The four quadrants. A is the bottom-left cell (both bits zero), B is
// bottom-right (bitx set), C is top-left (bity set), and D is top-right.
const (
	QuadA Quadrant = iota // bottom-left  (bitx=0, bity=0)
	QuadB                 // bottom-right (bitx=1, bity=0)
	QuadC                 // top-left     (bitx=0, bity=1)
	QuadD                 // top-right    (bitx=1, bity=1)
)

// String implements fmt.Stringer.
func (q Quadrant) String() string {
	switch q {
	case QuadA:
		return "A"
	case QuadB:
		return "B"
	case QuadC:
		return "C"
	case QuadD:
		return "D"
	}
	return fmt.Sprintf("Quadrant(%d)", uint8(q))
}

// QuadrantOf classifies p against the split point: which of the four child
// cells of a cell split at split contains p.
func QuadrantOf(p, split Point) Quadrant {
	var q Quadrant
	if p.X > split.X {
		q |= 1 // bitx
	}
	if p.Y > split.Y {
		q |= 2 // bity
	}
	return q
}

// QuadrantRect returns the sub-rectangle of cell corresponding to quadrant q
// under a split at split. The quadrants tile cell: shared edges are assigned
// to the lower quadrant, consistent with the strict > comparisons in
// QuadrantOf.
func QuadrantRect(cell Rect, split Point, q Quadrant) Rect {
	r := cell
	if q&1 != 0 {
		r.MinX = split.X
	} else {
		r.MaxX = split.X
	}
	if q&2 != 0 {
		r.MinY = split.Y
	} else {
		r.MaxY = split.Y
	}
	return r
}
