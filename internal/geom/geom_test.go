package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 0.5}, true},
		{Point{0, 0}, true}, // corners are inside (closed rect)
		{Point{2, 1}, true},
		{Point{2, 0}, true},
		{Point{2.0001, 0.5}, false},
		{Point{-0.0001, 0.5}, false},
		{Point{1, 1.0001}, false},
		{Point{1, -0.0001}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{0.5, 0.5, 2, 2}, true},
		{Rect{1, 1, 2, 2}, true}, // touching at a corner counts
		{Rect{1.001, 0, 2, 1}, false},
		{Rect{0, 1.001, 1, 2}, false},
		{Rect{-1, -1, -0.001, 2}, false},
		{Rect{0.25, 0.25, 0.75, 0.75}, true}, // containment
		{a, true},                            // self
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("symmetry: %v.Intersects(%v) = %v, want %v", c.b, a, got, c.want)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{-1, 1})
	want := Rect{-1, 1, 2, 3}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r := RectFromPoints(pts)
	want := Rect{-2, -1, 4, 5}
	if r != want {
		t.Fatalf("RectFromPoints = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR must contain %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("RectFromPoints(nil) should panic")
		}
	}()
	RectFromPoints(nil)
}

func TestIntersectUnionAreas(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	if got := a.Intersect(b); got != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	disjoint := Rect{5, 5, 6, 6}
	if a.Intersect(disjoint).Valid() {
		t.Error("intersection of disjoint rects must be invalid")
	}
	if a.OverlapArea(disjoint) != 0 {
		t.Error("overlap area of disjoint rects must be 0")
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 1}, Point{0, 0}, true},
		{Point{1, 0}, Point{0, 0}, true},
		{Point{0, 0}, Point{0, 0}, false}, // equal points do not dominate
		{Point{0, 1}, Point{1, 0}, false}, // incomparable
		{Point{0, 0}, Point{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v.Dominates(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQuadrantOf(t *testing.T) {
	s := Point{0.5, 0.5}
	cases := []struct {
		p    Point
		want Quadrant
	}{
		{Point{0.2, 0.2}, QuadA},
		{Point{0.8, 0.2}, QuadB},
		{Point{0.2, 0.8}, QuadC},
		{Point{0.8, 0.8}, QuadD},
		{Point{0.5, 0.5}, QuadA}, // points on split lines go low
		{Point{0.5, 0.8}, QuadC},
		{Point{0.8, 0.5}, QuadB},
	}
	for _, c := range cases {
		if got := QuadrantOf(c.p, s); got != c.want {
			t.Errorf("QuadrantOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuadrantRectTilesCell(t *testing.T) {
	cell := Rect{0, 0, 4, 2}
	split := Point{1, 0.5}
	var total float64
	for q := Quadrant(0); q < 4; q++ {
		r := QuadrantRect(cell, split, q)
		if !cell.ContainsRect(r) {
			t.Errorf("quadrant %v rect %v escapes cell", q, r)
		}
		total += r.Area()
	}
	if total != cell.Area() {
		t.Errorf("quadrant areas sum to %v, want %v", total, cell.Area())
	}
}

// Property: QuadrantOf and QuadrantRect agree — every point lies inside the
// rect of its own quadrant.
func TestQuadrantConsistencyProperty(t *testing.T) {
	f := func(px, py, sx, sy float64) bool {
		cell := Rect{-1000, -1000, 1000, 1000}
		p := Point{clampf(px), clampf(py)}
		s := Point{clampf(sx), clampf(sy)}
		q := QuadrantOf(p, s)
		return QuadrantRect(cell, s, q).Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative and contained in both operands;
// union contains both operands.
func TestIntersectUnionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		return NewRect(
			Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5},
			Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5},
		)
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			t.Fatalf("Intersect not commutative: %v vs %v", ab, ba)
		}
		if ab.Valid() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			t.Fatalf("intersection %v escapes operands %v, %v", ab, a, b)
		}
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain operands", u)
		}
		if a.Intersects(b) != ab.Valid() {
			t.Fatalf("Intersects disagrees with Intersect validity for %v, %v", a, b)
		}
	}
}

// Property: Contains(p) implies Intersects of the degenerate point rect.
func TestContainsIntersectsAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		r := NewRect(
			Point{rng.Float64(), rng.Float64()},
			Point{rng.Float64(), rng.Float64()},
		)
		p := Point{rng.Float64(), rng.Float64()}
		pr := Rect{p.X, p.Y, p.X, p.Y}
		if r.Contains(p) != r.Intersects(pr) {
			t.Fatalf("Contains and Intersects disagree for %v, %v", r, p)
		}
	}
}

func TestCenterAndExtend(t *testing.T) {
	r := Rect{0, 0, 2, 4}
	if r.Center() != (Point{1, 2}) {
		t.Errorf("Center = %v", r.Center())
	}
	e := r.ExtendPoint(Point{-1, 5})
	if e != (Rect{-1, 0, 2, 5}) {
		t.Errorf("ExtendPoint = %v", e)
	}
	if r.Width() != 2 || r.Height() != 4 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
}

func TestStrings(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("empty Point string")
	}
	if s := (Rect{0, 0, 1, 1}).String(); s == "" {
		t.Error("empty Rect string")
	}
	for q := Quadrant(0); q < 5; q++ {
		if q.String() == "" {
			t.Errorf("empty string for quadrant %d", q)
		}
	}
}

// clampf maps arbitrary float64 (including NaN/Inf from quick) into a sane
// test range.
func clampf(v float64) float64 {
	if v != v || v > 999 || v < -999 { // NaN or out of range
		return 0
	}
	return v
}
