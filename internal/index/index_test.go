package index_test

import (
	"testing"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/index"
	"github.com/wazi-index/wazi/internal/indextest"
)

// TestBruteConformance runs the shared conformance suite against Brute
// itself. Brute is the suite's own reference, so this is a self-consistency
// check — it pins down the ground truth every other index is tested
// against, and exercises the suite's updatable path.
func TestBruteConformance(t *testing.T) {
	indextest.ConformanceUpdatable(t, func(pts []geom.Point, _ []geom.Rect) index.Updatable {
		return index.NewBrute(pts)
	})
}

// TestBruteCopiesInput: mutating the input slice after construction must
// not affect the index.
func TestBruteCopiesInput(t *testing.T) {
	pts := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}
	b := index.NewBrute(pts)
	pts[0] = geom.Point{X: 5, Y: 5}
	if !b.PointQuery(geom.Point{X: 0.1, Y: 0.1}) {
		t.Fatal("index shares backing array with caller input")
	}
}

// TestBruteAccounting checks the counters the conformance suite relies on.
func TestBruteAccounting(t *testing.T) {
	pts := indextest.ClusteredPoints(500, 1)
	b := index.NewBrute(pts)
	before := *b.Stats()
	hits := b.RangeQuery(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2})
	if len(hits) != len(pts) {
		t.Fatalf("full query returned %d of %d", len(hits), len(pts))
	}
	d := b.Stats().Diff(before)
	if d.RangeQueries != 1 || d.PointsScanned != int64(len(pts)) || d.ResultPoints != int64(len(pts)) {
		t.Fatalf("counter deltas wrong: %+v", d)
	}
	b.Insert(geom.Point{X: 0.5, Y: 0.5})
	if b.Stats().Inserts != 1 {
		t.Fatal("insert not counted")
	}
	if b.Len() != len(pts)+1 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}
