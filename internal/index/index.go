// Package index defines the common interface implemented by every spatial
// index in this repository — WaZI, the base Z-index, and all baselines —
// plus a brute-force reference implementation used as ground truth in tests
// and integration checks.
package index

import (
	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/storage"
)

// Index is the query interface shared by all spatial indexes.
type Index interface {
	// RangeQuery returns all indexed points inside the closed rectangle r.
	RangeQuery(r geom.Rect) []geom.Point
	// PointQuery reports whether a point equal to p is indexed.
	PointQuery(p geom.Point) bool
	// Len returns the number of indexed points.
	Len() int
	// Bytes returns the approximate in-memory footprint of the index,
	// including data pages (the Table 5 quantity).
	Bytes() int64
	// Stats returns the index's cumulative access counters.
	Stats() *storage.Stats
}

// Updatable is implemented by indexes that support point insertion, as
// exercised by the Figure 11 experiment (WaZI, CUR, Flood).
type Updatable interface {
	Index
	Insert(p geom.Point)
}

// Brute is a linear-scan reference index. It is trivially correct, which
// makes it the ground truth for every other implementation's tests.
type Brute struct {
	pts   []geom.Point
	stats storage.Stats
}

// NewBrute returns a brute-force index over a copy of pts.
func NewBrute(pts []geom.Point) *Brute {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	return &Brute{pts: own}
}

// RangeQuery scans every point.
func (b *Brute) RangeQuery(r geom.Rect) []geom.Point {
	b.stats.RangeQueries++
	b.stats.PointsScanned += int64(len(b.pts))
	var out []geom.Point
	for _, p := range b.pts {
		if r.Contains(p) {
			out = append(out, p)
		}
	}
	b.stats.ResultPoints += int64(len(out))
	return out
}

// PointQuery scans every point.
func (b *Brute) PointQuery(p geom.Point) bool {
	b.stats.PointQueries++
	b.stats.PointsScanned += int64(len(b.pts))
	for _, q := range b.pts {
		if q == p {
			return true
		}
	}
	return false
}

// Insert appends p.
func (b *Brute) Insert(p geom.Point) {
	b.stats.Inserts++
	b.pts = append(b.pts, p)
}

// Len returns the number of points.
func (b *Brute) Len() int { return len(b.pts) }

// Bytes returns the storage footprint.
func (b *Brute) Bytes() int64 { return int64(cap(b.pts)) * 16 }

// Stats returns the counters.
func (b *Brute) Stats() *storage.Stats { return &b.stats }
