package wazi

import (
	"time"

	"github.com/wazi-index/wazi/internal/obs"
	"github.com/wazi-index/wazi/internal/storage"
)

// ShardedObs bundles the observability instruments a Sharded index feeds on
// its hot paths. The instruments are plain obs value objects owned by the
// index; the serving layer registers them with its metrics registry under
// stable names, and the bench harness reads them directly. All fields are
// histograms or counters whose methods are nil-safe, and the whole bundle
// may be absent (WithoutObservability), in which case the query paths pay
// only a nil check.
type ShardedObs struct {
	// FanoutWidth observes, per range/count/kNN query, how many shards the
	// fan-out targeted after pruning (unit: shards, not seconds).
	FanoutWidth *obs.Histogram
	// FanoutPruned counts shards skipped by MBR/occupancy pruning.
	FanoutPruned *obs.Counter
	// ShardScan observes per-shard scan latency in seconds.
	ShardScan *obs.Histogram
	// PageRead observes disk page-file read latency in seconds; it is
	// attached to the DiskStore of every shard index the Sharded builds,
	// loads, or rebuilds (RAM-backed shards never feed it).
	PageRead *obs.Histogram
	// Rebuild observes drift/compaction rebuild durations in seconds.
	Rebuild *obs.Histogram
	// Migration observes live repartition-migration durations in seconds.
	Migration *obs.Histogram
	// WALFsync observes write-ahead-log fsync latency in seconds — the
	// price of the durability acknowledgement under group/always sync.
	WALFsync *obs.Histogram
}

// fanoutBuckets sizes the fan-out width histogram: widths are small
// integers bounded by the shard count (≤64).
func fanoutBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

func newShardedObs() *ShardedObs {
	return &ShardedObs{
		FanoutWidth:  obs.NewHistogram(fanoutBuckets()),
		FanoutPruned: &obs.Counter{},
		ShardScan:    obs.NewHistogram(obs.DefBuckets()),
		PageRead:     obs.NewHistogram(obs.DefBuckets()),
		Rebuild:      obs.NewHistogram(obs.DefBuckets()),
		Migration:    obs.NewHistogram(obs.DefBuckets()),
		WALFsync:     obs.NewHistogram(obs.DefBuckets()),
	}
}

// Obs returns the index's observability instruments, or nil when built
// WithoutObservability. The serving layer registers the bundle at startup.
func (s *Sharded) Obs() *ShardedObs { return s.obs }

// PoolCounters returns the fan-out worker pool's cumulative task count and
// the subset that ran inline on the querying goroutine.
func (s *Sharded) PoolCounters() (ran, inline int64) { return s.pool.Counters() }

// observeFanout records one fan-out decision: width shards targeted out of
// total. Nil-safe.
func (o *ShardedObs) observeFanout(total, width int) {
	if o == nil {
		return
	}
	o.FanoutWidth.Observe(float64(width))
	o.FanoutPruned.Add(int64(total - width))
}

// observeScan records one shard scan's latency. Nil-safe.
func (o *ShardedObs) observeScan(d time.Duration) {
	if o == nil {
		return
	}
	o.ShardScan.Observe(d.Seconds())
}

// WithoutObservability disables the per-query instruments (fan-out and
// latency histograms). Traces handed in via View.WithTrace still work. This
// exists for the obs-overhead benchmark, which measures the instrumented
// hot path against this configuration.
func WithoutObservability() ShardedOption {
	return func(c *shardedConfig) { c.noObs = true }
}

// attachStoreObs points a freshly built or loaded shard index's disk store
// at the shared page-read histogram. No-op for RAM-backed shards or when
// observability is off.
func (s *Sharded) attachStoreObs(idx *Index) {
	if s.obs == nil || idx == nil {
		return
	}
	if ds, ok := idx.z.Store().(*storage.DiskStore); ok {
		ds.SetReadObs(s.obs.PageRead)
	}
}

// snapReadIO sums the cumulative page-file read counters across the disk
// stores of a snapshot's shards. Traced queries take before/after deltas to
// attribute cache-miss page I/O to themselves; concurrent faulting can fold
// a neighbor's read into the delta, so the attribution is monitoring-grade.
func snapReadIO(snap *shardedSnapshot) (reads, nanos int64) {
	for _, ss := range snap.shards {
		if ss.idx == nil {
			continue
		}
		if ds, ok := ss.idx.z.Store().(*storage.DiskStore); ok {
			r, n := ds.ReadIO()
			reads += r
			nanos += n
		}
	}
	return reads, nanos
}

// traceIO starts page-I/O attribution for a traced query against snap; the
// returned func closes the "pagestore" span. Returns nil when tr is nil —
// the caller guards the defer — so un-traced queries never touch the store
// counters.
func (s *Sharded) traceIO(snap *shardedSnapshot, tr *obs.QueryTrace) func() {
	if tr == nil {
		return nil
	}
	t0 := time.Now()
	r0, n0 := snapReadIO(snap)
	return func() {
		r1, n1 := snapReadIO(snap)
		if dr := r1 - r0; dr > 0 {
			tr.AddSpan("pagestore", t0, time.Duration(n1-n0),
				map[string]int64{"reads": dr})
		}
	}
}

// scanStart opens the timing of one shard scan: it returns the start time
// and whether any scan instrument is live (the shared latency histogram or a
// per-query trace). Callers pair it with endScan, skipped when live is
// false. The pair is deliberately not a returned closure — a closure per
// shard scan is a heap allocation on the hottest path in the system, which
// the kernel-allocs experiment ratchets to zero.
func (s *Sharded) scanStart(tr *obs.QueryTrace) (t0 time.Time, live bool) {
	if tr == nil && s.obs == nil {
		return time.Time{}, false
	}
	return time.Now(), true
}

// endScan closes a scan opened by scanStart: latency into the shared
// histogram and, when traced, a per-shard "shard_scan" span stamped with the
// result count.
func (s *Sharded) endScan(tr *obs.QueryTrace, si int, t0 time.Time, results int) {
	d := time.Since(t0)
	s.obs.observeScan(d)
	if tr != nil {
		tr.AddSpan("shard_scan", t0, d,
			map[string]int64{"shard": int64(si), "results": int64(results)})
	}
}
