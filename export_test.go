package wazi

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/wazi-index/wazi/internal/shard"
)

// RecentWindow returns shard i's recent-query ring contents — a test hook
// for asserting that warm starts preserve the drift window that rebuilds
// train on.
func (s *Sharded) RecentWindow(i int) []Rect { return s.snap.Load().ctls[i].recent.snapshot() }

// DoctorSnapshotVersion re-encodes a saved sharded snapshot with the header
// version replaced, preserving the migration record and every shard record
// — a test hook for asserting that Load refuses future format versions with
// a clear error.
func DoctorSnapshotVersion(t *testing.T, buf *bytes.Buffer, version int) []byte {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(buf.Bytes()))
	var h shardedHeader
	if err := dec.Decode(&h); err != nil {
		t.Fatalf("doctoring snapshot: decode header: %v", err)
	}
	shards := h.Shards
	h.Version = version
	var out bytes.Buffer
	enc := gob.NewEncoder(&out)
	if err := enc.Encode(&h); err != nil {
		t.Fatalf("doctoring snapshot: encode header: %v", err)
	}
	var mig migrationRecord
	if err := dec.Decode(&mig); err != nil {
		t.Fatalf("doctoring snapshot: decode migration record: %v", err)
	}
	if err := enc.Encode(&mig); err != nil {
		t.Fatalf("doctoring snapshot: encode migration record: %v", err)
	}
	for i := 0; i < shards; i++ {
		var rec shardedShardRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("doctoring snapshot: decode shard %d: %v", i, err)
		}
		if err := enc.Encode(&rec); err != nil {
			t.Fatalf("doctoring snapshot: encode shard %d: %v", i, err)
		}
	}
	return out.Bytes()
}

// ForceMigrationState installs an in-flight migration record (target plan
// learned from the live points under the given workload) without running
// the migration — the deterministic way for tests and fuzz seeds to obtain
// a real mid-migration Save. Call ClearMigrationState before further use.
func (s *Sharded) ForceMigrationState(t testing.TB, window []Rect, shards int) {
	t.Helper()
	snap := s.snap.Load()
	var pts []Point
	for _, ss := range snap.shards {
		pts = append(pts, materialize(ss)...)
	}
	if len(pts) == 0 {
		t.Fatal("ForceMigrationState: empty index")
	}
	target := shard.Partition(pts, window, shards)
	s.mu.Lock()
	s.repartInFlight = true
	s.repartTarget = target
	s.mu.Unlock()
}

// ForceMigrationLearnPhase marks a migration in flight with no target plan
// yet — the learn-phase window between raising the in-flight flag and
// finishing Partition, during which Save must still produce a restorable
// snapshot. Call ClearMigrationState before further use.
func (s *Sharded) ForceMigrationLearnPhase() {
	s.mu.Lock()
	s.repartInFlight = true
	s.repartTarget = nil
	s.mu.Unlock()
}

// ClearMigrationState undoes ForceMigrationState.
func (s *Sharded) ClearMigrationState() {
	s.mu.Lock()
	s.repartInFlight = false
	s.repartTarget = nil
	s.repartLog = nil
	s.mu.Unlock()
}
