package wazi

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// RecentWindow returns shard i's recent-query ring contents — a test hook
// for asserting that warm starts preserve the drift window that rebuilds
// train on.
func (s *Sharded) RecentWindow(i int) []Rect { return s.ctls[i].recent.snapshot() }

// DoctorSnapshotVersion re-encodes a saved sharded snapshot with the header
// version replaced, preserving every shard record — a test hook for
// asserting that Load refuses future format versions with a clear error.
func DoctorSnapshotVersion(t *testing.T, buf *bytes.Buffer, version int) []byte {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(buf.Bytes()))
	var h shardedHeader
	if err := dec.Decode(&h); err != nil {
		t.Fatalf("doctoring snapshot: decode header: %v", err)
	}
	shards := h.Shards
	h.Version = version
	var out bytes.Buffer
	enc := gob.NewEncoder(&out)
	if err := enc.Encode(&h); err != nil {
		t.Fatalf("doctoring snapshot: encode header: %v", err)
	}
	for i := 0; i < shards; i++ {
		var rec shardedShardRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("doctoring snapshot: decode shard %d: %v", i, err)
		}
		if err := enc.Encode(&rec); err != nil {
			t.Fatalf("doctoring snapshot: encode shard %d: %v", i, err)
		}
	}
	return out.Bytes()
}
