package wazi

import (
	"os"
	"path/filepath"
	"time"

	"github.com/wazi-index/wazi/internal/geom"
	"github.com/wazi-index/wazi/internal/shard"
)

// This file is the online repartitioner: the closed loop that keeps the
// GLOBAL partition plan — not just each shard's internal curve — tracking
// the observed workload. The per-shard RebuildAdvisor re-learns a drifted
// shard's index, but it cannot move the shard boundaries; when a hotspot
// migrates into territory the original plan packed into one big cold shard,
// that shard soaks up the whole hotspot alone while its neighbors idle.
// CheckRepartition watches the cross-shard load vector for exactly that
// skew, and Repartition re-learns a fresh Z-order plan from the live points
// and the aggregated recent-query windows, then migrates to it LIVE:
//
//  1. capture the serving snapshot and open the migration log — from here
//     on every write applies to the serving (old-plan) shards as usual and
//     is also appended to the log (see Insert/Delete);
//  2. outside the lock, stream the captured shards' points (old plan order),
//     learn the new plan, and build each new shard's index under the next
//     page-file epoch — readers keep serving the old snapshot untouched;
//  3. drain the migration log onto the new shards in bounded rounds outside
//     the lock, routing each logged op with the NEW plan;
//  4. under the lock, replay the final log remainder, swap plan + shards +
//     controls in one atomic snapshot store, and retire the old plan's
//     indexes (stats banked, page stores parked for in-flight readers).
//
// Readers never block: a View pinned before the swap keeps routing with the
// old plan against the old shards; the first load after the swap sees the
// new pair. No write is lost: every op lands either in the captured
// snapshot (before capture) or in the migration log (after), and the log is
// replayed in arrival order.
//
// Rebuilds and repartitions exclude each other under s.mu (see
// rebuildShard); writes arriving mid-migration stay in delta buffers until
// the new plan's control loop compacts them.

// CheckRepartition asks the plan advisor whether the global workload has
// moved away from the serving plan far enough to justify re-learning it,
// and if so migrates live. Two signals trigger, either sufficing once
// enough load accumulated since the last check:
//
//   - cross-shard load imbalance (shard.Imbalance over the per-shard load
//     deltas): the hottest shard carries several times its fair share while
//     neighbors idle;
//   - plan drift: the total-variation distance between the global observed
//     workload histogram (the per-shard recent windows, aggregated) and the
//     histogram of the workload the serving plan was learned from — the
//     plan-level analogue of the per-shard RebuildAdvisor. Fan-out spreads
//     load, so a drifted hotspot can hide below the imbalance bar while
//     the spatial distribution has plainly moved; this signal catches it.
//
// It returns true when a migration completed. The background control loop
// calls this after every rebuild scan (unless WithoutAutoRepartition);
// tests and callers running WithoutAutoRebuild can call it directly.
func (s *Sharded) CheckRepartition() bool {
	s.mu.Lock()
	snap := s.snap.Load()
	if s.repartInFlight || s.closed {
		s.mu.Unlock()
		return false
	}
	if len(s.repartSeen) != len(snap.ctls) {
		// First check under this plan: the fresh ctls count from zero, so a
		// zero baseline makes the first delta the load since the plan began.
		s.repartSeen = make([]int64, len(snap.ctls))
	}
	// Back off after futile attempts: each consecutive no-op doubles the
	// load the advisor demands before trying again (capped at 64x).
	minLoad := int64(s.opts.repartitionMinLoad) << min(s.repartFutile, 6)
	// Judge skew over the shards that hold points: a structurally empty
	// shard cannot serve load and must not read as idleness, but a populated
	// shard sitting idle while a neighbor burns is exactly the signal.
	loads := make([]float64, 0, len(snap.ctls))
	var total int64
	cur := make([]int64, len(snap.ctls))
	for i, ctl := range snap.ctls {
		cur[i] = ctl.load.Load()
		d := cur[i] - s.repartSeen[i]
		total += d
		if snap.shards[i].live() > 0 {
			loads = append(loads, float64(d))
		}
	}
	if total < minLoad {
		s.mu.Unlock()
		return false
	}
	skew := shard.Imbalance(loads)
	planRef := s.planRef
	s.repartSeen = cur
	s.mu.Unlock()
	// The window collected for the drift test is handed on to the migration
	// itself — aggregating the rings copies up to windowSize rects per shard
	// under each ring's mutex, not worth doing twice.
	var window []Rect
	if skew < s.opts.repartitionMaxSkew {
		if planRef == nil {
			return false
		}
		window = aggregateWindows(snap)
		if histDrift(planRef, queryHist(snap.plan.Bounds(), window)) < s.opts.repartitionMaxDrift {
			return false
		}
	}
	return s.repartition(window)
}

// aggregateWindows concatenates every shard's recent-query ring into the
// global observed workload. Queries spanning k shards appear k times, which
// weights them by the fan-out they actually cost — the load a re-learned
// plan should balance.
func aggregateWindows(snap *shardedSnapshot) []Rect {
	var window []Rect
	for _, ctl := range snap.ctls {
		window = append(window, ctl.recent.snapshot()...)
	}
	return window
}

// planHistSide is the resolution of the plan-level workload histogram.
const planHistSide = 16

// queryHist maps query centers onto a normalized planHistSide² histogram
// over bounds; nil for an empty window.
func queryHist(bounds Rect, window []Rect) []float64 {
	if len(window) == 0 {
		return nil
	}
	h := make([]float64, planHistSide*planHistSide)
	w := bounds.Width()
	ht := bounds.Height()
	if w <= 0 {
		w = 1
	}
	if ht <= 0 {
		ht = 1
	}
	for _, q := range window {
		c := q.Center()
		cx := clampCell(int((c.X - bounds.MinX) / w * planHistSide))
		cy := clampCell(int((c.Y - bounds.MinY) / ht * planHistSide))
		h[cy*planHistSide+cx]++
	}
	for i := range h {
		h[i] /= float64(len(window))
	}
	return h
}

func clampCell(c int) int {
	if c < 0 {
		return 0
	}
	if c >= planHistSide {
		return planHistSide - 1
	}
	return c
}

// histDrift is the total-variation distance between two normalized
// histograms (0 = identical, 1 = disjoint); 0 when either is missing.
func histDrift(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return 0
	}
	var tv float64
	for i := range a {
		tv += abs(a[i] - b[i])
	}
	return tv / 2
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Repartition re-learns the partition plan from the live point set and the
// shards' aggregated recent-query windows and migrates to it now,
// regardless of the imbalance advisor. It returns true when a migration
// completed, false when it was skipped: another migration or a shard
// rebuild is in flight, the index is closed or empty, or the freshly
// learned plan routes identically to the serving one (re-learning under an
// unchanged workload is a no-op).
func (s *Sharded) Repartition() bool { return s.repartition(nil) }

// repartition starts a migration, training the new plan on window when
// non-nil (CheckRepartition hands over the aggregate it already collected
// for the drift test) and on a fresh aggregation of the recent-query rings
// otherwise.
func (s *Sharded) repartition(window []Rect) bool {
	s.mu.Lock()
	snap := s.snap.Load()
	if s.repartInFlight || s.closed {
		s.mu.Unlock()
		return false
	}
	for _, ctl := range snap.ctls {
		if ctl.rebuilding {
			// A shard rebuild owns its slot's swap; let it finish and let
			// the control loop retry the migration on its next pass.
			s.mu.Unlock()
			return false
		}
	}
	if window == nil {
		window = aggregateWindows(snap)
	}
	s.repartInFlight = true
	s.repartLog = nil
	s.mu.Unlock()

	done, _ := s.migrate(snap, window)
	return done
}

// migrate runs steps 2–4 of the migration (see the file comment) against
// the captured snapshot. Callers have set repartInFlight; migrate clears it
// on every path. It returns whether the swap happened.
func (s *Sharded) migrate(snap *shardedSnapshot, window []Rect) (bool, error) {
	migrateStart := time.Now()
	abort := func() {
		s.mu.Lock()
		s.repartInFlight = false
		s.repartTarget = nil
		s.repartLog = nil
		s.mu.Unlock()
	}

	// Stream the captured shards into the live point set, old-plan shard by
	// old-plan shard. Every captured structure is immutable copy-on-write,
	// so this holds no locks (on a disk backend it reads every page).
	var pts []Point
	for _, ss := range snap.shards {
		pts = append(pts, materialize(ss)...)
	}
	if len(pts) == 0 {
		abort()
		return false, nil
	}

	plan := shard.Partition(pts, window, s.opts.shards)
	if shard.Equal(snap.plan, plan) {
		s.mu.Lock()
		s.repartFutile++
		s.mu.Unlock()
		abort()
		return false, nil
	}
	s.mu.Lock()
	s.repartTarget = plan
	s.mu.Unlock()

	// Build the new plan's shards under the next page-file epoch. Readers
	// are still serving the old snapshot; nothing here is visible yet.
	epoch := snap.epoch + 1
	shards := make([]*shardSnap, plan.NumShards())
	ctls := make([]*shardCtl, plan.NumShards())
	discard := func() {
		for _, ns := range shards {
			if ns != nil && ns.idx != nil {
				discardIndexStorage(ns.idx)
			}
		}
	}
	for i, group := range plan.Groups {
		ctls[i] = &shardCtl{recent: newQueryRing(s.opts.windowSize)}
		if len(group) == 0 {
			shards[i] = &shardSnap{empty: true}
			continue
		}
		bounds := geom.RectFromPoints(group)
		shardQs := intersectingQueries(window, bounds)
		idx, err := buildShardIndex(group, shardQs, s.shardIndexOptions(epoch, i, 0))
		if err == nil {
			s.attachStoreObs(idx)
		}
		if err != nil {
			// Only reachable on the disk backend (page-file creation). Fail
			// safe: drop everything built so far and keep serving the old
			// plan; drop any partial file of the failing shard too.
			if s.opts.storageDir != "" {
				os.Remove(filepath.Join(s.opts.storageDir, shardPageFile(epoch, i, 0)))
			}
			discard()
			abort()
			return false, err
		}
		shards[i] = &shardSnap{idx: idx, bounds: idx.Bounds(),
			occ: buildOccupancy(group, idx.Bounds())}
		// The shard-intersecting slice of the observed window becomes the
		// new shard's drift baseline and seeds its recent ring, so the next
		// drift decision and the next migration both have context.
		ctls[i].advisor.Store(NewRebuildAdvisor(idx.Bounds(), shardQs, s.opts.windowSize, s.opts.driftThreshold))
		ctls[i].recent.preload(shardQs)
	}

	// Drain the migration log in bounded rounds OUTSIDE the mutex — on a
	// disk backend every replayed op faults and rewrites a page, and
	// holding s.mu across that I/O would stall all writers. Bounded rounds
	// so a sustained write stream cannot livelock the swap; the (small)
	// remainder is applied under the lock below.
	s.mu.Lock()
	for round := 0; len(s.repartLog) > 0 && round < 4; round++ {
		batch := s.repartLog
		s.repartLog = nil
		s.mu.Unlock()
		applyMigratedOps(plan, shards, batch)
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	if s.closed {
		// Close won the race; the old snapshot stays authoritative (Close
		// already released its stores) and the new build is discarded.
		discard()
		s.repartInFlight = false
		s.repartTarget = nil
		s.repartLog = nil
		return false, nil
	}
	applyMigratedOps(plan, shards, s.repartLog)

	// Retire the old plan: bank its counters so aggregate Stats never move
	// backwards, and park its page stores for readers still on the old
	// snapshot. cur (not snap) is the latest old-plan snapshot, but writes
	// never replace a shard's idx, so snap's index set is still exact.
	cur := s.snap.Load()
	for _, ss := range cur.shards {
		if ss.idx != nil {
			s.retired = s.retired.Add(ss.idx.Stats().AtomicSnapshot())
			s.retireIndexStore(ss.idx)
		}
	}
	s.snap.Store(&shardedSnapshot{plan: plan, shards: shards, ctls: ctls, epoch: epoch})
	s.planRef = queryHist(plan.Bounds(), window)
	s.repartInFlight = false
	s.repartTarget = nil
	s.repartLog = nil
	s.repartSeen = nil // new plan, fresh load baseline
	s.repartFutile = 0
	s.repartitions.Add(1)
	if s.obs != nil {
		s.obs.Migration.ObserveSince(migrateStart)
	}
	return true, nil
}

// applyMigratedOps replays logged writes onto the not-yet-published new
// shards, routing each op with the NEW plan. The shards are private to the
// migration until the swap, so mutating them in place is safe.
func applyMigratedOps(plan *shard.Plan, shards []*shardSnap, ops []shardOp) {
	for _, op := range ops {
		ss := shards[plan.Locate(op.p)]
		if op.del {
			// The delete succeeded on the serving side, so the point exists
			// here too: either materialized into the built index or added by
			// an earlier logged insert.
			if ss.idx != nil && ss.idx.Delete(op.p) {
				continue
			}
			for j, q := range ss.extra {
				if q == op.p {
					ss.extra = append(ss.extra[:j], ss.extra[j+1:]...)
					break
				}
			}
			continue
		}
		if ss.idx != nil {
			ss.idx.Insert(op.p)
			ss.occ.add(op.p)
			ss.bounds = ss.bounds.ExtendPoint(op.p)
			continue
		}
		if ss.empty {
			ss.empty = false
			ss.bounds = pointRect(op.p)
			ss.extraBounds = pointRect(op.p)
		} else {
			ss.bounds = ss.bounds.ExtendPoint(op.p)
			ss.extraBounds = ss.extraBounds.ExtendPoint(op.p)
		}
		ss.extra = append(ss.extra, op.p)
	}
}
