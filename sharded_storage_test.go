package wazi

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func storageTestData(n int, seed int64) ([]Point, []Rect) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	qs := make([]Rect, 200)
	for i := range qs {
		cx, cy := rng.Float64(), rng.Float64()
		w := 0.02 + rng.Float64()*0.08
		qs[i] = Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
	}
	return pts, qs
}

func sortedPts(pts []Point) []Point {
	out := append([]Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func eqPts(t *testing.T, got, want []Point, ctx string) {
	t.Helper()
	g, w := sortedPts(got), sortedPts(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d points, want %d", ctx, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: result %d = %v, want %v", ctx, i, g[i], w[i])
		}
	}
}

// TestShardedDiskStorageLifecycle walks the full disk-backed serving story:
// cold build onto page files, identical answers to a RAM twin, writes and
// compaction rebuilds that roll page-file generations, an attached snapshot,
// and a warm start that adopts the page files and sweeps retired ones.
func TestShardedDiskStorageLifecycle(t *testing.T) {
	dir := t.TempDir()
	pts, qs := storageTestData(8000, 1)

	disk, err := NewSharded(pts, qs[:100],
		WithShards(4), WithoutAutoRebuild(),
		WithCompactThreshold(256),
		WithIndexOptions(WithLeafSize(64), WithSeed(2)),
		WithShardedStorage(dir, 128))
	if err != nil {
		t.Fatal(err)
	}
	ram, err := NewSharded(pts, qs[:100],
		WithShards(4), WithoutAutoRebuild(),
		WithCompactThreshold(256),
		WithIndexOptions(WithLeafSize(64), WithSeed(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "shard-*.pages"))
	if len(files) == 0 {
		t.Fatal("disk-backed NewSharded created no page files")
	}
	for _, q := range qs {
		eqPts(t, disk.RangeQuery(q), ram.RangeQuery(q), "disk vs ram")
	}

	// Write churn through both, forcing at least one compaction rebuild.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := Point{X: rng.Float64(), Y: rng.Float64()}
		disk.Insert(p)
		ram.Insert(p)
	}
	for i := 0; i < 1000; i += 2 {
		disk.Delete(pts[i])
		ram.Delete(pts[i])
	}
	disk.CheckRebuilds()
	ram.CheckRebuilds()
	if disk.Rebuilds() == 0 {
		t.Fatal("expected compaction rebuilds after churn")
	}
	for _, q := range qs {
		eqPts(t, disk.RangeQuery(q), ram.RangeQuery(q), "post-churn disk vs ram")
	}
	if disk.Len() != ram.Len() {
		t.Fatalf("Len diverged: disk %d, ram %d", disk.Len(), ram.Len())
	}

	var snap bytes.Buffer
	if err := disk.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// The snapshot is attached: restoring without the storage dir must be
	// refused rather than guessed at.
	if _, err := LoadSharded(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("LoadSharded accepted an attached snapshot without WithShardedStorage")
	}
	wantLen := disk.Len()
	disk.Close()

	warm, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithShardedStorage(dir, 128), WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Len() != wantLen {
		t.Fatalf("warm-started Len = %d, want %d", warm.Len(), wantLen)
	}
	for _, q := range qs {
		eqPts(t, warm.RangeQuery(q), ram.RangeQuery(q), "warm vs ram")
	}
	var cache CacheStats
	agg := warm.Stats()
	cache.Hits, cache.Misses = agg.CacheHits, agg.CacheMisses
	if cache.Misses == 0 {
		t.Fatal("warm start answered queries without touching the adopted page files")
	}

	// Retired generations were swept on warm start: every remaining file is
	// referenced by a live shard.
	after, _ := filepath.Glob(filepath.Join(dir, "shard-*.pages"))
	live := 0
	for _, info := range warm.Shards() {
		if info.Points > 0 {
			live++
		}
	}
	if len(after) != live {
		t.Fatalf("%d page files on disk after warm start, want %d (one per live shard)", len(after), live)
	}

	// The restored instance keeps rolling generations on further churn.
	for i := 0; i < 2000; i++ {
		p := Point{X: rng.Float64(), Y: rng.Float64()}
		warm.Insert(p)
		ram.Insert(p)
	}
	warm.CheckRebuilds()
	ram.CheckRebuilds()
	for _, q := range qs[:50] {
		eqPts(t, warm.RangeQuery(q), ram.RangeQuery(q), "post-warm churn")
	}
}

// TestLoadShardedMigratesToDisk restores a RAM-built snapshot under
// WithShardedStorage: the backend migration path.
func TestLoadShardedMigratesToDisk(t *testing.T) {
	pts, qs := storageTestData(3000, 9)
	ram, err := NewSharded(pts, qs[:50], WithShards(3), WithoutAutoRebuild(),
		WithIndexOptions(WithLeafSize(64), WithSeed(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer ram.Close()
	var snap bytes.Buffer
	if err := ram.Save(&snap); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	disk, err := LoadSharded(bytes.NewReader(snap.Bytes()), WithShardedStorage(dir, 64), WithoutAutoRebuild())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "shard-*.pages"))
	if len(files) == 0 {
		t.Fatal("migration created no page files")
	}
	for _, q := range qs {
		eqPts(t, disk.RangeQuery(q), ram.RangeQuery(q), "migrated vs ram")
	}
}
