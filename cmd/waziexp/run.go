package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wazi-index/wazi/internal/bench"
	"github.com/wazi-index/wazi/internal/bench/harness"
)

// cmdRun implements `waziexp run`: select experiments by suite or by id
// list, execute them under the harness, and report through the text
// backend and (with -json) the JSON backend.
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("waziexp run", flag.ExitOnError)
	var (
		suite    = fs.String("suite", "", "suite name (smoke, paper, serving, full); exclusive with -exp")
		exp      = fs.String("exp", "", "comma-separated experiment ids, or 'all'; exclusive with -suite")
		jsonPath = fs.String("json", "", "write a machine-readable report to this path (BENCH_<suite>.json convention)")
		reps     = fs.Int("reps", 1, "timed repetitions per experiment")
		warmup   = fs.Int("warmup", 0, "untimed warmup passes per experiment")
		scale    = fs.Int("scale", 0, "dataset size per region (0 = suite/package default, paper: 32M)")
		queries  = fs.Int("queries", 0, "range-query workload size (0 = default, paper: 20,000)")
		points   = fs.Int("points", 0, "point-query workload size (0 = default, paper: 50,000)")
		leaf     = fs.Int("leaf", 0, "leaf page capacity L (0 = default 256)")
		seed     = fs.Int64("seed", 0, "random seed (0 = default 1)")
		regions  = fs.String("regions", "", "comma-separated regions (CaliNev,NewYork,Japan,Iberia); empty = all")
		quiet    = fs.Bool("quiet", false, "suppress tables; print only per-experiment summary lines")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "waziexp run: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *suite != "" && *exp != "" {
		fmt.Fprintln(os.Stderr, "waziexp run: -suite and -exp are mutually exclusive")
		return 2
	}

	cfg := bench.Config{
		Scale:        *scale,
		Queries:      *queries,
		PointQueries: *points,
		LeafSize:     *leaf,
		Seed:         *seed,
	}
	if *regions != "" {
		rs, err := parseRegions(*regions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waziexp run:", err)
			return 2
		}
		cfg.Regions = rs
	}

	ids, suiteName, code := selectExperiments(*suite, *exp)
	if code != 0 {
		return code
	}
	if s, ok := bench.SuiteByName(suiteName); ok {
		cfg = s.ApplyDefaults(cfg)
	}
	// Record the effective configuration, not the zero-valued flag struct,
	// so the report is self-describing.
	cfg = cfg.Filled()

	reporters := []harness.Reporter{&harness.TextReporter{W: os.Stdout, Quiet: *quiet}}
	if *jsonPath != "" {
		reporters = append(reporters, &harness.JSONReporter{Path: *jsonPath})
	}
	run := harness.NewRun(harness.Options{Suite: suiteName, Warmup: *warmup, Reps: *reps}, cfg, reporters...)
	for _, id := range ids {
		e, _ := bench.ExperimentByID(id)
		run.Experiment(e.ID, func() []bench.Table { return e.Run(cfg) })
	}
	if _, err := run.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "waziexp run:", err)
		return 1
	}
	if *jsonPath != "" {
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	return 0
}

// selectExperiments resolves the -suite/-exp selection into experiment
// ids and the suite name recorded in the report. Unknown suite names and
// unknown experiment ids are usage errors (exit code 2) — never silently
// skipped.
func selectExperiments(suite, exp string) (ids []string, suiteName string, code int) {
	switch {
	case suite != "":
		s, ok := bench.SuiteByName(suite)
		if !ok {
			var names []string
			for _, s := range bench.Suites() {
				names = append(names, s.Name)
			}
			fmt.Fprintf(os.Stderr, "waziexp run: unknown suite %q (want %s)\n", suite, strings.Join(names, ", "))
			return nil, "", 2
		}
		return s.Experiments, s.Name, 0
	case exp == "" || exp == "all":
		s, _ := bench.SuiteByName("full")
		return s.Experiments, "full", 0
	default:
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := bench.ExperimentByID(id); !ok {
				fmt.Fprintf(os.Stderr, "waziexp run: unknown experiment %q; use `waziexp list`\n", id)
				return nil, "", 2
			}
			ids = append(ids, id)
		}
		return ids, "custom", 0
	}
}
