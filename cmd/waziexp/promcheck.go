package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/wazi-index/wazi/internal/obs"
)

// cmdPromcheck validates a Prometheus text-format file (typically a curl of
// a waziserve /metrics endpoint) and optionally asserts that required
// metric families are present. CI uses it to fail loudly when the exporter
// emits something a real Prometheus scraper would reject, or when a core
// family disappears.
func cmdPromcheck(args []string) int {
	fs := flag.NewFlagSet("waziexp promcheck", flag.ExitOnError)
	require := fs.String("require", "", "comma-separated metric family names that must be present")
	quiet := fs.Bool("quiet", false, "suppress the family listing")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: waziexp promcheck <metrics.txt> [-require fam1,fam2] [-quiet]

Parses the file as Prometheus text exposition format (version 0.0.4).
Exit codes: 0 valid, 1 parse failure or missing required family, 2 usage.
`)
		fs.PrintDefaults()
	}
	// Accept the file either before or after the flags.
	var path string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	fs.Parse(args)
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" || fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waziexp promcheck:", err)
		return 1
	}
	defer f.Close()
	fams, err := obs.ParsePromText(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "waziexp promcheck: %s: %v\n", path, err)
		return 1
	}

	names := make([]string, 0, len(fams))
	samples := 0
	for name, fam := range fams {
		names = append(names, name)
		samples += len(fam.Samples)
	}
	sort.Strings(names)
	if !*quiet {
		for _, name := range names {
			fmt.Printf("%s (%s, %d samples)\n", name, fams[name].Type, len(fams[name].Samples))
		}
	}
	fmt.Printf("%s: %d families, %d samples, valid\n", path, len(fams), samples)

	missing := []string{}
	if *require != "" {
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if _, ok := fams[want]; !ok {
				missing = append(missing, want)
			}
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "waziexp promcheck: missing required families: %s\n", strings.Join(missing, ", "))
		return 1
	}
	return 0
}
