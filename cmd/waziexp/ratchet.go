package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/wazi-index/wazi/internal/bench/harness"
)

// cmdRatchet implements `waziexp ratchet baseline.json fresh.json`: a
// gatekeeping compare against a committed baseline with per-metric-class
// thresholds. Resource-class metrics (allocs/op, alloc-bytes/op, GC
// accounting) are near-deterministic, so they get a tight threshold even
// across machines; latency-class metrics get a loose one, or none at all
// (threshold 0 disables the class) when baseline and fresh run on
// different hardware. -update rewrites the baseline from the fresh report
// instead of gating, which is how an intentional perf change lands.
//
// Exit codes: 0 pass (or baseline updated), 1 regression past a class
// threshold, 2 usage or file errors.
func cmdRatchet(args []string) int {
	fs := flag.NewFlagSet("waziexp ratchet", flag.ExitOnError)
	var (
		resourceTh = fs.Float64("resource-threshold", 0.35, "relative regression gate for resource-class metrics (allocs, bytes, GC); 0 disables")
		latencyTh  = fs.Float64("latency-threshold", 0.50, "relative regression gate for latency/throughput metrics mined from tables; 0 disables")
		exactTh    = fs.Float64("exact-threshold", 0.1, "relative regression gate for exact-class metrics (deterministic counters, e.g. kernel allocs/op); 0 disables")
		update     = fs.Bool("update", false, "rewrite the baseline file from the fresh report instead of gating")
		verbose    = fs.Bool("v", false, "list metrics within their thresholds too, not only the changed ones")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: waziexp ratchet [flags] baseline.json fresh.json

Compares a fresh BENCH report against a committed baseline with separate
regression thresholds per metric class: resource (allocation/GC
accounting), exact (deterministic counters such as kernel allocs/op),
and latency (everything else mined from tables).
Exits 1 when any metric regressed past its class threshold. With -update
the fresh report replaces the baseline and the command exits 0.
`)
		fs.PrintDefaults()
	}
	// Accept flags both before and after the two file arguments, like
	// `waziexp compare`.
	fs.Parse(args)
	files := fs.Args()
	if len(files) > 2 {
		rest := files[2:]
		files = files[:2]
		fs.Parse(rest)
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "waziexp ratchet: unexpected arguments %q\n", fs.Args())
			return 2
		}
	}
	if len(files) != 2 || strings.HasPrefix(files[0], "-") || strings.HasPrefix(files[1], "-") {
		fs.Usage()
		return 2
	}
	baselinePath, freshPath := files[0], files[1]

	baseline, err := harness.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waziexp ratchet:", err)
		return 2
	}
	fresh, err := harness.ReadFile(freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waziexp ratchet:", err)
		return 2
	}
	warnEnvMismatch(baseline, fresh)

	th := harness.Thresholds{
		Default: gateOrInf(*latencyTh),
		ByClass: map[string]float64{
			harness.ClassResource: gateOrInf(*resourceTh),
			harness.ClassExact:    gateOrInf(*exactTh),
		},
	}
	c := harness.CompareWith(baseline, fresh, th)
	c.WriteText(os.Stdout, *verbose)
	fmt.Printf("thresholds: resource ±%s, latency ±%s, exact ±%s\n",
		formatGate(*resourceTh), formatGate(*latencyTh), formatGate(*exactTh))

	if *update {
		if err := fresh.WriteFile(baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "waziexp ratchet:", err)
			return 2
		}
		fmt.Printf("baseline %s updated from %s\n", baselinePath, freshPath)
		return 0
	}
	if n := c.Regressions(); n > 0 {
		fmt.Fprintf(os.Stderr, "waziexp ratchet: %d metric(s) regressed past their class threshold (rerun with -update to accept intentionally)\n", n)
		return 1
	}
	return 0
}

// gateOrInf maps the "0 disables this class" flag convention onto the
// comparison machinery, where an infinite threshold never trips.
func gateOrInf(th float64) float64 {
	if th <= 0 {
		return math.Inf(1)
	}
	return th
}

func formatGate(th float64) string {
	if th <= 0 {
		return "disabled"
	}
	return fmt.Sprintf("%.0f%%", th*100)
}
