// Command waziexp is the benchmark driver of this repository: it runs the
// paper's evaluation experiments and the serving-layer experiments under
// the harness (warmup, repetitions, summary statistics), emits optional
// machine-readable BENCH_<suite>.json reports, and compares two reports
// for regressions.
//
// Usage:
//
//	waziexp run  -suite smoke -reps 1 -json BENCH_smoke.json
//	waziexp run  -exp fig6,fig7 -reps 5 -warmup 1 -scale 400000
//	waziexp list
//	waziexp compare old.json new.json -threshold 0.10
//	waziexp ratchet bench/baselines/BENCH_smoke.json BENCH_smoke.json
//
// Experiment ids match the paper's artifact numbers (tab1…fig13) plus the
// serving-layer experiments "sharded" and "scenarios"; suites bundle them
// (smoke, paper, serving, full). See docs/EXPERIMENTS.md for the mapping
// of every id to its paper figure and knobs.
//
// Exit codes: 0 on success, 1 when compare finds a regression past the
// threshold, 2 on usage errors — including unknown experiment ids and
// unknown suite names.
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/wazi-index/wazi/internal/bench"
	"github.com/wazi-index/wazi/internal/dataset"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "list":
		os.Exit(cmdList())
	case "compare":
		os.Exit(cmdCompare(os.Args[2:]))
	case "ratchet":
		os.Exit(cmdRatchet(os.Args[2:]))
	case "promcheck":
		os.Exit(cmdPromcheck(os.Args[2:]))
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		if strings.HasPrefix(os.Args[1], "-") {
			fmt.Fprintf(os.Stderr, "waziexp: top-level flags moved under the run subcommand: waziexp run %s\n\n", strings.Join(os.Args[1:], " "))
		} else {
			fmt.Fprintf(os.Stderr, "waziexp: unknown command %q\n\n", os.Args[1])
		}
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `waziexp — benchmark driver for the WaZI reproduction

commands:
  run        run experiments under the harness (see waziexp run -h)
  list       list experiment ids and suites
  compare    diff two BENCH_*.json reports (see waziexp compare -h)
  ratchet    gate a fresh report against a committed baseline with
             per-metric-class thresholds (see waziexp ratchet -h)
  promcheck  validate a Prometheus text-format scrape (e.g. from /metrics)

examples:
  waziexp run -suite smoke -reps 1 -json BENCH_smoke.json
  waziexp run -exp fig6,fig7 -reps 5 -warmup 1
  waziexp compare BENCH_old.json BENCH_new.json -threshold 0.10
  waziexp ratchet bench/baselines/BENCH_smoke.json BENCH_smoke.json
  waziexp ratchet -update bench/baselines/BENCH_smoke.json BENCH_smoke.json
  waziexp promcheck metrics.txt -require wazi_http_request_seconds
`)
}

// cmdList prints every experiment id with its title, then the suites.
func cmdList() int {
	fmt.Println("experiments:")
	for _, e := range bench.Experiments() {
		fmt.Printf("  %-10s %s\n", e.ID, e.Title)
	}
	fmt.Println("\nsuites:")
	for _, s := range bench.Suites() {
		fmt.Printf("  %-10s %s\n", s.Name, s.Description)
		fmt.Printf("  %-10s   (%s)\n", "", strings.Join(s.Experiments, ", "))
	}
	return 0
}

// parseRegions parses a comma-separated region list.
func parseRegions(list string) ([]dataset.Region, error) {
	var out []dataset.Region
	for _, name := range strings.Split(list, ",") {
		r, found := dataset.RegionByName(strings.TrimSpace(name))
		if !found {
			return nil, fmt.Errorf("unknown region %q (want CaliNev, NewYork, Japan, or Iberia)", name)
		}
		out = append(out, r)
	}
	return out, nil
}
