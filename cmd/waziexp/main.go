// Command waziexp regenerates the tables and figures of the WaZI paper's
// evaluation section (§6) on the synthetic region datasets.
//
// Usage:
//
//	waziexp -exp fig6                 # one experiment
//	waziexp -exp all                  # the whole evaluation
//	waziexp -exp fig8 -scale 400000   # larger datasets
//	waziexp -list                     # show available experiment ids
//
// Experiment ids match the paper's artifact numbers: tab1, tab2, fig4,
// fig6, fig7, fig8, fig9, fig10, tab3, tab4, tab5, fig11, fig12, fig13 —
// plus "sharded", the serving-layer experiment comparing single-mutex
// Concurrent against the Sharded fan-out layer under 1–64 goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/wazi-index/wazi/internal/bench"
	"github.com/wazi-index/wazi/internal/dataset"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (or comma-separated list, or 'all')")
		scale   = flag.Int("scale", 100_000, "default dataset size per region (paper: 32M)")
		queries = flag.Int("queries", 2_000, "range-query workload size (paper: 20,000)")
		points  = flag.Int("points", 5_000, "point-query workload size (paper: 50,000)")
		leaf    = flag.Int("leaf", 256, "leaf page capacity L")
		seed    = flag.Int64("seed", 1, "random seed")
		regions = flag.String("regions", "", "comma-separated regions (CaliNev,NewYork,Japan,Iberia); empty = all")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := bench.Config{
		Scale:        *scale,
		Queries:      *queries,
		PointQueries: *points,
		LeafSize:     *leaf,
		Seed:         *seed,
	}
	if *regions != "" {
		for _, name := range strings.Split(*regions, ",") {
			r, err := parseRegion(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Regions = append(cfg.Regions, r)
		}
	}

	want := map[string]bool{}
	runAll := *exp == "all"
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	known := map[string]bool{}
	for _, e := range bench.Experiments() {
		known[e.ID] = true
	}
	for id := range want {
		if !runAll && !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.Experiments() {
		if !runAll && !want[e.ID] {
			continue
		}
		expStart := time.Now()
		for _, t := range e.Run(cfg) {
			fmt.Println(t)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(expStart).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched; use -list")
		os.Exit(2)
	}
	fmt.Printf("ran %d experiment(s) in %v (scale %d, %d queries)\n",
		ran, time.Since(start).Round(time.Millisecond), cfg.Scale, cfg.Queries)
}

func parseRegion(name string) (dataset.Region, error) {
	for _, r := range dataset.Regions() {
		if strings.EqualFold(r.String(), name) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown region %q (want CaliNev, NewYork, Japan, or Iberia)", name)
}
