package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/wazi-index/wazi/internal/bench/harness"
)

// cmdCompare implements `waziexp compare old.json new.json`: per-metric
// deltas of the means with a regression threshold. Exit code 1 when any
// metric regressed past the threshold, so CI can gate on it.
func cmdCompare(args []string) int {
	fs := flag.NewFlagSet("waziexp compare", flag.ExitOnError)
	var (
		threshold = fs.Float64("threshold", 0.10, "relative change beyond which a metric counts as improved/regressed")
		verbose   = fs.Bool("v", false, "list metrics within the threshold too, not only the changed ones")
	)
	// Accept flags both before and after the two file arguments.
	fs.Parse(args)
	files := fs.Args()
	if len(files) > 2 {
		rest := files[2:]
		files = files[:2]
		fs.Parse(rest)
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "waziexp compare: unexpected arguments %q\n", fs.Args())
			return 2
		}
	}
	if len(files) != 2 || strings.HasPrefix(files[0], "-") || strings.HasPrefix(files[1], "-") {
		fmt.Fprintln(os.Stderr, "usage: waziexp compare [-threshold 0.10] [-v] old.json new.json (flags before or after the files, not between them)")
		return 2
	}

	old, err := harness.ReadFile(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "waziexp compare:", err)
		return 2
	}
	cur, err := harness.ReadFile(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "waziexp compare:", err)
		return 2
	}
	warnEnvMismatch(old, cur)

	c := harness.Compare(old, cur, *threshold)
	c.WriteText(os.Stdout, *verbose)
	if n := c.Regressions(); n > 0 {
		fmt.Fprintf(os.Stderr, "waziexp compare: %d metric(s) regressed more than %.1f%%\n", n, *threshold*100)
		return 1
	}
	return 0
}

// warnEnvMismatch notes when the two reports were produced on visibly
// different setups, where latency deltas are not meaningful.
func warnEnvMismatch(old, cur *harness.Report) {
	oe, ne := old.Env, cur.Env
	if oe.GOOS != ne.GOOS || oe.GOARCH != ne.GOARCH || oe.NumCPU != ne.NumCPU || oe.Hostname != ne.Hostname {
		fmt.Fprintf(os.Stderr, "warning: reports come from different environments (%s/%s %dcpu %q vs %s/%s %dcpu %q); timing deltas may reflect hardware, not code\n",
			oe.GOOS, oe.GOARCH, oe.NumCPU, oe.Hostname, ne.GOOS, ne.GOARCH, ne.NumCPU, ne.Hostname)
	}
	if old.Suite != cur.Suite {
		fmt.Fprintf(os.Stderr, "warning: comparing different suites (%q vs %q)\n", old.Suite, cur.Suite)
	}
}
