package main

import (
	"path/filepath"
	"testing"

	"github.com/wazi-index/wazi/internal/bench/harness"
)

// writeRatchetReport writes a one-experiment report with a latency metric
// and an allocs/op resource metric at the given means.
func writeRatchetReport(t *testing.T, path string, latencyNS, allocs float64) {
	t.Helper()
	r := &harness.Report{
		Schema: harness.SchemaVersion,
		Suite:  "smoke",
		Results: []harness.Result{{
			Experiment: "e",
			Metrics: []harness.Metric{
				{
					Name: "e/t0/newyork/wazi", Unit: "ns",
					Samples: []float64{latencyNS}, Summary: harness.Summarize([]float64{latencyNS}),
				},
				{
					Name: "e/resource/allocs-op", Unit: "allocs", Class: harness.ClassResource,
					Samples: []float64{allocs}, Summary: harness.Summarize([]float64{allocs}),
				},
			},
		}},
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestRatchetGatesByClass is the ratchet acceptance test: identical runs
// pass, an injected allocs/op regression fails with exit 1 even while the
// latency change sits inside its loose gate, disabling the resource gate
// lets the same regression through, and -update accepts it by rewriting
// the baseline.
func TestRatchetGatesByClass(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_base.json")
	fresh := filepath.Join(dir, "BENCH_fresh.json")

	// Identical reports: pass.
	writeRatchetReport(t, baseline, 100_000, 5000)
	writeRatchetReport(t, fresh, 100_000, 5000)
	if code := cmdRatchet([]string{baseline, fresh}); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}

	// 2x allocs/op with latency +40% (inside the 50% latency gate): the
	// resource gate must catch it.
	writeRatchetReport(t, fresh, 140_000, 10_000)
	if code := cmdRatchet([]string{baseline, fresh}); code != 1 {
		t.Fatalf("2x allocs/op regression: exit %d, want 1", code)
	}

	// Same regression with the resource gate disabled (0): passes, because
	// the latency change is still inside its gate.
	if code := cmdRatchet([]string{"-resource-threshold", "0", baseline, fresh}); code != 0 {
		t.Fatalf("resource gate disabled: exit %d, want 0", code)
	}

	// Latency regression past its own gate still fails independently.
	writeRatchetReport(t, fresh, 200_000, 5000)
	if code := cmdRatchet([]string{baseline, fresh}); code != 1 {
		t.Fatalf("2x latency regression: exit %d, want 1", code)
	}
	// ...and -latency-threshold 0 (the cross-machine CI mode) waves it on.
	if code := cmdRatchet([]string{"-latency-threshold", "0", baseline, fresh}); code != 0 {
		t.Fatalf("latency gate disabled: exit %d, want 0", code)
	}

	// -update accepts the regressed run as the new baseline; the same
	// compare then passes.
	writeRatchetReport(t, fresh, 100_000, 10_000)
	if code := cmdRatchet([]string{"-update", baseline, fresh}); code != 0 {
		t.Fatalf("-update: exit %d, want 0", code)
	}
	if code := cmdRatchet([]string{baseline, fresh}); code != 0 {
		t.Fatalf("after -update the fresh run must pass, got exit %d", code)
	}
	updated, err := harness.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if got := updated.Results[0].ResourceMetric("allocs-op").Summary.Mean; got != 10_000 {
		t.Fatalf("baseline allocs-op after -update = %.0f, want 10000", got)
	}
}

// TestRatchetUsageErrors pins the exit-2 paths: missing files and missing
// arguments.
func TestRatchetUsageErrors(t *testing.T) {
	dir := t.TempDir()
	if code := cmdRatchet([]string{filepath.Join(dir, "nope.json"), filepath.Join(dir, "also-nope.json")}); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
	if code := cmdRatchet([]string{"only-one.json"}); code != 2 {
		t.Fatalf("one argument: exit %d, want 2", code)
	}
}

// TestCompareOldBaselineWithoutResources pins satellite forward-compat at
// the command level: `waziexp compare` between a pre-resource-accounting
// report and a current one exits 0 — the new resource metrics are listed
// as one-sided, not treated as regressions.
func TestCompareOldBaselineWithoutResources(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_old.json")
	newPath := filepath.Join(dir, "BENCH_new.json")

	oldR := &harness.Report{
		Schema: harness.SchemaVersion,
		Suite:  "smoke",
		Results: []harness.Result{{
			Experiment: "e",
			Metrics: []harness.Metric{{
				Name: "e/t0/newyork/wazi", Unit: "ns",
				Samples: []float64{100_000}, Summary: harness.Summarize([]float64{100_000}),
			}},
		}},
	}
	if err := oldR.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	writeRatchetReport(t, newPath, 100_000, 5000)

	if code := cmdCompare([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("compare old-vs-new with disjoint resource metrics: exit %d, want 0", code)
	}
	if code := cmdRatchet([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("ratchet against a pre-resource baseline: exit %d, want 0", code)
	}
}
